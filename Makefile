# Repro build/test entry points. `make ci` is what a fresh checkout should
# pass: formatting, vet, the tier-1 command (go build && go test), the race
# detector over the internal packages (the freeze/COW ownership model
# advertises lock-free sharing of frozen subtrees; -race keeps it honest),
# a short chaos sweep (seeded fault-injection scenarios differentially
# checked against a centralized oracle — see TESTING.md), and a fuzz smoke
# over the parser and wire-framing targets.
GO ?= go

.PHONY: build test test-short bench bench-all bench-chaos bench-runtime bench-route bench-mem loadgen-smoke route-smoke mem-smoke profile race fmt vet chaos chaos-ci chaos-nofault chaos-large chaos-large-ci fuzz-smoke ci

build:
	$(GO) build ./...

# Tier-1 verification (ROADMAP.md): the full suite.
test: build
	$(GO) test ./...

# CI-speed suite: -short trims the largest network sizes from the E4/E9
# scaling sweeps (see internal/experiments.ShortMode) and the chaos sweep
# from 500 to 200 scenarios.
test-short: build
	$(GO) test -short ./...

# Machinery benchmark suite (hop path, clone, serialization, engine) with
# allocation stats. Each stream is distilled by cmd/benchjson into a clean
# summary (one record per benchmark, parsed metrics) matching the loadgen
# reports — BENCH_plan_hop.json, BENCH_decode.json (zero-copy
# BenchmarkDecode vs the encoding/xml-based BenchmarkParseLegacy, so
# decode-path wins and regressions are visible on their own) and
# BENCH_wire.json (warm codec hop, streaming frame encoder, reused
# persistent link over real TCP — the numbers behind the "wire hop within
# ~3x of the tree hop" acceptance bar). The benchmark lines still echo to
# the console.
bench:
	$(GO) test -run '^$$' -bench '^Benchmark(PlanHop$$|PlanClone|Micro|Canonical|ByteSize)' -benchmem -json . \
		| $(GO) run ./cmd/benchjson -out BENCH_plan_hop.json
	$(GO) test -run '^$$' -bench '^Benchmark(Decode|ParseLegacy)$$' -benchmem -json . \
		| $(GO) run ./cmd/benchjson -out BENCH_decode.json
	$(GO) test -run '^$$' -bench '^Benchmark(PlanHopWire$$|PlanHopWireReused$$|StreamEncode$$)' -benchmem -json . \
		| $(GO) run ./cmd/benchjson -out BENCH_wire.json

# CPU and heap profiles of the hop path (cpu.prof / mem.prof, inspect with
# `go tool pprof`): the first stop when chasing a decode- or marshal-side
# regression the alloc budgets or BENCH_decode.json surface.
profile:
	$(GO) test -run '^$$' -bench '^BenchmarkPlanHop$$' -benchmem \
		-cpuprofile cpu.prof -memprofile mem.prof .
	@echo "wrote cpu.prof and mem.prof; inspect with: go tool pprof cpu.prof"

# Chaos throughput (full generate+run+oracle-check scenarios per op) plus
# the plan outcome rates (completed/partial/stuck/lost per plan); recorded
# to BENCH_chaos.json the same way bench records the hop path.
# BenchmarkScenarioLarge adds the large-world acceptance metrics: 1000-peer
# churn scenarios/sec, the incremental oracle's per-scenario cost
# (oracle-ms/op) and peak RSS.
bench-chaos:
	$(GO) test -run '^$$' -bench '^BenchmarkScenario(Large)?$$' -benchmem -json ./internal/chaos \
		| $(GO) run ./cmd/benchjson -out BENCH_chaos.json

# Every benchmark, including the full E1-E14 experiment reproductions.
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .

# Concurrent-runtime throughput: one worker-pool peer under a closed-loop
# multi-query load (cmd/loadgen), reporting plans/s, result latency
# percentiles and prepared-plan cache hit rate to BENCH_runtime.json.
bench-runtime:
	$(GO) run ./cmd/loadgen -out BENCH_runtime.json

# CI gate for the runtime path: a short loadgen run must complete plans
# (admission control, worker pool, plan cache and result collection all
# exercised end to end) without writing over the recorded benchmark.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -smoke -out -

# Learned-routing convergence (cmd/loadgen -route): a learning client vs a
# no-learning client on the same repeated workload; cold/warm hops,
# msgs/query and the warm shortcut hit rate land in BENCH_route.json. The
# run fails if the warm phase does not strictly reduce msgs/query.
bench-route:
	$(GO) run ./cmd/loadgen -route -out BENCH_route.json

# CI gate for learned routing: the short -route run plus the E15
# cold-vs-warm experiment in -short mode (internal/experiments.ShortMode).
route-smoke:
	$(GO) run ./cmd/loadgen -route -smoke -out -
	$(GO) test -short -run 'TestAllExperimentsRun/E15' ./internal/experiments

# Payload-store memory benchmark (cmd/loadgen -mem): the same dedup-heavy
# world driven store-off then store-on in one process, comparing live heap
# (GC'd HeapAlloc, the portable peak-RSS proxy), dedup ratio and bytes
# moved by reference. Fails below the 30% resident-memory reduction bar or
# when no repeat freight goes by reference. Records BENCH_mem.json.
bench-mem:
	$(GO) run ./cmd/loadgen -mem -out BENCH_mem.json

# CI gate for the payload store: the short -mem run, same acceptance bars,
# without writing over the recorded benchmark.
mem-smoke:
	$(GO) run ./cmd/loadgen -mem -smoke -out -

race:
	$(GO) test -race ./internal/...

# Replay one chaos scenario (make chaos SEED=1337), or sweep 500 seeds when
# no SEED is given. A sweep failure prints the offending seed for replay.
chaos:
	@if [ -n "$(SEED)" ]; then \
		$(GO) run ./cmd/chaos -seed $(SEED); \
	else \
		$(GO) run ./cmd/chaos -n 500; \
	fi

# CI smoke: 200 seeded scenarios, mixed fault intensity.
chaos-ci:
	$(GO) run ./cmd/chaos -n 200

# Liveness gate: a fault-free sweep must strand zero plans — every plan
# completes or returns an explicit partial result (visited-server routing
# memory, internal/route).
chaos-nofault:
	$(GO) run ./cmd/chaos -n 500 -level none -max-stuck 0

# Large worlds (TESTING.md "Large worlds"): 1000-peer churn-enabled
# zipf-loaded scenarios with replica promotion, checked by the incremental
# oracle with sampled full verification. The acceptance sweep is 50 seeds;
# chaos-large-ci is the -short form wired into `make ci`. Replay a failure
# with the printed seed: go run ./cmd/chaos -seed N -peers 1000 -churn.
chaos-large:
	$(GO) run ./cmd/chaos -n 50 -peers 1000 -churn

chaos-large-ci:
	$(GO) run ./cmd/chaos -n 16 -peers 1000 -churn

# Fuzz smoke: 10s per target (canonical-XML parse fixpoint, zero-copy
# decoder vs reference-parser differential, wire framing, streaming frame
# encoder vs staged-tree encoder differential).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRoundTrip$$' -fuzztime 10s ./internal/xmltree
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeEquivalence$$' -fuzztime 10s ./internal/xmltree
	$(GO) test -run '^$$' -fuzz '^FuzzRecv$$' -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzStreamEncodeEquivalence$$' -fuzztime 10s ./internal/algebra

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race loadgen-smoke route-smoke mem-smoke chaos-ci chaos-nofault chaos-large-ci fuzz-smoke
