# Repro build/test entry points. `make ci` is what a fresh checkout should
# pass: formatting, vet, the tier-1 command (go build && go test), and the
# race detector over the internal packages (the freeze/COW ownership model
# advertises lock-free sharing of frozen subtrees; -race keeps it honest).
GO ?= go

.PHONY: build test test-short bench bench-all race fmt vet ci

build:
	$(GO) build ./...

# Tier-1 verification (ROADMAP.md): the full suite.
test: build
	$(GO) test ./...

# CI-speed suite: -short trims the largest network sizes from the E4/E9
# scaling sweeps (see internal/experiments.ShortMode).
test-short: build
	$(GO) test -short ./...

# Machinery benchmark suite (hop path, clone, serialization, engine) with
# allocation stats; the raw test2json stream lands in BENCH_plan_hop.json
# (one JSON object per line) and the benchmark lines echo to the console.
bench:
	$(GO) test -run '^$$' -bench '^Benchmark(Plan|Micro|Canonical|ByteSize)' -benchmem -json . > BENCH_plan_hop.json
	@sed -n 's/.*"Output":"\(.*\)".*/\1/p' BENCH_plan_hop.json \
		| tr -d '\n' | sed 's/\\n/\n/g;s/\\t/\t/g' | grep 'ns/op' || true

# Every benchmark, including the full E1-E13 experiment reproductions.
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .

race:
	$(GO) test -race ./internal/...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race
