# Repro build/test entry points. `make ci` is what a fresh checkout should
# pass: formatting, vet, and the tier-1 command (go build && go test).
GO ?= go

.PHONY: build test test-short bench fmt vet ci

build:
	$(GO) build ./...

# Tier-1 verification (ROADMAP.md): the full suite.
test: build
	$(GO) test ./...

# CI-speed suite: -short trims the largest network sizes from the E4/E9
# scaling sweeps (see internal/experiments.ShortMode).
test-short: build
	$(GO) test -short ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build test
