package p2pq

import (
	"strings"
	"testing"
)

func garageNS(t *testing.T) *Namespace {
	t.Helper()
	ns, err := NewNamespace(
		Dimension("Location", "USA/OR/Portland", "USA/WA/Seattle"),
		Dimension("Merchandise", "Music/CDs", "Furniture/Chairs"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestNamespaceErrors(t *testing.T) {
	if _, err := NewNamespace(); err == nil {
		t.Fatal("empty namespace must error")
	}
	if _, err := NewNamespace(Dimension("L", "a//b")); err == nil {
		t.Fatal("bad path must error")
	}
	ns := garageNS(t)
	urn, err := ns.AreaURN("[USA/OR/Portland, Music/CDs]")
	if err != nil || !strings.HasPrefix(urn, "urn:InterestArea:") {
		t.Fatalf("AreaURN = %q, %v", urn, err)
	}
	if _, err := ns.AreaURN("[USA]"); err == nil {
		t.Fatal("wrong arity must error")
	}
}

func TestEndToEndQuickstart(t *testing.T) {
	ns := garageNS(t)
	sys := NewSystem(ns)

	meta, err := sys.AddPeer(PeerOptions{Addr: "meta:9020", Area: "[*, *]", Authoritative: true})
	if err != nil {
		t.Fatal(err)
	}
	seller, err := sys.AddPeer(PeerOptions{Addr: "seller:9020", Area: "[USA/OR/Portland, Music/CDs]"})
	if err != nil {
		t.Fatal(err)
	}
	if err := seller.Publish("cds", "/data[id=1]", "[USA/OR/Portland, Music/CDs]",
		BuildItem("sale", "cd", "Blue Train", "price", "8"),
		BuildItem("sale", "cd", "Kind of Blue", "price", "15"),
	); err != nil {
		t.Fatal(err)
	}
	if err := seller.JoinVia(meta.Addr()); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddPeer(PeerOptions{Addr: "me:9020", Knows: []string{meta.Addr()}})
	if err != nil {
		t.Fatal(err)
	}

	res, err := client.Query(
		ScanArea("[USA/OR/Portland, Music/CDs]").
			Where("price < 10").
			Plan("q1", client.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].Value("cd") != "Blue Train" {
		t.Fatalf("items = %v", res.Items)
	}
	if res.Latency <= 0 || res.Hops < 2 {
		t.Fatalf("latency=%v hops=%d", res.Latency, res.Hops)
	}
	if sys.Metrics().Messages == 0 {
		t.Fatal("no network traffic recorded")
	}
}

func TestBuilderOperators(t *testing.T) {
	ns := garageNS(t)
	sys := NewSystem(ns)
	meta, _ := sys.AddPeer(PeerOptions{Addr: "meta:1", Area: "[*, *]", Authoritative: true})
	s, _ := sys.AddPeer(PeerOptions{Addr: "s:1", Area: "[USA/OR/Portland, Music/CDs]"})
	_ = s.Publish("cds", "/d", "[USA/OR/Portland, Music/CDs]",
		BuildItem("sale", "cd", "A", "price", "5"),
		BuildItem("sale", "cd", "B", "price", "7"),
		BuildItem("sale", "cd", "C", "price", "9"),
	)
	_ = s.JoinVia(meta.Addr())
	client, _ := sys.AddPeer(PeerOptions{Addr: "c:1", Knows: []string{meta.Addr()}})

	// Count.
	res, err := client.Query(ScanArea("[USA/OR/Portland, Music/CDs]").Count().Plan("q-count", client.Addr()))
	if err != nil || res.Items[0].InnerText() != "3" {
		t.Fatalf("count = %v %v", res.Items, err)
	}
	// TopN + Project.
	res, err = client.Query(
		ScanArea("[USA/OR/Portland, Music/CDs]").
			Top(2, "price", true).
			Project("pick", "cd").
			Plan("q-top", client.Addr()))
	if err != nil || len(res.Items) != 2 || res.Items[0].Value("cd") != "C" {
		t.Fatalf("top = %v %v", res.Items, err)
	}
	// Join with embedded items.
	favs := Items(BuildItem("fav", "want", "B"))
	res, err = client.Query(
		favs.Join(ScanArea("[USA/OR/Portland, Music/CDs]"), "want", "cd", "wish", "offer").
			Plan("q-join", client.Addr()))
	if err != nil || len(res.Items) != 1 || res.Items[0].Value("offer/price") != "7" {
		t.Fatalf("join = %v %v", res.Items, err)
	}
	// Union.
	res, err = client.Query(
		Items(BuildItem("x", "v", "1")).UnionWith(Items(BuildItem("x", "v", "2"))).
			Plan("q-union", client.Addr()))
	if err != nil || len(res.Items) != 2 {
		t.Fatalf("union = %v %v", res.Items, err)
	}
}

func TestBuilderErrorsSurface(t *testing.T) {
	b := ScanArea("[USA/OR/Portland, Music/CDs]").Where("price <")
	if b.Err() == nil {
		t.Fatal("bad predicate must set builder error")
	}
	plan := b.Plan("q", "t:1")
	if err := plan.Validate(); err == nil {
		t.Fatal("plan from broken builder must not validate")
	}
	if ScanArea("").Err() == nil {
		t.Fatal("empty area must error")
	}
}

func TestQueryNoResultOnUnknownServer(t *testing.T) {
	ns := garageNS(t)
	sys := NewSystem(ns)
	client, _ := sys.AddPeer(PeerOptions{Addr: "c:1"})
	_, err := client.QueryVia("ghost:1", ScanURN("urn:X").Plan("q", client.Addr()))
	if err == nil {
		t.Fatal("unknown first server must error")
	}
}

func TestDeclareStatement(t *testing.T) {
	ns := garageNS(t)
	sys := NewSystem(ns)
	meta, _ := sys.AddPeer(PeerOptions{Addr: "m:1", Area: "[*, *]", Authoritative: true})
	r, _ := sys.AddPeer(PeerOptions{Addr: "r:1", Area: "[USA/OR/Portland, *]"})
	if err := r.Declare(meta.Addr(),
		"base[USA/OR/Portland, *]@r:1 >= base[USA/OR/Portland, *]@s:1{30}"); err != nil {
		t.Fatal(err)
	}
	if err := r.Declare(meta.Addr(), "garbage"); err == nil {
		t.Fatal("bad statement must error")
	}
	if err := r.Declare("ghost:1", "base[USA/OR/Portland, *]@r:1 = base[USA/OR/Portland, *]@s:1"); err == nil {
		t.Fatal("unknown target must error")
	}
}

func TestFaultToleranceSetDown(t *testing.T) {
	ns := garageNS(t)
	sys := NewSystem(ns)
	meta, _ := sys.AddPeer(PeerOptions{Addr: "m:1", Area: "[*, *]", Authoritative: true})
	s1, _ := sys.AddPeer(PeerOptions{Addr: "s1:1", Area: "[USA/OR/Portland, Music/CDs]"})
	_ = s1.Publish("cds", "/d", "[USA/OR/Portland, Music/CDs]", BuildItem("sale", "cd", "A", "price", "5"))
	_ = s1.JoinVia(meta.Addr())
	client, _ := sys.AddPeer(PeerOptions{Addr: "c:1", Knows: []string{meta.Addr()}})

	sys.SetDown("s1:1", true)
	_, err := client.Query(ScanArea("[USA/OR/Portland, Music/CDs]").Count().Plan("q", client.Addr()))
	if err == nil {
		t.Fatal("query through a down base server should fail")
	}
	sys.SetDown("s1:1", false)
	res, err := client.Query(ScanArea("[USA/OR/Portland, Music/CDs]").Count().Plan("q2", client.Addr()))
	if err != nil || res.Items[0].InnerText() != "1" {
		t.Fatalf("recovered query = %v %v", res.Items, err)
	}
}
