// Package p2pq is the public API of the library: a facade over the mutant
// query plan engine, multi-hierarchic namespace catalogs, and simulated P2P
// network that the internal packages implement.
//
// A typical session:
//
//	ns := p2pq.NewNamespace(
//	    p2pq.Dimension("Location", "USA/OR/Portland", "USA/WA/Seattle"),
//	    p2pq.Dimension("Merchandise", "Music/CDs", "Furniture/Chairs"),
//	)
//	sys := p2pq.NewSystem(ns)
//	seller, _ := sys.AddPeer(p2pq.PeerOptions{
//	    Addr: "seller:9020", Area: "[USA/OR/Portland, Music/CDs]",
//	})
//	seller.Publish("cds", "/data[id=1]", "[USA/OR/Portland, Music/CDs]", items...)
//	meta, _ := sys.AddPeer(p2pq.PeerOptions{Addr: "meta:9020", Area: "[*, *]", Authoritative: true})
//	seller.JoinVia(meta.Addr())
//	client, _ := sys.AddPeer(p2pq.PeerOptions{Addr: "me:9020", Knows: []string{meta.Addr()}})
//
//	res, err := client.Query(
//	    p2pq.ScanArea("[USA/OR/Portland, Music/CDs]").
//	        Where("price < 10").
//	        Plan("q1", client.Addr()))
package p2pq

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/provenance"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

// Item is one XML data bundle. Use ParseItem or BuildItem to construct.
type Item = xmltree.Node

// ParseItem parses an XML item from its textual form.
func ParseItem(src string) (*Item, error) {
	return xmltree.ParseString(src)
}

// MustParseItem is ParseItem for fixtures; it panics on error.
func MustParseItem(src string) *Item {
	return xmltree.MustParse(src)
}

// BuildItem constructs an element with text-valued fields, e.g.
// BuildItem("sale", "cd", "Blue Train", "price", "8").
func BuildItem(name string, fieldValuePairs ...string) *Item {
	e := xmltree.Elem(name)
	for i := 0; i+1 < len(fieldValuePairs); i += 2 {
		e.Add(xmltree.ElemText(fieldValuePairs[i], fieldValuePairs[i+1]))
	}
	return e
}

// DimensionSpec declares one categorization hierarchy of a namespace.
type DimensionSpec struct {
	Name  string
	Paths []string
}

// Dimension builds a DimensionSpec.
func Dimension(name string, paths ...string) DimensionSpec {
	return DimensionSpec{Name: name, Paths: paths}
}

// Namespace wraps a multi-hierarchic namespace (§3.1 of the paper).
type Namespace struct {
	ns *namespace.Namespace
}

// NewNamespace builds a namespace from dimension specs.
func NewNamespace(dims ...DimensionSpec) (*Namespace, error) {
	hs := make([]*hierarchy.Hierarchy, len(dims))
	for i, d := range dims {
		h := hierarchy.New(d.Name)
		for _, p := range d.Paths {
			if _, err := h.AddPath(p); err != nil {
				return nil, fmt.Errorf("p2pq: dimension %s: %w", d.Name, err)
			}
		}
		hs[i] = h
	}
	ns, err := namespace.New(hs...)
	if err != nil {
		return nil, err
	}
	return &Namespace{ns: ns}, nil
}

// MustNewNamespace is NewNamespace for fixtures; it panics on error.
func MustNewNamespace(dims ...DimensionSpec) *Namespace {
	ns, err := NewNamespace(dims...)
	if err != nil {
		panic(err)
	}
	return ns
}

// AreaURN encodes an interest-area expression ("[USA/OR, *] + [France,
// Music]") as a URN string for use in queries and publications.
func (n *Namespace) AreaURN(area string) (string, error) {
	a, err := n.ns.ParseArea(area)
	if err != nil {
		return "", err
	}
	return namespace.EncodeURN(a), nil
}

// System is a simulated P2P deployment: a network plus its peers.
type System struct {
	ns  *Namespace
	net *simnet.Network
}

// NewSystem creates an empty deployment over the namespace.
func NewSystem(ns *Namespace) *System {
	return &System{ns: ns, net: simnet.New()}
}

// Network exposes the underlying simulated network (metrics, failures).
func (s *System) Network() *simnet.Network { return s.net }

// Metrics returns a snapshot of network counters.
func (s *System) Metrics() simnet.Metrics { return s.net.Metrics() }

// SetDown marks a peer unreachable (or back up).
func (s *System) SetDown(addr string, down bool) { s.net.SetDown(addr, down) }

// PeerOptions configures a peer.
type PeerOptions struct {
	// Addr is the peer's network address, e.g. "seller1:9020".
	Addr string
	// Area is the peer's interest area expression; empty means a pure
	// client.
	Area string
	// Authoritative marks the peer authoritative for its area (§3.3).
	Authoritative bool
	// Knows lists meta-index servers the peer is born knowing (§3.2:
	// discovered out-of-band), with their area defaulting to everything.
	Knows []string
	// AllowDataPull lets the peer fetch remote data instead of always
	// forwarding plans.
	AllowDataPull bool
	// SigningKey enables provenance recording.
	SigningKey []byte
}

// Peer wraps a network participant.
type Peer struct {
	p   *peer.Peer
	sys *System
}

// AddPeer creates a peer in the deployment.
func (s *System) AddPeer(opts PeerOptions) (*Peer, error) {
	var area namespace.Area
	if opts.Area != "" {
		a, err := s.ns.ns.ParseArea(opts.Area)
		if err != nil {
			return nil, err
		}
		area = a
	}
	var pol mqp.Policy
	if opts.AllowDataPull {
		pol = mqp.DefaultPolicy{}
	}
	p, err := peer.New(peer.Config{
		Addr:          opts.Addr,
		Net:           s.net,
		NS:            s.ns.ns,
		Area:          area,
		Authoritative: opts.Authoritative,
		Policy:        pol,
		PushSelect:    true,
		Key:           opts.SigningKey,
		StatsHistPath: "price",
	})
	if err != nil {
		return nil, err
	}
	for _, meta := range opts.Knows {
		if err := p.Catalog().Register(catalog.Registration{
			Addr: meta, Role: catalog.RoleMetaIndex,
			Area:          s.ns.ns.MustParseArea(everything(s.ns.ns)),
			Authoritative: true,
		}); err != nil {
			return nil, err
		}
	}
	return &Peer{p: p, sys: s}, nil
}

func everything(ns *namespace.Namespace) string {
	out := "["
	for i := 0; i < ns.NumDims(); i++ {
		if i > 0 {
			out += ", "
		}
		out += "*"
	}
	return out + "]"
}

// Addr returns the peer's address.
func (p *Peer) Addr() string { return p.p.Addr() }

// Raw exposes the underlying peer for advanced use (statements, harvest,
// replication).
func (p *Peer) Raw() *peer.Peer { return p.p }

// Publish exports a collection under the given name, path identifier and
// interest-area expression.
//
// Published items are frozen: the peer serves them by reference (fetch
// replies, plan payloads and forwarded bodies all alias the same subtrees),
// so mutating an item after Publish panics. To change published data,
// build fresh items and Publish again — or Publish clones and keep the
// originals.
func (p *Peer) Publish(name, pathExp, area string, items ...*Item) error {
	a, err := p.sys.ns.ns.ParseArea(area)
	if err != nil {
		return err
	}
	p.p.AddCollection(peer.Collection{Name: name, PathExp: pathExp, Area: a, Items: items})
	return nil
}

// JoinVia registers the peer (as a base server) with the index or
// meta-index server at addr — the §3.3 join protocol.
func (p *Peer) JoinVia(addr string) error {
	return p.p.RegisterWith(addr, catalog.RoleBase)
}

// JoinViaAsIndex registers the peer as an index server with addr.
func (p *Peer) JoinViaAsIndex(addr string) error {
	return p.p.RegisterWith(addr, catalog.RoleIndex)
}

// Alias maps an opaque URN (e.g. "urn:ForSale:Portland-CDs") to replacement
// URNs or URLs in this peer's catalog; "http://host:port/pathExp" targets
// name a collection at a server directly.
func (p *Peer) Alias(urn string, targets ...string) {
	p.p.Catalog().AddAlias(urn, targets...)
}

// Declare retains an intensional statement (§4) at the server at addr, e.g.
// "base[USA/OR/Portland, *]@R:1 >= base[USA/OR/Portland, *]@S:1{30}".
func (p *Peer) Declare(addr, statement string) error {
	st, err := catalog.ParseStatement(p.sys.ns.ns, statement)
	if err != nil {
		return err
	}
	target := p.sys.net.Peer(addr)
	tp, ok := target.(*peer.Peer)
	if !ok {
		return fmt.Errorf("p2pq: %s is not a catalog-bearing peer", addr)
	}
	return tp.Catalog().AddStatement(st)
}

// QueryResult is a finished query.
//
// Items arrive frozen (immutable): they alias the wire payloads the result
// was delivered with, which may be shared with other plans and caches.
// Read, serialize and retain them freely; to derive mutated documents,
// work on an Item.Clone().
type QueryResult struct {
	Items   []*Item
	Latency time.Duration
	Hops    int
	Plan    *algebra.Plan
	// Partial marks an explicit partial result: the plan could no longer
	// travel productively (its visited-server memory exhausted every
	// candidate), so a server returned what was already reduced. Items are
	// then a sub-multiset of the complete answer.
	Partial bool
}

// QueryTrailOf extracts the signed provenance trail a result carried (§5.1).
func QueryTrailOf(res QueryResult) (*provenance.Trail, error) {
	return provenance.FromPlan(res.Plan)
}

// Query submits the plan starting at this peer and waits for the result
// (delivery is synchronous in the simulated network).
func (p *Peer) Query(plan *algebra.Plan) (QueryResult, error) {
	return p.QueryVia(p.Addr(), plan)
}

// QueryVia submits the plan to a specific first server.
func (p *Peer) QueryVia(addr string, plan *algebra.Plan) (QueryResult, error) {
	if plan.Target == "" {
		plan.Target = p.Addr()
	}
	if err := p.p.Submit(addr, plan); err != nil {
		return QueryResult{}, err
	}
	res, ok := p.p.TakeResult()
	if !ok {
		return QueryResult{}, fmt.Errorf("p2pq: no result delivered for plan %q", plan.ID)
	}
	items, err := res.Plan.Results()
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Items: items, Latency: res.At, Hops: res.Hops, Plan: res.Plan,
		Partial: res.Partial}, nil
}

// --- Plan builder --------------------------------------------------------

// Builder assembles query plans fluently.
type Builder struct {
	node *algebra.Node
	err  error
}

// ScanArea scans an interest-area expression (resolved through catalogs at
// run time). The area syntax must be valid for the system namespace; it is
// validated when the plan is submitted.
func ScanArea(area string) *Builder {
	// Encode lazily-parsed area via the generic cell syntax; we parse with
	// a throwaway namespace-independent transliteration: the URN encoding
	// is purely lexical (§3.4).
	a, err := parseAreaLexical(area)
	if err != nil {
		return &Builder{err: err}
	}
	return &Builder{node: algebra.URN(namespace.EncodeURN(a))}
}

// parseAreaLexical parses an area without validating against a namespace —
// encoding is lexical per §3.4.
func parseAreaLexical(s string) (namespace.Area, error) {
	if trim(s) == "" {
		return namespace.Area{}, fmt.Errorf("p2pq: empty area expression")
	}
	// Cells are comma-separated coordinates; build with hierarchy paths.
	var cells []namespace.Cell
	for _, part := range splitTop(s, '+') {
		part = trim(part)
		part = trimBrackets(part)
		var coords []hierarchy.Path
		for _, c := range splitTop(part, ',') {
			p, err := hierarchy.ParsePath(trim(c))
			if err != nil {
				return namespace.Area{}, err
			}
			coords = append(coords, p)
		}
		if len(coords) == 0 {
			return namespace.Area{}, fmt.Errorf("p2pq: empty cell in area %q", s)
		}
		cells = append(cells, namespace.NewCell(coords...))
	}
	if len(cells) == 0 {
		return namespace.Area{}, fmt.Errorf("p2pq: empty area %q", s)
	}
	return namespace.NewArea(cells...), nil
}

func splitTop(s string, sep byte) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

func trim(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func trimBrackets(s string) string {
	if len(s) >= 2 && s[0] == '[' && s[len(s)-1] == ']' {
		return s[1 : len(s)-1]
	}
	return s
}

// ScanURN scans an opaque named resource, e.g. "urn:ForSale:Portland-CDs".
func ScanURN(urn string) *Builder {
	return &Builder{node: algebra.URN(urn)}
}

// Items embeds verbatim data in the plan (e.g. the client's favorite-song
// list in the paper's Fig. 3).
func Items(items ...*Item) *Builder {
	return &Builder{node: algebra.Data(items...)}
}

// Where filters with a predicate expression, e.g. "price < 10 and
// name contains 'chair'".
func (b *Builder) Where(pred string) *Builder {
	if b.err != nil {
		return b
	}
	p, err := algebra.ParsePredicate(pred)
	if err != nil {
		return &Builder{err: err}
	}
	return &Builder{node: algebra.Select(p, b.node)}
}

// Join equi-joins with another builder on leftKey = rightKey; output tuples
// carry components named leftName and rightName.
func (b *Builder) Join(other *Builder, leftKey, rightKey, leftName, rightName string) *Builder {
	if b.err != nil {
		return b
	}
	if other.err != nil {
		return &Builder{err: other.err}
	}
	return &Builder{node: algebra.JoinNamed(leftKey, rightKey, leftName, rightName, b.node, other.node)}
}

// UnionWith unions with other builders.
func (b *Builder) UnionWith(others ...*Builder) *Builder {
	if b.err != nil {
		return b
	}
	kids := []*algebra.Node{b.node}
	for _, o := range others {
		if o.err != nil {
			return &Builder{err: o.err}
		}
		kids = append(kids, o.node)
	}
	return &Builder{node: algebra.Union(kids...)}
}

// Project keeps only the named field paths, wrapping each output item in an
// element named as.
func (b *Builder) Project(as string, fields ...string) *Builder {
	if b.err != nil {
		return b
	}
	return &Builder{node: algebra.Project(as, fields, b.node)}
}

// Count reduces to a single count item.
func (b *Builder) Count() *Builder {
	if b.err != nil {
		return b
	}
	return &Builder{node: algebra.Count(b.node)}
}

// Top keeps the first n items ordered by the field.
func (b *Builder) Top(n int, orderBy string, desc bool) *Builder {
	if b.err != nil {
		return b
	}
	return &Builder{node: algebra.TopN(n, orderBy, desc, b.node)}
}

// Plan finalizes the builder into a mutant query plan with the given id and
// result target, retaining the original query for provenance checks.
func (b *Builder) Plan(id, target string) *algebra.Plan {
	if b.err != nil {
		// Surface builder errors at validation time: an invalid plan.
		return &algebra.Plan{ID: id, Target: target}
	}
	p := algebra.NewPlan(id, target, algebra.Display(b.node))
	p.RetainOriginal()
	return p
}

// Err returns any error accumulated while building.
func (b *Builder) Err() error { return b.err }

// WithPrefs attaches a §4.3 time budget and complete-vs-current preference
// to a plan.
func WithPrefs(p *algebra.Plan, budgetMS int, preferCurrent bool) *algebra.Plan {
	mqp.SetPrefs(p, mqp.Prefs{BudgetMS: budgetMS, PreferCurrent: preferCurrent})
	return p
}

// WithTransferPolicy restricts the plan to travel only through the listed
// servers (§5.2 "only let this MQP pass through servers on this list").
func WithTransferPolicy(p *algebra.Plan, servers ...string) *algebra.Plan {
	mqp.RestrictServers(p, servers...)
	return p
}

// WithBindingOrder adds the §5.2 ordering policy: the URN named later may
// only be bound once the URN named earlier has been fully bound.
func WithBindingOrder(p *algebra.Plan, later, earlier string) *algebra.Plan {
	mqp.BindAfter(p, later, earlier)
	return p
}
