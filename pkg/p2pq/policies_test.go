package p2pq

import (
	"strings"
	"testing"
)

// TestTransferPolicyEndToEnd: a plan restricted to an allow-list completes
// when the itinerary fits, and fails when a required server is excluded.
func TestTransferPolicyEndToEnd(t *testing.T) {
	ns := garageNS(t)
	sys := NewSystem(ns)
	meta, _ := sys.AddPeer(PeerOptions{Addr: "m:1", Area: "[*, *]", Authoritative: true})
	s, _ := sys.AddPeer(PeerOptions{Addr: "s:1", Area: "[USA/OR/Portland, Music/CDs]"})
	_ = s.Publish("cds", "/d", "[USA/OR/Portland, Music/CDs]",
		BuildItem("sale", "cd", "A", "price", "5"))
	_ = s.JoinVia(meta.Addr())
	client, _ := sys.AddPeer(PeerOptions{Addr: "c:1", Knows: []string{meta.Addr()}})

	// Allowing the full itinerary succeeds.
	plan := WithTransferPolicy(
		ScanArea("[USA/OR/Portland, Music/CDs]").Count().Plan("q-ok", client.Addr()),
		"c:1", "m:1", "s:1")
	res, err := client.Query(plan)
	if err != nil || res.Items[0].InnerText() != "1" {
		t.Fatalf("allowed query: %v %v", res.Items, err)
	}

	// Excluding the seller blocks the query.
	plan2 := WithTransferPolicy(
		ScanArea("[USA/OR/Portland, Music/CDs]").Count().Plan("q-blocked", client.Addr()),
		"c:1", "m:1")
	if _, err := client.Query(plan2); err == nil {
		t.Fatal("query should fail when the data holder is outside the allow-list")
	}
}

// TestBindingOrderEndToEnd: the later URN binds only after the earlier
// one's data materialized; the provenance order proves it.
func TestBindingOrderEndToEnd(t *testing.T) {
	ns := garageNS(t)
	sys := NewSystem(ns)
	a, _ := sys.AddPeer(PeerOptions{Addr: "a:1", SigningKey: []byte("ka")})
	b, _ := sys.AddPeer(PeerOptions{Addr: "b:1", SigningKey: []byte("kb")})
	_ = a.Publish("first", "/d", "[*, *]", BuildItem("x", "k", "1"))
	_ = b.Publish("second", "/d", "[*, *]", BuildItem("y", "k", "1"))
	client, _ := sys.AddPeer(PeerOptions{Addr: "c:1", SigningKey: []byte("kc")})
	client.Alias("urn:First", "http://a:1/d")
	client.Alias("urn:Second", "http://b:1/d")
	a.Alias("urn:Second", "http://b:1/d")

	plan := ScanURN("urn:First").
		Join(ScanURN("urn:Second"), "k", "k", "f", "s").
		Plan("ordered", client.Addr())
	WithBindingOrder(plan, "urn:Second", "urn:First")
	res, err := client.Query(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("items = %v", res.Items)
	}
	// In the trail, urn:Second's bind must come after a:1's data action.
	trail, err := QueryTrailOf(res)
	if err != nil {
		t.Fatal(err)
	}
	dataIdx, bindIdx := -1, -1
	for i, v := range trail.Visits {
		if v.Detail == "http://a:1/d" && dataIdx == -1 {
			dataIdx = i
		}
		if v.Detail == "urn:Second" && strings.Contains(string(v.Action), "bind") {
			bindIdx = i
		}
	}
	if dataIdx == -1 || bindIdx == -1 || bindIdx < dataIdx {
		t.Fatalf("ordering not honored: data@%d bind@%d (%+v)", dataIdx, bindIdx, trail.Visits)
	}
}
