package repro_test

import (
	"io"
	"testing"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/xmltree"
	"time"
)

// Allocation budgets for the receive-side hot paths. These are regression
// gates, not aspirations: each bound sits ~25% above the measured value so
// real regressions fail while noise does not. Run via plain `go test`
// (and therefore `make ci`).
const (
	// warmDecodeAllocBudget bounds one zero-copy decode of the
	// representative in-flight plan (~21 KB, two 40-item payloads, retained
	// original, provenance trail). Measured: 51 allocs — all slab chunks
	// and escape materializations, none per-node.
	warmDecodeAllocBudget = 75
	// planHopAllocBudget bounds the tree-level hop (marshal, size,
	// arena-backed unmarshal, provenance stamp, re-marshal) the experiments
	// pay per link. Measured: 111 allocs (was 224 before the zero-copy
	// receive path; 7937 before PR 2).
	planHopAllocBudget = 120
	// frameCacheHitAllocBudget bounds a warm decode of a frame already in
	// the identical-frame cache: hash, byte-compare, alias the frozen tree.
	// Measured: 0 allocs.
	frameCacheHitAllocBudget = 4
	// planHopWireAllocBudget bounds the warm streamed codec hop a
	// forwarding peer pays per already-seen frame: cache-hit decode +
	// arena-backed unmarshal + provenance stamp + streaming re-encode
	// (no staging tree). Measured: 47 allocs (was ~164 on the staged
	// path before the frame cache and streaming encoder).
	planHopWireAllocBudget = 60
)

func planFixtureForAllocs(t *testing.T) (*algebra.Plan, []byte, string) {
	t.Helper()
	plan, key := planHopFixture(t)
	return plan, key, algebra.EncodeString(plan)
}

func TestWarmDecodeAllocBudget(t *testing.T) {
	_, _, wire := planFixtureForAllocs(t)
	// Disable the identical-frame cache: this budget gates the cold
	// materializing decode path, not the cache hit (which
	// TestFrameCacheHitAllocBudget bounds separately).
	defer xmltree.SetFrameCacheLimit(xmltree.SetFrameCacheLimit(0))
	// Prime the decoder pool and intern table so the measurement is the
	// steady state a forwarding peer lives in.
	if _, err := xmltree.DecodeString(wire); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		doc, err := xmltree.DecodeString(wire)
		if err != nil {
			t.Fatal(err)
		}
		if doc.Name != "mqp" {
			t.Fatal("bad decode")
		}
	})
	if allocs > warmDecodeAllocBudget {
		t.Fatalf("warm decode allocates %.0f/op; budget is %d — a decode-side regression", allocs, warmDecodeAllocBudget)
	}
}

func TestPlanHopAllocBudget(t *testing.T) {
	plan, key, _ := planFixtureForAllocs(t)
	hop := func() {
		doc := algebra.Marshal(plan)
		if doc.ByteSize() == 0 {
			t.Fatal("empty wire doc")
		}
		p2, err := algebra.Unmarshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := provenance.FromPlan(p2)
		if err != nil {
			t.Fatal(err)
		}
		tr.Append(provenance.Visit{
			Server: "hop:1", Action: provenance.ActionForward, At: time.Millisecond,
		}, key)
		provenance.ToPlan(p2, tr)
		if algebra.Marshal(p2).ByteSize() == 0 {
			t.Fatal("empty forwarded doc")
		}
	}
	hop()
	if allocs := testing.AllocsPerRun(20, hop); allocs > planHopAllocBudget {
		t.Fatalf("plan hop allocates %.0f/op; budget is %d", allocs, planHopAllocBudget)
	}
}

func TestFrameCacheHitAllocBudget(t *testing.T) {
	_, _, wire := planFixtureForAllocs(t)
	if _, err := xmltree.DecodeString(wire); err != nil { // prime the cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		doc, err := xmltree.DecodeString(wire)
		if err != nil {
			t.Fatal(err)
		}
		if doc.Name != "mqp" {
			t.Fatal("bad decode")
		}
	})
	if allocs > frameCacheHitAllocBudget {
		t.Fatalf("frame-cache hit allocates %.0f/op; budget is %d — the cache stopped aliasing", allocs, frameCacheHitAllocBudget)
	}
}

func TestPlanHopWireAllocBudget(t *testing.T) {
	_, key, wire := planFixtureForAllocs(t)
	if _, err := xmltree.DecodeString(wire); err != nil { // prime the frame cache
		t.Fatal(err)
	}
	hop := func() {
		doc, err := xmltree.DecodeString(wire)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := algebra.Unmarshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := provenance.FromPlan(p2)
		if err != nil {
			t.Fatal(err)
		}
		tr.Append(provenance.Visit{
			Server: "hop:1", Action: provenance.ActionForward, At: time.Millisecond,
		}, key)
		provenance.ToPlan(p2, tr)
		if n, err := algebra.EncodeStream(p2, io.Discard); err != nil || n == 0 {
			t.Fatalf("streamed %d bytes: %v", n, err)
		}
	}
	hop()
	if allocs := testing.AllocsPerRun(20, hop); allocs > planHopWireAllocBudget {
		t.Fatalf("wire hop allocates %.0f/op; budget is %d", allocs, planHopWireAllocBudget)
	}
}
