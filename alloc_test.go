package repro_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/xmltree"
	"time"
)

// Allocation budgets for the receive-side hot paths. These are regression
// gates, not aspirations: each bound sits ~25% above the measured value so
// real regressions fail while noise does not. Run via plain `go test`
// (and therefore `make ci`).
const (
	// warmDecodeAllocBudget bounds one zero-copy decode of the
	// representative in-flight plan (~21 KB, two 40-item payloads, retained
	// original, provenance trail). Measured: 51 allocs — all slab chunks
	// and escape materializations, none per-node.
	warmDecodeAllocBudget = 75
	// planHopAllocBudget bounds the tree-level hop (marshal, size,
	// arena-backed unmarshal, provenance stamp, re-marshal) the experiments
	// pay per link. Measured: 111 allocs (was 224 before the zero-copy
	// receive path; 7937 before PR 2).
	planHopAllocBudget = 120
	// planHopWireAllocBudget bounds the full codec hop (serialize +
	// zero-copy decode + unmarshal + provenance + re-serialize), the shape
	// simnet delivery now exercises per message. Measured: ~164 allocs.
	planHopWireAllocBudget = 200
)

func planFixtureForAllocs(t *testing.T) (*algebra.Plan, []byte, string) {
	t.Helper()
	plan, key := planHopFixture(t)
	return plan, key, algebra.EncodeString(plan)
}

func TestWarmDecodeAllocBudget(t *testing.T) {
	_, _, wire := planFixtureForAllocs(t)
	// Prime the decoder pool and intern table so the measurement is the
	// steady state a forwarding peer lives in.
	if _, err := xmltree.DecodeString(wire); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		doc, err := xmltree.DecodeString(wire)
		if err != nil {
			t.Fatal(err)
		}
		if doc.Name != "mqp" {
			t.Fatal("bad decode")
		}
	})
	if allocs > warmDecodeAllocBudget {
		t.Fatalf("warm decode allocates %.0f/op; budget is %d — a decode-side regression", allocs, warmDecodeAllocBudget)
	}
}

func TestPlanHopAllocBudget(t *testing.T) {
	plan, key, _ := planFixtureForAllocs(t)
	hop := func() {
		doc := algebra.Marshal(plan)
		if doc.ByteSize() == 0 {
			t.Fatal("empty wire doc")
		}
		p2, err := algebra.Unmarshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := provenance.FromPlan(p2)
		if err != nil {
			t.Fatal(err)
		}
		tr.Append(provenance.Visit{
			Server: "hop:1", Action: provenance.ActionForward, At: time.Millisecond,
		}, key)
		provenance.ToPlan(p2, tr)
		if algebra.Marshal(p2).ByteSize() == 0 {
			t.Fatal("empty forwarded doc")
		}
	}
	hop()
	if allocs := testing.AllocsPerRun(20, hop); allocs > planHopAllocBudget {
		t.Fatalf("plan hop allocates %.0f/op; budget is %d", allocs, planHopAllocBudget)
	}
}

func TestPlanHopWireAllocBudget(t *testing.T) {
	plan, key, _ := planFixtureForAllocs(t)
	hop := func() {
		s := algebra.EncodeString(plan)
		doc, err := xmltree.DecodeString(s)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := algebra.Unmarshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := provenance.FromPlan(p2)
		if err != nil {
			t.Fatal(err)
		}
		tr.Append(provenance.Visit{
			Server: "hop:1", Action: provenance.ActionForward, At: time.Millisecond,
		}, key)
		provenance.ToPlan(p2, tr)
		if len(algebra.EncodeString(p2)) == 0 {
			t.Fatal("empty forwarded doc")
		}
	}
	hop()
	if allocs := testing.AllocsPerRun(20, hop); allocs > planHopWireAllocBudget {
		t.Fatalf("wire hop allocates %.0f/op; budget is %d", allocs, planHopWireAllocBudget)
	}
}
