// Command mqpd runs a mutant-query-plan server over real TCP sockets: the
// same processor that powers the simulated experiments, wired to the
// network. Each connection carries one XML document: an <mqp> plan to
// process and forward, or a <registration> to accept into the catalog.
//
// Example (three shells):
//
//	mqpd -addr 127.0.0.1:9020 \
//	     -alias urn:Demo:CDs=http://127.0.0.1:9021/data \
//	     -alias urn:Demo:Tracks=http://127.0.0.1:9022/data
//	mqpd -addr 127.0.0.1:9021 -collection /data=cds.xml
//	mqpd -addr 127.0.0.1:9022 -collection /data=tracks.xml
//	mqpquery -server 127.0.0.1:9020 -plan query.xml
//
// Collections are XML files whose root's child elements are the items.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/mqp"
	"repro/internal/route"
	"repro/internal/wire"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

type aliasFlags []string

func (a *aliasFlags) String() string     { return strings.Join(*a, ",") }
func (a *aliasFlags) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	addr := flag.String("addr", "127.0.0.1:9020", "listen address (host:port)")
	planCache := flag.Int("plan-cache", 128, "prepared-plan cache entries (0 disables)")
	var aliases, collections aliasFlags
	flag.Var(&aliases, "alias", "URN alias mapping urn=target (repeatable)")
	flag.Var(&collections, "collection", "collection mapping pathExp=items.xml (repeatable)")
	flag.Parse()

	ns := workload.GarageSaleNamespace()
	cat := catalog.New(ns, *addr)
	store := map[string][]*xmltree.Node{}

	for _, a := range aliases {
		parts := strings.SplitN(a, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("mqpd: bad -alias %q (want urn=target)", a)
		}
		cat.AddAlias(parts[0], parts[1])
	}
	for _, c := range collections {
		parts := strings.SplitN(c, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("mqpd: bad -collection %q (want pathExp=file.xml)", c)
		}
		f, err := os.Open(parts[1])
		if err != nil {
			log.Fatalf("mqpd: %v", err)
		}
		doc, err := xmltree.Parse(f)
		f.Close()
		if err != nil {
			log.Fatalf("mqpd: parse %s: %v", parts[1], err)
		}
		items := doc.Elements()
		for _, it := range items {
			// Served items are immutable; frozen items are aliased into
			// plans and fetch replies instead of cloned per request.
			it.Freeze()
		}
		store[parts[0]] = items
		log.Printf("mqpd: serving %d items as %s%s", len(items), *addr, parts[0])
	}

	proc, err := mqp.New(mqp.Config{
		Self:    *addr,
		Catalog: cat,
		FetchLocal: func(_ *mqp.StepContext, _ string, pathExp string) ([]*xmltree.Node, int, error) {
			items, ok := store[pathExp]
			if !ok {
				return nil, 0, fmt.Errorf("no collection %q", pathExp)
			}
			return items, 0, nil
		},
		PushSelect: true,
		Key:        []byte("mqpd-" + *addr),
		// The file-backed store is fixed after startup; the catalog's own
		// generation (registrations, aliases) drives cache invalidation.
		PlanCacheSize: *planCache,
	})
	if err != nil {
		log.Fatalf("mqpd: %v", err)
	}

	// Forwarded plans ride persistent multiplexed links: one connection per
	// downstream peer, one vectored write per plan, frozen payload sections
	// streamed straight from their memoized serializations.
	pool := wire.NewLinkPool()
	defer pool.Close()

	srv, err := wire.Listen(*addr, func(doc *xmltree.Node) (*xmltree.Node, error) {
		switch doc.Name {
		case "mqp":
			plan, err := algebra.Unmarshal(doc)
			if err != nil {
				return nil, fmt.Errorf("mqpd: bad plan: %w", err)
			}
			out, err := proc.Step(plan)
			if err != nil {
				return nil, err
			}
			dest := out.NextHop
			if out.Done {
				dest = plan.Target
			}
			if out.Partial {
				// No productive hop remains: deliver an explicit partial
				// result instead of forwarding into a routing loop.
				dest = plan.Target
				plan = route.Partial(plan)
			}
			log.Printf("mqpd: plan %s: bound=%d fetched=%d reduced=%d -> %s",
				plan.ID, out.Bound, out.Fetched, out.Reduced, dest)
			return nil, pool.SendFrame(dest, func(e *xmltree.FrameEncoder) {
				algebra.EncodeFrame(plan, e)
			})
		case "registration":
			reg, err := catalog.UnmarshalRegistration(ns, doc)
			if err != nil {
				return nil, fmt.Errorf("mqpd: bad registration: %w", err)
			}
			log.Printf("mqpd: registered %s (%s, %s)", reg.Addr, reg.Role, reg.Area)
			return nil, cat.Register(reg)
		default:
			return nil, fmt.Errorf("mqpd: unknown document <%s>", doc.Name)
		}
	})
	if err != nil {
		log.Fatalf("mqpd: %v", err)
	}
	log.Printf("mqpd: listening on %s", srv.Addr())
	for err := range srv.Errors() {
		log.Printf("mqpd: %v", err)
	}
}
