// Command mqpquery submits a mutant query plan to an mqpd server and waits
// for the fully evaluated result to be routed back.
//
//	mqpquery -server 127.0.0.1:9020 -plan query.xml [-listen 127.0.0.1:0] [-timeout 30s]
//
// The plan file is an <mqp> document; its target attribute is overwritten
// with this client's listen address.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/algebra"
	"repro/internal/wire"
	"repro/internal/xmltree"
)

func main() {
	server := flag.String("server", "127.0.0.1:9020", "first MQP server to contact")
	planFile := flag.String("plan", "", "file holding the <mqp> plan")
	listen := flag.String("listen", "127.0.0.1:0", "address to receive the result on")
	timeout := flag.Duration("timeout", 30*time.Second, "how long to wait for the result")
	flag.Parse()

	if *planFile == "" {
		log.Fatal("mqpquery: -plan is required")
	}
	f, err := os.Open(*planFile)
	if err != nil {
		log.Fatalf("mqpquery: %v", err)
	}
	plan, err := algebra.Decode(f)
	f.Close()
	if err != nil {
		log.Fatalf("mqpquery: parse plan: %v", err)
	}

	results := make(chan *algebra.Plan, 1)
	srv, err := wire.Listen(*listen, func(doc *xmltree.Node) (*xmltree.Node, error) {
		got, err := algebra.Unmarshal(doc)
		if err != nil {
			return nil, err
		}
		select {
		case results <- got:
		default:
		}
		return nil, nil
	})
	if err != nil {
		log.Fatalf("mqpquery: %v", err)
	}
	defer srv.Close()

	plan.Target = srv.Addr()
	if plan.Original == nil {
		plan.RetainOriginal()
	}
	pool := wire.NewLinkPool()
	defer pool.Close()
	if err := pool.SendFrame(*server, func(e *xmltree.FrameEncoder) {
		algebra.EncodeFrame(plan, e)
	}); err != nil {
		log.Fatalf("mqpquery: %v", err)
	}

	select {
	case res := <-results:
		items, err := res.Results()
		if err != nil {
			log.Fatalf("mqpquery: result not constant: %v", err)
		}
		if res.PartialResult() {
			fmt.Printf("<!-- partial result: %d items (sub-multiset of the full answer) -->\n", len(items))
		} else {
			fmt.Printf("<!-- %d items -->\n", len(items))
		}
		for _, it := range items {
			fmt.Println(it.Indent())
		}
	case err := <-srv.Errors():
		log.Fatalf("mqpquery: %v", err)
	case <-time.After(*timeout):
		log.Fatalf("mqpquery: timed out after %v", *timeout)
	}
}
