package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

// Route-bench mode (-route): measures learned-routing convergence under a
// repeated workload. A learning client mines (area → index) shortcuts from
// its results' provenance trails; the benchmark reports cold vs warm routing
// cost and the warm shortcut hit rate, against a no-learning client on the
// same world and workload. Writes BENCH_route.json.

// routeReport is the BENCH_route.json document.
type routeReport struct {
	Peers         int     `json:"peers"`
	Queries       int     `json:"queries"`
	Passes        int     `json:"passes"`
	NoLearnHops   float64 `json:"nolearn_hops"`
	NoLearnMsgs   float64 `json:"nolearn_msgs_per_query"`
	ColdHops      float64 `json:"cold_hops"`
	ColdMsgs      float64 `json:"cold_msgs_per_query"`
	WarmHops      float64 `json:"warm_hops"`
	WarmMsgs      float64 `json:"warm_msgs_per_query"`
	HitRate       float64 `json:"shortcut_hit_rate"`
	Learned       uint64  `json:"shortcuts_learned"`
	TableEntries  int     `json:"shortcut_entries"`
	AbsorbedRegs  int     `json:"absorbed_index_regs"`
	MsgsReduction float64 `json:"warm_msgs_reduction_vs_nolearn"`
}

// routeWorld: one meta-index, one authoritative index per state, sellers
// below them — the hierarchy learned shortcuts let repeat queries skip.
func routeWorld(sellersPerCity int) (*simnet.Network, *namespace.Namespace, []namespace.Area, error) {
	loc := hierarchy.New("Location")
	cities := []string{"USA/OR/Portland", "USA/OR/Eugene", "USA/WA/Seattle", "USA/CA/Oakland"}
	for _, c := range cities {
		loc.MustAdd(c)
	}
	merch := hierarchy.New("Merchandise")
	merch.MustAdd("Music/CDs")
	merch.MustAdd("Furniture/Chairs")
	ns, err := namespace.New(loc, merch)
	if err != nil {
		return nil, nil, nil, err
	}
	net := simnet.New()
	if _, err := peer.New(peer.Config{Addr: "meta:9020", Net: net, NS: ns, Key: []byte("kM"),
		Area: ns.MustParseArea("[*, *]"), Authoritative: true}); err != nil {
		return nil, nil, nil, err
	}
	idxOf := map[string]string{}
	for _, st := range []string{"USA/OR", "USA/WA", "USA/CA"} {
		addr := "idx-" + st[len("USA/"):] + ":9020"
		idx, err := peer.New(peer.Config{Addr: addr, Net: net, NS: ns, Key: []byte("kI"),
			Area:          namespace.NewArea(namespace.NewCell(hierarchy.MustParsePath(st), hierarchy.Top)),
			Authoritative: true})
		if err != nil {
			return nil, nil, nil, err
		}
		if err := idx.RegisterWith("meta:9020", catalog.RoleIndex); err != nil {
			return nil, nil, nil, err
		}
		idxOf[st] = addr
	}
	var areas []namespace.Area
	for ci, city := range cities {
		for _, cat := range []string{"Music/CDs", "Furniture/Chairs"} {
			area := namespace.NewArea(namespace.NewCell(
				hierarchy.MustParsePath(city), hierarchy.MustParsePath(cat)))
			areas = append(areas, area)
			for s := 0; s < sellersPerCity; s++ {
				addr := fmt.Sprintf("s%d-%d-%s:9020", ci, s, cat[len(cat)-3:])
				sp, err := peer.New(peer.Config{Addr: addr, Net: net, NS: ns,
					Key: []byte("k" + addr), Area: area})
				if err != nil {
					return nil, nil, nil, err
				}
				items := make([]*xmltree.Node, 0, 4)
				for i := 0; i < 4; i++ {
					items = append(items, xmltree.MustParse(fmt.Sprintf(
						"<sale><cd>item-%d</cd><price>%d</price></sale>", i, 5+i)))
				}
				sp.AddCollection(peer.Collection{Name: "items", PathExp: "/d", Area: area, Items: items})
				st := hierarchy.MustParsePath(city).Truncate(2).String()
				if err := sp.RegisterWith(idxOf[st], catalog.RoleBase); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	return net, ns, areas, nil
}

func routeClient(net *simnet.Network, ns *namespace.Namespace, addr string, learn bool) (*peer.Peer, error) {
	cfg := peer.Config{Addr: addr, Net: net, NS: ns, Key: []byte("k" + addr)}
	if learn {
		cfg.LearnShortcuts = true
		cfg.AbsorbThreshold = 2
	}
	c, err := peer.New(cfg)
	if err != nil {
		return nil, err
	}
	return c, c.Catalog().Register(catalog.Registration{
		Addr: "meta:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true,
	})
}

func routePass(net *simnet.Network, c *peer.Peer, areas []namespace.Area, tag string, pass int) (hops, msgs float64, err error) {
	net.ResetMetrics()
	total := 0
	for qi, area := range areas {
		plan := algebra.NewPlan(fmt.Sprintf("rb-%s-%d-%d", tag, pass, qi), c.Addr(),
			algebra.Display(algebra.Count(algebra.URN(namespace.EncodeURN(area)))))
		plan.RetainOriginal()
		if err := c.Submit(c.Addr(), plan); err != nil {
			return 0, 0, err
		}
		res, ok := c.TakeResult()
		if !ok {
			return 0, 0, fmt.Errorf("route bench: missing result (%s pass %d)", tag, pass)
		}
		total += res.Hops
	}
	m := net.Metrics()
	return float64(total) / float64(len(areas)), float64(m.Messages) / float64(len(areas)), nil
}

func runRouteBench(out string, smoke bool) {
	sellersPerCity, passes := 3, 4
	if smoke {
		sellersPerCity, passes = 1, 2
	}
	net, ns, areas, err := routeWorld(sellersPerCity)
	if err != nil {
		log.Fatalf("loadgen -route: %v", err)
	}
	plain, err := routeClient(net, ns, "plain:9020", false)
	if err != nil {
		log.Fatalf("loadgen -route: %v", err)
	}
	learner, err := routeClient(net, ns, "learner:9020", true)
	if err != nil {
		log.Fatalf("loadgen -route: %v", err)
	}

	var noHops, noMsgs float64
	for p := 1; p <= passes; p++ {
		if noHops, noMsgs, err = routePass(net, plain, areas, "nolearn", p); err != nil {
			log.Fatalf("loadgen -route: %v", err)
		}
	}
	coldHops, coldMsgs, err := routePass(net, learner, areas, "learn", 1)
	if err != nil {
		log.Fatalf("loadgen -route: %v", err)
	}
	pre := learner.Shortcuts().Stats()
	var warmHops, warmMsgs float64
	for p := 2; p <= passes; p++ {
		if warmHops, warmMsgs, err = routePass(net, learner, areas, "learn", p); err != nil {
			log.Fatalf("loadgen -route: %v", err)
		}
	}
	post := learner.Shortcuts().Stats()
	lookups := float64(post.Hits - pre.Hits + post.Misses - pre.Misses)
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(post.Hits-pre.Hits) / lookups
	}
	absorbed := 0
	for _, r := range learner.Catalog().Registrations() {
		if r.Role == catalog.RoleIndex {
			absorbed++
		}
	}
	rep := routeReport{
		Peers:         len(net.Addrs()),
		Queries:       len(areas),
		Passes:        passes,
		NoLearnHops:   noHops,
		NoLearnMsgs:   noMsgs,
		ColdHops:      coldHops,
		ColdMsgs:      coldMsgs,
		WarmHops:      warmHops,
		WarmMsgs:      warmMsgs,
		HitRate:       hitRate,
		Learned:       post.Learned,
		TableEntries:  post.Entries,
		AbsorbedRegs:  absorbed,
		MsgsReduction: (noMsgs - warmMsgs) / noMsgs,
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("loadgen -route: %v", err)
	}
	fmt.Println(string(doc))
	if out != "-" {
		if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen -route: %v", err)
		}
	}
	if warmMsgs >= noMsgs {
		log.Fatalf("loadgen -route: warm msgs/query %.2f not below no-learning %.2f", warmMsgs, noMsgs)
	}
	if hitRate == 0 {
		log.Fatal("loadgen -route: learned tier never hit")
	}
}
