package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"repro/internal/algebra"
	"repro/internal/blobstore"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

// Memory-bench mode (-mem): measures what the content-addressed payload
// store (internal/blobstore) buys on a dedup-heavy workload. The same world
// — several sellers whose collections repeat a small set of large payload
// documents, a client replaying one query — is built and driven twice in
// one process, store-off then store-on, and the live heap (runtime.GC +
// HeapAlloc, the portable peak-RSS proxy) is compared. Store-on must also
// move repeat freight by reference on the wire; the run fails if the
// resident-memory reduction misses the 30% acceptance bar or nothing went
// by reference. Writes BENCH_mem.json.

// memReport is the BENCH_mem.json document.
type memReport struct {
	Sellers          int     `json:"sellers"`
	ItemsPerSeller   int     `json:"items_per_seller"`
	DistinctPayloads int     `json:"distinct_payloads"`
	Queries          int     `json:"queries"`
	ResultsPerQuery  int     `json:"results_per_query"`
	HeapOffBytes     uint64  `json:"live_heap_off_bytes"`
	HeapOnBytes      uint64  `json:"live_heap_on_bytes"`
	HeapReduction    float64 `json:"live_heap_reduction"`
	DedupRatio       float64 `json:"dedup_ratio"`
	ByRefSent        uint64  `json:"by_ref_sent"`
	ByRefBytes       int64   `json:"by_ref_bytes"`
	Fetches          uint64  `json:"fetches"`
	FetchFailures    uint64  `json:"fetch_failures"`
}

// memPhase is one store-off or store-on pass over the workload.
type memPhase struct {
	heap       uint64
	results    int
	byRefSent  uint64
	byRefBytes int64
	fetches    uint64
	fetchFails uint64
	dedupRatio float64
}

// memPayload is one large catalog document (~1.3 KB canonical — well above
// the by-reference threshold). Collections repeat these: the many-listings,
// few-distinct-descriptions shape replicated catalogs have.
func memPayload(i int) string {
	return fmt.Sprintf("<sale><cd>Pressing %02d</cd><price>%d</price><desc>%s</desc></sale>",
		i, 3+i*2, strings.Repeat("A fine recording, archived with full provenance detail. ", 22))
}

// memWorld builds the dedup-heavy topology: one authoritative meta index,
// `sellers` base peers each holding `itemsPer` items drawn round-robin from
// `distinct` payload documents, and a querying client. Every peer carries a
// payload store when storeOn is set; the world is byte-identical otherwise.
func memWorld(sellers, itemsPer, distinct int, storeOn bool) (*simnet.Network, *peer.Peer, error) {
	loc := hierarchy.New("Location")
	loc.MustAdd("USA/OR/Portland")
	merch := hierarchy.New("Merchandise")
	merch.MustAdd("Music/CDs")
	ns, err := namespace.New(loc, merch)
	if err != nil {
		return nil, nil, err
	}
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	blobs := func() *blobstore.Store {
		if storeOn {
			return blobstore.New()
		}
		return nil
	}

	net := simnet.New()
	meta, err := peer.New(peer.Config{Addr: "meta:9020", Net: net, NS: ns,
		Area: area, Authoritative: true, PushSelect: true, Blobs: blobs()})
	if err != nil {
		return nil, nil, err
	}
	for s := 0; s < sellers; s++ {
		sp, err := peer.New(peer.Config{Addr: fmt.Sprintf("s%d:9020", s),
			Net: net, NS: ns, Area: area, PushSelect: true, Blobs: blobs()})
		if err != nil {
			return nil, nil, err
		}
		items := make([]*xmltree.Node, 0, itemsPer)
		for i := 0; i < itemsPer; i++ {
			items = append(items, xmltree.MustParse(memPayload(i%distinct)))
		}
		sp.AddCollection(peer.Collection{
			Name: "cds", PathExp: fmt.Sprintf("/data[id=%d]", s+1), Area: area, Items: items,
		})
		if err := sp.RegisterWith("meta:9020", catalog.RoleBase); err != nil {
			return nil, nil, err
		}
	}
	meta.Catalog().AddAlias("urn:ForSale:Portland-CDs", namespace.EncodeURN(area))

	client, err := peer.New(peer.Config{Addr: "client:9020", Net: net, NS: ns, Blobs: blobs()})
	if err != nil {
		return nil, nil, err
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "meta:9020", Role: catalog.RoleMetaIndex,
		Area: area, Authoritative: true,
	}); err != nil {
		return nil, nil, err
	}
	return net, client, nil
}

// runMemPhase builds the world, replays the query, and reports the live
// heap the resident world costs (GC'd HeapAlloc delta across the build) and
// the phase's store/wire counters.
func runMemPhase(sellers, itemsPer, distinct, queries int, storeOn bool) (memPhase, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	net, client, err := memWorld(sellers, itemsPer, distinct, storeOn)
	if err != nil {
		return memPhase{}, err
	}
	tag := "off"
	if storeOn {
		tag = "on"
	}
	var ph memPhase
	for q := 0; q < queries; q++ {
		plan := algebra.NewPlan(fmt.Sprintf("mem-%s-%d", tag, q), "client:9020",
			algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 10"),
				algebra.URN("urn:ForSale:Portland-CDs"))))
		if err := client.Submit("meta:9020", plan); err != nil {
			return memPhase{}, err
		}
		res, ok := client.TakeResult()
		if !ok {
			return memPhase{}, fmt.Errorf("query mem-%s-%d: no result", tag, q)
		}
		got, err := res.Plan.Results()
		if err != nil {
			return memPhase{}, err
		}
		if ph.results != 0 && ph.results != len(got) {
			return memPhase{}, fmt.Errorf("store-%s: result count drifted across repeats: %d then %d",
				tag, ph.results, len(got))
		}
		ph.results = len(got)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		ph.heap = after.HeapAlloc - before.HeapAlloc
	}

	var resident, logical int64
	for _, addr := range net.Addrs() {
		p, ok := net.Peer(addr).(*peer.Peer)
		if !ok {
			continue
		}
		st := p.BlobNetStats()
		ph.byRefSent += st.ByRefSent
		ph.byRefBytes += st.ByRefBytes
		ph.fetches += st.Fetches
		ph.fetchFails += st.FetchFailures
		if s := p.BlobStore(); s != nil {
			ss := s.Stats()
			resident += ss.Bytes
			logical += ss.LogicalBytes
		}
		p.Close()
	}
	if resident > 0 {
		ph.dedupRatio = float64(logical) / float64(resident)
	}
	return ph, nil
}

func runMemBench(out string, smoke bool) {
	sellers, itemsPer, distinct, queries := 6, 128, 8, 3
	if smoke {
		sellers, itemsPer, distinct, queries = 3, 48, 8, 2
	}
	off, err := runMemPhase(sellers, itemsPer, distinct, queries, false)
	if err != nil {
		log.Fatalf("loadgen -mem (store off): %v", err)
	}
	on, err := runMemPhase(sellers, itemsPer, distinct, queries, true)
	if err != nil {
		log.Fatalf("loadgen -mem (store on): %v", err)
	}
	if off.results != on.results || off.results == 0 {
		log.Fatalf("loadgen -mem: store changed the answer: %d results off, %d on",
			off.results, on.results)
	}
	reduction := 0.0
	if off.heap > 0 {
		reduction = 1 - float64(on.heap)/float64(off.heap)
	}
	rep := memReport{
		Sellers:          sellers,
		ItemsPerSeller:   itemsPer,
		DistinctPayloads: distinct,
		Queries:          queries,
		ResultsPerQuery:  off.results,
		HeapOffBytes:     off.heap,
		HeapOnBytes:      on.heap,
		HeapReduction:    reduction,
		DedupRatio:       on.dedupRatio,
		ByRefSent:        on.byRefSent,
		ByRefBytes:       on.byRefBytes,
		Fetches:          on.fetches,
		FetchFailures:    on.fetchFails,
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("loadgen -mem: %v", err)
	}
	fmt.Println(string(doc))
	if out != "-" {
		if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen -mem: %v", err)
		}
	}
	if off.byRefSent != 0 || off.byRefBytes != 0 {
		log.Fatalf("loadgen -mem: store-off phase reported by-reference traffic: %+v", off)
	}
	if on.byRefBytes == 0 {
		log.Fatal("loadgen -mem: no repeat freight went by reference")
	}
	if on.fetchFails != 0 {
		log.Fatalf("loadgen -mem: %d fetch failures in a fault-free run", on.fetchFails)
	}
	if reduction < 0.30 {
		log.Fatalf("loadgen -mem: live-heap reduction %.1f%% below the 30%% acceptance bar", reduction*100)
	}
}
