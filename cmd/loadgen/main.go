// Command loadgen measures the concurrent peer runtime: it drives one
// in-process worker-pool peer with a closed-loop multi-query workload and
// reports sustained throughput, result latency percentiles, and
// prepared-plan cache effectiveness.
//
// The harness is deliberately minimal: an inline simnet (concurrent-safe
// delivery), one server peer configured with Workers and a prepared-plan
// cache, and a collector peer that receives results. Client goroutines
// submit plans drawn from a small set of query shapes — the many-clients,
// few-distinct-queries pattern the plan cache exists for — throttled by a
// token semaphore sized to the server's queue so the loop measures steady
// state, not admission-rejection churn.
//
// Run: go run ./cmd/loadgen [-duration 3s] [-workers N] [-out BENCH_runtime.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

const (
	serverAddr = "server:9020"
	clientAddr = "client:9020"
	// latencySampleEvery picks which submissions carry a wall-clock stamp
	// for latency measurement (the rest reuse prototype bodies).
	latencySampleEvery = 64
)

// collector is the client side of the loop: a bare simnet.Peer that
// receives results, measures end-to-end latency (submit wall-clock nanos
// ride in the plan ID), and returns the plan's token to the semaphore.
type collector struct {
	sem chan struct{}

	mu        sync.Mutex
	latencies []int64 // ns
	completed int64
	partials  map[string]int64 // partial-reason ("" = routing partial) -> count
}

func (c *collector) Addr() string { return clientAddr }

func (c *collector) Deliver(_ *simnet.Network, msg *simnet.Message) error {
	plan, err := algebra.Unmarshal(msg.Body)
	if err != nil {
		return fmt.Errorf("loadgen: bad result: %w", err)
	}
	lat := int64(0)
	if i := strings.LastIndexByte(plan.ID, '-'); i >= 0 {
		if start, err := strconv.ParseInt(plan.ID[i+1:], 10, 64); err == nil {
			lat = time.Now().UnixNano() - start
		}
	}
	c.mu.Lock()
	if plan.PartialResult() {
		if c.partials == nil {
			c.partials = map[string]int64{}
		}
		c.partials[plan.PartialReason()]++
	} else {
		c.completed++
		if lat > 0 {
			c.latencies = append(c.latencies, lat)
		}
	}
	c.mu.Unlock()
	select {
	case c.sem <- struct{}{}:
	default:
	}
	return nil
}

func (c *collector) Serve(_ *simnet.Network, req *simnet.Message) (*xmltree.Node, error) {
	return nil, fmt.Errorf("loadgen: collector serves nothing (got %s)", req.Kind)
}

// report is the BENCH_runtime.json document.
type report struct {
	DurationSec float64 `json:"duration_sec"`
	Workers     int     `json:"workers"`
	QueueDepth  int     `json:"queue_depth"`
	Submitted   int64   `json:"submitted"`
	Completed   int64   `json:"completed"`
	Partials    int64   `json:"partials"`
	Rejected    int64   `json:"rejected_admission"`
	PlansPerSec float64 `json:"plans_per_sec"`
	P50Micros   float64 `json:"latency_p50_us"`
	P99Micros   float64 `json:"latency_p99_us"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	CacheRate   float64 `json:"cache_hit_rate"`
	Messages    int64   `json:"net_messages"`
	Bytes       int64   `json:"net_bytes"`
}

func buildWorld(workers, queueDepth, cacheSize int, sem chan struct{}) (*simnet.Network, *collector, error) {
	loc := hierarchy.New("Location")
	loc.MustAdd("USA/OR/Portland")
	merch := hierarchy.New("Merchandise")
	merch.MustAdd("Music/CDs")
	ns, err := namespace.New(loc, merch)
	if err != nil {
		return nil, nil, err
	}
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

	net := simnet.New()
	srv, err := peer.New(peer.Config{
		Addr: serverAddr, Net: net, NS: ns,
		Area: area, Authoritative: true,
		PushSelect: true,
		// No signing key: provenance trails are off, as in a production
		// deployment that does not audit routing. The chaos harness covers
		// the signed path; this harness measures the processing pipeline.
		Workers:       workers,
		QueueDepth:    queueDepth,
		PlanCacheSize: cacheSize,
	})
	if err != nil {
		return nil, nil, err
	}
	items := make([]*xmltree.Node, 0, 16)
	for i := 0; i < 16; i++ {
		items = append(items, xmltree.MustParse(fmt.Sprintf(
			"<sale><cd>Album %02d</cd><price>%d</price></sale>", i, 3+i*2)))
	}
	srv.AddCollection(peer.Collection{
		Name: "cds", PathExp: "/data[id=1]", Area: area, Items: items,
	})
	// The server is its own (authoritative) index: registering with itself
	// puts the collection where plan binding looks for it.
	if err := srv.RegisterWith(serverAddr, catalog.RoleBase); err != nil {
		return nil, nil, err
	}
	srv.Catalog().AddAlias("urn:ForSale:Portland-CDs", namespace.EncodeURN(area))

	col := &collector{sem: sem}
	net.Add(col)
	return net, col, nil
}

// shape is one distinct query in the workload: a pre-marshaled, frozen
// prototype body submitted verbatim (the common case — a client resending a
// known query), plus a builder for timestamped one-off instances used to
// sample end-to-end latency. Every instance of a shape has the same
// fingerprint, so a warmed cache serves all of them from one prepared entry.
type shape struct {
	proto *xmltree.Node
	build func(id string) *algebra.Plan
}

// planShapes returns the distinct query shapes the clients cycle through:
// selections over the catalog-resolved URN with different predicates.
func planShapes() []shape {
	// Selective predicates (a few matching items each), the common shape of
	// interactive point queries.
	preds := []string{
		"price < 7", "price < 9", "price < 11", "price < 13",
		"price > 25", "price > 27", "price > 29", "price > 31",
	}
	shapes := make([]shape, 0, len(preds))
	for i, pr := range preds {
		pred := algebra.MustParsePredicate(pr)
		build := func(id string) *algebra.Plan {
			sel := algebra.Select(pred, algebra.URN("urn:ForSale:Portland-CDs"))
			return algebra.NewPlan(id, clientAddr, algebra.Display(sel))
		}
		// The prototype is frozen: immutable, safely shared by every client
		// goroutine, serialized once (Freeze memoizes the wire form).
		proto := algebra.Marshal(build(fmt.Sprintf("lgproto%d", i))).Freeze()
		shapes = append(shapes, shape{proto: proto, build: build})
	}
	return shapes
}

func percentile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e3 // ns -> µs
}

func main() {
	duration := flag.Duration("duration", 3*time.Second, "measurement duration")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "server worker-pool size")
	cacheSize := flag.Int("plan-cache", 256, "server prepared-plan cache entries")
	smoke := flag.Bool("smoke", false, "CI smoke mode: short run, relaxed reporting")
	routeMode := flag.Bool("route", false, "learned-routing bench: repeated workload, cold vs warm (writes BENCH_route.json)")
	memMode := flag.Bool("mem", false, "payload-store memory bench: dedup-heavy workload, store off vs on (writes BENCH_mem.json)")
	out := flag.String("out", "", "report path ('-' for stdout only; defaults per mode)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	flag.Parse()
	if *out == "" {
		switch {
		case *routeMode:
			*out = "BENCH_route.json"
		case *memMode:
			*out = "BENCH_mem.json"
		default:
			*out = "BENCH_runtime.json"
		}
	}
	if *routeMode {
		runRouteBench(*out, *smoke)
		return
	}
	if *memMode {
		runMemBench(*out, *smoke)
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *smoke {
		*duration = 300 * time.Millisecond
	}

	queueDepth := 4 * *workers
	// Tokens cap in-flight plans below queue+workers, so steady state sheds
	// (almost) nothing and the loop measures processing, not rejection.
	inflight := queueDepth + *workers/2
	sem := make(chan struct{}, inflight)
	for i := 0; i < inflight; i++ {
		sem <- struct{}{}
	}

	net, col, err := buildWorld(*workers, queueDepth, *cacheSize, sem)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	srv := net.Peer(serverAddr).(*peer.Peer)
	defer srv.Close()

	shapes := planShapes()
	var submitted, seq atomic.Int64
	stop := make(chan struct{})
	time.AfterFunc(*duration, func() { close(stop) })

	clients := *workers
	if clients < 2 {
		clients = 2
	}
	var wg sync.WaitGroup
	wg.Add(clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-sem:
				}
				n := seq.Add(1)
				sh := shapes[int(n)%len(shapes)]
				body := sh.proto
				if n%latencySampleEvery == 0 {
					// Latency sample: a one-off instance carrying its submit
					// wall-clock in the ID, paying the full build+marshal
					// cost a fresh query would.
					id := fmt.Sprintf("lg%d-%d", n, time.Now().UnixNano())
					body = algebra.Marshal(sh.build(id))
				}
				if err := net.Send(&simnet.Message{
					From: clientAddr, To: serverAddr,
					Kind: peer.KindMQP, Body: body,
				}); err != nil {
					log.Fatalf("loadgen: submit: %v", err)
				}
				submitted.Add(1)
			}
		}()
	}
	wg.Wait()
	// Let in-flight plans drain so completion accounting is stable.
	for deadline := time.Now().Add(time.Second); time.Now().Before(deadline); {
		col.mu.Lock()
		done := col.completed
		var parts int64
		for _, v := range col.partials {
			parts += v
		}
		col.mu.Unlock()
		if done+parts >= submitted.Load() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	col.mu.Lock()
	lats := append([]int64(nil), col.latencies...)
	completed := col.completed
	var partials, rejected int64
	for reason, v := range col.partials {
		partials += v
		if reason == "admission" {
			rejected = v
		}
	}
	col.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	cs := srv.CacheStats()
	m := net.Metrics()
	rep := report{
		DurationSec: elapsed.Seconds(),
		Workers:     *workers,
		QueueDepth:  queueDepth,
		Submitted:   submitted.Load(),
		Completed:   completed,
		Partials:    partials,
		Rejected:    rejected,
		PlansPerSec: float64(completed) / elapsed.Seconds(),
		P50Micros:   percentile(lats, 0.50),
		P99Micros:   percentile(lats, 0.99),
		CacheHits:   cs.Hits,
		CacheMisses: cs.Misses,
		CacheRate:   cs.HitRate(),
		Messages:    m.Messages,
		Bytes:       m.Bytes,
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	fmt.Println(string(doc))
	if *out != "-" {
		if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
	}
	if completed == 0 {
		log.Fatal("loadgen: no plans completed")
	}
}
