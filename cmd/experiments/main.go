// Command experiments regenerates every table/figure-level experiment of
// the reproduction (E1–E12, see DESIGN.md and EXPERIMENTS.md) and prints
// paper-style rows.
//
// Usage:
//
//	experiments            # run all
//	experiments -only E4   # run one experiment
//	experiments -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. E4)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	runners := experiments.All()
	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}
	failed := 0
	for _, r := range runners {
		if *only != "" && !strings.EqualFold(*only, r.ID) {
			continue
		}
		t, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(t.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
