// Command experiments regenerates every table/figure-level experiment of
// the reproduction (E1–E14, see DESIGN.md and EXPERIMENTS.md) and prints
// paper-style rows.
//
// Experiments are independent (each builds its own simulated network and
// seeds its own workload), so they run concurrently; tables are printed in
// DESIGN.md order regardless of completion order, so output is byte-for-byte
// identical to a sequential run.
//
// Usage:
//
//	experiments               # run all, one worker per experiment
//	experiments -only E4      # run one experiment
//	experiments -parallel 2   # cap concurrency
//	experiments -short        # trim the E4/E9 scaling sweeps (CI mode)
//	experiments -list         # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. E4)")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", 0, "max experiments in flight (<=0: all at once)")
	short := flag.Bool("short", false, "drop the largest network sizes from scaling sweeps")
	flag.Parse()

	experiments.ShortMode = *short

	runners := experiments.All()
	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}
	if *only != "" {
		var kept []experiments.Runner
		for _, r := range runners {
			if strings.EqualFold(*only, r.ID) {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *only)
			os.Exit(1)
		}
		runners = kept
	}

	failed := 0
	for _, res := range experiments.RunAll(runners, *parallel) {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", res.Runner.ID, res.Err)
			failed++
			continue
		}
		fmt.Println(res.Table.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
