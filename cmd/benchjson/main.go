// Command benchjson converts a `go test -json` benchmark stream (stdin)
// into a clean machine-readable summary, in the spirit of the loadgen
// reports (BENCH_runtime.json): one record per benchmark with its parsed
// metrics, instead of a raw event log that every consumer has to sed apart.
//
// Usage:
//
//	go test -run '^$' -bench X -benchmem -json ./... | benchjson -out BENCH_x.json
//
// The human-readable benchmark result lines are echoed to stdout so make
// targets keep their at-a-glance output. Exit status is non-zero when the
// stream contains a test failure or no benchmark results at all.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// event is the subset of test2json's record shape benchjson consumes.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom units (KB/query, msgs/plan, ...) verbatim.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type summary struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Benchmarks []result `json:"benchmarks"`
	Failures   int      `json:"failures,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "-", "summary destination (- for stdout)")
	flag.Parse()

	sum := summary{Benchmarks: []result{}}
	// A benchmark result is emitted as several output events — the padded
	// name first, the metrics once timing finishes — so output is
	// re-assembled per package and parsed line by line.
	partial := map[string]string{}
	handleLine := func(pkg, line string) {
		switch {
		case strings.HasPrefix(line, "goos: "):
			sum.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			sum.Goarch = strings.TrimPrefix(line, "goarch: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			return
		}
		fmt.Println(line) // keep the human-readable output flowing
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := result{Name: m[1], Package: pkg, Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		sum.Benchmarks = append(sum.Benchmarks, r)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate interleaved non-JSON noise
		}
		if ev.Action == "fail" {
			sum.Failures++
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			handleLine(ev.Package, buf[:nl])
			buf = buf[nl+1:]
		}
		partial[ev.Package] = buf
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(2)
	}
	for pkg, rest := range partial {
		if rest != "" {
			handleLine(pkg, rest)
		}
	}

	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if sum.Failures > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d package failures in stream\n", sum.Failures)
		os.Exit(1)
	}
	if len(sum.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in stream")
		os.Exit(1)
	}
}
