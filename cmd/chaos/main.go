// Command chaos runs the fault-injection differential harness
// (internal/chaos): seeded random topologies and query workloads executed
// under injected network faults, every run checked against a centralized
// oracle.
//
// Usage:
//
//	chaos -n 200                 # sweep 200 seeds (CI smoke)
//	chaos -seed 1337 -v          # replay one scenario from its seed
//	chaos -n 500 -level heavy    # sweep at a fixed fault intensity
//
// A sweep failure prints the seed; rerun it with -seed (or make chaos
// SEED=...) for a byte-identical replay. Exit status is non-zero when any
// invariant was violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 0, "replay a single scenario by seed (0: sweep mode)")
	n := flag.Int("n", 200, "sweep: number of seeded scenarios")
	start := flag.Int64("start", 1, "sweep: first seed")
	levelName := flag.String("level", "mixed", "fault intensity: none, light, heavy, mixed")
	verbose := flag.Bool("v", false, "print a summary line per scenario")
	maxStuck := flag.Int("max-stuck", -1, "fail when more than this many plans end up stuck (-1: no gate); CI runs the fault-free sweep with -max-stuck 0")
	flag.Parse()

	level := chaos.ParseLevel(*levelName)
	seeds := make([]int64, 0, *n)
	if *seed != 0 {
		seeds = append(seeds, *seed)
		*verbose = true
	} else {
		for i := 0; i < *n; i++ {
			seeds = append(seeds, *start+int64(i))
		}
	}

	var plans, completed, partial, stuck, lost, checked, failures int
	began := time.Now()
	for _, s := range seeds {
		rep, err := chaos.Run(chaos.Config{Seed: s, Level: level})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: seed %d: harness error: %v\n", s, err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Println(rep.Summary())
			for _, d := range rep.StuckDetails {
				fmt.Printf("  stuck: %s\n", d)
			}
		}
		plans += rep.Plans
		completed += rep.Completed
		partial += rep.Partial
		stuck += rep.Stuck
		lost += rep.LostToFaults
		checked += rep.OracleChecked
		if rep.Failed() {
			failures++
			fmt.Fprintf(os.Stderr, "chaos: seed %d VIOLATED (replay: make chaos SEED=%d):\n", s, s)
			for _, v := range rep.Violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
		}
	}
	elapsed := time.Since(began)
	fmt.Printf("chaos: %d scenarios (level=%s) in %v (%.0f/s): %d plans, %d completed, %d partial, %d stuck, %d lost-to-faults, %d oracle-checked, %d violations\n",
		len(seeds), level, elapsed.Round(time.Millisecond), float64(len(seeds))/elapsed.Seconds(),
		plans, completed, partial, stuck, lost, checked, failures)
	if failures > 0 {
		os.Exit(1)
	}
	if *maxStuck >= 0 && stuck > *maxStuck {
		fmt.Fprintf(os.Stderr, "chaos: %d stuck plans exceed the -max-stuck %d gate\n", stuck, *maxStuck)
		os.Exit(1)
	}
}
