// Command chaos runs the fault-injection differential harness
// (internal/chaos): seeded random topologies and query workloads executed
// under injected network faults, every run checked against a centralized
// oracle.
//
// Usage:
//
//	chaos -n 200                        # sweep 200 seeds (CI smoke)
//	chaos -seed 1337 -v                 # replay one scenario from its seed
//	chaos -n 500 -level heavy           # sweep at a fixed fault intensity
//	chaos -n 50 -peers 1000 -churn      # large worlds: churn + promotion
//
// -peers switches to the large-world generator (layered per-state indexes,
// zipf-skewed load, incremental oracle with sampled full verification);
// -churn adds mid-run joins, leaves and replica promotions. A sweep failure
// prints the seed; rerun it with -seed and the same world flags (or make
// chaos SEED=...) for a byte-identical replay. Exit status is non-zero when
// any invariant was violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 0, "replay a single scenario by seed (0: sweep mode)")
	n := flag.Int("n", 200, "sweep: number of seeded scenarios")
	start := flag.Int64("start", 1, "sweep: first seed")
	levelName := flag.String("level", "mixed", "fault intensity: none, light, heavy, mixed")
	verbose := flag.Bool("v", false, "print a summary line per scenario")
	maxStuck := flag.Int("max-stuck", -1, "fail when more than this many plans end up stuck (-1: no gate); CI runs the fault-free sweep with -max-stuck 0")
	peersN := flag.Int("peers", 0, "large worlds: number of seller peers (0: original small-world generator)")
	churn := flag.Bool("churn", false, "large worlds: mid-run joins, leaves, crash windows and replica promotion")
	zipf := flag.Float64("zipf", 0, "large worlds: specialty/query skew exponent (0: seed-derived)")
	oracleSample := flag.Float64("oracle-sample", 0, "large worlds: fraction of queries given full reference-oracle verification (0: default 0.15)")
	learn := flag.Bool("learn", false, "enable learned routing shortcuts on every peer (trail mining, learned-tier routing, catalog absorption)")
	blobs := flag.Bool("blobs", false, "enable the content-addressed payload store on every peer (dedup at rest, by-reference freight, fetch-on-miss)")
	flag.Parse()

	level := chaos.ParseLevel(*levelName)
	seeds := make([]int64, 0, *n)
	if *seed != 0 {
		seeds = append(seeds, *seed)
		*verbose = true
	} else {
		for i := 0; i < *n; i++ {
			seeds = append(seeds, *start+int64(i))
		}
	}

	var plans, completed, partial, stuck, lost, checked, failures int
	var joined, left, promoted, refused, sampled int
	var byRef, fetches, fetchFails uint64
	var byRefBytes int64
	began := time.Now()
	for _, s := range seeds {
		rep, err := chaos.Run(chaos.Config{Seed: s, Level: level,
			Peers: *peersN, Churn: *churn, Zipf: *zipf, OracleSample: *oracleSample,
			Learn: *learn, Blobs: *blobs})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: seed %d: harness error: %v\n", s, err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Println(rep.Summary())
			for _, d := range rep.StuckDetails {
				fmt.Printf("  stuck: %s\n", d)
			}
		}
		plans += rep.Plans
		completed += rep.Completed
		partial += rep.Partial
		stuck += rep.Stuck
		lost += rep.LostToFaults
		checked += rep.OracleChecked
		joined += rep.Joined
		left += rep.Left
		promoted += rep.Promoted
		refused += rep.PromotionsRefused
		sampled += rep.SampledChecks
		byRef += rep.Blobs.ByRefSent
		byRefBytes += rep.Blobs.ByRefBytes
		fetches += rep.Blobs.Fetches
		fetchFails += rep.Blobs.FetchFailures
		if rep.Failed() {
			failures++
			fmt.Fprintf(os.Stderr, "chaos: seed %d VIOLATED (replay: make chaos SEED=%d):\n", s, s)
			for _, v := range rep.Violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
		}
	}
	elapsed := time.Since(began)
	// The large-world columns print on their own line so the small-world
	// summary stays byte-identical across releases (sweep outputs are
	// diffed in CI).
	if *peersN > 0 {
		fmt.Printf("chaos: large worlds (peers=%d churn=%v): %d sampled-oracle checks, %d joined, %d left, %d promoted, %d promotions-refused\n",
			*peersN, *churn, sampled, joined, left, promoted, refused)
	}
	if *blobs {
		fmt.Printf("chaos: payload store: %d by-ref sends saving %d bytes, %d fetches (%d failed)\n",
			byRef, byRefBytes, fetches, fetchFails)
	}
	fmt.Printf("chaos: %d scenarios (level=%s) in %v (%.0f/s): %d plans, %d completed, %d partial, %d stuck, %d lost-to-faults, %d oracle-checked, %d violations\n",
		len(seeds), level, elapsed.Round(time.Millisecond), float64(len(seeds))/elapsed.Seconds(),
		plans, completed, partial, stuck, lost, checked, failures)
	if failures > 0 {
		os.Exit(1)
	}
	if *maxStuck >= 0 && stuck > *maxStuck {
		fmt.Fprintf(os.Stderr, "chaos: %d stuck plans exceed the -max-stuck %d gate\n", stuck, *maxStuck)
		os.Exit(1)
	}
}
