// Package repro's top-level benchmarks regenerate every experiment of the
// reproduction (one benchmark per DESIGN.md experiment id) plus
// micro-benchmarks of the core machinery. Run:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark executes the full scenario — building the
// simulated network, running the workload, checking the paper's qualitative
// claims — so op time is "cost to reproduce the experiment".
package repro_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/provenance"
	"repro/internal/wire"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var runner experiments.Runner
	for _, r := range experiments.All() {
		if r.ID == id {
			runner = r
			break
		}
	}
	if runner.Run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := runner.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: no rows", id)
		}
	}
}

func BenchmarkE1Fig34CDQuery(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Fig1GeneRouting(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3Fig5CoverOverlap(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4RoutingComparison(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5MQPvsCoordinator(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6Intensional(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7CurrencyLatency(b *testing.B)   { benchExperiment(b, "E7") }
func BenchmarkE8AbsorptionRewrite(b *testing.B) { benchExperiment(b, "E8") }
func BenchmarkE9CatalogScaling(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Provenance(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Annotations(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12PrivateJoin(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13Ablations(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14Robustness(b *testing.B)       { benchExperiment(b, "E14") }

// --- Micro-benchmarks of the machinery the experiments stand on ---------

func BenchmarkMicroPlanEncodeDecode(b *testing.B) {
	sales, listings := workload.CDCatalog(1, 30)
	plan := algebra.NewPlan("bench", "t:1", algebra.Display(
		algebra.JoinNamed("cd", "cd", "sale", "listing",
			algebra.Data(sales...), algebra.Data(listings...))))
	s := algebra.EncodeString(plan)
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := algebra.DecodeString(s)
		if err != nil {
			b.Fatal(err)
		}
		if algebra.EncodeString(p) != s {
			b.Fatal("unstable round trip")
		}
	}
}

func BenchmarkMicroSelectPushdown(b *testing.B) {
	leaves := make([]*algebra.Node, 16)
	for i := range leaves {
		leaves[i] = algebra.URL(fmt.Sprintf("s%d:1", i), "")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 10"),
			algebra.Union(cloneAll(leaves)...)))
		if n := algebra.PushSelectThroughUnion(root); n != 1 {
			b.Fatalf("rewrites = %d", n)
		}
	}
}

func cloneAll(ns []*algebra.Node) []*algebra.Node {
	out := make([]*algebra.Node, len(ns))
	for i, n := range ns {
		out[i] = n.Clone()
	}
	return out
}

func BenchmarkMicroThreeWayJoinEval(b *testing.B) {
	sales, listings := workload.CDCatalog(2, 100)
	favs := make([]*xmltree.Node, 20)
	for i := range favs {
		favs[i] = xmltree.Elem("song",
			xmltree.ElemText("title", fmt.Sprintf("Track 1 of Album %03d", i*3)))
	}
	plan := algebra.JoinNamed("title", "listing/song", "fav", "match",
		algebra.Data(favs...),
		algebra.JoinNamed("cd", "cd", "sale", "listing",
			algebra.Select(algebra.MustParsePredicate("price < 15"), algebra.Data(sales...)),
			algebra.Data(listings...)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Evaluate(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroGarageSaleGen(b *testing.B) {
	ns := workload.GarageSaleNamespace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sellers := workload.GarageSale(ns, workload.GarageSaleConfig{
			Seed: int64(i), Sellers: 64, ItemsPerSeller: 8, SpecialtyZipf: 1.3,
		})
		if len(sellers) != 64 {
			b.Fatal("bad generation")
		}
	}
}

// serializeDoc builds a representative wire document: nested elements,
// unsorted attributes, and text containing every escapable character, the
// same shape the simnet accounting layer serializes on every message.
func serializeDoc() *xmltree.Node {
	root := xmltree.Elem("mqp")
	root.SetAttr("target", "client:9020")
	root.SetAttr("id", "bench-1")
	for i := 0; i < 40; i++ {
		item := xmltree.Elem("item",
			xmltree.ElemText("title", fmt.Sprintf("Track %d <live> & \"remastered\"", i)),
			xmltree.ElemText("price", fmt.Sprintf("%d.99", i)),
			xmltree.ElemText("seller", fmt.Sprintf("s%d&co", i)))
		item.SetAttr("zip", fmt.Sprintf("97%03d", i))
		item.SetAttr("condition", "good>fair")
		root.Add(item)
	}
	return root
}

func BenchmarkCanonicalSerialize(b *testing.B) {
	doc := serializeDoc()
	b.SetBytes(int64(len(doc.String())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if doc.String() == "" {
			b.Fatal("empty serialization")
		}
	}
}

func BenchmarkByteSize(b *testing.B) {
	doc := serializeDoc()
	want := len(doc.String())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if doc.ByteSize() != want {
			b.Fatal("size mismatch")
		}
	}
}

// planHopFixture builds a plan the way a forwarding hop owns one — decoded
// from the wire — carrying two data payloads, one unresolved URL leaf (so
// the plan is not constant), a retained original, and a three-visit
// provenance trail.
func planHopFixture(b testing.TB) (*algebra.Plan, []byte) {
	b.Helper()
	sales, listings := workload.CDCatalog(7, 40)
	plan := algebra.NewPlan("hop", "client:1", algebra.Display(
		algebra.Union(
			algebra.JoinNamed("cd", "cd", "sale", "listing",
				algebra.Data(sales...), algebra.Data(listings...)),
			algebra.URL("far:9020", "/data[id=7]"))))
	plan.RetainOriginal()
	key := []byte("bench-key")
	trail := &provenance.Trail{}
	for i, srv := range []string{"a:1", "b:1", "c:1"} {
		trail.Append(provenance.Visit{
			Server: srv, Action: provenance.ActionForward,
			At: time.Duration(i) * time.Millisecond,
		}, key)
	}
	provenance.ToPlan(plan, trail)
	p, err := algebra.DecodeString(algebra.EncodeString(plan))
	if err != nil {
		b.Fatal(err)
	}
	return p, key
}

// BenchmarkPlanHop measures one peer hop of a plan in flight: marshal at the
// sender, price the wire bytes, unmarshal at the receiver, stamp provenance,
// and re-marshal to forward — the per-hop cost the experiments pay on every
// link a plan traverses.
func BenchmarkPlanHop(b *testing.B) {
	plan, key := planHopFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := algebra.Marshal(plan)
		if doc.ByteSize() == 0 {
			b.Fatal("empty wire doc")
		}
		p2, err := algebra.Unmarshal(doc)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := provenance.FromPlan(p2)
		if err != nil {
			b.Fatal(err)
		}
		tr.Append(provenance.Visit{
			Server: "hop:1", Action: provenance.ActionForward, At: time.Millisecond,
		}, key)
		provenance.ToPlan(p2, tr)
		out := algebra.Marshal(p2)
		if out.ByteSize() == 0 {
			b.Fatal("empty forwarded doc")
		}
	}
}

// BenchmarkDecode measures the zero-copy receive path: one slice-backed
// decode (xmltree.Decode) of a representative in-flight plan — data
// payloads, retained original, provenance trail — exactly what a peer pays
// per arriving frame it has never seen. The identical-frame cache is
// disabled so every iteration takes the cold materializing path; compare
// BenchmarkParseLegacy on the same bytes and BenchmarkPlanHopWire for the
// warm (cached) hop.
func BenchmarkDecode(b *testing.B) {
	_, wire := planHopWireFixture(b)
	defer xmltree.SetFrameCacheLimit(xmltree.SetFrameCacheLimit(0))
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, err := xmltree.Decode(wire)
		if err != nil {
			b.Fatal(err)
		}
		if doc.Name != "mqp" {
			b.Fatal("bad decode")
		}
	}
}

// BenchmarkParseLegacy is the encoding/xml-based reference decoder on the
// same input, kept as the baseline the zero-copy decoder is measured
// against (the acceptance bar is ≥3× faster).
func BenchmarkParseLegacy(b *testing.B) {
	_, wire := planHopWireFixture(b)
	s := string(wire)
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, err := xmltree.ParseString(s)
		if err != nil {
			b.Fatal(err)
		}
		if doc.Name != "mqp" {
			b.Fatal("bad parse")
		}
	}
}

// planHopWireFixture is planHopFixture in its on-the-wire byte form.
func planHopWireFixture(b testing.TB) (*algebra.Plan, []byte) {
	b.Helper()
	plan, _ := planHopFixture(b)
	return plan, []byte(algebra.EncodeString(plan))
}

// BenchmarkPlanHopWire measures a full hop through the real codec, the way
// a forwarding peer now pays it: a fixed incoming frame arrives (forwarding
// fan-out and duplicated deliveries make identical frames the common case,
// so the decode is an identical-frame cache hit — hash, byte-compare, alias
// the frozen tree), the plan is unmarshaled into an arena-backed operator
// shell, provenance is stamped, and the forwarded frame is streamed out with
// no staging tree. The sender-side encode of the incoming frame is not in
// the loop: it was the previous hop's streamed encode, measured there.
func BenchmarkPlanHopWire(b *testing.B) {
	plan, key := planHopFixture(b)
	wire := algebra.EncodeString(plan)
	if _, err := xmltree.DecodeString(wire); err != nil { // prime the frame cache
		b.Fatal(err)
	}
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, err := xmltree.DecodeString(wire)
		if err != nil {
			b.Fatal(err)
		}
		p2, err := algebra.Unmarshal(doc)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := provenance.FromPlan(p2)
		if err != nil {
			b.Fatal(err)
		}
		tr.Append(provenance.Visit{
			Server: "hop:1", Action: provenance.ActionForward, At: time.Millisecond,
		}, key)
		provenance.ToPlan(p2, tr)
		if n, err := algebra.EncodeStream(p2, io.Discard); err != nil || n == 0 {
			b.Fatalf("streamed %d bytes: %v", n, err)
		}
	}
}

// BenchmarkStreamEncode isolates the streaming frame encoder: canonical
// bytes from the plan tree straight to a writer, frozen payload sections
// riding as zero-copy segments of their memoized serializations. Compare
// the EncodeString column of BenchmarkMicroPlanEncodeDecode for the staged
// path.
func BenchmarkStreamEncode(b *testing.B) {
	plan, _ := planHopFixture(b)
	b.SetBytes(int64(len(algebra.EncodeString(plan))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := algebra.EncodeStream(plan, io.Discard); err != nil || n == 0 {
			b.Fatalf("streamed %d bytes: %v", n, err)
		}
	}
}

// BenchmarkPlanHopWireReused measures forwarding over the real transport on
// a warm persistent link: stage the plan with the streaming encoder and ship
// it to a sink peer as one vectored write on the pooled connection — the
// dial-per-hop cost the LinkPool removed is visible by comparison with a
// cold Send.
func BenchmarkPlanHopWireReused(b *testing.B) {
	received := make(chan struct{}, 1024)
	srv, err := wire.Listen("127.0.0.1:0", func(doc *xmltree.Node) (*xmltree.Node, error) {
		received <- struct{}{}
		return nil, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	pool := wire.NewLinkPool()
	defer pool.Close()
	plan, _ := planHopFixture(b)
	send := func() {
		if err := pool.SendFrame(srv.Addr(), func(e *xmltree.FrameEncoder) {
			algebra.EncodeFrame(plan, e)
		}); err != nil {
			b.Fatal(err)
		}
	}
	send()
	<-received // link warm, first frame processed
	b.SetBytes(int64(len(algebra.EncodeString(plan))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
		<-received
	}
}

// BenchmarkPlanClone measures duplicating an in-flight plan (retained
// originals, result snapshots, catalog binding copies).
func BenchmarkPlanClone(b *testing.B) {
	plan, _ := planHopFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan.Clone() == nil {
			b.Fatal("nil clone")
		}
	}
}

// TestBenchmarksSmoke keeps the experiment benchmarks honest under plain
// `go test`: every benchmark body must run once without error. The parallel
// runner mirrors how cmd/experiments executes them.
func TestBenchmarksSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments already covered by internal/experiments -short run")
	}
	for _, res := range experiments.RunAll(experiments.All(), 0) {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Runner.ID, res.Err)
		}
	}
}
