// Package baseline implements the two comparison architectures the paper
// names in §1 — the "Napster" (hybrid) approach with a centralized index,
// and the "Gnutella" (pure) approach with bounded-horizon query broadcast —
// plus a coordinator-style distributed execution helper. The E4/E5
// experiments measure these against hierarchic-catalog MQP routing.
package baseline

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/namespace"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

// Message kinds used by the baselines.
const (
	KindLookup   = "central-lookup" // client → central index
	KindFlood    = "flood"          // Gnutella broadcast
	KindFloodHit = "flood-hit"      // peer → query origin
)

// DataRef names a collection at a base server.
type DataRef struct {
	Addr    string
	PathExp string
}

// CentralIndex is the Napster-style central server: every base server
// registers its collections here, and every search is a single
// request/response against it (§1: "a centralized group of servers indexes
// filenames, and all queries must go through them").
type CentralIndex struct {
	addr string

	mu      sync.Mutex
	entries []centralEntry
}

type centralEntry struct {
	ref  DataRef
	area namespace.Area
}

// NewCentralIndex creates a central index and registers it on the network.
func NewCentralIndex(net *simnet.Network, addr string) *CentralIndex {
	c := &CentralIndex{addr: addr}
	net.Add(c)
	return c
}

// Addr implements simnet.Peer.
func (c *CentralIndex) Addr() string { return c.addr }

// Register adds a collection to the central index (performed out-of-band,
// as Napster clients did at connect time).
func (c *CentralIndex) Register(ref DataRef, area namespace.Area) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = append(c.entries, centralEntry{ref: ref, area: area})
}

// Deliver implements simnet.Peer; the central index is request/response
// only.
func (c *CentralIndex) Deliver(_ *simnet.Network, msg *simnet.Message) error {
	return fmt.Errorf("central index %s: unexpected one-way message %q", c.addr, msg.Kind)
}

// Serve implements simnet.Peer: answers lookup requests with the matching
// collection references.
func (c *CentralIndex) Serve(_ *simnet.Network, req *simnet.Message) (*xmltree.Node, error) {
	if req.Kind != KindLookup {
		return nil, fmt.Errorf("central index %s: unknown request %q", c.addr, req.Kind)
	}
	urn := req.Body.AttrDefault("urn", "")
	area, err := namespace.DecodeURN(urn)
	if err != nil {
		return nil, fmt.Errorf("central index %s: %w", c.addr, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	reply := xmltree.Elem("servers")
	for _, e := range c.entries {
		if e.area.Overlaps(area) {
			se := xmltree.Elem("server")
			se.SetAttr("addr", e.ref.Addr)
			se.SetAttr("path", e.ref.PathExp)
			reply.Add(se)
		}
	}
	return reply, nil
}

// Lookup performs a client search against the central index, returning the
// matching references in deterministic order.
func Lookup(net *simnet.Network, clientAddr, centralAddr string, area namespace.Area) ([]DataRef, error) {
	req := xmltree.Elem("lookup")
	req.SetAttr("urn", namespace.EncodeURN(area))
	reply, _, err := net.Request(clientAddr, centralAddr, KindLookup, req, 0)
	if err != nil {
		return nil, err
	}
	var out []DataRef
	for _, se := range reply.ChildrenNamed("server") {
		out = append(out, DataRef{
			Addr:    se.AttrDefault("addr", ""),
			PathExp: se.AttrDefault("path", ""),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out, nil
}

// FloodPeer is a Gnutella-style peer: it holds collections described only by
// interest area, knows a set of neighbors, and re-broadcasts queries until
// the horizon (TTL) runs out (§1). It is deliberately catalog-free.
type FloodPeer struct {
	addr      string
	neighbors []string

	mu    sync.Mutex
	colls []floodColl
	seen  map[string]bool
	hits  map[string][]DataRef // by query id, collected at the origin
}

type floodColl struct {
	ref  DataRef
	area namespace.Area
}

// NewFloodPeer creates a flooding peer and registers it on the network.
func NewFloodPeer(net *simnet.Network, addr string) *FloodPeer {
	p := &FloodPeer{addr: addr, seen: map[string]bool{}, hits: map[string][]DataRef{}}
	net.Add(p)
	return p
}

// Addr implements simnet.Peer.
func (p *FloodPeer) Addr() string { return p.addr }

// SetNeighbors replaces the peer's neighbor list.
func (p *FloodPeer) SetNeighbors(addrs ...string) {
	p.neighbors = append([]string(nil), addrs...)
}

// Neighbors returns the peer's neighbor list.
func (p *FloodPeer) Neighbors() []string {
	return append([]string(nil), p.neighbors...)
}

// AddCollection exposes a collection for flooding search.
func (p *FloodPeer) AddCollection(ref DataRef, area namespace.Area) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.colls = append(p.colls, floodColl{ref: ref, area: area})
}

// Deliver implements simnet.Peer: handles flood broadcasts and hit replies.
func (p *FloodPeer) Deliver(net *simnet.Network, msg *simnet.Message) error {
	switch msg.Kind {
	case KindFlood:
		return p.handleFlood(net, msg)
	case KindFloodHit:
		p.mu.Lock()
		defer p.mu.Unlock()
		id := msg.Body.AttrDefault("id", "")
		for _, se := range msg.Body.ChildrenNamed("server") {
			p.hits[id] = append(p.hits[id], DataRef{
				Addr:    se.AttrDefault("addr", ""),
				PathExp: se.AttrDefault("path", ""),
			})
		}
		return nil
	default:
		return fmt.Errorf("flood peer %s: unknown message %q", p.addr, msg.Kind)
	}
}

func (p *FloodPeer) handleFlood(net *simnet.Network, msg *simnet.Message) error {
	id := msg.Body.AttrDefault("id", "")
	origin := msg.Body.AttrDefault("origin", "")
	ttl, err := strconv.Atoi(msg.Body.AttrDefault("ttl", "0"))
	if err != nil {
		return fmt.Errorf("flood peer %s: bad ttl: %w", p.addr, err)
	}
	area, err := namespace.DecodeURN(msg.Body.AttrDefault("urn", ""))
	if err != nil {
		return fmt.Errorf("flood peer %s: %w", p.addr, err)
	}

	p.mu.Lock()
	if p.seen[id] {
		p.mu.Unlock()
		return nil
	}
	p.seen[id] = true
	var matches []DataRef
	for _, c := range p.colls {
		if c.area.Overlaps(area) {
			matches = append(matches, c.ref)
		}
	}
	p.mu.Unlock()

	if len(matches) > 0 && origin != p.addr {
		hit := xmltree.Elem("hit")
		hit.SetAttr("id", id)
		for _, m := range matches {
			se := xmltree.Elem("server")
			se.SetAttr("addr", m.Addr)
			se.SetAttr("path", m.PathExp)
			hit.Add(se)
		}
		if err := net.Send(&simnet.Message{From: p.addr, To: origin, Kind: KindFloodHit, Body: hit, At: msg.At}); err != nil {
			return err
		}
	}
	if ttl <= 0 {
		return nil
	}
	fwd := msg.Body.Clone()
	fwd.SetAttr("ttl", strconv.Itoa(ttl-1))
	for _, nb := range p.neighbors {
		if nb == msg.From {
			continue
		}
		// Unreachable neighbors are skipped, as in real Gnutella.
		if err := net.Send(&simnet.Message{From: p.addr, To: nb, Kind: KindFlood, Body: fwd, At: msg.At}); err != nil {
			if _, ok := err.(simnet.ErrUnreachable); ok {
				continue
			}
			return err
		}
	}
	return nil
}

// Flood starts a search from this peer with the given horizon and returns
// the distinct matching references discovered. Matches held by the origin
// itself are included directly.
func (p *FloodPeer) Flood(net *simnet.Network, id string, area namespace.Area, horizon int) ([]DataRef, error) {
	body := xmltree.Elem("flood")
	body.SetAttr("id", id)
	body.SetAttr("origin", p.addr)
	body.SetAttr("urn", namespace.EncodeURN(area))
	body.SetAttr("ttl", strconv.Itoa(horizon))

	// Local matches first.
	p.mu.Lock()
	p.seen[id] = true
	for _, c := range p.colls {
		if c.area.Overlaps(area) {
			p.hits[id] = append(p.hits[id], c.ref)
		}
	}
	p.mu.Unlock()

	if horizon > 0 {
		fwd := body.Clone()
		fwd.SetAttr("ttl", strconv.Itoa(horizon-1))
		for _, nb := range p.neighbors {
			if err := net.Send(&simnet.Message{From: p.addr, To: nb, Kind: KindFlood, Body: fwd}); err != nil {
				if _, ok := err.(simnet.ErrUnreachable); ok {
					continue
				}
				return nil, err
			}
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[string]bool{}
	var out []DataRef
	for _, h := range p.hits[id] {
		key := h.Addr + "|" + h.PathExp
		if !seen[key] {
			seen[key] = true
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out, nil
}

// Serve implements simnet.Peer; flooding peers have no request/response
// protocol.
func (p *FloodPeer) Serve(_ *simnet.Network, req *simnet.Message) (*xmltree.Node, error) {
	return nil, fmt.Errorf("flood peer %s: unknown request %q", p.addr, req.Kind)
}
