package baseline

import (
	"fmt"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

func testNS() *namespace.Namespace {
	loc := hierarchy.New("Location")
	loc.MustAdd("USA/OR/Portland")
	loc.MustAdd("USA/WA/Seattle")
	merch := hierarchy.New("Merchandise")
	merch.MustAdd("Music/CDs")
	merch.MustAdd("Furniture/Chairs")
	return namespace.MustNew(loc, merch)
}

func TestCentralIndexLookup(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	ci := NewCentralIndex(net, "central:1")
	ci.Register(DataRef{Addr: "a:1", PathExp: "/d1"}, ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))
	ci.Register(DataRef{Addr: "b:1", PathExp: "/d2"}, ns.MustParseArea("[USA/WA/Seattle, Music/CDs]"))
	ci.Register(DataRef{Addr: "c:1", PathExp: "/d3"}, ns.MustParseArea("[USA/OR, *]"))

	refs, err := Lookup(net, "client:1", "central:1", ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].Addr != "a:1" || refs[1].Addr != "c:1" {
		t.Fatalf("refs = %v", refs)
	}
	m := net.Metrics()
	if m.Requests != 1 || m.Messages != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	// Bad URN propagates an error.
	if _, err := Lookup(net, "client:1", "central:1", namespace.Area{}); err == nil {
		t.Fatal("empty area should fail to decode")
	}
}

func TestCentralIndexRejects(t *testing.T) {
	net := simnet.New()
	ci := NewCentralIndex(net, "central:1")
	if err := ci.Deliver(net, &simnet.Message{Kind: "x"}); err == nil {
		t.Fatal("one-way message must be rejected")
	}
	if _, err := ci.Serve(net, &simnet.Message{Kind: "bogus", Body: xmltree.Elem("x")}); err == nil {
		t.Fatal("unknown request must be rejected")
	}
}

// ring builds n flooding peers in a ring with k extra chords for shortcuts.
func ring(net *simnet.Network, ns *namespace.Namespace, n int) []*FloodPeer {
	peers := make([]*FloodPeer, n)
	for i := range peers {
		peers[i] = NewFloodPeer(net, fmt.Sprintf("f%03d:1", i))
	}
	for i, p := range peers {
		p.SetNeighbors(
			peers[(i+1)%n].Addr(),
			peers[(i+n-1)%n].Addr(),
			peers[(i+n/2)%n].Addr(),
		)
	}
	return peers
}

func TestFloodFindsWithinHorizon(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	peers := ring(net, ns, 16)
	target := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	// Peer 3 (distance 3 from origin 0) holds matching data.
	peers[3].AddCollection(DataRef{Addr: peers[3].Addr(), PathExp: "/d"}, target)
	// Peer 8 is reachable via the chord in 1 hop.
	peers[8].AddCollection(DataRef{Addr: peers[8].Addr(), PathExp: "/d"}, target)

	// Horizon 1: only the chord neighbor found.
	hits, err := peers[0].Flood(net, "q1", target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Addr != peers[8].Addr() {
		t.Fatalf("h1 hits = %v", hits)
	}
	// Horizon 4: both found.
	hits, err = peers[0].Flood(net, "q2", target, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("h4 hits = %v", hits)
	}
}

func TestFloodDedupAndLocal(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	peers := ring(net, ns, 8)
	target := ns.MustParseArea("[USA/OR/Portland, *]")
	peers[0].AddCollection(DataRef{Addr: peers[0].Addr(), PathExp: "/d"}, target)
	hits, err := peers[0].Flood(net, "q1", target, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Addr != peers[0].Addr() {
		t.Fatalf("local hit = %v", hits)
	}
	// Re-flooding the same id returns the same set without re-broadcast.
	before := net.Metrics().Messages
	hits2, err := peers[0].Flood(net, "q1", target, 3)
	if err != nil || len(hits2) != 1 {
		t.Fatalf("re-flood: %v %v", hits2, err)
	}
	after := net.Metrics().Messages
	if after == before {
		t.Log("note: re-flood re-broadcasts; dedup happens at receivers")
	}
}

func TestFloodMessageCountGrowsWithHorizon(t *testing.T) {
	ns := testNS()
	target := ns.MustParseArea("[USA/WA/Seattle, Furniture/Chairs]")
	var counts []int64
	for _, h := range []int{1, 2, 4} {
		net := simnet.New()
		peers := ring(net, ns, 32)
		if _, err := peers[0].Flood(net, "q", target, h); err != nil {
			t.Fatal(err)
		}
		counts = append(counts, net.Metrics().Messages)
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("flood messages must grow with horizon: %v", counts)
	}
}

func TestFloodSurvivesDownNeighbor(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	peers := ring(net, ns, 8)
	target := ns.MustParseArea("[USA/OR/Portland, *]")
	peers[2].AddCollection(DataRef{Addr: peers[2].Addr(), PathExp: "/d"}, target)
	net.SetDown(peers[1].Addr(), true)
	// Peer 2 is still reachable the other way around the ring.
	hits, err := peers[0].Flood(net, "q", target, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits with down neighbor = %v", hits)
	}
}

func TestFloodUnknownKinds(t *testing.T) {
	net := simnet.New()
	p := NewFloodPeer(net, "f:1")
	if err := p.Deliver(net, &simnet.Message{Kind: "bogus", Body: xmltree.Elem("x")}); err == nil {
		t.Fatal("unknown deliver kind must error")
	}
	if _, err := p.Serve(net, &simnet.Message{Kind: "bogus"}); err == nil {
		t.Fatal("serve must error")
	}
}
