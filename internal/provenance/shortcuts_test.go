package provenance

import "testing"

func mkTrail(visits ...Visit) *Trail {
	t := &Trail{}
	for _, v := range visits {
		t.Append(v, []byte("k"))
	}
	return t
}

func TestSuggestShortcuts(t *testing.T) {
	// A binds, B only forwards, C binds: A should learn to go straight
	// to C for C's resource.
	tr := mkTrail(
		Visit{Server: "A:1", Action: ActionBind, Detail: "urn:X"},
		Visit{Server: "B:1", Action: ActionForward},
		Visit{Server: "C:1", Action: ActionBind, Detail: "urn:Y"},
	)
	got := SuggestShortcuts(tr)
	if len(got) != 1 {
		t.Fatalf("shortcuts = %+v", got)
	}
	s := got[0]
	if s.Teach != "A:1" || s.Via != "B:1" || s.Direct != "C:1" || s.Detail != "urn:Y" {
		t.Fatalf("shortcut = %+v", s)
	}
}

func TestSuggestShortcutsNoneWhenViaWorks(t *testing.T) {
	// B did real work: no shortcut.
	tr := mkTrail(
		Visit{Server: "A:1", Action: ActionBind, Detail: "urn:X"},
		Visit{Server: "B:1", Action: ActionBind, Detail: "urn:Z"},
		Visit{Server: "C:1", Action: ActionBind, Detail: "urn:Y"},
	)
	if got := SuggestShortcuts(tr); len(got) != 0 {
		t.Fatalf("shortcuts = %+v", got)
	}
}

func TestSuggestShortcutsChain(t *testing.T) {
	// Two consecutive forward-only hops produce a suggestion for each.
	tr := mkTrail(
		Visit{Server: "A:1", Action: ActionBind, Detail: "urn:X"},
		Visit{Server: "B:1", Action: ActionForward},
		Visit{Server: "C:1", Action: ActionForward},
		Visit{Server: "D:1", Action: ActionData, Detail: "http://d/x"},
	)
	got := SuggestShortcuts(tr)
	// B-as-via: next segment is C (forward-only, no bind) → no suggestion.
	// C-as-via: next is D (data) → teach B to go to D.
	if len(got) != 1 {
		t.Fatalf("shortcuts = %+v", got)
	}
	if got[0].Teach != "B:1" || got[0].Direct != "D:1" {
		t.Fatalf("shortcut = %+v", got[0])
	}
}

func TestSuggestShortcutsEdgeCases(t *testing.T) {
	if got := SuggestShortcuts(&Trail{}); got != nil {
		t.Fatalf("empty trail = %+v", got)
	}
	// Forward at the very start has no upstream to teach.
	tr := mkTrail(
		Visit{Server: "B:1", Action: ActionForward},
		Visit{Server: "C:1", Action: ActionBind, Detail: "urn:Y"},
	)
	if got := SuggestShortcuts(tr); len(got) != 0 {
		t.Fatalf("no-upstream shortcuts = %+v", got)
	}
	// Forward at the very end has no downstream target.
	tr2 := mkTrail(
		Visit{Server: "A:1", Action: ActionBind, Detail: "urn:X"},
		Visit{Server: "B:1", Action: ActionForward},
	)
	if got := SuggestShortcuts(tr2); len(got) != 0 {
		t.Fatalf("no-downstream shortcuts = %+v", got)
	}
}
