package provenance

import (
	"testing"
	"time"

	"repro/internal/algebra"
)

func keyring(keys map[string][]byte) Keyring {
	return func(s string) []byte { return keys[s] }
}

func TestAppendVerify(t *testing.T) {
	keys := map[string][]byte{"a:1": []byte("ka"), "b:1": []byte("kb")}
	tr := &Trail{}
	tr.Append(Visit{Server: "a:1", Action: ActionBind, Detail: "urn:X", At: time.Millisecond}, keys["a:1"])
	tr.Append(Visit{Server: "b:1", Action: ActionReduce, Detail: "join", At: 2 * time.Millisecond, StalenessMin: 30}, keys["b:1"])
	if idx, err := tr.Verify(keyring(keys)); err != nil || idx != -1 {
		t.Fatalf("verify = %d, %v", idx, err)
	}
}

func TestTamperDetected(t *testing.T) {
	keys := map[string][]byte{"a:1": []byte("ka"), "b:1": []byte("kb")}
	tr := &Trail{}
	tr.Append(Visit{Server: "a:1", Action: ActionBind, Detail: "urn:X"}, keys["a:1"])
	tr.Append(Visit{Server: "b:1", Action: ActionForward}, keys["b:1"])

	// Tamper with visit 0's detail: both visit 0 (content) and the chain
	// break.
	tr.Visits[0].Detail = "urn:Spoofed"
	idx, err := tr.Verify(keyring(keys))
	if err == nil || idx != 0 {
		t.Fatalf("tamper not detected: %d %v", idx, err)
	}

	// A forged append without the right key also fails.
	tr2 := &Trail{}
	tr2.Append(Visit{Server: "a:1", Action: ActionBind}, []byte("wrong-key"))
	if idx, err := tr2.Verify(keyring(keys)); err == nil || idx != 0 {
		t.Fatalf("forged visit not detected: %d %v", idx, err)
	}

	// Unknown server key.
	tr3 := &Trail{}
	tr3.Append(Visit{Server: "ghost:1", Action: ActionBind}, []byte("k"))
	if _, err := tr3.Verify(keyring(keys)); err == nil {
		t.Fatal("missing key must fail verification")
	}
}

func TestChainReorderDetected(t *testing.T) {
	keys := map[string][]byte{"a:1": []byte("ka"), "b:1": []byte("kb")}
	tr := &Trail{}
	tr.Append(Visit{Server: "a:1", Action: ActionBind, Detail: "1"}, keys["a:1"])
	tr.Append(Visit{Server: "b:1", Action: ActionBind, Detail: "2"}, keys["b:1"])
	tr.Visits[0], tr.Visits[1] = tr.Visits[1], tr.Visits[0]
	if idx, err := tr.Verify(keyring(keys)); err == nil {
		t.Fatalf("reorder not detected: %d", idx)
	}
}

func TestHelpers(t *testing.T) {
	tr := &Trail{}
	k := []byte("k")
	tr.Append(Visit{Server: "a:1", Action: ActionBind, Detail: "urn:X"}, k)
	tr.Append(Visit{Server: "b:1", Action: ActionData, Detail: "urn:X", StalenessMin: 30}, k)
	tr.Append(Visit{Server: "c:1", Action: ActionForward}, k)
	if !tr.Visited("b:1") || tr.Visited("z:1") {
		t.Fatal("Visited broken")
	}
	if got := tr.Binders("urn:X"); len(got) != 2 || got[0] != "a:1" {
		t.Fatalf("binders = %v", got)
	}
	if tr.MaxStaleness() != 30 {
		t.Fatalf("max staleness = %d", tr.MaxStaleness())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tr := &Trail{}
	k := []byte("k")
	tr.Append(Visit{Server: "a:1", Action: ActionBind, Detail: "urn:X", At: 1500 * time.Microsecond}, k)
	tr.Append(Visit{Server: "b:1", Action: ActionReduce, Detail: "join", StalenessMin: 5}, k)
	back, err := Unmarshal(tr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Visits) != 2 {
		t.Fatalf("visits = %d", len(back.Visits))
	}
	if back.Visits[0].At != 1500*time.Microsecond || back.Visits[1].StalenessMin != 5 {
		t.Fatalf("round trip lost fields: %+v", back.Visits)
	}
	// Signatures survive and still verify.
	if idx, err := back.Verify(func(string) []byte { return k }); err != nil || idx != -1 {
		t.Fatalf("verify after round trip: %d %v", idx, err)
	}
}

func TestPlanCarriage(t *testing.T) {
	p := algebra.NewPlan("q", "t:1", algebra.Display(algebra.Data()))
	tr, err := FromPlan(p)
	if err != nil || len(tr.Visits) != 0 {
		t.Fatalf("empty trail: %v %v", tr, err)
	}
	tr.Append(Visit{Server: "a:1", Action: ActionForward}, []byte("k"))
	ToPlan(p, tr)
	// Survive a full plan serialization cycle.
	back, err := algebra.DecodeString(algebra.EncodeString(p))
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := FromPlan(back)
	if err != nil || len(tr2.Visits) != 1 || tr2.Visits[0].Server != "a:1" {
		t.Fatalf("trail after plan round trip: %+v %v", tr2, err)
	}
}

func TestSuspectMissingSource(t *testing.T) {
	// Original plan references two URNs; only one was ever bound.
	orig := algebra.Display(algebra.Union(algebra.URN("urn:A"), algebra.URN("urn:B")))
	p := algebra.NewPlan("q", "t:1", orig)
	p.RetainOriginal()
	p.Root = algebra.Display(algebra.Data()) // pretend fully evaluated

	tr := &Trail{}
	tr.Append(Visit{Server: "s:1", Action: ActionBind, Detail: "urn:A"}, []byte("k"))
	suspects := SuspectMissingSource(p, tr)
	if len(suspects) != 1 || suspects[0] != "urn:B" {
		t.Fatalf("suspects = %v", suspects)
	}
	// Without a retained original there is nothing to check.
	p2 := algebra.NewPlan("q", "t:1", algebra.Display(algebra.Data()))
	if got := SuspectMissingSource(p2, tr); got != nil {
		t.Fatalf("no-original suspects = %v", got)
	}
}

func TestVerificationQuery(t *testing.T) {
	q := VerificationQuery("v1", "client:1", "urn:B", algebra.MustParsePredicate("price < 10"))
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	var haveCount, haveSelect bool
	q.Root.Walk(func(n *algebra.Node) bool {
		switch n.Kind {
		case algebra.KindCount:
			haveCount = true
		case algebra.KindSelect:
			haveSelect = true
		}
		return true
	})
	if !haveCount || !haveSelect {
		t.Fatalf("verification query shape wrong: %s", q.Root)
	}
	q2 := VerificationQuery("v2", "client:1", "urn:B", nil)
	if err := q2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(algebra.Marshal(algebra.NewPlan("x", "t", algebra.Display(algebra.Data())))); err == nil {
		t.Fatal("wrong element must error")
	}
}
