// Package provenance implements §5.1's MQP provenance: a tamper-evident
// history of the servers a plan visited and what each did (bound resources,
// provided data, re-optimized, reduced sub-expressions, or merely
// forwarded), when it did it, and how current the information was.
//
// Each visit is HMAC-signed over its content chained with the previous
// visit's signature, approximating the paper's "digitally signed by the
// server that adds it" with stdlib primitives. Verification, spoof
// detection (a server binding a competitor's source to the empty set shows
// up as a missing visit), and verification-query construction live here.
package provenance

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"time"

	"repro/internal/algebra"
	"repro/internal/xmltree"
)

// Action enumerates what a server did to an MQP during a visit (§5.1).
type Action string

// Visit actions.
const (
	ActionBind     Action = "bind"     // resolved a URN to URLs/alternatives
	ActionData     Action = "data"     // substituted data for a URL
	ActionReduce   Action = "reduce"   // evaluated a sub-expression
	ActionOptimize Action = "optimize" // rewrote the plan
	ActionForward  Action = "forward"  // merely forwarded
	ActionAnnotate Action = "annotate" // attached statistics instead of work
)

// Visit is one provenance record.
type Visit struct {
	Server string
	Action Action
	// Detail names the resource acted on (a URN, a URL) or the rewrite.
	Detail string
	// At is the virtual time of the action.
	At time.Duration
	// StalenessMin records how current the information used was (§4.3).
	StalenessMin int
	// Sig is the hex HMAC over this visit chained with the previous one.
	Sig string
}

func (v Visit) content(prevSig string) []byte {
	return []byte(prevSig + "|" + v.Server + "|" + string(v.Action) + "|" + v.Detail +
		"|" + strconv.FormatInt(int64(v.At), 10) + "|" + strconv.Itoa(v.StalenessMin))
}

// Trail is the ordered visit history carried inside an MQP.
//
// Grow a trail through Append only. Visits is exported for inspection and
// for constructing a trail wholesale, but editing an existing entry in
// place is unsupported: Marshal may serve a cached element that predates
// the edit (the cache is validated by visit count, which an in-place edit
// does not change) — and an edited visit would fail signature verification
// anyway. To simulate tampering, build a fresh Trail from a copied Visits
// slice.
type Trail struct {
	Visits []Visit
	// elem caches the marshaled <provenance> element. Its <visit> children
	// are frozen (immutable, aliasable), so a hop extends the trail by
	// copying only the element header and appending one new child —
	// marshaling is incremental instead of rebuilt per hop. Valid only
	// while it has exactly one child per visit.
	elem *xmltree.Node
}

// Keyring returns the signing key for a server; in a real deployment this
// would be a PKI lookup.
type Keyring func(server string) []byte

// Append signs a visit with the server's key and adds it to the trail. When
// the trail carries a marshaled element (it arrived inside a plan), the
// element grows by one <visit> child copy-on-write instead of being marked
// for a rebuild.
func (t *Trail) Append(v Visit, key []byte) {
	prev := ""
	if len(t.Visits) > 0 {
		prev = t.Visits[len(t.Visits)-1].Sig
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(v.content(prev))
	v.Sig = hex.EncodeToString(mac.Sum(nil))
	t.Visits = append(t.Visits, v)
	if t.elem != nil && len(t.elem.Children) == len(t.Visits)-1 {
		t.elem = t.elem.CloneShallow().Add(marshalVisit(v)).Freeze()
	} else {
		t.elem = nil
	}
}

// Verify checks every signature in the chain using the keyring. It returns
// the index of the first bad visit and an error, or (-1, nil) when the
// whole trail verifies.
func (t *Trail) Verify(keys Keyring) (int, error) {
	prev := ""
	for i, v := range t.Visits {
		key := keys(v.Server)
		if key == nil {
			return i, fmt.Errorf("provenance: no key for server %s", v.Server)
		}
		mac := hmac.New(sha256.New, key)
		mac.Write(v.content(prev))
		want := hex.EncodeToString(mac.Sum(nil))
		if !hmac.Equal([]byte(want), []byte(v.Sig)) {
			return i, fmt.Errorf("provenance: visit %d by %s fails verification", i, v.Server)
		}
		prev = v.Sig
	}
	return -1, nil
}

// Visited reports whether any visit was made by the server.
func (t *Trail) Visited(server string) bool {
	for _, v := range t.Visits {
		if v.Server == server {
			return true
		}
	}
	return false
}

// Binders returns the servers that recorded a bind or data action for the
// named resource, in visit order.
func (t *Trail) Binders(resource string) []string {
	var out []string
	for _, v := range t.Visits {
		if (v.Action == ActionBind || v.Action == ActionData || v.Action == ActionReduce) && v.Detail == resource {
			out = append(out, v.Server)
		}
	}
	return out
}

// MaxStaleness returns the largest staleness bound recorded on the trail —
// an upper bound on how out-of-date the answer may be.
func (t *Trail) MaxStaleness() int {
	max := 0
	for _, v := range t.Visits {
		if v.StalenessMin > max {
			max = v.StalenessMin
		}
	}
	return max
}

// marshalVisit renders one <visit>, building its attribute list at final
// size in one allocation (serialization sorts attributes, so emission order
// here is irrelevant). The element is frozen: visit records never change
// once signed, so every later hop aliases it.
func marshalVisit(v Visit) *xmltree.Node {
	attrs := make([]xmltree.Attr, 0, 6)
	attrs = append(attrs,
		xmltree.Attr{Name: "server", Value: v.Server},
		xmltree.Attr{Name: "action", Value: string(v.Action)})
	if v.Detail != "" {
		attrs = append(attrs, xmltree.Attr{Name: "detail", Value: v.Detail})
	}
	attrs = append(attrs, xmltree.Attr{Name: "at", Value: strconv.FormatInt(int64(v.At/time.Microsecond), 10)})
	if v.StalenessMin > 0 {
		attrs = append(attrs, xmltree.Attr{Name: "staleness", Value: strconv.Itoa(v.StalenessMin)})
	}
	attrs = append(attrs, xmltree.Attr{Name: "sig", Value: v.Sig})
	return xmltree.ElemAttrs("visit", attrs...).Freeze()
}

// Marshal renders the trail as the <provenance> section carried in a plan's
// Extra map. The returned element is frozen — callers alias it, never
// mutate it — and cached: a trail that arrived marshaled and grew by one
// visit reuses every existing <visit> element.
func (t *Trail) Marshal() *xmltree.Node {
	if t.elem != nil && len(t.elem.Children) == len(t.Visits) {
		return t.elem
	}
	visits := make([]*xmltree.Node, len(t.Visits))
	for i, v := range t.Visits {
		visits[i] = marshalVisit(v)
	}
	t.elem = xmltree.Elem("provenance", visits...).Freeze()
	return t.elem
}

// Unmarshal parses a <provenance> section.
func Unmarshal(e *xmltree.Node) (*Trail, error) {
	if e.Name != "provenance" {
		return nil, fmt.Errorf("provenance: expected <provenance>, got <%s>", e.Name)
	}
	t := &Trail{}
	if e.Frozen() {
		// Adopt the element as the marshal cache; validated below against
		// the parsed visit count (non-visit children would invalidate it).
		t.elem = e
	}
	for _, ve := range e.ChildrenNamed("visit") {
		atUS, err := strconv.ParseInt(ve.AttrDefault("at", "0"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("provenance: bad at attr: %w", err)
		}
		stale, err := strconv.Atoi(ve.AttrDefault("staleness", "0"))
		if err != nil {
			return nil, fmt.Errorf("provenance: bad staleness attr: %w", err)
		}
		t.Visits = append(t.Visits, Visit{
			Server:       ve.AttrDefault("server", ""),
			Action:       Action(ve.AttrDefault("action", "")),
			Detail:       ve.AttrDefault("detail", ""),
			At:           time.Duration(atUS) * time.Microsecond,
			StalenessMin: stale,
			Sig:          ve.AttrDefault("sig", ""),
		})
	}
	if t.elem != nil && len(t.elem.Children) != len(t.Visits) {
		t.elem = nil
	}
	return t, nil
}

// FromPlan extracts the trail carried by a plan (empty trail when absent).
func FromPlan(p *algebra.Plan) (*Trail, error) {
	e, ok := p.Extra["provenance"]
	if !ok {
		return &Trail{}, nil
	}
	return Unmarshal(e)
}

// ToPlan stores the trail into the plan's Extra map.
func ToPlan(p *algebra.Plan, t *Trail) {
	if p.Extra == nil {
		p.Extra = map[string]*xmltree.Node{}
	}
	p.Extra["provenance"] = t.Marshal()
}

// UncoveredVisits returns the servers recorded in the plan's visited-server
// memory (the routing state of internal/route) that never signed a trail
// visit. In a deployment where every server signs provenance, routing memory
// must be consistent with the trail — a server marks the visited section
// only while processing the plan, which also appends a signed visit — so a
// non-empty return means either a forged <visited> entry or a server
// dropping provenance records.
func UncoveredVisits(p *algebra.Plan, t *Trail) []string {
	if p.Visited == nil {
		return nil
	}
	var out []string
	for _, s := range p.Visited.Servers() {
		if !t.Visited(s) {
			out = append(out, s)
		}
	}
	return out
}

// VerificationQuery builds the §5.1 spoof check: a count(σ(resource)) plan
// that a suspicious client can send toward the server that should hold the
// resource. target is where the count should be delivered.
func VerificationQuery(id, target, urn string, pred algebra.Predicate) *algebra.Plan {
	src := algebra.URN(urn)
	var body *algebra.Node = src
	if pred != nil {
		body = algebra.Select(pred, src)
	}
	return algebra.NewPlan(id, target, algebra.Display(algebra.Count(body)))
}

// Shortcut is a routing suggestion derived from a trail (§5.1 "meta-index
// updating"): Teach should learn to route plans matching the detail
// directly to Direct, skipping Via.
type Shortcut struct {
	Teach  string // server that forwarded blindly
	Via    string // intermediate that only forwarded
	Direct string // server that did the real work
	Detail string // the resource bound there
}

// SuggestShortcuts inspects a trail for the §5.1 pattern "server S is
// getting a lot of MQPs forwarded from server T that it just ends up
// forwarding to server R": whenever a server's only recorded action is a
// forward and the next server bound a resource, the forwarder's upstream
// peer could be taught to route directly. Visits are examined in order; a
// suggestion is emitted per (via, direct) pair.
func SuggestShortcuts(t *Trail) []Shortcut {
	var out []Shortcut
	// Group consecutive visits by server.
	type seg struct {
		server  string
		actions []Visit
	}
	var segs []seg
	for _, v := range t.Visits {
		if len(segs) > 0 && segs[len(segs)-1].server == v.Server {
			segs[len(segs)-1].actions = append(segs[len(segs)-1].actions, v)
			continue
		}
		segs = append(segs, seg{server: v.Server, actions: []Visit{v}})
	}
	onlyForwarded := func(s seg) bool {
		for _, v := range s.actions {
			if v.Action != ActionForward {
				return false
			}
		}
		return true
	}
	firstBind := func(s seg) (string, bool) {
		for _, v := range s.actions {
			if v.Action == ActionBind || v.Action == ActionData {
				return v.Detail, true
			}
		}
		return "", false
	}
	for i := 1; i+1 < len(segs)+1 && i < len(segs); i++ {
		if !onlyForwarded(segs[i]) {
			continue
		}
		if i+1 >= len(segs) {
			continue
		}
		detail, ok := firstBind(segs[i+1])
		if !ok {
			continue
		}
		out = append(out, Shortcut{
			Teach:  segs[i-1].server,
			Via:    segs[i].server,
			Direct: segs[i+1].server,
			Detail: detail,
		})
	}
	return out
}

// SuspectMissingSource inspects a finished plan: for every URN in the
// retained original query, if no trail visit bound or reduced it and no
// visited server recorded data for it, that URN is returned as suspect —
// the §5.1 scenario where a server binds a competitor's source to the empty
// set without the plan ever visiting it.
func SuspectMissingSource(p *algebra.Plan, t *Trail) []string {
	if p.Original == nil {
		return nil
	}
	var suspects []string
	for _, urn := range p.Original.URNs() {
		if len(t.Binders(urn)) == 0 {
			suspects = append(suspects, urn)
		}
	}
	return suspects
}
