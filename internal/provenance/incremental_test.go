package provenance

import (
	"testing"
	"time"
)

func benchVisits(n int, key []byte) *Trail {
	t := &Trail{}
	for i := 0; i < n; i++ {
		t.Append(Visit{
			Server: "s:1", Action: ActionForward,
			At: time.Duration(i) * time.Millisecond,
		}, key)
	}
	return t
}

// TestIncrementalMarshalMatchesRebuild pins the incremental trail: a trail
// that arrived marshaled and grew hop by hop must serialize byte-identically
// to one rebuilt from scratch, and must reuse the cached element.
func TestIncrementalMarshalMatchesRebuild(t *testing.T) {
	key := []byte("k")
	trail := benchVisits(3, key)
	e1 := trail.Marshal()
	if !e1.Frozen() {
		t.Fatal("Marshal must return a frozen element")
	}
	if trail.Marshal() != e1 {
		t.Fatal("repeated Marshal must return the cached element")
	}

	// Simulate three more hops: each re-parses the marshaled element,
	// appends one visit, and re-marshals — the per-hop path.
	cur := e1
	for hop := 0; hop < 3; hop++ {
		in, err := Unmarshal(cur)
		if err != nil {
			t.Fatal(err)
		}
		if in.elem != cur {
			t.Fatal("Unmarshal of a frozen element must adopt it as the marshal cache")
		}
		// At must be microsecond-granular: the wire form stores µs, and a
		// re-parsed visit must re-sign to the same bytes.
		in.Append(Visit{Server: "h:1", Action: ActionForward, At: time.Duration(hop) * time.Millisecond}, key)
		next := in.Marshal()
		// Incremental marshal: all previous visit elements are aliased.
		for i, c := range cur.Children {
			if next.Children[i] != c {
				t.Fatal("incremental marshal must alias existing visit elements")
			}
		}
		rebuilt := (&Trail{Visits: append([]Visit(nil), in.Visits...)}).Marshal()
		if next.String() != rebuilt.String() {
			t.Fatalf("incremental marshal differs from rebuild:\n%s\n%s", next.String(), rebuilt.String())
		}
		if next.ByteSize() != len(next.String()) {
			t.Fatal("incremental element size memo wrong")
		}
		cur = next
	}

	// The grown trail still verifies end to end.
	final, err := Unmarshal(cur)
	if err != nil {
		t.Fatal(err)
	}
	if i, err := final.Verify(func(string) []byte { return key }); err != nil {
		t.Fatalf("grown trail fails verification at %d: %v", i, err)
	}
}

// TestUnmarshalMutableElementNotCached: an unfrozen element belongs to the
// caller; the trail must not adopt (and later freeze) it.
func TestUnmarshalMutableElementNotCached(t *testing.T) {
	key := []byte("k")
	src := benchVisits(2, key).Marshal().Clone() // mutable deep copy
	in, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if in.elem != nil {
		t.Fatal("Unmarshal must not cache a mutable element")
	}
	in.Append(Visit{Server: "h:1", Action: ActionForward}, key)
	if got := len(in.Marshal().Children); got != 3 {
		t.Fatalf("marshal children = %d, want 3", got)
	}
	src.SetAttr("tampered", "yes") // must not panic: src stayed caller-owned
}
