package peer

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/simnet"
)

// These tests pin the replica-promotion path large worlds churn through
// (internal/chaos): a source leaves for good, its replica promotes itself to
// authoritative holder — superseding the dead registration — and keeps
// answering within its staleness bound; a replica whose bound is already
// exhausted refuses loudly instead of serving silently-stale data.

// TestPromotionEndToEndUnderScheduler: the full churn sequence on the
// deterministic scheduler — source crashes with no restart, the replica
// promotes mid-run, a query submitted afterwards resolves to the promoted
// replica alone and its answer carries the replica's staleness bound through
// the provenance trail.
func TestPromotionEndToEndUnderScheduler(t *testing.T) {
	net, ns, src, rep := replicaWorld(t)
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	if err := rep.ReplicateFrom("src:1", "/d", Collection{Name: "cds", PathExp: "/d", Area: area}, 45); err != nil {
		t.Fatal(err)
	}

	meta := mustPeer(t, Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true, Key: []byte("kM"),
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true})
	// Pre-crash, the source is the advertised holder.
	if err := src.RegisterWith("M:1", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kC")})
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "M:1", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}

	net.UseScheduler(1)
	net.ScheduleCrash("src:1", 5*time.Millisecond, 0) // leave: no restart
	const promoteAt = 10 * time.Millisecond
	var promoteErr error
	net.ScheduleFunc(promoteAt, func() {
		promoteErr = rep.Promote("/d", "src:1", "M:1", promoteAt)
	})
	plan := algebra.NewPlan("promo-q", "c:1", algebra.Display(
		algebra.Select(algebra.MustParsePredicate("price < 100"),
			algebra.URN(namespace.EncodeURN(area)))))
	if err := net.Send(&simnet.Message{From: "c:1", To: "M:1", Kind: KindMQP,
		Body: algebra.Marshal(plan), At: 30 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if promoteErr != nil {
		t.Fatalf("promotion: %v", promoteErr)
	}

	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result after promotion; the promoted replica should have answered")
	}
	if res.Partial {
		t.Fatal("partial result; the promoted replica holds the full collection")
	}
	docs, err := res.Plan.Results()
	if err != nil || len(docs) != 2 {
		t.Fatalf("results = %v, %v; want the replica's 2 items", docs, err)
	}
	trail, err := QueryTrail(res)
	if err != nil {
		t.Fatal(err)
	}
	if trail.MaxStaleness() != 45 {
		t.Fatalf("trail staleness = %d, want the promoted replica's 45", trail.MaxStaleness())
	}
	servedByReplica := false
	for _, v := range trail.Visits {
		if v.Server == "src:1" {
			t.Fatal("trail names the crashed source")
		}
		if v.Server == "rep:1" {
			servedByReplica = true
		}
	}
	if !servedByReplica {
		t.Fatalf("trail never visits the promoted replica: %+v", trail.Visits)
	}
	// Supersedes dropped the dead source from the upstream catalog in the
	// same mutation that added the replica — no window of double counting.
	for _, r := range meta.Catalog().Registrations() {
		if r.Addr == "src:1" {
			t.Fatal("superseded source still registered upstream")
		}
	}
}

// TestPromotionRefusedWhenBoundExhausted: a replica whose snapshot has
// outlived its staleness bound must refuse promotion with ErrStaleReplica
// AND an explicit stuck entry — never become the authoritative holder of
// silently-stale data. The upstream catalog keeps the source registration.
func TestPromotionRefusedWhenBoundExhausted(t *testing.T) {
	net, ns, src, rep := replicaWorld(t)
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	// Bound 0: any snapshot age at all exceeds it.
	if err := rep.ReplicateFrom("src:1", "/d", Collection{Name: "cds", PathExp: "/d", Area: area}, 0); err != nil {
		t.Fatal(err)
	}
	meta := mustPeer(t, Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true, Key: []byte("kM"),
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true})
	if err := src.RegisterWith("M:1", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}

	err := rep.Promote("/d", "src:1", "M:1", time.Hour)
	if !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("promotion of an exhausted replica = %v, want ErrStaleReplica", err)
	}
	if len(rep.StuckErrors()) == 0 {
		t.Fatal("refused promotion must surface as an explicit stuck entry")
	}
	srcStillThere, repRegistered := false, false
	for _, r := range meta.Catalog().Registrations() {
		if r.Addr == "src:1" {
			srcStillThere = true
		}
		if r.Addr == "rep:1" {
			repRegistered = true
		}
	}
	if !srcStillThere || repRegistered {
		t.Fatalf("refused promotion mutated the upstream catalog: src=%v rep=%v",
			srcStillThere, repRegistered)
	}

	// A promotion with headroom left on the bound is accepted.
	if err := rep.ReplicateFrom("src:1", "/d", Collection{Name: "cds", PathExp: "/d", Area: area}, 45); err != nil {
		t.Fatal(err)
	}
	if err := rep.Promote("/d", "src:1", "M:1", time.Millisecond); err != nil {
		t.Fatalf("promotion within the bound: %v", err)
	}
}

// TestStoreGenerationChurnRace: join/leave-style churn against the
// concurrent runtime — RCU republishes of a hot collection, new collections
// installed mid-flight, and re-registrations — must not race the worker
// pool's reads or the prepared-plan cache's generation-based invalidation.
// The assertions are deliberately weak (every plan answers with parseable
// results); `go test -race` is the real check here.
func TestStoreGenerationChurnRace(t *testing.T) {
	client, srv := runtimeWorld(t, Config{Workers: 4, PlanCacheSize: 16})
	hot, ok := srv.Collection("/data[id=1]")
	if !ok {
		t.Fatal("runtime world lost its collection")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // refresh churn: republish the hot collection
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := srv.SetItems("/data[id=1]", items(
				fmt.Sprintf(`<sale><cd>gen-%d</cd><price>%d</price></sale>`, i, i%20))); err != nil {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() { // join churn: new collections and re-registrations
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srv.AddCollection(Collection{Name: "cds", PathExp: fmt.Sprintf("/join[n=%d]", i),
				Area: hot.Area, Items: items(`<sale><cd>joined</cd><price>3</price></sale>`)})
			if err := srv.RegisterWith("srv:9020", catalog.RoleBase); err != nil {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const nPlans = 24
	for i := 0; i < nPlans; i++ {
		if err := client.Submit("srv:9020", rtPlan(fmt.Sprintf("churn-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rs := waitResults(t, client, nPlans)
	close(stop)
	wg.Wait()
	for _, res := range rs {
		if _, err := res.Plan.Results(); err != nil {
			t.Fatalf("plan %s: unparseable result under churn: %v", res.Plan.ID, err)
		}
	}
}
