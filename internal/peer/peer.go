// Package peer assembles the paper's peer roles (§3.2) into a network
// participant: base server (named XML collections addressed by XPath-like
// identifiers), index server, meta-index server, and category server. A
// peer owns a catalog, an MQP processor, and a data store, serves and
// forwards mutant query plans over a simnet, pushes registrations to
// authoritative servers (§3.3), and models delayed replication (§4.3).
//
// Traffic pricing: the simnet models the persistent multiplexed links the
// real transport (internal/wire.LinkPool) uses — the first message a peer
// sends to a neighbor pays connection setup, later messages on the same
// ordered pair pay only a per-frame header, and a crash or partition severs
// the link so recovery traffic re-pays setup. Forwarding fan-out to the same
// fallback candidates is therefore much cheaper in bytes than the old
// dial-per-hop accounting suggested (see simnet.Metrics.LinksOpened).
package peer

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/blobstore"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/provenance"
	"repro/internal/route"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/xmltree"
)

// Message kinds on the wire.
const (
	KindMQP        = "mqp"        // a mutant query plan in flight
	KindResult     = "result"     // a fully evaluated plan arriving at its target
	KindRegister   = "register"   // a registration push (§3.3)
	KindDeregister = "deregister" // a graceful-leave un-registration
	KindFetch      = "fetch"      // data pull: request a collection's items
	KindExport     = "export"     // harvest: request a peer's registration
	KindSubcats    = "subcats"    // category-server query (§3.5)
	KindBlobFetch  = "blobfetch"  // payload fetch-on-miss (see blob.go)
)

// Collection is a named collection a base server exports, with the XPath
// identifier other peers use to address it (§3.2).
//
// Installing a collection (AddCollection, SetItems) freezes its items:
// catalog data is immutable while served, so fetch replies, materialized
// plan leaves, and forwarded bodies all alias the same subtrees instead of
// cloning per request. To change data, replace the item slice with freshly
// built documents — never mutate installed items in place.
type Collection struct {
	Name    string
	PathExp string
	Area    namespace.Area
	Items   []*xmltree.Node
	// StalenessMin is non-zero for replicas: how out of date the snapshot
	// may be (§4.3's delay factor).
	StalenessMin int
	// RefreshedAt is the virtual time the replica snapshot was fetched
	// (ReplicateFrom records it). Promote measures the snapshot's age
	// against StalenessMin from here.
	RefreshedAt time.Duration
}

// Result records a finished query arriving back at its issuing peer.
// Partial marks an explicit partial result: the plan could no longer travel
// productively (every remaining hop had already seen it — see
// internal/route), so a server returned what was already reduced. Partial
// items are a sub-multiset of the complete answer.
type Result struct {
	Plan    *algebra.Plan
	At      time.Duration
	Hops    int
	Partial bool
}

// Config assembles a Peer.
type Config struct {
	Addr string
	Net  *simnet.Network
	NS   *namespace.Namespace
	// Area is the peer's interest area (may be empty for pure clients).
	Area namespace.Area
	// Authoritative marks the peer's registrations as authoritative for
	// its area (§3.3).
	Authoritative bool
	// Policy defaults to mqp.DefaultPolicy{}. Use mqp.ForwardOnlyPolicy to
	// disable data pulls.
	Policy mqp.Policy
	// PushSelect enables the Fig. 4(a) rewrite; on by default in NewPeer.
	PushSelect bool
	// Key signs provenance records; nil disables provenance.
	Key []byte
	// CategoryServer attaches a category-server role (§3.5).
	CategoryServer *hierarchy.Server
	// StatsHistPath, when set, is the numeric field the peer histograms
	// when publishing statistics: on declined collections (§5.1) and as
	// attribute indices inside registrations (§3.2).
	StatsHistPath string
	// StatsKeyPaths are the fields whose distinct counts the peer
	// publishes alongside.
	StatsKeyPaths []string
	// PruneStats enables histogram-based pruning of provably-empty union
	// branches when this peer processes plans (§3.2 attribute indices).
	PruneStats bool
	// Workers > 0 runs delivered plans on a pool of that many workers behind
	// a bounded frame queue with admission control (overload turns into
	// explicit partial results, not latency collapse). Zero keeps the
	// synchronous delivery path: every Deliver processes inline, which the
	// deterministic chaos/experiment harnesses rely on.
	Workers int
	// QueueDepth bounds the worker pool's frame queue; 0 defaults to
	// 4×Workers. A full queue rejects new plans with a partial result
	// annotated "admission".
	QueueDepth int
	// StepTimeout bounds one plan step in the worker pool; an expired step
	// returns a partial result annotated "canceled". Zero disables the bound.
	StepTimeout time.Duration
	// PlanCacheSize enables the processor's prepared-plan cache with that
	// many entries (see internal/mqp). Zero disables it.
	PlanCacheSize int
	// LearnShortcuts enables learned routing (internal/route.Shortcuts): the
	// peer mines (area → server) edges from the provenance trails of plans
	// and results it handles, consults them ahead of catalog routes, and
	// absorbs repeatedly confirmed edges into its catalog as real index
	// registrations. Off by default — a peer without learning routes
	// byte-identically to earlier builds.
	LearnShortcuts bool
	// Keyring, when set alongside LearnShortcuts, verifies trail HMACs
	// before mining: an unverifiable trail teaches nothing. Nil trusts the
	// local deployment (the trails a peer mines already crossed its own
	// signing path).
	Keyring provenance.Keyring
	// AbsorbThreshold is the hit count at which a learned shortcut is
	// absorbed into the catalog as an index registration (surviving shortcut
	// expiry and this peer's restart-from-catalog). Zero defaults to 2;
	// negative disables absorption.
	AbsorbThreshold int
	// Blobs, when non-nil, is the peer's content-addressed payload store
	// (internal/blobstore): collection snapshots and received payloads are
	// interned so identical subtrees are resident once, and bodies sent to
	// neighbors that have proven blob-capable carry payload references
	// instead of bytes both ends already hold (see blob.go). Nil keeps the
	// peer byte-identical to a build without the store.
	Blobs *blobstore.Store
}

// Peer is one network participant.
type Peer struct {
	addr string
	net  *simnet.Network
	ns   *namespace.Namespace
	cat  *catalog.Catalog
	proc *mqp.Processor
	cfg  Config

	// store holds the peer's collections: sharded and read-mostly, so
	// concurrent plan steps fetch local data without contending (see
	// store.go). Per-step state (the processing clock, pull-delay
	// accounting) lives in an mqp.StepContext owned by the step, not on the
	// peer, so any number of steps run independently.
	store *collStore

	// lastAt remembers the virtual time of the most recent plan delivery
	// (atomic time.Duration). Driver-phase requests issued from this peer
	// (Harvest, ReplicateFrom, SubcategoriesOf) start from it.
	lastAt atomic.Int64

	// resMu guards the delivery-side records below. It is deliberately
	// separate from the data path: appending a result never blocks a worker
	// reading collections.
	resMu   sync.Mutex
	results []Result
	// stuck records terminal plan failures; stuckSeen dedupes identical
	// entries (message duplication can redeliver the same doomed plan).
	stuck     []error
	stuckSeen map[string]bool

	// rt is the worker-pool runtime, nil when Workers == 0 (synchronous
	// delivery).
	rt *runtime

	// shortcuts is the learned routing table, nil unless Config.LearnShortcuts.
	shortcuts *route.Shortcuts

	// blobs is the payload-by-reference runtime, nil unless Config.Blobs.
	blobs *blobState
}

// New creates a peer and registers it on the network.
func New(cfg Config) (*Peer, error) {
	if cfg.Addr == "" || cfg.Net == nil || cfg.NS == nil {
		return nil, fmt.Errorf("peer: config needs Addr, Net and NS")
	}
	if cfg.Policy == nil {
		// Plans travel to the data by default — the paper's signature
		// behavior. Pass mqp.DefaultPolicy to enable data pulls instead.
		cfg.Policy = mqp.ForwardOnlyPolicy{}
	}
	p := &Peer{
		addr:  cfg.Addr,
		net:   cfg.Net,
		ns:    cfg.NS,
		cat:   catalog.New(cfg.NS, cfg.Addr),
		cfg:   cfg,
		store: newCollStore(),
	}
	pcfg := mqp.Config{
		Self:          cfg.Addr,
		Catalog:       p.cat,
		FetchLocal:    p.fetchLocal,
		FetchRemote:   p.fetchRemote,
		Policy:        cfg.Policy,
		PushSelect:    cfg.PushSelect,
		Key:           cfg.Key,
		Now:           p.virtualNow,
		SizeOf:        p.sizeOf,
		StatsFor:      p.statsFor,
		PruneStats:    cfg.PruneStats,
		PlanCacheSize: cfg.PlanCacheSize,
		// The prepared-plan cache invalidates on local data changes as well
		// as catalog changes: a published collection snapshot may change
		// what a cached step materialized.
		CacheGeneration: p.store.generation,
	}
	if cfg.LearnShortcuts {
		p.shortcuts = route.NewShortcuts(route.ShortcutsConfig{})
		pcfg.Shortcuts = p.shortcuts
	}
	if cfg.Blobs != nil {
		p.blobs = newBlobState(cfg.Blobs)
		// Prepared-plan cache freight dedups against the store without
		// taking ownership (see blobstore.Canonicalize).
		pcfg.InternDoc = cfg.Blobs.Canonicalize
	}
	if cfg.Authoritative {
		pcfg.Authority = cfg.Area
	}
	proc, err := mqp.New(pcfg)
	if err != nil {
		return nil, err
	}
	p.proc = proc
	if cfg.Workers > 0 {
		p.rt = newRuntime(p, cfg.Workers, cfg.QueueDepth, cfg.StepTimeout)
	}
	cfg.Net.Add(p)
	return p, nil
}

// Close stops the worker-pool runtime, if any: workers drain, queued plans
// still waiting are rejected with partial results annotated "shutdown".
// A synchronous peer's Close is a no-op. Close is idempotent.
func (p *Peer) Close() {
	if p.rt != nil {
		p.rt.close()
	}
}

// Addr implements simnet.Peer.
func (p *Peer) Addr() string { return p.addr }

// Catalog exposes the peer's catalog for direct seeding in experiments.
func (p *Peer) Catalog() *catalog.Catalog { return p.cat }

// CacheStats reports the processor's prepared-plan cache counters (zero
// when the cache is disabled).
func (p *Peer) CacheStats() mqp.CacheStats { return p.proc.CacheStats() }

// Shortcuts exposes the learned routing table, nil unless the peer was
// configured with LearnShortcuts.
func (p *Peer) Shortcuts() *route.Shortcuts { return p.shortcuts }

func (p *Peer) virtualNow() time.Duration {
	return time.Duration(p.lastAt.Load())
}

// AddCollection installs (or replaces) a base collection, freezing its
// items (see Collection). The peer keeps a private snapshot: later mutation
// of the caller's struct does not affect what is served.
func (p *Peer) AddCollection(c Collection) {
	for _, it := range c.Items {
		it.Freeze()
	}
	cc := c
	if p.blobs != nil {
		// Dedup at rest: install canonical aliases, one resident copy per
		// distinct content across collections, replicas and received
		// payloads. The slice is fresh — the caller's is left alone.
		cc.Items = p.blobs.internCollection(c.PathExp, c.Items)
	}
	p.store.put(&cc)
}

// Collection returns the collection with the given path identifier.
func (p *Peer) Collection(pathExp string) (Collection, bool) {
	c := p.store.get(pathExp)
	if c == nil {
		return Collection{}, false
	}
	return *c, true
}

// SetItems replaces a collection's items (workload updates). The new items
// are frozen (see Collection), and published as a fresh snapshot — in-flight
// steps holding the previous snapshot finish against consistent data.
func (p *Peer) SetItems(pathExp string, items []*xmltree.Node) error {
	for _, it := range items {
		it.Freeze()
	}
	old := p.store.get(pathExp)
	if old == nil {
		return fmt.Errorf("peer %s: no collection %q", p.addr, pathExp)
	}
	cc := *old
	cc.Items = items
	if p.blobs != nil {
		cc.Items = p.blobs.internCollection(pathExp, items)
	}
	p.store.put(&cc)
	return nil
}

// Registration builds this peer's registration record, including exported
// collections and retained statements.
func (p *Peer) Registration(role catalog.Role) catalog.Registration {
	reg := catalog.Registration{
		Addr:          p.addr,
		Role:          role,
		Area:          p.cfg.Area,
		Authoritative: p.cfg.Authoritative,
	}
	for _, pe := range p.store.paths() {
		c := p.store.get(pe)
		if c == nil {
			continue
		}
		coll := catalog.Collection{Name: c.Name, PathExp: c.PathExp, Area: c.Area}
		// Publish attribute indices (§3.2) when stats are configured.
		if p.cfg.StatsHistPath != "" {
			s := stats.Collect(c.Items, p.cfg.StatsKeyPaths, p.cfg.StatsHistPath, 8)
			coll.Annotations = map[string]string{}
			coll.Annotations[algebra.AnnotCard] = strconv.Itoa(s.Card)
			if s.Hist != nil {
				coll.Annotations[algebra.AnnotHistogram] = s.Hist.Encode()
			}
			if len(s.Distinct) > 0 {
				coll.Annotations[algebra.AnnotDistinct] = stats.EncodeDistinct(s.Distinct)
			}
		}
		reg.Collections = append(reg.Collections, coll)
	}
	return reg
}

// RegisterWith pushes this peer's registration (with the given role and
// statements) to the server at addr — the §3.3 push process. The peer also
// remembers addr as an index server in its own catalog (§3.2: peers cache
// index and meta-index servers they have used), so plans holding URNs this
// peer cannot bind have somewhere to go.
func (p *Peer) RegisterWith(addr string, role catalog.Role, stmts ...catalog.Statement) error {
	return p.registerWith(addr, role, 0, "", stmts)
}

// RegisterWithAt is RegisterWith for peers joining a live network: the
// registration message carries the given virtual time, so in scheduled
// mode it is delivered in order among the query traffic already in flight
// instead of "before" the run began.
func (p *Peer) RegisterWithAt(addr string, role catalog.Role, at time.Duration, stmts ...catalog.Statement) error {
	return p.registerWith(addr, role, at, "", stmts)
}

func (p *Peer) registerWith(addr string, role catalog.Role, at time.Duration, supersedes string, stmts []catalog.Statement) error {
	reg := p.Registration(role)
	reg.Statements = stmts
	reg.Supersedes = supersedes
	if err := p.net.Send(&simnet.Message{
		From: p.addr, To: addr, Kind: KindRegister,
		Body: p.blobMark(catalog.MarshalRegistration(reg)), At: at,
	}); err != nil {
		return err
	}
	return p.cat.Register(catalog.Registration{
		Addr: addr, Role: catalog.RoleIndex, Area: p.ns.Everything(),
	})
}

// DeregisterFrom tells the server at addr that this peer is leaving
// gracefully: the server drops every registration this peer pushed
// (catalog.Deregister) and invalidates any learned shortcuts pointing here —
// the graceful counterpart of the crash-and-supersede path. The local
// catalog also forgets addr as a cached index server.
func (p *Peer) DeregisterFrom(addr string, at time.Duration) error {
	body := xmltree.Elem("deregister")
	body.SetAttr("addr", p.addr)
	if err := p.net.Send(&simnet.Message{
		From: p.addr, To: addr, Kind: KindDeregister, Body: p.blobMark(body), At: at,
	}); err != nil {
		return err
	}
	p.cat.Deregister(addr)
	return nil
}

// Harvest pulls the registration of the peer at addr into the local catalog
// — the §3.3 pull process ("index servers query their base servers for
// their data, to build more detailed indices").
func (p *Peer) Harvest(addr string) error {
	reply, _, err := p.net.Request(p.addr, addr, KindExport, p.blobMark(xmltree.Elem("export")), p.virtualNow())
	if err != nil {
		return err
	}
	p.blobLearn(addr, reply)
	reg, err := catalog.UnmarshalRegistration(p.ns, reply)
	if err != nil {
		return err
	}
	return p.cat.Register(reg)
}

// ReplicateFrom copies the collection at srcAddr/pathExp into this peer as a
// replica with the given staleness bound — the §4.3 delayed-replication
// model. The experiment driver calls it again to refresh the snapshot.
func (p *Peer) ReplicateFrom(srcAddr, pathExp string, as Collection, stalenessMin int) error {
	req := xmltree.Elem("fetch")
	req.SetAttr("path", pathExp)
	reply, at, err := p.net.Request(p.addr, srcAddr, KindFetch, p.blobMark(req), p.virtualNow())
	if err != nil {
		return err
	}
	p.blobLearn(srcAddr, reply)
	items := make([]*xmltree.Node, 0, len(reply.Elements()))
	for _, e := range reply.Elements() {
		// The reply is ours; the source serves frozen items, so this
		// freeze-and-alias is a no-op per item rather than a deep copy.
		items = append(items, e.Freeze())
	}
	as.Items = items
	as.StalenessMin = stalenessMin
	as.RefreshedAt = at
	p.AddCollection(as)
	return nil
}

// ErrStaleReplica is wrapped by Promote when the replica's staleness bound
// is already exhausted at promotion time.
var ErrStaleReplica = errors.New("replica staleness bound exceeded")

// Promote turns a replica into the authoritative copy of its collection —
// the recovery step §4.3's delayed replication exists for. When the source
// base server crashes without restart, the replica re-registers with the
// upstream index carrying Supersedes=source, so the index forgets the dead
// copy and routes queries to this one; results served from the replica
// carry its staleness bound on the provenance trail exactly as replica
// fetches always did.
//
// The bound is a promise to queries, not just metadata: a replica whose
// snapshot is already older than StalenessMin at promotion time must not
// become authoritative. Promote refuses with ErrStaleReplica and records a
// stuck entry — an explicit "data existed but was too stale to serve"
// trace — instead of silently promoting data every later trail would
// misdescribe.
func (p *Peer) Promote(pathExp, source, upstream string, now time.Duration) error {
	c := p.store.get(pathExp)
	if c == nil {
		return fmt.Errorf("peer %s: promote: no collection %q", p.addr, pathExp)
	}
	if age := now - c.RefreshedAt; age > time.Duration(c.StalenessMin)*time.Minute {
		return p.noteStuck(fmt.Errorf("peer %s: promotion of replica %q (source %s) refused: snapshot age %v exceeds bound %dmin: %w",
			p.addr, pathExp, source, age, c.StalenessMin, ErrStaleReplica))
	}
	if at := int64(now); at > p.lastAt.Load() {
		p.lastAt.Store(at)
	}
	return p.registerWith(upstream, catalog.RoleBase, now, source, nil)
}

// Results returns a snapshot of the finished queries delivered to this
// peer. The returned slice is the caller's: appending results concurrently
// never aliases into it.
func (p *Peer) Results() []Result {
	p.resMu.Lock()
	defer p.resMu.Unlock()
	out := make([]Result, len(p.results))
	copy(out, p.results)
	return out
}

// TakeResult pops the oldest finished query, if any.
func (p *Peer) TakeResult() (Result, bool) {
	p.resMu.Lock()
	defer p.resMu.Unlock()
	if len(p.results) == 0 {
		return Result{}, false
	}
	r := p.results[0]
	// Copy the tail rather than re-slicing: the popped entry must not stay
	// reachable through the backing array, and a previous Results snapshot
	// must not see later appends through a shared array.
	p.results = append([]Result(nil), p.results[1:]...)
	return r, true
}

// recordResult appends a finished query.
func (p *Peer) recordResult(plan *algebra.Plan, at time.Duration, hops int) {
	p.mineTrail(plan, at)
	p.resMu.Lock()
	p.results = append(p.results, Result{Plan: plan, At: at, Hops: hops,
		Partial: plan.PartialResult()})
	p.resMu.Unlock()
}

// mineTrail extracts learned routing shortcuts from a plan's provenance
// trail — the tentpole of learned routing. Two classes of edges are mined:
//
//   - every verified ActionBind visit whose detail is an area URN says
//     "that server binds that resource area" — the direct evidence;
//   - provenance.SuggestShortcuts distills forward-only detours into
//     teach-the-shortcut edges (the trail walked Via to reach Direct, so
//     next time skip Via).
//
// Shortcuts whose hit count reaches AbsorbThreshold are absorbed into the
// local catalog as real index registrations (catalog.AbsorbLearned), so the
// learning survives table expiry and outlives this peer's shortcut table —
// the paper's meta-index maintenance loop, automated. Mining is message-free:
// it reads trails already in hand, so enabling it never perturbs network
// traffic by itself.
func (p *Peer) mineTrail(plan *algebra.Plan, at time.Duration) {
	if p.shortcuts == nil {
		return
	}
	t, err := provenance.FromPlan(plan)
	if err != nil || t == nil || len(t.Visits) == 0 {
		return
	}
	if p.cfg.Keyring != nil {
		if _, err := t.Verify(p.cfg.Keyring); err != nil {
			return // an unverifiable trail teaches nothing
		}
	}
	gen := p.cat.Generation()
	for _, v := range t.Visits {
		if v.Action == provenance.ActionBind && v.Server != p.addr &&
			namespace.IsAreaURN(v.Detail) {
			p.shortcuts.Learn(v.Detail, v.Server, gen, at)
		}
	}
	for _, s := range provenance.SuggestShortcuts(t) {
		if s.Direct != p.addr && namespace.IsAreaURN(s.Detail) {
			p.shortcuts.Learn(s.Detail, s.Direct, gen, at)
		}
	}
	threshold := p.cfg.AbsorbThreshold
	if threshold == 0 {
		threshold = 2
	}
	if threshold < 0 {
		return
	}
	for _, e := range p.shortcuts.Confirmed(threshold, gen, at) {
		// AbsorbLearned is idempotent for already-covered edges, so repeated
		// confirmation does not churn the catalog generation (which would
		// needlessly invalidate the prepared-plan cache).
		_ = p.cat.AbsorbLearned(e.Server, e.Area)
	}
}

// StuckErrors returns errors from plans that could make no progress here:
// processor failures, plans with every next hop unreachable, results that
// could not be delivered, and forwarding-loop trips. Each error message
// carries the plan id (quoted), so a harness can attribute every submitted
// plan to a result, a stuck error, or an injected network fault.
func (p *Peer) StuckErrors() []error {
	p.resMu.Lock()
	defer p.resMu.Unlock()
	return append([]error(nil), p.stuck...)
}

// noteStuck records an error that terminated a plan at this peer. Every
// terminal-failure path routes through here; repeated identical entries
// (same plan, same failure — e.g. a duplicated delivery of a doomed plan)
// are recorded once.
func (p *Peer) noteStuck(err error) error {
	p.resMu.Lock()
	defer p.resMu.Unlock()
	key := err.Error()
	if p.stuckSeen == nil {
		p.stuckSeen = map[string]bool{}
	}
	if !p.stuckSeen[key] {
		p.stuckSeen[key] = true
		p.stuck = append(p.stuck, err)
	}
	return err
}

// Submit sends a plan to the server at addr for evaluation. The plan's
// target should be this peer's address (or another peer expecting the
// result).
func (p *Peer) Submit(addr string, plan *algebra.Plan) error {
	return p.SubmitCtx(context.Background(), addr, plan)
}

// SubmitCtx is Submit with cancellation: a context already canceled or
// past its deadline fails the submission before the plan enters the
// network. Once sent, the plan travels peer to peer and is bounded by each
// server's own admission control and step timeout rather than by ctx (a
// context cannot follow a plan across the wire).
func (p *Peer) SubmitCtx(ctx context.Context, addr string, plan *algebra.Plan) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("peer %s: submit plan %q: %w", p.addr, plan.ID, err)
	}
	return p.net.Send(&simnet.Message{
		From: p.addr, To: addr, Kind: KindMQP,
		Body: p.blobEncode(algebra.Marshal(plan), addr, p.virtualNow()),
	})
}

// --- simnet.Peer implementation ---------------------------------------

// Deliver implements simnet.Peer: handles plans in flight, results, and
// registration pushes.
func (p *Peer) Deliver(net *simnet.Network, msg *simnet.Message) error {
	switch msg.Kind {
	case KindMQP:
		return p.handleMQP(msg)
	case KindResult:
		body, fdelay, derr := p.blobDecode(msg)
		if derr != nil {
			return p.noteStuck(fmt.Errorf("peer %s: result for plan %q: %w",
				p.addr, msg.Body.AttrDefault("id", ""), derr))
		}
		plan, err := algebra.Unmarshal(body)
		if err != nil {
			return fmt.Errorf("peer %s: bad result: %w", p.addr, err)
		}
		p.recordResult(plan, msg.At+fdelay, msg.Hops)
		return nil
	case KindRegister:
		p.blobLearn(msg.From, msg.Body)
		reg, err := catalog.UnmarshalRegistration(p.ns, msg.Body)
		if err != nil {
			return fmt.Errorf("peer %s: bad registration: %w", p.addr, err)
		}
		if reg.Supersedes != "" && p.shortcuts != nil {
			// A replacement registration (replica promotion) retires the
			// superseded server: shortcuts still pointing at it would route
			// plans to a corpse until they expired on their own.
			p.shortcuts.Invalidate(reg.Supersedes)
		}
		return p.cat.Register(reg)
	case KindDeregister:
		p.blobLearn(msg.From, msg.Body)
		addr := msg.Body.AttrDefault("addr", "")
		if addr == "" {
			return fmt.Errorf("peer %s: deregister without addr", p.addr)
		}
		p.cat.Deregister(addr)
		if p.shortcuts != nil {
			p.shortcuts.Invalidate(addr)
		}
		return nil
	default:
		return fmt.Errorf("peer %s: unknown message kind %q", p.addr, msg.Kind)
	}
}

// handleMQP dispatches a delivered plan: onto the worker pool when one is
// configured, inline otherwise.
func (p *Peer) handleMQP(msg *simnet.Message) error {
	if p.rt != nil {
		return p.rt.enqueue(msg)
	}
	return p.processMQP(context.Background(), msg)
}

// processMQP runs one plan step and routes the outcome: a result home, the
// mutated plan onward, or a stuck record. ctx bounds the step (worker-pool
// shutdown, per-plan timeout); a canceled step turns into an explicit
// partial result annotated "canceled".
func (p *Peer) processMQP(ctx context.Context, msg *simnet.Message) error {
	// Resolve payload references before anything interprets the body: an
	// unresolved <blob> under <data> would be mistaken for payload data. A
	// failed resolution (fetch-on-miss exhausted, only possible under
	// faults) ends the plan here, attributably.
	mbody, fdelay, derr := p.blobDecode(msg)
	if derr != nil {
		return p.noteStuck(fmt.Errorf("peer %s: plan %q: %w",
			p.addr, msg.Body.AttrDefault("id", ""), derr))
	}
	plan, err := algebra.Unmarshal(mbody)
	if err != nil {
		return fmt.Errorf("peer %s: bad plan: %w", p.addr, err)
	}
	// A constant plan addressed to us is a result that was routed as an
	// MQP; accept it either way.
	if plan.Target == p.addr && plan.IsConstant() {
		p.recordResult(plan, msg.At+fdelay, msg.Hops)
		return nil
	}
	p.lastAt.Store(int64(msg.At))

	// Fetch-on-miss round trips charge the plan's clock like data pulls do.
	sc := mqp.StepContext{Ctx: ctx, Now: msg.At, PullDelay: fdelay}
	out, err := p.proc.StepCtx(&sc, plan)
	if err != nil {
		return p.noteStuck(fmt.Errorf("peer %s: %w", p.addr, err))
	}
	// Learn from the in-flight trail: the plan just crossed this peer, and
	// its trail names which servers bound which areas upstream.
	p.mineTrail(plan, msg.At)
	// Data pulls during the step charged their RTTs to the plan's clock.
	at := msg.At + sc.PullDelay

	if out.Done || out.Partial {
		result := plan
		if out.Partial {
			// No productive hop remains: instead of bouncing the plan into
			// the depth guard, return an explicit partial result carrying
			// what was already reduced (a sub-multiset of the full answer).
			result = route.Partial(plan)
			if out.Canceled {
				result.SetPartialReason("canceled")
			}
		}
		body := p.blobEncode(algebra.Marshal(result), result.Target, at)
		if p.rt != nil {
			// The concurrent runtime ships results frozen: a result is final,
			// freezing makes that explicit, and a frozen document crosses an
			// in-process link as an immutable alias (see simnet.encodeBody)
			// instead of a serialize+decode round trip. Synchronous peers
			// keep the mutable marshal so the deterministic harnesses drive
			// the full wire codec on every delivery.
			body.Freeze()
		}
		err := p.net.Send(&simnet.Message{
			From: p.addr, To: result.Target, Kind: KindResult,
			Body: body, At: at, Hops: msg.Hops,
		})
		if err != nil {
			// The answer exists but its owner is unreachable: surface the
			// plan as stuck here so it does not vanish silently.
			return p.noteStuck(fmt.Errorf("peer %s: result for plan %q undeliverable to %s: %w",
				p.addr, plan.ID, plan.Target, err))
		}
		return nil
	}
	// Fault tolerance (§1): try forwarding candidates in preference order;
	// an unreachable next hop falls through to the next candidate. The plan
	// is marshaled once and the same document offered to each candidate;
	// this relies on receivers never mutating msg.Body (Unmarshal
	// freeze-and-aliases whatever it keeps). In blob mode the substitution
	// is per-receiver (it depends on what each candidate was taught), so
	// each candidate gets its own staging tree instead of the shared one.
	body := algebra.Marshal(plan)
	var lastErr error
	for i, hop := range out.NextHops {
		if p.blobs != nil {
			if i > 0 {
				body = algebra.Marshal(plan)
			}
			p.blobEncode(body, hop, at)
		}
		err := p.net.Send(&simnet.Message{
			From: p.addr, To: hop, Kind: KindMQP,
			Body: body, At: at, Hops: msg.Hops,
		})
		if err == nil {
			return nil
		}
		lastErr = err
		if _, unreachable := err.(simnet.ErrUnreachable); !unreachable {
			if errors.Is(err, simnet.ErrDepthExceeded) {
				// A forwarding loop ends the plan here; record it so the
				// plan is accounted for.
				return p.noteStuck(fmt.Errorf("peer %s: plan %q: %w", p.addr, plan.ID, err))
			}
			return err
		}
	}
	return p.noteStuck(fmt.Errorf("peer %s: all %d next hops unreachable for plan %q: %w",
		p.addr, len(out.NextHops), plan.ID, lastErr))
}

// rejectMQP turns a plan this peer cannot process (full admission queue,
// shutdown) into an explicit partial result sent back to the plan's target,
// annotated with the reason. Load shedding is not an error: the plan is
// accounted for — as a partial at its owner, or as a stuck record here if
// even the partial cannot be delivered.
func (p *Peer) rejectMQP(msg *simnet.Message, reason string) error {
	mbody, _, derr := p.blobDecode(msg)
	if derr != nil {
		return p.noteStuck(fmt.Errorf("peer %s: plan %q: %w",
			p.addr, msg.Body.AttrDefault("id", ""), derr))
	}
	plan, err := algebra.Unmarshal(mbody)
	if err != nil {
		return fmt.Errorf("peer %s: bad plan: %w", p.addr, err)
	}
	// A result routed as an MQP costs nothing to accept; never shed it.
	if plan.Target == p.addr && plan.IsConstant() {
		p.recordResult(plan, msg.At, msg.Hops)
		return nil
	}
	res := route.Partial(plan)
	res.SetPartialReason(reason)
	if err := p.net.Send(&simnet.Message{
		From: p.addr, To: res.Target, Kind: KindResult,
		Body: p.blobEncode(algebra.Marshal(res), res.Target, msg.At), At: msg.At, Hops: msg.Hops,
	}); err != nil {
		return p.noteStuck(fmt.Errorf("peer %s: %s partial for plan %q undeliverable to %s: %w",
			p.addr, reason, plan.ID, plan.Target, err))
	}
	return nil
}

// Serve implements simnet.Peer: data pulls, harvesting, and category
// queries.
func (p *Peer) Serve(net *simnet.Network, req *simnet.Message) (*xmltree.Node, error) {
	p.blobLearn(req.From, req.Body)
	switch req.Kind {
	case KindBlobFetch:
		return p.serveBlobFetch(req)
	case KindFetch:
		pathExp := req.Body.AttrDefault("path", "")
		items, stale, err := p.fetchLocal(nil, p.addr, pathExp)
		if err != nil {
			return nil, err
		}
		reply := p.blobMark(xmltree.Elem("data"))
		reply.SetAttr("staleness", strconv.Itoa(stale))
		for _, it := range items {
			// Collection items are frozen on install, so a fetch reply
			// aliases them instead of copying the snapshot per request.
			reply.Add(it.Share())
		}
		return reply, nil
	case KindExport:
		return p.blobMark(catalog.MarshalRegistration(p.Registration(catalog.RoleBase))), nil
	case KindSubcats:
		if p.cfg.CategoryServer == nil {
			return nil, fmt.Errorf("peer %s: not a category server", p.addr)
		}
		dim := req.Body.AttrDefault("dimension", "")
		path, err := hierarchy.ParsePath(req.Body.AttrDefault("path", "*"))
		if err != nil {
			return nil, err
		}
		// DNS-like delegation (§3.5): if another category server manages
		// this subtree, answer with a referral instead of data.
		if delegate := p.cfg.CategoryServer.Resolve(dim, path); delegate != "" {
			reply := xmltree.Elem("categories")
			reply.SetAttr("delegate", delegate)
			return reply, nil
		}
		kids, err := p.cfg.CategoryServer.Subcategories(dim, path)
		if err != nil {
			return nil, err
		}
		reply := xmltree.Elem("categories")
		for _, k := range kids {
			reply.Add(xmltree.ElemText("category", k.String()))
		}
		return reply, nil
	default:
		return nil, fmt.Errorf("peer %s: unknown request kind %q", p.addr, req.Kind)
	}
}

// fetchLocal serves this peer's own collections from the current store
// snapshot. The StepContext is unused: local data costs no virtual time.
func (p *Peer) fetchLocal(_ *mqp.StepContext, _ string, pathExp string) ([]*xmltree.Node, int, error) {
	c := p.store.get(pathExp)
	if c == nil {
		return nil, 0, fmt.Errorf("peer %s: no collection %q", p.addr, pathExp)
	}
	return c.Items, c.StalenessMin, nil
}

// sizeOf reports a local collection's size, or -1 when unknown.
func (p *Peer) sizeOf(pathExp string) int {
	c := p.store.get(pathExp)
	if c == nil {
		return -1
	}
	return len(c.Items)
}

// statsFor publishes the §5.1 statistics annotations for a collection the
// policy declined to materialize.
func (p *Peer) statsFor(pathExp string) map[string]string {
	c := p.store.get(pathExp)
	if c == nil {
		return nil
	}
	s := stats.Collect(c.Items, p.cfg.StatsKeyPaths, p.cfg.StatsHistPath, 8)
	out := map[string]string{}
	if len(s.Distinct) > 0 {
		out[algebra.AnnotDistinct] = stats.EncodeDistinct(s.Distinct)
	}
	if s.Hist != nil {
		out[algebra.AnnotHistogram] = s.Hist.Encode()
	}
	return out
}

// fetchRemote pulls a collection from another peer, charging the RTT to the
// in-flight plan's virtual time through its StepContext.
func (p *Peer) fetchRemote(sc *mqp.StepContext, addr, pathExp string) ([]*xmltree.Node, int, error) {
	req := xmltree.Elem("fetch")
	req.SetAttr("path", pathExp)
	start := sc.Now
	reply, at, err := p.net.Request(p.addr, addr, KindFetch, p.blobMark(req), start)
	if err != nil {
		return nil, 0, err
	}
	p.blobLearn(addr, reply)
	sc.PullDelay += at - start
	stale, err := strconv.Atoi(reply.AttrDefault("staleness", "0"))
	if err != nil {
		return nil, 0, fmt.Errorf("peer %s: bad staleness from %s: %w", p.addr, addr, err)
	}
	items := make([]*xmltree.Node, 0, len(reply.Elements()))
	for _, e := range reply.Elements() {
		it := e.Freeze()
		if p.blobs != nil {
			// Pulled data dedups against residents without pinning: the
			// items live only as long as the plan that pulled them.
			it = p.blobs.store.Canonicalize(it)
		}
		items = append(items, it)
	}
	return items, stale, nil
}

// SubcategoriesOf asks the category server at addr for the immediate
// subcategories of path in dimension (§3.5), chasing delegation referrals
// the way a DNS resolver follows NS records. A referral chain longer than
// maxDelegationDepth is reported as an error.
func (p *Peer) SubcategoriesOf(addr, dimension string, path hierarchy.Path) ([]hierarchy.Path, error) {
	const maxDelegationDepth = 8
	visited := map[string]bool{}
	for depth := 0; depth < maxDelegationDepth; depth++ {
		if visited[addr] {
			return nil, fmt.Errorf("peer %s: category delegation loop at %s", p.addr, addr)
		}
		visited[addr] = true
		req := xmltree.Elem("subcats")
		req.SetAttr("dimension", dimension)
		req.SetAttr("path", path.String())
		reply, _, err := p.net.Request(p.addr, addr, KindSubcats, req, p.virtualNow())
		if err != nil {
			return nil, err
		}
		if delegate, ok := reply.Attr("delegate"); ok && delegate != "" {
			addr = delegate
			continue
		}
		var out []hierarchy.Path
		for _, c := range reply.ChildrenNamed("category") {
			pa, err := hierarchy.ParsePath(c.InnerText())
			if err != nil {
				return nil, err
			}
			out = append(out, pa)
		}
		return out, nil
	}
	return nil, fmt.Errorf("peer %s: category delegation chain too deep", p.addr)
}

// QueryTrail extracts the provenance trail from a result.
func QueryTrail(r Result) (*provenance.Trail, error) {
	return provenance.FromPlan(r.Plan)
}
