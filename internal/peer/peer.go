// Package peer assembles the paper's peer roles (§3.2) into a network
// participant: base server (named XML collections addressed by XPath-like
// identifiers), index server, meta-index server, and category server. A
// peer owns a catalog, an MQP processor, and a data store, serves and
// forwards mutant query plans over a simnet, pushes registrations to
// authoritative servers (§3.3), and models delayed replication (§4.3).
package peer

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/provenance"
	"repro/internal/route"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/xmltree"
)

// Message kinds on the wire.
const (
	KindMQP      = "mqp"      // a mutant query plan in flight
	KindResult   = "result"   // a fully evaluated plan arriving at its target
	KindRegister = "register" // a registration push (§3.3)
	KindFetch    = "fetch"    // data pull: request a collection's items
	KindExport   = "export"   // harvest: request a peer's registration
	KindSubcats  = "subcats"  // category-server query (§3.5)
)

// Collection is a named collection a base server exports, with the XPath
// identifier other peers use to address it (§3.2).
//
// Installing a collection (AddCollection, SetItems) freezes its items:
// catalog data is immutable while served, so fetch replies, materialized
// plan leaves, and forwarded bodies all alias the same subtrees instead of
// cloning per request. To change data, replace the item slice with freshly
// built documents — never mutate installed items in place.
type Collection struct {
	Name    string
	PathExp string
	Area    namespace.Area
	Items   []*xmltree.Node
	// StalenessMin is non-zero for replicas: how out of date the snapshot
	// may be (§4.3's delay factor).
	StalenessMin int
}

// Result records a finished query arriving back at its issuing peer.
// Partial marks an explicit partial result: the plan could no longer travel
// productively (every remaining hop had already seen it — see
// internal/route), so a server returned what was already reduced. Partial
// items are a sub-multiset of the complete answer.
type Result struct {
	Plan    *algebra.Plan
	At      time.Duration
	Hops    int
	Partial bool
}

// Config assembles a Peer.
type Config struct {
	Addr string
	Net  *simnet.Network
	NS   *namespace.Namespace
	// Area is the peer's interest area (may be empty for pure clients).
	Area namespace.Area
	// Authoritative marks the peer's registrations as authoritative for
	// its area (§3.3).
	Authoritative bool
	// Policy defaults to mqp.DefaultPolicy{}. Use mqp.ForwardOnlyPolicy to
	// disable data pulls.
	Policy mqp.Policy
	// PushSelect enables the Fig. 4(a) rewrite; on by default in NewPeer.
	PushSelect bool
	// Key signs provenance records; nil disables provenance.
	Key []byte
	// CategoryServer attaches a category-server role (§3.5).
	CategoryServer *hierarchy.Server
	// StatsHistPath, when set, is the numeric field the peer histograms
	// when publishing statistics: on declined collections (§5.1) and as
	// attribute indices inside registrations (§3.2).
	StatsHistPath string
	// StatsKeyPaths are the fields whose distinct counts the peer
	// publishes alongside.
	StatsKeyPaths []string
	// PruneStats enables histogram-based pruning of provably-empty union
	// branches when this peer processes plans (§3.2 attribute indices).
	PruneStats bool
}

// Peer is one network participant.
type Peer struct {
	addr string
	net  *simnet.Network
	ns   *namespace.Namespace
	cat  *catalog.Catalog
	proc *mqp.Processor
	cfg  Config

	mu          sync.Mutex
	collections map[string]*Collection // by PathExp
	results     []Result
	// now tracks the virtual time of the message being processed, so the
	// processor's provenance records and forwards carry consistent time.
	now time.Duration
	// pullDelay accumulates request RTTs incurred during a Step (data
	// pulls), added to the forwarded plan's virtual time.
	pullDelay time.Duration
	// stuck records terminal plan failures; stuckSeen dedupes identical
	// entries (message duplication can redeliver the same doomed plan).
	stuck     []error
	stuckSeen map[string]bool
}

// New creates a peer and registers it on the network.
func New(cfg Config) (*Peer, error) {
	if cfg.Addr == "" || cfg.Net == nil || cfg.NS == nil {
		return nil, fmt.Errorf("peer: config needs Addr, Net and NS")
	}
	if cfg.Policy == nil {
		// Plans travel to the data by default — the paper's signature
		// behavior. Pass mqp.DefaultPolicy to enable data pulls instead.
		cfg.Policy = mqp.ForwardOnlyPolicy{}
	}
	p := &Peer{
		addr:        cfg.Addr,
		net:         cfg.Net,
		ns:          cfg.NS,
		cat:         catalog.New(cfg.NS, cfg.Addr),
		cfg:         cfg,
		collections: map[string]*Collection{},
	}
	pcfg := mqp.Config{
		Self:        cfg.Addr,
		Catalog:     p.cat,
		FetchLocal:  p.fetchLocal,
		FetchRemote: p.fetchRemote,
		Policy:      cfg.Policy,
		PushSelect:  cfg.PushSelect,
		Key:         cfg.Key,
		Now:         p.virtualNow,
		SizeOf:      p.sizeOf,
		StatsFor:    p.statsFor,
		PruneStats:  cfg.PruneStats,
	}
	if cfg.Authoritative {
		pcfg.Authority = cfg.Area
	}
	proc, err := mqp.New(pcfg)
	if err != nil {
		return nil, err
	}
	p.proc = proc
	cfg.Net.Add(p)
	return p, nil
}

// Addr implements simnet.Peer.
func (p *Peer) Addr() string { return p.addr }

// Catalog exposes the peer's catalog for direct seeding in experiments.
func (p *Peer) Catalog() *catalog.Catalog { return p.cat }

func (p *Peer) virtualNow() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.now
}

// AddCollection installs (or replaces) a base collection, freezing its
// items (see Collection).
func (p *Peer) AddCollection(c Collection) {
	for _, it := range c.Items {
		it.Freeze()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cc := c
	p.collections[c.PathExp] = &cc
}

// Collection returns the collection with the given path identifier.
func (p *Peer) Collection(pathExp string) (Collection, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.collections[pathExp]
	if !ok {
		return Collection{}, false
	}
	return *c, true
}

// SetItems replaces a collection's items (workload updates). The new items
// are frozen (see Collection).
func (p *Peer) SetItems(pathExp string, items []*xmltree.Node) error {
	for _, it := range items {
		it.Freeze()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.collections[pathExp]
	if !ok {
		return fmt.Errorf("peer %s: no collection %q", p.addr, pathExp)
	}
	c.Items = items
	return nil
}

// Registration builds this peer's registration record, including exported
// collections and retained statements.
func (p *Peer) Registration(role catalog.Role) catalog.Registration {
	p.mu.Lock()
	defer p.mu.Unlock()
	reg := catalog.Registration{
		Addr:          p.addr,
		Role:          role,
		Area:          p.cfg.Area,
		Authoritative: p.cfg.Authoritative,
	}
	paths := make([]string, 0, len(p.collections))
	for pe := range p.collections {
		paths = append(paths, pe)
	}
	sort.Strings(paths)
	for _, pe := range paths {
		c := p.collections[pe]
		coll := catalog.Collection{Name: c.Name, PathExp: c.PathExp, Area: c.Area}
		// Publish attribute indices (§3.2) when stats are configured.
		if p.cfg.StatsHistPath != "" {
			s := stats.Collect(c.Items, p.cfg.StatsKeyPaths, p.cfg.StatsHistPath, 8)
			coll.Annotations = map[string]string{}
			coll.Annotations[algebra.AnnotCard] = strconv.Itoa(s.Card)
			if s.Hist != nil {
				coll.Annotations[algebra.AnnotHistogram] = s.Hist.Encode()
			}
			if len(s.Distinct) > 0 {
				coll.Annotations[algebra.AnnotDistinct] = stats.EncodeDistinct(s.Distinct)
			}
		}
		reg.Collections = append(reg.Collections, coll)
	}
	return reg
}

// RegisterWith pushes this peer's registration (with the given role and
// statements) to the server at addr — the §3.3 push process. The peer also
// remembers addr as an index server in its own catalog (§3.2: peers cache
// index and meta-index servers they have used), so plans holding URNs this
// peer cannot bind have somewhere to go.
func (p *Peer) RegisterWith(addr string, role catalog.Role, stmts ...catalog.Statement) error {
	reg := p.Registration(role)
	reg.Statements = stmts
	if err := p.net.Send(&simnet.Message{
		From: p.addr, To: addr, Kind: KindRegister,
		Body: catalog.MarshalRegistration(reg),
	}); err != nil {
		return err
	}
	return p.cat.Register(catalog.Registration{
		Addr: addr, Role: catalog.RoleIndex, Area: p.ns.Everything(),
	})
}

// Harvest pulls the registration of the peer at addr into the local catalog
// — the §3.3 pull process ("index servers query their base servers for
// their data, to build more detailed indices").
func (p *Peer) Harvest(addr string) error {
	reply, _, err := p.net.Request(p.addr, addr, KindExport, xmltree.Elem("export"), p.virtualNow())
	if err != nil {
		return err
	}
	reg, err := catalog.UnmarshalRegistration(p.ns, reply)
	if err != nil {
		return err
	}
	return p.cat.Register(reg)
}

// ReplicateFrom copies the collection at srcAddr/pathExp into this peer as a
// replica with the given staleness bound — the §4.3 delayed-replication
// model. The experiment driver calls it again to refresh the snapshot.
func (p *Peer) ReplicateFrom(srcAddr, pathExp string, as Collection, stalenessMin int) error {
	req := xmltree.Elem("fetch")
	req.SetAttr("path", pathExp)
	reply, _, err := p.net.Request(p.addr, srcAddr, KindFetch, req, p.virtualNow())
	if err != nil {
		return err
	}
	items := make([]*xmltree.Node, 0, len(reply.Elements()))
	for _, e := range reply.Elements() {
		// The reply is ours; the source serves frozen items, so this
		// freeze-and-alias is a no-op per item rather than a deep copy.
		items = append(items, e.Freeze())
	}
	as.Items = items
	as.StalenessMin = stalenessMin
	p.AddCollection(as)
	return nil
}

// Results returns the finished queries delivered to this peer.
func (p *Peer) Results() []Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Result, len(p.results))
	copy(out, p.results)
	return out
}

// TakeResult pops the oldest finished query, if any.
func (p *Peer) TakeResult() (Result, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.results) == 0 {
		return Result{}, false
	}
	r := p.results[0]
	p.results = p.results[1:]
	return r, true
}

// StuckErrors returns errors from plans that could make no progress here:
// processor failures, plans with every next hop unreachable, results that
// could not be delivered, and forwarding-loop trips. Each error message
// carries the plan id (quoted), so a harness can attribute every submitted
// plan to a result, a stuck error, or an injected network fault.
func (p *Peer) StuckErrors() []error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]error(nil), p.stuck...)
}

// noteStuck records an error that terminated a plan at this peer. Every
// terminal-failure path routes through here; repeated identical entries
// (same plan, same failure — e.g. a duplicated delivery of a doomed plan)
// are recorded once.
func (p *Peer) noteStuck(err error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := err.Error()
	if p.stuckSeen == nil {
		p.stuckSeen = map[string]bool{}
	}
	if !p.stuckSeen[key] {
		p.stuckSeen[key] = true
		p.stuck = append(p.stuck, err)
	}
	return err
}

// Submit sends a plan to the server at addr for evaluation. The plan's
// target should be this peer's address (or another peer expecting the
// result).
func (p *Peer) Submit(addr string, plan *algebra.Plan) error {
	return p.net.Send(&simnet.Message{
		From: p.addr, To: addr, Kind: KindMQP, Body: algebra.Marshal(plan),
	})
}

// --- simnet.Peer implementation ---------------------------------------

// Deliver implements simnet.Peer: handles plans in flight, results, and
// registration pushes.
func (p *Peer) Deliver(net *simnet.Network, msg *simnet.Message) error {
	switch msg.Kind {
	case KindMQP:
		return p.handleMQP(msg)
	case KindResult:
		plan, err := algebra.Unmarshal(msg.Body)
		if err != nil {
			return fmt.Errorf("peer %s: bad result: %w", p.addr, err)
		}
		p.mu.Lock()
		p.results = append(p.results, Result{Plan: plan, At: msg.At, Hops: msg.Hops,
			Partial: plan.PartialResult()})
		p.mu.Unlock()
		return nil
	case KindRegister:
		reg, err := catalog.UnmarshalRegistration(p.ns, msg.Body)
		if err != nil {
			return fmt.Errorf("peer %s: bad registration: %w", p.addr, err)
		}
		return p.cat.Register(reg)
	default:
		return fmt.Errorf("peer %s: unknown message kind %q", p.addr, msg.Kind)
	}
}

func (p *Peer) handleMQP(msg *simnet.Message) error {
	plan, err := algebra.Unmarshal(msg.Body)
	if err != nil {
		return fmt.Errorf("peer %s: bad plan: %w", p.addr, err)
	}
	// A constant plan addressed to us is a result that was routed as an
	// MQP; accept it either way.
	if plan.Target == p.addr && plan.IsConstant() {
		p.mu.Lock()
		p.results = append(p.results, Result{Plan: plan, At: msg.At, Hops: msg.Hops,
			Partial: plan.PartialResult()})
		p.mu.Unlock()
		return nil
	}
	p.mu.Lock()
	p.now = msg.At
	p.pullDelay = 0
	p.mu.Unlock()

	out, err := p.proc.Step(plan)
	if err != nil {
		return p.noteStuck(fmt.Errorf("peer %s: %w", p.addr, err))
	}
	p.mu.Lock()
	at := p.now + p.pullDelay
	p.mu.Unlock()

	if out.Done || out.Partial {
		result := plan
		if out.Partial {
			// No productive hop remains: instead of bouncing the plan into
			// the depth guard, return an explicit partial result carrying
			// what was already reduced (a sub-multiset of the full answer).
			result = route.Partial(plan)
		}
		err := p.net.Send(&simnet.Message{
			From: p.addr, To: result.Target, Kind: KindResult,
			Body: algebra.Marshal(result), At: at, Hops: msg.Hops,
		})
		if err != nil {
			// The answer exists but its owner is unreachable: surface the
			// plan as stuck here so it does not vanish silently.
			return p.noteStuck(fmt.Errorf("peer %s: result for plan %q undeliverable to %s: %w",
				p.addr, plan.ID, plan.Target, err))
		}
		return nil
	}
	// Fault tolerance (§1): try forwarding candidates in preference order;
	// an unreachable next hop falls through to the next candidate. The plan
	// is marshaled once and the same document offered to each candidate;
	// this relies on receivers never mutating msg.Body (Unmarshal
	// freeze-and-aliases whatever it keeps).
	body := algebra.Marshal(plan)
	var lastErr error
	for _, hop := range out.NextHops {
		err := p.net.Send(&simnet.Message{
			From: p.addr, To: hop, Kind: KindMQP,
			Body: body, At: at, Hops: msg.Hops,
		})
		if err == nil {
			return nil
		}
		lastErr = err
		if _, unreachable := err.(simnet.ErrUnreachable); !unreachable {
			if errors.Is(err, simnet.ErrDepthExceeded) {
				// A forwarding loop ends the plan here; record it so the
				// plan is accounted for.
				return p.noteStuck(fmt.Errorf("peer %s: plan %q: %w", p.addr, plan.ID, err))
			}
			return err
		}
	}
	return p.noteStuck(fmt.Errorf("peer %s: all %d next hops unreachable for plan %q: %w",
		p.addr, len(out.NextHops), plan.ID, lastErr))
}

// Serve implements simnet.Peer: data pulls, harvesting, and category
// queries.
func (p *Peer) Serve(net *simnet.Network, req *simnet.Message) (*xmltree.Node, error) {
	switch req.Kind {
	case KindFetch:
		pathExp := req.Body.AttrDefault("path", "")
		items, stale, err := p.fetchLocal(p.addr, pathExp)
		if err != nil {
			return nil, err
		}
		reply := xmltree.Elem("data")
		reply.SetAttr("staleness", strconv.Itoa(stale))
		for _, it := range items {
			// Collection items are frozen on install, so a fetch reply
			// aliases them instead of copying the snapshot per request.
			reply.Add(it.Share())
		}
		return reply, nil
	case KindExport:
		return catalog.MarshalRegistration(p.Registration(catalog.RoleBase)), nil
	case KindSubcats:
		if p.cfg.CategoryServer == nil {
			return nil, fmt.Errorf("peer %s: not a category server", p.addr)
		}
		dim := req.Body.AttrDefault("dimension", "")
		path, err := hierarchy.ParsePath(req.Body.AttrDefault("path", "*"))
		if err != nil {
			return nil, err
		}
		// DNS-like delegation (§3.5): if another category server manages
		// this subtree, answer with a referral instead of data.
		if delegate := p.cfg.CategoryServer.Resolve(dim, path); delegate != "" {
			reply := xmltree.Elem("categories")
			reply.SetAttr("delegate", delegate)
			return reply, nil
		}
		kids, err := p.cfg.CategoryServer.Subcategories(dim, path)
		if err != nil {
			return nil, err
		}
		reply := xmltree.Elem("categories")
		for _, k := range kids {
			reply.Add(xmltree.ElemText("category", k.String()))
		}
		return reply, nil
	default:
		return nil, fmt.Errorf("peer %s: unknown request kind %q", p.addr, req.Kind)
	}
}

// fetchLocal serves this peer's own collections.
func (p *Peer) fetchLocal(_ string, pathExp string) ([]*xmltree.Node, int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.collections[pathExp]
	if !ok {
		return nil, 0, fmt.Errorf("peer %s: no collection %q", p.addr, pathExp)
	}
	return c.Items, c.StalenessMin, nil
}

// sizeOf reports a local collection's size, or -1 when unknown.
func (p *Peer) sizeOf(pathExp string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.collections[pathExp]
	if !ok {
		return -1
	}
	return len(c.Items)
}

// statsFor publishes the §5.1 statistics annotations for a collection the
// policy declined to materialize.
func (p *Peer) statsFor(pathExp string) map[string]string {
	p.mu.Lock()
	c, ok := p.collections[pathExp]
	p.mu.Unlock()
	if !ok {
		return nil
	}
	s := stats.Collect(c.Items, p.cfg.StatsKeyPaths, p.cfg.StatsHistPath, 8)
	out := map[string]string{}
	if len(s.Distinct) > 0 {
		out[algebra.AnnotDistinct] = stats.EncodeDistinct(s.Distinct)
	}
	if s.Hist != nil {
		out[algebra.AnnotHistogram] = s.Hist.Encode()
	}
	return out
}

// fetchRemote pulls a collection from another peer, charging the RTT to the
// in-flight plan's virtual time.
func (p *Peer) fetchRemote(addr, pathExp string) ([]*xmltree.Node, int, error) {
	req := xmltree.Elem("fetch")
	req.SetAttr("path", pathExp)
	start := p.virtualNow()
	reply, at, err := p.net.Request(p.addr, addr, KindFetch, req, start)
	if err != nil {
		return nil, 0, err
	}
	p.mu.Lock()
	p.pullDelay += at - start
	p.mu.Unlock()
	stale, err := strconv.Atoi(reply.AttrDefault("staleness", "0"))
	if err != nil {
		return nil, 0, fmt.Errorf("peer %s: bad staleness from %s: %w", p.addr, addr, err)
	}
	items := make([]*xmltree.Node, 0, len(reply.Elements()))
	for _, e := range reply.Elements() {
		items = append(items, e.Freeze())
	}
	return items, stale, nil
}

// SubcategoriesOf asks the category server at addr for the immediate
// subcategories of path in dimension (§3.5), chasing delegation referrals
// the way a DNS resolver follows NS records. A referral chain longer than
// maxDelegationDepth is reported as an error.
func (p *Peer) SubcategoriesOf(addr, dimension string, path hierarchy.Path) ([]hierarchy.Path, error) {
	const maxDelegationDepth = 8
	visited := map[string]bool{}
	for depth := 0; depth < maxDelegationDepth; depth++ {
		if visited[addr] {
			return nil, fmt.Errorf("peer %s: category delegation loop at %s", p.addr, addr)
		}
		visited[addr] = true
		req := xmltree.Elem("subcats")
		req.SetAttr("dimension", dimension)
		req.SetAttr("path", path.String())
		reply, _, err := p.net.Request(p.addr, addr, KindSubcats, req, p.virtualNow())
		if err != nil {
			return nil, err
		}
		if delegate, ok := reply.Attr("delegate"); ok && delegate != "" {
			addr = delegate
			continue
		}
		var out []hierarchy.Path
		for _, c := range reply.ChildrenNamed("category") {
			pa, err := hierarchy.ParsePath(c.InnerText())
			if err != nil {
				return nil, err
			}
			out = append(out, pa)
		}
		return out, nil
	}
	return nil, fmt.Errorf("peer %s: category delegation chain too deep", p.addr)
}

// QueryTrail extracts the provenance trail from a result.
func QueryTrail(r Result) (*provenance.Trail, error) {
	return provenance.FromPlan(r.Plan)
}
