package peer

import (
	"sort"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/route"
	"repro/internal/simnet"
)

// resubWorld wires the shape that turns a spanning query into a partial
// result with one seller's contribution already in hand: a CD seller is
// registered and serving, while the chairs area the query also spans has no
// seller yet — its URN ping-pongs between the authoritative meta and index
// until the visited memory declares the plan exhausted.
func resubWorld(t *testing.T) (net *simnet.Network, client *Peer, ns *namespace.Namespace) {
	t.Helper()
	net = simnet.New()
	net.SetMaxDepth(40)
	ns = testNS()
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

	client = mustPeer(t, Config{Addr: "client:9020", Net: net, NS: ns, Key: []byte("kC")})
	mustPeer(t, Config{Addr: "M:9020", Net: net, NS: ns, Key: []byte("kM"),
		Area: ns.MustParseArea("[*, *]"), Authoritative: true})
	idx := mustPeer(t, Config{Addr: "idx:9020", Net: net, NS: ns, Key: []byte("kI"),
		Area: ns.MustParseArea("[USA/OR, *]"), Authoritative: true})
	if err := idx.RegisterWith("M:9020", catalog.RoleIndex); err != nil {
		t.Fatal(err)
	}
	s1 := mustPeer(t, Config{Addr: "s1:9020", Net: net, NS: ns, Key: []byte("k1"), Area: pdxCDs})
	s1.AddCollection(Collection{Name: "cds", PathExp: "/data[id=1]", Area: pdxCDs, Items: items(
		`<sale><cd>Blue Train</cd><price>8</price></sale>`,
		`<sale><cd>Kind of Blue</cd><price>15</price></sale>`,
	)})
	if err := s1.RegisterWith("idx:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "M:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}
	return net, client, ns
}

// addChairsSeller brings up the missing chairs seller and registers it, so a
// resubmission can complete the remainder.
func addChairsSeller(t *testing.T, net *simnet.Network, ns *namespace.Namespace) {
	t.Helper()
	pdxChairs := ns.MustParseArea("[USA/OR/Portland, Furniture/Chairs]")
	s2 := mustPeer(t, Config{Addr: "s2:9020", Net: net, NS: ns, Key: []byte("k2"), Area: pdxChairs})
	s2.AddCollection(Collection{Name: "chairs", PathExp: "/data[id=2]", Area: pdxChairs, Items: items(
		`<sale><cd>Rocking Chair</cd><price>40</price></sale>`,
		`<sale><cd>Stool</cd><price>12</price></sale>`,
	)})
	if err := s2.RegisterWith("idx:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
}

func spanningPlan(id string, ns *namespace.Namespace, resub bool) *algebra.Plan {
	cds := namespace.EncodeURN(ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))
	chairs := namespace.EncodeURN(ns.MustParseArea("[USA/OR/Portland, Furniture/Chairs]"))
	p := algebra.NewPlan(id, "client:9020", algebra.Display(
		algebra.Select(algebra.MustParsePredicate("price < 100"), algebra.Union(
			algebra.URN(cds), algebra.URN(chairs)))))
	if resub {
		route.MarkResubmittable(p)
	}
	p.RetainOriginal()
	return p
}

func resultCDs(t *testing.T, p *algebra.Plan) []string {
	t.Helper()
	items, err := p.Results()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, it.Value("cd"))
	}
	sort.Strings(out)
	return out
}

// TestResubmissionSoundness pins the resubmission invariant end to end:
// partial items ∪ resubmitted items == the oracle's full answer multiset,
// with the resubmission never re-visiting the seller whose contribution the
// partial already delivered.
func TestResubmissionSoundness(t *testing.T) {
	net, client, ns := resubWorld(t)

	if err := client.Submit("M:9020", spanningPlan("q-1", ns, true)); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result delivered")
	}
	if !res.Partial {
		t.Fatalf("want a partial result while the chairs area is unserved, got: %s", res.Plan.Root)
	}
	partialCDs := resultCDs(t, res.Plan)
	if len(partialCDs) != 2 {
		t.Fatalf("partial should hold s1's two items, got %v", partialCDs)
	}
	// The partial names s1's contribution as answered — and only s1's.
	if res.Plan.Visited == nil || res.Plan.Visited.AnsweredLen() != 1 {
		t.Fatalf("answered records = %+v, want exactly s1's pair",
			res.Plan.Visited.Answered())
	}
	if aa := res.Plan.Visited.Answered()[0]; aa.Server != "s1:9020" {
		t.Fatalf("answered pair names %s, want s1:9020", aa.Server)
	}

	// The chairs seller comes up; resubmit the partial.
	addChairsSeller(t, net, ns)
	rp, err := route.Resubmit(res.Plan, "q-2")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Submit("M:9020", rp); err != nil {
		t.Fatal(err)
	}
	res2, ok := client.TakeResult()
	if !ok {
		t.Fatal("no resubmission result delivered")
	}
	if res2.Partial {
		t.Fatalf("resubmission should complete, got a partial: %s", res2.Plan.Root)
	}
	remCDs := resultCDs(t, res2.Plan)
	if len(remCDs) != 2 {
		t.Fatalf("resubmission should fetch only s2's two items, got %v", remCDs)
	}

	// The resubmission never traveled to s1: its contribution was excluded.
	if res2.Plan.Visited != nil {
		if _, saw := res2.Plan.Visited.Lookup("s1:9020"); saw {
			t.Fatalf("resubmission revisited s1: %v", res2.Plan.Visited.Servers())
		}
	}

	// Oracle: the same query, fresh, against the fully served world.
	if err := client.Submit("M:9020", spanningPlan("q-oracle", ns, false)); err != nil {
		t.Fatal(err)
	}
	res3, ok := client.TakeResult()
	if !ok {
		t.Fatal("no oracle result delivered")
	}
	if res3.Partial {
		t.Fatalf("oracle query should complete: %s", res3.Plan.Root)
	}
	oracle := resultCDs(t, res3.Plan)

	combined := append(append([]string(nil), partialCDs...), remCDs...)
	sort.Strings(combined)
	if len(combined) != len(oracle) {
		t.Fatalf("partial ∪ resubmitted = %v; oracle = %v", combined, oracle)
	}
	for i := range oracle {
		if combined[i] != oracle[i] {
			t.Fatalf("partial ∪ resubmitted = %v; oracle = %v", combined, oracle)
		}
	}
}

// TestResubmitRequiresOptIn: a plan that did not opt into resubmission
// produces a partial without answered records (its wire path is unchanged),
// and Resubmit refuses non-partial results.
func TestResubmitRequiresOptIn(t *testing.T) {
	_, client, ns := resubWorld(t)
	if err := client.Submit("M:9020", spanningPlan("q-plain", ns, false)); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result delivered")
	}
	if !res.Partial {
		t.Fatalf("want a partial, got: %s", res.Plan.Root)
	}
	if res.Plan.Visited != nil && res.Plan.Visited.AnsweredLen() != 0 {
		t.Fatalf("non-opt-in plan carried answered records: %+v",
			res.Plan.Visited.Answered())
	}
	if _, err := route.Resubmit(res.Plan, "q-x"); err != nil {
		// A partial without answered records is still resubmittable — it
		// just re-runs the whole query.
		t.Fatalf("resubmit of a record-free partial failed: %v", err)
	}
	full := spanningPlan("q-full", ns, false)
	if _, err := route.Resubmit(full, "q-y"); err == nil {
		t.Fatal("resubmit of a non-partial plan must fail")
	}
}
