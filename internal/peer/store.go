package peer

import (
	"sort"
	"sync"
	"sync/atomic"
)

// collStore is the peer's collection store, built for the concurrent
// runtime: many workers read collections on every plan step (fetchLocal,
// sizeOf, statsFor), while installs and replication refreshes are rare,
// driver-phase events.
//
// Two mechanisms keep the read path near-free:
//
//   - Sharding: paths hash onto storeShards independent RWMutex-guarded
//     maps, so concurrent readers of different collections never touch the
//     same lock word.
//   - Immutable snapshots: an installed *Collection is never mutated in
//     place — SetItems publishes a fresh value (RCU-style), so a reader
//     holds its snapshot lock-free after the map lookup. The items inside
//     are frozen xmltree subtrees, already safe to share.
//
// gen counts publishes; the processor's prepared-plan cache folds it into
// its invalidation epoch, so cached bindings of local data never outlive the
// data they materialized.
type collStore struct {
	gen    atomic.Uint64
	shards [storeShards]struct {
		mu sync.RWMutex
		m  map[string]*Collection
	}
}

const storeShards = 16

func newCollStore() *collStore {
	s := &collStore{}
	for i := range s.shards {
		s.shards[i].m = map[string]*Collection{}
	}
	return s
}

// shardOf hashes a collection path (FNV-1a) onto a shard index.
func shardOf(pathExp string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(pathExp); i++ {
		h ^= uint32(pathExp[i])
		h *= prime32
	}
	return int(h % storeShards)
}

// get returns the current snapshot of the collection, or nil. The returned
// value is immutable — callers read it without further synchronization.
func (s *collStore) get(pathExp string) *Collection {
	sh := &s.shards[shardOf(pathExp)]
	sh.mu.RLock()
	c := sh.m[pathExp]
	sh.mu.RUnlock()
	return c
}

// put publishes a collection snapshot (install or replace) and bumps the
// store generation. The caller hands over ownership: the snapshot must not
// be mutated after publishing.
func (s *collStore) put(c *Collection) {
	sh := &s.shards[shardOf(c.PathExp)]
	sh.mu.Lock()
	sh.m[c.PathExp] = c
	sh.mu.Unlock()
	s.gen.Add(1)
}

// paths returns all collection paths, sorted.
func (s *collStore) paths() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for pe := range sh.m {
			out = append(out, pe)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// generation returns the publish counter (see collStore doc).
func (s *collStore) generation() uint64 { return s.gen.Load() }
