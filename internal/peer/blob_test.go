package peer

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/blobstore"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

// bigSale builds a payload document comfortably above blobMinBytes, so it
// is eligible for teaching and by-reference shipping.
func bigSale(name string, price int) string {
	return fmt.Sprintf(`<sale><cd>%s</cd><price>%d</price><desc>%s</desc></sale>`,
		name, price, strings.Repeat("A fine recording. ", 8))
}

// blobWorld is cdWorld's two-seller topology with every peer carrying a
// content-addressed payload store. Returns the per-peer stores keyed by
// address for residency assertions.
func blobWorld(t *testing.T) (*simnet.Network, *Peer, map[string]*blobstore.Store, *namespace.Namespace) {
	t.Helper()
	net := simnet.New()
	ns := testNS()
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	stores := map[string]*blobstore.Store{}
	mk := func(addr string) *blobstore.Store {
		s := blobstore.New()
		stores[addr] = s
		return s
	}

	client := mustPeer(t, Config{Addr: "client:9020", Net: net, NS: ns, Key: []byte("kC"),
		Blobs: mk("client:9020")})
	meta := mustPeer(t, Config{Addr: "M:9020", Net: net, NS: ns, PushSelect: true, Key: []byte("kM"),
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Blobs: mk("M:9020")})
	s1 := mustPeer(t, Config{Addr: "s1:9020", Net: net, NS: ns, PushSelect: true, Key: []byte("k1"),
		Area: pdxCDs, Blobs: mk("s1:9020")})
	s2 := mustPeer(t, Config{Addr: "s2:9020", Net: net, NS: ns, PushSelect: true, Key: []byte("k2"),
		Area: pdxCDs, Blobs: mk("s2:9020")})

	s1.AddCollection(Collection{Name: "cds", PathExp: "/data[id=1]", Area: pdxCDs, Items: items(
		bigSale("Blue Train", 8),
		bigSale("Kind of Blue", 15),
	)})
	s2.AddCollection(Collection{Name: "cds", PathExp: "/data[id=2]", Area: pdxCDs, Items: items(
		bigSale("Giant Steps", 9),
	)})
	if err := s1.RegisterWith("M:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	if err := s2.RegisterWith("M:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	meta.Catalog().AddAlias("urn:ForSale:Portland-CDs", namespace.EncodeURN(pdxCDs))
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "M:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}
	return net, client, stores, ns
}

func blobQuery(id string) *algebra.Plan {
	return algebra.NewPlan(id, "client:9020",
		algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 10"),
			algebra.URN("urn:ForSale:Portland-CDs"))))
}

func runBlobQuery(t *testing.T, client *Peer, id string) []*xmltree.Node {
	t.Helper()
	if err := client.Submit("M:9020", blobQuery(id)); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatalf("query %s: no result", id)
	}
	got, err := res.Plan.Results()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestBlobByRefSecondQuery: the first query ships payloads inline and
// teaches both ends; a repeat of the same query ships them by reference,
// resolved from the receiver's store, with identical results.
func TestBlobByRefSecondQuery(t *testing.T) {
	net, client, stores, _ := blobWorld(t)

	first := runBlobQuery(t, client, "q1")
	if len(first) != 2 {
		t.Fatalf("first query: %d results, want 2", len(first))
	}
	refsBefore := client.BlobNetStats().RefsResolved

	second := runBlobQuery(t, client, "q2")
	if len(second) != 2 {
		t.Fatalf("second query: %d results, want 2", len(second))
	}
	for i := range first {
		if first[i].String() != second[i].String() {
			t.Fatalf("result %d diverged between runs:\n %s\n %s",
				i, first[i], second[i])
		}
	}

	// Someone on the result path shipped the repeat freight by reference…
	var byRef uint64
	var bytes int64
	for _, addr := range net.Addrs() {
		st := net.Peer(addr).(*Peer).BlobNetStats()
		byRef += st.ByRefSent
		bytes += st.ByRefBytes
	}
	if byRef == 0 || bytes == 0 {
		t.Fatal("no payload went by reference on the repeated query")
	}
	// …and the client resolved references out of its own store.
	if client.BlobNetStats().RefsResolved <= refsBefore {
		t.Fatal("client resolved no references on the repeated query")
	}
	// No fetch-on-miss was needed in a fault-free world.
	for addr := range stores {
		if st := net.Peer(addr).(*Peer).BlobNetStats(); st.Fetches != 0 || st.FetchFailures != 0 {
			t.Fatalf("%s: unexpected fetches in fault-free run: %+v", addr, st)
		}
	}
	// Dedup at rest: teaching pins the same payload a collection already
	// holds, so somewhere in the world an intern was a hit, not a copy.
	var hits uint64
	for addr, s := range stores {
		st := s.Stats()
		hits += st.Hits
		if st.LogicalBytes < st.Bytes {
			t.Fatalf("%s: logical bytes below resident bytes: %+v", addr, st)
		}
	}
	if hits == 0 {
		t.Fatal("no store deduplicated anything across the two queries")
	}
}

// TestBlobMixedWorld: a store-less client among blob-enabled servers gets
// plain inline traffic and correct results — capability is per-neighbor,
// proven, never assumed.
func TestBlobMixedWorld(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	store := blobstore.New()

	client := mustPeer(t, Config{Addr: "client:9020", Net: net, NS: ns}) // no store
	mustPeer(t, Config{Addr: "M:9020", Net: net, NS: ns, PushSelect: true,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Blobs: store})
	s1 := mustPeer(t, Config{Addr: "s1:9020", Net: net, NS: ns, PushSelect: true,
		Area: pdxCDs, Blobs: blobstore.New()})
	s1.AddCollection(Collection{Name: "cds", PathExp: "/data[id=1]", Area: pdxCDs, Items: items(
		bigSale("Blue Train", 8),
	)})
	if err := s1.RegisterWith("M:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	meta := net.Peer("M:9020").(*Peer)
	meta.Catalog().AddAlias("urn:ForSale:Portland-CDs", namespace.EncodeURN(pdxCDs))
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "M:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"m1", "m2"} {
		got := runBlobQuery(t, client, id)
		if len(got) != 1 || got[0].Value("cd") != "Blue Train" {
			t.Fatalf("query %s: results = %v", id, got)
		}
	}
	// Nothing was ever sent by reference to the store-less client.
	for _, addr := range []string{"M:9020", "s1:9020"} {
		if st := net.Peer(addr).(*Peer).BlobNetStats(); st.ByRefSent != 0 {
			t.Fatalf("%s substituted toward a store-less receiver: %+v", addr, st)
		}
	}
}

// TestBlobFetchOnMiss: a reference the receiver does not hold is repaired
// by a fetch back to the sender — the inline fallback. The taught set is
// seeded directly to simulate a teaching send the receiver lost.
func TestBlobFetchOnMiss(t *testing.T) {
	net, client, stores, _ := blobWorld(t)

	// s2 finishes the plan and ships the result home; convince it the
	// client already holds "Giant Steps" without the client ever seeing it.
	s2 := net.Peer("s2:9020").(*Peer)
	payload := xmltree.MustParse(bigSale("Giant Steps", 9))
	fp, _ := blobstore.Fingerprint(payload)
	s2.blobs.capable["client:9020"] = true
	if s2.blobs.teach("client:9020", fp, payload) {
		t.Fatal("first teach claimed the client already held the payload")
	}
	if !stores["s2:9020"].Contains(fp) {
		t.Fatal("teaching did not pin the payload at the sender")
	}

	got := runBlobQuery(t, client, "miss")
	if len(got) != 2 {
		t.Fatalf("results = %d, want 2", len(got))
	}
	cst := client.BlobNetStats()
	if cst.Fetches != 1 || cst.FetchFailures != 0 {
		t.Fatalf("client fetch counters: %+v", cst)
	}
	if st := s2.BlobNetStats(); st.FetchServed != 1 || st.ByRefSent == 0 {
		t.Fatalf("s2 counters: %+v", st)
	}
	if !stores["client:9020"].Contains(fp) {
		t.Fatal("fetched payload not interned at the receiver")
	}
	if len(client.StuckErrors()) != 0 {
		t.Fatalf("stuck: %v", client.StuckErrors())
	}
}

// TestBlobFetchFailureIsStuckNotWrong: a reference nobody can serve ends
// the plan as an attributable stuck record — never a silently wrong or
// payload-dropping result.
func TestBlobFetchFailureIsStuckNotWrong(t *testing.T) {
	_, client, stores, _ := blobWorld(t)

	orphan := xmltree.MustParse(bigSale("Nowhere Man", 4)).Freeze()
	fp, _ := blobstore.Fingerprint(orphan)
	body := xmltree.MustParse(fmt.Sprintf(
		`<mqp id="orphan" target="client:9020" blobs="1"><plan><display><data><blob fp="%s"/></data></display></plan></mqp>`,
		fp))
	if err := client.Deliver(nil, &simnet.Message{
		From: "s2:9020", To: "client:9020", Kind: KindResult,
		Body: body.Freeze(), At: time.Second,
	}); err == nil {
		t.Fatal("unresolvable result delivered without error")
	}
	if _, ok := client.TakeResult(); ok {
		t.Fatal("a result was recorded despite the missing payload")
	}
	stuck := client.StuckErrors()
	if len(stuck) != 1 || !strings.Contains(stuck[0].Error(), `"orphan"`) {
		t.Fatalf("stuck = %v", stuck)
	}
	// The retry ran before giving up.
	if st := client.BlobNetStats(); st.Fetches != 1 || st.FetchRetries != 1 || st.FetchFailures != 1 {
		t.Fatalf("fetch counters: %+v", st)
	}
	if stores["client:9020"].Contains(fp) {
		t.Fatal("failed fetch interned something")
	}
}

// TestBlobCollectionsDedupAtRest: two peers' snapshots and a replica of the
// same content are one resident copy per store, and replacing a snapshot
// releases its pins.
func TestBlobCollectionsDedupAtRest(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	area := ns.MustParseArea("[USA/OR/Portland, *]")
	store := blobstore.New()
	a := mustPeer(t, Config{Addr: "a:1", Net: net, NS: ns, Area: area, Blobs: store})

	shared := []string{bigSale("Blue Train", 8), bigSale("Giant Steps", 9)}
	a.AddCollection(Collection{Name: "x", PathExp: "/data[id=1]", Area: area, Items: items(shared...)})
	a.AddCollection(Collection{Name: "y", PathExp: "/data[id=2]", Area: area, Items: items(shared...)})
	st := store.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (two distinct payloads across two collections)", st.Entries)
	}
	if st.DedupRatio() != 2 {
		t.Fatalf("dedup ratio = %v, want 2", st.DedupRatio())
	}
	cx, _ := a.Collection("/data[id=1]")
	cy, _ := a.Collection("/data[id=2]")
	for i := range cx.Items {
		if cx.Items[i] != cy.Items[i] {
			t.Fatal("identical snapshots are not aliases")
		}
	}

	// Replacing one snapshot keeps the other's pins alive…
	if err := a.SetItems("/data[id=1]", items(bigSale("Kind of Blue", 15))); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Entries != 3 {
		t.Fatalf("entries after replace = %d, want 3", st.Entries)
	}
	// …and replacing the second releases the shared content for good.
	if err := a.SetItems("/data[id=2]", items(bigSale("Kind of Blue", 15))); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Entries != 1 {
		t.Fatalf("entries after both replaced = %d, want 1", st.Entries)
	}
}

// TestBlobReplicationInterns: ReplicateFrom installs canonical aliases, so
// a replica of data the peer already holds costs no extra residency.
func TestBlobReplicationInterns(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	area := ns.MustParseArea("[USA/OR/Portland, *]")
	srcStore, dstStore := blobstore.New(), blobstore.New()
	src := mustPeer(t, Config{Addr: "src:1", Net: net, NS: ns, Area: area, Blobs: srcStore})
	dst := mustPeer(t, Config{Addr: "dst:1", Net: net, NS: ns, Area: area, Blobs: dstStore})
	_ = src
	items := items(bigSale("Blue Train", 8), bigSale("Giant Steps", 9))
	net.Peer("src:1").(*Peer).AddCollection(Collection{Name: "x", PathExp: "/data[id=1]", Area: area, Items: items})

	if err := dst.ReplicateFrom("src:1", "/data[id=1]", Collection{
		Name: "x", PathExp: "/data[id=1]", Area: area,
	}, 30); err != nil {
		t.Fatal(err)
	}
	if st := dstStore.Stats(); st.Entries != 2 {
		t.Fatalf("replica store entries = %d, want 2", st.Entries)
	}
	// A second refresh dedups against the first snapshot.
	if err := dst.ReplicateFrom("src:1", "/data[id=1]", Collection{
		Name: "x", PathExp: "/data[id=1]", Area: area,
	}, 30); err != nil {
		t.Fatal(err)
	}
	if st := dstStore.Stats(); st.Entries != 2 || st.DedupRatio() <= 1 {
		t.Fatalf("refresh did not dedup: %+v", st)
	}
}

// TestBlobFetchRetryUnderDrops: scheduled-mode request drops hit the
// fetch-on-miss path; the retry (or the terminal stuck record) keeps every
// plan accounted for. The seed is scanned for a run where a fetch was
// dropped and retried successfully — degrading to inline, not to loss.
func TestBlobFetchRetryUnderDrops(t *testing.T) {
	for seed := int64(1); seed <= 64; seed++ {
		net := simnet.New()
		net.UseScheduler(seed)
		net.SetLinkFaults("s2:9020", "client:9020", simnet.Faults{Drop: 0.45})
		ns := testNS()
		pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
		client := mustPeer(t, Config{Addr: "client:9020", Net: net, NS: ns, Blobs: blobstore.New()})
		s2 := mustPeer(t, Config{Addr: "s2:9020", Net: net, NS: ns, PushSelect: true,
			Area: pdxCDs, Blobs: blobstore.New()})
		s2.AddCollection(Collection{Name: "cds", PathExp: "/data[id=2]", Area: pdxCDs,
			Items: items(bigSale("Giant Steps", 9))})

		// Seed a taught fingerprint the client never saw, so the result
		// arrives by reference and must fetch.
		payload := xmltree.MustParse(bigSale("Giant Steps", 9))
		fp, _ := blobstore.Fingerprint(payload)
		s2.blobs.capable["client:9020"] = true
		s2.blobs.teach("client:9020", fp, payload)

		plan := algebra.NewPlan("drop-q", "client:9020",
			algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 10"),
				algebra.URL("s2:9020", "/data[id=2]"))))
		if err := client.Submit("s2:9020", plan); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}

		st := client.BlobNetStats()
		_, delivered := client.TakeResult()
		stuck := len(client.StuckErrors())
		// Accounting invariant under every seed: the plan ended exactly one
		// way (the MQP itself may also be dropped in transit — then neither).
		if delivered && stuck > 0 {
			t.Fatalf("seed %d: both a result and a stuck record", seed)
		}
		if st.Fetches > 0 && !delivered && stuck == 0 {
			t.Fatalf("seed %d: fetch ran but plan vanished", seed)
		}
		if delivered && st.FetchRetries > 0 && st.FetchFailures == 0 {
			// Found the target interleaving: first fetch dropped, retry
			// succeeded, result delivered.
			return
		}
	}
	t.Fatal("no seed in 1..64 produced a dropped-then-retried fetch; widen the scan")
}
