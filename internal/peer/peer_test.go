package peer

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

func testNS() *namespace.Namespace {
	loc := hierarchy.New("Location")
	loc.MustAdd("USA/OR/Portland")
	loc.MustAdd("USA/WA/Seattle")
	merch := hierarchy.New("Merchandise")
	merch.MustAdd("Music/CDs")
	merch.MustAdd("Furniture/Chairs")
	return namespace.MustNew(loc, merch)
}

func items(ss ...string) []*xmltree.Node {
	out := make([]*xmltree.Node, len(ss))
	for i, s := range ss {
		out[i] = xmltree.MustParse(s)
	}
	return out
}

func mustPeer(t *testing.T, cfg Config) *Peer {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// cdWorld wires the paper's running example onto a simnet: client, meta
// server, two sellers, track service.
func cdWorld(t *testing.T) (net *simnet.Network, client *Peer, ns *namespace.Namespace) {
	t.Helper()
	net = simnet.New()
	ns = testNS()
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

	client = mustPeer(t, Config{Addr: "client:9020", Net: net, NS: ns, Key: []byte("kC")})
	meta := mustPeer(t, Config{Addr: "M:9020", Net: net, NS: ns, PushSelect: true, Key: []byte("kM"),
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true})
	s1 := mustPeer(t, Config{Addr: "s1:9020", Net: net, NS: ns, PushSelect: true, Key: []byte("k1"), Area: pdxCDs})
	s2 := mustPeer(t, Config{Addr: "s2:9020", Net: net, NS: ns, PushSelect: true, Key: []byte("k2"), Area: pdxCDs})
	tr := mustPeer(t, Config{Addr: "tracks:9020", Net: net, NS: ns, PushSelect: true, Key: []byte("kT")})

	s1.AddCollection(Collection{Name: "cds", PathExp: "/data[id=1]", Area: pdxCDs, Items: items(
		`<sale><cd>Blue Train</cd><price>8</price></sale>`,
		`<sale><cd>Kind of Blue</cd><price>15</price></sale>`,
	)})
	s2.AddCollection(Collection{Name: "cds", PathExp: "/data[id=2]", Area: pdxCDs, Items: items(
		`<sale><cd>Giant Steps</cd><price>9</price></sale>`,
	)})
	tr.AddCollection(Collection{Name: "listings", PathExp: "/data[id=9]", Items: items(
		`<listing><cd>Blue Train</cd><song>Locomotion</song></listing>`,
		`<listing><cd>Giant Steps</cd><song>Naima</song></listing>`,
		`<listing><cd>Kind of Blue</cd><song>So What</song></listing>`,
	)})

	// Sellers push registrations to the authoritative meta server (§3.3).
	if err := s1.RegisterWith("M:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	if err := s2.RegisterWith("M:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	// The track service is addressed by an opaque URN alias at M.
	meta.Catalog().AddAlias("urn:CD:TrackListings", "http://tracks:9020/data[id=9]")
	// The ForSale URN resolves through the interest-area catalog.
	meta.Catalog().AddAlias("urn:ForSale:Portland-CDs", namespace.EncodeURN(pdxCDs))
	// The client only knows the meta server.
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "M:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}
	return net, client, ns
}

func fig3Plan(target string) *algebra.Plan {
	songs := algebra.Data(items(
		`<song><title>Naima</title></song>`,
		`<song><title>So What</title></song>`,
	)...)
	forSale := algebra.Select(algebra.MustParsePredicate("price < 10"),
		algebra.URN("urn:ForSale:Portland-CDs"))
	cdJoin := algebra.JoinNamed("cd", "cd", "sale", "listing",
		forSale, algebra.URN("urn:CD:TrackListings"))
	songJoin := algebra.JoinNamed("title", "listing/song", "fav", "match", songs, cdJoin)
	p := algebra.NewPlan("fig3", target, algebra.Display(songJoin))
	p.RetainOriginal()
	return p
}

func TestNetworkedCDQuery(t *testing.T) {
	net, client, _ := cdWorld(t)
	plan := fig3Plan("client:9020")
	if err := client.Submit("M:9020", plan); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result delivered")
	}
	got, err := res.Plan.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value("match/sale/cd") != "Giant Steps" {
		t.Fatalf("results = %v", got)
	}
	if res.At <= 0 || res.Hops < 4 {
		t.Fatalf("result metadata: at=%v hops=%d", res.At, res.Hops)
	}
	m := net.Metrics()
	if m.Messages < 5 {
		t.Fatalf("metrics = %+v", m)
	}
	// Provenance shows the full itinerary.
	trail, err := QueryTrail(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range []string{"M:9020", "s1:9020", "s2:9020", "tracks:9020"} {
		if !trail.Visited(srv) {
			t.Fatalf("trail missing %s: %+v", srv, trail.Visits)
		}
	}
}

func TestRegistrationPushAndAreaQuery(t *testing.T) {
	_, client, ns := cdWorld(t)
	// Query by interest-area URN directly (no alias).
	urn := namespace.EncodeURN(ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))
	plan := algebra.NewPlan("area-q", "client:9020",
		algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 10"), algebra.URN(urn))))
	if err := client.Submit("M:9020", plan); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result")
	}
	got, _ := res.Plan.Results()
	if len(got) != 2 { // Blue Train $8 and Giant Steps $9
		t.Fatalf("results = %d", len(got))
	}
}

func TestClientRoutesViaMetaIndex(t *testing.T) {
	// Submitting to the client itself: its catalog has no bases, only the
	// meta-index route, so the plan must travel client → M → sellers.
	_, client, ns := cdWorld(t)
	urn := namespace.EncodeURN(ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))
	plan := algebra.NewPlan("self-q", "client:9020",
		algebra.Display(algebra.Count(algebra.URN(urn))))
	if err := client.Submit("client:9020", plan); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result")
	}
	got, _ := res.Plan.Results()
	if len(got) != 1 || got[0].InnerText() != "3" {
		t.Fatalf("count = %v", got)
	}
}

func TestHarvestPull(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	area := ns.MustParseArea("[USA/OR/Portland, *]")
	base := mustPeer(t, Config{Addr: "b:1", Net: net, NS: ns, Area: area})
	base.AddCollection(Collection{Name: "stuff", PathExp: "/data[id=7]", Area: area,
		Items: items(`<i><v>1</v></i>`)})
	idx := mustPeer(t, Config{Addr: "i:1", Net: net, NS: ns, Area: area})
	if err := idx.Harvest("b:1"); err != nil {
		t.Fatal(err)
	}
	regs := idx.Catalog().Registrations()
	if len(regs) != 1 || regs[0].Addr != "b:1" || len(regs[0].Collections) != 1 {
		t.Fatalf("harvested = %+v", regs)
	}
}

func TestReplicationWithStaleness(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	src := mustPeer(t, Config{Addr: "s:1", Net: net, NS: ns, Area: area})
	src.AddCollection(Collection{Name: "cds", PathExp: "/d", Area: area,
		Items: items(`<sale><cd>A</cd><price>5</price></sale>`)})
	rep := mustPeer(t, Config{Addr: "r:1", Net: net, NS: ns, Area: area})
	if err := rep.ReplicateFrom("s:1", "/d", Collection{Name: "cds", PathExp: "/d", Area: area}, 30); err != nil {
		t.Fatal(err)
	}
	c, ok := rep.Collection("/d")
	if !ok || len(c.Items) != 1 || c.StalenessMin != 30 {
		t.Fatalf("replica = %+v ok=%v", c, ok)
	}
	// Source gains an item; replica is stale until refreshed.
	if err := src.SetItems("/d", items(
		`<sale><cd>A</cd><price>5</price></sale>`,
		`<sale><cd>B</cd><price>6</price></sale>`,
	)); err != nil {
		t.Fatal(err)
	}
	c, _ = rep.Collection("/d")
	if len(c.Items) != 1 {
		t.Fatal("replica must remain stale until re-sync")
	}
	if err := rep.ReplicateFrom("s:1", "/d", Collection{Name: "cds", PathExp: "/d", Area: area}, 30); err != nil {
		t.Fatal(err)
	}
	c, _ = rep.Collection("/d")
	if len(c.Items) != 2 {
		t.Fatal("refresh must pick up new items")
	}
}

func TestStalenessReachesProvenance(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kc")})
	rep := mustPeer(t, Config{Addr: "r:1", Net: net, NS: ns, Area: area, Key: []byte("kr")})
	rep.AddCollection(Collection{Name: "cds", PathExp: "/d", Area: area, StalenessMin: 30,
		Items: items(`<sale><cd>A</cd><price>5</price></sale>`)})
	if err := rep.RegisterWith("c:1", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	urn := namespace.EncodeURN(area)
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.Count(algebra.URN(urn))))
	if err := client.Submit("c:1", plan); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result")
	}
	trail, err := QueryTrail(res)
	if err != nil {
		t.Fatal(err)
	}
	if trail.MaxStaleness() != 30 {
		t.Fatalf("staleness = %d, want 30", trail.MaxStaleness())
	}
}

func TestCategoryServerRole(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	hs := hierarchy.New("Location")
	hs.MustAdd("USA/OR/Portland")
	hs.MustAdd("USA/WA/Seattle")
	catSrv := hierarchy.NewServer(hs)
	server := mustPeer(t, Config{Addr: "cat:1", Net: net, NS: ns, CategoryServer: catSrv})
	_ = server
	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns})
	kids, err := client.SubcategoriesOf("cat:1", "Location", hierarchy.MustParsePath("USA"))
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0].String() != "USA/OR" {
		t.Fatalf("subcats = %v", kids)
	}
	// Non-category peers refuse.
	if _, err := client.SubcategoriesOf("c:1", "Location", hierarchy.Top); err == nil {
		t.Fatal("non-category server must refuse subcats")
	}
}

func TestStuckPlanSurfacesError(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns})
	lonely := mustPeer(t, Config{Addr: "l:1", Net: net, NS: ns})
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.URN("urn:No:Such")))
	err := client.Submit("l:1", plan)
	if err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("want stuck error, got %v", err)
	}
	if len(lonely.StuckErrors()) != 1 {
		t.Fatal("stuck error not recorded")
	}
}

func TestPeerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config must error")
	}
	net := simnet.New()
	if _, err := New(Config{Addr: "a:1", Net: net}); err == nil {
		t.Fatal("missing NS must error")
	}
}

func TestUnknownKinds(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	p := mustPeer(t, Config{Addr: "p:1", Net: net, NS: ns})
	if err := p.Deliver(net, &simnet.Message{Kind: "bogus"}); err == nil {
		t.Fatal("unknown deliver kind must error")
	}
	if _, err := p.Serve(net, &simnet.Message{Kind: "bogus", Body: xmltree.Elem("x")}); err == nil {
		t.Fatal("unknown serve kind must error")
	}
}

func TestFetchUnknownCollection(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	mustPeer(t, Config{Addr: "p:1", Net: net, NS: ns})
	q := mustPeer(t, Config{Addr: "q:1", Net: net, NS: ns})
	if err := q.ReplicateFrom("p:1", "/nope", Collection{Name: "x", PathExp: "/nope", Area: ns.MustParseArea("[USA, *]")}, 0); err == nil {
		t.Fatal("fetch of unknown collection must error")
	}
}

func TestManyPeersManyQueries(t *testing.T) {
	// A slightly larger smoke test: 10 sellers, one meta, 10 queries.
	net := simnet.New()
	ns := testNS()
	pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns})
	meta := mustPeer(t, Config{Addr: "m:1", Net: net, NS: ns, Area: ns.MustParseArea("[USA, *]"), Authoritative: true})
	_ = meta
	for i := 0; i < 10; i++ {
		addr := fmt.Sprintf("s%d:1", i)
		s := mustPeer(t, Config{Addr: addr, Net: net, NS: ns, Area: pdx, PushSelect: true})
		s.AddCollection(Collection{Name: "cds", PathExp: "/d", Area: pdx, Items: items(
			fmt.Sprintf(`<sale><cd>CD%d</cd><price>%d</price></sale>`, i, 5+i),
		)})
		if err := s.RegisterWith("m:1", catalog.RoleBase); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "m:1", Role: catalog.RoleMetaIndex, Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}
	urn := namespace.EncodeURN(pdx)
	for q := 0; q < 10; q++ {
		plan := algebra.NewPlan(fmt.Sprintf("q%d", q), "c:1",
			algebra.Display(algebra.Count(algebra.URN(urn))))
		if err := client.Submit("c:1", plan); err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
	}
	results := client.Results()
	if len(results) != 10 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		got, err := r.Plan.Results()
		if err != nil || got[0].InnerText() != "10" {
			t.Fatalf("count = %v %v", got, err)
		}
	}
}
