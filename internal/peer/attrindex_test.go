package peer

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/simnet"
)

// buildPriceWorld creates a meta server plus two sellers in the same area:
// one sells cheap items, one only expensive items. Sellers publish price
// histograms with their registrations (§3.2 attribute indices).
func buildPriceWorld(t *testing.T, prune bool) (*simnet.Network, *Peer, *namespace.Namespace) {
	t.Helper()
	net := simnet.New()
	ns := testNS()
	pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	meta := mustPeer(t, Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Key: []byte("kM"),
		PruneStats: prune})
	_ = meta
	mk := func(addr string, base int) {
		sp := mustPeer(t, Config{Addr: addr, Net: net, NS: ns, PushSelect: true,
			Area: pdx, Key: []byte(addr), StatsHistPath: "price"})
		var docs []string
		for i := 0; i < 10; i++ {
			docs = append(docs, fmt.Sprintf(`<sale><cd>%s-%d</cd><price>%d</price></sale>`, addr, i, base+i))
		}
		sp.AddCollection(Collection{Name: "cds", PathExp: "/d", Area: pdx, Items: items(docs...)})
		if err := sp.RegisterWith("M:1", catalog.RoleBase); err != nil {
			t.Fatal(err)
		}
	}
	mk("cheap:1", 1)       // prices 1..10
	mk("expensive:1", 500) // prices 500..509
	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kC")})
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "M:1", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}
	return net, client, ns
}

// TestAttributeIndexPruning: with price histograms published, the meta
// server prunes the expensive seller from a cheap-price query, and the plan
// never visits it.
func TestAttributeIndexPruning(t *testing.T) {
	for _, prune := range []bool{false, true} {
		net, client, ns := buildPriceWorld(t, prune)
		pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
		plan := algebra.NewPlan(fmt.Sprintf("q-prune-%v", prune), "c:1",
			algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 20"),
				algebra.URN(namespace.EncodeURN(pdx)))))
		plan.RetainOriginal()
		if err := client.Submit("M:1", plan); err != nil {
			t.Fatal(err)
		}
		res, ok := client.TakeResult()
		if !ok {
			t.Fatal("no result")
		}
		got, err := res.Plan.Results()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 10 {
			t.Fatalf("prune=%v: results = %d, want 10", prune, len(got))
		}
		trail, err := QueryTrail(res)
		if err != nil {
			t.Fatal(err)
		}
		visitedExpensive := trail.Visited("expensive:1")
		if prune && visitedExpensive {
			t.Fatal("pruning enabled: expensive seller must not be visited")
		}
		if !prune && !visitedExpensive {
			t.Fatal("pruning disabled: expensive seller should be visited")
		}
		_ = net
	}
}

// TestAttributeIndexSoundness: pruning must never lose answers — a query
// straddling both ranges visits both sellers even with pruning on.
func TestAttributeIndexSoundness(t *testing.T) {
	_, client, ns := buildPriceWorld(t, true)
	pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	plan := algebra.NewPlan("q-straddle", "c:1",
		algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 505"),
			algebra.URN(namespace.EncodeURN(pdx)))))
	plan.RetainOriginal()
	if err := client.Submit("M:1", plan); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result")
	}
	got, err := res.Plan.Results()
	if err != nil {
		t.Fatal(err)
	}
	// 10 cheap + 5 expensive (500..504).
	if len(got) != 15 {
		t.Fatalf("results = %d, want 15", len(got))
	}
}

// TestRegistrationCarriesHistogram: the wire form of a registration includes
// the published attribute index and survives the round trip.
func TestRegistrationCarriesHistogram(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	sp := mustPeer(t, Config{Addr: "s:1", Net: net, NS: ns, Area: pdx,
		StatsHistPath: "price", StatsKeyPaths: []string{"cd"}})
	sp.AddCollection(Collection{Name: "cds", PathExp: "/d", Area: pdx, Items: items(
		`<sale><cd>A</cd><price>5</price></sale>`,
		`<sale><cd>B</cd><price>15</price></sale>`,
	)})
	reg := sp.Registration(catalog.RoleBase)
	if len(reg.Collections) != 1 {
		t.Fatalf("collections = %d", len(reg.Collections))
	}
	ann := reg.Collections[0].Annotations
	if ann[algebra.AnnotCard] != "2" {
		t.Fatalf("card annotation = %q", ann[algebra.AnnotCard])
	}
	if ann[algebra.AnnotHistogram] == "" || ann[algebra.AnnotDistinct] == "" {
		t.Fatalf("annotations = %v", ann)
	}
	back, err := catalog.UnmarshalRegistration(ns, catalog.MarshalRegistration(reg))
	if err != nil {
		t.Fatal(err)
	}
	if back.Collections[0].Annotations[algebra.AnnotHistogram] != ann[algebra.AnnotHistogram] {
		t.Fatal("histogram lost in XML round trip")
	}
}
