package peer

import (
	"strings"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/simnet"
)

// locationHierarchy builds the Location tree used by the delegation tests.
func locationHierarchy() *hierarchy.Hierarchy {
	h := hierarchy.New("Location")
	for _, p := range []string{
		"USA/OR/Portland", "USA/OR/Eugene", "USA/WA/Seattle", "France/IDF/Paris",
	} {
		h.MustAdd(p)
	}
	return h
}

// TestCategoryDelegationChase: the root category server delegates the USA
// subtree to a second server; a client query about USA/OR is transparently
// referred and answered (§3.5: "category servers can delegate portions of
// the namespace they manage to other category servers, much like the way
// DNS servers can delegate sub-domains").
func TestCategoryDelegationChase(t *testing.T) {
	net := simnet.New()
	ns := testNS()

	rootH := locationHierarchy()
	rootSrv := hierarchy.NewServer(rootH)
	if err := rootSrv.Delegate("Location", hierarchy.MustParsePath("USA"), "cat-usa:1"); err != nil {
		t.Fatal(err)
	}
	mustPeer(t, Config{Addr: "cat-root:1", Net: net, NS: ns, CategoryServer: rootSrv})

	usaSrv := hierarchy.NewServer(locationHierarchy())
	mustPeer(t, Config{Addr: "cat-usa:1", Net: net, NS: ns, CategoryServer: usaSrv})

	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns})

	// Asking the root about USA/OR follows the referral to cat-usa.
	kids, err := client.SubcategoriesOf("cat-root:1", "Location", hierarchy.MustParsePath("USA/OR"))
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0].String() != "USA/OR/Eugene" || kids[1].String() != "USA/OR/Portland" {
		t.Fatalf("kids = %v", kids)
	}
	// Non-delegated parts are answered by the root itself.
	kids, err = client.SubcategoriesOf("cat-root:1", "Location", hierarchy.MustParsePath("France"))
	if err != nil || len(kids) != 1 || kids[0].String() != "France/IDF" {
		t.Fatalf("France kids = %v, %v", kids, err)
	}
	// Requests count both hops of the chase.
	if net.Metrics().Requests < 3 {
		t.Fatalf("metrics = %+v", net.Metrics())
	}
}

// TestCategoryDelegationLoopDetected: mutually delegating servers are
// reported, not chased forever.
func TestCategoryDelegationLoopDetected(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	mk := func(addr, delegateTo string) {
		srv := hierarchy.NewServer(locationHierarchy())
		if err := srv.Delegate("Location", hierarchy.MustParsePath("USA"), delegateTo); err != nil {
			t.Fatal(err)
		}
		mustPeer(t, Config{Addr: addr, Net: net, NS: ns, CategoryServer: srv})
	}
	mk("catA:1", "catB:1")
	mk("catB:1", "catA:1")
	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns})
	_, err := client.SubcategoriesOf("catA:1", "Location", hierarchy.MustParsePath("USA/OR"))
	if err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("want delegation loop error, got %v", err)
	}
}

// TestCategoryDelegationToDeadServer: a referral to an unreachable server
// surfaces as an error rather than a wrong answer.
func TestCategoryDelegationToDeadServer(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	srv := hierarchy.NewServer(locationHierarchy())
	if err := srv.Delegate("Location", hierarchy.MustParsePath("USA"), "ghost:1"); err != nil {
		t.Fatal(err)
	}
	mustPeer(t, Config{Addr: "cat:1", Net: net, NS: ns, CategoryServer: srv})
	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns})
	if _, err := client.SubcategoriesOf("cat:1", "Location", hierarchy.MustParsePath("USA")); err == nil {
		t.Fatal("dead delegate must error")
	}
}
