package peer

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/provenance"
	"repro/internal/simnet"
)

// The two livelock worlds the chaos harness surfaced (ROADMAP "known
// liveness warts"), rebuilt by hand. Before the routing layer grew
// visited-server memory, both bounced plans until the forwarding-depth
// guard tripped and reported them as StuckErrors; now one terminates as an
// explicit partial result and the other completes outright.

// TestEmptyAreaPingPongReturnsPartial: a plan for an area nobody covers
// bounces between an authoritative-but-ignorant meta and an authoritative
// index — the meta's authoritative-empty bind is blocked because an
// overlapping index always exists, and vice versa. With visited-server
// memory, the second server sees that forwarding back is pure ping-pong
// (the plan has not mutated since the meta saw it) and returns an explicit
// empty partial result instead.
func TestEmptyAreaPingPongReturnsPartial(t *testing.T) {
	net := simnet.New()
	net.SetMaxDepth(40)
	ns := testNS()
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

	client := mustPeer(t, Config{Addr: "client:9020", Net: net, NS: ns, Key: []byte("kC")})
	meta := mustPeer(t, Config{Addr: "M:9020", Net: net, NS: ns, Key: []byte("kM"),
		Area: ns.MustParseArea("[*, *]"), Authoritative: true})
	idx := mustPeer(t, Config{Addr: "idx:9020", Net: net, NS: ns, Key: []byte("kI"),
		Area: ns.MustParseArea("[USA/OR, *]"), Authoritative: true})
	if err := idx.RegisterWith("M:9020", catalog.RoleIndex); err != nil {
		t.Fatal(err)
	}
	// A seller exists under the index, but for different merchandise than
	// the query asks about — the index is authoritative yet ignorant of the
	// queried cell, and the meta always sees the overlapping index.
	seller := mustPeer(t, Config{Addr: "s1:9020", Net: net, NS: ns, Area: pdxCDs})
	seller.AddCollection(Collection{Name: "cds", PathExp: "/data[id=1]", Area: pdxCDs, Items: items(
		`<sale><cd>Blue Train</cd><price>8</price></sale>`)})
	if err := seller.RegisterWith("idx:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}

	empty := namespace.EncodeURN(ns.MustParseArea("[USA/OR/Portland, Furniture/Chairs]"))
	plan := algebra.NewPlan("pingpong-q", "client:9020", algebra.Display(algebra.URN(empty)))
	if err := client.Submit("M:9020", plan); err != nil {
		t.Fatalf("submit: %v (the former livelock surfaced as a depth-guard error)", err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result delivered")
	}
	if !res.Partial {
		t.Fatalf("want an explicit partial result, got a full one: %s", res.Plan.Root)
	}
	items, err := res.Plan.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("partial result for an empty area must be empty, got %d items", len(items))
	}
	if res.Hops > 4 {
		t.Fatalf("partial result took %d hops; the ping-pong should die on the first bounce", res.Hops)
	}
	for _, p := range []*Peer{client, meta, idx, seller} {
		if errs := p.StuckErrors(); len(errs) != 0 {
			t.Fatalf("peer %s recorded stuck errors: %v", p.Addr(), errs)
		}
	}
	// The partial still carries its provenance, and the plan-side routing
	// memory is consistent with the signed trail.
	trail, err := QueryTrail(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(trail.Visits) == 0 {
		t.Fatal("partial result lost its provenance trail")
	}
	if missing := provenance.UncoveredVisits(res.Plan, trail); len(missing) != 0 {
		t.Fatalf("visited memory names servers missing from the trail: %v", missing)
	}
}

// TestDualDeclineCompletes: two forward-only sellers whose policies both
// decline materializing their oversized collections used to bounce a plan
// between each other forever. Visited-server memory breaks the loop: when
// every hop is exhausted, the router forces the last stop to materialize
// its declined local work (§5.1 — declining is only legitimate while the
// plan can still travel), and the query completes with the full answer.
func TestDualDeclineCompletes(t *testing.T) {
	net := simnet.New()
	net.SetMaxDepth(40)
	ns := testNS()
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

	decline := mqp.ForwardOnlyPolicy{DefaultPolicy: mqp.DefaultPolicy{MaxReduceCard: 1}}
	client := mustPeer(t, Config{Addr: "client:9020", Net: net, NS: ns})
	a := mustPeer(t, Config{Addr: "a:9020", Net: net, NS: ns, Area: pdxCDs, Policy: decline,
		StatsHistPath: "price"})
	b := mustPeer(t, Config{Addr: "b:9020", Net: net, NS: ns, Area: pdxCDs, Policy: decline,
		StatsHistPath: "price"})
	a.AddCollection(Collection{Name: "cds", PathExp: "/data[id=1]", Area: pdxCDs, Items: items(
		`<sale><cd>Blue Train</cd><price>8</price></sale>`,
		`<sale><cd>Kind of Blue</cd><price>15</price></sale>`)})
	b.AddCollection(Collection{Name: "cds", PathExp: "/data[id=2]", Area: pdxCDs, Items: items(
		`<sale><cd>Giant Steps</cd><price>9</price></sale>`,
		`<sale><cd>My Favorite Things</cd><price>12</price></sale>`)})

	plan := algebra.NewPlan("decline-q", "client:9020", algebra.Display(
		algebra.Select(algebra.MustParsePredicate("price < 100"), algebra.Union(
			algebra.URL("a:9020", "/data[id=1]"),
			algebra.URL("b:9020", "/data[id=2]")))))
	if err := client.Submit("a:9020", plan); err != nil {
		t.Fatalf("submit: %v (the former livelock surfaced as a depth-guard error)", err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result delivered")
	}
	if res.Partial {
		t.Fatalf("dual-decline must complete via last-stop materialization, got a partial: %s", res.Plan.Root)
	}
	got, err := res.Plan.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("want all 4 items, got %d: %s", len(got), res.Plan.Root)
	}
	for _, p := range []*Peer{client, a, b} {
		if errs := p.StuckErrors(); len(errs) != 0 {
			t.Fatalf("peer %s recorded stuck errors: %v", p.Addr(), errs)
		}
	}
}
