package peer

import (
	"testing"

	"repro/internal/simnet"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// TestCatalogItemsServedFrozenWithoutClone pins the catalog snapshot fix:
// installing a collection freezes its items, and every fetch reply aliases
// them instead of cloning per request.
func TestCatalogItemsServedFrozenWithoutClone(t *testing.T) {
	net := simnet.New()
	ns := workload.GarageSaleNamespace()
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	src, err := New(Config{Addr: "s:1", Net: net, NS: ns, Area: area})
	if err != nil {
		t.Fatal(err)
	}
	docs := []*xmltree.Node{
		xmltree.MustParse(`<item><cd>A</cd></item>`),
		xmltree.MustParse(`<item><cd>B</cd></item>`),
	}
	src.AddCollection(Collection{Name: "cds", PathExp: "/d", Area: area, Items: docs})
	for _, d := range docs {
		if !d.Frozen() {
			t.Fatal("AddCollection must freeze items")
		}
	}

	req := xmltree.Elem("fetch")
	req.SetAttr("path", "/d")
	reply1, err := src.Serve(net, &simnet.Message{From: "c:1", To: "s:1", Kind: KindFetch, Body: req})
	if err != nil {
		t.Fatal(err)
	}
	reply2, err := src.Serve(net, &simnet.Message{From: "c:1", To: "s:1", Kind: KindFetch, Body: req})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range reply1.Elements() {
		if e != docs[i] {
			t.Fatal("fetch reply must alias the frozen collection items")
		}
		if reply2.Elements()[i] != docs[i] {
			t.Fatal("second fetch reply must alias the same items")
		}
	}
}

// TestReplicateSharesFrozenItems: replication over the simulated network
// ends with the replica aliasing the source's frozen items — the §4.3
// snapshot costs pointers, not copies.
func TestReplicateSharesFrozenItems(t *testing.T) {
	net := simnet.New()
	ns := workload.GarageSaleNamespace()
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	mk := func(addr string) *Peer {
		p, err := New(Config{Addr: addr, Net: net, NS: ns, Area: area})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	src, rep := mk("s:1"), mk("r:1")
	docs := []*xmltree.Node{xmltree.MustParse(`<item><cd>A</cd></item>`)}
	src.AddCollection(Collection{Name: "cds", PathExp: "/d", Area: area, Items: docs})
	if err := rep.ReplicateFrom("s:1", "/d", Collection{Name: "cds", PathExp: "/d", Area: area}, 30); err != nil {
		t.Fatal(err)
	}
	got, ok := rep.Collection("/d")
	if !ok || len(got.Items) != 1 {
		t.Fatalf("replica missing items: %v %d", ok, len(got.Items))
	}
	if got.Items[0] != docs[0] {
		t.Fatal("replica must alias the source's frozen items")
	}
	if got.StalenessMin != 30 {
		t.Fatalf("staleness = %d", got.StalenessMin)
	}
}
