package peer

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/simnet"
)

// runtimeWorld builds the smallest concurrent-runtime topology: one
// authoritative server that is its own index (the loadgen shape) and a bare
// client that receives results. The server's worker/queue/timeout knobs come
// from cfg; everything else is fixed.
func runtimeWorld(t *testing.T, cfg Config) (client, srv *Peer) {
	t.Helper()
	net := simnet.New()
	ns := testNS()
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

	cfg.Addr = "srv:9020"
	cfg.Net = net
	cfg.NS = ns
	cfg.Area = area
	cfg.Authoritative = true
	cfg.PushSelect = true
	srv = mustPeer(t, cfg)
	srv.AddCollection(Collection{Name: "cds", PathExp: "/data[id=1]", Area: area, Items: items(
		`<sale><cd>Blue Train</cd><price>8</price></sale>`,
		`<sale><cd>Kind of Blue</cd><price>15</price></sale>`,
		`<sale><cd>Giant Steps</cd><price>9</price></sale>`,
	)})
	if err := srv.RegisterWith("srv:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	srv.Catalog().AddAlias("urn:RT:CDs", namespace.EncodeURN(area))

	client = mustPeer(t, Config{Addr: "client:9020", Net: net, NS: ns})
	return client, srv
}

func rtPlan(id string) *algebra.Plan {
	sel := algebra.Select(algebra.MustParsePredicate("price < 10"),
		algebra.URN("urn:RT:CDs"))
	return algebra.NewPlan(id, "client:9020", algebra.Display(sel))
}

// waitResults polls until the client holds n results or the deadline hits.
func waitResults(t *testing.T, client *Peer, n int) []Result {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rs := client.Results()
		if len(rs) >= n {
			return rs
		}
		if time.Now().After(deadline) {
			t.Fatalf("results = %d, want %d", len(rs), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWorkerPoolDelivery drives a worker-pool server from concurrent
// submitters: every plan must come back as a complete (non-partial) result
// with the same answer synchronous processing gives. The queue is sized to
// hold the whole burst — whether shedding kicks in at the default depth is
// a scheduling race (the workers may drain arbitrarily slowly, e.g. under
// -race); admission control has its own test below.
func TestWorkerPoolDelivery(t *testing.T) {
	client, srv := runtimeWorld(t, Config{Workers: 4, QueueDepth: 128, PlanCacheSize: 16})
	defer srv.Close()

	const submitters, plansEach = 4, 16
	var wg sync.WaitGroup
	wg.Add(submitters)
	for s := 0; s < submitters; s++ {
		go func(s int) {
			defer wg.Done()
			for i := 0; i < plansEach; i++ {
				if err := client.Submit("srv:9020", rtPlan(fmt.Sprintf("wp%d-%d", s, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	rs := waitResults(t, client, submitters*plansEach)
	for _, r := range rs {
		if r.Partial {
			t.Fatalf("plan %s: partial (reason %q)", r.Plan.ID, r.Plan.PartialReason())
		}
		docs, err := r.Plan.Results()
		if err != nil {
			t.Fatal(err)
		}
		if len(docs) != 2 {
			t.Fatalf("plan %s: %d results, want 2", r.Plan.ID, len(docs))
		}
	}
	if errs := srv.StuckErrors(); len(errs) != 0 {
		t.Fatalf("stuck errors: %v", errs)
	}
}

// TestAdmissionControlSheds fills the frame queue with no workers draining
// it (a runtime wired by hand), so the admission decision is deterministic:
// the queued plan waits, the overflow plan comes back immediately as a
// partial annotated "admission", and closing the runtime drains the queue
// into "shutdown" partials. No plan vanishes.
func TestAdmissionControlSheds(t *testing.T) {
	client, srv := runtimeWorld(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	srv.rt = &runtime{p: srv, queue: make(chan *simnet.Message, 1), ctx: ctx, cancel: cancel}

	if err := client.Submit("srv:9020", rtPlan("adm1")); err != nil {
		t.Fatal(err)
	}
	if got := len(client.Results()); got != 0 {
		t.Fatalf("queued plan answered early: %d results", got)
	}
	if err := client.Submit("srv:9020", rtPlan("adm2")); err != nil {
		t.Fatal(err)
	}
	rs := client.Results()
	if len(rs) != 1 || !rs[0].Partial || rs[0].Plan.PartialReason() != "admission" {
		t.Fatalf("overflow result = %+v", rs)
	}
	if rs[0].Plan.ID != "adm2" {
		t.Fatalf("shed the wrong plan: %s", rs[0].Plan.ID)
	}
	if got := srv.rt.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	// Close drains the queue: the waiting plan is rejected, not dropped.
	srv.Close()
	rs = waitResults(t, client, 2)
	if rs[1].Plan.ID != "adm1" || rs[1].Plan.PartialReason() != "shutdown" {
		t.Fatalf("drained result = %s (reason %q)", rs[1].Plan.ID, rs[1].Plan.PartialReason())
	}

	// After shutdown, new arrivals are rejected at the door.
	if err := client.Submit("srv:9020", rtPlan("adm3")); err != nil {
		t.Fatal(err)
	}
	rs = waitResults(t, client, 3)
	if rs[2].Plan.PartialReason() != "shutdown" {
		t.Fatalf("post-close reason = %q, want shutdown", rs[2].Plan.PartialReason())
	}
}

// TestStepTimeoutCancels runs the worker pool with an already-expired step
// budget: the plan must come back as an explicit partial annotated
// "canceled", not hang and not vanish.
func TestStepTimeoutCancels(t *testing.T) {
	client, srv := runtimeWorld(t, Config{Workers: 1, StepTimeout: time.Nanosecond})
	defer srv.Close()

	if err := client.Submit("srv:9020", rtPlan("to1")); err != nil {
		t.Fatal(err)
	}
	rs := waitResults(t, client, 1)
	if !rs[0].Partial || rs[0].Plan.PartialReason() != "canceled" {
		t.Fatalf("result = partial=%v reason=%q, want canceled partial",
			rs[0].Partial, rs[0].Plan.PartialReason())
	}
}

func TestSubmitCtxRejectsCanceled(t *testing.T) {
	client, srv := runtimeWorld(t, Config{})
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := client.SubmitCtx(ctx, "srv:9020", rtPlan("ctx1"))
	if err == nil {
		t.Fatal("submit with canceled context succeeded")
	}
	if got := len(client.Results()); got != 0 {
		t.Fatalf("canceled submission produced %d results", got)
	}
}

// TestResultSnapshotsAreDefensive checks the satellite contract: Results
// returns the caller's own slice, and TakeResult re-allocates the backing
// array, so a held snapshot never observes later pops or appends.
func TestResultSnapshotsAreDefensive(t *testing.T) {
	client, srv := runtimeWorld(t, Config{})
	defer srv.Close()

	for i := 0; i < 3; i++ {
		if err := client.Submit("srv:9020", rtPlan(fmt.Sprintf("snap%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := client.Results()
	if len(snap) != 3 {
		t.Fatalf("results = %d, want 3", len(snap))
	}

	taken, ok := client.TakeResult()
	if !ok || taken.Plan.ID != "snap0" {
		t.Fatalf("take = %+v, %v", taken, ok)
	}
	if len(snap) != 3 || snap[0].Plan.ID != "snap0" {
		t.Fatalf("snapshot mutated by TakeResult: %+v", snap)
	}
	if got := client.Results(); len(got) != 2 || got[0].Plan.ID != "snap1" {
		t.Fatalf("after take: %d results, first %s", len(got), got[0].Plan.ID)
	}

	// A new result appended after the pop must not leak into the snapshot's
	// backing array.
	if err := client.Submit("srv:9020", rtPlan("snap3")); err != nil {
		t.Fatal(err)
	}
	if snap[1].Plan.ID != "snap1" || snap[2].Plan.ID != "snap2" {
		t.Fatalf("snapshot aliased later append: %+v", snap)
	}
}
