package peer

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/simnet"
)

// TestFallbackRoutingSurvivesDownIndex: the client knows two index servers
// covering the same area; the preferred one is down, and the plan must
// complete via the fallback (§1: failure of a single server does not
// disable the system).
func TestFallbackRoutingSurvivesDownIndex(t *testing.T) {
	net, _, ns := cdWorld(t)
	// A second meta server with the same knowledge as M.
	meta2 := mustPeer(t, Config{Addr: "M2:9020", Net: net, NS: ns, PushSelect: true,
		Key: []byte("kM2"), Area: ns.MustParseArea("[USA, *]"), Authoritative: true})
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	for _, s := range []string{"s1:9020", "s2:9020"} {
		sp, _ := net.Peer(s).(*Peer)
		if sp == nil {
			t.Fatalf("peer %s missing", s)
		}
		if err := sp.RegisterWith("M2:9020", catalog.RoleBase); err != nil {
			t.Fatal(err)
		}
	}
	_ = meta2

	// A fresh client that knows both meta servers, in preference order.
	client := mustPeer(t, Config{Addr: "client2:9020", Net: net, NS: ns, Key: []byte("kC2")})
	for _, m := range []string{"M:9020", "M2:9020"} {
		if err := client.Catalog().Register(catalog.Registration{
			Addr: m, Role: catalog.RoleMetaIndex,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the preferred meta server.
	net.SetDown("M:9020", true)
	plan := algebra.NewPlan("fallback-q", "client2:9020",
		algebra.Display(algebra.Count(algebra.URN(namespace.EncodeURN(pdxCDs)))))
	if err := client.Submit("client2:9020", plan); err != nil {
		t.Fatalf("query with down meta should fall back: %v", err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result")
	}
	got, err := res.Plan.Results()
	if err != nil || got[0].InnerText() != "3" {
		t.Fatalf("count = %v %v", got, err)
	}
	// The trail must show M2, not M.
	trail, err := QueryTrail(res)
	if err != nil {
		t.Fatal(err)
	}
	if trail.Visited("M:9020") || !trail.Visited("M2:9020") {
		t.Fatalf("trail = %+v", trail.Visits)
	}
}

// TestAllHopsDownSurfacesError: when every candidate is unreachable the
// submitter learns about it.
func TestAllHopsDownSurfacesError(t *testing.T) {
	net, client, ns := cdWorld(t)
	net.SetDown("M:9020", true)
	plan := algebra.NewPlan("q", "client:9020",
		algebra.Display(algebra.Count(algebra.URN(namespace.EncodeURN(
			ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))))))
	if err := client.Submit("client:9020", plan); err == nil {
		t.Fatal("expected error when the only route is down")
	}
}

// TestUndeliverableResultSurfacesAsStuck: a plan whose answer exists but
// whose owner is unreachable must not vanish — the finishing peer records it
// in StuckErrors with the plan id, the attribution the chaos harness's
// no-silent-loss invariant relies on.
func TestUndeliverableResultSurfacesAsStuck(t *testing.T) {
	net, client, ns := cdWorld(t)
	net.SetDown("client:9020", true)
	plan := algebra.NewPlan("orphan-q", "client:9020",
		algebra.Display(algebra.Count(algebra.URN(namespace.EncodeURN(
			ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))))))
	// Submit from the meta server's side: the client being down must not
	// stop the query from being evaluated, only the result delivery.
	err := net.Send(&simnet.Message{From: "x", To: "M:9020", Kind: KindMQP, Body: algebra.Marshal(plan)})
	if err == nil {
		t.Fatal("expected the undeliverable result to propagate an error")
	}
	stuck := false
	for _, p := range []string{"M:9020", "s1:9020", "s2:9020"} {
		sp, _ := net.Peer(p).(*Peer)
		for _, serr := range sp.StuckErrors() {
			if strings.Contains(serr.Error(), `"orphan-q"`) {
				stuck = true
			}
		}
	}
	if !stuck {
		t.Fatal("undeliverable result not recorded in any StuckErrors")
	}
	_ = client
}

// TestRemainderChainAcrossStates: a two-cell area spanning two authoritative
// index servers is answered completely by remainder chaining.
func TestRemainderChainAcrossStates(t *testing.T) {
	net, _, ns := cdWorld(t)
	// Build two state index servers with their own base servers.
	orArea := ns.MustParseArea("[USA/OR, *]")
	waArea := ns.MustParseArea("[USA/WA, *]")
	idxOR := mustPeer(t, Config{Addr: "idxOR:1", Net: net, NS: ns, PushSelect: true,
		Area: orArea, Authoritative: true, Key: []byte("kOR")})
	idxWA := mustPeer(t, Config{Addr: "idxWA:1", Net: net, NS: ns, PushSelect: true,
		Area: waArea, Authoritative: true, Key: []byte("kWA")})
	_ = idxWA

	mkBase := func(addr, areaStr string, n int) {
		area := ns.MustParseArea(areaStr)
		b := mustPeer(t, Config{Addr: addr, Net: net, NS: ns, PushSelect: true, Area: area, Key: []byte(addr)})
		var docs []string
		for i := 0; i < n; i++ {
			docs = append(docs, fmt.Sprintf(`<item><n>%s-%d</n></item>`, addr, i))
		}
		b.AddCollection(Collection{Name: "c", PathExp: "/d", Area: area, Items: items(docs...)})
		var idx string
		if area.Overlaps(orArea) {
			idx = "idxOR:1"
		} else {
			idx = "idxWA:1"
		}
		if err := b.RegisterWith(idx, catalog.RoleBase); err != nil {
			t.Fatal(err)
		}
	}
	mkBase("or1:1", "[USA/OR/Portland, Furniture/Chairs]", 3)
	mkBase("wa1:1", "[USA/WA/Seattle, Furniture/Chairs]", 4)

	// Both index servers know each other via a shared meta.
	shared := mustPeer(t, Config{Addr: "shared-meta:1", Net: net, NS: ns, PushSelect: true,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Key: []byte("kSM")})
	_ = shared
	for _, idx := range []*Peer{idxOR, idxWA} {
		if err := idx.RegisterWith("shared-meta:1", catalog.RoleIndex); err != nil {
			t.Fatal(err)
		}
		if err := idx.Catalog().Register(catalog.Registration{
			Addr: "shared-meta:1", Role: catalog.RoleMetaIndex,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
		}); err != nil {
			t.Fatal(err)
		}
	}

	client := mustPeer(t, Config{Addr: "c2:1", Net: net, NS: ns, Key: []byte("kc2")})
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "shared-meta:1", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}

	area := ns.MustParseArea("[USA/OR/Portland, Furniture/Chairs] + [USA/WA/Seattle, Furniture/Chairs]")
	plan := algebra.NewPlan("span-q", "c2:1",
		algebra.Display(algebra.Count(algebra.URN(namespace.EncodeURN(area)))))
	plan.RetainOriginal()
	if err := client.Submit("c2:1", plan); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result")
	}
	got, err := res.Plan.Results()
	if err != nil {
		t.Fatal(err)
	}
	if got[0].InnerText() != "7" {
		t.Fatalf("count = %s, want 7 (3 Oregon + 4 Washington)", got[0].InnerText())
	}
	trail, err := QueryTrail(res)
	if err != nil {
		t.Fatal(err)
	}
	if !trail.Visited("or1:1") || !trail.Visited("wa1:1") {
		t.Fatalf("both base servers must contribute: %+v", trail.Visits)
	}
}
