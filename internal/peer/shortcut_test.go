package peer

import (
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/simnet"
)

// shortcutWorld: client → meta → idx → seller, with the client configured to
// learn routing shortcuts from the provenance trails its results carry.
func shortcutWorld(t *testing.T, ccfg Config) (client *Peer, ns *namespace.Namespace) {
	t.Helper()
	net := simnet.New()
	ns = testNS()
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

	ccfg.Addr, ccfg.Net, ccfg.NS = "client:9020", net, ns
	if ccfg.Key == nil {
		ccfg.Key = []byte("kC")
	}
	client = mustPeer(t, ccfg)
	mustPeer(t, Config{Addr: "M:9020", Net: net, NS: ns, Key: []byte("kM"),
		Area: ns.MustParseArea("[*, *]"), Authoritative: true})
	idx := mustPeer(t, Config{Addr: "idx:9020", Net: net, NS: ns, Key: []byte("kI"),
		Area: ns.MustParseArea("[USA/OR, *]")})
	if err := idx.RegisterWith("M:9020", catalog.RoleIndex); err != nil {
		t.Fatal(err)
	}
	s1 := mustPeer(t, Config{Addr: "s1:9020", Net: net, NS: ns, Key: []byte("k1"), Area: pdxCDs})
	s1.AddCollection(Collection{Name: "cds", PathExp: "/data[id=1]", Area: pdxCDs, Items: items(
		`<sale><cd>Blue Train</cd><price>8</price></sale>`,
	)})
	if err := s1.RegisterWith("idx:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "M:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}
	return client, ns
}

func areaQuery(id string, ns *namespace.Namespace) *algebra.Plan {
	urn := namespace.EncodeURN(ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))
	return algebra.NewPlan(id, "client:9020", algebra.Display(
		algebra.Select(algebra.MustParsePredicate("price < 100"), algebra.URN(urn))))
}

// TestPeerMinesShortcutsAndAbsorbs: a learning client distills (area →
// server) edges from the trails of its own results; once an edge is
// confirmed AbsorbThreshold times it becomes a real index registration in
// the client's catalog — the meta-index update the learning feeds.
func TestPeerMinesShortcutsAndAbsorbs(t *testing.T) {
	client, ns := shortcutWorld(t, Config{LearnShortcuts: true, AbsorbThreshold: 2})
	urn := namespace.EncodeURN(ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))

	if client.Shortcuts() == nil {
		t.Fatal("LearnShortcuts peer has no shortcut table")
	}
	if err := client.Submit("M:9020", areaQuery("sq-1", ns)); err != nil {
		t.Fatal(err)
	}
	if _, ok := client.TakeResult(); !ok {
		t.Fatal("no result delivered")
	}
	st := client.Shortcuts().Stats()
	if st.Learned == 0 || st.Entries == 0 {
		t.Fatalf("nothing mined from the trail: %+v", st)
	}
	gen := client.Catalog().Generation()
	got := client.Shortcuts().Lookup(urn, gen, time.Minute)
	found := false
	for _, s := range got {
		if s == "idx:9020" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lookup(%s) = %v, want the binding index idx:9020", urn, got)
	}
	// One confirmation is below the threshold: no catalog mutation yet.
	for _, r := range client.Catalog().Registrations() {
		if r.Addr == "idx:9020" {
			t.Fatalf("shortcut absorbed below threshold: %+v", r)
		}
	}

	// The second confirmation crosses the threshold and is absorbed.
	if err := client.Submit("M:9020", areaQuery("sq-2", ns)); err != nil {
		t.Fatal(err)
	}
	if _, ok := client.TakeResult(); !ok {
		t.Fatal("no result delivered")
	}
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	absorbed := false
	for _, r := range client.Catalog().Registrations() {
		if r.Addr == "idx:9020" && r.Role == catalog.RoleIndex && r.Area.Covers(area) {
			absorbed = true
		}
	}
	if !absorbed {
		t.Fatalf("confirmed shortcut not absorbed into the catalog: %+v",
			client.Catalog().Registrations())
	}
}

// TestMiningRejectsUnverifiableTrail: with a keyring configured, a trail
// that fails HMAC verification teaches nothing — learned routing cannot be
// poisoned by servers whose records don't verify.
func TestMiningRejectsUnverifiableTrail(t *testing.T) {
	client, ns := shortcutWorld(t, Config{LearnShortcuts: true,
		Keyring: func(server string) []byte { return []byte("not-the-signing-key") }})
	if err := client.Submit("M:9020", areaQuery("bad-1", ns)); err != nil {
		t.Fatal(err)
	}
	if _, ok := client.TakeResult(); !ok {
		t.Fatal("no result delivered")
	}
	if st := client.Shortcuts().Stats(); st.Learned != 0 || st.Entries != 0 {
		t.Fatalf("unverifiable trail was mined anyway: %+v", st)
	}
}

// TestDeregisterFromInvalidatesShortcutsAndCatalog: a graceful leave drops
// the leaver's registrations at the server AND invalidates learned shortcuts
// pointing at it — the leave path must not leave the learned tier routing
// into a hole.
func TestDeregisterFromInvalidatesShortcutsAndCatalog(t *testing.T) {
	net := simnet.New()
	ns := testNS()
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	idx := mustPeer(t, Config{Addr: "idx:9020", Net: net, NS: ns, Key: []byte("kI"),
		Area: ns.MustParseArea("[USA/OR, *]"), LearnShortcuts: true})
	s1 := mustPeer(t, Config{Addr: "s1:9020", Net: net, NS: ns, Key: []byte("k1"), Area: pdxCDs})
	s1.AddCollection(Collection{Name: "cds", PathExp: "/d", Area: pdxCDs,
		Items: items(`<sale><cd>x</cd><price>1</price></sale>`)})
	if err := s1.RegisterWith("idx:9020", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	urn := namespace.EncodeURN(pdxCDs)
	idx.Shortcuts().Learn(urn, "s1:9020", idx.Catalog().Generation(), 0)

	if err := s1.DeregisterFrom("idx:9020", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, r := range idx.Catalog().Registrations() {
		if r.Addr == "s1:9020" {
			t.Fatalf("deregistered peer still in the catalog: %+v", r)
		}
	}
	if got := idx.Shortcuts().Lookup(urn, idx.Catalog().Generation(), time.Millisecond); got != nil {
		t.Fatalf("shortcut to the departed peer survived the leave: %v", got)
	}
	// The leaver also forgot the server as a cached index.
	for _, r := range s1.Catalog().Registrations() {
		if r.Addr == "idx:9020" {
			t.Fatalf("leaver still routes via the left server: %+v", r)
		}
	}
}

// TestSupersedeInvalidatesShortcuts: when a promoted replica re-registers
// with Supersedes=<dead source>, learned shortcuts pointing at the dead
// source are invalidated in the same delivery that swaps the registration.
func TestSupersedeInvalidatesShortcuts(t *testing.T) {
	net, ns, src, rep := replicaWorld(t)
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	if err := rep.ReplicateFrom("src:1", "/d", Collection{Name: "cds", PathExp: "/d", Area: area}, 45); err != nil {
		t.Fatal(err)
	}
	meta := mustPeer(t, Config{Addr: "M:1", Net: net, NS: ns, Key: []byte("kM"),
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true, LearnShortcuts: true})
	if err := src.RegisterWith("M:1", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	urn := namespace.EncodeURN(area)
	meta.Shortcuts().Learn(urn, "src:1", meta.Catalog().Generation(), 0)

	if err := rep.Promote("/d", "src:1", "M:1", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := meta.Shortcuts().Lookup(urn, meta.Catalog().Generation(), time.Millisecond); got != nil {
		t.Fatalf("shortcut to the superseded source survived promotion: %v", got)
	}
	if st := meta.Shortcuts().Stats(); st.Invalidated == 0 {
		t.Fatalf("supersede did not count an invalidation: %+v", st)
	}
}
