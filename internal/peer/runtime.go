package peer

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
)

// runtime is the peer's concurrent delivery engine: a bounded frame queue
// feeding a fixed pool of workers, each running plan steps through the
// shared (stateless) mqp.Processor.
//
// Admission control is reject-not-wait: when the queue is full, the plan is
// immediately answered with a partial result annotated "admission" instead
// of blocking the sender or growing an unbounded backlog. Overload degrades
// into explicit partial answers — the same contract routing exhaustion
// already has — so the system-wide invariant "every submitted plan ends as
// a result, a partial, or a stuck record" survives load shedding.
type runtime struct {
	p      *Peer
	queue  chan *simnet.Message
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// timeout bounds one plan step; 0 means unbounded.
	timeout time.Duration
	// rejected counts admission-control rejections (not shutdown drains).
	rejected atomic.Int64
	// closeOnce makes Close idempotent.
	closeOnce sync.Once
}

func newRuntime(p *Peer, workers, depth int, timeout time.Duration) *runtime {
	if depth <= 0 {
		depth = 4 * workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := &runtime{
		p:       p,
		queue:   make(chan *simnet.Message, depth),
		ctx:     ctx,
		cancel:  cancel,
		timeout: timeout,
	}
	rt.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go rt.worker()
	}
	return rt
}

// enqueue admits a delivered plan to the frame queue, or sheds it.
func (rt *runtime) enqueue(msg *simnet.Message) error {
	if rt.ctx.Err() != nil {
		return rt.p.rejectMQP(msg, "shutdown")
	}
	select {
	case rt.queue <- msg:
		return nil
	default:
		rt.rejected.Add(1)
		return rt.p.rejectMQP(msg, "admission")
	}
}

func (rt *runtime) worker() {
	defer rt.wg.Done()
	for {
		select {
		case <-rt.ctx.Done():
			return
		case msg := <-rt.queue:
			rt.process(msg)
		}
	}
}

// process runs one queued plan under the runtime's lifecycle context plus
// the optional per-step timeout.
func (rt *runtime) process(msg *simnet.Message) {
	ctx := rt.ctx
	if rt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.timeout)
		defer cancel()
	}
	if err := rt.p.processMQP(ctx, msg); err != nil {
		// Inline delivery returns errors to the sender's Deliver call; a
		// worker has no caller, so terminal failures are recorded here.
		// noteStuck dedupes, so paths that already recorded stay recorded
		// once.
		rt.p.noteStuck(err)
	}
}

// close stops admission, waits for in-flight steps, then rejects whatever
// is still queued so no plan vanishes.
func (rt *runtime) close() {
	rt.closeOnce.Do(func() {
		rt.cancel()
		rt.wg.Wait()
		for {
			select {
			case msg := <-rt.queue:
				rt.p.rejectMQP(msg, "shutdown")
			default:
				return
			}
		}
	})
}
