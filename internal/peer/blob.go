package peer

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/blobstore"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

// Payload-by-reference: the peer-side runtime of the content-addressed
// payload store (internal/blobstore).
//
// A blob-enabled peer marks every body it sends with algebra.BlobsAttr, so
// its neighbors learn the capability from ordinary traffic — registrations,
// fetch requests and replies, plans, results. Once a neighbor has proven
// capable, the peer substitutes payload documents it has already exchanged
// inline with that neighbor (the per-neighbor "taught" set) with <blob fp>
// references, and resolves incoming references against its own store. A
// reference that misses — the teaching send was dropped, the store was
// restarted — is repaired by a fetch-on-miss request back to the sender,
// whose reply carries the payload inline: the optimization degrades to
// inline shipping, never to a wrong answer. Every fingerprint a peer has
// taught stays pinned in its own store precisely so that fetch is always
// servable.
//
// Refcount ownership (see blobstore): each container below owns one
// reference per fingerprint it holds and releases it on eviction —
//   - the per-neighbor taught sets (bounded FIFO per neighbor),
//   - the wire-taught FIFO of payloads interned off received bodies
//     (bounded, shared across neighbors),
//   - the collection store (one reference per installed item, released
//     when a snapshot is replaced; see AddCollection/SetItems).
// The prepared-plan cache deliberately owns nothing: its freight is
// canonicalized with Canonicalize, so cache eviction needs no bookkeeping.

// blobMinBytes is the smallest canonical payload worth teaching or
// substituting: below it a 33-byte reference plus the risk of a fetch round
// trip saves nothing.
const blobMinBytes = 128

// blobMaxTaughtPerPeer bounds each per-neighbor taught set; the oldest
// teaching is forgotten (and its pin released) first.
const blobMaxTaughtPerPeer = 1024

// blobMaxWireTaught bounds the wire-taught FIFO of payloads interned off
// received bodies.
const blobMaxWireTaught = 4096

// BlobNetStats counts a peer's payload-by-reference wire activity.
type BlobNetStats struct {
	// ByRefSent counts payload references substituted into outgoing
	// bodies; ByRefBytes is the canonical bytes they replaced.
	ByRefSent  uint64
	ByRefBytes int64
	// RefsResolved counts incoming references answered by the local store.
	RefsResolved uint64
	// Fetches counts fetch-on-miss requests issued; FetchRetries the
	// second attempts; FetchFailures the fetches that failed even after
	// the retry (the plan is then stuck, attributably).
	Fetches, FetchRetries, FetchFailures uint64
	// FetchServed counts fetch requests this peer answered from its store.
	FetchServed uint64
	// Taught counts fingerprints pinned into per-neighbor taught sets.
	Taught uint64
	// Probes counts capability probes issued to neighbors of unknown
	// capability.
	Probes uint64
}

// taughtSet is the fingerprints one neighbor provably exchanged inline with
// this peer, FIFO-bounded. Each member holds one store reference.
type taughtSet struct {
	set  map[blobstore.FP]bool
	fifo []blobstore.FP
}

// blobFetch is one in-flight fetch-on-miss, single-flighted per
// fingerprint: concurrent resolvers of the same missing payload share one
// request. Waiters charge no virtual time (they did not issue it).
type blobFetch struct {
	done chan struct{}
	node *xmltree.Node
	err  error
}

// blobState is a peer's payload-by-reference runtime, nil unless
// Config.Blobs is set.
type blobState struct {
	store *blobstore.Store

	mu       sync.Mutex
	capable  map[string]bool
	probed   map[string]bool
	taught   map[string]*taughtSet
	wireSet  map[blobstore.FP]bool
	wireFIFO []blobstore.FP
	collFPs  map[string][]blobstore.FP
	fetching map[blobstore.FP]*blobFetch
	stats    BlobNetStats
}

func newBlobState(store *blobstore.Store) *blobState {
	return &blobState{
		store:    store,
		capable:  map[string]bool{},
		probed:   map[string]bool{},
		taught:   map[string]*taughtSet{},
		wireSet:  map[blobstore.FP]bool{},
		collFPs:  map[string][]blobstore.FP{},
		fetching: map[blobstore.FP]*blobFetch{},
	}
}

// NetStats snapshots the peer's payload-by-reference counters; zero when
// the store is disabled.
func (p *Peer) BlobNetStats() BlobNetStats {
	if p.blobs == nil {
		return BlobNetStats{}
	}
	p.blobs.mu.Lock()
	defer p.blobs.mu.Unlock()
	return p.blobs.stats
}

// BlobStore returns the peer's payload store, nil when disabled.
func (p *Peer) BlobStore() *blobstore.Store {
	if p.blobs == nil {
		return nil
	}
	return p.blobs.store
}

// blobMark marks an outgoing non-plan body (registration, fetch request or
// reply, …) with the capability attribute, teaching the receiver that this
// peer speaks payload-by-reference. Returns the body for call-site chaining.
func (p *Peer) blobMark(body *xmltree.Node) *xmltree.Node {
	if p.blobs != nil {
		body.SetAttr(algebra.BlobsAttr, "1")
	}
	return body
}

// blobLearn records addr as blob-capable when a body it sent is marked.
func (p *Peer) blobLearn(addr string, body *xmltree.Node) {
	if p.blobs == nil || body == nil || !algebra.Marked(body) {
		return
	}
	p.blobs.mu.Lock()
	p.blobs.capable[addr] = true
	p.blobs.mu.Unlock()
}

// blobEncode rewrites a freshly marshaled staging body bound for `to`:
// payload documents the receiver provably holds become <blob> references,
// and the body is marked as blob-capable (unless a payload is ambiguous
// with the reference shape, in which case SubstituteBlobs leaves the whole
// body inline and unmarked). The body is mutated in place; it must be this
// peer's own staging tree, straight out of Marshal. at is the sender's
// virtual time, used for the one-time capability probe.
func (p *Peer) blobEncode(body *xmltree.Node, to string, at time.Duration) *xmltree.Node {
	if p.blobs == nil {
		return body
	}
	p.blobs.encode(p, body, to, at)
	return body
}

// ensureCapable reports whether `to` is known blob-capable, probing once
// when unknown: message flow is largely one-directional (client → meta →
// sellers → client), so a sender often never receives traffic from the
// neighbor it ships payloads to and cannot learn its capability passively.
// The probe is a payload-less fetch request; a marked reply proves the
// extension, any failure (legacy peer, unreachable) caches inline-only for
// this run — later marked traffic from the neighbor still upgrades it. The
// probe's round trip is not charged to any plan: it is one-time, per
// neighbor, capability metadata rather than plan work.
func (b *blobState) ensureCapable(p *Peer, to string, at time.Duration) bool {
	b.mu.Lock()
	if b.capable[to] {
		b.mu.Unlock()
		return true
	}
	if b.probed[to] {
		b.mu.Unlock()
		return false
	}
	b.probed[to] = true
	b.stats.Probes++
	b.mu.Unlock()
	req := xmltree.Elem("blobfetch")
	req.SetAttr("probe", "1")
	req.SetAttr(algebra.BlobsAttr, "1")
	reply, _, err := p.net.Request(p.addr, to, KindBlobFetch, req, at)
	if err != nil || !algebra.Marked(reply) {
		return false
	}
	b.mu.Lock()
	b.capable[to] = true
	b.mu.Unlock()
	return true
}

func (b *blobState) encode(p *Peer, body *xmltree.Node, to string, at time.Duration) {
	// Capability is checked lazily, on the first payload worth
	// substituting: payload-free bodies never probe.
	checked, capable := false, false
	algebra.SubstituteBlobs(body, func(doc *xmltree.Node) (string, bool) {
		fp, size := blobstore.Fingerprint(doc)
		if size < blobMinBytes {
			return "", false
		}
		if !checked {
			checked, capable = true, b.ensureCapable(p, to, at)
		}
		if !capable {
			return "", false
		}
		if !b.teach(to, fp, doc) {
			// First exchange of these bytes with `to`: ship inline, so the
			// receiver can intern them. Next time they go by reference.
			return "", false
		}
		b.mu.Lock()
		b.stats.ByRefSent++
		b.stats.ByRefBytes += int64(size)
		b.mu.Unlock()
		return fp.String(), true
	})
}

// teach records that `to` is about to hold doc's bytes (we are sending them
// inline, or just received them from `to`). It reports whether the
// fingerprint was already taught — i.e. whether the receiver provably holds
// it and a reference may be sent instead. A newly taught fingerprint is
// pinned in this peer's own store so a later fetch-on-miss is always
// servable.
func (b *blobState) teach(to string, fp blobstore.FP, doc *xmltree.Node) bool {
	b.mu.Lock()
	ts := b.taught[to]
	if ts == nil {
		ts = &taughtSet{set: map[blobstore.FP]bool{}}
		b.taught[to] = ts
	}
	if ts.set[fp] {
		b.mu.Unlock()
		return true
	}
	b.mu.Unlock()
	// Pin outside the state lock: Intern takes the store's own lock.
	b.store.Intern(doc)
	b.mu.Lock()
	if ts.set[fp] { // raced with another sender teaching the same bytes
		b.mu.Unlock()
		b.store.Release(fp)
		return true
	}
	ts.set[fp] = true
	ts.fifo = append(ts.fifo, fp)
	b.stats.Taught++
	var evict blobstore.FP
	evicted := false
	if len(ts.fifo) > blobMaxTaughtPerPeer {
		evict, evicted = ts.fifo[0], true
		ts.fifo = ts.fifo[1:]
		delete(ts.set, evict)
	}
	b.mu.Unlock()
	if evicted {
		b.store.Release(evict)
	}
	return false
}

// internWire interns a payload received inline from `from` into the store,
// pinned by the wire-taught FIFO, and records it as taught toward `from`
// (both ends now hold the bytes, so either may reference them). Returns the
// canonical alias.
func (b *blobState) internWire(from string, doc *xmltree.Node) *xmltree.Node {
	canon, fp := b.store.Intern(doc)
	b.mu.Lock()
	if b.wireSet[fp] {
		b.mu.Unlock()
		b.store.Release(fp) // the FIFO already owns its pin
	} else {
		b.wireSet[fp] = true
		b.wireFIFO = append(b.wireFIFO, fp)
		var evict blobstore.FP
		evicted := false
		if len(b.wireFIFO) > blobMaxWireTaught {
			evict, evicted = b.wireFIFO[0], true
			b.wireFIFO = b.wireFIFO[1:]
			delete(b.wireSet, evict)
		}
		b.mu.Unlock()
		if evicted {
			b.store.Release(evict)
		}
	}
	if b.store.Retain(fp) { // the taught set's own pin
		b.mu.Lock()
		ts := b.taught[from]
		if ts == nil {
			ts = &taughtSet{set: map[blobstore.FP]bool{}}
			b.taught[from] = ts
		}
		if ts.set[fp] {
			b.mu.Unlock()
			b.store.Release(fp)
		} else {
			ts.set[fp] = true
			ts.fifo = append(ts.fifo, fp)
			b.stats.Taught++
			var evict blobstore.FP
			evicted := false
			if len(ts.fifo) > blobMaxTaughtPerPeer {
				evict, evicted = ts.fifo[0], true
				ts.fifo = ts.fifo[1:]
				delete(ts.set, evict)
			}
			b.mu.Unlock()
			if evicted {
				b.store.Release(evict)
			}
		}
	}
	return canon
}

// blobDecode resolves a received plan/result body: learns the sender's
// capability, replaces <blob> references with payloads from the store
// (fetching misses back from the sender), and interns inline payloads so
// repeated freight collapses to one resident copy. The returned delay is
// the virtual time fetch-on-miss round trips cost, to be charged to the
// plan's clock. Unmarked bodies (or a peer without a store) pass through
// untouched.
func (p *Peer) blobDecode(msg *simnet.Message) (*xmltree.Node, time.Duration, error) {
	if p.blobs == nil || !algebra.Marked(msg.Body) {
		return msg.Body, 0, nil
	}
	b := p.blobs
	b.mu.Lock()
	b.capable[msg.From] = true
	b.mu.Unlock()
	var delay time.Duration
	resolved, err := algebra.ResolveBlobs(msg.Body,
		func(fpStr string) (*xmltree.Node, error) {
			fp, ok := blobstore.ParseFP(fpStr)
			if !ok {
				return nil, fmt.Errorf("malformed fingerprint %q", fpStr)
			}
			if n, ok := b.store.Get(fp); ok {
				b.mu.Lock()
				b.stats.RefsResolved++
				b.mu.Unlock()
				return n, nil
			}
			n, d, err := b.fetchMissing(p, msg.From, fp, msg.At+delay)
			delay += d
			return n, err
		},
		func(doc *xmltree.Node) *xmltree.Node {
			if _, size := blobstore.Fingerprint(doc); size < blobMinBytes {
				return doc
			}
			return b.internWire(msg.From, doc)
		})
	if err != nil {
		return nil, delay, err
	}
	return resolved, delay, nil
}

// fetchMissing pulls a missing payload from the peer that referenced it —
// the inline fallback of the by-reference path. One request, one retry;
// requests for the same fingerprint are single-flighted. The fetched
// payload is interned like any inline receipt. Returns the virtual time the
// round trip(s) cost.
func (b *blobState) fetchMissing(p *Peer, from string, fp blobstore.FP, at time.Duration) (*xmltree.Node, time.Duration, error) {
	b.mu.Lock()
	if c := b.fetching[fp]; c != nil {
		b.mu.Unlock()
		<-c.done
		return c.node, 0, c.err
	}
	c := &blobFetch{done: make(chan struct{})}
	b.fetching[fp] = c
	b.stats.Fetches++
	b.mu.Unlock()

	req := xmltree.Elem("blobfetch")
	req.SetAttr("fp", fp.String())
	req.SetAttr(algebra.BlobsAttr, "1")
	var delay time.Duration
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			b.mu.Lock()
			b.stats.FetchRetries++
			b.mu.Unlock()
		}
		reply, rat, err := p.net.Request(p.addr, from, KindBlobFetch, req, at+delay)
		if rat > at+delay {
			// Virtual time passed either way: a dropped request still burned
			// its timeout before the retry could go out.
			delay = rat - at
		}
		if err == nil {
			els := reply.Elements()
			if len(els) == 0 {
				lastErr = fmt.Errorf("empty fetch reply")
				continue
			}
			c.node = b.internWire(from, els[0].Freeze())
			break
		}
		lastErr = err
	}
	if c.node == nil {
		b.mu.Lock()
		b.stats.FetchFailures++
		b.mu.Unlock()
		c.err = fmt.Errorf("blob %s fetch from %s failed after retry: %w", fp, from, lastErr)
	}
	close(c.done)
	b.mu.Lock()
	delete(b.fetching, fp)
	b.mu.Unlock()
	return c.node, delay, c.err
}

// serveBlobFetch answers a fetch-on-miss request from the store. A miss is
// an error — by the teaching discipline this peer pins everything it has
// referenced, so a miss means the requester was taught by someone else (or
// the reference was forged) and the requester's retry/failure path owns the
// outcome.
func (p *Peer) serveBlobFetch(req *simnet.Message) (*xmltree.Node, error) {
	if p.blobs == nil {
		return nil, fmt.Errorf("peer %s: no payload store", p.addr)
	}
	if req.Body.AttrDefault("probe", "") != "" {
		// Capability probe: the marked empty reply is the proof.
		return p.blobMark(xmltree.Elem("blobdata")), nil
	}
	fpStr := req.Body.AttrDefault("fp", "")
	fp, ok := blobstore.ParseFP(fpStr)
	if !ok {
		return nil, fmt.Errorf("peer %s: malformed blob fingerprint %q", p.addr, fpStr)
	}
	n, ok := p.blobs.store.Get(fp)
	if !ok {
		return nil, fmt.Errorf("peer %s: blob %s not resident", p.addr, fpStr)
	}
	p.blobs.mu.Lock()
	p.blobs.stats.FetchServed++
	p.blobs.mu.Unlock()
	reply := p.blobMark(xmltree.Elem("blobdata"))
	reply.Add(n.Share())
	return reply, nil
}

// internCollection interns a collection snapshot's items, returning the
// canonical aliases to install. The store reference per item is owned by
// the collection slot: replacing a snapshot releases the previous one.
func (b *blobState) internCollection(pathExp string, items []*xmltree.Node) []*xmltree.Node {
	canon := make([]*xmltree.Node, len(items))
	fps := make([]blobstore.FP, len(items))
	for i, it := range items {
		canon[i], fps[i] = b.store.Intern(it)
	}
	b.mu.Lock()
	old := b.collFPs[pathExp]
	b.collFPs[pathExp] = fps
	b.mu.Unlock()
	for _, fp := range old {
		b.store.Release(fp)
	}
	return canon
}
