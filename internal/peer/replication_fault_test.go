package peer

import (
	"errors"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/simnet"
)

// These tests pin the §4.3 delayed-replication model under injected faults:
// a replica survives its source's failure and keeps serving within its
// staleness bound; a failed refresh never clobbers the snapshot it could
// not replace; and a restarted source refreshes cleanly.

func replicaWorld(t *testing.T) (*simnet.Network, *namespace.Namespace, *Peer, *Peer) {
	t.Helper()
	net := simnet.New()
	ns := testNS()
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	src := mustPeer(t, Config{Addr: "src:1", Net: net, NS: ns, Area: area, Key: []byte("kS")})
	src.AddCollection(Collection{Name: "cds", PathExp: "/d", Area: area, Items: items(
		`<sale><cd>v1-a</cd><price>5</price></sale>`,
		`<sale><cd>v1-b</cd><price>9</price></sale>`,
	)})
	rep := mustPeer(t, Config{Addr: "rep:1", Net: net, NS: ns, Area: area, Key: []byte("kR")})
	return net, ns, src, rep
}

// TestReplicateSourceDownMidReplication: replication from a crashed source
// fails loudly, and — critically — a failed refresh leaves the previous
// snapshot intact instead of half-replacing it.
func TestReplicateSourceDownMidReplication(t *testing.T) {
	net, ns, _, rep := replicaWorld(t)
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	coll := Collection{Name: "cds", PathExp: "/d", Area: area}

	// First snapshot succeeds.
	if err := rep.ReplicateFrom("src:1", "/d", coll, 45); err != nil {
		t.Fatal(err)
	}
	got, ok := rep.Collection("/d")
	if !ok || len(got.Items) != 2 || got.StalenessMin != 45 {
		t.Fatalf("replica = %+v", got)
	}

	// Source crashes; the refresh attempt surfaces the failure.
	net.SetDown("src:1", true)
	err := rep.ReplicateFrom("src:1", "/d", coll, 45)
	var ue simnet.ErrUnreachable
	if !errors.As(err, &ue) || ue.Addr != "src:1" {
		t.Fatalf("refresh from crashed source = %v, want ErrUnreachable", err)
	}
	// The stale-but-valid snapshot is untouched.
	got, ok = rep.Collection("/d")
	if !ok || len(got.Items) != 2 || got.StalenessMin != 45 {
		t.Fatalf("failed refresh damaged the replica: %+v", got)
	}
}

// TestReplicateRequestLostInTransit: the same guarantee when the fetch is
// lost by fault injection rather than refused at connect time.
func TestReplicateRequestLostInTransit(t *testing.T) {
	net, ns, _, rep := replicaWorld(t)
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	coll := Collection{Name: "cds", PathExp: "/d", Area: area}
	if err := rep.ReplicateFrom("src:1", "/d", coll, 30); err != nil {
		t.Fatal(err)
	}
	net.UseScheduler(1)
	net.SetLinkFaults("rep:1", "src:1", simnet.Faults{Drop: 1})
	err := rep.ReplicateFrom("src:1", "/d", coll, 30)
	var ue simnet.ErrUnreachable
	if !errors.As(err, &ue) {
		t.Fatalf("dropped replication fetch = %v, want ErrUnreachable", err)
	}
	if got, ok := rep.Collection("/d"); !ok || len(got.Items) != 2 {
		t.Fatalf("lost refresh damaged the replica: %+v", got)
	}
}

// TestStaleReplicaServesDuringSourceOutage: with the source down, queries
// routed at the replica still answer, and the answer carries the replica's
// staleness bound through annotations and the provenance trail — the §4.3
// contract that a delayed replica is explicit about how stale it may be.
func TestStaleReplicaServesDuringSourceOutage(t *testing.T) {
	net, ns, _, rep := replicaWorld(t)
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	if err := rep.ReplicateFrom("src:1", "/d", Collection{Name: "cds", PathExp: "/d", Area: area}, 45); err != nil {
		t.Fatal(err)
	}

	// Only the replica registers with the meta server: it is the advertised
	// holder of the collection while the source is origin-only.
	meta := mustPeer(t, Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true, Key: []byte("kM"),
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true})
	_ = meta
	if err := rep.RegisterWith("M:1", catalog.RoleBase); err != nil {
		t.Fatal(err)
	}
	client := mustPeer(t, Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kC")})
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "M:1", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}

	// Kill the source; the replica must carry the query alone.
	net.SetDown("src:1", true)
	plan := algebra.NewPlan("stale-q", "c:1", algebra.Display(
		algebra.Select(algebra.MustParsePredicate("price < 100"),
			algebra.URN(namespace.EncodeURN(area)))))
	if err := client.Submit("M:1", plan); err != nil {
		t.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		t.Fatal("no result with source down")
	}
	docs, err := res.Plan.Results()
	if err != nil || len(docs) != 2 {
		t.Fatalf("results = %v, %v", docs, err)
	}
	trail, err := QueryTrail(res)
	if err != nil {
		t.Fatal(err)
	}
	if trail.MaxStaleness() != 45 {
		t.Fatalf("trail staleness = %d, want the replica's 45", trail.MaxStaleness())
	}
}

// TestReplicaRefreshAfterRestart: once the source restarts (with new data),
// a refresh replaces the snapshot and the staleness bound, and subsequent
// answers reflect both.
func TestReplicaRefreshAfterRestart(t *testing.T) {
	net, ns, src, rep := replicaWorld(t)
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	coll := Collection{Name: "cds", PathExp: "/d", Area: area}
	if err := rep.ReplicateFrom("src:1", "/d", coll, 45); err != nil {
		t.Fatal(err)
	}

	// Crash, then restart with updated data (a restart that lost recent
	// writes would look the same to the replica: it copies what is served).
	net.SetDown("src:1", true)
	if err := rep.ReplicateFrom("src:1", "/d", coll, 45); err == nil {
		t.Fatal("refresh must fail while the source is down")
	}
	net.SetDown("src:1", false)
	if err := src.SetItems("/d", items(
		`<sale><cd>v2-a</cd><price>7</price></sale>`,
	)); err != nil {
		t.Fatal(err)
	}
	if err := rep.ReplicateFrom("src:1", "/d", coll, 5); err != nil {
		t.Fatalf("refresh after restart: %v", err)
	}
	got, ok := rep.Collection("/d")
	if !ok || len(got.Items) != 1 || got.StalenessMin != 5 {
		t.Fatalf("refreshed replica = %+v", got)
	}
	if got.Items[0].Value("cd") != "v2-a" {
		t.Fatalf("refreshed snapshot still serves old data: %s", got.Items[0])
	}
}

// TestHarvestUnderFaults: the §3.3 pull process fails loudly against a down
// or unreachable base server, leaves the catalog unchanged, and succeeds
// after a restart.
func TestHarvestUnderFaults(t *testing.T) {
	net, ns, _, _ := replicaWorld(t)
	idx := mustPeer(t, Config{Addr: "idx:1", Net: net, NS: ns, Key: []byte("kI"),
		Area: ns.MustParseArea("[USA, *]")})

	net.SetDown("src:1", true)
	before := len(idx.Catalog().Registrations())
	if err := idx.Harvest("src:1"); err == nil {
		t.Fatal("harvest from a down source must error")
	}
	if got := len(idx.Catalog().Registrations()); got != before {
		t.Fatalf("failed harvest changed the catalog: %d -> %d", before, got)
	}

	net.SetDown("src:1", false)
	if err := idx.Harvest("src:1"); err != nil {
		t.Fatalf("harvest after restart: %v", err)
	}
	regs := idx.Catalog().Registrations()
	found := false
	for _, r := range regs {
		if r.Addr == "src:1" && len(r.Collections) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("harvest did not register the restarted source: %+v", regs)
	}
}
