package simnet

import (
	"testing"
	"time"

	"repro/internal/xmltree"
)

// TestLinkPricingReuse: the first frame on an ordered pair pays connection
// setup, reuse pays the frame header only, and the reverse direction is its
// own link.
func TestLinkPricingReuse(t *testing.T) {
	n := New()
	a := &echoPeer{addr: "a:1"}
	b := &echoPeer{addr: "b:1"}
	n.Add(a)
	n.Add(b)
	body := xmltree.MustParse(`<hello/>`)
	sz := int64(frameOverhead + body.ByteSize())

	send := func(from, to string) {
		t.Helper()
		if err := n.Send(&Message{From: from, To: to, Kind: "mqp", Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	send("a:1", "b:1")
	m := n.Metrics()
	if m.LinksOpened != 1 || m.Bytes != linkSetupOverhead+sz {
		t.Fatalf("first frame: links=%d bytes=%d, want 1 link and %d bytes",
			m.LinksOpened, m.Bytes, linkSetupOverhead+sz)
	}
	send("a:1", "b:1")
	m = n.Metrics()
	if m.LinksOpened != 1 || m.Bytes != linkSetupOverhead+2*sz {
		t.Fatalf("reused link: links=%d bytes=%d, want 1 link and %d bytes",
			m.LinksOpened, m.Bytes, linkSetupOverhead+2*sz)
	}
	send("b:1", "a:1") // reverse direction is a distinct link
	if m = n.Metrics(); m.LinksOpened != 2 {
		t.Fatalf("reverse direction reused forward link: links=%d", m.LinksOpened)
	}
}

// TestLinkPricingReplyRidesRequestConnection: a request opens a link; its
// reply must not open (or pay for) a reverse one.
func TestLinkPricingReplyRidesRequestConnection(t *testing.T) {
	n := New()
	n.Add(&echoPeer{addr: "a:1"})
	n.Add(&echoPeer{addr: "b:1"})
	body := xmltree.MustParse(`<q/>`)
	if _, _, err := n.Request("a:1", "b:1", "fetch", body, 0); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.LinksOpened != 1 {
		t.Fatalf("request+reply opened %d links, want 1", m.LinksOpened)
	}
	want := int64(linkSetupOverhead + 2*(frameOverhead+body.ByteSize()))
	if m.Bytes != want {
		t.Fatalf("bytes = %d, want %d (one setup, two frames)", m.Bytes, want)
	}
}

// TestLinkPricingSeveredByCrashAndDown: a crash or SetDown severs the peer's
// links in both directions; traffic after recovery pays setup again.
func TestLinkPricingSeveredByCrashAndDown(t *testing.T) {
	n := New()
	a := &echoPeer{addr: "a:1"}
	b := &echoPeer{addr: "b:1"}
	n.Add(a)
	n.Add(b)
	body := xmltree.MustParse(`<hello/>`)

	if err := n.Send(&Message{From: "a:1", To: "b:1", Kind: "mqp", Body: body}); err != nil {
		t.Fatal(err)
	}
	n.SetDown("b:1", true)
	n.SetDown("b:1", false)
	if err := n.Send(&Message{From: "a:1", To: "b:1", Kind: "mqp", Body: body}); err != nil {
		t.Fatal(err)
	}
	if m := n.Metrics(); m.LinksOpened != 2 {
		t.Fatalf("links after down/up = %d, want 2 (redial after recovery)", m.LinksOpened)
	}

	// Scheduled crash: the control event severs links at its virtual time.
	n2 := New()
	n2.UseScheduler(1)
	c := &echoPeer{addr: "c:1"}
	d := &echoPeer{addr: "d:1"}
	n2.Add(c)
	n2.Add(d)
	if err := n2.Send(&Message{From: "c:1", To: "d:1", Kind: "mqp", Body: body, At: 0}); err != nil {
		t.Fatal(err)
	}
	n2.ScheduleCrash("d:1", 200*time.Millisecond, 300*time.Millisecond)
	if _, err := n2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n2.Send(&Message{From: "c:1", To: "d:1", Kind: "mqp", Body: body, At: 400 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Run(); err != nil {
		t.Fatal(err)
	}
	if m := n2.Metrics(); m.LinksOpened != 2 {
		t.Fatalf("links across crash window = %d, want 2", m.LinksOpened)
	}
}

// TestLinkPricingResetMetrics: resetting the counters also forgets open
// links, so each measured run prices its own establishment.
func TestLinkPricingResetMetrics(t *testing.T) {
	n := New()
	n.Add(&echoPeer{addr: "a:1"})
	n.Add(&echoPeer{addr: "b:1"})
	body := xmltree.MustParse(`<hello/>`)
	if err := n.Send(&Message{From: "a:1", To: "b:1", Kind: "mqp", Body: body}); err != nil {
		t.Fatal(err)
	}
	n.ResetMetrics()
	if err := n.Send(&Message{From: "a:1", To: "b:1", Kind: "mqp", Body: body}); err != nil {
		t.Fatal(err)
	}
	if m := n.Metrics(); m.LinksOpened != 1 {
		t.Fatalf("links after reset = %d, want 1 (setup re-priced)", m.LinksOpened)
	}
}
