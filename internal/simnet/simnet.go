// Package simnet is the network substrate the experiments run on: an
// in-process message-passing network with deterministic per-link latency, a
// virtual clock carried on messages, and byte/message accounting.
//
// The paper's prototype ran over real sockets; the quantities its arguments
// turn on — messages sent, bytes shipped, hops taken, end-to-end latency —
// are exactly what simnet measures, deterministically and at laptop scale.
// Delivery is synchronous (a Send invokes the destination handler inline),
// which makes experiments reproducible; virtual time advances by the link
// latency plus a configurable per-hop processing delay, so "latency" in
// experiment output is simulated wall-clock, not host time.
package simnet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/xmltree"
)

// Message is one unit of communication. Body is an XML document (plans,
// registrations, catalog queries). At is the virtual time of delivery.
type Message struct {
	From, To string
	Kind     string
	Body     *xmltree.Node
	At       time.Duration
	// Hops counts how many links the enclosing activity has traversed;
	// forwarding handlers propagate and increment it.
	Hops int
}

// Peer is a network participant. Deliver handles one-way messages (e.g. an
// MQP in flight, a registration). Serve handles request/response calls
// (catalog lookups, data fetches) and returns the reply body.
//
// Ownership: message and reply bodies pass by reference, not by value — a
// receiver must never mutate a body it was handed. It may, however, freeze
// subtrees (xmltree.Freeze) and alias them into structures it keeps: the
// sender has already relinquished the document by sending it.
type Peer interface {
	// Addr returns the peer's stable network address.
	Addr() string
	// Deliver processes a one-way message; it may send further messages.
	Deliver(net *Network, msg *Message) error
	// Serve processes a request and returns the reply body.
	Serve(net *Network, req *Message) (*xmltree.Node, error)
}

// Metrics accumulates network-wide counters. All byte counts are canonical
// XML sizes (xmltree's memoized ByteSize — no document is re-serialized to
// price a message) plus a fixed per-message header overhead.
type Metrics struct {
	Messages int64
	Requests int64
	Bytes    int64
	PerKind  map[string]int64
}

// headerOverhead approximates per-message framing cost in bytes.
const headerOverhead = 64

// Network is a simulated P2P network. Safe for concurrent use, though the
// experiments drive it single-threaded for determinism.
type Network struct {
	mu      sync.Mutex
	peers   map[string]Peer
	down    map[string]bool
	metrics Metrics
	// latency returns the one-way link latency between two addresses.
	latency func(a, b string) time.Duration
	// procDelay is the per-hop processing time a peer spends on a message.
	procDelay time.Duration
	// maxDepth guards against forwarding loops.
	maxDepth int
	depth    int
}

// New creates an empty network with the default deterministic latency model
// (5–55 ms per link, derived from the address pair) and 2 ms per-hop
// processing delay.
func New() *Network {
	return &Network{
		peers:     map[string]Peer{},
		down:      map[string]bool{},
		metrics:   Metrics{PerKind: map[string]int64{}},
		latency:   DefaultLatency,
		procDelay: 2 * time.Millisecond,
		maxDepth:  256,
	}
}

// DefaultLatency derives a stable pseudo-random one-way latency in
// [5ms, 55ms) from the unordered address pair.
func DefaultLatency(a, b string) time.Duration {
	if a == b {
		return 0
	}
	if b < a {
		a, b = b, a
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(a + "|" + b))
	return 5*time.Millisecond + time.Duration(h.Sum32()%50)*time.Millisecond
}

// SetLatency replaces the link-latency model.
func (n *Network) SetLatency(fn func(a, b string) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = fn
}

// SetProcDelay sets the per-hop processing delay added to delivered
// messages' virtual time.
func (n *Network) SetProcDelay(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.procDelay = d
}

// Add registers a peer; it replaces any previous peer at the same address.
func (n *Network) Add(p Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[p.Addr()] = p
}

// Peer returns the peer at addr, or nil.
func (n *Network) Peer(addr string) Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[addr]
}

// Addrs returns all registered addresses, sorted.
func (n *Network) Addrs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for a := range n.peers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// SetDown marks a peer unreachable (or reachable again); sends to it fail
// with ErrUnreachable. Used by the fault-tolerance experiments.
func (n *Network) SetDown(addr string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[addr] = down
}

// ErrUnreachable is returned when the destination peer is down or unknown.
type ErrUnreachable struct {
	Addr string
}

func (e ErrUnreachable) Error() string {
	return fmt.Sprintf("simnet: peer %s unreachable", e.Addr)
}

func (n *Network) lookup(to string) (Peer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[to] {
		return nil, ErrUnreachable{Addr: to}
	}
	p, ok := n.peers[to]
	if !ok {
		return nil, ErrUnreachable{Addr: to}
	}
	return p, nil
}

// wireSize is the accounted on-the-wire cost of a message body. ByteSize is
// memoized on the node, so re-sending the same document (flooding, fan-out
// registration) prices it once and hits the cache on every later hop; the
// frozen payloads plans carry (data bundles, provenance) keep their memo
// permanently, so pricing a forwarded plan re-walks only the thin mutable
// shell around them.
func wireSize(body *xmltree.Node) int {
	size := headerOverhead
	if body != nil {
		size += body.ByteSize()
	}
	return size
}

// account records one message. The body size is computed by the caller
// (outside the network lock) so that serialization cost is never paid while
// holding mu.
func (n *Network) account(kind string, size int, isRequest bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.metrics.Messages++
	if isRequest {
		n.metrics.Requests++
	}
	n.metrics.Bytes += int64(size)
	n.metrics.PerKind[kind]++
}

// Send delivers a one-way message from msg.From to msg.To, invoking the
// destination's Deliver inline. The delivered message's At is msg.At plus
// link latency plus the processing delay, and Hops is incremented.
func (n *Network) Send(msg *Message) error {
	p, err := n.lookup(msg.To)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.depth >= n.maxDepth {
		n.mu.Unlock()
		return fmt.Errorf("simnet: forwarding depth limit (%d) exceeded; routing loop?", n.maxDepth)
	}
	n.depth++
	lat := n.latency(msg.From, msg.To)
	proc := n.procDelay
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.depth--
		n.mu.Unlock()
	}()

	n.account(msg.Kind, wireSize(msg.Body), false)
	delivered := &Message{
		From: msg.From,
		To:   msg.To,
		Kind: msg.Kind,
		Body: msg.Body,
		At:   msg.At + lat + proc,
		Hops: msg.Hops + 1,
	}
	return p.Deliver(n, delivered)
}

// Request performs a synchronous request/response exchange. Both directions
// are accounted; the returned time is the virtual time at which the reply
// arrives back at the caller.
func (n *Network) Request(from, to, kind string, body *xmltree.Node, at time.Duration) (*xmltree.Node, time.Duration, error) {
	p, err := n.lookup(to)
	if err != nil {
		return nil, at, err
	}
	n.mu.Lock()
	lat := n.latency(from, to)
	proc := n.procDelay
	n.mu.Unlock()

	n.account(kind, wireSize(body), true)
	req := &Message{From: from, To: to, Kind: kind, Body: body, At: at + lat + proc}
	reply, err := p.Serve(n, req)
	if err != nil {
		return nil, req.At, fmt.Errorf("simnet: request %s to %s: %w", kind, to, err)
	}
	n.account(kind+"-reply", wireSize(reply), false)
	return reply, req.At + lat, nil
}

// Metrics returns a snapshot of the accumulated counters.
func (n *Network) Metrics() Metrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := Metrics{
		Messages: n.metrics.Messages,
		Requests: n.metrics.Requests,
		Bytes:    n.metrics.Bytes,
		PerKind:  make(map[string]int64, len(n.metrics.PerKind)),
	}
	for k, v := range n.metrics.PerKind {
		m.PerKind[k] = v
	}
	return m
}

// ResetMetrics zeroes the counters; experiments call it between runs.
func (n *Network) ResetMetrics() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.metrics = Metrics{PerKind: map[string]int64{}}
}
