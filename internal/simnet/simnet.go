// Package simnet is the network substrate the experiments run on: an
// in-process message-passing network with deterministic per-link latency, a
// virtual clock carried on messages, and byte/message accounting.
//
// The paper's prototype ran over real sockets; the quantities its arguments
// turn on — messages sent, bytes shipped, hops taken, end-to-end latency —
// are exactly what simnet measures, deterministically and at laptop scale.
// Delivery has two modes:
//
//   - Inline (the default): a Send invokes the destination handler
//     synchronously. This is what the experiment tables run on; virtual time
//     advances by the link latency plus a configurable per-hop processing
//     delay, so "latency" in experiment output is simulated wall-clock, not
//     host time. Inline delivery is safe for concurrent senders (see
//     Network), which is what the peer worker-pool runtime exploits.
//
//   - Scheduled (UseScheduler): Send enqueues a delivery event and Run pumps
//     events in virtual-time order. This mode adds seeded fault injection —
//     per-link drop/duplicate/reorder probabilities, transient partitions,
//     and peer crash/restart windows at scheduled virtual times (sched.go) —
//     while staying fully deterministic for a given seed.
package simnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/xmltree"
)

// Message is one unit of communication. Body is an XML document (plans,
// registrations, catalog queries). At is the virtual time of delivery.
type Message struct {
	From, To string
	Kind     string
	Body     *xmltree.Node
	At       time.Duration
	// Hops counts how many links the enclosing activity has traversed;
	// forwarding handlers propagate and increment it.
	Hops int
}

// Peer is a network participant. Deliver handles one-way messages (e.g. an
// MQP in flight, a registration). Serve handles request/response calls
// (catalog lookups, data fetches) and returns the reply body.
//
// Ownership: message and reply bodies pass by reference, not by value — a
// receiver must never mutate a body it was handed. It may, however, freeze
// subtrees (xmltree.Freeze) and alias them into structures it keeps: the
// sender has already relinquished the document by sending it.
type Peer interface {
	// Addr returns the peer's stable network address.
	Addr() string
	// Deliver processes a one-way message; it may send further messages.
	Deliver(net *Network, msg *Message) error
	// Serve processes a request and returns the reply body.
	Serve(net *Network, req *Message) (*xmltree.Node, error)
}

// Metrics accumulates network-wide counters. All byte counts are canonical
// XML sizes (xmltree's memoized ByteSize — no document is re-serialized to
// price a message) plus the per-frame mux header, plus a one-time setup
// charge per ordered link (see LinksOpened).
type Metrics struct {
	Messages int64
	Requests int64
	Bytes    int64
	// LinksOpened counts connection establishments: the first frame between
	// an ordered (from, to) pair opens a persistent link and pays
	// linkSetupOverhead; later frames reuse it for frameOverhead each. A
	// crash, SetDown or partition-blocked send severs the peer's links, so
	// traffic after recovery pays setup again — E4/E9-scale sweeps and chaos
	// runs price the reused-link path the real transport now takes.
	LinksOpened int64
	PerKind     map[string]int64
}

// headerOverhead approximates connection-establishment cost in bytes (TCP
// handshake, mux magic); it is paid once per ordered link, not per message.
const headerOverhead = 64

// linkSetupOverhead is the one-time charge for opening a link.
const linkSetupOverhead = headerOverhead

// frameOverhead is the per-frame mux header: 4-byte length prefix plus
// 8-byte correlation id, matching the wire package's link framing.
const frameOverhead = 12

// Network is a simulated P2P network.
//
// Concurrency: inline mode is safe for concurrent Sends and Requests from
// any number of goroutines — mu guards topology and is never held across a
// Deliver or Serve call, and accounting has its own lock (metricsMu) so the
// per-message hot path never contends with topology changes. This is what
// the peer worker-pool runtime runs on. Scheduled mode stays single-pumped:
// Run delivers events one at a time in virtual-time order, which is what
// makes a seeded chaos scenario deterministic; its determinism contract
// would not survive concurrent handlers, so peers on a scheduled network
// must process inline (peer.Config.Workers == 0).
type Network struct {
	mu    sync.Mutex
	peers map[string]Peer
	down  map[string]bool

	// metricsMu guards metrics separately from mu: every delivery accounts
	// a message, and that must not serialize against topology reads. Lock
	// ordering: metricsMu may be taken while holding mu (the scheduler
	// accounts while enqueueing); never the reverse.
	metricsMu sync.Mutex
	metrics   Metrics
	// links tracks which ordered (from, to) pairs have an open persistent
	// link, for batched delivery pricing: the first frame on a pair pays
	// linkSetupOverhead, reuse pays frameOverhead only. Guarded by
	// metricsMu (it is accounting state, cleared on crash/down/partition).
	links map[[2]string]bool
	// latency returns the one-way link latency between two addresses.
	latency func(a, b string) time.Duration
	// procDelay is the per-hop processing time a peer spends on a message.
	procDelay time.Duration
	// maxDepth guards against forwarding loops. The guard is per delivery
	// chain (it checks the message's Hops count), so independent activities
	// in flight at the same time never add up toward the limit.
	maxDepth int
	// partitions are transient link cuts (see Partition); consulted on every
	// send and, in scheduled mode, again at delivery time.
	partitions []partition
	// sched is non-nil in scheduled-delivery mode (see UseScheduler).
	sched *scheduler
}

// partition is a transient bidirectional cut between two peer groups over a
// virtual-time window [from, until). until <= from means it never heals.
type partition struct {
	a, b        map[string]bool
	from, until time.Duration
}

func (p partition) blocks(from, to string, at time.Duration) bool {
	if at < p.from || (p.until > p.from && at >= p.until) {
		return false
	}
	return (p.a[from] && p.b[to]) || (p.b[from] && p.a[to])
}

// New creates an empty network with the default deterministic latency model
// (5–55 ms per link, derived from the address pair) and 2 ms per-hop
// processing delay.
func New() *Network {
	return &Network{
		peers:     map[string]Peer{},
		down:      map[string]bool{},
		metrics:   Metrics{PerKind: map[string]int64{}},
		links:     map[[2]string]bool{},
		latency:   DefaultLatency,
		procDelay: 2 * time.Millisecond,
		maxDepth:  256,
	}
}

// DefaultLatency derives a stable pseudo-random one-way latency in
// [5ms, 55ms) from the unordered address pair.
func DefaultLatency(a, b string) time.Duration {
	if a == b {
		return 0
	}
	if b < a {
		a, b = b, a
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(a + "|" + b))
	return 5*time.Millisecond + time.Duration(h.Sum32()%50)*time.Millisecond
}

// SetLatency replaces the link-latency model.
func (n *Network) SetLatency(fn func(a, b string) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = fn
}

// SetProcDelay sets the per-hop processing delay added to delivered
// messages' virtual time.
func (n *Network) SetProcDelay(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.procDelay = d
}

// SetMaxDepth bounds the number of hops a single delivery chain may take
// before Send fails with ErrDepthExceeded (default 256). Call it during
// setup, before traffic flows — harnesses with known-shallow routing use a
// tight bound so pathological forwarding cycles surface fast instead of
// riding out hundreds of hops.
func (n *Network) SetMaxDepth(d int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.maxDepth = d
}

// Add registers a peer; it replaces any previous peer at the same address.
func (n *Network) Add(p Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[p.Addr()] = p
}

// Peer returns the peer at addr, or nil.
func (n *Network) Peer(addr string) Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[addr]
}

// Addrs returns all registered addresses, sorted.
func (n *Network) Addrs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for a := range n.peers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// SetDown marks a peer unreachable (or reachable again); sends to it fail
// with ErrUnreachable. Used by the fault-tolerance experiments.
func (n *Network) SetDown(addr string, down bool) {
	n.mu.Lock()
	n.down[addr] = down
	n.mu.Unlock()
	if down {
		// Its connections die with it; survivors redial (and re-pay setup)
		// when they next talk to it — or it to them — after recovery.
		n.severLinks(addr)
	}
}

// Partition cuts all links between groupA and groupB for the virtual-time
// window [from, until). Pass until <= from for a partition that never heals.
// Sends across the cut fail with ErrUnreachable (sender-visible, like a
// refused connection); in scheduled mode a message already in flight when
// the partition forms is lost silently at delivery time.
func (n *Network) Partition(groupA, groupB []string, from, until time.Duration) {
	p := partition{a: map[string]bool{}, b: map[string]bool{}, from: from, until: until}
	for _, a := range groupA {
		p.a[a] = true
	}
	for _, b := range groupB {
		p.b[b] = true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions = append(n.partitions, p)
}

func (n *Network) blockedLocked(from, to string, at time.Duration) bool {
	for _, p := range n.partitions {
		if p.blocks(from, to, at) {
			return true
		}
	}
	return false
}

// ErrUnreachable is returned when the destination peer is down or unknown.
type ErrUnreachable struct {
	Addr string
}

func (e ErrUnreachable) Error() string {
	return fmt.Sprintf("simnet: peer %s unreachable", e.Addr)
}

func (n *Network) lookup(to string) (Peer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[to] {
		return nil, ErrUnreachable{Addr: to}
	}
	p, ok := n.peers[to]
	if !ok {
		return nil, ErrUnreachable{Addr: to}
	}
	return p, nil
}

// wireSize is the accounted on-the-wire cost of one frame carrying body:
// the mux frame header plus the body's canonical size. ByteSize is memoized
// on the node, so re-sending the same document (flooding, fan-out
// registration) prices it once and hits the cache on every later hop; the
// frozen payloads plans carry (data bundles, provenance) keep their memo
// permanently, so pricing a forwarded plan re-walks only the thin mutable
// shell around them.
func wireSize(body *xmltree.Node) int {
	size := frameOverhead
	if body != nil {
		size += body.ByteSize()
	}
	return size
}

// account records one frame. link is the ordered (from, to) pair the frame
// rides: its first frame opens a persistent link and pays linkSetupOverhead
// on top of size; reuse pays size alone. The zero pair means no link charge
// — reply frames share the request's connection. The body size is computed
// by the caller (outside any lock) so that serialization cost is never paid
// while holding a mutex. Safe to call with or without mu held (see metricsMu
// ordering).
func (n *Network) account(link [2]string, kind string, size int, isRequest bool) {
	n.metricsMu.Lock()
	defer n.metricsMu.Unlock()
	if link != ([2]string{}) && !n.links[link] {
		n.links[link] = true
		n.metrics.LinksOpened++
		n.metrics.Bytes += linkSetupOverhead
	}
	n.metrics.Messages++
	if isRequest {
		n.metrics.Requests++
	}
	n.metrics.Bytes += int64(size)
	n.metrics.PerKind[kind]++
}

// severLinks drops all persistent-link pricing state involving addr, in both
// directions: the next frame to or from it pays connection setup again. Called
// when a peer crashes, is marked down, or a send finds its path partitioned.
func (n *Network) severLinks(addr string) {
	n.metricsMu.Lock()
	for k := range n.links {
		if k[0] == addr || k[1] == addr {
			delete(n.links, k)
		}
	}
	n.metricsMu.Unlock()
}

// severLink drops one ordered link's pricing state.
func (n *Network) severLink(from, to string) {
	n.metricsMu.Lock()
	delete(n.links, [2]string{from, to})
	n.metricsMu.Unlock()
}

// ErrDepthExceeded is wrapped by the error Send returns when a delivery
// chain exceeds the forwarding-depth limit — almost always a routing loop.
var ErrDepthExceeded = errors.New("forwarding depth limit exceeded; routing loop?")

// encodeBody runs a message body through the real wire codec: canonical
// serialization at the sender, zero-copy decode at the receiver's side of
// the link. Every simulated delivery therefore exercises the exact decoder
// the socket transport uses (and chaos sweeps and the experiment tables
// inherit that coverage for free). The decoded document aliases the
// serialized string and is frozen at birth — receivers alias what they
// keep, per the xmltree ownership rule, exactly as with a real frame.
//
// The serialization happens outside the network lock (it is the analog of
// writing to a socket), and canonical serialization is a decode fixpoint,
// so delivered content is byte-identical to what inline reference passing
// carried before.
func encodeBody(kind string, body *xmltree.Node) (*xmltree.Node, error) {
	if body == nil {
		return nil, nil
	}
	if body.Frozen() {
		// A frozen body is the codec's fixpoint already: it is immutable,
		// its canonical serialization is memoized, and decoding that
		// serialization reproduces the same document — so the receiver gets
		// the alias directly and the link costs no codec work. This is the
		// prepared-plan fast path: a client resubmitting a known query
		// sends the frozen prototype it already has. Freshly marshaled
		// (mutable) bodies — every forwarded plan, result, registration —
		// still take the full serialize+decode round trip below.
		return body, nil
	}
	decoded, err := xmltree.DecodeString(body.String())
	if err != nil {
		return nil, fmt.Errorf("simnet: %s body not wire-decodable: %w", kind, err)
	}
	return decoded, nil
}

// Send delivers a one-way message from msg.From to msg.To. In inline mode
// the destination's Deliver runs before Send returns; in scheduled mode the
// delivery is enqueued for the Run pump (and may be dropped, duplicated or
// delayed by injected faults). Either way the delivered message's At is
// msg.At plus link latency plus the processing delay, and Hops is
// incremented.
//
// A down, unknown or partitioned-away destination fails with ErrUnreachable
// at send time in both modes — the refused-connection analog the
// fault-tolerance fallback in peers relies on. Faults injected after this
// check (drops, crashes before delivery) are silent: the message is recorded
// as dropped or lost in the scheduler trace, never reported to the sender.
func (n *Network) Send(msg *Message) error {
	n.mu.Lock()
	maxDepth := n.maxDepth
	n.mu.Unlock()
	if msg.Hops >= maxDepth {
		return fmt.Errorf("simnet: message %s from %s to %s at depth %d: %w",
			msg.Kind, msg.From, msg.To, msg.Hops, ErrDepthExceeded)
	}
	p, err := n.lookup(msg.To)
	if err != nil {
		return err
	}
	size := wireSize(msg.Body)
	// The body crosses the link through the real codec (serialize, then
	// zero-copy decode); msg itself is not mutated — the caller may offer
	// the same body to several fallback candidates.
	wireBody, err := encodeBody(msg.Kind, msg.Body)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.blockedLocked(msg.From, msg.To, msg.At) {
		n.mu.Unlock()
		// The attempted send found the connection cut; traffic after the
		// partition heals re-pays link setup.
		n.severLink(msg.From, msg.To)
		return ErrUnreachable{Addr: msg.To}
	}
	lat := n.latency(msg.From, msg.To)
	proc := n.procDelay
	if s := n.sched; s != nil {
		err := s.enqueueSendLocked(n, msg, wireBody, lat+proc, size)
		n.mu.Unlock()
		return err
	}
	n.mu.Unlock()

	n.account([2]string{msg.From, msg.To}, msg.Kind, size, false)
	delivered := &Message{
		From: msg.From,
		To:   msg.To,
		Kind: msg.Kind,
		Body: wireBody,
		At:   msg.At + lat + proc,
		Hops: msg.Hops + 1,
	}
	return p.Deliver(n, delivered)
}

// Request performs a synchronous request/response exchange. Both directions
// are accounted; the returned time is the virtual time at which the reply
// arrives back at the caller. Requests stay synchronous even in scheduled
// mode (they model a blocking call inside one processing step), but they
// honor partitions and the link's drop probability: a dropped request fails
// with ErrUnreachable, the timeout analog the fetch fallback handles.
func (n *Network) Request(from, to, kind string, body *xmltree.Node, at time.Duration) (*xmltree.Node, time.Duration, error) {
	p, err := n.lookup(to)
	if err != nil {
		return nil, at, err
	}
	size := wireSize(body)
	n.mu.Lock()
	if n.blockedLocked(from, to, at) {
		n.mu.Unlock()
		n.severLink(from, to)
		return nil, at, ErrUnreachable{Addr: to}
	}
	lat := n.latency(from, to)
	proc := n.procDelay
	dropped := false
	if s := n.sched; s != nil {
		dropped = s.dropRequestLocked(from, to, kind, at)
	}
	n.mu.Unlock()

	n.account([2]string{from, to}, kind, size, true)
	if dropped {
		return nil, at + lat + proc, ErrUnreachable{Addr: to}
	}
	req := &Message{From: from, To: to, Kind: kind, Body: body, At: at + lat + proc}
	reply, err := p.Serve(n, req)
	if err != nil {
		return nil, req.At, fmt.Errorf("simnet: request %s to %s: %w", kind, to, err)
	}
	// The reply rides the request's connection: frame cost only, no link.
	n.account([2]string{}, kind+"-reply", wireSize(reply), false)
	return reply, req.At + lat, nil
}

// Metrics returns a snapshot of the accumulated counters.
func (n *Network) Metrics() Metrics {
	n.metricsMu.Lock()
	defer n.metricsMu.Unlock()
	m := Metrics{
		Messages:    n.metrics.Messages,
		Requests:    n.metrics.Requests,
		Bytes:       n.metrics.Bytes,
		LinksOpened: n.metrics.LinksOpened,
		PerKind:     make(map[string]int64, len(n.metrics.PerKind)),
	}
	for k, v := range n.metrics.PerKind {
		m.PerKind[k] = v
	}
	return m
}

// ResetMetrics zeroes the counters and forgets open links, so each measured
// run prices its own connection establishment; experiments call it between
// runs.
func (n *Network) ResetMetrics() {
	n.metricsMu.Lock()
	defer n.metricsMu.Unlock()
	n.metrics = Metrics{PerKind: map[string]int64{}}
	clear(n.links)
}
