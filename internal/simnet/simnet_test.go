package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xmltree"
)

// echoPeer records deliveries and serves requests by echoing the body.
type echoPeer struct {
	addr      string
	delivered []*Message
	forwardTo string // when set, Deliver forwards the message onward
}

func (p *echoPeer) Addr() string { return p.addr }

func (p *echoPeer) Deliver(net *Network, msg *Message) error {
	p.delivered = append(p.delivered, msg)
	if p.forwardTo != "" {
		return net.Send(&Message{From: p.addr, To: p.forwardTo, Kind: msg.Kind, Body: msg.Body, At: msg.At, Hops: msg.Hops})
	}
	return nil
}

func (p *echoPeer) Serve(net *Network, req *Message) (*xmltree.Node, error) {
	if req.Body == nil {
		return nil, errors.New("no body")
	}
	return req.Body, nil
}

func TestSendAccountsAndDelivers(t *testing.T) {
	n := New()
	a := &echoPeer{addr: "a:1"}
	b := &echoPeer{addr: "b:1"}
	n.Add(a)
	n.Add(b)
	body := xmltree.MustParse(`<hello/>`)
	if err := n.Send(&Message{From: "a:1", To: "b:1", Kind: "mqp", Body: body}); err != nil {
		t.Fatal(err)
	}
	if len(b.delivered) != 1 {
		t.Fatalf("delivered = %d", len(b.delivered))
	}
	got := b.delivered[0]
	if got.Hops != 1 || got.At <= 0 {
		t.Fatalf("hops=%d at=%v", got.Hops, got.At)
	}
	m := n.Metrics()
	if m.Messages != 1 || m.Bytes <= int64(body.ByteSize()) || m.PerKind["mqp"] != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestForwardChainAccumulatesTimeAndHops(t *testing.T) {
	n := New()
	n.SetLatency(func(a, b string) time.Duration { return 10 * time.Millisecond })
	n.SetProcDelay(time.Millisecond)
	c := &echoPeer{addr: "c:1"}
	b := &echoPeer{addr: "b:1", forwardTo: "c:1"}
	a := &echoPeer{addr: "a:1", forwardTo: "b:1"}
	n.Add(a)
	n.Add(b)
	n.Add(c)
	if err := n.Send(&Message{From: "x", To: "a:1", Kind: "mqp"}); err != nil {
		t.Fatal(err)
	}
	if len(c.delivered) != 1 {
		t.Fatalf("chain did not reach c")
	}
	final := c.delivered[0]
	if final.Hops != 3 {
		t.Fatalf("hops = %d, want 3", final.Hops)
	}
	if final.At != 33*time.Millisecond {
		t.Fatalf("virtual time = %v, want 33ms", final.At)
	}
}

func TestUnreachable(t *testing.T) {
	n := New()
	a := &echoPeer{addr: "a:1"}
	n.Add(a)
	err := n.Send(&Message{From: "a:1", To: "ghost:1", Kind: "x"})
	var ue ErrUnreachable
	if !errors.As(err, &ue) || ue.Addr != "ghost:1" {
		t.Fatalf("err = %v", err)
	}
	b := &echoPeer{addr: "b:1"}
	n.Add(b)
	n.SetDown("b:1", true)
	if err := n.Send(&Message{From: "a:1", To: "b:1", Kind: "x"}); err == nil {
		t.Fatal("down peer must be unreachable")
	}
	n.SetDown("b:1", false)
	if err := n.Send(&Message{From: "a:1", To: "b:1", Kind: "x"}); err != nil {
		t.Fatalf("recovered peer: %v", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	n := New()
	n.SetLatency(func(a, b string) time.Duration { return 7 * time.Millisecond })
	n.SetProcDelay(0)
	s := &echoPeer{addr: "s:1"}
	n.Add(s)
	body := xmltree.MustParse(`<q>42</q>`)
	reply, at, err := n.Request("c:1", "s:1", "lookup", body, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(reply, body) {
		t.Fatalf("reply = %s", reply)
	}
	if at != 14*time.Millisecond {
		t.Fatalf("rtt = %v", at)
	}
	m := n.Metrics()
	if m.Requests != 1 || m.Messages != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	// Error propagation from Serve.
	if _, _, err := n.Request("c:1", "s:1", "lookup", nil, 0); err == nil {
		t.Fatal("serve error must propagate")
	}
}

func TestDepthLimit(t *testing.T) {
	n := New()
	// a forwards to itself forever.
	a := &echoPeer{addr: "a:1", forwardTo: "a:1"}
	n.Add(a)
	err := n.Send(&Message{From: "x", To: "a:1", Kind: "loop"})
	if err == nil {
		t.Fatal("routing loop must be detected")
	}
}

func TestDefaultLatencyDeterministicSymmetric(t *testing.T) {
	l1 := DefaultLatency("a:1", "b:2")
	l2 := DefaultLatency("b:2", "a:1")
	if l1 != l2 {
		t.Fatalf("latency not symmetric: %v vs %v", l1, l2)
	}
	if l1 < 5*time.Millisecond || l1 >= 55*time.Millisecond {
		t.Fatalf("latency out of range: %v", l1)
	}
	if DefaultLatency("a:1", "a:1") != 0 {
		t.Fatal("self latency must be zero")
	}
}

func TestResetMetricsAndAddrs(t *testing.T) {
	n := New()
	for i := 0; i < 3; i++ {
		n.Add(&echoPeer{addr: fmt.Sprintf("p%d:1", i)})
	}
	if len(n.Addrs()) != 3 {
		t.Fatalf("addrs = %v", n.Addrs())
	}
	_ = n.Send(&Message{From: "p0:1", To: "p1:1", Kind: "x"})
	n.ResetMetrics()
	m := n.Metrics()
	if m.Messages != 0 || m.Bytes != 0 || len(m.PerKind) != 0 {
		t.Fatalf("metrics after reset = %+v", m)
	}
	if n.Peer("p0:1") == nil || n.Peer("zz") != nil {
		t.Fatal("Peer lookup broken")
	}
}

// countPeer is a concurrency-safe sink: Deliver only bumps an atomic.
type countPeer struct {
	addr      string
	delivered atomic.Int64
}

func (p *countPeer) Addr() string { return p.addr }

func (p *countPeer) Deliver(_ *Network, _ *Message) error {
	p.delivered.Add(1)
	return nil
}

func (p *countPeer) Serve(_ *Network, _ *Message) (*xmltree.Node, error) {
	return nil, errors.New("countPeer serves nothing")
}

// TestConcurrentInlineSends hammers an inline network from many goroutines.
// Inline mode holds no lock across Deliver, so concurrent senders are the
// supported concurrency model (the worker-pool peer runtime depends on it);
// under -race this checks delivery and metrics accounting stay coherent.
func TestConcurrentInlineSends(t *testing.T) {
	n := New()
	sink := &countPeer{addr: "sink:1"}
	n.Add(sink)

	const senders, sendsEach = 8, 200
	body := xmltree.MustParse(`<probe/>`).Freeze()
	var wg sync.WaitGroup
	wg.Add(senders)
	for s := 0; s < senders; s++ {
		go func(s int) {
			defer wg.Done()
			from := fmt.Sprintf("src%d:1", s)
			for i := 0; i < sendsEach; i++ {
				if err := n.Send(&Message{From: from, To: "sink:1", Kind: "mqp", Body: body}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	if got := sink.delivered.Load(); got != senders*sendsEach {
		t.Fatalf("delivered = %d, want %d", got, senders*sendsEach)
	}
	m := n.Metrics()
	if m.Messages != senders*sendsEach || m.PerKind["mqp"] != senders*sendsEach {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestFrozenBodyDeliveredAsAlias pins the codec fast path: a frozen body is
// its own decoded form (immutable, decode∘serialize is the identity on it),
// so delivery aliases it instead of re-encoding — while a mutable body still
// round-trips through the codec and arrives as a distinct tree.
func TestFrozenBodyDeliveredAsAlias(t *testing.T) {
	n := New()
	sink := &echoPeer{addr: "sink:1"}
	n.Add(sink)

	frozen := xmltree.MustParse(`<sale><price>8</price></sale>`).Freeze()
	mutable := xmltree.MustParse(`<sale><price>9</price></sale>`)
	for _, body := range []*xmltree.Node{frozen, mutable} {
		if err := n.Send(&Message{From: "a:1", To: "sink:1", Kind: "mqp", Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.delivered) != 2 {
		t.Fatalf("delivered = %d", len(sink.delivered))
	}
	if sink.delivered[0].Body != frozen {
		t.Fatal("frozen body was re-encoded, want alias delivery")
	}
	if sink.delivered[1].Body == mutable {
		t.Fatal("mutable body delivered as alias, want codec round-trip")
	}
	if got := sink.delivered[1].Body.Value("price"); got != "9" {
		t.Fatalf("round-tripped body price = %q", got)
	}
}
