package simnet

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/xmltree"
)

// chainPeer forwards deliveries onward until the chain reaches length hops,
// then (optionally) starts a brand-new activity with fresh Hops.
type chainPeer struct {
	addr    string
	hops    int                      // forward to self until the delivered Hops reaches this
	then    func(net *Network) error // run when the chain completes
	reached int
}

func (p *chainPeer) Addr() string { return p.addr }

func (p *chainPeer) Deliver(net *Network, msg *Message) error {
	p.reached = msg.Hops
	if msg.Hops < p.hops {
		return net.Send(&Message{From: p.addr, To: p.addr, Kind: msg.Kind, Body: msg.Body, At: msg.At, Hops: msg.Hops})
	}
	if p.then != nil {
		return p.then(net)
	}
	return nil
}

func (p *chainPeer) Serve(net *Network, req *Message) (*xmltree.Node, error) {
	return req.Body, nil
}

// TestDepthIsPerDeliveryChain: a deep chain that spawns a fresh activity
// mid-flight must not bleed its depth into the new chain. With the old
// shared Network.depth counter, 200 ambient frames plus a 200-hop nested
// activity summed past the 256 limit and tripped the loop guard spuriously.
func TestDepthIsPerDeliveryChain(t *testing.T) {
	n := New()
	inner := &chainPeer{addr: "inner:1", hops: 200}
	outer := &chainPeer{addr: "outer:1", hops: 200, then: func(net *Network) error {
		// A fresh activity: Hops starts at zero again.
		return net.Send(&Message{From: "outer:1", To: "inner:1", Kind: "fresh"})
	}}
	n.Add(inner)
	n.Add(outer)
	if err := n.Send(&Message{From: "x", To: "outer:1", Kind: "deep"}); err != nil {
		t.Fatalf("nested activities must not share depth: %v", err)
	}
	if inner.reached != 200 {
		t.Fatalf("inner chain reached %d hops, want 200", inner.reached)
	}
}

// TestDepthConcurrentSubmissions: two deep chains in flight at once must not
// add up toward the loop limit (the old shared counter made this flaky).
func TestDepthConcurrentSubmissions(t *testing.T) {
	n := New()
	a := &chainPeer{addr: "a:1", hops: 200}
	b := &chainPeer{addr: "b:1", hops: 200}
	n.Add(a)
	n.Add(b)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := make(chan struct{})
	for i, to := range []string{"a:1", "b:1"} {
		wg.Add(1)
		go func(i int, to string) {
			defer wg.Done()
			<-start
			errs[i] = n.Send(&Message{From: "x", To: to, Kind: "deep"})
		}(i, to)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("interleaved submission %d tripped the loop guard: %v", i, err)
		}
	}
}

// TestDepthLimitStillTrips: an actual forwarding loop must still be caught,
// and the error must carry the sentinel.
func TestDepthLimitStillTrips(t *testing.T) {
	n := New()
	p := &chainPeer{addr: "loop:1", hops: 1 << 30}
	n.Add(p)
	err := n.Send(&Message{From: "x", To: "loop:1", Kind: "loop"})
	if !errors.Is(err, ErrDepthExceeded) {
		t.Fatalf("err = %v, want ErrDepthExceeded", err)
	}
}

// runScenario drives a fixed workload through a scheduled network and
// returns a reproducible digest of what happened.
func runScenario(t *testing.T, seed int64, f Faults) (string, RunStats, Trace) {
	t.Helper()
	n := New()
	n.UseScheduler(seed)
	n.SetFaults(f)
	sink := &chainPeer{addr: "sink:1"}
	hop := &chainPeer{addr: "hop:1", hops: 0, then: nil}
	n.Add(sink)
	n.Add(hop)
	for i := 0; i < 40; i++ {
		to := "sink:1"
		if i%2 == 0 {
			to = "hop:1"
		}
		body := xmltree.ElemText("m", fmt.Sprintf("%d", i))
		if err := n.Send(&Message{From: "src", To: to, Kind: "k", Body: body, At: time.Duration(i) * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := n.SchedTrace()
	digest := ""
	for _, m := range tr.Delivered {
		digest += fmt.Sprintf("%s@%v;", m.Body.InnerText(), m.At)
	}
	return digest, stats, tr
}

func TestSchedulerDeterministicPerSeed(t *testing.T) {
	f := Faults{Drop: 0.2, Duplicate: 0.15, Reorder: 0.5}
	d1, s1, _ := runScenario(t, 7, f)
	d2, s2, _ := runScenario(t, 7, f)
	if d1 != d2 || !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", d1, d2)
	}
	d3, _, _ := runScenario(t, 8, f)
	if d1 == d3 {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestSchedulerFaultFreeMatchesInlineTiming(t *testing.T) {
	// The same two-hop chain, inline vs scheduled with no faults, must agree
	// on delivery times, hops, and metrics.
	build := func(sched bool) (*Network, *chainPeer) {
		n := New()
		n.SetLatency(func(a, b string) time.Duration { return 10 * time.Millisecond })
		n.SetProcDelay(time.Millisecond)
		if sched {
			n.UseScheduler(1)
		}
		c := &chainPeer{addr: "c:1"}
		b := &chainPeer{addr: "b:1", then: func(net *Network) error {
			return net.Send(&Message{From: "b:1", To: "c:1", Kind: "k", At: 11 * time.Millisecond, Hops: 1})
		}}
		n.Add(b)
		n.Add(c)
		return n, c
	}
	inline, cInline := build(false)
	if err := inline.Send(&Message{From: "x", To: "b:1", Kind: "k"}); err != nil {
		t.Fatal(err)
	}
	queued, cQueued := build(true)
	if err := queued.Send(&Message{From: "x", To: "b:1", Kind: "k"}); err != nil {
		t.Fatal(err)
	}
	stats, err := queued.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 2 || stats.Dropped != 0 || stats.Lost != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if cInline.reached != cQueued.reached {
		t.Fatalf("hops differ: inline %d, queued %d", cInline.reached, cQueued.reached)
	}
	mi, mq := inline.Metrics(), queued.Metrics()
	if !reflect.DeepEqual(mi, mq) {
		t.Fatalf("metrics differ: inline %+v, queued %+v", mi, mq)
	}
}

func TestSchedulerDropAndDuplicate(t *testing.T) {
	n := New()
	n.UseScheduler(3)
	n.SetFaults(Faults{Drop: 1})
	sink := &chainPeer{addr: "sink:1"}
	n.Add(sink)
	if err := n.Send(&Message{From: "x", To: "sink:1", Kind: "k", Body: xmltree.Elem("b")}); err != nil {
		t.Fatalf("a dropped message must look sent: %v", err)
	}
	stats, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 0 || stats.Dropped != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Bytes were still spent on the wire.
	if n.Metrics().Messages != 1 {
		t.Fatalf("metrics = %+v", n.Metrics())
	}

	n2 := New()
	n2.UseScheduler(3)
	n2.SetFaults(Faults{Duplicate: 1})
	sink2 := &chainPeer{addr: "sink:1"}
	n2.Add(sink2)
	if err := n2.Send(&Message{From: "x", To: "sink:1", Kind: "k"}); err != nil {
		t.Fatal(err)
	}
	stats2, err := n2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Delivered != 2 {
		t.Fatalf("duplicate not delivered twice: %+v", stats2)
	}
	if n2.Metrics().Messages != 2 {
		t.Fatalf("duplicate must be accounted: %+v", n2.Metrics())
	}
}

func TestSchedulerCrashWindow(t *testing.T) {
	n := New()
	n.UseScheduler(5)
	sink := &chainPeer{addr: "sink:1"}
	n.Add(sink)
	n.SetLatency(func(a, b string) time.Duration { return 10 * time.Millisecond })
	n.SetProcDelay(0)
	n.ScheduleCrash("sink:1", 15*time.Millisecond, 40*time.Millisecond)

	// Arrives at 10ms: before the crash, delivered.
	// Sent at 10ms, arrives 20ms: in the window, lost.
	// Sent at 35ms, arrives 45ms: after restart, delivered.
	for _, at := range []time.Duration{0, 10 * time.Millisecond, 35 * time.Millisecond} {
		if err := n.Send(&Message{From: "x", To: "sink:1", Kind: "k", At: at}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 2 || stats.Lost != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	tr := n.SchedTrace()
	if len(tr.Lost) != 1 || tr.Lost[0].At != 20*time.Millisecond {
		t.Fatalf("lost = %+v", tr.Lost)
	}
	// While down, sends fail fast (the fallback-visible path): crash again,
	// with no restart, and observe the send-time error.
	n.ScheduleCrash("sink:1", 50*time.Millisecond, 0)
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	err = n.Send(&Message{From: "x", To: "sink:1", Kind: "k", At: 60 * time.Millisecond})
	var ue ErrUnreachable
	if !errors.As(err, &ue) {
		t.Fatalf("send to crashed peer = %v, want ErrUnreachable", err)
	}
}

func TestPartitionWindow(t *testing.T) {
	n := New()
	n.UseScheduler(9)
	n.SetLatency(func(a, b string) time.Duration { return 5 * time.Millisecond })
	n.SetProcDelay(0)
	a := &chainPeer{addr: "a:1"}
	b := &chainPeer{addr: "b:1"}
	n.Add(a)
	n.Add(b)
	n.Partition([]string{"a:1", "x"}, []string{"b:1"}, 10*time.Millisecond, 30*time.Millisecond)

	// Send-time check: inside the window the cut is sender-visible.
	err := n.Send(&Message{From: "x", To: "b:1", Kind: "k", At: 15 * time.Millisecond})
	var ue ErrUnreachable
	if !errors.As(err, &ue) {
		t.Fatalf("partitioned send = %v, want ErrUnreachable", err)
	}
	// In-flight loss: sent at 8ms (window not yet open), arrives at 13ms
	// inside the window — lost at delivery time.
	if err := n.Send(&Message{From: "x", To: "b:1", Kind: "k", At: 8 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// After healing, traffic flows again.
	if err := n.Send(&Message{From: "x", To: "b:1", Kind: "k", At: 31 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// The cut is directional-pair-scoped: unrelated links are unaffected.
	if err := n.Send(&Message{From: "x", To: "a:1", Kind: "k", At: 15 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 2 || stats.Lost != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestOverlappingCrashWindows: one window's restart must not revive a peer
// still inside another window, and must never undo a crash-with-no-restart.
func TestOverlappingCrashWindows(t *testing.T) {
	n := New()
	n.UseScheduler(17)
	n.SetLatency(func(a, b string) time.Duration { return 0 })
	n.SetProcDelay(0)
	sink := &chainPeer{addr: "sink:1"}
	n.Add(sink)
	n.ScheduleCrash("sink:1", 10*time.Millisecond, 40*time.Millisecond)
	n.ScheduleCrash("sink:1", 15*time.Millisecond, 25*time.Millisecond)
	// Arrives at 30ms: after the inner window's restart but still inside the
	// outer one — must be lost, not delivered.
	for _, at := range []time.Duration{30 * time.Millisecond, 45 * time.Millisecond} {
		if err := n.Send(&Message{From: "x", To: "sink:1", Kind: "k", At: at}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 1 || stats.Lost != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	// A crash with no restart stays down past any later window's restart.
	n2 := New()
	n2.UseScheduler(17)
	n2.SetLatency(func(a, b string) time.Duration { return 0 })
	n2.SetProcDelay(0)
	sink2 := &chainPeer{addr: "sink:1"}
	n2.Add(sink2)
	n2.ScheduleCrash("sink:1", 10*time.Millisecond, 0)
	n2.ScheduleCrash("sink:1", 15*time.Millisecond, 25*time.Millisecond)
	if err := n2.Send(&Message{From: "x", To: "sink:1", Kind: "k", At: 30 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	stats2, err := n2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Delivered != 0 || stats2.Lost != 1 {
		t.Fatalf("no-restart crash was undone: %+v", stats2)
	}
}

// TestRunStatsPerRun: Dropped/Lost in RunStats cover only that Run call,
// while SchedTrace stays cumulative.
func TestRunStatsPerRun(t *testing.T) {
	n := New()
	n.UseScheduler(19)
	n.SetFaults(Faults{Drop: 1})
	sink := &chainPeer{addr: "sink:1"}
	n.Add(sink)
	for round := 1; round <= 2; round++ {
		if err := n.Send(&Message{From: "x", To: "sink:1", Kind: "k"}); err != nil {
			t.Fatal(err)
		}
		stats, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Dropped != 1 {
			t.Fatalf("round %d: stats.Dropped = %d, want 1", round, stats.Dropped)
		}
		if got := len(n.SchedTrace().Dropped); got != round {
			t.Fatalf("round %d: cumulative trace = %d", round, got)
		}
	}
}

// TestSubMicrosecondReorderWindow: a positive window under 1µs must not
// panic the jitter draw (rand.Int63n rejects 0).
func TestSubMicrosecondReorderWindow(t *testing.T) {
	n := New()
	n.UseScheduler(13)
	n.SetFaults(Faults{Reorder: 1, Duplicate: 1, ReorderWindow: 500 * time.Nanosecond})
	sink := &chainPeer{addr: "sink:1"}
	n.Add(sink)
	if err := n.Send(&Message{From: "x", To: "sink:1", Kind: "k"}); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRequestDropUnderFaults(t *testing.T) {
	n := New()
	n.UseScheduler(11)
	n.SetFaults(Faults{Drop: 1})
	s := &chainPeer{addr: "s:1"}
	n.Add(s)
	_, _, err := n.Request("c:1", "s:1", "fetch", xmltree.Elem("q"), 0)
	var ue ErrUnreachable
	if !errors.As(err, &ue) {
		t.Fatalf("dropped request = %v, want ErrUnreachable", err)
	}
}

func TestRunRequiresScheduler(t *testing.T) {
	n := New()
	if _, err := n.Run(); err == nil {
		t.Fatal("Run without UseScheduler must error")
	}
}

// TestScheduleFunc: driver callbacks fire at their virtual time, interleaved
// correctly with deliveries, and may send (they run without the network
// lock) — the hook large-world churn (joins, promotions) is built on.
func TestScheduleFunc(t *testing.T) {
	n := New()
	n.UseScheduler(5)
	sink := &chainPeer{addr: "sink:1"}
	n.Add(sink)

	var order []string
	n.ScheduleFunc(20*time.Millisecond, func() {
		order = append(order, "fn20")
		// Callbacks run without the scheduler lock: sending must work.
		if err := n.Send(&Message{From: "x", To: "sink:1", Kind: "from-fn"}); err != nil {
			t.Errorf("send from callback: %v", err)
		}
	})
	n.ScheduleFunc(5*time.Millisecond, func() { order = append(order, "fn5") })
	if err := n.Send(&Message{From: "x", To: "sink:1", Kind: "k", At: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	stats, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"fn5", "fn20"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("callback order = %v, want %v", order, want)
	}
	if stats.Delivered != 2 {
		t.Fatalf("stats.Delivered = %d, want the scheduled send and the callback's", stats.Delivered)
	}
	if stats.Events < 4 {
		t.Fatalf("stats.Events = %d, want >= 4 (2 fns + 2 deliveries)", stats.Events)
	}
	if stats.ByKind["k"] != 1 || stats.ByKind["from-fn"] != 1 {
		t.Fatalf("stats.ByKind = %v", stats.ByKind)
	}
}

// TestCompactTrace: with a trace key installed, the compact trace records
// key/from/to/kind per delivered and dropped message — the O(record) form
// the large-world invariants read instead of retaining message bodies.
func TestCompactTrace(t *testing.T) {
	n := New()
	n.UseScheduler(23)
	n.SetTraceKey(func(m *Message) string { return m.Kind })
	sink := &chainPeer{addr: "sink:1"}
	n.Add(sink)

	if err := n.Send(&Message{From: "a", To: "sink:1", Kind: "ok"}); err != nil {
		t.Fatal(err)
	}
	n.SetFaults(Faults{Drop: 1})
	if err := n.Send(&Message{From: "b", To: "sink:1", Kind: "doomed"}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}

	ct := n.CompactSchedTrace()
	if len(ct.Delivered) != 1 || ct.Delivered[0].Key != "ok" || ct.Delivered[0].To != "sink:1" {
		t.Fatalf("delivered trace = %+v", ct.Delivered)
	}
	if len(ct.Dropped) != 1 || ct.Dropped[0].Key != "doomed" {
		t.Fatalf("dropped trace = %+v", ct.Dropped)
	}
	// Compact mode replaces message retention entirely — the O(body) full
	// trace must stay empty, that is the point of the mode.
	full := n.SchedTrace()
	if len(full.Delivered) != 0 || len(full.Dropped) != 0 {
		t.Fatalf("full trace retained messages in compact mode: %d delivered, %d dropped",
			len(full.Delivered), len(full.Dropped))
	}
}
