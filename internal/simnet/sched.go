// Scheduled-delivery mode: a seeded, deterministic event-queue pump with
// fault injection.
//
// UseScheduler switches a Network from inline delivery to queued delivery:
// Send enqueues an event and Run pops events in (virtual time, sequence)
// order, invoking Deliver for each. Because ties break on the enqueue
// sequence number and all randomness comes from one seeded generator
// consumed in pump order, a run is a pure function of the seed and the
// submitted workload — any failing scenario replays exactly from its seed.
//
// Fault model, layered on the pump:
//
//   - Drop/Duplicate/Reorder: per-link probabilities (Faults). A dropped
//     message vanishes in transit (the sender saw a successful Send); a
//     duplicated one is delivered twice; a reordered one suffers extra
//     random latency so later messages can overtake it.
//   - Crash/restart: ScheduleCrash marks a peer down for a virtual-time
//     window via control events in the same queue. Messages arriving during
//     the window are lost (recorded in the trace); sends initiated while
//     the peer is down fail with ErrUnreachable, the refused-connection
//     analog the fallback routing in peers reacts to.
//   - Partitions: Network.Partition (simnet.go) cuts link groups for a
//     window; in scheduled mode in-flight messages crossing a cut that
//     formed after they were sent are lost at delivery time.
//
// Everything a fault removes is recorded: the Trace distinguishes messages
// dropped in transit from messages lost to a crash or partition at delivery
// time, so harnesses can prove no message disappeared silently.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/xmltree"
)

// Faults are per-link, per-message fault-injection probabilities (each in
// [0,1]), applied by the scheduler when a message is sent.
type Faults struct {
	// Drop loses the message in transit. The sender is not told.
	Drop float64
	// Duplicate delivers the message a second time, ReorderWindow-jittered.
	Duplicate float64
	// Reorder adds up to ReorderWindow of extra latency to the message, so
	// messages sent later can overtake it.
	Reorder float64
	// ReorderWindow bounds the extra latency of reordered and duplicated
	// messages. Zero defaults to 75ms.
	ReorderWindow time.Duration
}

// event is one scheduled occurrence: a message delivery or a control action
// (crash, restart, or a driver callback).
type event struct {
	at  time.Duration
	seq uint64
	msg *Message         // delivery event when non-nil
	ctl func(n *Network) // control event; runs with n.mu held
	fn  func()           // driver callback; runs WITHOUT n.mu (may Send)
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// scheduler holds the queued-mode state. All fields are guarded by the
// owning Network's mu.
type scheduler struct {
	rng      *rand.Rand
	queue    eventQueue
	seq      uint64
	defaults Faults
	links    map[string]Faults // per-link overrides, keyed by unordered pair
	running  bool
	// crashed counts overlapping crash windows per address, so one window's
	// restart cannot revive a peer still inside another window (or one that
	// crashed with no restart).
	crashed map[string]int
	// droppedMark/lostMark are the trace lengths when the previous Run
	// finished, so RunStats can report per-round counts (drops happen at
	// send time, which may precede the Run call) while the trace stays
	// cumulative.
	droppedMark, lostMark int

	delivered []*Message
	dropped   []*Message
	lost      []*Message

	// traceKey, when set, switches the trace to compact mode: instead of
	// retaining every *Message (body and all) until the harness reads
	// SchedTrace, only a TraceRec per message is kept. Large chaos worlds
	// need this — 10³ peers' worth of retained bodies is the difference
	// between a sweep that fits in memory and one that does not.
	traceKey   func(*Message) string
	deliveredC []TraceRec
	droppedC   []TraceRec
	lostC      []TraceRec
}

// UseScheduler switches the network to scheduled delivery, seeding the fault
// generator. Call it once, before any Send; the experiments keep the inline
// default, which this mode leaves byte-identical.
func (n *Network) UseScheduler(seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sched = &scheduler{
		rng:     rand.New(rand.NewSource(seed)),
		links:   map[string]Faults{},
		crashed: map[string]int{},
	}
}

// SetFaults sets the default fault probabilities for every link.
func (n *Network) SetFaults(f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mustSchedLocked("SetFaults").defaults = f
}

// SetLinkFaults overrides the fault probabilities for the unordered link
// (a, b).
func (n *Network) SetLinkFaults(a, b string, f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mustSchedLocked("SetLinkFaults").links[linkKey(a, b)] = f
}

// ScheduleCrash makes the peer at addr crash (become unreachable) at virtual
// time from and restart at until. Pass until <= from for a crash with no
// restart. The transitions are control events in the delivery queue, so they
// interleave deterministically with message traffic; overlapping windows for
// the same address are counted, and the peer restarts only when every window
// that took it down has ended.
func (n *Network) ScheduleCrash(addr string, from, until time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.mustSchedLocked("ScheduleCrash")
	s.pushLocked(&event{at: from, ctl: func(n *Network) {
		s.crashed[addr]++
		n.down[addr] = true
		// The crash severs every connection the peer held: link pricing
		// restarts from setup for traffic after the restart.
		n.severLinks(addr)
	}})
	if until > from {
		s.pushLocked(&event{at: until, ctl: func(n *Network) {
			s.crashed[addr]--
			if s.crashed[addr] <= 0 {
				n.down[addr] = false
			}
		}})
	}
}

// ScheduleFunc runs fn at virtual time at, interleaved deterministically
// with message traffic like any other control event. Unlike crash/restart
// transitions, fn runs WITHOUT the network lock held, so it may create
// peers, send messages, or push registrations — this is the hook mid-run
// churn (peer joins, replica promotion) drives through. fn runs on the Run
// goroutine; the single-pumped determinism contract is unchanged.
func (n *Network) ScheduleFunc(at time.Duration, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mustSchedLocked("ScheduleFunc").pushLocked(&event{at: at, fn: fn})
}

// SetTraceKey switches the scheduler to compact tracing: each delivered,
// dropped or lost message is recorded as a TraceRec carrying key(msg) and
// the routing envelope, and the message itself (body included) is released
// to the collector. SchedTrace returns nothing in this mode; read
// CompactSchedTrace instead. Set it right after UseScheduler, before any
// traffic.
func (n *Network) SetTraceKey(key func(*Message) string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mustSchedLocked("SetTraceKey").traceKey = key
}

func (s *scheduler) traceDroppedLocked(msg *Message) {
	if s.traceKey != nil {
		s.droppedC = append(s.droppedC, TraceRec{Key: s.traceKey(msg), From: msg.From, To: msg.To, Kind: msg.Kind})
		return
	}
	s.dropped = append(s.dropped, msg)
}

func (s *scheduler) traceLostLocked(msg *Message) {
	if s.traceKey != nil {
		s.lostC = append(s.lostC, TraceRec{Key: s.traceKey(msg), From: msg.From, To: msg.To, Kind: msg.Kind})
		return
	}
	s.lost = append(s.lost, msg)
}

func (s *scheduler) traceDeliveredLocked(msg *Message) {
	if s.traceKey != nil {
		s.deliveredC = append(s.deliveredC, TraceRec{Key: s.traceKey(msg), From: msg.From, To: msg.To, Kind: msg.Kind})
		return
	}
	s.delivered = append(s.delivered, msg)
}

func (n *Network) mustSchedLocked(op string) *scheduler {
	if n.sched == nil {
		panic("simnet: " + op + " requires UseScheduler")
	}
	return n.sched
}

func linkKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

func (s *scheduler) faultsLocked(a, b string) Faults {
	if f, ok := s.links[linkKey(a, b)]; ok {
		return f
	}
	return s.defaults
}

func (s *scheduler) pushLocked(ev *event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.queue, ev)
}

// jitterLocked draws extra latency in [0, window), quantized to whole
// microseconds: provenance marshals virtual time at microsecond granularity,
// so sub-microsecond delivery times would not survive a serialization round
// trip (and would break signature verification over re-parsed trails).
// Windows under 1µs draw from a single-microsecond range rather than
// panicking in Int63n.
func (s *scheduler) jitterLocked(window time.Duration) time.Duration {
	us := int64(window / time.Microsecond)
	if us < 1 {
		us = 1
	}
	return time.Duration(s.rng.Int63n(us)) * time.Microsecond
}

// enqueueSendLocked applies send-side faults and enqueues the delivery.
// Reachability (down peers, partitions) was already checked by Send, which
// also ran the body through the wire codec: wireBody is the decoded frame
// the destination (and a duplicated delivery) will see; the trace keeps it
// too, so fault attribution reads exactly what was on the wire.
func (s *scheduler) enqueueSendLocked(n *Network, msg *Message, wireBody *xmltree.Node, transit time.Duration, size int) error {
	f := s.faultsLocked(msg.From, msg.To)
	window := f.ReorderWindow
	if window <= 0 {
		window = 75 * time.Millisecond
	}
	n.account([2]string{msg.From, msg.To}, msg.Kind, size, false)
	if f.Drop > 0 && s.rng.Float64() < f.Drop {
		s.traceDroppedLocked(msg)
		return nil
	}
	at := msg.At + transit
	if f.Reorder > 0 && s.rng.Float64() < f.Reorder {
		at += s.jitterLocked(window)
	}
	deliver := func(at time.Duration) *Message {
		return &Message{
			From: msg.From, To: msg.To, Kind: msg.Kind, Body: wireBody,
			At: at, Hops: msg.Hops + 1,
		}
	}
	s.pushLocked(&event{at: at, msg: deliver(at)})
	if f.Duplicate > 0 && s.rng.Float64() < f.Duplicate {
		// The duplicate rides the already-open link: frame cost, no setup.
		n.account([2]string{msg.From, msg.To}, msg.Kind, size, false)
		dupAt := msg.At + transit + s.jitterLocked(window)
		s.pushLocked(&event{at: dupAt, msg: deliver(dupAt)})
	}
	return nil
}

// dropRequestLocked decides whether a synchronous request is lost in
// transit; the dropped request is traced with a body-less placeholder.
func (s *scheduler) dropRequestLocked(from, to, kind string, at time.Duration) bool {
	f := s.faultsLocked(from, to)
	if f.Drop > 0 && s.rng.Float64() < f.Drop {
		s.traceDroppedLocked(&Message{From: from, To: to, Kind: kind, At: at})
		return true
	}
	return false
}

// RunStats summarizes one scheduling round: deliveries made during the Run
// call, messages removed by faults since the previous Run finished (a drop
// is recorded at send time, which may precede the call; SchedTrace, by
// contrast, is cumulative), and the errors Deliver handlers returned (in
// delivery order).
type RunStats struct {
	Delivered int
	Dropped   int
	Lost      int
	// Events counts every event the pump popped, deliveries and control
	// events alike — the raw event volume of the round.
	Events int
	// ByKind batches the round's deliveries per message kind, so a harness
	// can report e.g. plan traffic vs registration churn without retaining
	// per-message traces.
	ByKind map[string]int
	Errors []error
}

// maxRunEvents bounds one Run; exceeding it means a runaway loop the
// depth guard did not catch (e.g. a handler that re-submits forever).
const maxRunEvents = 1 << 20

// Run pumps the event queue to exhaustion: events pop in (virtual time,
// sequence) order and deliveries invoke the destination's Deliver inline,
// which may enqueue further sends. A destination that is down, partitioned
// away or unregistered at delivery time loses the message (recorded in the
// trace). Deliver errors are collected, not fatal — a stuck plan must not
// stop the rest of the network.
//
// Run returns when the queue is empty. It must not be called concurrently
// with itself; handlers run on the calling goroutine.
func (n *Network) Run() (RunStats, error) {
	n.mu.Lock()
	s := n.sched
	if s == nil {
		n.mu.Unlock()
		return RunStats{}, fmt.Errorf("simnet: Run requires UseScheduler")
	}
	if s.running {
		n.mu.Unlock()
		return RunStats{}, fmt.Errorf("simnet: concurrent Run")
	}
	s.running = true
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		s.running = false
		n.mu.Unlock()
	}()

	stats := RunStats{ByKind: map[string]int{}}
	for {
		n.mu.Lock()
		if len(s.queue) == 0 {
			dropped := len(s.dropped) + len(s.droppedC)
			lost := len(s.lost) + len(s.lostC)
			stats.Dropped = dropped - s.droppedMark
			stats.Lost = lost - s.lostMark
			s.droppedMark = dropped
			s.lostMark = lost
			n.mu.Unlock()
			return stats, nil
		}
		ev := heap.Pop(&s.queue).(*event)
		stats.Events++
		if stats.Events > maxRunEvents {
			n.mu.Unlock()
			return stats, fmt.Errorf("simnet: scheduler exceeded %d events; runaway loop?", maxRunEvents)
		}
		if ev.ctl != nil {
			ev.ctl(n)
			n.mu.Unlock()
			continue
		}
		if ev.fn != nil {
			n.mu.Unlock()
			ev.fn()
			continue
		}
		msg := ev.msg
		p := n.peers[msg.To]
		if p == nil || n.down[msg.To] || n.blockedLocked(msg.From, msg.To, msg.At) {
			s.traceLostLocked(msg)
			n.mu.Unlock()
			continue
		}
		s.traceDeliveredLocked(msg)
		n.mu.Unlock()

		stats.Delivered++
		stats.ByKind[msg.Kind]++
		if err := p.Deliver(n, msg); err != nil {
			stats.Errors = append(stats.Errors, err)
		}
	}
}

// Trace is the scheduler's fault/delivery record: what arrived, what was
// dropped in transit, and what was lost at delivery time (destination
// crashed, partitioned away or unknown).
type Trace struct {
	Delivered []*Message
	Dropped   []*Message
	Lost      []*Message
}

// SchedTrace returns a copy of the scheduler's trace. Message pointers are
// shared with the run; treat bodies as read-only. In compact mode
// (SetTraceKey) the slices are empty — read CompactSchedTrace instead.
func (n *Network) SchedTrace() Trace {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.mustSchedLocked("SchedTrace")
	return Trace{
		Delivered: append([]*Message(nil), s.delivered...),
		Dropped:   append([]*Message(nil), s.dropped...),
		Lost:      append([]*Message(nil), s.lost...),
	}
}

// TraceRec is one compact trace record: the routing envelope plus the key
// SetTraceKey extracted from the message before it was released.
type TraceRec struct {
	Key      string
	From, To string
	Kind     string
}

// CompactTrace mirrors Trace for compact mode (SetTraceKey).
type CompactTrace struct {
	Delivered []TraceRec
	Dropped   []TraceRec
	Lost      []TraceRec
}

// CompactSchedTrace returns a copy of the compact trace accumulated since
// SetTraceKey was set.
func (n *Network) CompactSchedTrace() CompactTrace {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.mustSchedLocked("CompactSchedTrace")
	return CompactTrace{
		Delivered: append([]TraceRec(nil), s.deliveredC...),
		Dropped:   append([]TraceRec(nil), s.droppedC...),
		Lost:      append([]TraceRec(nil), s.lostC...),
	}
}
