package blobstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

func item(i int) *xmltree.Node {
	return xmltree.MustParse(fmt.Sprintf("<sale><cd>Album %02d</cd><price>%d</price></sale>", i, 3+i))
}

func TestFingerprintStableAcrossForms(t *testing.T) {
	// Same content, three provenances: built mutable, built and frozen,
	// decoded from the wire. All must fingerprint identically.
	mutable := item(1)
	frozen := item(1).Freeze()
	decoded, err := xmltree.DecodeString(frozen.String())
	if err != nil {
		t.Fatal(err)
	}
	fpM, sizeM := Fingerprint(mutable)
	fpF, sizeF := Fingerprint(frozen)
	fpD, _ := Fingerprint(decoded)
	if fpM != fpF || fpF != fpD {
		t.Fatalf("fingerprints diverge: mutable %s frozen %s decoded %s", fpM, fpF, fpD)
	}
	if sizeM != sizeF || sizeM != len(frozen.String()) {
		t.Fatalf("sizes diverge: %d vs %d", sizeM, sizeF)
	}
	if other, _ := Fingerprint(item(2)); other == fpM {
		t.Fatal("distinct content collided")
	}
}

func TestFPWireForm(t *testing.T) {
	fp, _ := Fingerprint(item(7))
	s := fp.String()
	if len(s) != 22 {
		t.Fatalf("wire form %q: want 22 chars", s)
	}
	back, ok := ParseFP(s)
	if !ok || back != fp {
		t.Fatalf("round trip failed: %q", s)
	}
	for _, bad := range []string{"", "abc", s[:21], s + "A", "!!!!!!!!!!!!!!!!!!!!!!"} {
		if _, ok := ParseFP(bad); ok {
			t.Errorf("ParseFP(%q) accepted", bad)
		}
	}
}

func TestInternDedupsAndRefcounts(t *testing.T) {
	s := New()
	a, fpA := s.Intern(item(1))
	b, fpB := s.Intern(item(1)) // same content, distinct tree
	if fpA != fpB {
		t.Fatal("same content, different fingerprints")
	}
	if a != b {
		t.Fatal("second intern did not return the canonical tree")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Interns != 2 {
		t.Fatalf("stats after dedup: %+v", st)
	}
	if st.LogicalBytes != 2*st.Bytes {
		t.Fatalf("logical %d vs resident %d: want 2x", st.LogicalBytes, st.Bytes)
	}
	if st.DedupRatio() != 2 {
		t.Fatalf("dedup ratio %v, want 2", st.DedupRatio())
	}

	// Two references: one release keeps it resident, the second frees it.
	s.Release(fpA)
	if !s.Contains(fpA) {
		t.Fatal("released below refcount, entry gone early")
	}
	s.Release(fpA)
	if s.Contains(fpA) {
		t.Fatal("entry survived final release")
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Released != 1 {
		t.Fatalf("stats after free: %+v", st)
	}
	// The alias handed out earlier is still a valid frozen tree.
	if a.String() == "" || !a.Frozen() {
		t.Fatal("alias invalidated by release")
	}
	// Releasing a non-resident fingerprint is a no-op.
	s.Release(fpA)
}

func TestCanonicalizeNeverOwns(t *testing.T) {
	s := New()
	_, fp := s.Intern(item(3))
	dup := item(3)
	if got := s.Canonicalize(dup); got == dup {
		t.Fatal("resident content not canonicalized")
	}
	miss := item(4)
	if got := s.Canonicalize(miss); got != miss {
		t.Fatal("miss should return the input")
	}
	if s.Len() != 1 {
		t.Fatal("Canonicalize created an entry")
	}
	// Canonicalize took no reference: one release frees the entry.
	s.Release(fp)
	if s.Len() != 0 {
		t.Fatal("Canonicalize leaked a reference")
	}
}

func TestRetain(t *testing.T) {
	s := New()
	_, fp := s.Intern(item(5))
	if !s.Retain(fp) {
		t.Fatal("Retain on resident entry failed")
	}
	s.Release(fp)
	s.Release(fp)
	if s.Contains(fp) {
		t.Fatal("refcount accounting broken")
	}
	if s.Retain(fp) {
		t.Fatal("Retain on freed entry succeeded")
	}
}

// TestConcurrentInternRelease drives interleaved intern/release/get from
// many goroutines over a small content set, so `go test -race` exercises
// the acceptance requirement directly.
func TestConcurrentInternRelease(t *testing.T) {
	s := New()
	const goroutines = 8
	const rounds = 400
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n, fp := s.Intern(item(r % 5))
				if _, ok := s.Get(fp); !ok {
					t.Error("interned entry not resident")
					return
				}
				if got, _ := Fingerprint(n); got != fp {
					t.Error("canonical node fingerprint mismatch")
					return
				}
				s.Canonicalize(item((r + g) % 5))
				s.Release(fp)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("%d entries leaked", s.Len())
	}
}
