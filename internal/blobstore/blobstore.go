// Package blobstore is a content-addressed store of frozen payload
// subtrees: each entry is keyed by a fingerprint of its canonical XML
// serialization, so any number of holders of the same bytes — collection
// installs, replication snapshots, result caches, in-flight duplicates —
// share one immutable tree.
//
// The store piggybacks on the freeze/COW ownership model (see TESTING.md):
// Freeze memoizes a subtree's canonical serialization on the node, so
// fingerprinting a frozen payload is a single hash pass over bytes already
// in hand, and an interned entry can be aliased lock-free from any number
// of goroutines forever.
//
// Reference counts govern store residency only, never node lifetime: a
// released entry leaves the store (it stops being servable by fingerprint
// and stops counting toward Stats), but every alias handed out earlier
// stays valid — frozen nodes are garbage-collected like any other Go value.
// Owners that pin entries (a peer's collections, its per-link taught sets)
// call Intern/Retain and pair each with a Release; readers that only want
// dedup against whatever happens to be resident call Canonicalize, which
// never takes ownership.
package blobstore

import (
	"crypto/sha256"
	"encoding/base64"
	"sync"

	"repro/internal/xmltree"
)

// FP is a content fingerprint: SHA-256 of the canonical serialization,
// truncated to 16 bytes. 128 bits keeps accidental collision probability
// negligible at any plausible store size while the wire form (unpadded
// base64url, 22 bytes) stays cheaper than almost any payload it replaces.
type FP [16]byte

// String renders the fingerprint in its wire form: unpadded base64url, the
// same alphabet the visited-section fingerprints use.
func (fp FP) String() string { return base64.RawURLEncoding.EncodeToString(fp[:]) }

// ParseFP parses the wire form back into a fingerprint.
func ParseFP(s string) (FP, bool) {
	var fp FP
	if base64.RawURLEncoding.DecodedLen(len(s)) != len(fp) {
		return fp, false
	}
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil || len(b) != len(fp) {
		return fp, false
	}
	copy(fp[:], b)
	return fp, true
}

// Fingerprint computes a node's fingerprint and the length of its canonical
// serialization. Frozen subtrees hash their memoized serialization (no
// re-walk); mutable ones pay one canonical serialization.
func Fingerprint(n *xmltree.Node) (FP, int) {
	s, ok := n.FrozenSerialization()
	if !ok {
		s = n.String()
	}
	var fp FP
	sum := sha256.Sum256([]byte(s))
	copy(fp[:], sum[:])
	return fp, len(s)
}

// Stats is a snapshot of a store's counters. Bytes is the resident unique
// canonical bytes; LogicalBytes accumulates the canonical size of every
// Intern/Canonicalize call that found or created an entry — the bytes the
// callers would collectively hold without dedup. DedupRatio is their
// quotient.
type Stats struct {
	Entries      int
	Bytes        int64
	LogicalBytes int64
	Interns      uint64 // Intern calls
	Hits         uint64 // Intern/Canonicalize calls answered by an existing entry
	Released     uint64 // entries freed when their refcount reached zero
}

// DedupRatio reports logical bytes per resident byte (1.0 = no dedup yet).
// Resident bytes are measured at their peak-so-far denominator: entries
// released later do not inflate the ratio.
func (s Stats) DedupRatio() float64 {
	if s.Bytes <= 0 {
		return 1
	}
	return float64(s.LogicalBytes) / float64(s.Bytes)
}

type entry struct {
	node *xmltree.Node
	refs int
	size int
}

// Store is a refcounted fingerprint-keyed store of frozen subtrees. Safe
// for concurrent use. Each Store is independent (one per peer); there is no
// package-level mutable state.
type Store struct {
	mu      sync.Mutex
	entries map[FP]*entry
	stats   Stats
}

// New creates an empty store.
func New() *Store {
	return &Store{entries: map[FP]*entry{}}
}

// Intern adds the subtree to the store (freezing it if needed) and returns
// the canonical node for its content plus its fingerprint. A first intern
// stores n itself with one reference; interning content already resident
// bumps its refcount and returns the existing tree, so callers that retain
// the result alias one copy. Every Intern must be paired with a Release of
// the returned fingerprint when the caller stops holding the content.
func (s *Store) Intern(n *xmltree.Node) (*xmltree.Node, FP) {
	n.Freeze()
	fp, size := Fingerprint(n)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Interns++
	s.stats.LogicalBytes += int64(size)
	if e, ok := s.entries[fp]; ok {
		e.refs++
		s.stats.Hits++
		return e.node, fp
	}
	s.entries[fp] = &entry{node: n, refs: 1, size: size}
	s.stats.Entries++
	s.stats.Bytes += int64(size)
	return n, fp
}

// Canonicalize returns the resident canonical tree for n's content when the
// store already holds it, and n itself otherwise. It never creates entries
// and never changes refcounts — dedup against current residents with no
// ownership obligation (prepared-plan cache freight uses it: cache eviction
// then needs no release bookkeeping). n is frozen either way, since the
// caller is about to retain whatever comes back.
func (s *Store) Canonicalize(n *xmltree.Node) *xmltree.Node {
	n.Freeze()
	fp, size := Fingerprint(n)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[fp]; ok {
		s.stats.Hits++
		s.stats.LogicalBytes += int64(size)
		return e.node
	}
	return n
}

// Retain bumps the refcount of a resident entry, returning false when the
// fingerprint is not resident.
func (s *Store) Retain(fp FP) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[fp]
	if !ok {
		return false
	}
	e.refs++
	return true
}

// Release drops one reference; the entry leaves the store when its count
// reaches zero (aliases handed out earlier remain valid — refcounts govern
// residency, not node lifetime). Releasing a non-resident fingerprint is a
// no-op, so owners can release unconditionally on teardown.
func (s *Store) Release(fp FP) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[fp]
	if !ok {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(s.entries, fp)
		s.stats.Entries--
		s.stats.Bytes -= int64(e.size)
		s.stats.Released++
	}
}

// Get returns the resident tree for a fingerprint without touching its
// refcount — the read path for resolving a payload-by-reference section.
func (s *Store) Get(fp FP) (*xmltree.Node, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[fp]
	if !ok {
		return nil, false
	}
	return e.node, true
}

// Contains reports whether the fingerprint is resident.
func (s *Store) Contains(fp FP) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[fp]
	return ok
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
