package stats

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func genItems(n int, seed int64) []*xmltree.Node {
	r := rand.New(rand.NewSource(seed))
	out := make([]*xmltree.Node, n)
	for i := range out {
		out[i] = xmltree.MustParse(fmt.Sprintf(
			`<item><title>t%d</title><price>%d</price></item>`, r.Intn(50), r.Intn(100)))
	}
	return out
}

func TestCollect(t *testing.T) {
	items := genItems(200, 1)
	s := Collect(items, []string{"title"}, "price", 10)
	if s.Card != 200 {
		t.Fatalf("card = %d", s.Card)
	}
	if s.Distinct["title"] <= 0 || s.Distinct["title"] > 50 {
		t.Fatalf("distinct = %d", s.Distinct["title"])
	}
	if s.Hist == nil || s.Hist.Total() != 200 {
		t.Fatalf("hist total = %v", s.Hist)
	}
}

func TestCollectEmptyAndMissing(t *testing.T) {
	s := Collect(nil, []string{"title"}, "price", 10)
	if s.Card != 0 || s.Distinct["title"] != 0 || s.Hist != nil {
		t.Fatalf("empty collect = %+v", s)
	}
	// Items missing the histogram field are skipped.
	items := []*xmltree.Node{xmltree.MustParse(`<i><x>1</x></i>`)}
	s2 := Collect(items, nil, "price", 4)
	if s2.Hist != nil {
		t.Fatal("histogram over missing field must be nil")
	}
}

func TestDistinctRoundTrip(t *testing.T) {
	d := map[string]int{"title": 42, "seller/city": 7}
	enc := EncodeDistinct(d)
	back, err := DecodeDistinct(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back["title"] != 42 || back["seller/city"] != 7 {
		t.Fatalf("round trip = %v", back)
	}
	if _, err := DecodeDistinct("nocolon"); err == nil {
		t.Fatal("malformed distinct should error")
	}
	if _, err := DecodeDistinct("a:xx"); err == nil {
		t.Fatal("malformed count should error")
	}
	empty, err := DecodeDistinct("")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty decode = %v %v", empty, err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram("price", vals, 5)
	if h.Lo != 0 || h.Hi != 9 {
		t.Fatalf("range = [%g,%g]", h.Lo, h.Hi)
	}
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bucket %d = %d, want 2", i, c)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram("p", []float64{5, 5, 5}, 4)
	if h.Total() != 3 || h.Counts[0] != 3 {
		t.Fatalf("degenerate hist = %v", h.Counts)
	}
	if h.EstimateLE(5) != 3 || h.EstimateLE(4) != 0 {
		t.Fatalf("degenerate estimates: %d %d", h.EstimateLE(5), h.EstimateLE(4))
	}
}

func TestEstimateLE(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	h := NewHistogram("p", vals, 10)
	if got := h.EstimateLE(-1); got != 0 {
		t.Fatalf("below lo = %d", got)
	}
	if got := h.EstimateLE(1000); got != 100 {
		t.Fatalf("above hi = %d", got)
	}
	mid := h.EstimateLE(49.5)
	if mid < 40 || mid > 60 {
		t.Fatalf("mid estimate = %d, want ~50", mid)
	}
}

func TestHistogramRoundTrip(t *testing.T) {
	h := NewHistogram("price", []float64{1, 2, 3, 10, 20}, 4)
	enc := h.Encode()
	back, err := DecodeHistogram(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Path != h.Path || back.Lo != h.Lo || back.Hi != h.Hi || len(back.Counts) != len(h.Counts) {
		t.Fatalf("round trip = %+v", back)
	}
	for i := range h.Counts {
		if back.Counts[i] != h.Counts[i] {
			t.Fatalf("bucket %d mismatch", i)
		}
	}
	for _, bad := range []string{"x", "p;a;2;1|2", "p;1;b;1|2", "p;1;2;x|y"} {
		if _, err := DecodeHistogram(bad); err == nil {
			t.Errorf("DecodeHistogram(%q): want error", bad)
		}
	}
}

// Property: EstimateLE is monotone non-decreasing and bounded by Total.
func TestPropertyEstimateMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 100
		}
		h := NewHistogram("p", vals, 1+r.Intn(16))
		prev := 0
		for v := -10.0; v <= 110; v += 5 {
			e := h.EstimateLE(v)
			if e < prev || e > h.Total() {
				return false
			}
			prev = e
		}
		return prev == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram round trip preserves all fields.
func TestPropertyHistogramRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(r.Intn(1000))
		}
		h := NewHistogram("p", vals, 1+r.Intn(8))
		back, err := DecodeHistogram(h.Encode())
		if err != nil || back.Lo != h.Lo || back.Hi != h.Hi {
			return false
		}
		for i := range h.Counts {
			if back.Counts[i] != h.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
