// Package stats provides the statistics a server may attach to an MQP
// instead of evaluating a sub-plan (§5.1): cardinalities, distinct counts of
// a join column, and equi-width histograms. Annotations are encoded as
// compact strings so they fit the algebra package's key/value annotation
// model and survive XML round trips.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Summary captures the per-collection statistics a server publishes.
type Summary struct {
	// Card is the exact number of items.
	Card int
	// Distinct maps a field path to its distinct-value count.
	Distinct map[string]int
	// Hist holds an equi-width histogram over a numeric field.
	Hist *Histogram
}

// Collect computes a Summary for a collection: cardinality, distinct counts
// for the given key paths, and (when histPath is non-empty) a histogram of
// that numeric field with the given number of buckets.
func Collect(items []*xmltree.Node, keyPaths []string, histPath string, buckets int) Summary {
	s := Summary{Card: len(items), Distinct: map[string]int{}}
	for _, p := range keyPaths {
		seen := map[string]bool{}
		for _, it := range items {
			v := strings.TrimSpace(it.Value(p))
			if v != "" {
				seen[v] = true
			}
		}
		s.Distinct[p] = len(seen)
	}
	if histPath != "" && buckets > 0 {
		var vals []float64
		for _, it := range items {
			if f, err := it.Float(histPath); err == nil {
				vals = append(vals, f)
			}
		}
		if len(vals) > 0 {
			s.Hist = NewHistogram(histPath, vals, buckets)
		}
	}
	return s
}

// EncodeDistinct renders a distinct-count map in the "path:count,..." wire
// form used for the AnnotDistinct annotation; paths are sorted for
// determinism.
func EncodeDistinct(d map[string]int) string {
	paths := make([]string, 0, len(d))
	for p := range d {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	parts := make([]string, len(paths))
	for i, p := range paths {
		parts[i] = p + ":" + strconv.Itoa(d[p])
	}
	return strings.Join(parts, ",")
}

// DecodeDistinct parses the wire form produced by EncodeDistinct.
func DecodeDistinct(s string) (map[string]int, error) {
	out := map[string]int{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		i := strings.LastIndexByte(part, ':')
		if i < 0 {
			return nil, fmt.Errorf("stats: malformed distinct entry %q", part)
		}
		n, err := strconv.Atoi(part[i+1:])
		if err != nil {
			return nil, fmt.Errorf("stats: malformed distinct count in %q: %w", part, err)
		}
		out[part[:i]] = n
	}
	return out, nil
}

// Histogram is an equi-width histogram over a numeric field.
type Histogram struct {
	Path   string
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds an equi-width histogram of vals with the given number
// of buckets.
func NewHistogram(path string, vals []float64, buckets int) *Histogram {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	h := &Histogram{Path: path, Lo: lo, Hi: hi, Counts: make([]int, buckets)}
	for _, v := range vals {
		h.Counts[h.bucket(v)]++
	}
	return h
}

func (h *Histogram) bucket(v float64) int {
	if h.Hi == h.Lo {
		return 0
	}
	b := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// EstimateLE estimates how many observations are ≤ v, interpolating within
// the straddling bucket. Servers use it to predict a selection's output
// cardinality from an annotation without seeing the data.
func (h *Histogram) EstimateLE(v float64) int {
	if v < h.Lo {
		return 0
	}
	if v >= h.Hi {
		return h.Total()
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	total := 0.0
	for i, c := range h.Counts {
		bLo := h.Lo + float64(i)*width
		bHi := bLo + width
		switch {
		case v >= bHi:
			total += float64(c)
		case v > bLo:
			total += float64(c) * (v - bLo) / width
		}
	}
	return int(math.Round(total))
}

// Encode renders the histogram in the compact wire form
// "path;lo;hi;c0|c1|...". It is the value of the AnnotHistogram annotation.
func (h *Histogram) Encode() string {
	parts := make([]string, len(h.Counts))
	for i, c := range h.Counts {
		parts[i] = strconv.Itoa(c)
	}
	return fmt.Sprintf("%s;%g;%g;%s", h.Path, h.Lo, h.Hi, strings.Join(parts, "|"))
}

// DecodeHistogram parses the wire form produced by Encode.
func DecodeHistogram(s string) (*Histogram, error) {
	parts := strings.Split(s, ";")
	if len(parts) != 4 {
		return nil, fmt.Errorf("stats: malformed histogram %q", s)
	}
	lo, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, fmt.Errorf("stats: histogram lo: %w", err)
	}
	hi, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return nil, fmt.Errorf("stats: histogram hi: %w", err)
	}
	countStrs := strings.Split(parts[3], "|")
	counts := make([]int, len(countStrs))
	for i, cs := range countStrs {
		c, err := strconv.Atoi(cs)
		if err != nil {
			return nil, fmt.Errorf("stats: histogram bucket %d: %w", i, err)
		}
		counts[i] = c
	}
	return &Histogram{Path: parts[0], Lo: lo, Hi: hi, Counts: counts}, nil
}
