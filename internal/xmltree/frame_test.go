package xmltree

import (
	"bytes"
	"strings"
	"testing"
)

// frameDocs is a spread of document shapes: mutable shells, frozen payloads,
// escaping in text and attributes, empty elements, deep nesting.
var frameDocs = []string{
	`<a/>`,
	`<a b="1"/>`,
	`<a b="x&amp;y" c="q&quot;r"><t>x &lt; y &gt; z</t><e/></a>`,
	`<mqp id="q1" target="h:9020"><plan><union><data><item><title>Disintegration</title><price>9.5</price></item></data>` +
		`<url href="far:9020" path="/data[id=7]"/></union></plan><provenance algo="hmac-sha256"><visit at="1000" server="a:1" sig="AAAA"/></provenance></mqp>`,
	`<r><a><b><c><d>deep</d></c></b></a></r>`,
}

func buildMutable(t *testing.T, s string) *Node {
	t.Helper()
	n, err := ParseString(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return n
}

// TestFrameEncoderMatchesAppendTo is the frame-equivalence invariant at the
// xmltree layer: for mutable, frozen, and decoder-born trees the streamed
// bytes must equal the staged serialization exactly.
func TestFrameEncoderMatchesAppendTo(t *testing.T) {
	for _, s := range frameDocs {
		variants := map[string]*Node{
			"mutable": buildMutable(t, s),
			"frozen":  buildMutable(t, s).Freeze(),
		}
		if d, err := DecodeString(s); err == nil {
			variants["decoded"] = d
		}
		for kind, n := range variants {
			want := n.String()
			e := GetFrameEncoder()
			e.Node(n)
			if got := e.String(); got != want {
				t.Errorf("%s %q: streamed %q != staged %q", kind, s, got, want)
			}
			if e.Len() != len(want) {
				t.Errorf("%s %q: Len %d != %d", kind, s, e.Len(), len(want))
			}
			var buf bytes.Buffer
			if _, err := e.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if buf.String() != want {
				t.Errorf("%s %q: WriteTo %q != %q", kind, s, buf.String(), want)
			}
			e.Release()
		}
	}
}

// TestFrameEncoderMixedSegments checks the raw/attr/text primitives compose
// with zero-copy subtree segments across chunk boundaries.
func TestFrameEncoderMixedSegments(t *testing.T) {
	big := "<data>" + strings.Repeat("<item><title>xyzzy</title></item>", 200) + "</data>"
	payload, err := DecodeString(big)
	if err != nil {
		t.Fatal(err)
	}
	if payload.memoStr != big {
		t.Fatalf("decoded payload has no clean-span memo")
	}
	e := GetFrameEncoder()
	defer e.Release()
	e.Raw("<mqp")
	e.Attr("id", `q"1`)
	e.RawByte('>')
	e.Node(payload)
	e.Raw("<note>")
	e.Text("a<b")
	e.Raw("</note></mqp>")
	want := `<mqp id="q&quot;1">` + big + `<note>a&lt;b</note></mqp>`
	if got := e.String(); got != want {
		t.Fatalf("streamed %q != %q", got, want)
	}
	// The payload must have landed as its own segment, aliasing the memo —
	// not a copy through scratch.
	found := false
	for _, seg := range e.Segments() {
		if len(seg) == len(big) && &seg[0] == unsafeStringData(big) {
			found = true
		}
	}
	if !found {
		t.Fatalf("large frozen payload was copied instead of aliased")
	}
}

// TestFrameEncoderReuse makes sure a pooled encoder starts clean after big
// and small frames alternate.
func TestFrameEncoderReuse(t *testing.T) {
	e := GetFrameEncoder()
	defer e.Release()
	e.Raw(strings.Repeat("x", 3*frameChunkSize))
	if got := e.Len(); got != 3*frameChunkSize {
		t.Fatalf("Len %d", got)
	}
	e.Reset()
	if e.Len() != 0 || len(e.Segments()) != 0 {
		t.Fatalf("Reset left state behind")
	}
	e.Raw("<a/>")
	if got := e.String(); got != "<a/>" {
		t.Fatalf("after reuse: %q", got)
	}
}

// TestDecodeCleanSpanMemo: canonical input spans become serialization memos;
// every deviation from canonical form must leave the memo unset while the
// serialization itself stays correct (the differential fuzz enforces the
// latter globally; these are the targeted regressions).
func TestDecodeCleanSpanMemo(t *testing.T) {
	clean := []string{
		`<a/>`,
		`<a b="1" c="2"/>`,
		`<a>text</a>`,
		`<mqp id="q"><plan><data><i>1</i></data></plan></mqp>`,
		`<v s="a:1">x</v>`,
	}
	for _, s := range clean {
		n, err := DecodeString(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if n.memoStr != s {
			t.Errorf("%q: clean span not memoized (memoStr %q)", s, n.memoStr)
		}
	}
	dirty := []string{
		`<a ></a>`,             // tag whitespace + non-empty form of empty element
		`<a></a>`,              // canonical form is <a/>
		`<a b='1'/>`,           // single-quoted value
		`<a z="1" b="2"/>`,     // unsorted attributes
		`<a>&#65;</a>`,         // entity expansion
		`<a><!--c-->x</a>`,     // comment dropped
		`<a><![CDATA[x]]></a>`, // CDATA re-escaped
		`<a>  </a>`,            // whitespace-only content dropped
		`<p><a></a>></p>`,      // size-neutral composite: dirty child + text escape
		`<x:a xmlns:x="u"/>`,   // prefix stripped
	}
	for _, s := range dirty {
		n, err := DecodeString(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if n.memoStr != "" {
			t.Errorf("%q: non-canonical span wrongly memoized as %q", s, n.memoStr)
		}
		ref, err := ParseString(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if got, want := n.String(), ref.String(); got != want {
			t.Errorf("%q: serialization %q != reference %q", s, got, want)
		}
	}
	// Subtree memos inside a dirty document: the clean child keeps its span.
	n, err := DecodeString(`<p><!--x--><a b="1">t</a></p>`)
	if err != nil {
		t.Fatal(err)
	}
	if n.memoStr != "" {
		t.Fatalf("root with comment should not memoize")
	}
	if c := n.Child("a"); c == nil || c.memoStr != `<a b="1">t</a>` {
		t.Fatalf("clean child span lost: %+v", c)
	}
}
