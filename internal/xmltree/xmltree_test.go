package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	n, err := ParseString(`<item id="1"><name>armchair</name><price>25</price></item>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if n.Name != "item" {
		t.Fatalf("root name = %q, want item", n.Name)
	}
	if v, ok := n.Attr("id"); !ok || v != "1" {
		t.Fatalf("id attr = %q,%v", v, ok)
	}
	if got := n.Value("name"); got != "armchair" {
		t.Fatalf("name = %q", got)
	}
	if got := n.Value("price"); got != "25" {
		t.Fatalf("price = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<a><b></a>`,
		`<a></a><b></b>`,
		`</a>`,
		`<a>`,
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestWhitespaceDropped(t *testing.T) {
	n := MustParse("<a>\n  <b>x</b>\n  <c/>\n</a>")
	if len(n.Children) != 2 {
		t.Fatalf("children = %d, want 2 (whitespace text dropped)", len(n.Children))
	}
}

func TestMixedTextPreserved(t *testing.T) {
	n := MustParse(`<p>hello <b>world</b> bye</p>`)
	if got := n.InnerText(); got != "hello world bye" {
		t.Fatalf("InnerText = %q", got)
	}
}

func TestRoundTrip(t *testing.T) {
	src := `<plan target="1.2.3.4:9020"><select pred="price &lt; 10"><union><url href="http://a/"/><url href="http://b/"/></union></select></plan>`
	n := MustParse(src)
	out := n.String()
	n2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !Equal(n, n2) {
		t.Fatalf("round trip mismatch:\n%s\n%s", n.Indent(), n2.Indent())
	}
}

func TestCanonicalAttrOrder(t *testing.T) {
	a := &Node{Name: "x"}
	a.SetAttr("b", "2").SetAttr("a", "1")
	b := &Node{Name: "x"}
	b.SetAttr("a", "1").SetAttr("b", "2")
	if a.String() != b.String() {
		t.Fatalf("canonical forms differ: %q vs %q", a.String(), b.String())
	}
	if !strings.HasPrefix(a.String(), `<x a="1" b="2"`) {
		t.Fatalf("attrs not sorted: %q", a.String())
	}
}

func TestEscaping(t *testing.T) {
	n := Elem("v", TextNode(`a<b&c>"d"`))
	n.SetAttr("q", `x"y<z`)
	rt, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("reparse escaped: %v", err)
	}
	if !Equal(n, rt) {
		t.Fatalf("escape round trip mismatch: %s vs %s", n, rt)
	}
}

func TestEqual(t *testing.T) {
	a := MustParse(`<a x="1" y="2"><b/>t<c/></a>`)
	b := MustParse(`<a y="2" x="1"><b/>t<c/></a>`)
	if !Equal(a, b) {
		t.Fatal("attribute order should not affect equality")
	}
	c := MustParse(`<a x="1" y="2"><c/>t<b/></a>`)
	if Equal(a, c) {
		t.Fatal("child order must affect equality")
	}
	if !Equal(nil, nil) {
		t.Fatal("nil == nil")
	}
	if Equal(a, nil) || Equal(nil, a) {
		t.Fatal("nil != non-nil")
	}
}

func TestClone(t *testing.T) {
	a := MustParse(`<a x="1"><b>t</b></a>`)
	c := a.Clone()
	if !Equal(a, c) {
		t.Fatal("clone not equal")
	}
	c.Child("b").Children[0].Text = "changed"
	if Equal(a, c) {
		t.Fatal("clone shares storage with original")
	}
}

func TestFindAttributePredicate(t *testing.T) {
	n := MustParse(`<data><coll id="244"><x/></coll><coll id="245"><y/></coll></data>`)
	m := n.Find("coll[id=245]")
	if m == nil || m.Child("y") == nil {
		t.Fatalf("predicate lookup failed: %v", m)
	}
	if n.Find("coll[id=999]") != nil {
		t.Fatal("expected no match for id=999")
	}
}

func TestFindPositional(t *testing.T) {
	n := MustParse(`<l><i>a</i><i>b</i><i>c</i></l>`)
	if got := n.Find("i[2]").InnerText(); got != "b" {
		t.Fatalf("i[2] = %q", got)
	}
	if n.Find("i[4]") != nil {
		t.Fatal("i[4] should not match")
	}
}

func TestFindWildcardAndAttrAccess(t *testing.T) {
	n := MustParse(`<item><price currency="USD">10</price></item>`)
	if got := n.Value("price/@currency"); got != "USD" {
		t.Fatalf("@currency = %q", got)
	}
	all := n.FindAll("*")
	if len(all) != 1 || all[0].Name != "price" {
		t.Fatalf("wildcard children = %v", all)
	}
}

func TestFindNested(t *testing.T) {
	n := MustParse(`<item><seller><loc><city>Portland</city></loc></seller></item>`)
	if got := n.Value("seller/loc/city"); got != "Portland" {
		t.Fatalf("nested value = %q", got)
	}
}

func TestFloatInt(t *testing.T) {
	n := MustParse(`<i><p> 9.5 </p><q>7</q></i>`)
	f, err := n.Float("p")
	if err != nil || f != 9.5 {
		t.Fatalf("Float = %v, %v", f, err)
	}
	i, err := n.Int("q")
	if err != nil || i != 7 {
		t.Fatalf("Int = %v, %v", i, err)
	}
	if _, err := n.Float("missing"); err == nil {
		t.Fatal("Float on missing path should error")
	}
	if _, err := n.Int("p"); err == nil {
		t.Fatal("Int on float text should error")
	}
}

func TestByteSizeMatchesString(t *testing.T) {
	n := MustParse(`<a x="1"><b>text &amp; more</b><c/></a>`)
	if n.ByteSize() != len(n.String()) {
		t.Fatalf("ByteSize %d != len(String) %d", n.ByteSize(), len(n.String()))
	}
}

func TestEscapeExactOutput(t *testing.T) {
	// Every escapable character, in text and in attribute values. Text keeps
	// literal quotes; attribute values escape them.
	n := Elem("v", TextNode(`a&b<c>d"e`))
	n.SetAttr("q", `x&y<z>w"u`)
	want := `<v q="x&amp;y&lt;z&gt;w&quot;u">a&amp;b&lt;c&gt;d"e</v>`
	if got := n.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	rt, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("reparse escaped: %v", err)
	}
	if !Equal(n, rt) {
		t.Fatalf("escape round trip mismatch: %s vs %s", n, rt)
	}
	if n.ByteSize() != len(want) {
		t.Fatalf("ByteSize %d != %d", n.ByteSize(), len(want))
	}
}

func TestByteSizeInvariant(t *testing.T) {
	cases := []*Node{
		TextNode(""),
		TextNode("plain"),
		TextNode(`all & the < escapes > plus "quotes"`),
		Elem("empty"),
		MustParse(`<a x="1" b="&quot;2&quot;"><b>t &amp; u</b><c/></a>`),
		serializeFixture(),
	}
	for i, n := range cases {
		if n.ByteSize() != len(n.String()) {
			t.Errorf("case %d: ByteSize %d != len(String) %d", i, n.ByteSize(), len(n.String()))
		}
		// Second call exercises the memo-hit path.
		if n.ByteSize() != len(n.String()) {
			t.Errorf("case %d: memoized ByteSize diverged", i)
		}
	}
}

func TestByteSizeCacheInvalidation(t *testing.T) {
	n := Elem("root", ElemText("k", "v"))
	before := n.ByteSize()
	if before != len(n.String()) {
		t.Fatalf("cold size wrong: %d != %d", before, len(n.String()))
	}

	// Mutation through each mutator must invalidate the cached size.
	n.SetAttr("attr", `has "quotes" & <angles>`)
	if got := n.ByteSize(); got != len(n.String()) {
		t.Fatalf("after SetAttr: ByteSize %d != len(String) %d", got, len(n.String()))
	}
	n.Add(ElemText("extra", "child & text"))
	if got := n.ByteSize(); got != len(n.String()) {
		t.Fatalf("after Add: ByteSize %d != len(String) %d", got, len(n.String()))
	}
	// Mutating a child (not the cached root) must also invalidate the
	// root's memo — the generation scheme is package-wide.
	n.Child("k").SetAttr("deep", "1")
	if got := n.ByteSize(); got != len(n.String()) {
		t.Fatalf("after child SetAttr: ByteSize %d != len(String) %d", got, len(n.String()))
	}
	// Direct field writes bypass the mutators; Invalidate restores coherence.
	n.Child("k").Children[0].Text = "a much longer text value > before"
	Invalidate()
	if got := n.ByteSize(); got != len(n.String()) {
		t.Fatalf("after Invalidate: ByteSize %d != len(String) %d", got, len(n.String()))
	}
}

// serializeFixture mirrors the wire shape the simnet layer prices on every
// message: nested elements, unsorted attributes, escapable text.
func serializeFixture() *Node {
	root := Elem("mqp").SetAttr("target", "client:9020").SetAttr("id", "fx")
	for i := 0; i < 5; i++ {
		root.Add(Elem("item",
			ElemText("title", `Track <live> & "remastered"`),
			ElemText("price", "9.99")).SetAttr("zip", "97201").SetAttr("condition", "good>fair"))
	}
	return root
}

func TestPropertyByteSizeMatchesString(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 3)
		if r.Intn(2) == 0 {
			n.SetAttr("esc", `a&b<c>"`)
			n.Add(TextNode(`t&<>"`))
		}
		return n.ByteSize() == len(n.String())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChildHelpers(t *testing.T) {
	n := MustParse(`<a><b>1</b><c/><b>2</b></a>`)
	if got := len(n.ChildrenNamed("b")); got != 2 {
		t.Fatalf("ChildrenNamed(b) = %d", got)
	}
	if got := len(n.Elements()); got != 3 {
		t.Fatalf("Elements = %d", got)
	}
	if n.Child("zzz") != nil {
		t.Fatal("Child(zzz) should be nil")
	}
	if n.AttrDefault("k", "d") != "d" {
		t.Fatal("AttrDefault miss")
	}
	n.SetAttr("k", "v")
	if n.AttrDefault("k", "d") != "v" {
		t.Fatal("AttrDefault hit")
	}
}

func TestBadPaths(t *testing.T) {
	n := MustParse(`<a><b/></a>`)
	for _, p := range []string{"", "b//c", "b[", "b[0]", "b[-1]", "[x=1]"} {
		if got := n.FindAll(p); got != nil {
			t.Errorf("FindAll(%q) = %v, want nil", p, got)
		}
	}
}

// randomTree builds a small random tree for property tests.
func randomTree(r *rand.Rand, depth int) *Node {
	names := []string{"item", "price", "name", "seller", "desc", "q"}
	n := Elem(names[r.Intn(len(names))])
	if r.Intn(3) == 0 {
		n.SetAttr("id", string(rune('a'+r.Intn(26))))
	}
	if depth > 0 {
		k := r.Intn(4)
		for i := 0; i < k; i++ {
			// Avoid adjacent text nodes: they coalesce on reparse, which is
			// a legitimate canonicalization, not a round-trip failure.
			prevText := len(n.Children) > 0 && n.Children[len(n.Children)-1].IsText()
			if !prevText && r.Intn(4) == 0 {
				n.Add(TextNode("t" + string(rune('0'+r.Intn(10)))))
			} else {
				n.Add(randomTree(r, depth-1))
			}
		}
	}
	return n
}

func TestPropertyRoundTrip(t *testing.T) {
	// Serialization followed by parsing is the identity on canonical trees
	// (modulo whitespace-only text, which randomTree never produces).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 3)
		rt, err := ParseString(n.String())
		if err != nil {
			return false
		}
		return Equal(n, rt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 3)
		return Equal(n, n.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	src := strings.Repeat(`<item id="1"><name>armchair</name><price>25</price></item>`, 50)
	doc := "<items>" + src + "</items>"
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	src := strings.Repeat(`<item id="1"><name>armchair</name><price>25</price></item>`, 50)
	n := MustParse("<items>" + src + "</items>")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = n.String()
	}
}
