package xmltree

import (
	"io"
	"sync"
	"testing"
)

// freezeFixture builds a small document exercising attrs, text, escaping
// and nesting.
func freezeFixture() *Node {
	item := Elem("item",
		ElemText("title", `Track <live> & "remastered"`),
		ElemText("price", "10.99"))
	item.SetAttr("zip", "97201")
	item.SetAttr("condition", "good>fair")
	return Elem("data", item, ElemText("note", "a & b"))
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: want panic on frozen node, got none", what)
		}
	}()
	fn()
}

func TestFreezeMemoizesAndSurvivesInvalidate(t *testing.T) {
	n := freezeFixture()
	want := len(n.String())
	n.Freeze()
	if !n.Frozen() {
		t.Fatal("Freeze did not mark the node frozen")
	}
	if !n.Children[0].Frozen() {
		t.Fatal("Freeze did not reach descendants")
	}
	if got := n.ByteSize(); got != want {
		t.Fatalf("frozen ByteSize = %d, want %d", got, want)
	}
	// The frozen memo must outlive package-wide invalidation.
	Invalidate()
	if got := n.ByteSize(); got != want {
		t.Fatalf("frozen ByteSize after Invalidate = %d, want %d", got, want)
	}
	if got := n.String(); len(got) != want {
		t.Fatalf("frozen String length = %d, want %d", len(got), want)
	}
}

func TestFrozenMutationPanics(t *testing.T) {
	n := freezeFixture().Freeze()
	mustPanic(t, "SetAttr on root", func() { n.SetAttr("x", "1") })
	mustPanic(t, "Add on root", func() { n.Add(Elem("new")) })
	mustPanic(t, "SetAttr on descendant", func() { n.Children[0].SetAttr("x", "1") })
	mustPanic(t, "Add on descendant", func() { n.Children[0].Add(TextNode("t")) })
}

func TestShareAliasesFrozenCopiesMutable(t *testing.T) {
	m := freezeFixture()
	if m.Share() == m {
		t.Fatal("Share of a mutable node must copy")
	}
	if !Equal(m.Share(), m) {
		t.Fatal("Share copy is not structurally equal")
	}
	f := freezeFixture().Freeze()
	if f.Share() != f {
		t.Fatal("Share of a frozen node must alias")
	}
}

func TestCloneOfFrozenIsMutable(t *testing.T) {
	f := freezeFixture().Freeze()
	before := f.String()
	c := f.Clone()
	if c.Frozen() || c.Children[0].Frozen() {
		t.Fatal("Clone of a frozen tree must be mutable throughout")
	}
	c.SetAttr("added", "1") // must not panic
	c.Children[0].Add(ElemText("seller", "x&co"))
	if got := c.ByteSize(); got != len(c.String()) {
		t.Fatalf("mutated clone ByteSize = %d, want %d", got, len(c.String()))
	}
	if f.String() != before {
		t.Fatal("mutating the clone changed the frozen original")
	}
}

func TestCloneShallowCOWAppend(t *testing.T) {
	f := Elem("provenance", Elem("visit"), Elem("visit")).Freeze()
	cp := f.CloneShallow()
	if cp.Frozen() {
		t.Fatal("CloneShallow must be mutable")
	}
	for i := range f.Children {
		if cp.Children[i] != f.Children[i] {
			t.Fatal("CloneShallow must alias children")
		}
	}
	cp.Add(Elem("visit")) // must not panic
	cp.Freeze()
	if len(f.Children) != 2 || len(cp.Children) != 3 {
		t.Fatalf("children = %d/%d, want 2/3", len(f.Children), len(cp.Children))
	}
	if cp.ByteSize() != len(cp.String()) {
		t.Fatal("COW-extended element size mismatch")
	}
	if f.String() != `<provenance><visit/><visit/></provenance>` {
		t.Fatalf("original changed: %s", f.String())
	}
}

// TestFrozenConcurrentReads exercises the advertised contract that a frozen
// subtree needs no synchronization: String, WriteTo, ByteSize and Share from
// many goroutines. Meaningful under -race (make ci).
func TestFrozenConcurrentReads(t *testing.T) {
	f := freezeFixture().Freeze()
	want := f.ByteSize()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if f.ByteSize() != want {
					panic("size mismatch")
				}
				if len(f.String()) != want {
					panic("string mismatch")
				}
				if n, _ := f.WriteTo(io.Discard); int(n) != want {
					panic("write mismatch")
				}
				// A fresh document aliasing the frozen subtree sizes itself
				// by reading the frozen memos.
				doc := Elem("wrap", f.Share())
				if doc.ByteSize() != want+len("<wrap>")+len("</wrap>") {
					panic("wrapped size mismatch")
				}
			}
		}()
	}
	wg.Wait()
}
