// Streaming frame encoder.
//
// FrameEncoder assembles the canonical serialization of a document as a list
// of wire segments (net.Buffers) instead of one staged byte string. Frozen
// subtrees whose canonical bytes are already memoized (Freeze, or the
// decoder's clean-span memo) contribute their memoStr as a zero-copy segment;
// only live markup — mutable shells, attribute escaping, element framing —
// is materialized, into stable pooled scratch chunks. The whole frame then
// reaches the socket as one vectored write, so forwarding a plan whose
// payloads crossed the wire before costs the kernel a gather over bytes the
// encoder never touched.
//
// Segment stability: scratch chunks are never reallocated once a segment
// aliases them (a full chunk is sealed and a fresh one started), and memoStr
// segments are immutable by the freeze contract, so the net.Buffers view
// stays valid until Release.
package xmltree

import (
	"io"
	"net"
	"sync"
	"unsafe"
)

// frameChunkSize is the scratch chunk granularity. Live markup between two
// frozen payloads is typically small (operator shells, attribute lists), so
// one chunk usually holds all of it.
const frameChunkSize = 4096

// frameInlineMax is the largest memoized serialization that is copied into
// the current scratch chunk instead of becoming its own segment. Tiny
// segments would bloat the iovec list past what a gather write saves; the
// memcpy win only matters for payload-sized strings.
const frameInlineMax = 512

// FrameEncoder streams a canonical serialization into wire segments. The
// zero value is NOT ready; use NewFrameEncoder or GetFrameEncoder.
type FrameEncoder struct {
	segs   net.Buffers // completed segments, in wire order
	chunks [][]byte    // scratch chunks backing the live segments
	cur    []byte      // current scratch chunk (len = bytes used)
	mark   int         // start of the open live segment within cur
	n      int         // total bytes staged
	out    net.Buffers // reusable gather list for WriteTo (WriteTo consumes it)
}

// NewFrameEncoder returns an empty encoder.
func NewFrameEncoder() *FrameEncoder {
	return &FrameEncoder{cur: make([]byte, 0, frameChunkSize)}
}

// frameEncPool recycles encoders (and their scratch chunks) across sends.
var frameEncPool = sync.Pool{New: func() interface{} { return NewFrameEncoder() }}

// GetFrameEncoder returns a reset encoder from the pool; hand it back with
// Release once the frame has been written.
func GetFrameEncoder() *FrameEncoder {
	return frameEncPool.Get().(*FrameEncoder)
}

// Release resets the encoder and returns it to the pool. Any Segments view
// taken from it becomes invalid.
func (e *FrameEncoder) Release() {
	e.Reset()
	frameEncPool.Put(e)
}

// Reset discards all staged segments, keeping one scratch chunk for reuse.
// Segment headers are cleared so a pooled encoder does not pin memoized
// strings (and the frames they alias) between sends.
func (e *FrameEncoder) Reset() {
	clear(e.segs)
	e.segs = e.segs[:0]
	clear(e.chunks)
	e.chunks = e.chunks[:0]
	// Keep the current chunk for the next frame unless a pathological
	// document grew it past the retention cap.
	if cap(e.cur) > scratchMax {
		e.cur = make([]byte, 0, frameChunkSize)
	} else {
		e.cur = e.cur[:0]
	}
	e.mark = 0
	e.n = 0
	clear(e.out)
	e.out = e.out[:0]
}

// seal closes the open live segment, if any, pushing it onto the segment
// list. The bytes stay in place; only the boundary moves.
func (e *FrameEncoder) seal() {
	if len(e.cur) > e.mark {
		e.segs = append(e.segs, e.cur[e.mark:len(e.cur):len(e.cur)])
		e.mark = len(e.cur)
	}
}

// grow makes room for min more live bytes, sealing the current chunk and
// starting a fresh one when it is full. Started chunks are never reallocated,
// so previously sealed segments remain valid.
func (e *FrameEncoder) grow(min int) {
	if cap(e.cur)-len(e.cur) >= min {
		return
	}
	e.seal()
	e.chunks = append(e.chunks, e.cur)
	size := frameChunkSize
	if min > size {
		size = min
	}
	e.cur = make([]byte, 0, size)
	e.mark = 0
}

// Raw appends verbatim canonical bytes (markup the caller constructs).
func (e *FrameEncoder) Raw(s string) {
	e.grow(len(s))
	e.cur = append(e.cur, s...)
	e.n += len(s)
}

// RawByte appends one verbatim byte.
func (e *FrameEncoder) RawByte(b byte) {
	e.grow(1)
	e.cur = append(e.cur, b)
	e.n++
}

// Text appends s escaped as canonical text content.
func (e *FrameEncoder) Text(s string) { e.escaped(s, false) }

// Attr appends one canonical attribute: space, name, ="escaped value".
func (e *FrameEncoder) Attr(name, value string) {
	e.grow(len(name) + len(value) + 4)
	e.cur = append(e.cur, ' ')
	e.cur = append(e.cur, name...)
	e.cur = append(e.cur, '=', '"')
	e.n += len(name) + 3
	e.escaped(value, true)
	e.RawByte('"')
}

// escaped mirrors appendEscaped over the chunked scratch.
func (e *FrameEncoder) escaped(s string, quot bool) {
	extra := escapeExtra(s, quot)
	e.grow(len(s) + extra)
	if extra == 0 {
		e.cur = append(e.cur, s...)
		e.n += len(s)
		return
	}
	start := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\r':
			esc = "&#xD;"
		case '"':
			if !quot {
				continue
			}
			esc = "&quot;"
		case '\t':
			if !quot {
				continue
			}
			esc = "&#x9;"
		case '\n':
			if !quot {
				continue
			}
			esc = "&#xA;"
		default:
			continue
		}
		e.cur = append(e.cur, s[start:i]...)
		e.cur = append(e.cur, esc...)
		start = i + 1
	}
	e.cur = append(e.cur, s[start:]...)
	e.n += len(s) + extra
}

// Node appends the canonical serialization of a subtree. A frozen node with
// a memoized serialization becomes a zero-copy segment (or an inline copy
// when it is small); everything else is walked live, exactly mirroring
// appendTo.
func (e *FrameEncoder) Node(n *Node) {
	if n.memoStr != "" && n.memoGen == frozenGen {
		if len(n.memoStr) <= frameInlineMax {
			e.Raw(n.memoStr)
			return
		}
		e.seal()
		e.segs = append(e.segs, strBytes(n.memoStr))
		e.n += len(n.memoStr)
		return
	}
	if n.IsText() {
		e.escaped(n.Text, false)
		return
	}
	e.RawByte('<')
	e.Raw(n.Name)
	switch {
	case len(n.Attrs) <= 1 || attrsSorted(n.Attrs):
		for _, a := range n.Attrs {
			e.Attr(a.Name, a.Value)
		}
	case len(n.Attrs) <= 64:
		// Sorted emission via min-scan with a bitmask, as appendTo does.
		var emitted uint64
		for range n.Attrs {
			min := -1
			for i, a := range n.Attrs {
				if emitted&(1<<uint(i)) != 0 {
					continue
				}
				if min < 0 || a.Name < n.Attrs[min].Name {
					min = i
				}
			}
			emitted |= 1 << uint(min)
			e.Attr(n.Attrs[min].Name, n.Attrs[min].Value)
		}
	default:
		// Large attribute lists never occur on the wire vocabulary; fall
		// back to the staged serializer for exact byte parity.
		e.Raw(n.String()[1+len(n.Name):])
		return
	}
	if len(n.Children) == 0 {
		e.Raw("/>")
		return
	}
	e.RawByte('>')
	for _, c := range n.Children {
		e.Node(c)
	}
	e.Raw("</")
	e.Raw(n.Name)
	e.RawByte('>')
}

// strBytes views a string as a read-only byte slice without copying. The
// gather write only reads from it; the freeze contract keeps it immutable.
func strBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// Len returns the total staged byte count.
func (e *FrameEncoder) Len() int { return e.n }

// Segments returns the staged frame as a gather list. The view aliases the
// encoder's scratch and memoized strings: it is valid until the next Reset
// or Release, must not be written through, and must not be passed to
// net.Buffers.WriteTo directly (WriteTo consumes its receiver — copy first,
// as WriteTo here does).
func (e *FrameEncoder) Segments() net.Buffers {
	e.seal()
	return e.segs
}

// WriteTo writes the staged frame to w. When w supports gather writes (a
// *net.TCPConn), the whole frame — header-less — leaves in one writev.
func (e *FrameEncoder) WriteTo(w io.Writer) (int64, error) {
	e.seal()
	e.out = append(e.out[:0], e.segs...)
	return e.out.WriteTo(w)
}

// AppendString appends the staged bytes to dst; a test and fixture helper
// that leaves the encoder intact.
func (e *FrameEncoder) AppendString(dst []byte) []byte {
	e.seal()
	for _, seg := range e.segs {
		dst = append(dst, seg...)
	}
	return dst
}

// String returns the staged bytes as one string (tests and fixtures).
func (e *FrameEncoder) String() string {
	return string(e.AppendString(make([]byte, 0, e.n)))
}
