package xmltree

import (
	"strings"
	"sync"
	"testing"
)

// decodeCases are inputs with known-interesting tokenizer behavior; each is
// checked for Decode/Parse agreement (tree-equal or both reject).
var decodeCases = []string{
	``,
	`<a/>`,
	`<a></a>`,
	`<a b="1" a="2">text<b/> tail </a>`,
	`<mqp id="q" target="c:1"><plan><data><item zip="97201"><price>5</price></item></data></plan></mqp>`,
	`<a>&amp;&lt;&gt;&apos;&quot;</a>`,
	`<a>&#65;&#x41;&#x00041;</a>`,
	`<a b="&#38;#60;"/>`,
	`<a>pre<![CDATA[mid <raw> & bits]]>post</a>`,
	`<a> <![CDATA[ ]]> </a>`,
	`<a>x<!-- comment -->y</a>`,
	`<a><!-- c -- d --></a>`,
	`<a><!-- x ---></a>`,
	`<a>]]></a>`,
	`<a b="]]>"/>`,
	`<a>&unknown;</a>`,
	`<a>&#0;</a>`,
	`<a>&#x1F;</a>`,
	`<a>&#xD800;</a>`,
	`<a>&#xFFFE;</a>`,
	`<a>&#x110000;</a>`,
	`<a>&#x41</a>`,
	`<a>&amp</a>`,
	`<a>&#;</a>`,
	`<a>& b</a>`,
	"<a>x\r\ny\rz</a>",
	"<a b=\"x\ty\nz\rw\"/>",
	"<a b=\"x&#x9;y&#xA;z&#xD;w\"/>",
	"<a>x&#xD;\ny</a>",
	"<a><![CDATA[x\r\ny\rz]]></a>",
	`<?xml version="1.0"?><a/>`,
	`<?xml version="2.0"?><a/>`,
	`<?xml encoding="latin-1"?><a/>`,
	`<?xml version='1.0' encoding='UTF-8'?><a/>`,
	`<a><?php echo ?></a>`,
	`<!DOCTYPE a [<!ENTITY e "v">]><a/>`,
	`<!DOCTYPE a <!-- c --> ><a/>`,
	`<!DOCTYPE a "unclosed><a/>`,
	`<a><!X></a>`,
	`<a><!></a>`,
	`<a:b:c/>`,
	`<:a/>`,
	`<a:/>`,
	`<1a/>`,
	`<ä/>`,
	`<a b=x/>`,
	`<a b></a>`,
	`<a  b = "1" />`,
	`<a/><a/>`,
	`<a></b>`,
	`<a></a >`,
	`<a></ a>`,
	`<a b="1" b="2"/>`,
	`<a xmlns="u" xmlns:p="v" p:c="1"/>`,
	`<a x:xmlns="v"/>`,
	`<a xmlns:x="u" x:xmlns="v" b="1"/>`,
	`<a xmlns:p="u"><b p:q="1"/></a>`,
	`<a><b xmlns:p="xmlns" p:q="1"/></a>`,
	`<a xml:lang="en"/>`,
	`<a p:q="1"/>`,
	`<a -- b="1"/>`,
	`<a/ >`,
	`<a><b/></a>trailing`,
	`<a></a><!-- after -->`,
	"\ufeff<a/>",
	`<a b="c<d"/>`,
	`<![CDATA[x]]>`,
	`<a><![CDATA[x]]y]]></a>`,
	`<a><![CDATA[]]]]><![CDATA[>]]></a>`,
	`<a><![CDAT[x]]></a>`,
	`<a`,
	`<a b="`,
	`<a/><b c="`,
	`<a><!-- c `,
	`<a href="http://x:1/" path="/data[id=245]"><annotations><annot k="card" v="10"/></annotations></a>`,
	"<a\n b\n=\n'1'/>",
	`<a>x<!-- c -->y<![CDATA[z]]>w</a>`,
	"<a>\x01</a>",
	"<a>\xff\xfe</a>",
	"<a><!-- \x01\xff --></a>",
	"<!DOCTYPE \x01\xff><a/>",
}

// TestDecodeMatchesParse pins the decoder to the reference implementation
// on the hand-picked corpus; FuzzDecodeEquivalence explores beyond it.
func TestDecodeMatchesParse(t *testing.T) {
	for _, s := range decodeCases {
		checkDecodeAgreement(t, s)
	}
}

func checkDecodeAgreement(t *testing.T, s string) {
	t.Helper()
	ref, refErr := ParseString(s)
	got, gotErr := DecodeString(s)
	if (refErr == nil) != (gotErr == nil) {
		t.Fatalf("accept/reject disagreement on %q:\n  Parse:  tree=%v err=%v\n  Decode: tree=%v err=%v",
			s, ref, refErr, got, gotErr)
	}
	if refErr != nil {
		return
	}
	if !Equal(ref, got) {
		t.Fatalf("tree disagreement on %q:\n  Parse:  %s\n  Decode: %s", s, ref, got)
	}
	// Canonical serializations must match byte for byte, and the decoded
	// tree must be frozen at birth with correct memoized sizes throughout.
	rs, gs := ref.String(), got.String()
	if rs != gs {
		t.Fatalf("serialization disagreement on %q:\n  Parse:  %q\n  Decode: %q", s, rs, gs)
	}
	assertBornFrozen(t, got, s)
}

func assertBornFrozen(t *testing.T, n *Node, input string) {
	t.Helper()
	if !n.Frozen() {
		t.Fatalf("decoded node <%s>%q not frozen at birth (input %q)", n.Name, n.Text, input)
	}
	if got, want := n.ByteSize(), len(n.String()); got != want {
		t.Fatalf("decoded node <%s> ByteSize = %d, want %d (input %q)", n.Name, got, want, input)
	}
	for _, c := range n.Children {
		assertBornFrozen(t, c, input)
	}
}

// TestDecodeFrozenMutationPanics verifies decoder output obeys the frozen
// contract: mutators panic rather than corrupting buffer-aliasing nodes.
func TestDecodeFrozenMutationPanics(t *testing.T) {
	n, err := DecodeString(`<a b="1"><c>x</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetAttr on decoded (frozen) node did not panic")
		}
	}()
	n.SetAttr("b", "2")
}

// TestDecodeZeroCopyAliasing pins the zero-copy property: attribute values
// and text runs that need no unescaping are substrings of the input, not
// copies, while escaped runs are materialized.
func TestDecodeZeroCopyAliasing(t *testing.T) {
	input := `<a name="plainvalue"><t>plain text run</t><e>esc&amp;aped</e></a>`
	n, err := DecodeString(input)
	if err != nil {
		t.Fatal(err)
	}
	aliases := func(sub string) bool {
		// A substring shares the input's backing array exactly when its
		// data pointer lies within the input's span.
		return strings.Contains(input, sub) && func() bool {
			off := strings.Index(input, sub)
			return input[off:off+len(sub)] == sub
		}()
	}
	v, _ := n.Attr("name")
	if v != "plainvalue" || !aliases(v) {
		t.Fatalf("attr value %q should alias input", v)
	}
	if txt := n.Child("t").InnerText(); txt != "plain text run" {
		t.Fatalf("text = %q", txt)
	}
	if txt := n.Child("e").InnerText(); txt != "esc&aped" {
		t.Fatalf("escaped text = %q", txt)
	}
}

// TestDecodeConcurrentFrozenReads drives concurrent readers over one
// decoded (buffer-aliasing, frozen) document; run under -race this pins
// the advertised lock-free sharing of decoder output.
func TestDecodeConcurrentFrozenReads(t *testing.T) {
	doc := `<mqp id="q1" target="c:1"><plan><data>` +
		strings.Repeat(`<item zip="97201"><title>T &amp; A</title><price>9.99</price></item>`, 20) +
		`</data></plan></mqp>`
	n, err := DecodeString(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := n.String()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if n.String() != want {
					t.Error("unstable serialization")
					return
				}
				if n.ByteSize() != len(want) {
					t.Error("unstable size")
					return
				}
				if n.Find("plan/data/item/title") == nil {
					t.Error("lost path match")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDecodeInterning verifies repeated names across separate decodes share
// one string, so decoded documents do not pin frames through their names.
func TestDecodeInterning(t *testing.T) {
	a, err := DecodeString(`<somename attrname="1"/>`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeString(`<somename attrname="2"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if unsafeStringData(a.Name) != unsafeStringData(b.Name) {
		t.Fatal("element names not interned across decodes")
	}
	if unsafeStringData(a.Attrs[0].Name) != unsafeStringData(b.Attrs[0].Name) {
		t.Fatal("attribute names not interned across decodes")
	}
}
