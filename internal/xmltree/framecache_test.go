package xmltree

import (
	"strings"
	"testing"
)

// TestFrameCacheHit: byte-identical canonical frames decode to the same
// frozen tree; distinct or non-canonical frames do not.
func TestFrameCacheHit(t *testing.T) {
	old := SetFrameCacheLimit(DefaultFrameCacheBytes)
	defer SetFrameCacheLimit(old)

	frame := `<mqp id="q"><plan><data><i>1</i></data></plan></mqp>`
	a, err := DecodeString(frame)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeString(strings.Clone(frame))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical canonical frames decoded to distinct trees")
	}

	// A non-canonical input must never be cached (its bytes are not the
	// tree's serialization), and must still decode correctly each time.
	loose := `<mqp id="q"><plan><data><i>1</i></data></plan><!--c--></mqp>`
	c, err := DecodeString(loose)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeString(strings.Clone(loose))
	if err != nil {
		t.Fatal(err)
	}
	if c == d {
		t.Fatalf("non-canonical frame was cached")
	}
	if !Equal(c, d) || !Equal(a, c) {
		t.Fatalf("trees diverge")
	}
}

// TestFrameCacheDisabled: limit 0 switches the cache off entirely.
func TestFrameCacheDisabled(t *testing.T) {
	old := SetFrameCacheLimit(0)
	defer SetFrameCacheLimit(old)
	frame := `<a><b>x</b></a>`
	x, _ := DecodeString(frame)
	y, _ := DecodeString(strings.Clone(frame))
	if x == y {
		t.Fatalf("cache served a hit while disabled")
	}
}

// TestFrameCacheEviction: the byte bound holds under FIFO eviction, and
// evicted frames simply decode fresh again.
func TestFrameCacheEviction(t *testing.T) {
	old := SetFrameCacheLimit(4096)
	defer SetFrameCacheLimit(old)
	pad := strings.Repeat("y", 900)
	var frames []string
	for _, id := range []string{"a", "b", "c", "d", "e", "f"} {
		frames = append(frames, `<d id="`+id+`">`+pad+`</d>`)
	}
	for _, f := range frames {
		if _, err := DecodeString(f); err != nil {
			t.Fatal(err)
		}
	}
	frameCache.mu.Lock()
	bytes, entries := frameCache.bytes, len(frameCache.m)
	frameCache.mu.Unlock()
	if bytes > 4096 {
		t.Fatalf("cache holds %d bytes, limit 4096", bytes)
	}
	if entries == 0 || entries >= len(frames) {
		t.Fatalf("expected partial retention, have %d of %d", entries, len(frames))
	}
	// The newest frame should be retained; the oldest evicted.
	last, _ := DecodeString(strings.Clone(frames[len(frames)-1]))
	again, _ := DecodeString(strings.Clone(frames[len(frames)-1]))
	if last != again {
		t.Fatalf("newest frame not retained")
	}
	// Oversized frames never enter.
	huge := `<h>` + strings.Repeat("z", 4096) + `</h>`
	u, _ := DecodeString(huge)
	v, _ := DecodeString(strings.Clone(huge))
	if u == v {
		t.Fatalf("oversized frame was cached")
	}
}
