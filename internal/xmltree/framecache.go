// Identical-frame decode cache.
//
// Peers re-decode byte-identical frames all the time: a forwarding fan-out
// serializes a plan once and every fallback candidate receives the same
// bytes, duplicated deliveries re-present a frame the receiver already
// parsed, and closed-loop clients resubmit equal documents. Because decoder
// output is born frozen, the tree built from one such frame can be handed to
// every later decode of the same bytes — aliasing immutable subtrees is the
// package's core ownership rule. The cache makes that reuse automatic: a
// decode whose input hashes to a known frame and byte-compares equal to it
// returns the memoized tree in ~hash+memcmp time instead of re-materializing
// hundreds of nodes.
//
// Only provably canonical frames are inserted (the root's clean span must
// cover the entire input, see finishSpan), so a hit is indistinguishable
// from a fresh decode up to node identity. Entries pin their frame bytes;
// the cache is bounded by total bytes with FIFO eviction, and hash
// collisions are resolved by the byte compare — a mismatch is just a miss.
package xmltree

import (
	"hash/maphash"
	"sync"
)

// DefaultFrameCacheBytes is the startup bound on decoded-frame bytes the
// cache may pin. SetFrameCacheLimit adjusts or disables it.
const DefaultFrameCacheBytes = 4 << 20

var frameCache = struct {
	mu    sync.Mutex
	seed  maphash.Seed
	m     map[uint64]*Node
	fifo  []uint64
	bytes int
	limit int
}{
	seed:  maphash.MakeSeed(),
	m:     map[uint64]*Node{},
	limit: DefaultFrameCacheBytes,
}

// SetFrameCacheLimit sets the byte bound of the identical-frame cache,
// flushes all current entries, and returns the previous bound. A limit of 0
// disables caching (benchmarks measuring the cold decode path use this).
func SetFrameCacheLimit(limit int) int {
	c := &frameCache
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.limit
	c.limit = limit
	clear(c.m)
	c.fifo = c.fifo[:0]
	c.bytes = 0
	return old
}

func frameCacheGet(s string) *Node {
	c := &frameCache
	if len(s) == 0 {
		return nil
	}
	h := maphash.String(c.seed, s)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit == 0 {
		return nil
	}
	if n, ok := c.m[h]; ok && n.memoStr == s {
		return n
	}
	return nil
}

func frameCachePut(s string, root *Node) {
	c := &frameCache
	h := maphash.String(c.seed, s)
	c.mu.Lock()
	defer c.mu.Unlock()
	// Oversized frames would evict everything for one entry's benefit.
	if len(s) == 0 || len(s) > c.limit/2 {
		return
	}
	if old, ok := c.m[h]; ok {
		if old.memoStr == s {
			return
		}
		// Hash collision: newest wins, reusing the existing FIFO slot.
		c.bytes += len(s) - len(old.memoStr)
		c.m[h] = root
		return
	}
	for c.bytes+len(s) > c.limit && len(c.fifo) > 0 {
		k := c.fifo[0]
		c.fifo = c.fifo[1:]
		if e, ok := c.m[k]; ok {
			c.bytes -= len(e.memoStr)
			delete(c.m, k)
		}
	}
	c.m[h] = root
	c.fifo = append(c.fifo, h)
	c.bytes += len(s)
}
