// Zero-copy receive-side decoder.
//
// Decode and DecodeString build an xmltree document directly from the wire
// buffer: element and attribute names are interned in a package-level table,
// and text runs and attribute values that need no unescaping alias the input
// instead of being copied. The produced subtree is **born frozen** — every
// node's canonical byte size is computed incrementally as its element closes
// and its memo generation is pinned to the frozen sentinel — so decoder
// output obeys the package ownership rule with no post-parse Freeze walk.
//
// Ownership: because decoded nodes alias the input, the buffer handed to
// Decode (or the string handed to DecodeString) must stay immutable for the
// life of any node produced from it. Strings are immutable by construction;
// a []byte frame is retained by reference and must never be written again.
//
// Compatibility: Decode is a behavioral mirror of Parse (the encoding/xml
// reference implementation kept above): on any input the two either produce
// structurally equal trees or both reject. FuzzDecodeEquivalence enforces
// the contract over the shared fuzz corpus. The mirrored quirks worth
// knowing: \r and \r\n in text and attribute values become \n while &#xD;
// survives; text runs merge across comments and CDATA boundaries;
// whitespace-only runs are dropped; "]]>" is an error outside CDATA;
// comments may not contain "--"; an <?xml?> declaration is validated for
// version and encoding; namespace prefixes are stripped from names, xmlns
// machinery is dropped, and a prefix bound to the URI "xmlns" hides its
// attributes exactly as encoding/xml's namespace translation does.
package xmltree

import (
	"encoding/xml"
	"errors"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unicode"
	"unicode/utf8"
	"unsafe"
)

// Decode parses one XML document from buf, aliasing buf's bytes for names,
// text, and attribute values wherever no unescaping is required. The caller
// must not modify buf afterwards: the returned subtree (frozen at birth)
// holds references into it for as long as any node is reachable.
func Decode(buf []byte) (*Node, error) {
	if len(buf) == 0 {
		return nil, errors.New("xmltree: decode: no root element")
	}
	return DecodeString(unsafe.String(unsafe.SliceData(buf), len(buf)))
}

// DecodeString parses one XML document from s with the same zero-copy,
// frozen-at-birth semantics as Decode; node strings are substrings of s.
//
// Byte-identical frames short-circuit through a bounded cache: when s is
// exactly the canonical serialization of a document decoded before, the
// previously built frozen tree is returned as-is (see framecache.go). The
// aliasing is safe precisely because decoder output is frozen — the tree is
// immutable no matter how many receive paths share it.
func DecodeString(s string) (*Node, error) {
	if root := frameCacheGet(s); root != nil {
		return root, nil
	}
	d := decPool.Get().(*decoder)
	d.s = s
	root, err := d.run()
	// The whole input is cacheable when the root's clean span covers every
	// byte of s: no declaration, no surrounding whitespace, canonical body.
	whole := err == nil && root.memoStr != "" && d.rootSpan[0] == 0 && d.rootSpan[1] == len(s)
	d.release()
	if whole {
		frameCachePut(s, root)
	}
	return root, err
}

// --- Name interning ----------------------------------------------------

// internMax bounds the intern table so adversarial inputs (fuzzing, hostile
// peers) cannot grow it without bound; past the cap names are still copied
// out of the buffer, just not remembered.
const internMax = 4096

// internTab is a copy-on-write map: reads are plain lock-free lookups (one
// per decoded name — the hottest lookup in the decoder), and the rare
// insertion of a new name clones the table under internMu.
var (
	internMu  sync.Mutex
	internTab atomic.Pointer[map[string]string]
)

func init() {
	// Seed with the wire vocabulary so steady-state decodes never clone:
	// plan structure, operator elements, their attributes, and the
	// provenance/visited sections.
	tab := make(map[string]string, 128)
	for _, s := range []string{
		"mqp", "plan", "original", "visited", "provenance", "visit",
		"data", "url", "urn", "select", "project", "join", "union", "or",
		"difference", "count", "topn", "display", "annotations", "annot",
		"id", "target", "href", "path", "name", "pred", "as", "fields",
		"leftkey", "rightkey", "leftname", "rightname", "n", "by", "order",
		"k", "v", "s", "fp", "budget", "b", "server", "action", "at",
		"resource", "sig", "stop", "hops", "item", "title", "price",
		"seller", "cd", "song", "artist", "zip", "condition", "staleness",
		"partial", "result", "register", "fetch", "export", "category",
		"categories", "collection", "statement", "area", "registration",
	} {
		tab[s] = s
	}
	internTab.Store(&tab)
}

// intern returns a stable copy of name. The argument may alias a decode
// buffer; the returned string never does, so interned names do not pin
// frames alive.
func intern(name string) string {
	if v, ok := (*internTab.Load())[name]; ok {
		return v
	}
	c := strings.Clone(name)
	internMu.Lock()
	defer internMu.Unlock()
	old := *internTab.Load()
	if v, ok := old[c]; ok {
		return v
	}
	if len(old) >= internMax {
		return c
	}
	tab := make(map[string]string, len(old)+1)
	for k, v := range old {
		tab[k] = v
	}
	tab[c] = c
	internTab.Store(&tab)
	return c
}

// --- Decoder state ------------------------------------------------------

// nodeChunkSize batches node and slice allocation: a decode allocates one
// []Node block per 64 nodes instead of one heap object per node, and child
// and attribute slices are carved from shared slabs the same way. Blocks are
// owned by the decoded trees once handed out; leftover block capacity is
// reused by the next decode from the pool.
const nodeChunkSize = 64

// scratchMax caps the pooled scratch/slab capacity retained between decodes
// so one pathological document does not pin large buffers in the pool.
const scratchMax = 1 << 16

type openElem struct {
	n       *Node
	rawName string // prefixed name as written, for end-tag matching
	kidMark int    // kidStk length when the element opened
	nsMark  int    // nsUndo length when the element opened

	// Clean-span tracking (see finishSpan): where the element's '<' sits in
	// the input, the transform counter at open, and whether the start tag
	// itself already deviated from canonical form.
	start    int
	mutsMark int
	dirty    bool
}

type nsUndo struct {
	prefix string
	old    string
	had    bool
}

type decoder struct {
	s    string
	pos  int
	root *Node

	open    []openElem
	kidStk  []*Node // flattened children of all open elements
	attrStk []Attr  // raw attributes of the element being parsed

	ns     map[string]string // live prefix -> URI bindings (xmlns tracking)
	nsUndo []nsUndo

	nodeChunk []Node
	nodeUsed  int
	kidChunk  []*Node
	kidUsed   int
	attrChunk []Attr
	attrUsed  int

	scratch []byte // unescape staging for values that cannot alias s
	// wsOnly reports whether the last scanText run was entirely whitespace
	// (strings.TrimSpace would empty it); computed during the validation
	// scan so addText never re-reads the run.
	wsOnly bool

	// muts counts byte-transforming events — entity expansion, \r rewriting,
	// CDATA sections, comments, processing instructions, directives, dropped
	// whitespace-only runs — since the decode started. An element whose
	// [open, close] window saw none of them is a candidate for clean-span
	// memoization (finishSpan).
	muts int
	// rootSpan is the input span [start, end) of the root element, for the
	// whole-frame decode cache.
	rootSpan [2]int
}

var decPool = sync.Pool{New: func() interface{} {
	return &decoder{ns: make(map[string]string)}
}}

func (d *decoder) release() {
	d.s = ""
	d.pos = 0
	d.root = nil
	clear(d.open)
	d.open = d.open[:0]
	clear(d.kidStk)
	d.kidStk = d.kidStk[:0]
	clear(d.attrStk)
	d.attrStk = d.attrStk[:0]
	clear(d.ns)
	clear(d.nsUndo)
	d.nsUndo = d.nsUndo[:0]
	if cap(d.scratch) > scratchMax {
		d.scratch = nil
	} else {
		d.scratch = d.scratch[:0]
	}
	d.muts = 0
	d.rootSpan = [2]int{}
	decPool.Put(d)
}

func (d *decoder) newNode() *Node {
	if d.nodeUsed == len(d.nodeChunk) {
		d.nodeChunk = make([]Node, nodeChunkSize)
		d.nodeUsed = 0
	}
	n := &d.nodeChunk[d.nodeUsed]
	d.nodeUsed++
	return n
}

func (d *decoder) kidSlice(kids []*Node) []*Node {
	n := len(kids)
	if n == 0 {
		return nil
	}
	if len(d.kidChunk)-d.kidUsed < n {
		size := nodeChunkSize
		if n > size {
			size = n
		}
		d.kidChunk = make([]*Node, size)
		d.kidUsed = 0
	}
	out := d.kidChunk[d.kidUsed : d.kidUsed+n : d.kidUsed+n]
	d.kidUsed += n
	copy(out, kids)
	return out
}

func (d *decoder) attrSlice(attrs []Attr) []Attr {
	n := len(attrs)
	if n == 0 {
		return nil
	}
	if len(d.attrChunk)-d.attrUsed < n {
		size := nodeChunkSize
		if n > size {
			size = n
		}
		d.attrChunk = make([]Attr, size)
		d.attrUsed = 0
	}
	out := d.attrChunk[d.attrUsed : d.attrUsed+n : d.attrUsed+n]
	d.attrUsed += n
	copy(out, attrs)
	return out
}

// --- Errors -------------------------------------------------------------

func (d *decoder) err(msg string) error {
	return errors.New("xmltree: decode: " + msg)
}

func (d *decoder) eof() error {
	return d.err("unexpected EOF")
}

// --- Main loop ----------------------------------------------------------

func (d *decoder) run() (*Node, error) {
	for d.pos < len(d.s) {
		if d.s[d.pos] != '<' {
			text, err := d.scanText(-1, false)
			if err != nil {
				return nil, err
			}
			d.addText(text)
			continue
		}
		d.pos++
		if d.pos == len(d.s) {
			return nil, d.eof()
		}
		var err error
		switch d.s[d.pos] {
		case '/':
			d.pos++
			err = d.endElement()
		case '?':
			d.pos++
			err = d.procInst()
		case '!':
			d.pos++
			err = d.bang()
		default:
			err = d.startElement()
		}
		if err != nil {
			return nil, err
		}
	}
	if len(d.open) > 0 {
		return nil, d.err("unterminated element <" + d.open[len(d.open)-1].n.Name + ">")
	}
	if d.root == nil {
		return nil, d.err("no root element")
	}
	return d.root, nil
}

// space skips XML whitespace inside markup.
func (d *decoder) space() {
	for d.pos < len(d.s) {
		switch d.s[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

// --- Names --------------------------------------------------------------

// isNameByte mirrors encoding/xml's single-byte name alphabet: names are
// delimited by any ASCII byte outside it, while all multi-byte characters
// are read and validated rune-wise afterwards.
func isNameByte(c byte) bool {
	return 'A' <= c && c <= 'Z' ||
		'a' <= c && c <= 'z' ||
		'0' <= c && c <= '9' ||
		c == '_' || c == ':' || c == '.' || c == '-'
}

// rawName reads one XML name (prefix included). It mirrors readName + the
// isName character-class check; names containing non-ASCII runes are settled
// by probing encoding/xml itself, so the exotic cases cannot drift.
func (d *decoder) rawName() (string, error) {
	s := d.s
	i := d.pos
	if i >= len(s) {
		return "", d.eof()
	}
	ascii := true
	start := i
	for i < len(s) {
		c := s[i]
		if c < utf8.RuneSelf {
			if !isNameByte(c) {
				break
			}
		} else {
			ascii = false
		}
		i++
	}
	if i == start {
		return "", d.err("expected name")
	}
	if i >= len(s) {
		// The byte after a name is read by the tokenizer before the name is
		// returned, so a name running into EOF is an unexpected-EOF error.
		return "", d.eof()
	}
	name := s[start:i]
	if ascii {
		// ASCII fast path of encoding/xml's name start class: letters,
		// underscore, or colon. Digits, '.' and '-' may only continue.
		if c := name[0]; !('A' <= c && c <= 'Z' || 'a' <= c && c <= 'z' || c == '_' || c == ':') {
			return "", d.err("invalid XML name: " + name)
		}
	} else if !exoticNameOK(name) {
		return "", d.err("invalid XML name: " + name)
	}
	d.pos = i
	return name, nil
}

// exoticNameOK validates a name containing non-ASCII bytes by asking the
// reference tokenizer, in the spirit of localNameOK. The probe is a
// processing instruction, not an element, because PI targets take the raw
// name character class with no namespace split — names with colons must
// stay valid here and be judged by splitName separately.
func exoticNameOK(name string) bool {
	dec := xml.NewDecoder(strings.NewReader("<?" + name + " ?>"))
	_, err := dec.Token()
	return err == nil
}

// splitName applies encoding/xml's namespace split: more than one colon is
// a tokenizer error; exactly one colon with non-empty halves splits into
// (prefix, local); a leading or trailing colon keeps the whole name as the
// local (which the localName check then rejects or the attr filter drops).
func splitName(raw string) (prefix, local string, ok bool) {
	c := strings.IndexByte(raw, ':')
	if c < 0 {
		return "", raw, true
	}
	if strings.IndexByte(raw[c+1:], ':') >= 0 {
		return "", "", false
	}
	if c == 0 || c == len(raw)-1 {
		return "", raw, true
	}
	return raw[:c], raw[c+1:], true
}

// --- Elements -----------------------------------------------------------

func (d *decoder) startElement() error {
	start := d.pos - 1 // the '<' consumed by run
	mutsMark := d.muts
	raw, err := d.rawName()
	if err != nil {
		return err
	}
	_, local, ok := splitName(raw)
	if !ok {
		return d.err("element name " + raw + " has multiple colons")
	}
	if !localNameOK(local) {
		return d.err("element name " + local + " invalid after dropping namespace prefix")
	}
	if len(d.open) == 0 && d.root != nil {
		return d.err("multiple root elements")
	}

	// dirty accumulates every way the start tag can deviate from canonical
	// form without the byte-size check noticing: a stripped name prefix,
	// markup whitespace that is not exactly one space per attribute, '='
	// padding, single-quoted values, dropped or reordered attributes. Clean
	// spans (finishSpan) must rule all of these out.
	dirty := raw != local

	attrMark := len(d.attrStk)
	nsMark := len(d.nsUndo)
	empty := false
	for {
		ws := d.pos
		d.space()
		if d.pos >= len(d.s) {
			return d.eof()
		}
		c := d.s[d.pos]
		if c == '/' {
			if d.pos != ws {
				dirty = true // canonical form has no space before "/>"
			}
			d.pos++
			if d.pos >= len(d.s) {
				return d.eof()
			}
			if d.s[d.pos] != '>' {
				return d.err("expected /> in element")
			}
			d.pos++
			empty = true
			break
		}
		if c == '>' {
			if d.pos != ws {
				dirty = true // no space before '>'
			}
			d.pos++
			break
		}
		if d.pos != ws+1 || d.s[ws] != ' ' {
			dirty = true // exactly one plain space precedes each attribute
		}
		araw, err := d.rawName()
		if err != nil {
			return err
		}
		eq := d.pos
		d.space()
		if d.pos >= len(d.s) {
			return d.eof()
		}
		if d.s[d.pos] != '=' {
			return d.err("attribute name without = in element")
		}
		if d.pos != eq {
			dirty = true // whitespace around '='
		}
		d.pos++
		vq := d.pos
		d.space()
		if d.pos >= len(d.s) {
			return d.eof()
		}
		q := d.s[d.pos]
		if q != '"' && q != '\'' {
			return d.err("unquoted or missing attribute value in element")
		}
		if d.pos != vq || q != '"' {
			dirty = true // '=' padding or single-quoted value
		}
		d.pos++
		val, err := d.scanText(int(q), false)
		if err != nil {
			return err
		}
		d.attrStk = append(d.attrStk, Attr{Name: araw, Value: val})
	}

	// Namespace-declaration pass, in document order, before any attribute
	// is filtered: later attributes of this element see earlier bindings.
	rawAttrs := d.attrStk[attrMark:]
	for _, a := range rawAttrs {
		prefix, local, ok := splitName(a.Name)
		if !ok {
			return d.err("attribute name " + a.Name + " has multiple colons")
		}
		if prefix == "xmlns" {
			d.setNs(local, a.Value)
		} else if prefix == "" && local == "xmlns" {
			d.setNs("", a.Value)
		}
	}

	// Filter-and-strip pass, mirroring Parse: xmlns machinery dropped, a
	// prefix whose bound URI is the literal "xmlns" dropped (encoding/xml's
	// translation would give those attrs Space "xmlns"), invalid stripped
	// locals dropped, duplicate locals first-wins.
	n := d.newNode()
	n.Name = intern(local)
	kept := rawAttrs[:0]
	for _, a := range rawAttrs {
		prefix, alocal, _ := splitName(a.Name)
		// Any attribute whose stripped local is "xmlns" is namespace
		// machinery — prefixed or not (Parse checks the local name after
		// prefix stripping, so x:xmlns goes too).
		if prefix == "xmlns" || alocal == "xmlns" {
			continue
		}
		if prefix != "" && prefix != "xml" && d.ns[prefix] == "xmlns" {
			continue
		}
		if !localNameOK(alocal) {
			continue
		}
		dup := false
		for _, k := range kept {
			if k.Name == alocal {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if prefix != "" {
			dirty = true // prefix stripped from an emitted attribute
		}
		kept = append(kept, Attr{Name: intern(alocal), Value: a.Value})
	}
	if len(kept) != len(rawAttrs) || !attrsSorted(kept) {
		dirty = true // attributes dropped, or canonical emission reorders
	}
	n.Attrs = d.attrSlice(kept)
	d.attrStk = d.attrStk[:attrMark]

	if empty {
		d.undoNs(nsMark)
		d.finishSpan(n, start, !dirty && d.muts == mutsMark)
		return nil
	}
	// Fast path for the dominant wire shape, <name>text</name>: scan the
	// text run and, when the matching end tag follows immediately, build
	// the completed element without touching the open-element stack. A
	// mismatch (child element, comment, unbalanced tag) falls back to the
	// generic path with the text already banked.
	if d.pos < len(d.s) && d.s[d.pos] != '<' {
		text, err := d.scanText(-1, false)
		if err != nil {
			return err
		}
		if end, ok := d.matchEnd(d.pos+2, raw); d.pos+1 < len(d.s) && d.s[d.pos] == '<' && d.s[d.pos+1] == '/' && ok {
			// Clean end tag: exactly "</raw>" with no trailing whitespace.
			endClean := end == d.pos+2+len(raw)+1
			d.pos = end
			if d.wsOnly {
				dirty = true // whitespace-only content dropped
			} else {
				tn := d.newNode()
				tn.Text = text
				n.Children = d.kidSlice1(tn)
			}
			d.undoNs(nsMark)
			d.finishSpan(n, start, endClean && !dirty && d.muts == mutsMark)
			return nil
		}
		d.open = append(d.open, openElem{n: n, rawName: raw, kidMark: len(d.kidStk), nsMark: nsMark,
			start: start, mutsMark: mutsMark, dirty: dirty})
		d.addText(text)
		return nil
	}
	d.open = append(d.open, openElem{n: n, rawName: raw, kidMark: len(d.kidStk), nsMark: nsMark,
		start: start, mutsMark: mutsMark, dirty: dirty})
	return nil
}

// matchEnd reports whether the bytes at i (positioned just after "</") are
// exactly the name raw followed by the optional trailing space the
// tokenizer permits and the closing '>', returning the position just past
// that '>'.
func (d *decoder) matchEnd(i int, raw string) (int, bool) {
	s := d.s
	if i < 0 || i+len(raw) > len(s) || s[i:i+len(raw)] != raw {
		return 0, false
	}
	i += len(raw)
	for i < len(s) {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
			i++
		case '>':
			return i + 1, true
		default:
			return 0, false
		}
	}
	return 0, false
}

// kidSlice1 carves a one-child slice from the slab (the text-only-element
// fast path).
func (d *decoder) kidSlice1(n *Node) []*Node {
	if len(d.kidChunk)-d.kidUsed < 1 {
		d.kidChunk = make([]*Node, nodeChunkSize)
		d.kidUsed = 0
	}
	out := d.kidChunk[d.kidUsed : d.kidUsed+1 : d.kidUsed+1]
	d.kidUsed++
	out[0] = n
	return out
}

func (d *decoder) endElement() error {
	// Matching end tags are recognized by direct byte comparison against
	// the innermost open element — its name was validated when the tag
	// opened, so no re-scan is needed. Anything that does not match falls
	// to the slow path, which produces the precise accept/reject behavior.
	if k := len(d.open); k > 0 {
		if end, ok := d.matchEnd(d.pos, d.open[k-1].rawName); ok {
			endClean := end == d.pos+len(d.open[k-1].rawName)+1
			d.pos = end
			return d.closeTop(endClean)
		}
	}
	raw, err := d.rawName()
	if err != nil {
		return err
	}
	ws := d.pos
	d.space()
	if d.pos >= len(d.s) {
		return d.eof()
	}
	if d.s[d.pos] != '>' {
		return d.err("invalid characters between </" + raw + " and >")
	}
	endClean := d.pos == ws
	d.pos++
	if len(d.open) == 0 {
		return d.err("unbalanced end element " + raw)
	}
	oe := d.open[len(d.open)-1]
	if oe.rawName != raw {
		return d.err("element <" + oe.rawName + "> closed by </" + raw + ">")
	}
	return d.closeTop(endClean)
}

// closeTop completes the innermost open element. endClean reports that the
// end tag was exactly "</name>" — no trailing whitespace canonical emission
// would drop.
func (d *decoder) closeTop(endClean bool) error {
	oe := d.open[len(d.open)-1]
	d.open = d.open[:len(d.open)-1]
	n := oe.n
	n.Children = d.kidSlice(d.kidStk[oe.kidMark:])
	d.kidStk = d.kidStk[:oe.kidMark]
	d.undoNs(oe.nsMark)
	d.finishSpan(n, oe.start, endClean && !oe.dirty && d.muts == oe.mutsMark)
	return nil
}

// finishSpan freezes a completed node, attaches it to its parent (or makes
// it the root), and — when the element's input span is provably canonical —
// memoizes the span as the node's serialization, so re-emitting a received
// subtree is a memcpy instead of a re-walk.
//
// Soundness of the clean check: clean means no byte-transforming event fired
// inside the span (d.muts), the start and end tags have canonical layout,
// attributes were kept verbatim in sorted order, and every element child
// proved itself clean (its own memoStr is set, so its bytes are exactly its
// canonical form). Under those conditions the only ways the span can still
// differ from the canonical serialization are escaping expansions — a raw
// '>' in text, a raw tab in an attribute value — which strictly increase
// the canonical length. memoSize == span length therefore forces the two
// byte strings to be identical.
func (d *decoder) finishSpan(n *Node, start int, clean bool) {
	n.byteSize(frozenGen)
	if clean && n.memoSize == d.pos-start && childElemsClean(n) {
		n.memoStr = d.s[start:d.pos]
	}
	if len(d.open) == 0 {
		d.root = n
		d.rootSpan = [2]int{start, d.pos}
		return
	}
	d.kidStk = append(d.kidStk, n)
}

// childElemsClean reports whether every element child carries a clean-span
// memo; a child that failed its own check (e.g. <a></a>, whose canonical
// form is <a/>) poisons the parent's span even when sizes happen to agree.
func childElemsClean(n *Node) bool {
	for _, c := range n.Children {
		if c.Name != "" && c.memoStr == "" {
			return false
		}
	}
	return true
}

// addText applies Parse's text policy to one decoded run: dropped outside
// the root and when whitespace-only, merged with an adjacent text sibling
// (runs split by CDATA sections or comments), appended otherwise. Merged
// text stays mutable until the parent closes and freezes it. Whether the
// run is whitespace-only was already determined during scanText's
// validation pass (d.wsOnly), so no re-scan happens here.
func (d *decoder) addText(text string) {
	if len(d.open) == 0 {
		// Outside the root element: dropped, and outside every span.
		return
	}
	if d.wsOnly {
		// Whitespace-only run dropped from the enclosing element — its span
		// no longer matches the canonical form.
		d.muts++
		return
	}
	top := &d.open[len(d.open)-1]
	if k := len(d.kidStk); k > top.kidMark && d.kidStk[k-1].IsText() {
		d.kidStk[k-1].Text += text
		return
	}
	n := d.newNode()
	n.Text = text
	d.kidStk = append(d.kidStk, n)
}

// --- Namespace bindings -------------------------------------------------

func (d *decoder) setNs(prefix, url string) {
	old, had := d.ns[prefix]
	d.nsUndo = append(d.nsUndo, nsUndo{prefix: prefix, old: old, had: had})
	d.ns[prefix] = url
}

func (d *decoder) undoNs(mark int) {
	for i := len(d.nsUndo) - 1; i >= mark; i-- {
		u := d.nsUndo[i]
		if u.had {
			d.ns[u.prefix] = u.old
		} else {
			delete(d.ns, u.prefix)
		}
	}
	d.nsUndo = d.nsUndo[:mark]
}

// --- Text ---------------------------------------------------------------

// scanText decodes one text region starting at d.pos, mirroring the
// reference tokenizer's text(quote, cdata): quote < 0 reads character data
// up to the next '<' (or EOF at top level); quote >= 0 reads a quoted
// attribute value through its closing quote; cdata reads through "]]>".
// The returned string aliases d.s whenever no entity expansion or line-end
// rewriting touched the run.
func (d *decoder) scanText(quote int, cdata bool) (string, error) {
	s := d.s
	i := d.pos
	start := i
	buf := d.scratch[:0]
	copied := false
	var b0, b1 byte
	trunc := 0
	// flush copies the clean prefix before the first transformation; the
	// transform (entity expansion, \r rewriting) is also what disqualifies
	// the enclosing spans from clean-span memoization.
	flush := func(end int) {
		if !copied {
			buf = append(buf, s[start:end]...)
			copied = true
			d.muts++
		}
	}
	for {
		if i >= len(s) {
			if cdata {
				return "", d.err("unexpected EOF in CDATA section")
			}
			if quote >= 0 {
				return "", d.eof()
			}
			break
		}
		b := s[i]
		if quote < 0 && b0 == ']' && b1 == ']' && b == '>' {
			if cdata {
				i++
				trunc = 2
				break
			}
			return "", d.err("unescaped ]]> not in CDATA section")
		}
		if b == '<' && !cdata {
			if quote >= 0 {
				return "", d.err("unescaped < inside quoted string")
			}
			break
		}
		if quote >= 0 && b == byte(quote) {
			i++
			break
		}
		if b == '&' && !cdata {
			flush(i)
			exp, ni, err := d.entity(i + 1)
			if err != nil {
				return "", err
			}
			buf = append(buf, exp...)
			i = ni
			b0, b1 = 0, 0
			continue
		}
		// Unescaped \r and \r\n are rewritten to \n, exactly as the
		// reference tokenizer does before its character validation.
		if b == '\r' {
			flush(i)
			buf = append(buf, '\n')
		} else if b1 == '\r' && b == '\n' {
			flush(i)
		} else if copied {
			buf = append(buf, b)
		}
		b0, b1 = b1, b
		i++
	}
	d.pos = i
	var out string
	if copied {
		buf = buf[:len(buf)-trunc]
		ws, err := validChars(bstr(buf))
		if err != nil {
			return "", err
		}
		d.wsOnly = ws
		out = string(buf)
		d.scratch = buf[:0]
	} else {
		end := i
		switch {
		case cdata:
			end -= trunc + 1 // drop "]]" and the consumed '>'
		case quote >= 0:
			end-- // drop the consumed closing quote
		}
		out = s[start:end]
		ws, err := validChars(out)
		if err != nil {
			return "", err
		}
		d.wsOnly = ws
	}
	return out, nil
}

// bstr views a byte slice as a string for validation without copying; the
// slice is not retained.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// validChars applies the XML 1.0 character-range and UTF-8 validity checks
// the reference tokenizer runs over every decoded text run, and reports on
// the same pass whether the run is whitespace-only (the strings.TrimSpace
// predicate Parse uses to drop insignificant runs).
func validChars(s string) (wsOnly bool, err error) {
	wsOnly = true
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == 0x20 || c == 0x09 || c == 0x0A || c == 0x0D:
			case c > 0x20:
				wsOnly = false
			default:
				return false, errors.New("xmltree: decode: illegal character code")
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			return false, errors.New("xmltree: decode: invalid UTF-8")
		}
		if !inCharacterRange(r) {
			return false, errors.New("xmltree: decode: illegal character code")
		}
		if wsOnly && !unicode.IsSpace(r) {
			wsOnly = false
		}
		i += size
	}
	return wsOnly, nil
}

// inCharacterRange is the XML Char production over non-ASCII runes (ASCII
// is settled byte-wise in validChars).
func inCharacterRange(r rune) bool {
	return r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// entity decodes one character reference starting just after '&' and
// returns the expansion and the index after the ';'. Only the five
// predefined named entities exist; character references accept any rune up
// to unicode.MaxRune (surrogates collapse to U+FFFD exactly as Go's
// rune-to-string conversion does), with out-of-range characters caught by
// the caller's validation pass.
func (d *decoder) entity(i int) (string, int, error) {
	s := d.s
	if i >= len(s) {
		return "", 0, d.eof()
	}
	if s[i] == '#' {
		i++
		if i >= len(s) {
			return "", 0, d.eof()
		}
		base := 10
		if s[i] == 'x' {
			base = 16
			i++
			if i >= len(s) {
				return "", 0, d.eof()
			}
		}
		start := i
		for i < len(s) && digitOK(s[i], base) {
			i++
		}
		if i >= len(s) {
			return "", 0, d.eof()
		}
		if s[i] != ';' {
			return "", 0, d.err("invalid character entity (no semicolon)")
		}
		n, err := strconv.ParseUint(s[start:i], base, 64)
		if err != nil || n > unicode.MaxRune {
			return "", 0, d.err("invalid character entity")
		}
		return string(rune(n)), i + 1, nil
	}
	start := i
	for i < len(s) {
		c := s[i]
		if c < utf8.RuneSelf && !isNameByte(c) {
			break
		}
		i++
	}
	if i >= len(s) {
		return "", 0, d.eof()
	}
	if s[i] != ';' {
		return "", 0, d.err("invalid character entity (no semicolon)")
	}
	var exp string
	switch s[start:i] {
	case "lt":
		exp = "<"
	case "gt":
		exp = ">"
	case "amp":
		exp = "&"
	case "apos":
		exp = "'"
	case "quot":
		exp = `"`
	default:
		return "", 0, d.err("invalid character entity &" + s[start:i] + ";")
	}
	return exp, i + 1, nil
}

func digitOK(c byte, base int) bool {
	if '0' <= c && c <= '9' {
		return true
	}
	return base == 16 && ('a' <= c && c <= 'f' || 'A' <= c && c <= 'F')
}

// --- Comments, CDATA, PIs, directives -----------------------------------

// bang dispatches the constructs behind "<!": comments, CDATA sections,
// and directives. Comment and directive content is consumed (with the
// reference tokenizer's exact accept/reject behavior) and discarded;
// CDATA content feeds the enclosing element as an ordinary text run.
func (d *decoder) bang() error {
	if d.pos >= len(d.s) {
		return d.eof()
	}
	d.muts++ // comments, CDATA and directives never serialize verbatim
	switch d.s[d.pos] {
	case '-':
		d.pos++
		if d.pos >= len(d.s) {
			return d.eof()
		}
		if d.s[d.pos] != '-' {
			return d.err("invalid sequence <!- not part of <!--")
		}
		d.pos++
		return d.comment()
	case '[':
		d.pos++
		const intro = "CDATA["
		for k := 0; k < len(intro); k++ {
			if d.pos >= len(d.s) {
				return d.eof()
			}
			if d.s[d.pos] != intro[k] {
				return d.err("invalid <![ sequence")
			}
			d.pos++
		}
		text, err := d.scanText(-1, true)
		if err != nil {
			return err
		}
		d.addText(text)
		return nil
	default:
		return d.directive()
	}
}

// comment consumes a comment body and its "-->" terminator. Per the spec
// (and the reference tokenizer), "--" may not appear inside a comment, so
// "--->" is an error rather than a long terminator. Content is not
// character-validated — the tokenizer never inspects it.
func (d *decoder) comment() error {
	s := d.s
	i := d.pos
	var b0, b1 byte
	for {
		if i >= len(s) {
			return d.eof()
		}
		b := s[i]
		i++
		if b0 == '-' && b1 == '-' {
			if b != '>' {
				return d.err(`invalid sequence "--" not allowed in comments`)
			}
			d.pos = i
			return nil
		}
		b0, b1 = b1, b
	}
}

// procInst consumes a processing instruction. The target must be a valid
// XML name; an xml declaration additionally has its version and encoding
// validated, mirroring the reference tokenizer (which would need a charset
// reader for any encoding other than UTF-8).
func (d *decoder) procInst() error {
	d.muts++ // dropped from the canonical form
	// PI targets take the raw name class with no namespace split: colons
	// are unrestricted here, unlike element and attribute names.
	target, err := d.rawName()
	if err != nil {
		return err
	}
	d.space()
	s := d.s
	rel := strings.Index(s[d.pos:], "?>")
	if rel < 0 {
		return d.eof()
	}
	inst := s[d.pos : d.pos+rel]
	d.pos += rel + 2
	if target == "xml" {
		if ver := piParam("version", inst); ver != "" && ver != "1.0" {
			return d.err("unsupported XML version " + ver)
		}
		if enc := piParam("encoding", inst); enc != "" && !strings.EqualFold(enc, "utf-8") {
			return d.err("unsupported document encoding " + enc)
		}
	}
	return nil
}

// piParam extracts a pseudo-attribute from an <?xml?> declaration body with
// the reference tokenizer's (approximate) scan: the first param= whose next
// byte is a quote wins, and the value runs to the matching quote.
func piParam(param, s string) string {
	param += "="
	lenp := len(param)
	i := 0
	var sep byte
	for i < len(s) {
		sub := s[i:]
		k := strings.Index(sub, param)
		if k < 0 || lenp+k >= len(sub) {
			return ""
		}
		i += lenp + k + 1
		if c := sub[lenp+k]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return ""
	}
	j := strings.IndexByte(s[i:], sep)
	if j < 0 {
		return ""
	}
	return s[i : i+j]
}

// directive consumes a <!DIRECTIVE ...> through its closing '>' with the
// reference tokenizer's exact nesting rules: quoted spans protect angle
// brackets, bare angle brackets nest, and embedded comments are skipped
// (without the "--" restriction that applies to free-standing comments).
// Content is discarded — the document model has no use for doctypes.
func (d *decoder) directive() error {
	s := d.s
	i := d.pos + 1 // the first byte after <! was inspected by bang
	var inquote byte
	depth := 0
	for {
		if i >= len(s) {
			return d.eof()
		}
		b := s[i]
		i++
		if inquote == 0 && b == '>' && depth == 0 {
			d.pos = i
			return nil
		}
	handleB:
		switch {
		case b == inquote:
			// Covers the closing quote and, vacuously, a NUL byte while
			// unquoted — the reference tokenizer shares the quirk.
			inquote = 0
		case inquote != 0:
			// Quoted content is opaque.
		case b == '\'' || b == '"':
			inquote = b
		case b == '>':
			depth--
		case b == '<':
			// A "<!--" here starts an embedded comment; any shorter match
			// pushes the mismatching byte back through the state machine
			// with one extra nesting level, exactly as the reference does.
			const pat = "!--"
			for k := 0; k < len(pat); k++ {
				if i >= len(s) {
					return d.eof()
				}
				nb := s[i]
				i++
				if nb != pat[k] {
					depth++
					b = nb
					goto handleB
				}
			}
			var c0, c1 byte
			for {
				if i >= len(s) {
					return d.eof()
				}
				cb := s[i]
				i++
				if c0 == '-' && c1 == '-' && cb == '>' {
					break
				}
				c0, c1 = c1, cb
			}
		}
	}
}
