package xmltree

import (
	"strings"
	"testing"
	"unsafe"
)

func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

// FuzzDecodeEquivalence is the differential oracle for the zero-copy
// decoder: on every input, Decode and the encoding/xml-based Parse must
// agree — both reject, or both accept with structurally equal trees and
// identical canonical serializations. The seeds cover the wire vocabulary
// plus every tokenizer quirk the decoder mirrors (entities, CDATA, CR/LF
// rewriting, comments, directives, xml declarations, namespace stripping);
// regression entries found by fuzzing live in
// testdata/fuzz/FuzzDecodeEquivalence.
func FuzzDecodeEquivalence(f *testing.F) {
	for _, s := range decodeCases {
		f.Add(s)
	}
	f.Add(`<mqp id="q" target="c:1"><plan><union><data><i>1</i></data><url href="h:1" path="/d"/></union></plan>` +
		`<visited b="3">m:9020 2 q29tcGFjdA;s:1 1 AAAAAAAB</visited><provenance algo="hmac-sha256"><visit at="1000" server="a:1"/></provenance></mqp>`)
	f.Add(`<mqp id="q" target="c:1"><plan><data/></plan><visited b="6">m:9020 2 q29tcGFjdA` +
		`<a s="s1:9020" u="urn:InterestArea:(USA.OR.Portland,Music.CDs)"/><a s="s2:9020" u="urn:InterestArea:(*,Furniture.Chairs)"/></visited></mqp>`)
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			t.Skip("oversized input")
		}
		ref, refErr := ParseString(s)
		got, gotErr := DecodeString(s)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("accept/reject disagreement:\ninput: %q\nParse err:  %v\nDecode err: %v", s, refErr, gotErr)
		}
		if refErr != nil {
			return
		}
		if !Equal(ref, got) {
			t.Fatalf("tree disagreement:\ninput: %q\nParse:  %q\nDecode: %q", s, ref.String(), got.String())
		}
		if rs, gs := ref.String(), got.String(); rs != gs {
			t.Fatalf("serialization disagreement:\ninput: %q\nParse:  %q\nDecode: %q", s, rs, gs)
		}
		// Decoder output must be frozen at birth with exact memoized sizes:
		// the born-frozen contract the receive path relies on.
		if !got.Frozen() {
			t.Fatalf("decoded root not frozen: %q", s)
		}
		if got.ByteSize() != len(got.String()) {
			t.Fatalf("decoded ByteSize %d != serialized length %d: %q", got.ByteSize(), len(got.String()), s)
		}
		// And decoding the canonical form must reproduce the tree (the
		// fixpoint property Parse already guarantees).
		c := got.String()
		got2, err := DecodeString(c)
		if err != nil {
			t.Fatalf("canonical form rejected by Decode: %v\ncanonical: %q", err, c)
		}
		if !Equal(got, got2) {
			t.Fatalf("canonical re-decode differs:\ncanonical: %q", c)
		}
	})
}

// FuzzDecodeBytes drives the []byte entry point (the wire path) to make
// sure the unsafe buffer-to-string view never diverges from DecodeString.
func FuzzDecodeBytes(f *testing.F) {
	f.Add([]byte(`<a b="1">x<c/></a>`))
	f.Add([]byte(`<a>&amp;<![CDATA[x]]></a>`))
	f.Fuzz(func(t *testing.T, buf []byte) {
		if len(buf) > 1<<16 {
			t.Skip("oversized input")
		}
		want, wantErr := DecodeString(strings.Clone(string(buf)))
		got, gotErr := Decode(buf)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("Decode/DecodeString disagreement: %v vs %v on %q", gotErr, wantErr, buf)
		}
		if wantErr == nil && !Equal(want, got) {
			t.Fatalf("Decode tree differs from DecodeString on %q", buf)
		}
	})
}
