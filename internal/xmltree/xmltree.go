// Package xmltree provides a lightweight XML document model used throughout
// the repository: item data bundles, serialized mutant query plans, and
// partial results are all xmltree documents.
//
// The model is deliberately small — elements, attributes and text — because
// that is all the paper's data bundles and plan encoding require. A document
// is a tree of *Node values. Parsing uses encoding/xml's tokenizer, and
// serialization emits deterministic, canonicalized XML (attributes sorted by
// name) so that byte sizes are stable across runs; the experiment harness
// depends on that stability when it reports "bytes shipped".
//
// # Ownership: freeze and copy-on-write
//
// Plans carry verbatim XML payloads through every peer hop, so the package
// has an explicit ownership model instead of defensive deep copies:
//
//   - Freeze marks a subtree permanently immutable and memoizes every
//     node's canonical byte size. A frozen subtree may be aliased into any
//     number of documents, serialized, sized, and read concurrently without
//     synchronization — it is never written again.
//   - Share is the copy-on-write alias: it returns the node itself when
//     frozen (aliasing is safe) and a deep mutable copy otherwise.
//   - CloneShallow copies one node header (attrs included) while aliasing
//     its children, so a frozen list can grow by one element per hop
//     without rebuilding — the provenance trail's append pattern.
//
// The freeze bit lives in the ByteSize generation machinery: a frozen node's
// memo generation is pinned to a sentinel that no package-wide mutation can
// invalidate. Mutating a frozen node through SetAttr/Add panics; writing its
// exported fields directly is undetected and breaks the contract, exactly as
// skipping Invalidate does for the size memo.
package xmltree

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Attr is a single name="value" attribute on an element.
type Attr struct {
	Name  string
	Value string
}

// Node is an XML element or a text node. An element has a Name and may carry
// attributes and children; a text node has Name == "" and its content in
// Text. The zero value is an empty text node.
//
// Mutate nodes through the methods (SetAttr, Add, ...) when possible: they
// keep the ByteSize memo coherent. Code that writes the exported fields
// directly after a node has been serialized must call Invalidate.
type Node struct {
	Name     string
	Text     string
	Attrs    []Attr
	Children []*Node

	// memoSize caches the canonical serialization length; it is valid only
	// while memoGen equals the package-wide mutation generation. Any
	// mutator bumps the generation, conservatively invalidating every
	// cached size without needing parent pointers.
	memoSize int
	memoGen  uint64
	// memoStr caches the canonical serialization itself, written once by
	// Freeze (while the caller still owns the subtree exclusively) and
	// read-only forever after — so serializing a frozen payload into an
	// outgoing message is a single WriteString, not a re-walk. Only Freeze
	// writes it; Clone/CloneShallow produce mutable copies without it.
	memoStr string
}

// mutGen is the package-wide mutation generation. It starts at 1 so that a
// zero memoGen (fresh node) never reads as valid.
var mutGen atomic.Uint64

func init() { mutGen.Store(1) }

// frozenGen is the memo-generation sentinel marking a frozen node: its size
// memo never expires, and mutators refuse to touch it. The counter starts at
// 1 and only increments, so it can never collide with the sentinel.
const frozenGen = ^uint64(0)

// Invalidate discards all cached ByteSize results package-wide. Callers that
// mutate Node fields directly (rather than through SetAttr/Add) must call it
// before the next ByteSize; the mutator methods call it automatically.
func Invalidate() { mutGen.Add(1) }

// invalidate is the mutator-path invalidation. A node with memoGen == 0 has
// never been part of a ByteSize computation, so no cached size anywhere can
// include it and the (package-wide) generation bump is skipped — building a
// fresh document does not evict unrelated caches. Frozen nodes may be
// aliased anywhere; mutating one is an ownership bug, caught here.
func (n *Node) invalidate() {
	if n.memoGen == frozenGen {
		panic("xmltree: mutation of frozen node <" + n.Name + ">")
	}
	if n.memoGen != 0 {
		mutGen.Add(1)
	}
}

// Elem constructs an element node with the given children.
func Elem(name string, children ...*Node) *Node {
	return &Node{Name: name, Children: children}
}

// ElemAttrs constructs an element that takes ownership of attrs. Marshaling
// hot paths use it to build the attribute list at its final size in one
// allocation instead of growing it through repeated SetAttr calls;
// serialization sorts attributes canonically, so attrs may be in any order.
func ElemAttrs(name string, attrs ...Attr) *Node {
	return &Node{Name: name, Attrs: attrs}
}

// TextNode constructs a text node.
func TextNode(text string) *Node {
	return &Node{Text: text}
}

// ElemText constructs an element containing a single text child, e.g.
// ElemText("price", "10") renders as <price>10</price>.
func ElemText(name, text string) *Node {
	return &Node{Name: name, Children: []*Node{TextNode(text)}}
}

// IsText reports whether the node is a text node.
func (n *Node) IsText() bool { return n.Name == "" }

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrDefault returns the named attribute's value, or def when absent.
func (n *Node) AttrDefault(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets (or replaces) an attribute and returns the node for chaining.
func (n *Node) SetAttr(name, value string) *Node {
	n.invalidate()
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Add appends children and returns the node for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.invalidate()
	n.Children = append(n.Children, children...)
	return n
}

// Child returns the first child element with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given name.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Elements returns all element (non-text) children.
func (n *Node) Elements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if !c.IsText() {
			out = append(out, c)
		}
	}
	return out
}

// InnerText returns the concatenation of all text beneath the node.
func (n *Node) InnerText() string {
	if n.IsText() {
		return n.Text
	}
	var b strings.Builder
	n.innerText(&b)
	return b.String()
}

func (n *Node) innerText(b *strings.Builder) {
	for _, c := range n.Children {
		if c.IsText() {
			b.WriteString(c.Text)
		} else {
			c.innerText(b)
		}
	}
}

// Clone returns a deep copy of the node. The copy is always mutable, even
// when the source (or part of it) is frozen; use Share to alias frozen
// subtrees instead of copying them.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Name: n.Name, Text: n.Text, memoSize: n.memoSize, memoGen: n.memoGen}
	if n.memoGen == frozenGen {
		// The copy serializes identically, so the size memo stays valid —
		// but only until the next package-wide mutation, not forever.
		cp.memoGen = mutGen.Load()
	}
	if len(n.Attrs) > 0 {
		cp.Attrs = make([]Attr, len(n.Attrs))
		copy(cp.Attrs, n.Attrs)
	}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Freeze marks the subtree permanently immutable and memoizes every node's
// canonical byte size, then returns n for chaining. A frozen subtree can be
// aliased into any number of documents and read, sized, or serialized from
// multiple goroutines; SetAttr/Add on any node of it panic. Freezing an
// already-frozen subtree is a cheap no-op, so receivers freeze whatever they
// keep without checking provenance.
//
// Freeze itself writes the size memos (and the subtree's serialization
// memo), so the caller must still own the subtree exclusively when
// freezing; share it only afterwards.
func (n *Node) Freeze() *Node {
	if n == nil || n.memoGen == frozenGen {
		return n
	}
	n.byteSize(frozenGen)
	// Memoize the serialization at the freeze root: frozen payloads are
	// typically serialized many times (a plan's data docs re-cross the wire
	// on every hop), and the memo turns each of those walks into one
	// WriteString. Children that were frozen earlier contribute their own
	// memos to this walk, so freeze chains (visit into trail, item into
	// reply) price each byte once.
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	n.appendTo(b)
	n.memoStr = b.String()
	bufPool.Put(b)
	return n
}

// Frozen reports whether the node (and therefore its whole subtree) is
// frozen.
func (n *Node) Frozen() bool { return n.memoGen == frozenGen }

// FrozenSerialization returns the memoized canonical serialization of a
// frozen subtree and true, or ("", false) when the node is mutable or was
// frozen as an interior node of a larger freeze (only freeze roots and the
// decoder's clean spans carry the memo). Content-addressed callers
// (internal/blobstore) fingerprint the returned string without
// re-serializing; the string is immutable for the life of the node.
func (n *Node) FrozenSerialization() (string, bool) {
	if n != nil && n.memoGen == frozenGen && n.memoStr != "" {
		return n.memoStr, true
	}
	return "", false
}

// Share returns the node itself when it is frozen — aliasing an immutable
// subtree is free and safe — and a deep mutable copy otherwise. It is the
// copy-on-write primitive marshaling paths use in place of Clone.
func (n *Node) Share() *Node {
	if n == nil || n.memoGen == frozenGen {
		return n
	}
	return n.Clone()
}

// CloneShallow returns a mutable copy of the node header — name, text, and
// attributes — whose children alias n's children. It is the copy-on-write
// step for appending to a frozen element: copy the header, add the new
// child, freeze the result; the shared children are never touched.
func (n *Node) CloneShallow() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		cp.Attrs = append([]Attr(nil), n.Attrs...)
	}
	if len(n.Children) > 0 {
		cp.Children = append([]*Node(nil), n.Children...)
	}
	return cp
}

// Equal reports deep structural equality, ignoring attribute order.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Text != b.Text {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for _, attr := range a.Attrs {
		v, ok := b.Attr(attr.Name)
		if !ok || v != attr.Value {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Parse reads a single XML document from r and returns its root element.
// Whitespace-only text between elements is dropped; other text is kept.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if !localNameOK(t.Name.Local) {
				return nil, fmt.Errorf("xmltree: parse: element name %q invalid after dropping namespace prefix", t.Name.Local)
			}
			n := &Node{Name: t.Name.Local}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				if !localNameOK(a.Name.Local) {
					continue
				}
				if _, dup := n.Attr(a.Name.Local); dup {
					// Distinct namespace prefixes can collapse to the same
					// local name once prefixes are stripped; first wins, so
					// the tree never carries duplicate attribute names.
					continue
				}
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			parent := stack[len(stack)-1]
			// Adjacent text runs (the tokenizer splits them around CDATA
			// sections) merge into one node, so parsing canonical output
			// reproduces the tree exactly.
			if k := len(parent.Children); k > 0 && parent.Children[k-1].IsText() {
				parent.Children[k-1].Text += text
				continue
			}
			parent.Children = append(parent.Children, TextNode(text))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unterminated element %q", stack[len(stack)-1].Name)
	}
	return root, nil
}

// localNameOK reports whether a namespace-stripped local name is itself a
// well-formed, prefix-free XML name. Stripping a prefix can expose an
// invalid start character (the tokenizer accepts y:0="..." as prefix "y",
// local "0") or a residual colon (a:b:c splits at the first colon only);
// serializing either would produce an unparseable or differently-splitting
// canonical form. The common all-ASCII case is decided inline; anything
// exotic is settled by asking the tokenizer itself.
func localNameOK(local string) bool {
	if local == "" || strings.IndexByte(local, ':') >= 0 {
		return false
	}
	if c := local[0]; c == '_' || ('A' <= c && c <= 'Z') || ('a' <= c && c <= 'z') {
		return true
	}
	_, err := xml.NewDecoder(strings.NewReader("<" + local + "/>")).Token()
	return err == nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses s and panics on error; intended for tests and fixtures.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// bufPool recycles serialization buffers across String/WriteTo calls; the
// wire layer serializes on every simulated message, so per-call buffer
// growth dominated the allocation profile before pooling.
var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// WriteTo serializes the node as canonical XML: attributes sorted by name,
// no insignificant whitespace. The document is staged in a pooled buffer and
// handed to w in a single Write (one syscall on a real socket). It returns
// the number of bytes written.
func (n *Node) WriteTo(w io.Writer) (int64, error) {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	n.appendTo(b)
	m, err := w.Write(b.Bytes())
	bufPool.Put(b)
	return int64(m), err
}

// appendTo writes the canonical serialization into b.
func (n *Node) appendTo(b *bytes.Buffer) {
	if n.memoStr != "" && n.memoGen == frozenGen {
		b.WriteString(n.memoStr)
		return
	}
	if n.IsText() {
		appendEscaped(b, n.Text, false)
		return
	}
	b.WriteByte('<')
	b.WriteString(n.Name)
	switch {
	case len(n.Attrs) <= 1 || attrsSorted(n.Attrs):
		for _, a := range n.Attrs {
			appendAttr(b, a)
		}
	case len(n.Attrs) <= 64:
		// Emit in sorted order without copying: repeated min-scan with an
		// emitted bitmask. Attribute lists are tiny, so O(k²) compares beat
		// the allocations of a copy-and-sort.
		var emitted uint64
		for range n.Attrs {
			min := -1
			for i, a := range n.Attrs {
				if emitted&(1<<uint(i)) != 0 {
					continue
				}
				if min < 0 || a.Name < n.Attrs[min].Name {
					min = i
				}
			}
			emitted |= 1 << uint(min)
			appendAttr(b, n.Attrs[min])
		}
	default:
		attrs := make([]Attr, len(n.Attrs))
		copy(attrs, n.Attrs)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
		for _, a := range attrs {
			appendAttr(b, a)
		}
	}
	if len(n.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	for _, c := range n.Children {
		c.appendTo(b)
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
}

func attrsSorted(attrs []Attr) bool {
	for i := 1; i < len(attrs); i++ {
		if attrs[i].Name < attrs[i-1].Name {
			return false
		}
	}
	return true
}

func appendAttr(b *bytes.Buffer, a Attr) {
	b.WriteByte(' ')
	b.WriteString(a.Name)
	b.WriteString(`="`)
	appendEscaped(b, a.Value, true)
	b.WriteByte('"')
}

// appendEscaped writes s with XML entities substituted, copying unescaped
// runs in bulk. Most wire text contains no escapable characters, so the
// common case is a single WriteString. Following canonical XML, whitespace
// that re-parsing would normalize away is written as character references:
// carriage returns everywhere (XML line-end handling turns literal CRs into
// newlines), tabs and newlines additionally inside attribute values
// (attribute-value normalization turns them into spaces). That keeps the
// canonical form a parse fixpoint.
func appendEscaped(b *bytes.Buffer, s string, quot bool) {
	start := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\r':
			esc = "&#xD;"
		case '"':
			if !quot {
				continue
			}
			esc = "&quot;"
		case '\t':
			if !quot {
				continue
			}
			esc = "&#x9;"
		case '\n':
			if !quot {
				continue
			}
			esc = "&#xA;"
		default:
			continue
		}
		b.WriteString(s[start:i])
		b.WriteString(esc)
		start = i + 1
	}
	b.WriteString(s[start:])
}

// escapeText substitutes the text-content XML entities. It returns s
// unchanged (no allocation) when nothing needs escaping.
func escapeText(s string) string { return escapeString(s, false) }

// escapeAttr is escapeText plus quote escaping for attribute values.
func escapeAttr(s string) string { return escapeString(s, true) }

func escapeString(s string, quot bool) string {
	clean := true
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&', '<', '>', '\r':
			clean = false
		case '"', '\t', '\n':
			clean = clean && !quot
		}
		if !clean {
			break
		}
	}
	if clean {
		return s
	}
	var b bytes.Buffer
	b.Grow(len(s) + 8)
	appendEscaped(&b, s, quot)
	return b.String()
}

// String returns the canonical XML serialization of the node.
func (n *Node) String() string {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	n.appendTo(b)
	s := b.String()
	bufPool.Put(b)
	return s
}

// ByteSize returns the length in bytes of the canonical serialization
// without producing it: sizes are summed arithmetically (escape overhead is
// counted, not written) and memoized on each node until the next mutation.
// The simulated network calls this on every message, so it is the hottest
// entry point in the wire layer.
//
// Memoization makes ByteSize a write: calling it on a node shared between
// goroutines requires external synchronization, even though it looks like a
// read. The exception is a frozen subtree, whose sizes were memoized by
// Freeze — there ByteSize is a pure read and safe to call concurrently.
func (n *Node) ByteSize() int {
	return n.byteSize(mutGen.Load())
}

func (n *Node) byteSize(gen uint64) int {
	if n.memoGen == gen || n.memoGen == frozenGen {
		return n.memoSize
	}
	var size int
	if n.IsText() {
		size = len(n.Text) + escapeExtra(n.Text, false)
	} else {
		// "<name" plus attributes; attribute order does not affect size.
		size = 1 + len(n.Name)
		for _, a := range n.Attrs {
			// space, name, `="`, value, `"`
			size += 1 + len(a.Name) + 2 + len(a.Value) + escapeExtra(a.Value, true) + 1
		}
		if len(n.Children) == 0 {
			size += len("/>")
		} else {
			size += len(">")
			for _, c := range n.Children {
				size += c.byteSize(gen)
			}
			size += len("</") + len(n.Name) + len(">")
		}
	}
	n.memoSize = size
	n.memoGen = gen
	return size
}

// escapeExtra returns how many bytes entity substitution adds to s.
func escapeExtra(s string, quot bool) int {
	extra := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			extra += len("&amp;") - 1
		case '<', '>':
			extra += len("&lt;") - 1
		case '\r':
			extra += len("&#xD;") - 1
		case '"':
			if quot {
				extra += len("&quot;") - 1
			}
		case '\t', '\n':
			if quot {
				extra += len("&#x9;") - 1
			}
		}
	}
	return extra
}

// Indent returns a pretty-printed serialization with two-space indentation;
// useful for debugging and examples, not for size accounting.
func (n *Node) Indent() string {
	var b strings.Builder
	indentNode(&b, n, 0)
	return b.String()
}

func indentNode(b *strings.Builder, n *Node, depth int) {
	pad := strings.Repeat("  ", depth)
	if n.IsText() {
		b.WriteString(pad + escapeText(strings.TrimSpace(n.Text)) + "\n")
		return
	}
	b.WriteString(pad + "<" + n.Name)
	attrs := make([]Attr, len(n.Attrs))
	copy(attrs, n.Attrs)
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
	for _, a := range attrs {
		b.WriteString(" " + a.Name + `="` + escapeAttr(a.Value) + `"`)
	}
	if len(n.Children) == 0 {
		b.WriteString("/>\n")
		return
	}
	if len(n.Children) == 1 && n.Children[0].IsText() {
		b.WriteString(">" + escapeText(n.Children[0].Text) + "</" + n.Name + ">\n")
		return
	}
	b.WriteString(">\n")
	for _, c := range n.Children {
		indentNode(b, c, depth+1)
	}
	b.WriteString(pad + "</" + n.Name + ">\n")
}

// Value returns the inner text of the first node matched by the path
// expression (see Find), or "" when nothing matches.
func (n *Node) Value(path string) string {
	m := n.Find(path)
	if m == nil {
		return ""
	}
	return m.InnerText()
}

// Float returns the first matched value parsed as float64.
func (n *Node) Float(path string) (float64, error) {
	v := strings.TrimSpace(n.Value(path))
	if v == "" {
		return 0, fmt.Errorf("xmltree: path %q: no value", path)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("xmltree: path %q: %w", path, err)
	}
	return f, nil
}

// Int returns the first matched value parsed as int.
func (n *Node) Int(path string) (int, error) {
	v := strings.TrimSpace(n.Value(path))
	if v == "" {
		return 0, fmt.Errorf("xmltree: path %q: no value", path)
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("xmltree: path %q: %w", path, err)
	}
	return i, nil
}

// Find returns the first node matched by the path, or nil.
func (n *Node) Find(path string) *Node {
	all := n.FindAll(path)
	if len(all) == 0 {
		return nil
	}
	return all[0]
}

// FindAll evaluates a small XPath-like path expression against the node and
// returns every match. The language supports the forms the paper's catalogs
// and item bundles need:
//
//	item/price          child steps
//	*                   any element child
//	data[id=245]        attribute-equality predicate (paper §3.2 identifiers)
//	item[2]             positional predicate (1-based)
//	price/@currency     terminal attribute access (matched node is a
//	                    synthesized text node holding the attribute value)
//
// A leading "/" is permitted and ignored (paths are evaluated relative to n,
// whose own name is not consumed by the path).
func (n *Node) FindAll(path string) []*Node {
	steps, err := parsePath(path)
	if err != nil {
		return nil
	}
	current := []*Node{n}
	for _, st := range steps {
		var next []*Node
		for _, c := range current {
			next = append(next, st.apply(c)...)
		}
		current = next
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

type pathStep struct {
	name      string // element name, or "*", or "@attr" for attribute access
	attrName  string // predicate [name=value]
	attrValue string
	index     int // 1-based positional predicate; 0 means none
}

func parsePath(path string) ([]pathStep, error) {
	path = strings.TrimPrefix(path, "/")
	if path == "" {
		return nil, fmt.Errorf("xmltree: empty path")
	}
	parts := strings.Split(path, "/")
	steps := make([]pathStep, 0, len(parts))
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("xmltree: empty path step in %q", path)
		}
		st := pathStep{}
		if i := strings.IndexByte(p, '['); i >= 0 {
			if !strings.HasSuffix(p, "]") {
				return nil, fmt.Errorf("xmltree: malformed predicate in step %q", p)
			}
			pred := p[i+1 : len(p)-1]
			st.name = p[:i]
			if eq := strings.IndexByte(pred, '='); eq >= 0 {
				st.attrName = strings.TrimPrefix(strings.TrimSpace(pred[:eq]), "@")
				st.attrValue = strings.Trim(strings.TrimSpace(pred[eq+1:]), `'"`)
			} else {
				idx, err := strconv.Atoi(pred)
				if err != nil || idx < 1 {
					return nil, fmt.Errorf("xmltree: bad positional predicate %q", pred)
				}
				st.index = idx
			}
		} else {
			st.name = p
		}
		if st.name == "" {
			return nil, fmt.Errorf("xmltree: missing name in step %q", p)
		}
		steps = append(steps, st)
	}
	return steps, nil
}

func (st pathStep) apply(n *Node) []*Node {
	if strings.HasPrefix(st.name, "@") {
		if v, ok := n.Attr(st.name[1:]); ok {
			return []*Node{TextNode(v)}
		}
		return nil
	}
	var out []*Node
	pos := 0
	for _, c := range n.Children {
		if c.IsText() {
			continue
		}
		if st.name != "*" && c.Name != st.name {
			continue
		}
		if st.attrName != "" {
			if v, ok := c.Attr(st.attrName); !ok || v != st.attrValue {
				continue
			}
		}
		pos++
		if st.index > 0 && pos != st.index {
			continue
		}
		out = append(out, c)
		if st.index > 0 {
			break
		}
	}
	return out
}
