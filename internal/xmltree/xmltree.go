// Package xmltree provides a lightweight XML document model used throughout
// the repository: item data bundles, serialized mutant query plans, and
// partial results are all xmltree documents.
//
// The model is deliberately small — elements, attributes and text — because
// that is all the paper's data bundles and plan encoding require. A document
// is a tree of *Node values. Parsing uses encoding/xml's tokenizer, and
// serialization emits deterministic, canonicalized XML (attributes sorted by
// name) so that byte sizes are stable across runs; the experiment harness
// depends on that stability when it reports "bytes shipped".
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Attr is a single name="value" attribute on an element.
type Attr struct {
	Name  string
	Value string
}

// Node is an XML element or a text node. An element has a Name and may carry
// attributes and children; a text node has Name == "" and its content in
// Text. The zero value is an empty text node.
type Node struct {
	Name     string
	Text     string
	Attrs    []Attr
	Children []*Node
}

// Elem constructs an element node with the given children.
func Elem(name string, children ...*Node) *Node {
	return &Node{Name: name, Children: children}
}

// TextNode constructs a text node.
func TextNode(text string) *Node {
	return &Node{Text: text}
}

// ElemText constructs an element containing a single text child, e.g.
// ElemText("price", "10") renders as <price>10</price>.
func ElemText(name, text string) *Node {
	return &Node{Name: name, Children: []*Node{TextNode(text)}}
}

// IsText reports whether the node is a text node.
func (n *Node) IsText() bool { return n.Name == "" }

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrDefault returns the named attribute's value, or def when absent.
func (n *Node) AttrDefault(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets (or replaces) an attribute and returns the node for chaining.
func (n *Node) SetAttr(name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Add appends children and returns the node for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Child returns the first child element with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given name.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Elements returns all element (non-text) children.
func (n *Node) Elements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if !c.IsText() {
			out = append(out, c)
		}
	}
	return out
}

// InnerText returns the concatenation of all text beneath the node.
func (n *Node) InnerText() string {
	if n.IsText() {
		return n.Text
	}
	var b strings.Builder
	n.innerText(&b)
	return b.String()
}

func (n *Node) innerText(b *strings.Builder) {
	for _, c := range n.Children {
		if c.IsText() {
			b.WriteString(c.Text)
		} else {
			c.innerText(b)
		}
	}
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		cp.Attrs = make([]Attr, len(n.Attrs))
		copy(cp.Attrs, n.Attrs)
	}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Equal reports deep structural equality, ignoring attribute order.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Text != b.Text {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for _, attr := range a.Attrs {
		v, ok := b.Attr(attr.Name)
		if !ok || v != attr.Value {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Parse reads a single XML document from r and returns its root element.
// Whitespace-only text between elements is dropped; other text is kept.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, TextNode(text))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unterminated element %q", stack[len(stack)-1].Name)
	}
	return root, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses s and panics on error; intended for tests and fixtures.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// WriteTo serializes the node as canonical XML: attributes sorted by name,
// no insignificant whitespace. It returns the number of bytes written.
func (n *Node) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	err := writeNode(cw, n)
	return cw.n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) WriteString(s string) error {
	m, err := io.WriteString(cw.w, s)
	cw.n += int64(m)
	return err
}

func writeNode(w *countWriter, n *Node) error {
	if n.IsText() {
		return w.WriteString(escapeText(n.Text))
	}
	if err := w.WriteString("<" + n.Name); err != nil {
		return err
	}
	attrs := make([]Attr, len(n.Attrs))
	copy(attrs, n.Attrs)
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
	for _, a := range attrs {
		if err := w.WriteString(" " + a.Name + `="` + escapeAttr(a.Value) + `"`); err != nil {
			return err
		}
	}
	if len(n.Children) == 0 {
		return w.WriteString("/>")
	}
	if err := w.WriteString(">"); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c); err != nil {
			return err
		}
	}
	return w.WriteString("</" + n.Name + ">")
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// String returns the canonical XML serialization of the node.
func (n *Node) String() string {
	var b strings.Builder
	cw := &countWriter{w: &b}
	if err := writeNode(cw, n); err != nil {
		// strings.Builder never fails; defensive only.
		return fmt.Sprintf("<!-- xmltree: %v -->", err)
	}
	return b.String()
}

// ByteSize returns the length in bytes of the canonical serialization. The
// experiment harness uses it to account for network transfer sizes.
func (n *Node) ByteSize() int {
	cw := &countWriter{w: io.Discard}
	if err := writeNode(cw, n); err != nil {
		return 0
	}
	return int(cw.n)
}

// Indent returns a pretty-printed serialization with two-space indentation;
// useful for debugging and examples, not for size accounting.
func (n *Node) Indent() string {
	var b strings.Builder
	indentNode(&b, n, 0)
	return b.String()
}

func indentNode(b *strings.Builder, n *Node, depth int) {
	pad := strings.Repeat("  ", depth)
	if n.IsText() {
		b.WriteString(pad + escapeText(strings.TrimSpace(n.Text)) + "\n")
		return
	}
	b.WriteString(pad + "<" + n.Name)
	attrs := make([]Attr, len(n.Attrs))
	copy(attrs, n.Attrs)
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
	for _, a := range attrs {
		b.WriteString(" " + a.Name + `="` + escapeAttr(a.Value) + `"`)
	}
	if len(n.Children) == 0 {
		b.WriteString("/>\n")
		return
	}
	if len(n.Children) == 1 && n.Children[0].IsText() {
		b.WriteString(">" + escapeText(n.Children[0].Text) + "</" + n.Name + ">\n")
		return
	}
	b.WriteString(">\n")
	for _, c := range n.Children {
		indentNode(b, c, depth+1)
	}
	b.WriteString(pad + "</" + n.Name + ">\n")
}

// Value returns the inner text of the first node matched by the path
// expression (see Find), or "" when nothing matches.
func (n *Node) Value(path string) string {
	m := n.Find(path)
	if m == nil {
		return ""
	}
	return m.InnerText()
}

// Float returns the first matched value parsed as float64.
func (n *Node) Float(path string) (float64, error) {
	v := strings.TrimSpace(n.Value(path))
	if v == "" {
		return 0, fmt.Errorf("xmltree: path %q: no value", path)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("xmltree: path %q: %w", path, err)
	}
	return f, nil
}

// Int returns the first matched value parsed as int.
func (n *Node) Int(path string) (int, error) {
	v := strings.TrimSpace(n.Value(path))
	if v == "" {
		return 0, fmt.Errorf("xmltree: path %q: no value", path)
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("xmltree: path %q: %w", path, err)
	}
	return i, nil
}

// Find returns the first node matched by the path, or nil.
func (n *Node) Find(path string) *Node {
	all := n.FindAll(path)
	if len(all) == 0 {
		return nil
	}
	return all[0]
}

// FindAll evaluates a small XPath-like path expression against the node and
// returns every match. The language supports the forms the paper's catalogs
// and item bundles need:
//
//	item/price          child steps
//	*                   any element child
//	data[id=245]        attribute-equality predicate (paper §3.2 identifiers)
//	item[2]             positional predicate (1-based)
//	price/@currency     terminal attribute access (matched node is a
//	                    synthesized text node holding the attribute value)
//
// A leading "/" is permitted and ignored (paths are evaluated relative to n,
// whose own name is not consumed by the path).
func (n *Node) FindAll(path string) []*Node {
	steps, err := parsePath(path)
	if err != nil {
		return nil
	}
	current := []*Node{n}
	for _, st := range steps {
		var next []*Node
		for _, c := range current {
			next = append(next, st.apply(c)...)
		}
		current = next
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

type pathStep struct {
	name      string // element name, or "*", or "@attr" for attribute access
	attrName  string // predicate [name=value]
	attrValue string
	index     int // 1-based positional predicate; 0 means none
}

func parsePath(path string) ([]pathStep, error) {
	path = strings.TrimPrefix(path, "/")
	if path == "" {
		return nil, fmt.Errorf("xmltree: empty path")
	}
	parts := strings.Split(path, "/")
	steps := make([]pathStep, 0, len(parts))
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("xmltree: empty path step in %q", path)
		}
		st := pathStep{}
		if i := strings.IndexByte(p, '['); i >= 0 {
			if !strings.HasSuffix(p, "]") {
				return nil, fmt.Errorf("xmltree: malformed predicate in step %q", p)
			}
			pred := p[i+1 : len(p)-1]
			st.name = p[:i]
			if eq := strings.IndexByte(pred, '='); eq >= 0 {
				st.attrName = strings.TrimPrefix(strings.TrimSpace(pred[:eq]), "@")
				st.attrValue = strings.Trim(strings.TrimSpace(pred[eq+1:]), `'"`)
			} else {
				idx, err := strconv.Atoi(pred)
				if err != nil || idx < 1 {
					return nil, fmt.Errorf("xmltree: bad positional predicate %q", pred)
				}
				st.index = idx
			}
		} else {
			st.name = p
		}
		if st.name == "" {
			return nil, fmt.Errorf("xmltree: missing name in step %q", p)
		}
		steps = append(steps, st)
	}
	return steps, nil
}

func (st pathStep) apply(n *Node) []*Node {
	if strings.HasPrefix(st.name, "@") {
		if v, ok := n.Attr(st.name[1:]); ok {
			return []*Node{TextNode(v)}
		}
		return nil
	}
	var out []*Node
	pos := 0
	for _, c := range n.Children {
		if c.IsText() {
			continue
		}
		if st.name != "*" && c.Name != st.name {
			continue
		}
		if st.attrName != "" {
			if v, ok := c.Attr(st.attrName); !ok || v != st.attrValue {
				continue
			}
		}
		pos++
		if st.index > 0 && pos != st.index {
			continue
		}
		out = append(out, c)
		if st.index > 0 {
			break
		}
	}
	return out
}
