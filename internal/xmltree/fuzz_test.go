package xmltree

import "testing"

// FuzzParseRoundTrip checks that the canonical serialization is a parse
// fixpoint: for any input that parses at all, String(Parse(s)) parses back
// to the same tree and the same bytes, and the arithmetic ByteSize agrees
// with the serialized length (frozen or not). Under plain `go test` only
// the seed corpus runs; `go test -fuzz=FuzzParseRoundTrip` explores.
func FuzzParseRoundTrip(f *testing.F) {
	for _, s := range []string{
		`<a/>`,
		`<a x="1"/>`,
		`<a b="&lt;&amp;&quot;" a="2">text<b/> tail </a>`,
		`<mqp id="q" target="c:1"><plan><data><item zip="97201"><price>5</price></item></data></plan></mqp>`,
		`<a>"x" &gt; 'y' &amp; z</a>`,
		`<a>pre<![CDATA[mid <raw> & bits]]>post</a>`,
		`<a x:k="1" y:k="2" xmlns:x="u1" xmlns:y="u2"/>`,
		"<a k=\"tab\tnl\ncr\rend\">line1\nline2&#xD;</a>",
		`<a><b><c><d>deep</d></c></b></a>`,
		`<mqp id="q" target="c:1"><plan><urn name="urn:X:Y"/></plan>` +
			`<visited b="4">meta:9020 2 FnYrjV5vcIE<a s="s1:9020" u="urn:InterestArea:(USA.OR.Portland,Music.CDs)"/></visited></mqp>`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			t.Skip("oversized input")
		}
		n, err := ParseString(s)
		if err != nil {
			t.Skip("not well-formed")
		}
		c := n.String()
		if got := n.ByteSize(); got != len(c) {
			t.Fatalf("ByteSize = %d, serialized length = %d\ninput: %q\ncanonical: %q", got, len(c), s, c)
		}
		n2, err := ParseString(c)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ninput: %q\ncanonical: %q", err, s, c)
		}
		c2 := n2.String()
		if c2 != c {
			t.Fatalf("canonical form is not a fixpoint\ninput: %q\nfirst:  %q\nsecond: %q", s, c, c2)
		}
		if !Equal(n, n2) {
			t.Fatalf("re-parsed tree differs structurally\ninput: %q\ncanonical: %q", s, c)
		}
		if got := n2.Freeze().ByteSize(); got != len(c2) {
			t.Fatalf("frozen ByteSize = %d, want %d", got, len(c2))
		}
	})
}
