package namespace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hierarchy"
)

// paperNamespace builds the Location × Merchandise namespace of paper Fig. 5.
func paperNamespace() *Namespace {
	loc := hierarchy.New("Location")
	for _, p := range []string{
		"USA/OR/Portland", "USA/OR/Eugene",
		"USA/WA/Seattle", "USA/WA/Vancouver",
		"USA/CA", "France",
	} {
		loc.MustAdd(p)
	}
	merch := hierarchy.New("Merchandise")
	for _, p := range []string{
		"Electronics/TV", "Electronics/VCR",
		"Furniture/Tables", "Furniture/Chairs",
		"Music/CDs", "SportingGoods/GolfClubs/Putters",
	} {
		merch.MustAdd(p)
	}
	return MustNew(loc, merch)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty namespace should error")
	}
	h := hierarchy.New("X")
	if _, err := New(h, h); err == nil {
		t.Fatal("duplicate dimension should error")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("nil dimension should error")
	}
}

func TestParseCell(t *testing.T) {
	ns := paperNamespace()
	c, err := ns.ParseCell("[USA/OR/Portland, Furniture/Chairs]")
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "[USA/OR/Portland, Furniture/Chairs]" {
		t.Fatalf("cell = %v", c)
	}
	if _, err := ns.ParseCell("[USA]"); err == nil {
		t.Fatal("wrong arity should error")
	}
	top := ns.MustParseCell("[*, *]")
	if !top.Coords[0].IsTop() || !top.Coords[1].IsTop() {
		t.Fatalf("top cell = %v", top)
	}
}

func TestCellCoversOverlap(t *testing.T) {
	ns := paperNamespace()
	usaFurn := ns.MustParseCell("[USA, Furniture]")
	pdxChairs := ns.MustParseCell("[USA/OR/Portland, Furniture/Chairs]")
	pdxAll := ns.MustParseCell("[USA/OR/Portland, *]")
	waTV := ns.MustParseCell("[USA/WA, Electronics/TV]")

	if !usaFurn.Covers(pdxChairs) {
		t.Fatal("[USA,Furniture] must cover [Portland,Chairs]")
	}
	if pdxChairs.Covers(usaFurn) {
		t.Fatal("cover must not be symmetric here")
	}
	if !pdxAll.Overlaps(pdxChairs) || !pdxChairs.Overlaps(pdxAll) {
		t.Fatal("overlap expected")
	}
	if pdxAll.Overlaps(waTV) {
		t.Fatal("different cities should not overlap")
	}
	m, ok := pdxAll.Meet(usaFurn)
	if !ok || m.String() != "[USA/OR/Portland, Furniture]" {
		t.Fatalf("meet = %v %v", m, ok)
	}
}

// TestFig5 reproduces the cover/overlap facts depicted in paper Fig. 5:
// area (a) = Vancouver furniture + Portland furniture; area (b) = all items
// in Portland.
func TestFig5(t *testing.T) {
	ns := paperNamespace()
	a := NewArea(
		ns.MustParseCell("[USA/WA/Vancouver, Furniture]"),
		ns.MustParseCell("[USA/OR/Portland, Furniture]"),
	)
	b := NewArea(ns.MustParseCell("[USA/OR/Portland, *]"))

	// (a) and (b) overlap on Portland furniture.
	if !a.Overlaps(b) {
		t.Fatal("areas (a) and (b) must overlap")
	}
	// Neither covers the other.
	if a.Covers(b) || b.Covers(a) {
		t.Fatal("neither area covers the other in Fig. 5")
	}
	// Their intersection is exactly Portland furniture.
	want := NewArea(ns.MustParseCell("[USA/OR/Portland, Furniture]"))
	if got := a.Intersect(b); !got.Equal(want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	// A chairs query in Portland overlaps both.
	q := NewArea(ns.MustParseCell("[USA/OR/Portland, Furniture/Chairs]"))
	if !a.Overlaps(q) || !b.Overlaps(q) {
		t.Fatal("chairs-in-Portland query must overlap both areas")
	}
	// ... and is covered by both.
	if !a.Covers(q) || !b.Covers(q) {
		t.Fatal("chairs-in-Portland query must be covered by both areas")
	}
	// A Seattle TV query overlaps only (neither).
	s := NewArea(ns.MustParseCell("[USA/WA/Seattle, Electronics/TV]"))
	if a.Overlaps(s) || b.Overlaps(s) {
		t.Fatal("Seattle TVs must not overlap either area")
	}
}

func TestAreaNormalization(t *testing.T) {
	ns := paperNamespace()
	// The second cell is covered by the first and must be dropped.
	a := NewArea(
		ns.MustParseCell("[USA, Furniture]"),
		ns.MustParseCell("[USA/OR/Portland, Furniture/Chairs]"),
	)
	if len(a.Cells) != 1 {
		t.Fatalf("normalized cells = %v", a.Cells)
	}
	// Duplicates collapse.
	b := NewArea(
		ns.MustParseCell("[USA, Furniture]"),
		ns.MustParseCell("[USA, Furniture]"),
	)
	if len(b.Cells) != 1 {
		t.Fatalf("duplicate cells kept: %v", b.Cells)
	}
}

func TestAreaUnionIntersect(t *testing.T) {
	ns := paperNamespace()
	or := ns.MustParseArea("[USA/OR, *]")
	furn := ns.MustParseArea("[*, Furniture]")
	u := or.Union(furn)
	if len(u.Cells) != 2 {
		t.Fatalf("union = %v", u)
	}
	i := or.Intersect(furn)
	want := ns.MustParseArea("[USA/OR, Furniture]")
	if !i.Equal(want) {
		t.Fatalf("intersect = %v, want %v", i, want)
	}
	empty := or.Intersect(ns.MustParseArea("[France, *]"))
	if !empty.Empty() {
		t.Fatalf("disjoint intersect = %v", empty)
	}
}

func TestAreaCoversCell(t *testing.T) {
	ns := paperNamespace()
	a := ns.MustParseArea("[USA/OR, *] + [USA/WA, Furniture]")
	if !a.CoversCell(ns.MustParseCell("[USA/OR/Portland, Music/CDs]")) {
		t.Fatal("should cover Portland CDs")
	}
	if a.CoversCell(ns.MustParseCell("[USA/WA/Seattle, Music/CDs]")) {
		t.Fatal("should not cover Seattle CDs")
	}
}

func TestValidateAndGeneralize(t *testing.T) {
	ns := paperNamespace()
	good := ns.MustParseArea("[USA/OR, Furniture]")
	if err := ns.Validate(good); err != nil {
		t.Fatal(err)
	}
	bad := ns.MustParseArea("[USA/TX, Furniture]")
	if err := ns.Validate(bad); err == nil {
		t.Fatal("unknown category should fail validation")
	}
	gen := ns.Generalize(bad)
	want := ns.MustParseArea("[USA, Furniture]")
	if !gen.Equal(want) {
		t.Fatalf("generalize = %v, want %v", gen, want)
	}
	// Wrong arity cell: Validate errors.
	if err := ns.Validate(Area{Cells: []Cell{NewCell(hierarchy.Top)}}); err == nil {
		t.Fatal("wrong arity should fail validation")
	}
}

func TestURNRoundTrip(t *testing.T) {
	ns := paperNamespace()
	a := NewArea(
		ns.MustParseCell("[USA/OR/Portland, Furniture]"),
		ns.MustParseCell("[USA/WA/Vancouver, Furniture]"),
	)
	urn := EncodeURN(a)
	// The paper's example encoding, §3.4.
	want := "urn:InterestArea:(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)"
	if urn != want {
		t.Fatalf("urn = %q, want %q", urn, want)
	}
	back, err := DecodeURN(urn)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a) {
		t.Fatalf("decode = %v, want %v", back, a)
	}
}

func TestURNTopAndErrors(t *testing.T) {
	ns := paperNamespace()
	a := NewArea(ns.MustParseCell("[USA/OR/Portland, *]"))
	urn := EncodeURN(a)
	if urn != "urn:InterestArea:(USA.OR.Portland,*)" {
		t.Fatalf("urn = %q", urn)
	}
	back, err := DecodeURN(urn)
	if err != nil || !back.Equal(a) {
		t.Fatalf("decode: %v %v", back, err)
	}
	for _, bad := range []string{
		"urn:Other:x",
		"urn:InterestArea:",
		"urn:InterestArea:USA.OR",
		"urn:InterestArea:(USA..OR,*)",
	} {
		if _, err := DecodeURN(bad); err == nil {
			t.Errorf("DecodeURN(%q): want error", bad)
		}
	}
	if IsAreaURN("urn:ForSale:Portland-CDs") {
		t.Fatal("named URN misidentified as area URN")
	}
}

func randCell(r *rand.Rand, ns *Namespace) Cell {
	pick := func(h *hierarchy.Hierarchy) hierarchy.Path {
		all := h.All()
		i := r.Intn(len(all) + 1)
		if i == len(all) {
			return hierarchy.Top
		}
		return all[i]
	}
	dims := ns.Dimensions()
	coords := make([]hierarchy.Path, len(dims))
	for i, d := range dims {
		coords[i] = pick(d)
	}
	return Cell{Coords: coords}
}

func randArea(r *rand.Rand, ns *Namespace) Area {
	n := 1 + r.Intn(3)
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = randCell(r, ns)
	}
	return NewArea(cells...)
}

// Property: URN encode/decode is the identity on normalized areas.
func TestPropertyURNRoundTrip(t *testing.T) {
	ns := paperNamespace()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randArea(r, ns)
		back, err := DecodeURN(EncodeURN(a))
		return err == nil && back.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Covers implies Overlaps for non-empty areas.
func TestPropertyCoversImpliesOverlaps(t *testing.T) {
	ns := paperNamespace()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randArea(r, ns), randArea(r, ns)
		if a.Covers(b) && !b.Empty() && !a.Overlaps(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect is covered by both operands; Union covers both.
func TestPropertyIntersectUnion(t *testing.T) {
	ns := paperNamespace()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randArea(r, ns), randArea(r, ns)
		i := a.Intersect(b)
		if !a.Covers(i) || !b.Covers(i) {
			return false
		}
		u := a.Union(b)
		return u.Covers(a) && u.Covers(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: overlap is symmetric.
func TestPropertyOverlapSymmetric(t *testing.T) {
	ns := paperNamespace()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randArea(r, ns), randArea(r, ns)
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDimIndex(t *testing.T) {
	ns := paperNamespace()
	if ns.DimIndex("Location") != 0 || ns.DimIndex("Merchandise") != 1 || ns.DimIndex("X") != -1 {
		t.Fatal("DimIndex broken")
	}
	if ns.NumDims() != 2 {
		t.Fatal("NumDims broken")
	}
}

func TestAreaString(t *testing.T) {
	ns := paperNamespace()
	a := ns.MustParseArea("[USA/OR, *] + [France, Furniture]")
	s := a.String()
	if !strings.Contains(s, "France") || !strings.Contains(s, "USA/OR") {
		t.Fatalf("area string = %q", s)
	}
}

func BenchmarkAreaOverlaps(b *testing.B) {
	ns := paperNamespace()
	a1 := ns.MustParseArea("[USA/OR, *] + [USA/WA, Furniture] + [France, Music]")
	a2 := ns.MustParseArea("[USA/WA/Vancouver, Furniture/Chairs]")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !a1.Overlaps(a2) {
			b.Fatal("expected overlap")
		}
	}
}
