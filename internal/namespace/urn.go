package namespace

import (
	"fmt"
	"strings"

	"repro/internal/hierarchy"
)

// URN handling (§3.4). Interest areas are encoded into the namespace-
// specific string of a URN by a purely lexical transliteration:
//
//	urn:InterestArea:(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)
//
// Inside the URN, "." replaces "/" within a category path, "," separates
// dimensions within a cell, and "+" separates cells. "*" denotes a
// dimension's top category.
//
// The paper also uses named-collection URNs such as
// urn:ForSale:Portland-CDs; those are opaque names resolved through catalog
// alias entries (see internal/catalog), which may map them to interest-area
// URNs or directly to URLs.

// URNPrefix is the scheme+namespace-identifier prefix for interest areas.
const URNPrefix = "urn:InterestArea:"

// EncodeURN encodes an interest area as a URN string.
func EncodeURN(a Area) string {
	parts := make([]string, len(a.Cells))
	for i, c := range a.Cells {
		coords := make([]string, len(c.Coords))
		for j, p := range c.Coords {
			if p.IsTop() {
				coords[j] = "*"
			} else {
				coords[j] = strings.Join(p.Segments(), ".")
			}
		}
		parts[i] = "(" + strings.Join(coords, ",") + ")"
	}
	return URNPrefix + strings.Join(parts, "+")
}

// IsAreaURN reports whether the string is an interest-area URN.
func IsAreaURN(urn string) bool {
	return strings.HasPrefix(urn, URNPrefix)
}

// DecodeURN parses an interest-area URN back into an Area. It is the exact
// inverse of EncodeURN on normalized areas.
func DecodeURN(urn string) (Area, error) {
	if !IsAreaURN(urn) {
		return Area{}, fmt.Errorf("namespace: not an interest-area URN: %q", urn)
	}
	body := urn[len(URNPrefix):]
	if body == "" {
		return Area{}, fmt.Errorf("namespace: empty interest-area URN")
	}
	var cells []Cell
	for _, part := range strings.Split(body, "+") {
		part = strings.TrimSpace(part)
		if !strings.HasPrefix(part, "(") || !strings.HasSuffix(part, ")") {
			return Area{}, fmt.Errorf("namespace: malformed cell %q in URN", part)
		}
		inner := part[1 : len(part)-1]
		coordStrs := strings.Split(inner, ",")
		coords := make([]hierarchy.Path, len(coordStrs))
		for i, cs := range coordStrs {
			cs = strings.TrimSpace(cs)
			if cs == "*" || cs == "" {
				coords[i] = hierarchy.Top
				continue
			}
			p, err := hierarchy.ParsePath(strings.ReplaceAll(cs, ".", "/"))
			if err != nil {
				return Area{}, fmt.Errorf("namespace: URN coordinate %q: %w", cs, err)
			}
			coords[i] = p
		}
		cells = append(cells, Cell{Coords: coords})
	}
	return NewArea(cells...), nil
}
