// Package namespace implements the paper's multi-hierarchic namespaces
// (§3.1): a fixed, ordered set of categorization dimensions; interest cells
// (one category per dimension); and interest areas (sets of cells), with the
// cover and overlap relations that drive distributed catalog routing.
//
// It also implements the lexical URN encoding of §3.4, e.g.
//
//	urn:InterestArea:(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)
//
// where categories use "." instead of "/" inside the URN's namespace-
// specific string and "+" separates cells.
package namespace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hierarchy"
)

// Namespace is an ordered set of dimensions. All cells and areas within a
// deployment are expressed over the same Namespace; cell coordinates are
// positional.
type Namespace struct {
	dims []*hierarchy.Hierarchy
}

// New creates a namespace over the given dimensions. The order is
// significant: cell coordinates are positional. At least one dimension is
// required.
func New(dims ...*hierarchy.Hierarchy) (*Namespace, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("namespace: at least one dimension required")
	}
	seen := map[string]bool{}
	for _, d := range dims {
		if d == nil {
			return nil, fmt.Errorf("namespace: nil dimension")
		}
		if seen[d.Name()] {
			return nil, fmt.Errorf("namespace: duplicate dimension %q", d.Name())
		}
		seen[d.Name()] = true
	}
	return &Namespace{dims: dims}, nil
}

// MustNew is New for fixtures; it panics on error.
func MustNew(dims ...*hierarchy.Hierarchy) *Namespace {
	ns, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return ns
}

// Dimensions returns the namespace's dimensions in coordinate order.
func (ns *Namespace) Dimensions() []*hierarchy.Hierarchy {
	out := make([]*hierarchy.Hierarchy, len(ns.dims))
	copy(out, ns.dims)
	return out
}

// NumDims returns the number of dimensions.
func (ns *Namespace) NumDims() int { return len(ns.dims) }

// DimIndex returns the coordinate position of the named dimension, or -1.
func (ns *Namespace) DimIndex(name string) int {
	for i, d := range ns.dims {
		if d.Name() == name {
			return i
		}
	}
	return -1
}

// Everything returns the all-inclusive interest area of the namespace: one
// cell with every coordinate at Top.
func (ns *Namespace) Everything() Area {
	coords := make([]hierarchy.Path, len(ns.dims))
	return NewArea(Cell{Coords: coords})
}

// Cell is an interest cell: the cross product of one category per dimension,
// e.g. [USA/OR/Portland, Furniture]. Coordinates are positional with respect
// to the owning Namespace.
type Cell struct {
	Coords []hierarchy.Path
}

// NewCell builds a cell from per-dimension paths; the number of coordinates
// must match the namespace when the cell is used with one.
func NewCell(coords ...hierarchy.Path) Cell {
	cp := make([]hierarchy.Path, len(coords))
	copy(cp, coords)
	return Cell{Coords: cp}
}

// ParseCell parses "[USA/OR/Portland, Furniture]" or
// "USA/OR/Portland, Furniture" into a cell over the namespace, validating
// coordinate count. Unknown categories are accepted (the paper allows
// referencing categories a peer has not yet learned); use Generalize to map
// them to known ancestors.
func (ns *Namespace) ParseCell(s string) (Cell, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	parts := strings.Split(s, ",")
	if len(parts) != len(ns.dims) {
		return Cell{}, fmt.Errorf("namespace: cell %q has %d coordinates, namespace has %d dimensions", s, len(parts), len(ns.dims))
	}
	coords := make([]hierarchy.Path, len(parts))
	for i, p := range parts {
		path, err := hierarchy.ParsePath(p)
		if err != nil {
			return Cell{}, fmt.Errorf("namespace: cell %q: %w", s, err)
		}
		coords[i] = path
	}
	return Cell{Coords: coords}, nil
}

// MustParseCell is ParseCell for fixtures; it panics on error.
func (ns *Namespace) MustParseCell(s string) Cell {
	c, err := ns.ParseCell(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the cell in the paper's bracket notation.
func (c Cell) String() string {
	parts := make([]string, len(c.Coords))
	for i, p := range c.Coords {
		parts[i] = p.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Equal reports coordinate-wise equality.
func (c Cell) Equal(d Cell) bool {
	if len(c.Coords) != len(d.Coords) {
		return false
	}
	for i := range c.Coords {
		if !c.Coords[i].Equal(d.Coords[i]) {
			return false
		}
	}
	return true
}

// Covers reports whether cell c covers cell d: for every dimension, c's
// category is a parent of, or the same as, d's category (§3.1).
func (c Cell) Covers(d Cell) bool {
	if len(c.Coords) != len(d.Coords) {
		return false
	}
	for i := range c.Coords {
		if !c.Coords[i].Covers(d.Coords[i]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether the two cells share any point of the cross
// product: per dimension, one coordinate must cover the other.
func (c Cell) Overlaps(d Cell) bool {
	if len(c.Coords) != len(d.Coords) {
		return false
	}
	for i := range c.Coords {
		if !c.Coords[i].Overlaps(d.Coords[i]) {
			return false
		}
	}
	return true
}

// Meet returns the intersection cell (the more specific coordinate per
// dimension) and whether the cells overlap at all.
func (c Cell) Meet(d Cell) (Cell, bool) {
	if len(c.Coords) != len(d.Coords) {
		return Cell{}, false
	}
	coords := make([]hierarchy.Path, len(c.Coords))
	for i := range c.Coords {
		m, ok := c.Coords[i].Meet(d.Coords[i])
		if !ok {
			return Cell{}, false
		}
		coords[i] = m
	}
	return Cell{Coords: coords}, true
}

// Compare orders cells lexicographically by coordinate, for deterministic
// output.
func (c Cell) Compare(d Cell) int {
	n := len(c.Coords)
	if len(d.Coords) < n {
		n = len(d.Coords)
	}
	for i := 0; i < n; i++ {
		if cmp := c.Coords[i].Compare(d.Coords[i]); cmp != 0 {
			return cmp
		}
	}
	return len(c.Coords) - len(d.Coords)
}

// Area is an interest area: a set of interest cells (§3.1). Data providers
// describe their holdings with areas; consumers phrase queries with them.
type Area struct {
	Cells []Cell
}

// NewArea builds an area from cells, normalizing away cells covered by other
// cells in the same area (they add no information).
func NewArea(cells ...Cell) Area {
	return Area{Cells: normalize(cells)}
}

// normalize drops cells covered by another cell and sorts for determinism.
func normalize(cells []Cell) []Cell {
	var kept []Cell
	for i, c := range cells {
		covered := false
		for j, d := range cells {
			if i == j {
				continue
			}
			if d.Covers(c) && !(c.Covers(d) && i < j) {
				// c is strictly covered by d, or they are equal and we keep
				// the first occurrence only.
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Compare(kept[j]) < 0 })
	return kept
}

// String renders the area as cell strings joined by " + ".
func (a Area) String() string {
	parts := make([]string, len(a.Cells))
	for i, c := range a.Cells {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}

// Empty reports whether the area has no cells.
func (a Area) Empty() bool { return len(a.Cells) == 0 }

// Equal reports set equality of normalized areas.
func (a Area) Equal(b Area) bool {
	an, bn := normalize(a.Cells), normalize(b.Cells)
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		if !an[i].Equal(bn[i]) {
			return false
		}
	}
	return true
}

// Covers reports whether area a covers area b: every cell of b is covered by
// some cell of a (§3.1).
func (a Area) Covers(b Area) bool {
	for _, bc := range b.Cells {
		ok := false
		for _, ac := range a.Cells {
			if ac.Covers(bc) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Overlaps reports whether there exists a cell both areas cover (§3.1).
func (a Area) Overlaps(b Area) bool {
	for _, ac := range a.Cells {
		for _, bc := range b.Cells {
			if ac.Overlaps(bc) {
				return true
			}
		}
	}
	return false
}

// Intersect returns the area covered by both a and b (the meets of all
// overlapping cell pairs, normalized).
func (a Area) Intersect(b Area) Area {
	var cells []Cell
	for _, ac := range a.Cells {
		for _, bc := range b.Cells {
			if m, ok := ac.Meet(bc); ok {
				cells = append(cells, m)
			}
		}
	}
	return NewArea(cells...)
}

// Union returns the normalized union of the two areas' cells.
func (a Area) Union(b Area) Area {
	cells := make([]Cell, 0, len(a.Cells)+len(b.Cells))
	cells = append(cells, a.Cells...)
	cells = append(cells, b.Cells...)
	return NewArea(cells...)
}

// CoversCell reports whether any cell of the area covers the given cell.
func (a Area) CoversCell(c Cell) bool {
	for _, ac := range a.Cells {
		if ac.Covers(c) {
			return true
		}
	}
	return false
}

// ParseArea parses "cell + cell + ..." (each cell in bracket or bare form)
// over the namespace.
func (ns *Namespace) ParseArea(s string) (Area, error) {
	parts := strings.Split(s, "+")
	cells := make([]Cell, 0, len(parts))
	for _, p := range parts {
		c, err := ns.ParseCell(p)
		if err != nil {
			return Area{}, err
		}
		cells = append(cells, c)
	}
	return NewArea(cells...), nil
}

// MustParseArea is ParseArea for fixtures; it panics on error.
func (ns *Namespace) MustParseArea(s string) Area {
	a, err := ns.ParseArea(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Generalize maps every coordinate of every cell to its deepest known
// ancestor in the namespace's hierarchies (§3.5), so that references to
// unknown categories degrade with no loss of recall.
func (ns *Namespace) Generalize(a Area) Area {
	cells := make([]Cell, 0, len(a.Cells))
	for _, c := range a.Cells {
		if len(c.Coords) != len(ns.dims) {
			continue
		}
		coords := make([]hierarchy.Path, len(c.Coords))
		for i, p := range c.Coords {
			coords[i] = ns.dims[i].Generalize(p)
		}
		cells = append(cells, Cell{Coords: coords})
	}
	return NewArea(cells...)
}

// Validate checks that every coordinate of every cell names an existing
// category.
func (ns *Namespace) Validate(a Area) error {
	for _, c := range a.Cells {
		if len(c.Coords) != len(ns.dims) {
			return fmt.Errorf("namespace: cell %v has %d coordinates, want %d", c, len(c.Coords), len(ns.dims))
		}
		for i, p := range c.Coords {
			if !ns.dims[i].Contains(p) {
				return fmt.Errorf("namespace: unknown category %q in dimension %s", p, ns.dims[i].Name())
			}
		}
	}
	return nil
}
