package catalog

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/namespace"
)

// Role is a peer role in the distributed catalog architecture (§3.2).
type Role int

// Peer roles. A peer may hold several; registrations record one role each.
const (
	RoleBase Role = iota
	RoleIndex
	RoleMetaIndex
	RoleCategory
)

func (r Role) String() string {
	switch r {
	case RoleBase:
		return "base"
	case RoleIndex:
		return "index"
	case RoleMetaIndex:
		return "meta-index"
	case RoleCategory:
		return "category"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Collection is a named collection a base server exports: the index entry of
// §3.2 is "a URL (host and port of the base server) and an XPath expression
// (the base server's identifier for the collection)". Annotations carry the
// attribute indices §3.2 mentions ("indices on data attributes not used for
// categorization, e.g., price"): histograms, cardinalities and distinct
// counts keyed by the algebra annotation names; bindings copy them onto the
// produced URL leaves so later servers can prune and cost sub-plans.
type Collection struct {
	Name        string
	PathExp     string
	Area        namespace.Area
	Annotations map[string]string
}

// Registration is what a server pushes to index/meta-index servers that
// cover it (§3.3): its address, role, interest area, exported collections
// (base servers only), intensional statements it wants retained, and whether
// it claims to be authoritative for its area.
type Registration struct {
	Addr          string
	Role          Role
	Area          namespace.Area
	Collections   []Collection
	Statements    []Statement
	Authoritative bool
	// Supersedes names a peer address whose registrations this one replaces.
	// Replica promotion uses it: when a base server crashes for good, a
	// promoted replica re-registers carrying Supersedes=<source addr>, so the
	// receiving catalog forgets the dead copy in the same mutation that
	// installs the live one — bindings never name both copies of the data.
	Supersedes string
}

// AnnotRoute marks a URN leaf with the server that should resolve it next;
// the MQP router forwards the plan there.
const AnnotRoute = "route"

// Binding is the outcome of resolving a URN against a local catalog.
// Exactly one of the cases holds:
//
//   - Expr != nil: the URN can be replaced by this expression (URL leaves,
//     unions, Or alternatives; possibly URN leaves annotated with routes).
//   - len(Routes) > 0: nothing bindable locally, but these servers may know
//     more; the plan should be forwarded to one of them.
//   - both zero: the catalog knows nothing relevant.
type Binding struct {
	Expr   *algebra.Node
	Routes []string
}

// Known reports whether the binding carries any information.
func (b Binding) Known() bool { return b.Expr != nil || len(b.Routes) > 0 }

// Catalog is one peer's local catalog. Safe for concurrent use.
type Catalog struct {
	ns   *namespace.Namespace
	self string

	mu sync.RWMutex
	// aliases maps opaque URNs (urn:ForSale:Portland-CDs) to replacement
	// URN or URL strings (urls are detected by "http" prefix).
	aliases map[string][]string
	// regs are the registrations this peer has accepted or learned.
	regs []Registration
	// stmts are retained intensional statements (§4.2).
	stmts []Statement
	// cache maps URN strings to previously computed bindings (§3.4: peers
	// maintain caches of index and meta-index servers for interest areas).
	cache        map[string]Binding
	cacheEnabled bool
	hits, misses int64

	// gen counts catalog mutations. Consumers that cache anything derived
	// from catalog state (the mqp prepared-plan cache above all) key their
	// entries on the value read before deriving; a mismatch later means the
	// catalog changed underneath and the derivation must be redone.
	gen atomic.Uint64
}

// New creates an empty catalog for the peer at self over namespace ns.
func New(ns *namespace.Namespace, self string) *Catalog {
	return &Catalog{
		ns:           ns,
		self:         self,
		aliases:      map[string][]string{},
		cache:        map[string]Binding{},
		cacheEnabled: true,
	}
}

// Namespace returns the catalog's namespace.
func (c *Catalog) Namespace() *namespace.Namespace { return c.ns }

// EnableCache turns the resolution cache on or off (the E9 ablation).
func (c *Catalog) EnableCache(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cacheEnabled = on
	if !on {
		c.cache = map[string]Binding{}
	}
}

// CacheStats returns (hits, misses) counters.
func (c *Catalog) CacheStats() (int64, int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// AddAlias maps an opaque URN to one or more URNs/URLs. Later entries
// append.
func (c *Catalog) AddAlias(urn string, targets ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aliases[urn] = append(c.aliases[urn], targets...)
	c.invalidateLocked()
}

// Register accepts (or updates) a registration; a registration from the
// same address with the same role replaces the previous one. Statements
// carried by the registration are retained (§4.2: "whenever a server
// registers an interest area with a meta-index server, it can also provide
// intensional statements that the meta-index server can retain").
func (c *Catalog) Register(reg Registration) error {
	if reg.Addr == "" {
		return fmt.Errorf("catalog: registration without address")
	}
	if reg.Area.Empty() {
		return fmt.Errorf("catalog: registration from %s without interest area", reg.Addr)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if reg.Supersedes != "" && reg.Supersedes != reg.Addr {
		kept := c.regs[:0]
		for _, r := range c.regs {
			if r.Addr != reg.Supersedes {
				kept = append(kept, r)
			}
		}
		for i := len(kept); i < len(c.regs); i++ {
			c.regs[i] = Registration{}
		}
		c.regs = kept
	}
	replaced := false
	for i := range c.regs {
		if c.regs[i].Addr == reg.Addr && c.regs[i].Role == reg.Role {
			c.regs[i] = reg
			replaced = true
			break
		}
	}
	if !replaced {
		c.regs = append(c.regs, reg)
	}
	for _, s := range reg.Statements {
		c.addStatementLocked(s)
	}
	c.invalidateLocked()
	return nil
}

// Deregister removes every registration from addr — the graceful-leave
// counterpart of crash supersession: a peer that leaves cleanly announces
// it, so its dead registrations stop lingering until a replica happens to
// supersede them. Returns the number of registrations removed; the catalog
// generation advances only when something was actually removed.
func (c *Catalog) Deregister(addr string) int {
	if addr == "" {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.regs[:0]
	for _, r := range c.regs {
		if r.Addr != addr {
			kept = append(kept, r)
		}
	}
	removed := len(c.regs) - len(kept)
	for i := len(kept); i < len(c.regs); i++ {
		c.regs[i] = Registration{}
	}
	c.regs = kept
	if removed > 0 {
		c.invalidateLocked()
	}
	return removed
}

// AbsorbLearned folds a confirmed learned shortcut — server answered the
// resource area named by areaURN — into the catalog as a real,
// non-authoritative index registration: the §5.1 meta-index update that
// makes learning survive the shortcut table (and, pushed upstream, the peer)
// that did it. Areas naming categories this namespace's hierarchies do not
// know are generalized to their deepest known ancestors first (§3.5:
// precision may be lost, recall is not). Absorbing an area the catalog
// already covers for that server is a no-op, so repeated confirmation does
// not churn the catalog generation.
func (c *Catalog) AbsorbLearned(server, areaURN string) error {
	if server == "" || server == c.self {
		return fmt.Errorf("catalog: cannot absorb shortcut to %q", server)
	}
	area, err := namespace.DecodeURN(areaURN)
	if err != nil {
		return fmt.Errorf("catalog: absorb %s: %w", server, err)
	}
	if err := c.ns.Validate(area); err != nil {
		area = c.ns.Generalize(area)
	}
	if area.Empty() {
		return fmt.Errorf("catalog: learned area %q generalizes to nothing this namespace knows", areaURN)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.regs {
		if c.regs[i].Addr == server && c.regs[i].Role == RoleIndex {
			if c.regs[i].Area.Covers(area) {
				return nil
			}
			cells := append(append([]namespace.Cell(nil), c.regs[i].Area.Cells...), area.Cells...)
			c.regs[i].Area = namespace.NewArea(cells...)
			c.invalidateLocked()
			return nil
		}
	}
	c.regs = append(c.regs, Registration{Addr: server, Role: RoleIndex, Area: area})
	c.invalidateLocked()
	return nil
}

// AddStatement retains an intensional statement.
func (c *Catalog) AddStatement(s Statement) error {
	if err := s.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addStatementLocked(s)
	c.invalidateLocked()
	return nil
}

func (c *Catalog) addStatementLocked(s Statement) {
	key := s.String()
	for _, old := range c.stmts {
		if old.String() == key {
			return
		}
	}
	c.stmts = append(c.stmts, s)
}

func (c *Catalog) invalidateLocked() {
	c.gen.Add(1)
	if len(c.cache) > 0 {
		c.cache = map[string]Binding{}
	}
}

// Generation returns the catalog's mutation counter. It increments on every
// aliasing, registration or statement change; two equal readings bracket a
// window in which every Resolve answer was stable.
func (c *Catalog) Generation() uint64 { return c.gen.Load() }

// Statements returns the retained statements.
func (c *Catalog) Statements() []Statement {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Statement, len(c.stmts))
	copy(out, c.stmts)
	return out
}

// Registrations returns a copy of all registrations.
func (c *Catalog) Registrations() []Registration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Registration, len(c.regs))
	copy(out, c.regs)
	return out
}

// Resolve resolves a URN string. Opaque URNs are first chased through the
// alias table (possibly to URLs); interest-area URNs are bound against
// registrations and intensional statements.
func (c *Catalog) Resolve(urn string) (Binding, error) {
	c.mu.Lock()
	if c.cacheEnabled {
		if b, ok := c.cache[urn]; ok {
			c.hits++
			c.mu.Unlock()
			return cloneBinding(b), nil
		}
		c.misses++
	}
	c.mu.Unlock()

	b, err := c.resolveUncached(urn, map[string]bool{})
	if err != nil {
		return Binding{}, err
	}
	c.mu.Lock()
	if c.cacheEnabled && b.Known() {
		c.cache[urn] = cloneBinding(b)
	}
	c.mu.Unlock()
	return b, nil
}

func cloneBinding(b Binding) Binding {
	out := Binding{Routes: append([]string(nil), b.Routes...)}
	if b.Expr != nil {
		out.Expr = b.Expr.Clone()
	}
	return out
}

func (c *Catalog) resolveUncached(urn string, seen map[string]bool) (Binding, error) {
	if seen[urn] {
		return Binding{}, fmt.Errorf("catalog: alias cycle through %q", urn)
	}
	seen[urn] = true

	if namespace.IsAreaURN(urn) {
		area, err := namespace.DecodeURN(urn)
		if err != nil {
			return Binding{}, err
		}
		return c.bindArea(urn, area), nil
	}

	c.mu.RLock()
	targets := append([]string(nil), c.aliases[urn]...)
	c.mu.RUnlock()
	if len(targets) == 0 {
		// An opaque name this catalog has never heard of: the best this
		// peer can do is route toward servers with broader knowledge
		// (meta-index servers first, since opaque names carry no area to
		// match against).
		return Binding{Routes: c.fallbackRoutes()}, nil
	}
	var exprs []*algebra.Node
	var routes []string
	for _, t := range targets {
		if isURL(t) {
			u, pathExp := splitURL(t)
			exprs = append(exprs, algebra.URL(u, pathExp))
			continue
		}
		sub, err := c.resolveUncached(t, seen)
		if err != nil {
			return Binding{}, err
		}
		if sub.Expr != nil {
			exprs = append(exprs, sub.Expr)
		}
		routes = append(routes, sub.Routes...)
	}
	b := Binding{Routes: dedupe(routes)}
	switch len(exprs) {
	case 0:
	case 1:
		b.Expr = exprs[0]
	default:
		b.Expr = algebra.Union(exprs...)
	}
	return b, nil
}

func isURL(s string) bool {
	return len(s) >= 4 && s[:4] == "http"
}

// fallbackRoutes lists index/meta-index servers to try for names this
// catalog cannot interpret: authoritative before not, broadest interest
// area first (a meta server is likelier to know an arbitrary name).
func (c *Catalog) fallbackRoutes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	type hit struct {
		addr  string
		auth  bool
		cells int
	}
	var hits []hit
	for _, reg := range c.regs {
		if reg.Role != RoleIndex && reg.Role != RoleMetaIndex {
			continue
		}
		if reg.Addr == c.self {
			continue
		}
		hits = append(hits, hit{addr: reg.Addr, auth: reg.Authoritative, cells: areaWeight(reg.Area)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].auth != hits[j].auth {
			return hits[i].auth
		}
		if hits[i].cells != hits[j].cells {
			return hits[i].cells < hits[j].cells
		}
		return hits[i].addr < hits[j].addr
	})
	addrs := make([]string, len(hits))
	for i, h := range hits {
		addrs[i] = h.addr
	}
	return dedupe(addrs)
}

// splitURL separates a URL alias target into the server part and the
// collection identifier (§3.2): "http://tracks:9020/data[id=9]" yields
// ("http://tracks:9020", "/data[id=9]"). A bare host (or trailing slash
// only) yields an empty path expression.
func splitURL(s string) (url, pathExp string) {
	rest := s
	scheme := ""
	for _, p := range []string{"http://", "https://"} {
		if len(rest) > len(p) && rest[:len(p)] == p {
			scheme, rest = p, rest[len(p):]
			break
		}
	}
	i := -1
	for j := 0; j < len(rest); j++ {
		if rest[j] == '/' {
			i = j
			break
		}
	}
	if i < 0 {
		return s, ""
	}
	path := rest[i:]
	if path == "/" {
		path = ""
	}
	return scheme + rest[:i], path
}

func dedupe(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// bindArea constructs the binding for an interest-area URN: the union of
// overlapping base collections, improved by intensional statements into Or
// alternatives, plus routes to overlapping index/meta-index servers.
func (c *Catalog) bindArea(urn string, area namespace.Area) Binding {
	c.mu.RLock()
	defer c.mu.RUnlock()

	// 1. Base data: collections whose area overlaps the query area.
	type baseHit struct {
		addr string
		coll Collection
	}
	var hits []baseHit
	for _, reg := range c.regs {
		if reg.Role != RoleBase {
			continue
		}
		for _, coll := range reg.Collections {
			if coll.Area.Overlaps(area) {
				hits = append(hits, baseHit{addr: reg.Addr, coll: coll})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].addr != hits[j].addr {
			return hits[i].addr < hits[j].addr
		}
		return hits[i].coll.Name < hits[j].coll.Name
	})

	var expr *algebra.Node
	if len(hits) > 0 {
		leaves := make([]*algebra.Node, len(hits))
		for i, h := range hits {
			leaf := algebra.URL(h.addr, h.coll.PathExp)
			leaf.Annotate(algebra.AnnotSource, h.addr)
			for k, v := range h.coll.Annotations {
				leaf.Annotate(k, v)
			}
			// The collection's registered area travels on the leaf so
			// materialized data stays attributable to a (server, area) pair —
			// the granularity of partial-result resubmission. The processor
			// strips it from plans that did not opt into resubmission.
			leaf.Annotate(algebra.AnnotArea, namespace.EncodeURN(h.coll.Area))
			leaves[i] = leaf
		}
		if len(leaves) == 1 {
			expr = leaves[0]
		} else {
			expr = algebra.Union(leaves...)
		}
		present := map[string]bool{}
		for _, h := range hits {
			present[h.addr] = true
		}
		expr = c.applyStatementsLocked(urn, area, expr, present)
	}

	// 2. Routes: index/meta-index servers overlapping the area, most
	// specific (smallest) interest area first, authoritative before not,
	// never ourselves.
	type routeHit struct {
		addr  string
		auth  bool
		cells int
	}
	var routes []routeHit
	for _, reg := range c.regs {
		if reg.Role != RoleIndex && reg.Role != RoleMetaIndex {
			continue
		}
		if reg.Addr == c.self {
			continue
		}
		if reg.Area.Overlaps(area) {
			routes = append(routes, routeHit{addr: reg.Addr, auth: reg.Authoritative, cells: areaWeight(reg.Area)})
		}
	}
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].auth != routes[j].auth {
			return routes[i].auth
		}
		if routes[i].cells != routes[j].cells {
			return routes[i].cells > routes[j].cells
		}
		return routes[i].addr < routes[j].addr
	})
	addrs := make([]string, len(routes))
	for i, r := range routes {
		addrs[i] = r.addr
	}
	return Binding{Expr: expr, Routes: dedupe(addrs)}
}

// areaWeight approximates an interest area's specificity: the total depth of
// all cell coordinates. Larger is more specific.
func areaWeight(a namespace.Area) int {
	w := 0
	for _, cell := range a.Cells {
		for _, p := range cell.Coords {
			w += p.Depth()
		}
	}
	return w
}

// applyStatementsLocked improves a plain union binding using intensional
// statements, producing Or alternatives (§4.2 Examples 1–3):
//
//   - Equality base[A]@R = base[A]@S with A covering the query area and both
//     servers present in the union: either server alone suffices, so each
//     redundant server's leaves become an Or alternative.
//   - Superset base[A]@R >= base[A]@S{d}: R alone is complete but up to d
//     minutes stale; the alternative routing to both is current.
//   - Index coverage index[A]@R = base[A]@S ∪ …: routing to R substitutes
//     for contacting every base server; R appears as an annotated URN
//     alternative.
func (c *Catalog) applyStatementsLocked(urn string, area namespace.Area, union *algebra.Node, present map[string]bool) *algebra.Node {
	expr := union
	for _, st := range c.stmts {
		if !st.Left.Area.Covers(area) {
			continue
		}
		switch {
		case st.Op == StmtEqual && st.Left.Level == LevelBase && len(st.Right) == 1 &&
			st.Right[0].Level == LevelBase && st.Right[0].Area.Covers(area):
			// Example 1: R and S are interchangeable for this area.
			r, s := st.Left.Addr, st.Right[0].Addr
			if present[r] && present[s] {
				altR := pruneServers(expr, map[string]bool{s: true})
				altS := pruneServers(expr, map[string]bool{r: true})
				if altR != nil && altS != nil {
					altR.SetStaleness(st.Right[0].DelayMin)
					altS.SetStaleness(0)
					expr = algebra.Or(altR, altS)
				}
			}

		case st.Op == StmtSuperset && st.Left.Level == LevelBase:
			// Example 3: R ⊇ S{d}: R alone (stale up to d) | R ∪ S (current).
			r := st.Left.Addr
			maxDelay := 0
			allCovered := true
			for _, t := range st.Right {
				if !t.Area.Covers(area) {
					allCovered = false
					break
				}
				if t.DelayMin > maxDelay {
					maxDelay = t.DelayMin
				}
			}
			if !allCovered || !present[r] {
				continue
			}
			others := map[string]bool{}
			for _, t := range st.Right {
				if present[t.Addr] {
					others[t.Addr] = true
				}
			}
			if len(others) == 0 {
				continue
			}
			rOnly := pruneServers(expr, others)
			if rOnly == nil {
				continue
			}
			rOnly.SetStaleness(maxDelay)
			full := expr.Clone()
			full.SetStaleness(0)
			expr = algebra.Or(rOnly, full)

		case st.Op == StmtEqual && st.Left.Level == LevelIndex:
			// Example 2: index[A]@R = union of base terms. Routing to R can
			// substitute for contacting all the listed base servers.
			allCovered := true
			for _, t := range st.Right {
				if t.Level != LevelBase || !t.Area.Covers(area) {
					allCovered = false
					break
				}
			}
			if !allCovered {
				continue
			}
			covered := map[string]bool{}
			for _, t := range st.Right {
				covered[t.Addr] = true
			}
			anyPresent := false
			for a := range covered {
				if present[a] {
					anyPresent = true
					break
				}
			}
			if !anyPresent {
				continue
			}
			viaIndex := algebra.URN(urn)
			viaIndex.Annotate(AnnotRoute, st.Left.Addr)
			viaIndex.Annotate(algebra.AnnotSource, st.Left.Addr)
			direct := expr.Clone()
			expr = algebra.Or(viaIndex, direct)
		}
	}
	return expr
}

// pruneServers removes URL leaves sourced at the given servers from a
// union/leaf expression, returning nil when nothing remains or when the
// expression shape is not a plain union of URL leaves.
func pruneServers(expr *algebra.Node, drop map[string]bool) *algebra.Node {
	collect := func(n *algebra.Node) ([]*algebra.Node, bool) {
		switch n.Kind {
		case algebra.KindURL:
			return []*algebra.Node{n}, true
		case algebra.KindUnion:
			var out []*algebra.Node
			for _, c := range n.Children {
				if c.Kind != algebra.KindURL {
					return nil, false
				}
				out = append(out, c)
			}
			return out, true
		default:
			return nil, false
		}
	}
	leaves, ok := collect(expr)
	if !ok {
		return nil
	}
	var kept []*algebra.Node
	for _, l := range leaves {
		src, _ := l.Annotation(algebra.AnnotSource)
		if src == "" {
			src = l.URL
		}
		if !drop[src] {
			kept = append(kept, l.Clone())
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return algebra.Union(kept...)
	}
}

// BaseCollections lists collections this catalog knows that overlap the
// area, for index-server query answering.
func (c *Catalog) BaseCollections(area namespace.Area) []Registration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Registration
	for _, reg := range c.regs {
		if reg.Role != RoleBase {
			continue
		}
		var colls []Collection
		for _, coll := range reg.Collections {
			if coll.Area.Overlaps(area) {
				colls = append(colls, coll)
			}
		}
		if len(colls) > 0 {
			out = append(out, Registration{
				Addr: reg.Addr, Role: reg.Role, Area: reg.Area,
				Collections: colls, Authoritative: reg.Authoritative,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// String summarizes the catalog for diagnostics.
func (c *Catalog) String() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return "catalog{self=" + c.self +
		" regs=" + strconv.Itoa(len(c.regs)) +
		" aliases=" + strconv.Itoa(len(c.aliases)) +
		" stmts=" + strconv.Itoa(len(c.stmts)) + "}"
}
