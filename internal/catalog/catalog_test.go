package catalog

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/xmltree"
)

// testNS builds the Location × Merchandise namespace used in §4's examples.
func testNS() *namespace.Namespace {
	loc := hierarchy.New("Location")
	for _, p := range []string{
		"USA/OR/Portland", "USA/OR/Eugene", "USA/WA/Seattle", "France",
	} {
		loc.MustAdd(p)
	}
	merch := hierarchy.New("Merchandise")
	for _, p := range []string{
		"Recreation/SportingGoods/GolfClubs/Putters", "Music/CDs",
		"Furniture/Chairs",
	} {
		merch.MustAdd(p)
	}
	return namespace.MustNew(loc, merch)
}

func areaURN(ns *namespace.Namespace, s string) string {
	return namespace.EncodeURN(ns.MustParseArea(s))
}

func baseReg(ns *namespace.Namespace, addr, areaStr string) Registration {
	area := ns.MustParseArea(areaStr)
	return Registration{
		Addr: addr,
		Role: RoleBase,
		Area: area,
		Collections: []Collection{
			{Name: "items", PathExp: "/data[id=1]", Area: area},
		},
	}
}

func TestStatementParseRoundTrip(t *testing.T) {
	ns := testNS()
	cases := []string{
		"base[USA/OR/Portland, *]@R = base[USA/OR/Portland, *]@S",
		"base[USA/OR/Portland, *]@R >= base[USA/OR/Portland, *]@S{30}",
		"index[USA/OR, Recreation/SportingGoods/GolfClubs]@R = base[USA/OR, Recreation/SportingGoods/GolfClubs]@S U base[USA/OR, Recreation/SportingGoods/GolfClubs]@T U base[USA/OR, Recreation/SportingGoods/GolfClubs]@U",
		"index[USA/OR/Portland, *]@R = index[USA/OR/Portland, *]@S",
	}
	for _, src := range cases {
		st, err := ParseStatement(ns, src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		back, err := ParseStatement(ns, st.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", st.String(), err)
		}
		if back.String() != st.String() {
			t.Fatalf("round trip: %q vs %q", back.String(), st.String())
		}
	}
}

func TestStatementParseErrors(t *testing.T) {
	ns := testNS()
	bad := []string{
		"",
		"base[USA/OR, *]@R",                        // no operator
		"bogus[USA/OR, *]@R = base[USA/OR, *]@S",   // bad level
		"base USA/OR @R = base[USA/OR, *]@S",       // missing bracket
		"base[USA/OR, *]R = base[USA/OR, *]@S",     // missing @
		"base[USA/OR, *]@ = base[USA/OR, *]@S",     // empty addr
		"base[USA/OR, *]@R = base[USA/OR, *]@S{x}", // bad delay
		"base[USA/OR, *]@R{5} = base[USA/OR, *]@S", // delay on left
		"base[USA/OR]@R = base[USA/OR, *]@S",       // wrong arity area
	}
	for _, s := range bad {
		if _, err := ParseStatement(ns, s); err == nil {
			t.Errorf("ParseStatement(%q): want error", s)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	b, err := c.Resolve("urn:ForSale:Nothing")
	if err != nil {
		t.Fatal(err)
	}
	if b.Known() {
		t.Fatalf("unknown urn bound: %+v", b)
	}
}

func TestAliasToURLs(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	c.AddAlias("urn:ForSale:Portland-CDs", "http://10.1.2.3:9020/", "http://10.2.3.4:9020/")
	b, err := c.Resolve("urn:ForSale:Portland-CDs")
	if err != nil {
		t.Fatal(err)
	}
	if b.Expr == nil || b.Expr.Kind != algebra.KindUnion || len(b.Expr.Children) != 2 {
		t.Fatalf("binding = %+v", b)
	}
}

func TestAliasChainToAreaURN(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	pdxCDs := areaURN(ns, "[USA/OR/Portland, Music/CDs]")
	c.AddAlias("urn:ForSale:Portland-CDs", pdxCDs)
	if err := c.Register(baseReg(ns, "10.1.2.3:9020", "[USA/OR/Portland, Music/CDs]")); err != nil {
		t.Fatal(err)
	}
	b, err := c.Resolve("urn:ForSale:Portland-CDs")
	if err != nil {
		t.Fatal(err)
	}
	if b.Expr == nil || b.Expr.Kind != algebra.KindURL || b.Expr.URL != "10.1.2.3:9020" {
		t.Fatalf("binding = %v", b.Expr)
	}
}

func TestAliasCycle(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	c.AddAlias("urn:A", "urn:B")
	c.AddAlias("urn:B", "urn:A")
	if _, err := c.Resolve("urn:A"); err == nil {
		t.Fatal("alias cycle must error")
	}
}

func TestBindAreaUnionOfOverlappingBases(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	// Seller 1: Portland CDs. Seller 2: all Oregon music. Seller 3: Seattle.
	mustReg(t, c, baseReg(ns, "s1:9020", "[USA/OR/Portland, Music/CDs]"))
	mustReg(t, c, baseReg(ns, "s2:9020", "[USA/OR, Music]"))
	mustReg(t, c, baseReg(ns, "s3:9020", "[USA/WA/Seattle, Music/CDs]"))
	b, err := c.Resolve(areaURN(ns, "[USA/OR/Portland, Music/CDs]"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Expr == nil || b.Expr.Kind != algebra.KindUnion || len(b.Expr.Children) != 2 {
		t.Fatalf("binding = %v", b.Expr)
	}
	urls := b.Expr.URLs()
	if len(urls) != 2 || urls[0] != "s1:9020" || urls[1] != "s2:9020" {
		t.Fatalf("urls = %v", urls)
	}
}

func mustReg(t *testing.T, c *Catalog, r Registration) {
	t.Helper()
	if err := c.Register(r); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterValidationAndReplace(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	if err := c.Register(Registration{}); err == nil {
		t.Fatal("empty registration must error")
	}
	if err := c.Register(Registration{Addr: "x:1"}); err == nil {
		t.Fatal("registration without area must error")
	}
	r := baseReg(ns, "s1:1", "[USA/OR, *]")
	mustReg(t, c, r)
	mustReg(t, c, r) // replace
	if got := len(c.Registrations()); got != 1 {
		t.Fatalf("registrations = %d, want 1 after replace", got)
	}
}

// TestExample1Equality reproduces §4.2 Example 1: with
// base[Portland,SG]@R = base[Portland,SG]@S retained, a Portland golf-clubs
// URN binds to R | S instead of R ∪ S.
func TestExample1Equality(t *testing.T) {
	ns := testNS()
	c := New(ns, "M:1")
	mustReg(t, c, baseReg(ns, "R:9020", "[USA/OR/Portland, Recreation]"))
	mustReg(t, c, baseReg(ns, "S:9020", "[USA/OR, Recreation/SportingGoods]"))
	q := areaURN(ns, "[USA/OR/Portland, Recreation/SportingGoods/GolfClubs]")

	// Without the statement: plain union.
	b, err := c.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	if b.Expr.Kind != algebra.KindUnion {
		t.Fatalf("pre-statement binding = %v", b.Expr)
	}

	st, err := ParseStatement(ns,
		"base[USA/OR/Portland, Recreation/SportingGoods]@R:9020 = base[USA/OR/Portland, Recreation/SportingGoods]@S:9020")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddStatement(st); err != nil {
		t.Fatal(err)
	}
	b, err = c.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	if b.Expr.Kind != algebra.KindOr || len(b.Expr.Children) != 2 {
		t.Fatalf("post-statement binding = %v", b.Expr)
	}
	// Each alternative is a single server.
	for _, alt := range b.Expr.Children {
		if alt.Kind != algebra.KindURL {
			t.Fatalf("alternative = %v", alt)
		}
	}
}

// TestExample2IndexCoverage reproduces §4.2 Example 2: an index-coverage
// statement adds a route-via-index alternative.
func TestExample2IndexCoverage(t *testing.T) {
	ns := testNS()
	c := New(ns, "M:1")
	for _, s := range []string{"S:9020", "T:9020", "U:9020"} {
		mustReg(t, c, baseReg(ns, s, "[USA/OR, Recreation/SportingGoods/GolfClubs]"))
	}
	st, err := ParseStatement(ns,
		"index[USA/OR, Recreation/SportingGoods/GolfClubs]@R:9020 = "+
			"base[USA/OR, Recreation/SportingGoods/GolfClubs]@S:9020 U "+
			"base[USA/OR, Recreation/SportingGoods/GolfClubs]@T:9020 U "+
			"base[USA/OR, Recreation/SportingGoods/GolfClubs]@U:9020")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddStatement(st); err != nil {
		t.Fatal(err)
	}
	q := areaURN(ns, "[USA/OR/Portland, Recreation/SportingGoods/GolfClubs/Putters]")
	b, err := c.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	if b.Expr.Kind != algebra.KindOr || len(b.Expr.Children) != 2 {
		t.Fatalf("binding = %v", b.Expr)
	}
	via := b.Expr.Children[0]
	if via.Kind != algebra.KindURN {
		t.Fatalf("first alternative should route via index: %v", via)
	}
	if route, _ := via.Annotation(AnnotRoute); route != "R:9020" {
		t.Fatalf("route = %q", route)
	}
	direct := b.Expr.Children[1]
	if direct.Kind != algebra.KindUnion || len(direct.Children) != 3 {
		t.Fatalf("direct alternative = %v", direct)
	}
}

// TestExample3Superset reproduces §4.2/§4.3 Example 3 with a delay factor:
// base[Portland,*]@R >= base[Portland,*]@S{30} binds [Portland,CDs] to
// R{30} | (R ∪ S){0}.
func TestExample3Superset(t *testing.T) {
	ns := testNS()
	c := New(ns, "M:1")
	mustReg(t, c, baseReg(ns, "R:9020", "[USA/OR/Portland, *]"))
	mustReg(t, c, baseReg(ns, "S:9020", "[USA/OR/Portland, *]"))
	st, err := ParseStatement(ns,
		"base[USA/OR/Portland, *]@R:9020 >= base[USA/OR/Portland, *]@S:9020{30}")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddStatement(st); err != nil {
		t.Fatal(err)
	}
	b, err := c.Resolve(areaURN(ns, "[USA/OR/Portland, Music/CDs]"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Expr.Kind != algebra.KindOr || len(b.Expr.Children) != 2 {
		t.Fatalf("binding = %v", b.Expr)
	}
	rOnly, full := b.Expr.Children[0], b.Expr.Children[1]
	if rOnly.Kind != algebra.KindURL || rOnly.Staleness() != 30 {
		t.Fatalf("R-only alternative = %v staleness=%d", rOnly, rOnly.Staleness())
	}
	if full.Kind != algebra.KindUnion || full.Staleness() != 0 {
		t.Fatalf("full alternative = %v staleness=%d", full, full.Staleness())
	}
}

func TestRoutesOrdering(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	or := ns.MustParseArea("[USA/OR, *]")
	usa := ns.MustParseArea("[USA, *]")
	mustReg(t, c, Registration{Addr: "usa-meta:1", Role: RoleMetaIndex, Area: usa})
	mustReg(t, c, Registration{Addr: "or-index:1", Role: RoleIndex, Area: or, Authoritative: true})
	mustReg(t, c, Registration{Addr: "me:1", Role: RoleIndex, Area: or}) // self must be skipped
	b, err := c.Resolve(areaURN(ns, "[USA/OR/Portland, Music/CDs]"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Expr != nil {
		t.Fatalf("no base data expected, got %v", b.Expr)
	}
	if len(b.Routes) != 2 || b.Routes[0] != "or-index:1" || b.Routes[1] != "usa-meta:1" {
		t.Fatalf("routes = %v (want authoritative+specific first, no self)", b.Routes)
	}
}

func TestCacheHitsAndInvalidation(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	mustReg(t, c, baseReg(ns, "s1:1", "[USA/OR, *]"))
	q := areaURN(ns, "[USA/OR/Portland, Music/CDs]")
	if _, err := c.Resolve(q); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(q); err != nil {
		t.Fatal(err)
	}
	hits, misses := c.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d/%d", hits, misses)
	}
	// Registration invalidates.
	mustReg(t, c, baseReg(ns, "s2:1", "[USA/OR, *]"))
	b, err := c.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	if b.Expr.Kind != algebra.KindUnion {
		t.Fatalf("stale cache served: %v", b.Expr)
	}
	// Disabled cache: no hits accumulate.
	c.EnableCache(false)
	h0, _ := c.CacheStats()
	_, _ = c.Resolve(q)
	_, _ = c.Resolve(q)
	h1, _ := c.CacheStats()
	if h1 != h0 {
		t.Fatal("disabled cache must not hit")
	}
}

func TestCachedBindingIsIsolated(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	mustReg(t, c, baseReg(ns, "s1:1", "[USA/OR, *]"))
	q := areaURN(ns, "[USA/OR, Music]")
	b1, _ := c.Resolve(q)
	b1.Expr.URL = "mutated"
	b2, _ := c.Resolve(q)
	if b2.Expr.URL == "mutated" {
		t.Fatal("cache returned shared node")
	}
}

func TestBaseCollections(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	mustReg(t, c, baseReg(ns, "s1:1", "[USA/OR/Portland, Music/CDs]"))
	mustReg(t, c, baseReg(ns, "s2:1", "[France, *]"))
	got := c.BaseCollections(ns.MustParseArea("[USA/OR, *]"))
	if len(got) != 1 || got[0].Addr != "s1:1" {
		t.Fatalf("collections = %+v", got)
	}
}

func TestRegistrationXMLRoundTrip(t *testing.T) {
	ns := testNS()
	st, err := ParseStatement(ns, "base[USA/OR/Portland, *]@R:1 >= base[USA/OR/Portland, *]@S:1{30}")
	if err != nil {
		t.Fatal(err)
	}
	reg := Registration{
		Addr:          "10.1.2.3:9020",
		Role:          RoleBase,
		Area:          ns.MustParseArea("[USA/OR/Portland, Music/CDs]"),
		Authoritative: true,
		Collections: []Collection{
			{Name: "cds", PathExp: "/data[id=245]", Area: ns.MustParseArea("[USA/OR/Portland, Music/CDs]")},
		},
		Statements: []Statement{st},
	}
	e := MarshalRegistration(reg)
	back, err := UnmarshalRegistration(ns, e)
	if err != nil {
		t.Fatal(err)
	}
	if back.Addr != reg.Addr || back.Role != reg.Role || !back.Authoritative {
		t.Fatalf("round trip header = %+v", back)
	}
	if !back.Area.Equal(reg.Area) || len(back.Collections) != 1 || back.Collections[0].PathExp != "/data[id=245]" {
		t.Fatalf("round trip body = %+v", back)
	}
	if len(back.Statements) != 1 || back.Statements[0].String() != st.String() {
		t.Fatalf("round trip statements = %+v", back.Statements)
	}
}

func TestRegistrationXMLErrors(t *testing.T) {
	ns := testNS()
	for _, src := range []string{
		`<notreg/>`,
		`<registration role="base" area="urn:InterestArea:(USA,*)"/>`,
		`<registration addr="x" role="wizard" area="urn:InterestArea:(USA,*)"/>`,
		`<registration addr="x" role="base" area="bogus"/>`,
		`<registration addr="x" role="base" area="urn:InterestArea:(USA,*)"><collection area="bad"/></registration>`,
		`<registration addr="x" role="base" area="urn:InterestArea:(USA,*)"><statement>garbage</statement></registration>`,
		`<registration addr="x" role="base" authoritative="maybe" area="urn:InterestArea:(USA,*)"/>`,
	} {
		e, err := xmltree.ParseString(src)
		if err != nil {
			t.Fatalf("fixture %q: %v", src, err)
		}
		if _, err := UnmarshalRegistration(ns, e); err == nil {
			t.Errorf("UnmarshalRegistration(%q): want error", src)
		}
	}
}

func TestCatalogString(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	if !strings.Contains(c.String(), "me:1") {
		t.Fatalf("string = %q", c.String())
	}
}

// TestRegisterSupersedes: a registration naming a predecessor replaces it in
// the same catalog mutation — the replica-promotion guarantee that the dead
// source and its promoted copy are never both bound (no double counting, no
// window where neither is registered).
func TestRegisterSupersedes(t *testing.T) {
	ns := testNS()
	c := New(ns, "M:1")
	mustReg(t, c, baseReg(ns, "src:1", "[USA/OR/Portland, Music/CDs]"))
	mustReg(t, c, baseReg(ns, "other:1", "[USA/WA/Seattle, Music/CDs]"))
	gen := c.Generation()

	rep := baseReg(ns, "rep:1", "[USA/OR/Portland, Music/CDs]")
	rep.Supersedes = "src:1"
	mustReg(t, c, rep)

	var addrs []string
	for _, r := range c.Registrations() {
		addrs = append(addrs, r.Addr)
	}
	if len(addrs) != 2 {
		t.Fatalf("registrations after supersede = %v", addrs)
	}
	for _, a := range addrs {
		if a == "src:1" {
			t.Fatal("superseded registration survived")
		}
	}
	if c.Generation() == gen {
		t.Fatal("supersede must invalidate cached resolutions")
	}

	// Superseding an absent or self address is a plain register.
	again := baseReg(ns, "rep:1", "[USA/OR/Portland, Music/CDs]")
	again.Supersedes = "rep:1"
	mustReg(t, c, again)
	if got := len(c.Registrations()); got != 2 {
		t.Fatalf("self-supersede changed the count: %d", got)
	}
}

// TestSupersedesWireRoundTrip: the supersedes attribute survives the
// registration's XML wire form (promotion crosses the network).
func TestSupersedesWireRoundTrip(t *testing.T) {
	ns := testNS()
	r := baseReg(ns, "rep:1", "[USA/OR/Portland, Music/CDs]")
	r.Supersedes = "src:1"
	back, err := UnmarshalRegistration(ns, MarshalRegistration(r))
	if err != nil {
		t.Fatal(err)
	}
	if back.Supersedes != "src:1" {
		t.Fatalf("supersedes = %q after round trip", back.Supersedes)
	}
	plain := baseReg(ns, "s:1", "[USA/OR/Portland, Music/CDs]")
	back, err = UnmarshalRegistration(ns, MarshalRegistration(plain))
	if err != nil {
		t.Fatal(err)
	}
	if back.Supersedes != "" {
		t.Fatalf("phantom supersedes %q on a plain registration", back.Supersedes)
	}
}
