package catalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/hierarchy"
	"repro/internal/namespace"
)

// randAreaOver draws a random single-cell area over the test namespace.
func randAreaOver(r *rand.Rand, ns *namespace.Namespace) namespace.Area {
	pick := func(h *hierarchy.Hierarchy) hierarchy.Path {
		all := h.All()
		i := r.Intn(len(all) + 1)
		if i == len(all) {
			return hierarchy.Top
		}
		return all[i]
	}
	dims := ns.Dimensions()
	return namespace.NewArea(namespace.NewCell(pick(dims[0]), pick(dims[1])))
}

// TestPropertyBindingSoundness: every URL leaf produced by Resolve belongs
// to a registered collection whose area overlaps the query area, and every
// registered overlapping collection appears (no false positives, no false
// negatives) when no intensional statements are involved.
func TestPropertyBindingSoundness(t *testing.T) {
	ns := testNS()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(ns, "me:1")
		type reg struct {
			addr string
			area namespace.Area
		}
		var regs []reg
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			a := randAreaOver(r, ns)
			addr := fmt.Sprintf("s%d:1", i)
			if err := c.Register(Registration{
				Addr: addr, Role: RoleBase, Area: a,
				Collections: []Collection{{Name: "c", PathExp: "/d", Area: a}},
			}); err != nil {
				return false
			}
			regs = append(regs, reg{addr: addr, area: a})
		}
		query := randAreaOver(r, ns)
		b, err := c.Resolve(namespace.EncodeURN(query))
		if err != nil {
			return false
		}
		want := map[string]bool{}
		for _, rg := range regs {
			if rg.area.Overlaps(query) {
				want[rg.addr] = true
			}
		}
		got := map[string]bool{}
		if b.Expr != nil {
			for _, u := range b.Expr.URLs() {
				got[u] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for a := range want {
			if !got[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyResolveDeterministic: repeated resolution yields identical
// serialized bindings (with and without cache).
func TestPropertyResolveDeterministic(t *testing.T) {
	ns := testNS()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(ns, "me:1")
		for i := 0; i < 1+r.Intn(5); i++ {
			a := randAreaOver(r, ns)
			_ = c.Register(Registration{
				Addr: fmt.Sprintf("s%d:1", i), Role: RoleBase, Area: a,
				Collections: []Collection{{Name: "c", PathExp: "/d", Area: a}},
			})
		}
		query := namespace.EncodeURN(randAreaOver(r, ns))
		b1, err1 := c.Resolve(query)
		b2, err2 := c.Resolve(query) // cache hit path
		c.EnableCache(false)
		b3, err3 := c.Resolve(query) // uncached path
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		key := func(b Binding) string {
			s := fmt.Sprintf("%v", b.Routes)
			if b.Expr != nil {
				s += "|" + algebra.EncodeString(algebra.NewPlan("x", "t", algebra.Display(b.Expr)))
			}
			return s
		}
		return key(b1) == key(b2) && key(b2) == key(b3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyParsersNeverPanic: the surface-syntax parsers reject garbage
// gracefully (no panics) for arbitrary byte strings.
func TestPropertyParsersNeverPanic(t *testing.T) {
	ns := testNS()
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseStatement(ns, s)
		_, _ = namespace.DecodeURN(s)
		_, _ = namespace.DecodeURN("urn:InterestArea:" + s)
		_, _ = algebra.ParsePredicate(s)
		_, _ = ns.ParseArea(s)
		_, _ = hierarchy.ParsePath(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStatementRoundTrip: parse∘print is stable on generated
// statements.
func TestPropertyStatementRoundTrip(t *testing.T) {
	ns := testNS()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		left := Term{
			Level: Level(r.Intn(2)),
			Area:  randAreaOver(r, ns),
			Addr:  fmt.Sprintf("R%d:1", r.Intn(5)),
		}
		var right []Term
		for i := 0; i <= r.Intn(3); i++ {
			right = append(right, Term{
				Level:    LevelBase,
				Area:     randAreaOver(r, ns),
				Addr:     fmt.Sprintf("S%d:1", i),
				DelayMin: r.Intn(3) * 15,
			})
		}
		st := Statement{Left: left, Op: StmtOp(r.Intn(2)), Right: right}
		if st.Validate() != nil {
			return true // skip invalid combinations
		}
		back, err := ParseStatement(ns, st.String())
		return err == nil && back.String() == st.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
