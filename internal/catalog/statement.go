// Package catalog implements each peer's local catalog (§2, §3): mappings
// from URNs to URLs or to servers that can resolve them, interest-area
// registrations of base/index/meta-index servers, intensional statements
// about replication and index coverage (§4), and the binding construction
// that turns an interest-area URN into an algebra expression — including the
// "|" (conjoint union) alternatives that let routing skip redundant servers
// and trade currency against latency.
package catalog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/namespace"
)

// Level distinguishes what a catalog term talks about: a server's base data
// or its index entries (§4.1 allows replication statements at either level).
type Level int

// Catalog term levels.
const (
	LevelBase Level = iota
	LevelIndex
)

func (l Level) String() string {
	if l == LevelIndex {
		return "index"
	}
	return "base"
}

// Term is one side's atom in an intensional statement:
// level[area]@server{delay}. Delay is the staleness bound in minutes
// (§4.3); zero means current.
type Term struct {
	Level    Level
	Area     namespace.Area
	Addr     string
	DelayMin int
}

// String renders the term in the paper's notation, e.g.
// "base[USA/OR/Portland, *]@R{30}".
func (t Term) String() string {
	s := fmt.Sprintf("%s[%s]@%s", t.Level, cellList(t.Area), t.Addr)
	if t.DelayMin > 0 {
		s += "{" + strconv.Itoa(t.DelayMin) + "}"
	}
	return s
}

func cellList(a namespace.Area) string {
	parts := make([]string, len(a.Cells))
	for i, c := range a.Cells {
		inner := c.String()
		parts[i] = strings.TrimSuffix(strings.TrimPrefix(inner, "["), "]")
	}
	return strings.Join(parts, " + ")
}

// StmtOp is the relation between an intensional statement's sides.
type StmtOp int

// Statement operators: exact replication (=) and containment (⊇, rendered
// ">=").
const (
	StmtEqual StmtOp = iota
	StmtSuperset
)

func (op StmtOp) String() string {
	if op == StmtSuperset {
		return ">="
	}
	return "="
}

// Statement is an intensional statement (§4.1): Left op Right1 ∪ Right2 ∪ …
// Examples from the paper:
//
//	base[Portland, *]@R = base[Portland, *]@S
//	index[Oregon, Golf Clubs]@R = base[Oregon, Golf Clubs]@S ∪
//	                              base[Oregon, Golf Clubs]@T
//	base[Portland, *]@R >= base[Portland, *]@S{30}
type Statement struct {
	Left  Term
	Op    StmtOp
	Right []Term
}

// String renders the statement in (ASCII) paper notation.
func (s Statement) String() string {
	parts := make([]string, len(s.Right))
	for i, t := range s.Right {
		parts[i] = t.String()
	}
	return s.Left.String() + " " + s.Op.String() + " " + strings.Join(parts, " U ")
}

// Validate checks structural sanity.
func (s Statement) Validate() error {
	if s.Left.Addr == "" {
		return fmt.Errorf("catalog: statement with empty left server")
	}
	if len(s.Right) == 0 {
		return fmt.Errorf("catalog: statement with empty right side")
	}
	for _, t := range s.Right {
		if t.Addr == "" {
			return fmt.Errorf("catalog: statement with empty right server")
		}
		if t.DelayMin < 0 {
			return fmt.Errorf("catalog: negative delay factor")
		}
	}
	if s.Left.DelayMin != 0 {
		return fmt.Errorf("catalog: delay factor belongs on the right side")
	}
	return nil
}

// ParseStatement parses the ASCII surface syntax:
//
//	base[USA/OR/Portland, *]@R = base[USA/OR/Portland, *]@S{30}
//	index[USA/OR, SG/GolfClubs]@R = base[USA/OR, SG/GolfClubs]@S U base[...]@T
//
// The area inside [...] is a cell list "cell + cell" where each cell is a
// comma-separated coordinate list over ns. "U" (or "∪") separates union
// terms on the right.
func ParseStatement(ns *namespace.Namespace, s string) (Statement, error) {
	opIdx, opLen, op := -1, 0, StmtEqual
	if i := strings.Index(s, ">="); i >= 0 {
		opIdx, opLen, op = i, 2, StmtSuperset
	} else if i := strings.Index(s, "="); i >= 0 {
		opIdx, opLen, op = i, 1, StmtEqual
	}
	if opIdx < 0 {
		return Statement{}, fmt.Errorf("catalog: statement %q has no operator", s)
	}
	left, err := parseTerm(ns, s[:opIdx])
	if err != nil {
		return Statement{}, fmt.Errorf("catalog: statement %q: %w", s, err)
	}
	rightSrc := strings.ReplaceAll(s[opIdx+opLen:], "∪", " U ")
	var right []Term
	for _, part := range splitUnion(rightSrc) {
		t, err := parseTerm(ns, part)
		if err != nil {
			return Statement{}, fmt.Errorf("catalog: statement %q: %w", s, err)
		}
		right = append(right, t)
	}
	st := Statement{Left: left, Op: op, Right: right}
	if err := st.Validate(); err != nil {
		return Statement{}, err
	}
	return st, nil
}

// splitUnion splits on the token "U" at word boundaries outside brackets.
func splitUnion(s string) []string {
	var parts []string
	depth := 0
	start := 0
	fields := []rune(s)
	for i := 0; i < len(fields); i++ {
		switch fields[i] {
		case '[':
			depth++
		case ']':
			depth--
		case 'U':
			if depth == 0 &&
				(i == 0 || fields[i-1] == ' ') &&
				(i == len(fields)-1 || fields[i+1] == ' ') {
				parts = append(parts, string(fields[start:i]))
				start = i + 1
			}
		}
	}
	parts = append(parts, string(fields[start:]))
	return parts
}

func parseTerm(ns *namespace.Namespace, s string) (Term, error) {
	s = strings.TrimSpace(s)
	var level Level
	switch {
	case strings.HasPrefix(s, "base"):
		level, s = LevelBase, s[4:]
	case strings.HasPrefix(s, "index"):
		level, s = LevelIndex, s[5:]
	default:
		return Term{}, fmt.Errorf("term %q must start with base or index", s)
	}
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") {
		return Term{}, fmt.Errorf("term missing [area]")
	}
	close := strings.IndexByte(s, ']')
	if close < 0 {
		return Term{}, fmt.Errorf("term missing closing ]")
	}
	area, err := ns.ParseArea(s[1:close])
	if err != nil {
		return Term{}, err
	}
	rest := strings.TrimSpace(s[close+1:])
	if !strings.HasPrefix(rest, "@") {
		return Term{}, fmt.Errorf("term missing @server")
	}
	rest = rest[1:]
	delay := 0
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		if !strings.HasSuffix(rest, "}") {
			return Term{}, fmt.Errorf("term has malformed delay factor")
		}
		d, err := strconv.Atoi(rest[i+1 : len(rest)-1])
		if err != nil || d < 0 {
			return Term{}, fmt.Errorf("term has bad delay %q", rest[i+1:len(rest)-1])
		}
		delay = d
		rest = rest[:i]
	}
	addr := strings.TrimSpace(rest)
	if addr == "" {
		return Term{}, fmt.Errorf("term missing server address")
	}
	return Term{Level: level, Area: area, Addr: addr, DelayMin: delay}, nil
}
