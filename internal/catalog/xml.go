package catalog

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/namespace"
	"repro/internal/xmltree"
)

// XML wire forms for registrations and statements, used by the peer
// protocol when base servers push their existence to authoritative servers
// (§3.3) and when index servers exchange catalog entries.
//
//	<registration addr="10.1.2.3:9020" role="base" authoritative="true"
//	              area="urn:InterestArea:...">
//	  <collection name="cds" path="/data[id=245]" area="urn:InterestArea:..."/>
//	  <statement>base[...]@R = base[...]@S{30}</statement>
//	</registration>

// MarshalRegistration renders a registration as XML.
func MarshalRegistration(r Registration) *xmltree.Node {
	e := xmltree.Elem("registration")
	e.SetAttr("addr", r.Addr)
	e.SetAttr("role", r.Role.String())
	e.SetAttr("area", namespace.EncodeURN(r.Area))
	if r.Authoritative {
		e.SetAttr("authoritative", "true")
	}
	if r.Supersedes != "" {
		e.SetAttr("supersedes", r.Supersedes)
	}
	for _, c := range r.Collections {
		ce := xmltree.Elem("collection")
		ce.SetAttr("name", c.Name)
		ce.SetAttr("path", c.PathExp)
		ce.SetAttr("area", namespace.EncodeURN(c.Area))
		keys := make([]string, 0, len(c.Annotations))
		for k := range c.Annotations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ae := xmltree.Elem("annot")
			ae.SetAttr("k", k)
			ae.SetAttr("v", c.Annotations[k])
			ce.Add(ae)
		}
		e.Add(ce)
	}
	for _, s := range r.Statements {
		e.Add(xmltree.ElemText("statement", s.String()))
	}
	return e
}

// UnmarshalRegistration parses the XML wire form. Statements are parsed
// against ns.
func UnmarshalRegistration(ns *namespace.Namespace, e *xmltree.Node) (Registration, error) {
	if e.Name != "registration" {
		return Registration{}, fmt.Errorf("catalog: expected <registration>, got <%s>", e.Name)
	}
	addr, ok := e.Attr("addr")
	if !ok || addr == "" {
		return Registration{}, fmt.Errorf("catalog: registration without addr")
	}
	var role Role
	switch e.AttrDefault("role", "") {
	case "base":
		role = RoleBase
	case "index":
		role = RoleIndex
	case "meta-index":
		role = RoleMetaIndex
	case "category":
		role = RoleCategory
	default:
		return Registration{}, fmt.Errorf("catalog: registration with unknown role %q", e.AttrDefault("role", ""))
	}
	area, err := namespace.DecodeURN(e.AttrDefault("area", ""))
	if err != nil {
		return Registration{}, fmt.Errorf("catalog: registration area: %w", err)
	}
	auth, err := strconv.ParseBool(e.AttrDefault("authoritative", "false"))
	if err != nil {
		return Registration{}, fmt.Errorf("catalog: registration authoritative flag: %w", err)
	}
	reg := Registration{Addr: addr, Role: role, Area: area, Authoritative: auth,
		Supersedes: e.AttrDefault("supersedes", "")}
	for _, ce := range e.ChildrenNamed("collection") {
		ca, err := namespace.DecodeURN(ce.AttrDefault("area", ""))
		if err != nil {
			return Registration{}, fmt.Errorf("catalog: collection area: %w", err)
		}
		coll := Collection{
			Name:    ce.AttrDefault("name", ""),
			PathExp: ce.AttrDefault("path", ""),
			Area:    ca,
		}
		for _, ae := range ce.ChildrenNamed("annot") {
			if k, ok := ae.Attr("k"); ok {
				if coll.Annotations == nil {
					coll.Annotations = map[string]string{}
				}
				coll.Annotations[k] = ae.AttrDefault("v", "")
			}
		}
		reg.Collections = append(reg.Collections, coll)
	}
	for _, se := range e.ChildrenNamed("statement") {
		st, err := ParseStatement(ns, se.InnerText())
		if err != nil {
			return Registration{}, err
		}
		reg.Statements = append(reg.Statements, st)
	}
	return reg, nil
}
