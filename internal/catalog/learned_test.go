package catalog

import (
	"testing"
)

// Tests for the learned-routing catalog surface: Deregister (graceful
// leave) and AbsorbLearned (confirmed shortcuts becoming real index
// registrations).

func TestDeregisterDropsAllOfAddr(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	for _, reg := range []Registration{
		baseReg(ns, "a:1", "[USA/OR/Portland, Music/CDs]"),
		{Addr: "a:1", Role: RoleIndex, Area: ns.MustParseArea("[USA/OR, *]")},
		baseReg(ns, "b:1", "[USA/WA/Seattle, Music/CDs]"),
	} {
		if err := c.Register(reg); err != nil {
			t.Fatal(err)
		}
	}
	gen := c.Generation()
	if n := c.Deregister("a:1"); n != 2 {
		t.Fatalf("deregister removed %d, want 2", n)
	}
	if c.Generation() == gen {
		t.Fatal("deregister did not bump the catalog generation")
	}
	for _, r := range c.Registrations() {
		if r.Addr == "a:1" {
			t.Fatalf("a:1 survived deregistration: %+v", r)
		}
	}
	// The survivor still binds.
	b, err := c.Resolve(areaURN(ns, "[USA/WA/Seattle, Music/CDs]"))
	if err != nil || !b.Known() {
		t.Fatalf("survivor lost its binding: %+v, %v", b, err)
	}
	// Unknown/empty addresses are no-ops.
	if n := c.Deregister("ghost:1"); n != 0 {
		t.Fatalf("deregister(ghost) removed %d", n)
	}
	if n := c.Deregister(""); n != 0 {
		t.Fatalf("deregister(\"\") removed %d", n)
	}
}

func TestAbsorbLearnedCreatesAndGrowsIndexReg(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	or := areaURN(ns, "[USA/OR, Music/CDs]")
	wa := areaURN(ns, "[USA/WA, Music/CDs]")

	if err := c.AbsorbLearned("idx:1", or); err != nil {
		t.Fatal(err)
	}
	regs := c.Registrations()
	if len(regs) != 1 || regs[0].Addr != "idx:1" || regs[0].Role != RoleIndex {
		t.Fatalf("absorbed reg = %+v", regs)
	}
	// Idempotent for covered areas: no generation churn on re-confirmation.
	gen := c.Generation()
	if err := c.AbsorbLearned("idx:1", or); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != gen {
		t.Fatal("re-absorbing a covered area churned the generation")
	}
	// A genuinely new area widens the same registration.
	if err := c.AbsorbLearned("idx:1", wa); err != nil {
		t.Fatal(err)
	}
	regs = c.Registrations()
	if len(regs) != 1 {
		t.Fatalf("widening split into %d registrations", len(regs))
	}
	if !regs[0].Area.Covers(ns.MustParseArea("[USA/WA, Music/CDs]")) ||
		!regs[0].Area.Covers(ns.MustParseArea("[USA/OR, Music/CDs]")) {
		t.Fatalf("widened area does not cover both cells: %v", regs[0].Area)
	}
	// The absorbed edge is a live route for overlapping URNs.
	b, err := c.Resolve(areaURN(ns, "[USA/OR/Portland, Music/CDs]"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range b.Routes {
		if r == "idx:1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("absorbed index not in routes: %+v", b)
	}
}

func TestAbsorbLearnedRejectsSelfAndGarbage(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	if err := c.AbsorbLearned("me:1", areaURN(ns, "[USA, *]")); err == nil {
		t.Fatal("absorbed a shortcut to self")
	}
	if err := c.AbsorbLearned("", areaURN(ns, "[USA, *]")); err == nil {
		t.Fatal("absorbed a shortcut to nowhere")
	}
	if err := c.AbsorbLearned("idx:1", "not-a-urn"); err == nil {
		t.Fatal("absorbed an undecodable area")
	}
	if len(c.Registrations()) != 0 {
		t.Fatalf("rejected absorptions left registrations: %+v", c.Registrations())
	}
}

// TestAbsorbLearnedGeneralizesUnknownArea: an area mined from a trail may
// name hierarchy nodes this namespace has not loaded; absorption generalizes
// to the deepest known ancestor (losing precision, never recall) instead of
// failing or storing an unservable area.
func TestAbsorbLearnedGeneralizesUnknownArea(t *testing.T) {
	ns := testNS()
	c := New(ns, "me:1")
	// USA/OR/Salem is not in testNS; it generalizes to USA/OR.
	if err := c.AbsorbLearned("idx:1", "urn:InterestArea:(USA.OR.Salem,Music.CDs)"); err != nil {
		t.Fatal(err)
	}
	regs := c.Registrations()
	if len(regs) != 1 {
		t.Fatalf("registrations = %+v", regs)
	}
	want := ns.MustParseArea("[USA/OR, Music/CDs]")
	if !regs[0].Area.Covers(want) {
		t.Fatalf("generalized area %v does not cover %v", regs[0].Area, want)
	}
}
