package engine

import (
	"testing"

	"repro/internal/algebra"
)

func TestEmptyInputsAllOperators(t *testing.T) {
	empty := algebra.Data()
	some := algebra.Data(items(`<i><k>1</k></i>`)...)

	cases := []struct {
		name string
		node *algebra.Node
		want int
	}{
		{"select-empty", algebra.Select(algebra.True{}, empty.Clone()), 0},
		{"project-empty", algebra.Project("p", []string{"k"}, empty.Clone()), 0},
		{"join-empty-left", algebra.Join("k", "k", empty.Clone(), some.Clone()), 0},
		{"join-empty-right", algebra.Join("k", "k", some.Clone(), empty.Clone()), 0},
		{"union-empties", algebra.Union(empty.Clone(), empty.Clone()), 0},
		{"difference-empty-left", algebra.Difference(empty.Clone(), some.Clone()), 0},
		{"difference-empty-right", algebra.Difference(some.Clone(), empty.Clone()), 1},
		{"topn-empty", algebra.TopN(3, "k", false, empty.Clone()), 0},
	}
	for _, c := range cases {
		got, err := Evaluate(c.node)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(got) != c.want {
			t.Errorf("%s: %d items, want %d", c.name, len(got), c.want)
		}
	}
	// Count over empty input yields <count>0</count>, not empty.
	got, err := Evaluate(algebra.Count(empty.Clone()))
	if err != nil || len(got) != 1 || got[0].InnerText() != "0" {
		t.Fatalf("count-empty: %v %v", got, err)
	}
}

func TestDifferenceBagSemantics(t *testing.T) {
	// Difference drops every copy of a matching item (set-style filter on
	// a bag), which is what Example 3's rewrite requires.
	l := algebra.Data(items(`<i>1</i>`, `<i>1</i>`, `<i>2</i>`)...)
	r := algebra.Data(items(`<i>1</i>`)...)
	got, err := Evaluate(algebra.Difference(l, r))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].InnerText() != "2" {
		t.Fatalf("difference = %v", got)
	}
}

func TestSelfJoin(t *testing.T) {
	d := algebra.Data(items(`<i><k>1</k></i>`, `<i><k>1</k></i>`)...)
	got, err := Evaluate(algebra.Join("k", "k", d, d.Clone()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("self join = %d, want 4", len(got))
	}
}

func TestJoinKeyWhitespaceTrimmed(t *testing.T) {
	l := algebra.Data(items(`<a><k> x </k></a>`)...)
	r := algebra.Data(items(`<b><k>x</k></b>`)...)
	got, err := Evaluate(algebra.Join("k", "k", l, r))
	if err != nil || len(got) != 1 {
		t.Fatalf("whitespace keys: %d, %v", len(got), err)
	}
}

func TestTopNTieStability(t *testing.T) {
	d := algebra.Data(items(
		`<i><p>5</p><tag>first</tag></i>`,
		`<i><p>5</p><tag>second</tag></i>`,
		`<i><p>5</p><tag>third</tag></i>`,
	)...)
	got, err := Evaluate(algebra.TopN(2, "p", false, d))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value("tag") != "first" || got[1].Value("tag") != "second" {
		t.Fatalf("tie order not stable: %v", got)
	}
}

func TestProjectPreservesNestedStructure(t *testing.T) {
	d := algebra.Data(items(`<i><seller><city>Portland</city><zip>97201</zip></seller><p>5</p></i>`)...)
	got, err := Evaluate(algebra.Project("out", []string{"seller"}, d))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value("seller/city") != "Portland" {
		t.Fatalf("nested projection = %s", got[0])
	}
}

func TestOrEvaluatesOnlyFirstAlternative(t *testing.T) {
	// The second alternative contains an unresolved URN; because the first
	// is chosen, evaluation succeeds — matching §4.2's semantics that any
	// alternative suffices.
	o := algebra.Or(
		algebra.Data(items(`<i>1</i>`)...),
		algebra.URN("urn:never:visited"),
	)
	got, err := Evaluate(o)
	if err != nil || len(got) != 1 {
		t.Fatalf("or: %v %v", got, err)
	}
}

func TestReduceErrorsOnUnresolved(t *testing.T) {
	if _, err := Reduce(algebra.Select(algebra.True{}, algebra.URN("urn:X"))); err == nil {
		t.Fatal("reduce of unresolved subtree must error")
	}
}

func TestDeepPlanEvaluation(t *testing.T) {
	// A 20-level chain of selects stays correct.
	node := algebra.Data(items(`<i><v>5</v></i>`, `<i><v>50</v></i>`)...)
	var cur *algebra.Node = node
	for i := 0; i < 20; i++ {
		cur = algebra.Select(algebra.MustParsePredicate("v < 100"), cur)
	}
	got, err := Evaluate(cur)
	if err != nil || len(got) != 2 {
		t.Fatalf("deep chain: %d %v", len(got), err)
	}
}
