package engine

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/xmltree"
)

// TestReduceFreezesResultsAndAliasesFrozenInputs pins the reduction side of
// the ownership model: result items come out frozen (later hops alias them),
// and operators that restructure items (join, project) alias the fields of
// frozen inputs instead of cloning them.
func TestReduceFreezesResultsAndAliasesFrozenInputs(t *testing.T) {
	l := xmltree.MustParse(`<item><cd>Abbey Road</cd><price>12</price></item>`).Freeze()
	r := xmltree.MustParse(`<item><cd>Abbey Road</cd><seller>s1</seller></item>`).Freeze()
	join := algebra.JoinNamed("cd", "cd", "sale", "listing",
		algebra.Data(l), algebra.Data(r))

	out, err := Reduce(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Docs) != 1 {
		t.Fatalf("join produced %d tuples, want 1", len(out.Docs))
	}
	tuple := out.Docs[0]
	if !tuple.Frozen() {
		t.Fatal("Reduce must freeze result items")
	}
	// The tuple's components alias the frozen inputs' children.
	sale := tuple.Child("sale")
	if sale == nil || sale.Children[0] != l.Children[0] {
		t.Fatal("join component must alias frozen input fields")
	}

	// Selection passes frozen inputs through untouched.
	sel := algebra.Select(algebra.MustParsePredicate("price < 20"), algebra.Data(l))
	out, err = Reduce(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Docs) != 1 || out.Docs[0] != l {
		t.Fatal("selection must pass the frozen item through by reference")
	}

	// Projection aliases the projected fields of frozen items.
	proj := algebra.Project("out", []string{"price"}, algebra.Data(l))
	out, err = Reduce(proj)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Docs) != 1 || out.Docs[0].Child("price") != l.Child("price") {
		t.Fatal("projection must alias frozen input fields")
	}
}
