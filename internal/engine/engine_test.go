package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/xmltree"
)

func items(ss ...string) []*xmltree.Node {
	out := make([]*xmltree.Node, len(ss))
	for i, s := range ss {
		out[i] = xmltree.MustParse(s)
	}
	return out
}

func cds() *algebra.Node {
	return algebra.Data(items(
		`<sale><cd>Blue Train</cd><price>8</price></sale>`,
		`<sale><cd>Kind of Blue</cd><price>12</price></sale>`,
		`<sale><cd>Giant Steps</cd><price>9</price></sale>`,
	)...)
}

func listings() *algebra.Node {
	return algebra.Data(items(
		`<listing><cd>Blue Train</cd><song>Locomotion</song></listing>`,
		`<listing><cd>Blue Train</cd><song>Moment's Notice</song></listing>`,
		`<listing><cd>Giant Steps</cd><song>Naima</song></listing>`,
		`<listing><cd>Milestones</cd><song>Dr. Jekyll</song></listing>`,
	)...)
}

func TestSelect(t *testing.T) {
	n := algebra.Select(algebra.MustParsePredicate("price < 10"), cds())
	got, err := Evaluate(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("selected %d, want 2", len(got))
	}
}

func TestProject(t *testing.T) {
	n := algebra.Project("cheap", []string{"cd"}, algebra.Select(algebra.MustParsePredicate("price < 10"), cds()))
	got, err := Evaluate(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "cheap" || got[0].Value("cd") != "Blue Train" {
		t.Fatalf("projected: %v", got)
	}
	// Missing fields are simply absent.
	n2 := algebra.Project("p", []string{"nope", "price"}, cds())
	got2, _ := Evaluate(n2)
	if len(got2[0].Elements()) != 1 {
		t.Fatalf("missing field should be dropped: %s", got2[0])
	}
}

func TestProjectAttrField(t *testing.T) {
	d := algebra.Data(items(`<i><price currency="USD">7</price></i>`)...)
	n := algebra.Project("p", []string{"price/@currency"}, d)
	got, err := Evaluate(n)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value("currency") != "USD" {
		t.Fatalf("attr projection: %s", got[0])
	}
}

func TestJoin(t *testing.T) {
	j := algebra.JoinNamed("cd", "cd", "sale", "listing", cds(), listings())
	got, err := Evaluate(j)
	if err != nil {
		t.Fatal(err)
	}
	// Blue Train matches 2 listings, Giant Steps 1, Kind of Blue 0.
	if len(got) != 3 {
		t.Fatalf("join output = %d, want 3", len(got))
	}
	for _, tup := range got {
		if tup.Value("sale/cd") != tup.Value("listing/cd") {
			t.Fatalf("join key mismatch in %s", tup)
		}
	}
}

func TestJoinOrientationWithSwappedBuild(t *testing.T) {
	// Left side smaller than right and vice versa must both keep component
	// orientation (left input under LeftName).
	small := algebra.Data(items(`<a><k>1</k><tag>left</tag></a>`)...)
	big := algebra.Data(items(
		`<b><k>1</k><tag>right1</tag></b>`,
		`<b><k>1</k><tag>right2</tag></b>`,
		`<b><k>2</k><tag>rightX</tag></b>`,
	)...)
	for _, tc := range []struct{ l, r *algebra.Node }{{small, big}, {big.Clone(), small.Clone()}} {
		j := algebra.JoinNamed("k", "k", "L", "R", tc.l, tc.r)
		got, err := Evaluate(j)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("join output = %d, want 2", len(got))
		}
		for _, tup := range got {
			lTag, rTag := tup.Value("L/tag"), tup.Value("R/tag")
			if tc.l == small {
				if lTag != "left" || rTag == "left" {
					t.Fatalf("orientation broken: L=%q R=%q", lTag, rTag)
				}
			} else {
				if rTag != "left" || lTag == "left" {
					t.Fatalf("orientation broken: L=%q R=%q", lTag, rTag)
				}
			}
		}
	}
}

func TestJoinMissingKeysSkipped(t *testing.T) {
	l := algebra.Data(items(`<a><k>1</k></a>`, `<a><nokey/></a>`)...)
	r := algebra.Data(items(`<b><k>1</k></b>`, `<b><other/></b>`)...)
	got, err := Evaluate(algebra.Join("k", "k", l, r))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("join output = %d, want 1", len(got))
	}
}

func TestNestedJoinPathAddressing(t *testing.T) {
	songs := algebra.Data(items(`<song><title>Naima</title></song>`)...)
	inner := algebra.JoinNamed("cd", "cd", "sale", "listing", cds(), listings())
	outer := algebra.JoinNamed("title", "listing/song", "fav", "match", songs, inner)
	got, err := Evaluate(outer)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("outer join = %d, want 1", len(got))
	}
	if got[0].Value("match/sale/cd") != "Giant Steps" {
		t.Fatalf("nested addressing failed: %s", got[0].Indent())
	}
}

func TestUnionAndOr(t *testing.T) {
	u := algebra.Union(cds(), listings())
	got, err := Evaluate(u)
	if err != nil || len(got) != 7 {
		t.Fatalf("union = %d, %v", len(got), err)
	}
	o := algebra.Or(cds(), listings())
	got, err = Evaluate(o)
	if err != nil || len(got) != 3 {
		t.Fatalf("or must evaluate first alternative: %d, %v", len(got), err)
	}
}

func TestDifference(t *testing.T) {
	l := algebra.Data(items(`<i>1</i>`, `<i>2</i>`, `<i>3</i>`)...)
	r := algebra.Data(items(`<i>2</i>`)...)
	got, err := Evaluate(algebra.Difference(l, r))
	if err != nil || len(got) != 2 {
		t.Fatalf("difference = %d, %v", len(got), err)
	}
}

func TestCount(t *testing.T) {
	got, err := Evaluate(algebra.Count(cds()))
	if err != nil || len(got) != 1 {
		t.Fatalf("count: %v %v", got, err)
	}
	if got[0].InnerText() != "3" {
		t.Fatalf("count = %s", got[0])
	}
}

func TestTopN(t *testing.T) {
	asc := algebra.TopN(2, "price", false, cds())
	got, err := Evaluate(asc)
	if err != nil || len(got) != 2 {
		t.Fatalf("topn: %v %v", got, err)
	}
	if got[0].Value("price") != "8" || got[1].Value("price") != "9" {
		t.Fatalf("asc order wrong: %v", got)
	}
	desc := algebra.TopN(1, "price", true, cds())
	got, _ = Evaluate(desc)
	if got[0].Value("price") != "12" {
		t.Fatalf("desc order wrong: %v", got)
	}
	// n larger than input returns everything.
	all := algebra.TopN(10, "price", false, cds())
	got, _ = Evaluate(all)
	if len(got) != 3 {
		t.Fatalf("topn overshoot = %d", len(got))
	}
}

func TestUnresolvedLeavesError(t *testing.T) {
	if _, err := Evaluate(algebra.URL("http://x/", "")); err == nil {
		t.Fatal("url leaf must error")
	}
	if _, err := Evaluate(algebra.URN("urn:X")); err == nil {
		t.Fatal("urn leaf must error")
	}
	if _, err := Evaluate(algebra.Select(algebra.True{}, algebra.URN("urn:X"))); err == nil {
		t.Fatal("nested urn leaf must error")
	}
}

func TestLocallyEvaluable(t *testing.T) {
	if !LocallyEvaluable(algebra.Select(algebra.True{}, cds())) {
		t.Fatal("data-only plan must be evaluable")
	}
	if LocallyEvaluable(algebra.Join("a", "b", cds(), algebra.URN("urn:X"))) {
		t.Fatal("plan with urn must not be evaluable")
	}
}

func TestReduce(t *testing.T) {
	n := algebra.Select(algebra.MustParsePredicate("price < 10"), cds())
	d, err := Reduce(n)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != algebra.KindData || len(d.Docs) != 2 || d.Card() != 2 {
		t.Fatalf("reduce = %s card=%d", d, d.Card())
	}
}

func TestDisplayPassThrough(t *testing.T) {
	got, err := Evaluate(algebra.Display(cds()))
	if err != nil || len(got) != 3 {
		t.Fatalf("display: %d %v", len(got), err)
	}
}

func TestResultBytes(t *testing.T) {
	is := items(`<i>1</i>`, `<i>22</i>`)
	want := is[0].ByteSize() + is[1].ByteSize()
	if got := ResultBytes(is); got != want {
		t.Fatalf("ResultBytes = %d, want %d", got, want)
	}
}

// Property: select(p) ∪ select(not p) is a permutation-free partition of the
// input (here: sizes add up and each item appears on exactly one side).
func TestPropertySelectPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		docs := make([]*xmltree.Node, n)
		for i := range docs {
			docs[i] = xmltree.MustParse(fmt.Sprintf(`<i><p>%d</p></i>`, r.Intn(20)))
		}
		p := algebra.MustParsePredicate("p < 10")
		pos, err1 := Evaluate(algebra.Select(p, algebra.Data(docs...)))
		neg, err2 := Evaluate(algebra.Select(algebra.Not{P: p}, algebra.Data(docs...)))
		return err1 == nil && err2 == nil && len(pos)+len(neg) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: join cardinality equals the sum over keys of |L_k|*|R_k|.
func TestPropertyJoinCardinality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl, nr := 1+r.Intn(20), 1+r.Intn(20)
		lCount := map[int]int{}
		rCount := map[int]int{}
		var ld, rd []*xmltree.Node
		for i := 0; i < nl; i++ {
			k := r.Intn(5)
			lCount[k]++
			ld = append(ld, xmltree.MustParse(fmt.Sprintf(`<l><k>%d</k></l>`, k)))
		}
		for i := 0; i < nr; i++ {
			k := r.Intn(5)
			rCount[k]++
			rd = append(rd, xmltree.MustParse(fmt.Sprintf(`<r><k>%d</k></r>`, k)))
		}
		want := 0
		for k, c := range lCount {
			want += c * rCount[k]
		}
		got, err := Evaluate(algebra.Join("k", "k", algebra.Data(ld...), algebra.Data(rd...)))
		return err == nil && len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the absorption rewrite preserves the joined item combinations.
func TestPropertyAbsorbJoinEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(tag string, n, keys int) *algebra.Node {
			docs := make([]*xmltree.Node, n)
			for i := range docs {
				docs[i] = xmltree.MustParse(fmt.Sprintf(
					`<%s><k1>%d</k1><k2>%d</k2><id>%s%d</id></%s>`,
					tag, r.Intn(keys), r.Intn(keys), tag, i, tag))
			}
			return algebra.Data(docs...)
		}
		a, x, b := mk("a", 1+r.Intn(8), 3), mk("x", 1+r.Intn(8), 3), mk("b", 1+r.Intn(8), 3)
		inner := algebra.JoinNamed("k1", "k1", "a", "x", a, x)
		outer := algebra.JoinNamed("a/k2", "k2", "ax", "b", inner, b)
		rw, err := algebra.AbsorbJoin(outer)
		if err != nil {
			return false
		}
		origTuples, err1 := Evaluate(outer)
		rwTuples, err2 := Evaluate(rw)
		if err1 != nil || err2 != nil {
			return false
		}
		// Compare the multisets of (a.id, x.id, b.id) triples.
		key := func(aid, xid, bid string) string { return aid + "|" + xid + "|" + bid }
		orig := map[string]int{}
		for _, tp := range origTuples {
			orig[key(tp.Value("ax/a/id"), tp.Value("ax/x/id"), tp.Value("b/id"))]++
		}
		rws := map[string]int{}
		for _, tp := range rwTuples {
			rws[key(tp.Value("ab/a/id"), tp.Value("x/id"), tp.Value("ab/b/id"))]++
		}
		if len(orig) != len(rws) {
			return false
		}
		for k, v := range orig {
			if rws[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	var ld, rd []*xmltree.Node
	for i := 0; i < 1000; i++ {
		ld = append(ld, xmltree.MustParse(fmt.Sprintf(`<l><k>%d</k><v>left%d</v></l>`, i%100, i)))
		rd = append(rd, xmltree.MustParse(fmt.Sprintf(`<r><k>%d</k><v>right%d</v></r>`, i%100, i)))
	}
	j := algebra.Join("k", "k", algebra.Data(ld...), algebra.Data(rd...))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Evaluate(j)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 10000 {
			b.Fatalf("join output = %d", len(out))
		}
	}
}
