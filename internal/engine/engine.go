// Package engine evaluates algebra sub-plans whose leaves are verbatim XML
// data. It plays the role NIAGARA played in the paper's prototype (§2): the
// local XML query engine a peer's policy manager hands locally-evaluable
// sub-plans to.
//
// Item model: every collection is a slice of *xmltree.Node items. A join
// emits <tuple> items whose children are one element per join component
// (named by the join's LeftName/RightName), each holding the fields of the
// source item. Key and predicate paths address items relative to their root
// element, so "listing/song" reaches into the "listing" component of a
// joined tuple.
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/xmltree"
)

// Evaluate computes the result collection of a locally-evaluable sub-plan.
// It returns an error if the subtree contains URL or URN leaves (those must
// be resolved by the MQP processor first) or is otherwise malformed.
func Evaluate(n *algebra.Node) ([]*xmltree.Node, error) {
	switch n.Kind {
	case algebra.KindData:
		return n.Docs, nil
	case algebra.KindURL:
		return nil, fmt.Errorf("engine: unresolved URL leaf %q", n.URL)
	case algebra.KindURN:
		return nil, fmt.Errorf("engine: unresolved URN leaf %q", n.URN)
	case algebra.KindSelect:
		return evalSelect(n)
	case algebra.KindProject:
		return evalProject(n)
	case algebra.KindJoin:
		return evalJoin(n)
	case algebra.KindUnion:
		return evalUnion(n)
	case algebra.KindOr:
		// All alternatives hold the necessary data (§4.2); evaluate the
		// first. Routing policies should already have chosen an alternative.
		if len(n.Children) == 0 {
			return nil, fmt.Errorf("engine: empty or")
		}
		return Evaluate(n.Children[0])
	case algebra.KindDifference:
		return evalDifference(n)
	case algebra.KindCount:
		return evalCount(n)
	case algebra.KindTopN:
		return evalTopN(n)
	case algebra.KindDisplay:
		if len(n.Children) != 1 {
			return nil, fmt.Errorf("engine: display expects one child")
		}
		return Evaluate(n.Children[0])
	default:
		return nil, fmt.Errorf("engine: cannot evaluate %s", n.Kind)
	}
}

// LocallyEvaluable reports whether a sub-plan can be evaluated with no
// further resolution: all its leaves are verbatim data (§2: "a sub-plan is
// locally evaluable if all its leaves are verbatim XML data, URLs, or
// resolvable URNs" — URL/URN resolvability is the MQP processor's job; by
// the time the engine sees a sub-plan, data is the only admissible leaf).
func LocallyEvaluable(n *algebra.Node) bool {
	ok := true
	n.Walk(func(m *algebra.Node) bool {
		switch m.Kind {
		case algebra.KindURL, algebra.KindURN:
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Reduce evaluates a locally-evaluable sub-plan and returns a Data node
// holding the materialized result, annotated with its exact cardinality —
// the paper's reduction step ("substituting the results in place of the
// sub-plan"). Result items are frozen: they replace the sub-plan inside an
// in-flight plan, so every later hop serializes and forwards them by
// aliasing instead of cloning. Items passed through unchanged (selection,
// top-n) typically arrived frozen already, making this a no-op for them.
//
// Because pass-through items are aliases of the input's Docs, Reduce
// freezes those input documents in place — a sub-plan handed to Reduce is
// consumed. On the hop path inputs always arrive frozen (wire decode,
// catalog materialization); code evaluating an ad-hoc tree whose documents
// it wants to keep mutating should use Evaluate, which freezes nothing.
func Reduce(n *algebra.Node) (*algebra.Node, error) {
	items, err := Evaluate(n)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		it.Freeze()
	}
	out := algebra.Data(items...)
	out.SetCard(len(items))
	return out, nil
}

func evalSelect(n *algebra.Node) ([]*xmltree.Node, error) {
	in, err := Evaluate(n.Children[0])
	if err != nil {
		return nil, err
	}
	var out []*xmltree.Node
	for _, it := range in {
		if n.Pred.Eval(it) {
			out = append(out, it)
		}
	}
	return out, nil
}

func evalProject(n *algebra.Node) ([]*xmltree.Node, error) {
	in, err := Evaluate(n.Children[0])
	if err != nil {
		return nil, err
	}
	out := make([]*xmltree.Node, 0, len(in))
	for _, it := range in {
		e := xmltree.Elem(n.As)
		for _, f := range n.Fields {
			if m := it.Find(f); m != nil {
				if m.IsText() {
					// Attribute access synthesizes text nodes; wrap them so
					// the projected field keeps a name.
					name := f[strings.LastIndexByte(f, '/')+1:]
					name = strings.TrimPrefix(name, "@")
					e.Add(xmltree.ElemText(name, m.Text))
				} else {
					// Fields of frozen source items are aliased into the
					// projection; only mutable inputs pay for a copy.
					e.Add(m.Share())
				}
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// keyOf extracts a join key: the trimmed inner text of the first match.
// Items with no match carry no key and never join (SQL NULL-like).
func keyOf(it *xmltree.Node, path string) (string, bool) {
	m := it.Find(path)
	if m == nil {
		return "", false
	}
	return strings.TrimSpace(m.InnerText()), true
}

// component wraps an item's fields under an element named name; join
// outputs are <tuple> elements with one component per side. Fields of
// frozen source items are aliased, not copied — the tuple owns only its
// two wrapper elements.
func component(name string, it *xmltree.Node) *xmltree.Node {
	e := xmltree.Elem(name)
	for _, c := range it.Children {
		e.Add(c.Share())
	}
	return e
}

func evalJoin(n *algebra.Node) ([]*xmltree.Node, error) {
	left, err := Evaluate(n.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := Evaluate(n.Children[1])
	if err != nil {
		return nil, err
	}
	// Classic hash join: build on the smaller side.
	build, probe := left, right
	buildKey, probeKey := n.LeftKey, n.RightKey
	swapped := false
	if len(right) < len(left) {
		build, probe = right, left
		buildKey, probeKey = n.RightKey, n.LeftKey
		swapped = true
	}
	table := make(map[string][]*xmltree.Node, len(build))
	for _, it := range build {
		if k, ok := keyOf(it, buildKey); ok {
			table[k] = append(table[k], it)
		}
	}
	var out []*xmltree.Node
	for _, p := range probe {
		k, ok := keyOf(p, probeKey)
		if !ok {
			continue
		}
		for _, b := range table[k] {
			// Restore left/right orientation: the build side is the left
			// input unless the inputs were swapped above.
			l, r := b, p
			if swapped {
				l, r = p, b
			}
			tuple := xmltree.Elem("tuple",
				component(n.LeftName, l),
				component(n.RightName, r),
			)
			out = append(out, tuple)
		}
	}
	return out, nil
}

func evalUnion(n *algebra.Node) ([]*xmltree.Node, error) {
	var out []*xmltree.Node
	for _, c := range n.Children {
		items, err := Evaluate(c)
		if err != nil {
			return nil, err
		}
		out = append(out, items...)
	}
	return out, nil
}

func evalDifference(n *algebra.Node) ([]*xmltree.Node, error) {
	left, err := Evaluate(n.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := Evaluate(n.Children[1])
	if err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(right))
	for _, it := range right {
		drop[it.String()] = true
	}
	var out []*xmltree.Node
	for _, it := range left {
		if !drop[it.String()] {
			out = append(out, it)
		}
	}
	return out, nil
}

func evalCount(n *algebra.Node) ([]*xmltree.Node, error) {
	in, err := Evaluate(n.Children[0])
	if err != nil {
		return nil, err
	}
	return []*xmltree.Node{xmltree.ElemText("count", strconv.Itoa(len(in)))}, nil
}

func evalTopN(n *algebra.Node) ([]*xmltree.Node, error) {
	in, err := Evaluate(n.Children[0])
	if err != nil {
		return nil, err
	}
	items := make([]*xmltree.Node, len(in))
	copy(items, in)
	less := func(a, b *xmltree.Node) bool {
		av := strings.TrimSpace(a.Value(n.OrderBy))
		bv := strings.TrimSpace(b.Value(n.OrderBy))
		af, aerr := strconv.ParseFloat(av, 64)
		bf, berr := strconv.ParseFloat(bv, 64)
		var cmp int
		if aerr == nil && berr == nil {
			switch {
			case af < bf:
				cmp = -1
			case af > bf:
				cmp = 1
			}
		} else {
			cmp = strings.Compare(av, bv)
		}
		if n.Desc {
			return cmp > 0
		}
		return cmp < 0
	}
	sort.SliceStable(items, func(i, j int) bool { return less(items[i], items[j]) })
	if len(items) > n.N {
		items = items[:n.N]
	}
	return items, nil
}

// ResultBytes returns the total canonical-XML byte size of a collection —
// the "size of partial results" quantity the paper's MQP optimization
// discussion centers on (§2).
func ResultBytes(items []*xmltree.Node) int {
	total := 0
	for _, it := range items {
		total += it.ByteSize()
	}
	return total
}
