package route

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/xmltree"
)

func urlPlan(target string, urls ...string) *algebra.Plan {
	kids := make([]*algebra.Node, len(urls))
	for i, u := range urls {
		kids[i] = algebra.URL(u, "")
	}
	return algebra.NewPlan("q", target, algebra.Display(algebra.Union(kids...)))
}

// TestCandidatesOrderingAndDedup pins the PR 3 preference order the routing
// layer inherited from the processor: explicit route annotations first, then
// catalog routes, then URL owners; duplicates and self dropped.
func TestCandidatesOrderingAndDedup(t *testing.T) {
	urn := algebra.URN("urn:X:Y")
	urn.Annotate(catalog.AnnotRoute, "ann:1")
	self := algebra.URN("urn:X:Z")
	self.Annotate(catalog.AnnotRoute, "self:1")
	root := algebra.Display(algebra.Union(
		urn, self,
		algebra.URL("url1:1", ""),
		algebra.URL("ann:1", ""),  // dup of the annotation
		algebra.URL("self:1", ""), // self
		algebra.URL("url2:1", ""),
	))
	got := Candidates(root, "self:1", []string{"cat:1", "ann:1", "cat:2"})
	want := []string{"ann:1", "cat:1", "cat:2", "url1:1", "url2:1"}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestSelectTransferPolicy(t *testing.T) {
	p := urlPlan("t:1", "a:1", "b:1", "c:1")
	RestrictServers(p, "b:1")
	dec := Select(p, "self:1", nil)
	if dec.Reason != Forward || len(dec.Hops) != 1 || dec.Hops[0] != "b:1" {
		t.Fatalf("decision = %+v, want only the allowed hop b:1", dec)
	}
	// Policy filtering everything yields NoRoute (stuck), matching the
	// pre-routing-layer behavior — not a partial.
	RestrictServers(p, "nobody:1")
	if dec := Select(p, "self:1", nil); dec.Reason != NoRoute {
		t.Fatalf("decision = %+v, want NoRoute when the policy forbids every hop", dec)
	}
}

func TestSelectNoCandidates(t *testing.T) {
	p := algebra.NewPlan("q", "t:1", algebra.Display(algebra.URN("urn:No:Route")))
	if dec := Select(p, "self:1", nil); dec.Reason != NoRoute {
		t.Fatalf("decision = %+v, want NoRoute with no candidates at all", dec)
	}
}

// TestSelectVisitedFiltering: an unvisited candidate always survives; a
// visited one survives only when the plan has mutated since its last visit.
func TestSelectVisitedFiltering(t *testing.T) {
	p := urlPlan("t:1", "a:1", "b:1")
	MarkVisited(p, "a:1")

	// The plan is unchanged since a:1 saw it: forwarding there is ping-pong.
	dec := Select(p, "self:1", nil)
	if dec.Reason != Forward || len(dec.Hops) != 1 || dec.Hops[0] != "b:1" {
		t.Fatalf("decision = %+v, want b:1 only (a:1 is pure ping-pong)", dec)
	}
	if len(dec.Filtered) != 1 || dec.Filtered[0] != "a:1" {
		t.Fatalf("filtered = %v, want [a:1]", dec.Filtered)
	}

	// Mutate the plan (a new annotation): the revisit can teach a:1
	// something, so it survives again — after b:1, preference order intact.
	p.Root.Annotate("card", "7")
	dec = Select(p, "self:1", nil)
	if dec.Reason != Forward || len(dec.Hops) != 2 || dec.Hops[0] != "a:1" || dec.Hops[1] != "b:1" {
		t.Fatalf("decision = %+v, want [a:1 b:1] after mutation", dec)
	}
}

func TestSelectExhausted(t *testing.T) {
	p := urlPlan("t:1", "a:1")
	MarkVisited(p, "a:1")
	dec := Select(p, "self:1", nil)
	if dec.Reason != Exhausted {
		t.Fatalf("decision = %+v, want Exhausted (only candidate is pure ping-pong)", dec)
	}
}

// TestRevisitBudget: even productive revisits are bounded.
func TestRevisitBudget(t *testing.T) {
	p := urlPlan("t:1", "a:1")
	p.VisitedMemory().Budget = 2
	for visit := 1; visit <= 3; visit++ {
		MarkVisited(p, "a:1")
		p.Root.Annotate("card", string(rune('0'+visit))) // progress every round
	}
	// a:1 has been visited 3 times with budget 2: no fourth visit, even
	// though the plan mutated.
	if dec := Select(p, "self:1", nil); dec.Reason != Exhausted {
		t.Fatalf("decision = %+v, want Exhausted after the revisit budget is spent", dec)
	}
	// The same history under a looser budget still forwards.
	p.VisitedMemory().Budget = 5
	if dec := Select(p, "self:1", nil); dec.Reason != Forward {
		t.Fatalf("decision = %+v, want Forward with budget to spare", dec)
	}
}

func TestMarkVisited(t *testing.T) {
	p := urlPlan("t:1", "a:1")
	MarkVisited(p, "self:1")
	MarkVisited(p, "self:1")
	rec, ok := p.Visited.Lookup("self:1")
	if !ok || rec.Count != 2 {
		t.Fatalf("record = %+v ok=%v, want count 2", rec, ok)
	}
	if rec.Fingerprint != algebra.Fingerprint(p.Root) {
		t.Fatal("recorded fingerprint must match the current plan state")
	}
}

func frozenItems(ss ...string) []*xmltree.Node {
	out := make([]*xmltree.Node, len(ss))
	for i, s := range ss {
		out[i] = xmltree.MustParse(s).Freeze()
	}
	return out
}

// TestPartialMonotone: a partial result evaluates the monotone fragment of
// the plan over the data in hand — selections apply, unresolved leaves are
// empty — and is flagged partial on the wire.
func TestPartialMonotone(t *testing.T) {
	data := algebra.Data(frozenItems(
		`<i><v>1</v></i>`, `<i><v>5</v></i>`, `<i><v>9</v></i>`)...)
	p := algebra.NewPlan("q", "t:1", algebra.Display(
		algebra.Select(algebra.MustParsePredicate("v < 6"),
			algebra.Union(data, algebra.URN("urn:Not:Resolved")))))
	pp := Partial(p)
	if !pp.PartialResult() {
		t.Fatal("partial plan not flagged")
	}
	items, err := pp.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("partial = %d items, want the 2 matching available ones", len(items))
	}
	// The flag survives the wire round trip.
	rt, err := algebra.Unmarshal(algebra.Marshal(pp))
	if err != nil {
		t.Fatal(err)
	}
	if !rt.PartialResult() {
		t.Fatal("partial flag lost on the wire")
	}
}

// TestPartialNonMonotone: difference and count must not be evaluated over
// partial inputs (they could overstate the answer) — unless fully evaluable,
// they contribute nothing.
func TestPartialNonMonotone(t *testing.T) {
	data := algebra.Data(frozenItems(`<i><v>1</v></i>`)...)
	diff := algebra.NewPlan("q", "t:1", algebra.Display(
		algebra.Difference(data, algebra.URN("urn:Not:Resolved"))))
	items, err := Partial(diff).Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("difference over partial inputs must contribute nothing, got %d items", len(items))
	}

	cnt := algebra.NewPlan("q2", "t:1", algebra.Display(
		algebra.Count(algebra.Select(algebra.MustParsePredicate("v < 6"), algebra.URN("urn:X:Y")))))
	items, err = Partial(cnt).Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("count over partial inputs must contribute nothing, got %d items", len(items))
	}
}

// TestPartialExactSubtree: a fully-evaluable subtree contributes its exact
// value even under a non-monotone operator, because it is not partial.
func TestPartialExactSubtree(t *testing.T) {
	exact := algebra.Difference(
		algebra.Data(frozenItems(`<i><v>1</v></i>`, `<i><v>2</v></i>`)...),
		algebra.Data(frozenItems(`<i><v>2</v></i>`)...))
	p := algebra.NewPlan("q", "t:1", algebra.Display(
		algebra.Union(exact, algebra.URN("urn:Not:Resolved"))))
	items, err := Partial(p).Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].InnerText() != "1" {
		t.Fatalf("exact difference subtree must contribute its value, got %v", items)
	}
}

// TestPartialCarriesContext: the partial keeps the plan's id, target,
// original query, visited memory and extra sections.
func TestPartialCarriesContext(t *testing.T) {
	p := algebra.NewPlan("q", "t:1", algebra.Display(algebra.URN("urn:X:Y")))
	p.RetainOriginal()
	MarkVisited(p, "s:1")
	p.Extra = map[string]*xmltree.Node{"provenance": xmltree.Elem("provenance").Freeze()}
	pp := Partial(p)
	if pp.ID != "q" || pp.Target != "t:1" {
		t.Fatalf("partial lost identity: %q -> %q", pp.ID, pp.Target)
	}
	if pp.Original == nil {
		t.Fatal("partial lost the original query")
	}
	if pp.Visited == nil || pp.Visited.Len() != 1 {
		t.Fatal("partial lost the visited memory")
	}
	if pp.Extra["provenance"] == nil {
		t.Fatal("partial lost the provenance section")
	}
}
