package route

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
)

func TestShortcutsLearnLookupOrdering(t *testing.T) {
	s := NewShortcuts(ShortcutsConfig{})
	const area = "urn:L:USA/OR"
	s.Learn(area, "idx-OR:9020", 1, 1*time.Minute)
	s.Learn(area, "s7:9020", 1, 2*time.Minute)
	s.Learn(area, "idx-OR:9020", 1, 3*time.Minute) // re-confirm → 2 hits

	got := s.Lookup(area, 1, 4*time.Minute)
	if len(got) != 2 || got[0] != "idx-OR:9020" || got[1] != "s7:9020" {
		t.Fatalf("lookup = %v, want [idx-OR:9020 s7:9020] (hits desc)", got)
	}
	if got := s.Lookup("urn:L:USA/WA", 1, 4*time.Minute); got != nil {
		t.Fatalf("unknown area lookup = %v, want nil", got)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Learned != 3 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShortcutsExpiry(t *testing.T) {
	s := NewShortcuts(ShortcutsConfig{MaxAge: 10 * time.Minute, StaleAge: 2 * time.Minute})
	const area = "urn:L:USA/OR"
	s.Learn(area, "idx-OR:9020", 5, 0)

	// Same generation: alive until MaxAge, gone after.
	if got := s.Lookup(area, 5, 10*time.Minute); len(got) != 1 {
		t.Fatalf("entry expired before MaxAge: %v", got)
	}
	if got := s.Lookup(area, 5, 11*time.Minute); got != nil {
		t.Fatalf("entry outlived MaxAge: %v", got)
	}

	// Catalog moved on (churn): the short staleness TTL governs instead.
	if got := s.Lookup(area, 6, 2*time.Minute); len(got) != 1 {
		t.Fatalf("stale-generation entry expired before StaleAge: %v", got)
	}
	if got := s.Lookup(area, 6, 3*time.Minute); got != nil {
		t.Fatalf("stale-generation entry outlived StaleAge: %v", got)
	}

	// A re-confirmation under the new generation restores the full TTL.
	s.Learn(area, "idx-OR:9020", 6, 4*time.Minute)
	if got := s.Lookup(area, 6, 13*time.Minute); len(got) != 1 {
		t.Fatalf("re-confirmed entry expired early: %v", got)
	}

	if reaped := s.Sweep(6, time.Hour); reaped != 1 {
		t.Fatalf("sweep reaped %d, want 1", reaped)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("entries after sweep = %d", st.Entries)
	}
}

func TestShortcutsMaxPerArea(t *testing.T) {
	s := NewShortcuts(ShortcutsConfig{MaxPerArea: 2})
	const area = "urn:L:USA"
	s.Learn(area, "a:1", 1, 1*time.Minute)
	s.Learn(area, "a:1", 1, 2*time.Minute)
	s.Learn(area, "b:1", 1, 3*time.Minute)
	s.Learn(area, "c:1", 1, 4*time.Minute) // evicts the lowest-scored (b or c)
	got := s.Lookup(area, 1, 5*time.Minute)
	if len(got) != 2 || got[0] != "a:1" {
		t.Fatalf("lookup = %v, want 2 entries led by a:1", got)
	}
}

func TestShortcutsInvalidate(t *testing.T) {
	s := NewShortcuts(ShortcutsConfig{})
	s.Learn("urn:L:USA/OR", "dead:1", 1, 0)
	s.Learn("urn:L:USA/WA", "dead:1", 1, 0)
	s.Learn("urn:L:USA/WA", "alive:1", 1, 0)
	if n := s.Invalidate("dead:1"); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if got := s.Lookup("urn:L:USA/OR", 1, 0); got != nil {
		t.Fatalf("invalidated server still returned: %v", got)
	}
	if got := s.Lookup("urn:L:USA/WA", 1, 0); len(got) != 1 || got[0] != "alive:1" {
		t.Fatalf("lookup = %v, want [alive:1]", got)
	}
	if st := s.Stats(); st.Invalidated != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShortcutsConfirmed(t *testing.T) {
	s := NewShortcuts(ShortcutsConfig{})
	s.Learn("urn:L:USA/OR", "idx-OR:9020", 1, 0)
	s.Learn("urn:L:USA/OR", "idx-OR:9020", 1, time.Minute)
	s.Learn("urn:L:USA/WA", "idx-WA:9020", 1, time.Minute)
	got := s.Confirmed(2, 1, 2*time.Minute)
	if len(got) != 1 || got[0].Server != "idx-OR:9020" || got[0].Hits != 2 {
		t.Fatalf("confirmed = %+v, want the 2-hit OR edge only", got)
	}
}

// TestShortcutsCandidates: URN leaves of the plan drive lookups; duplicates
// and self are dropped; a nil table is inert.
func TestShortcutsCandidates(t *testing.T) {
	s := NewShortcuts(ShortcutsConfig{})
	s.Learn("urn:L:USA/OR", "idx-OR:9020", 1, 0)
	s.Learn("urn:L:USA/WA", "idx-OR:9020", 1, 0) // dup server across areas
	s.Learn("urn:L:USA/WA", "self:9020", 1, 0)   // self must be dropped
	root := algebra.Display(algebra.Union(
		algebra.URN("urn:L:USA/OR"),
		algebra.URN("urn:L:USA/WA"),
		algebra.URN("urn:L:USA/CA"), // no shortcut
	))
	got := s.Candidates(root, "self:9020", 1, 0)
	if len(got) != 1 || got[0] != "idx-OR:9020" {
		t.Fatalf("candidates = %v, want [idx-OR:9020]", got)
	}
	var nilTable *Shortcuts
	if got := nilTable.Candidates(root, "self:9020", 1, 0); got != nil {
		t.Fatalf("nil table candidates = %v, want nil", got)
	}
}

// TestSelectLearnedTierFirst: learned shortcuts outrank route annotations,
// catalog routes and URL owners — and an empty learned tier leaves the
// decision identical to a call without the argument (the byte-identity
// guarantee for builds with learning disabled).
func TestSelectLearnedTierFirst(t *testing.T) {
	p := urlPlan("client:1", "url1:1")
	dec := Select(p, "self:1", []string{"cat:1"}, "learned:1")
	if dec.Reason != Forward || len(dec.Hops) != 3 || dec.Hops[0] != "learned:1" {
		t.Fatalf("decision = %+v, want learned:1 first of 3", dec)
	}
	p2 := urlPlan("client:1", "url1:1")
	with := Select(p2, "self:1", []string{"cat:1"})
	without := Select(p2, "self:1", []string{"cat:1"}, []string{}...)
	if fmt.Sprint(with) != fmt.Sprint(without) {
		t.Fatalf("empty learned tier changed the decision: %+v vs %+v", with, without)
	}
}

// TestShortcutsConcurrent exercises concurrent readers during mining and
// invalidation; run under -race (make race does).
func TestShortcutsConcurrent(t *testing.T) {
	s := NewShortcuts(ShortcutsConfig{})
	root := algebra.Display(algebra.Union(
		algebra.URN("urn:L:USA/OR"), algebra.URN("urn:L:USA/WA")))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				at := time.Duration(i) * time.Second
				switch w {
				case 0:
					s.Learn("urn:L:USA/OR", fmt.Sprintf("s%d:1", i%8), uint64(i%3), at)
				case 1:
					s.Learn("urn:L:USA/WA", fmt.Sprintf("s%d:1", i%8), uint64(i%3), at)
					if i%50 == 0 {
						s.Invalidate(fmt.Sprintf("s%d:1", i%8))
					}
				case 2:
					s.Lookup("urn:L:USA/OR", uint64(i%3), at)
					s.Candidates(root, "self:1", uint64(i%3), at)
				case 3:
					s.Confirmed(2, uint64(i%3), at)
					s.Stats()
					if i%100 == 0 {
						s.Sweep(uint64(i%3), at)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShortcutsDecayOrdering pins the decay-weighted ranking: an edge that
// piled up hits long ago and went quiet is outranked by a recently
// confirmed edge with fewer hits, both at Learn-time re-sorting and at
// Lookup time as decay keeps shifting the balance between confirmations.
func TestShortcutsDecayOrdering(t *testing.T) {
	s := NewShortcuts(ShortcutsConfig{HalfLife: 10 * time.Minute, MaxAge: 24 * time.Hour})
	const area = "urn:L:USA/OR"
	// old:1 earns 10 confirmations in the first minute; new:1 earns 3
	// around the 29-minute mark.
	for i := 0; i < 10; i++ {
		s.Learn(area, "old:1", 1, 1*time.Minute)
	}
	for i := 0; i < 3; i++ {
		s.Learn(area, "new:1", 1, 29*time.Minute)
	}

	// Immediately after the burst both raw orderings agree (3 fresh hits
	// beat 10 decayed to 10×2^-2.8 ≈ 1.4).
	if got := s.Lookup(area, 1, 30*time.Minute); got[0] != "new:1" {
		t.Fatalf("at 30m lookup = %v, want new:1 first (recent confirmations outrank stale bulk)", got)
	}

	// The same table, read shortly after the old edge's burst, ranks the
	// other way — 9 minutes in, old:1 still scores 10×2^-0.8 ≈ 5.7 against
	// a not-yet-confirmed new:1 (score 0 hits... it has 3 hits learned at
	// 29m, in the future relative to 9m: future stamps clamp to age 0, so
	// 3). Decay is a function of the lookup clock, not of table state.
	if got := s.Lookup(area, 1, 9*time.Minute); got[0] != "old:1" {
		t.Fatalf("at 9m lookup = %v, want old:1 first", got)
	}

	// One fresh confirmation for the quiet edge restores it: 11 hits
	// re-stamped now beats 3 hits a half-life old.
	s.Learn(area, "old:1", 1, 40*time.Minute)
	if got := s.Lookup(area, 1, 40*time.Minute); got[0] != "old:1" {
		t.Fatalf("after re-confirmation lookup = %v, want old:1 first", got)
	}
}

// TestShortcutsDecayEviction: with decay, MaxPerArea eviction drops the
// stalest edge, not the newest — a table full of dead weight makes room
// for the edge the workload is proving right now.
func TestShortcutsDecayEviction(t *testing.T) {
	s := NewShortcuts(ShortcutsConfig{MaxPerArea: 2, HalfLife: 5 * time.Minute, MaxAge: 24 * time.Hour})
	const area = "urn:L:USA"
	for i := 0; i < 8; i++ {
		s.Learn(area, "stale:1", 1, 0) // 8 hits, ancient
	}
	s.Learn(area, "warm:1", 1, 58*time.Minute)
	s.Learn(area, "fresh:1", 1, 60*time.Minute) // table over cap: stale:1 scores 8×2^-12 ≈ 0.002 and is evicted
	got := s.Lookup(area, 1, 60*time.Minute)
	if len(got) != 2 || got[0] != "fresh:1" || got[1] != "warm:1" {
		t.Fatalf("lookup = %v, want [fresh:1 warm:1] with stale:1 evicted", got)
	}
}
