// Package route is the routing layer of the mutant-query-plan system: it
// decides where a plan that is not yet fully evaluated travels next.
//
// The paper's plans are self-routing — each hop decides the next server from
// what the plan itself carries. This package centralizes that decision,
// which used to be smeared across the MQP processor (candidate collection,
// transfer-policy filtering) and the peer transport (fallback iteration),
// and adds the piece that makes self-routing live: visited-server memory
// carried on the plan (algebra.Visited). A candidate that has already seen
// the plan is only worth revisiting when the plan has mutated since — new
// bindings, data, annotations — and even productive revisits are bounded by
// a budget, so every plan terminates: each hop consumes either an unvisited
// server or budget, and when neither remains the router says so explicitly
// (Exhausted) instead of bouncing the plan into a forwarding-depth guard.
//
// A plan that can no longer travel productively is not lost: Partial derives
// an explicit partial result — the best-effort evaluation of what the plan
// already holds, guaranteed to be a sub-multiset of the complete answer —
// for the transport to deliver to the plan's target.
package route

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/namespace"
	"repro/internal/xmltree"
)

// DefaultRevisitBudget is the number of times a plan may return to a server
// it has already visited, when no plan-level budget is set. Pure ping-pong
// is filtered by the fingerprint rule regardless; the budget bounds cycles
// that keep mutating the plan (and legitimate multi-pass itineraries, e.g. a
// remainder URN chaining through a meta-index once per covered sub-area).
const DefaultRevisitBudget = 6

// AnnotAllowServers is the §5.2 transfer-policy annotation on the plan root:
// the only servers the plan may visit, comma-separated. Empty or absent
// means unrestricted.
const AnnotAllowServers = "allow-servers"

// RestrictServers constrains the plan to travel only through the listed
// servers (plus its target). Forwarding to, or processing at, any other
// server fails.
func RestrictServers(p *algebra.Plan, servers ...string) {
	p.Root.Annotate(AnnotAllowServers, strings.Join(servers, ","))
}

// AllowedServers returns the plan's transfer policy, or nil when
// unrestricted.
func AllowedServers(p *algebra.Plan) []string {
	v, ok := p.Root.Annotation(AnnotAllowServers)
	if !ok || v == "" {
		return nil
	}
	return strings.Split(v, ",")
}

// Reason explains a routing decision.
type Reason int

const (
	// Forward: productive candidates remain; travel along Decision.Hops.
	Forward Reason = iota
	// NoRoute: the plan names no server this router could forward to at
	// all — no route annotations, no catalog routes, no foreign URL owners
	// (or the transfer policy forbids every one). The plan is stuck.
	NoRoute
	// Exhausted: forwarding candidates exist, but every one has already
	// seen the plan in its current state (or its revisit budget is spent).
	// Forwarding is guaranteed wasted work; the transport should deliver an
	// explicit partial result instead.
	Exhausted
)

func (r Reason) String() string {
	switch r {
	case Forward:
		return "forward"
	case NoRoute:
		return "no-route"
	case Exhausted:
		return "exhausted"
	default:
		return "reason(?)"
	}
}

// Decision is the outcome of Select.
type Decision struct {
	// Hops are the surviving forwarding candidates in preference order;
	// transports fall back along the tail when a destination is
	// unreachable. Empty unless Reason is Forward.
	Hops []string
	// Reason classifies the decision.
	Reason Reason
	// Filtered lists candidates removed by the visited-server memory, for
	// diagnostics.
	Filtered []string
	// Fingerprint is the plan-root fingerprint Select computed; reuse it
	// (Decision.MarkVisited) instead of re-hashing the tree.
	Fingerprint uint64
}

// MarkVisited records one visit by self in the plan's visited memory, with
// the fingerprint of the plan as this server is about to forward it. Call
// it after all of the server's mutations, so the recorded fingerprint
// captures the state the rest of the network sees next.
func MarkVisited(p *algebra.Plan, self string) {
	p.VisitedMemory().Mark(self, algebra.Fingerprint(p.Root))
}

// MarkVisited records one visit by self reusing the fingerprint this
// decision already computed — valid as long as the plan has not mutated
// since Select.
func (d Decision) MarkVisited(p *algebra.Plan, self string) {
	p.VisitedMemory().Mark(self, d.Fingerprint)
}

// Select decides where the plan travels next. Candidates are collected from
// the plan in preference order — learned shortcuts first (when the caller
// passes any, see Shortcuts.Candidates), then explicit route annotations on
// URN leaves, then the catalog routes the caller's binding passes produced,
// then the owners of unresolved URL leaves — deduplicated, restricted to the
// plan's transfer policy, and filtered against the visited-server memory: a
// server that has already seen the plan is retried only while the plan has
// mutated since its last visit and its revisit budget remains.
func Select(p *algebra.Plan, self string, catalogRoutes []string, learned ...string) Decision {
	fp := algebra.Fingerprint(p.Root)
	raw := Candidates(p.Root, self, catalogRoutes, learned...)
	allowed := filterByTransferPolicy(p, raw)
	if len(allowed) == 0 {
		return Decision{Reason: NoRoute, Fingerprint: fp}
	}
	hops, filtered := filterByVisited(p, allowed, fp)
	if len(hops) == 0 {
		return Decision{Reason: Exhausted, Filtered: filtered, Fingerprint: fp}
	}
	return Decision{Hops: hops, Reason: Forward, Filtered: filtered, Fingerprint: fp}
}

// Candidates collects forwarding candidates in preference order: learned
// shortcuts first (already best-ranked by the caller's Shortcuts table),
// then explicit route annotations on URN leaves, then catalog route
// candidates, then servers owning unresolved URL leaves. Duplicates and
// self are dropped. A learned shortcut outranks the catalog because it is
// evidence — a trail proved this server held the data — where the catalog
// tiers are only direction; the visited memory still bounds it if the
// evidence has gone stale.
func Candidates(root *algebra.Node, self string, catalogRoutes []string, learned ...string) []string {
	var annotated, urls []string
	root.Walk(func(m *algebra.Node) bool {
		switch m.Kind {
		case algebra.KindURN:
			if r, ok := m.Annotation(catalog.AnnotRoute); ok && r != self {
				annotated = append(annotated, r)
			}
		case algebra.KindURL:
			if a := AddrOf(m.URL); a != self {
				urls = append(urls, a)
			}
		}
		return true
	})
	seen := map[string]bool{self: true, "": true}
	var out []string
	for _, cands := range [][]string{learned, annotated, catalogRoutes, urls} {
		for _, c := range cands {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// AddrOf extracts the peer address from a URL leaf value: it accepts both
// bare "host:port" strings and "http://host:port/..." forms.
func AddrOf(url string) string {
	s := strings.TrimPrefix(url, "http://")
	s = strings.TrimPrefix(s, "https://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// filterByTransferPolicy drops candidates outside the plan's §5.2 transfer
// policy. The plan's target is always allowed.
func filterByTransferPolicy(p *algebra.Plan, hops []string) []string {
	allowed := AllowedServers(p)
	if allowed == nil {
		return hops
	}
	ok := make(map[string]bool, len(allowed)+1)
	for _, a := range allowed {
		ok[a] = true
	}
	ok[p.Target] = true
	var out []string
	for _, h := range hops {
		if ok[h] {
			out = append(out, h)
		}
	}
	return out
}

// filterByVisited applies the visited-server memory: an unvisited candidate
// always survives; a visited one survives only while the plan's fingerprint
// has changed since that server's last visit (the revisit can teach it
// something) and the candidate's revisit budget remains.
func filterByVisited(p *algebra.Plan, hops []string, fp uint64) (keep, filtered []string) {
	v := p.Visited
	if v == nil || v.Len() == 0 {
		return hops, nil
	}
	budget := v.Budget
	if budget <= 0 {
		budget = DefaultRevisitBudget
	}
	for _, h := range hops {
		rec, seen := v.Lookup(h)
		switch {
		case !seen:
			keep = append(keep, h)
		case rec.Fingerprint == fp:
			// The plan has not mutated since h last processed it: h would
			// do exactly what it did before. Pure ping-pong.
			filtered = append(filtered, h)
		case rec.Count > budget:
			filtered = append(filtered, h)
		default:
			keep = append(keep, h)
		}
	}
	return keep, filtered
}

// AnnotResubmittable is the plan-root annotation a client sets before
// submitting to opt into partial-result resubmission: processors then keep
// (server, area) attribution on bound leaves and record answered-area pairs
// into the visited memory, so a partial result can be resubmitted with
// covered areas excluded. Plans without the flag follow the exact pre-
// resubmission code paths — their wire bytes are unchanged.
const AnnotResubmittable = "resubmittable"

// MarkResubmittable opts the plan into partial-result resubmission. Set it
// before the first submission (it is part of the fingerprinted root state).
func MarkResubmittable(p *algebra.Plan) { p.Root.Annotate(AnnotResubmittable, "true") }

// Resubmittable reports whether the plan opted into resubmission.
func Resubmittable(p *algebra.Plan) bool {
	v, _ := p.Root.Annotation(AnnotResubmittable)
	return v == "true"
}

// Resubmit derives a fresh submission from a partial result: the retained
// original query re-travels under a new id, carrying the partial's
// answered-area records in its visited memory so processors subtract the
// covered (server, area) pairs before routing — the plan converges on the
// missing remainder instead of re-walking the whole itinerary. Visit
// records are NOT carried over: the fresh plan may legitimately revisit
// every server; only the answered-area exclusions persist (plus the
// plan-level revisit budget, which is routing policy, not history).
//
// Soundness contract (see TESTING.md "Learned routing"): for plans whose
// operator tree is distributive (display/select/project/union over leaves),
// the partial's items ∪ the resubmitted result's items equal the complete
// answer multiset. Non-distributive shapes carry no answered records and
// simply re-evaluate from scratch — always sound, never excluded.
func Resubmit(partial *algebra.Plan, id string) (*algebra.Plan, error) {
	if partial == nil || !partial.PartialResult() {
		return nil, fmt.Errorf("route: resubmit needs a partial result")
	}
	if partial.Original == nil {
		return nil, fmt.Errorf("route: partial %q retained no original query", partial.ID)
	}
	np := algebra.NewPlan(id, partial.Target, partial.Original.Clone())
	np.Original = partial.Original
	MarkResubmittable(np)
	v := np.VisitedMemory()
	if partial.Visited != nil {
		v.Budget = partial.Visited.Budget
		for _, aa := range partial.Visited.Answered() {
			v.MarkAnswered(aa.Server, aa.URN)
		}
	}
	return np, nil
}

// Partial derives the explicit partial result for a plan that can no longer
// travel productively: the best-effort evaluation of the data the plan
// already holds, with unresolved work treated as empty. The result plan is
// constant, flagged with algebra.AnnotPartial, and carries the original
// query, visited memory and extra sections (provenance) of the source plan,
// so a client can see both what it got and why the rest is missing.
//
// Soundness: only monotone operators (select, project, join, union) are
// evaluated over partially-available inputs — for those, a sub-multiset of
// the inputs yields a sub-multiset of the answer. A non-monotone subtree
// (difference, count, top-n, or an unresolved or-choice) contributes its
// exact value when it is fully evaluable here and nothing otherwise, so a
// partial result is always a sub-multiset of the complete answer.
func Partial(p *algebra.Plan) *algebra.Plan {
	body := p.Root
	if body.Kind == algebra.KindDisplay && len(body.Children) == 1 {
		body = body.Children[0]
	}
	var items []*xmltree.Node
	evalFailed := false
	if pruned := pruneToAvailable(body); pruned != nil {
		if got, err := engine.Evaluate(pruned); err == nil {
			items = got
		} else {
			evalFailed = true
		}
	}
	if Resubmittable(p) && p.Visited != nil && p.Visited.AnsweredLen() > 0 {
		reconcileAnswered(p.Visited, body, evalFailed)
	}
	for _, it := range items {
		it.Freeze()
	}
	data := algebra.Data(items...)
	data.SetCard(len(items))
	pp := &algebra.Plan{ID: p.ID, Target: p.Target, Root: algebra.Display(data),
		Original: p.Original, Visited: p.Visited}
	pp.MarkPartialResult()
	if p.Extra != nil {
		pp.Extra = make(map[string]*xmltree.Node, len(p.Extra))
		for k, e := range p.Extra {
			pp.Extra[k] = e.Share()
		}
	}
	return pp
}

// reconcileAnswered trims the answered-area records down to what this
// partial actually includes, so a resubmission excludes exactly the
// contributions already delivered and nothing more:
//
//   - evaluation failure means the recorded pairs' data never reached the
//     result — clear everything rather than exclude data nobody got;
//   - an unresolved URL leaf with the same (server, area) pair as a
//     recorded one would be wrongly excluded on resubmit (the pair covers
//     both the materialized and the unmaterialized collection), so the
//     ambiguous pair is dropped;
//   - a still-unresolved URN leaf could bind to any collection overlapping
//     its area on resubmission — every recorded pair its area overlaps is
//     dropped (undecodable URNs drop everything, conservatively).
//
// Dropping a pair is always safe: the worst case is a resubmission
// re-fetching data the client merges away, never a missing answer.
func reconcileAnswered(v *algebra.Visited, body *algebra.Node, evalFailed bool) {
	if evalFailed {
		v.ClearAnswered()
		return
	}
	body.Walk(func(m *algebra.Node) bool {
		switch m.Kind {
		case algebra.KindURL:
			if area, ok := m.Annotation(algebra.AnnotArea); ok {
				v.RemoveAnswered(AddrOf(m.URL), area)
			} else {
				v.RemoveAnsweredServer(AddrOf(m.URL))
			}
		case algebra.KindURN:
			area, err := namespace.DecodeURN(m.URN)
			if err != nil {
				v.ClearAnswered()
				return false
			}
			for _, aa := range v.Answered() {
				pa, err := namespace.DecodeURN(aa.URN)
				if err != nil || pa.Overlaps(area) {
					v.RemoveAnswered(aa.Server, aa.URN)
				}
			}
		}
		return true
	})
}

// pruneToAvailable rewrites the operator tree to one evaluable from the data
// in hand: fully-evaluable subtrees stay exact, unresolved leaves under
// monotone operators become empty, and non-monotone operators with
// unresolved descendants are dropped entirely (nil at the top level means
// nothing is salvageable).
func pruneToAvailable(n *algebra.Node) *algebra.Node {
	if engine.LocallyEvaluable(n) {
		return n
	}
	switch n.Kind {
	case algebra.KindURL, algebra.KindURN:
		return algebra.Data()
	case algebra.KindSelect, algebra.KindProject, algebra.KindJoin, algebra.KindUnion:
		cp := *n
		cp.Children = make([]*algebra.Node, len(n.Children))
		for i, c := range n.Children {
			pc := pruneToAvailable(c)
			if pc == nil {
				pc = algebra.Data()
			}
			cp.Children[i] = pc
		}
		return &cp
	default:
		// Difference, count, top-n and unresolved or-choices are not
		// monotone: evaluating them over partial inputs could overstate the
		// answer. They contribute nothing unless fully evaluable (handled
		// above).
		return nil
	}
}
