package route

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/algebra"
)

// Learned routing shortcuts (§5.1 meta-index updating): when a completed
// plan's provenance trail comes back, the peers along the way saw exactly
// which server ultimately answered each resource area. Mining those
// (area → server) edges and consulting them ahead of the catalog turns the
// trail from an audit record into routing state — the paper's feedback loop.
//
// Learned state is dangerous in a churning network: the holder of an area
// can crash-leave and be replaced by a replica, at which point a shortcut
// that was perfectly true yesterday misroutes today. Entries therefore
// carry the catalog generation they were learned under and a virtual-time
// stamp, and they expire instead of lingering: a fresh entry lives MaxAge;
// one whose source generation the local catalog has since moved past lives
// only StaleAge. Expiry can cost a wasted probe hop (the visited-server
// memory bounds it); it can never produce a wrong answer, because a
// shortcut only adds forwarding candidates — evaluation and the oracle
// invariants are untouched.

// ShortcutEntry is one learned (resource area → server) edge.
type ShortcutEntry struct {
	// Area is the resource area URN the server answered.
	Area string
	// Server is the peer that held the data.
	Server string
	// Hits counts how many trails confirmed this edge.
	Hits int
	// LearnedAt is the virtual time of the most recent confirmation.
	LearnedAt time.Duration
	// Generation is the local catalog generation at the most recent
	// confirmation; entries from an older generation expire on the short
	// TTL because the catalog has changed under them.
	Generation uint64
}

// ShortcutsConfig bounds a Shortcuts table. Zero values select defaults.
type ShortcutsConfig struct {
	// MaxAge is the TTL of a current-generation entry (default 30 virtual
	// minutes).
	MaxAge time.Duration
	// StaleAge is the TTL of an entry whose source catalog generation the
	// local catalog has moved past (default 5 virtual minutes) — the
	// staleness discipline replicas use: suspicion, not trust, after churn.
	StaleAge time.Duration
	// MaxPerArea caps the edges kept per area (default 4); the lowest-scored
	// entry is evicted first.
	MaxPerArea int
	// HalfLife is the decay horizon of an edge's confirmation weight
	// (default 10 virtual minutes): an entry's score is its hit count
	// discounted by 2^(-(now-LearnedAt)/HalfLife), so a recently confirmed
	// edge outranks one that piled up hits long ago and then went quiet.
	// Expiry still removes entries outright; decay only orders the live
	// ones.
	HalfLife time.Duration
}

const (
	defaultShortcutMaxAge     = 30 * time.Minute
	defaultShortcutStaleAge   = 5 * time.Minute
	defaultShortcutMaxPerArea = 4
	defaultShortcutHalfLife   = 10 * time.Minute
)

// ShortcutStats is a snapshot of a table's counters.
type ShortcutStats struct {
	Hits        uint64 // Lookup calls that returned at least one live edge
	Misses      uint64 // Lookup calls that returned none
	Learned     uint64 // Learn calls (new edges and re-confirmations)
	Expired     uint64 // entries dropped for age
	Invalidated uint64 // entries dropped by Invalidate
	Entries     int    // live edges currently held
}

// Shortcuts is a concurrent table of learned routing edges. Safe for
// concurrent Lookup/Candidates during Learn/Invalidate.
type Shortcuts struct {
	cfg    ShortcutsConfig
	mu     sync.RWMutex
	byArea map[string][]*ShortcutEntry
	stats  ShortcutStats
}

// NewShortcuts creates an empty table.
func NewShortcuts(cfg ShortcutsConfig) *Shortcuts {
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = defaultShortcutMaxAge
	}
	if cfg.StaleAge <= 0 {
		cfg.StaleAge = defaultShortcutStaleAge
	}
	if cfg.MaxPerArea <= 0 {
		cfg.MaxPerArea = defaultShortcutMaxPerArea
	}
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = defaultShortcutHalfLife
	}
	return &Shortcuts{cfg: cfg, byArea: map[string][]*ShortcutEntry{}}
}

// Learn records (or re-confirms) that server answered the area at virtual
// time at, under catalog generation gen. Re-confirmation bumps the hit
// count and refreshes both stamps, so a live edge never ages out while the
// workload keeps proving it right.
func (s *Shortcuts) Learn(area, server string, gen uint64, at time.Duration) {
	if area == "" || server == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Learned++
	entries := s.byArea[area]
	for _, e := range entries {
		if e.Server == server {
			e.Hits++
			e.LearnedAt = at
			e.Generation = gen
			s.sortLocked(entries, at)
			return
		}
	}
	entries = append(entries, &ShortcutEntry{
		Area: area, Server: server, Hits: 1, LearnedAt: at, Generation: gen,
	})
	s.sortLocked(entries, at)
	if len(entries) > s.cfg.MaxPerArea {
		entries = entries[:s.cfg.MaxPerArea]
		s.stats.Expired++
	}
	s.byArea[area] = entries
}

// scoreLocked is an entry's decay-weighted confirmation count at virtual
// time at: Hits discounted by 2^(-(at-LearnedAt)/HalfLife). Hits on a
// quiet edge lose half their weight every half-life, so routing follows
// where the workload has been answered recently, not just often.
func (s *Shortcuts) scoreLocked(e *ShortcutEntry, at time.Duration) float64 {
	age := at - e.LearnedAt
	if age < 0 {
		age = 0
	}
	return float64(e.Hits) * math.Exp2(-float64(age)/float64(s.cfg.HalfLife))
}

// sortLocked orders entries best-first at virtual time at: highest decayed
// score, then most recent, then server name for determinism.
func (s *Shortcuts) sortLocked(entries []*ShortcutEntry, at time.Duration) {
	sort.SliceStable(entries, func(i, j int) bool {
		si, sj := s.scoreLocked(entries[i], at), s.scoreLocked(entries[j], at)
		if si != sj {
			return si > sj
		}
		if entries[i].LearnedAt != entries[j].LearnedAt {
			return entries[i].LearnedAt > entries[j].LearnedAt
		}
		return entries[i].Server < entries[j].Server
	})
}

// liveLocked reports whether the entry is still trustworthy at virtual
// time at under catalog generation gen.
func (s *Shortcuts) liveLocked(e *ShortcutEntry, gen uint64, at time.Duration) bool {
	ttl := s.cfg.MaxAge
	if e.Generation != gen {
		ttl = s.cfg.StaleAge
	}
	return at-e.LearnedAt <= ttl
}

// Lookup returns the live learned servers for an area, best-first by
// decayed score AT LOOKUP TIME (stored order is only as fresh as the last
// Learn, and decay keeps shifting the ranking between confirmations), and
// counts the hit or miss. Expired entries are skipped (and reaped on the
// next Learn or Sweep), never returned.
func (s *Shortcuts) Lookup(area string, gen uint64, at time.Duration) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := make([]*ShortcutEntry, 0, len(s.byArea[area]))
	for _, e := range s.byArea[area] {
		if s.liveLocked(e, gen, at) {
			live = append(live, e)
		}
	}
	s.sortLocked(live, at)
	var out []string
	for _, e := range live {
		out = append(out, e.Server)
	}
	if len(out) > 0 {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return out
}

// Candidates walks the plan root's unresolved URN leaves and returns the
// live learned servers for their areas, best-first per area, deduplicated,
// never self. The result is meant to be passed to Select as the learned
// tier — consulted ahead of annotations and catalog routes.
func (s *Shortcuts) Candidates(root *algebra.Node, self string, gen uint64, at time.Duration) []string {
	if s == nil {
		return nil
	}
	seen := map[string]bool{self: true, "": true}
	var out []string
	root.Walk(func(m *algebra.Node) bool {
		if m.Kind == algebra.KindURN {
			for _, srv := range s.Lookup(m.URN, gen, at) {
				if !seen[srv] {
					seen[srv] = true
					out = append(out, srv)
				}
			}
		}
		return true
	})
	return out
}

// Confirmed returns the live entries with at least minHits confirmations —
// the edges solid enough to absorb into a real catalog registration so the
// learning survives this peer.
func (s *Shortcuts) Confirmed(minHits int, gen uint64, at time.Duration) []ShortcutEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ShortcutEntry
	for _, entries := range s.byArea {
		for _, e := range entries {
			if e.Hits >= minHits && s.liveLocked(e, gen, at) {
				out = append(out, *e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area < out[j].Area
		}
		return out[i].Server < out[j].Server
	})
	return out
}

// Invalidate drops every edge pointing at server — the peer deregistered,
// was superseded by a replica, or was observed dead. Returns the number of
// edges removed.
func (s *Shortcuts) Invalidate(server string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for area, entries := range s.byArea {
		kept := entries[:0]
		for _, e := range entries {
			if e.Server == server {
				removed++
			} else {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(s.byArea, area)
		} else {
			s.byArea[area] = kept
		}
	}
	s.stats.Invalidated += uint64(removed)
	return removed
}

// Sweep reaps entries no longer live at virtual time at under generation
// gen. Returns the number reaped.
func (s *Shortcuts) Sweep(gen uint64, at time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	reaped := 0
	for area, entries := range s.byArea {
		kept := entries[:0]
		for _, e := range entries {
			if s.liveLocked(e, gen, at) {
				kept = append(kept, e)
			} else {
				reaped++
			}
		}
		if len(kept) == 0 {
			delete(s.byArea, area)
		} else {
			s.byArea[area] = kept
		}
	}
	s.stats.Expired += uint64(reaped)
	return reaped
}

// Stats snapshots the table's counters.
func (s *Shortcuts) Stats() ShortcutStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	for _, entries := range s.byArea {
		st.Entries += len(entries)
	}
	return st
}
