package experiments

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func items(ss ...string) []*xmltree.Node {
	out := make([]*xmltree.Node, len(ss))
	for i, s := range ss {
		out[i] = xmltree.MustParse(s)
	}
	return out
}

// cdWorld wires the paper's running example (Figs. 3 and 4) onto a simnet.
func cdWorld() (*simnet.Network, *peer.Peer, error) {
	net := simnet.New()
	ns := workload.GarageSaleNamespace()
	pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

	client, err := peer.New(peer.Config{Addr: "client:9020", Net: net, NS: ns, Key: []byte("kC")})
	if err != nil {
		return nil, nil, err
	}
	meta, err := peer.New(peer.Config{Addr: "M:9020", Net: net, NS: ns, PushSelect: true,
		Key: []byte("kM"), Area: ns.MustParseArea("[USA, *]"), Authoritative: true})
	if err != nil {
		return nil, nil, err
	}
	mk := func(addr string, key string, area namespace.Area) (*peer.Peer, error) {
		return peer.New(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: true,
			Key: []byte(key), Area: area})
	}
	s1, err := mk("10.1.2.3:9020", "k1", pdxCDs)
	if err != nil {
		return nil, nil, err
	}
	s2, err := mk("10.2.3.4:9020", "k2", pdxCDs)
	if err != nil {
		return nil, nil, err
	}
	tracks, err := mk("tracks:9020", "kT", namespace.Area{})
	if err != nil {
		return nil, nil, err
	}

	sales1, listings := workload.CDCatalog(11, 20)
	sales2, _ := workload.CDCatalog(23, 10)
	s1.AddCollection(peer.Collection{Name: "cds", PathExp: "/data[id=1]", Area: pdxCDs, Items: sales1})
	s2.AddCollection(peer.Collection{Name: "cds", PathExp: "/data[id=2]", Area: pdxCDs, Items: sales2})
	tracks.AddCollection(peer.Collection{Name: "listings", PathExp: "/data[id=9]", Items: listings})

	if err := s1.RegisterWith("M:9020", catalog.RoleBase); err != nil {
		return nil, nil, err
	}
	if err := s2.RegisterWith("M:9020", catalog.RoleBase); err != nil {
		return nil, nil, err
	}
	meta.Catalog().AddAlias("urn:CD:TrackListings", "http://tracks:9020/data[id=9]")
	meta.Catalog().AddAlias("urn:ForSale:Portland-CDs", namespace.EncodeURN(pdxCDs))
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "M:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		return nil, nil, err
	}
	return net, client, nil
}

func fig3Plan(target string, favorites []*xmltree.Node) *algebra.Plan {
	forSale := algebra.Select(algebra.MustParsePredicate("price < 10"),
		algebra.URN("urn:ForSale:Portland-CDs"))
	cdJoin := algebra.JoinNamed("cd", "cd", "sale", "listing",
		forSale, algebra.URN("urn:CD:TrackListings"))
	songJoin := algebra.JoinNamed("title", "listing/song", "fav", "match",
		algebra.Data(favorites...), cdJoin)
	p := algebra.NewPlan("fig3", target, algebra.Display(songJoin))
	p.RetainOriginal()
	return p
}

// E1Fig34 runs the paper's Figures 3–4 CD query end to end and reports the
// mutation trace: which server did what, in order, with plan wire sizes.
func E1Fig34() (*Table, error) {
	net, client, err := cdWorld()
	if err != nil {
		return nil, err
	}
	// Favorites reference tracks of CDs that are actually under $10 in the
	// generated catalog, so the Fig. 3 query has a nonempty answer.
	sales1, _ := workload.CDCatalog(11, 20)
	var favorites []*xmltree.Node
	for _, s := range sales1 {
		if price, err := s.Int("price"); err == nil && price < 10 {
			favorites = append(favorites,
				xmltree.Elem("song", xmltree.ElemText("title", "Track 1 of "+s.Value("cd"))))
		}
		if len(favorites) == 2 {
			break
		}
	}
	if len(favorites) == 0 {
		return nil, fmt.Errorf("E1: generated catalog has no cheap CDs")
	}
	plan := fig3Plan("client:9020", favorites)
	startBytes := algebra.WireSize(plan)
	if err := client.Submit("M:9020", plan); err != nil {
		return nil, err
	}
	res, ok := client.TakeResult()
	if !ok {
		return nil, fmt.Errorf("E1: no result delivered")
	}
	results, err := res.Plan.Results()
	if err != nil {
		return nil, err
	}
	trail, err := peer.QueryTrail(res)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E1",
		Title:   "Fig. 3+4 CD query: mutation trace (server, action, resource)",
		Columns: []string{"step", "server", "action", "resource"},
	}
	for i, v := range trail.Visits {
		t.AddRow(i+1, v.Server, string(v.Action), v.Detail)
	}
	m := net.Metrics()
	t.Note("initial plan %d B; final result plan %d B; network: %d msgs, %d B; latency %v; results %d",
		startBytes, algebra.WireSize(res.Plan), m.Messages, m.Bytes, res.At, len(results))
	t.Note("paper Fig. 4(a): URN bound to union of two seller URLs with select pushed through; Fig. 4(b): per-seller reduction to constant XML — both visible as bind/optimize then data/reduce steps above")
	if len(results) == 0 {
		return nil, fmt.Errorf("E1: expected nonempty result")
	}
	return t, nil
}

// E2GeneRouting reproduces Fig. 1: three research groups with interest
// areas over Organism × CellType; a query about mammalian cardiac-muscle
// cells must route to the rodent and human groups and skip the fly group.
func E2GeneRouting() (*Table, error) {
	net := simnet.New()
	ns := workload.GeneNamespace()
	groups := workload.Fig1Groups(ns)

	nih, err := peer.New(peer.Config{Addr: "nih:9020", Net: net, NS: ns, PushSelect: true,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true, Key: []byte("kN")})
	if err != nil {
		return nil, err
	}
	for i, g := range groups {
		lab, err := peer.New(peer.Config{Addr: g.Addr, Net: net, NS: ns, PushSelect: true,
			Area: g.Area, Key: []byte(fmt.Sprintf("k%d", i))})
		if err != nil {
			return nil, err
		}
		lab.AddCollection(peer.Collection{
			Name: g.Name, PathExp: "/miame", Area: g.Area,
			Items: workload.ExpressionData(ns, g, int64(100+i), 30),
		})
		if err := lab.RegisterWith("nih:9020", catalog.RoleBase); err != nil {
			return nil, err
		}
	}
	client, err := peer.New(peer.Config{Addr: "client:9020", Net: net, NS: ns, Key: []byte("kC")})
	if err != nil {
		return nil, err
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "nih:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true,
	}); err != nil {
		return nil, err
	}

	query := ns.MustParseArea("[Coelomata/Deuterostomia/Mammalia, Muscle/Cardiac]")
	// Routing is by interest-area overlap; the query's own predicate does
	// the fine-grained filtering within each contacted repository.
	pred := algebra.And{
		L: algebra.Cmp{Path: "organism", Op: algebra.OpContains, Value: "Mammalia"},
		R: algebra.Cmp{Path: "celltype", Op: algebra.OpContains, Value: "Muscle/Cardiac"},
	}
	plan := algebra.NewPlan("fig1", "client:9020",
		algebra.Display(algebra.Select(pred, algebra.URN(namespace.EncodeURN(query)))))
	plan.RetainOriginal()
	if err := client.Submit("nih:9020", plan); err != nil {
		return nil, err
	}
	res, ok := client.TakeResult()
	if !ok {
		return nil, fmt.Errorf("E2: no result")
	}
	trail, err := peer.QueryTrail(res)
	if err != nil {
		return nil, err
	}
	results, err := res.Plan.Results()
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E2",
		Title:   "Fig. 1 gene-expression routing: which groups a mammalian-cardiac query visits",
		Columns: []string{"group", "interest area", "overlaps query", "visited"},
	}
	for _, g := range groups {
		t.AddRow(g.Name, g.Area.String(), g.Area.Overlaps(query), trail.Visited(g.Addr))
	}
	_ = nih
	for _, g := range groups {
		wantVisit := g.Area.Overlaps(query)
		if trail.Visited(g.Addr) != wantVisit {
			return nil, fmt.Errorf("E2: group %s visited=%v, want %v", g.Name, trail.Visited(g.Addr), wantVisit)
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("E2: expected cardiac-muscle results")
	}
	// Every returned experiment is genuinely cardiac-muscle mammalian data.
	for _, e := range results {
		if got := e.Value("celltype"); len(got) < 13 || got[:13] != "Muscle/Cardia" {
			return nil, fmt.Errorf("E2: off-area result %s", got)
		}
	}
	t.Note("results returned: %d cardiac-muscle experiments; fly lab never contacted (paper: \"can ignore the first site (where it surely will not [find data])\")", len(results))
	return t, nil
}

// E3CoverOverlap reproduces the relations depicted in Fig. 5: interest
// areas (a) Vancouver+Portland furniture and (b) everything in Portland,
// probed with representative queries.
func E3CoverOverlap() (*Table, error) {
	ns := workload.GarageSaleNamespace()
	a := ns.MustParseArea("[USA/WA/Vancouver, Furniture] + [USA/OR/Portland, Furniture]")
	b := ns.MustParseArea("[USA/OR/Portland, *]")
	probes := []struct {
		name string
		area namespace.Area
	}{
		{"[Portland, Furniture/Chairs]", ns.MustParseArea("[USA/OR/Portland, Furniture/Chairs]")},
		{"[Portland, Music/CDs]", ns.MustParseArea("[USA/OR/Portland, Music/CDs]")},
		{"[Vancouver, Furniture/Tables]", ns.MustParseArea("[USA/WA/Vancouver, Furniture/Tables]")},
		{"[Seattle, Electronics/TV]", ns.MustParseArea("[USA/WA/Seattle, Electronics/TV]")},
		{"[USA, Furniture]", ns.MustParseArea("[USA, Furniture]")},
	}
	t := &Table{
		ID:      "E3",
		Title:   "Fig. 5 areas: (a)=Vancouver+Portland furniture, (b)=Portland everything",
		Columns: []string{"query", "a covers", "a overlaps", "b covers", "b overlaps"},
	}
	for _, p := range probes {
		t.AddRow(p.name, a.Covers(p.area), a.Overlaps(p.area), b.Covers(p.area), b.Overlaps(p.area))
	}
	t.AddRow("(b) itself", a.Covers(b), a.Overlaps(b), true, true)
	t.AddRow("(a) itself", true, true, b.Covers(a), b.Overlaps(a))
	inter := a.Intersect(b)
	t.Note("a ∩ b = %s (exactly Portland furniture, as drawn)", inter.String())

	// Invariant checks for the harness.
	if !a.Overlaps(b) || a.Covers(b) || b.Covers(a) {
		return nil, fmt.Errorf("E3: Fig. 5 relations violated")
	}
	want := ns.MustParseArea("[USA/OR/Portland, Furniture]")
	if !inter.Equal(want) {
		return nil, fmt.Errorf("E3: intersection = %v", inter)
	}
	return t, nil
}
