package experiments

import (
	"fmt"

	"repro/internal/chaos"
)

// E14Robustness is the adversarial re-validation of the paper's central
// robustness claim: mutant query plans survive an unreliable network without
// distributed coordination state. It sweeps seeded random scenarios
// (internal/chaos) at three fault intensities and differentially checks
// every completed query against a centralized oracle evaluating over the
// union of all data. The claim the table pins:
//
//   - answers that arrive are exactly the oracle's (oracle-equal = checked),
//     and explicit partial results are sub-multisets of the oracle's answer;
//   - every submitted plan is accounted for — completed, returned as a
//     partial result, surfaced as stuck, or attributably lost to an
//     injected fault (violations = 0);
//   - with no faults injected, nothing is ever lost in flight and nothing
//     is ever stuck: the visited-server routing memory turns every former
//     livelock into a completed or partial result.
func E14Robustness() (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Robustness under injected faults, differentially checked against a centralized oracle",
		Columns: []string{"faults", "scenarios", "plans", "completed", "partial", "stuck", "lost-to-faults", "oracle-equal", "violations"},
	}
	scenarios := 60
	if ShortMode {
		scenarios = 25
	}
	for _, lv := range []chaos.Level{chaos.LevelNone, chaos.LevelLight, chaos.LevelHeavy} {
		var plans, completed, partial, stuck, lost, checked, violations int
		for i := 0; i < scenarios; i++ {
			// Seed bases are disjoint per level so each row is an
			// independent population.
			rep, err := chaos.Run(chaos.Config{Seed: 1400 + 10000*int64(lv) + int64(i), Level: lv})
			if err != nil {
				return nil, fmt.Errorf("E14: %w", err)
			}
			plans += rep.Plans
			completed += rep.Completed
			partial += rep.Partial
			stuck += rep.Stuck
			lost += rep.LostToFaults
			checked += rep.OracleChecked
			violations += len(rep.Violations)
		}
		if violations > 0 {
			return nil, fmt.Errorf("E14: %d invariant violations at level %s", violations, lv)
		}
		if lv == chaos.LevelNone && lost > 0 {
			return nil, fmt.Errorf("E14: %d plans lost with no faults injected", lost)
		}
		if lv == chaos.LevelNone && stuck > 0 {
			return nil, fmt.Errorf("E14: %d plans stuck with no faults injected", stuck)
		}
		t.AddRow(lv.String(), scenarios, plans, completed, partial, stuck, lost,
			fmt.Sprintf("%d/%d", checked, checked), violations)
	}
	t.Note("oracle-equal: full results equal the single-peer oracle's answer as a multiset; partial results are verified sub-multisets")
	t.Note("partial: plans whose every productive hop was exhausted (visited-server memory), returned with what was already reduced")
	t.Note("stuck: plans that could make no progress and said so (StuckErrors); none are silent losses, none occur fault-free")
	return t, nil
}
