package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment end to end; each Run
// already contains its own shape assertions (who wins, crossovers, recall)
// and fails loudly when the paper's qualitative claims do not hold.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab, err := r.Run()
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: no rows", r.ID)
			}
			out := tab.Render()
			if !strings.Contains(out, r.ID) {
				t.Fatalf("%s: render missing id:\n%s", r.ID, out)
			}
		})
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "longcol"}}
	tab.AddRow("xxxxxx", 1)
	tab.AddRow(2.5, "y")
	tab.Note("hello %d", 7)
	out := tab.Render()
	for _, want := range []string{"== T: demo ==", "xxxxxx", "2.50", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and separator must be same width.
	if len(lines) < 3 || len(lines[1]) != len(lines[2]) {
		t.Fatalf("alignment broken:\n%s", out)
	}
}

func TestRunnersDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("experiment %s incomplete", r.ID)
		}
	}
	if len(seen) != 13 {
		t.Fatalf("expected 13 experiments, have %d", len(seen))
	}
}
