package experiments

import (
	"flag"
	"os"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	flag.Parse()
	// -short drops the largest network size from the E4/E9 scaling sweeps
	// so CI runs finish in a couple of seconds.
	ShortMode = testing.Short()
	os.Exit(m.Run())
}

// TestAllExperimentsRun executes every experiment end to end; each Run
// already contains its own shape assertions (who wins, crossovers, recall)
// and fails loudly when the paper's qualitative claims do not hold.
// Experiments are independent (own network, own seeded workload), so the
// subtests run in parallel.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := r.Run()
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: no rows", r.ID)
			}
			out := tab.Render()
			if !strings.Contains(out, r.ID) {
				t.Fatalf("%s: render missing id:\n%s", r.ID, out)
			}
		})
	}
}

// TestRunAllMatchesSequential checks that the parallel runner produces
// exactly the tables a sequential run produces, in runner order — the
// determinism the paper-style output depends on.
func TestRunAllMatchesSequential(t *testing.T) {
	runners := All()[:4]
	seq := make([]string, len(runners))
	for i, r := range runners {
		tab, err := r.Run()
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		seq[i] = tab.Render()
	}
	par := RunAll(runners, 4)
	if len(par) != len(runners) {
		t.Fatalf("RunAll returned %d results, want %d", len(par), len(runners))
	}
	for i, res := range par {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Runner.ID, res.Err)
		}
		if res.Runner.ID != runners[i].ID {
			t.Fatalf("result %d out of order: got %s want %s", i, res.Runner.ID, runners[i].ID)
		}
		if got := res.Table.Render(); got != seq[i] {
			t.Errorf("%s: parallel table differs from sequential:\n--- parallel\n%s\n--- sequential\n%s", res.Runner.ID, got, seq[i])
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "longcol"}}
	tab.AddRow("xxxxxx", 1)
	tab.AddRow(2.5, "y")
	tab.Note("hello %d", 7)
	out := tab.Render()
	for _, want := range []string{"== T: demo ==", "xxxxxx", "2.50", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and separator must be same width.
	if len(lines) < 3 || len(lines[1]) != len(lines[2]) {
		t.Fatalf("alignment broken:\n%s", out)
	}
}

func TestRunnersDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("experiment %s incomplete", r.ID)
		}
	}
	if len(seen) != 16 {
		t.Fatalf("expected 16 experiments, have %d", len(seen))
	}
}
