package experiments

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/baseline"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// garageWorld builds the hierarchic-catalog deployment for N sellers: one
// meta-index server covering everything, one authoritative index server per
// state, sellers registered with their state's index server.
type garageWorld struct {
	net     *simnet.Network
	ns      *namespace.Namespace
	client  *peer.Peer
	sellers []workload.Seller
	peers   map[string]*peer.Peer
}

func buildGarageWorld(n int, seed int64) (*garageWorld, error) {
	net := simnet.New()
	ns := workload.GarageSaleNamespace()
	sellers := workload.GarageSale(ns, workload.GarageSaleConfig{
		Seed: seed, Sellers: n, ItemsPerSeller: 6, SpecialtyZipf: 1.4,
	})
	w := &garageWorld{net: net, ns: ns, sellers: sellers, peers: map[string]*peer.Peer{}}

	meta, err := peer.New(peer.Config{Addr: "meta:9020", Net: net, NS: ns, PushSelect: true,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true, Key: []byte("kM")})
	if err != nil {
		return nil, err
	}
	w.peers["meta:9020"] = meta

	// One authoritative index server per state (depth-2 location prefix).
	states := map[string]*peer.Peer{}
	for _, s := range sellers {
		st := s.City.Truncate(2).String()
		if _, ok := states[st]; ok {
			continue
		}
		addr := "idx-" + strings.ReplaceAll(st, "/", "-") + ":9020"
		area := namespace.NewArea(namespace.NewCell(s.City.Truncate(2), hierarchy.Top))
		idx, err := peer.New(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: true,
			Area: area, Authoritative: true, Key: []byte("kI")})
		if err != nil {
			return nil, err
		}
		states[st] = idx
		w.peers[addr] = idx
		if err := idx.RegisterWith("meta:9020", catalog.RoleIndex); err != nil {
			return nil, err
		}
	}

	for _, s := range sellers {
		sp, err := peer.New(peer.Config{Addr: s.Addr, Net: net, NS: ns, PushSelect: true,
			Area: s.Area, Key: []byte("kS")})
		if err != nil {
			return nil, err
		}
		sp.AddCollection(peer.Collection{Name: "items", PathExp: "/data[id=0]", Area: s.Area, Items: s.Items})
		st := s.City.Truncate(2).String()
		if err := sp.RegisterWith(states[st].Addr(), catalog.RoleBase); err != nil {
			return nil, err
		}
		w.peers[s.Addr] = sp
	}

	client, err := peer.New(peer.Config{Addr: "client:9020", Net: net, NS: ns, Key: []byte("kC")})
	if err != nil {
		return nil, err
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "meta:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true,
	}); err != nil {
		return nil, err
	}
	w.client = client
	w.peers["client:9020"] = client
	return w, nil
}

// areaPredicate builds a predicate matching items whose city/category paths
// fall under the query area's (single-cell) coordinates.
func areaPredicate(q workload.Query) algebra.Predicate {
	cell := q.Area.Cells[0]
	var pred algebra.Predicate = algebra.True{}
	if !cell.Coords[0].IsTop() {
		pred = algebra.And{L: pred, R: algebra.Cmp{Path: "city", Op: algebra.OpContains, Value: cell.Coords[0].String()}}
	}
	if !cell.Coords[1].IsTop() {
		pred = algebra.And{L: pred, R: algebra.Cmp{Path: "category", Op: algebra.OpContains, Value: cell.Coords[1].String()}}
	}
	return pred
}

// groundTruth counts items matching the query area across all sellers.
func groundTruth(sellers []workload.Seller, q workload.Query) int {
	cell := q.Area.Cells[0]
	count := 0
	for _, s := range sellers {
		for _, it := range s.Items {
			city := hierarchy.MustParsePath(it.Value("city"))
			cat := hierarchy.MustParsePath(it.Value("category"))
			if cell.Coords[0].Covers(city) && cell.Coords[1].Covers(cat) {
				count++
			}
		}
	}
	return count
}

// E4RoutingComparison measures the §1/§3 routing claim: hierarchic catalog
// routing reaches all relevant data with far fewer messages than Gnutella
// flooding, and without the Napster central bottleneck.
func E4RoutingComparison() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Query routing: hierarchic catalogs vs central index vs flooding",
		Columns: []string{"architecture", "peers", "msgs/query", "KB/query", "recall", "central-load"},
	}
	const queriesPerRun = 12
	for _, n := range scaleSizes(32, 128) {
		// --- Hierarchic catalogs (this paper) ---
		w, err := buildGarageWorld(n, int64(n))
		if err != nil {
			return nil, err
		}
		queries := workload.Queries(w.ns, int64(n)*7+1, queriesPerRun, 1.4)
		w.net.ResetMetrics()
		recallSum, answered := 0.0, 0
		for qi, q := range queries {
			truth := groundTruth(w.sellers, q)
			plan := algebra.NewPlan(fmt.Sprintf("e4-%d", qi), "client:9020",
				algebra.Display(algebra.Count(algebra.Select(areaPredicate(q),
					algebra.URN(namespace.EncodeURN(q.Area))))))
			if err := w.client.Submit("client:9020", plan); err != nil {
				// No seller covers this area: counts as answered with 0.
				if truth == 0 {
					recallSum++
					answered++
					continue
				}
				return nil, fmt.Errorf("E4 hierarchic query %d: %w", qi, err)
			}
			res, ok := w.client.TakeResult()
			if !ok {
				return nil, fmt.Errorf("E4: missing result")
			}
			got, err := res.Plan.Results()
			if err != nil {
				return nil, err
			}
			// An uncoverable area now terminates as an explicit (empty)
			// partial result instead of a stuck error, so a count item may
			// be absent entirely.
			found := 0
			if len(got) > 0 {
				fmt.Sscanf(got[0].InnerText(), "%d", &found)
			}
			if truth == 0 {
				recallSum++
			} else {
				recallSum += float64(found) / float64(truth)
			}
			answered++
		}
		m := w.net.Metrics()
		t.AddRow("hierarchic-catalog", n,
			fmt.Sprintf("%.1f", float64(m.Messages)/float64(answered)),
			fmt.Sprintf("%.1f", float64(m.Bytes)/1024/float64(answered)),
			recallSum/float64(answered), "-")

		// --- Central index (Napster) ---
		cnet := simnet.New()
		ci := baseline.NewCentralIndex(cnet, "central:9020")
		centralPeers := map[string]*peer.Peer{}
		for _, s := range w.sellers {
			sp, err := peer.New(peer.Config{Addr: s.Addr, Net: cnet, NS: w.ns, Area: s.Area})
			if err != nil {
				return nil, err
			}
			sp.AddCollection(peer.Collection{Name: "items", PathExp: "/data[id=0]", Area: s.Area, Items: s.Items})
			ci.Register(baseline.DataRef{Addr: s.Addr, PathExp: "/data[id=0]"}, s.Area)
			centralPeers[s.Addr] = sp
		}
		cclient, err := peer.New(peer.Config{Addr: "client:9020", Net: cnet, NS: w.ns})
		if err != nil {
			return nil, err
		}
		cnet.ResetMetrics()
		crecall := 0.0
		for _, q := range queries {
			truth := groundTruth(w.sellers, q)
			refs, err := baseline.Lookup(cnet, "client:9020", "central:9020", q.Area)
			if err != nil {
				return nil, err
			}
			found := 0
			pred := areaPredicate(q)
			for _, ref := range refs {
				// Pull the collection and count matches client-side.
				items, err := fetchCollection(cnet, cclient, ref.Addr, ref.PathExp)
				if err != nil {
					return nil, err
				}
				for _, it := range items {
					if pred.Eval(it) {
						found++
					}
				}
			}
			if truth == 0 {
				crecall++
			} else {
				crecall += float64(found) / float64(truth)
			}
		}
		cm := cnet.Metrics()
		t.AddRow("central-index", n,
			fmt.Sprintf("%.1f", float64(cm.Messages)/float64(len(queries))),
			fmt.Sprintf("%.1f", float64(cm.Bytes)/1024/float64(len(queries))),
			crecall/float64(len(queries)),
			fmt.Sprintf("%d req@central", cm.Requests))

		// --- Flooding (Gnutella), horizon sweep ---
		for _, horizon := range []int{2, 4, 6} {
			fnet := simnet.New()
			fpeers := make([]*baseline.FloodPeer, len(w.sellers))
			for i, s := range w.sellers {
				fpeers[i] = baseline.NewFloodPeer(fnet, s.Addr)
				fpeers[i].AddCollection(baseline.DataRef{Addr: s.Addr, PathExp: "/data[id=0]"}, s.Area)
			}
			origin := baseline.NewFloodPeer(fnet, "client:9020")
			// Deterministic random graph: ring + 2 chords.
			all := append([]*baseline.FloodPeer{origin}, fpeers...)
			for i, p := range all {
				nn := len(all)
				p.SetNeighbors(
					all[(i+1)%nn].Addr(),
					all[(i+nn-1)%nn].Addr(),
					all[(i+nn/3)%nn].Addr(),
					all[(i+nn/2)%nn].Addr(),
				)
			}
			frecall := 0.0
			for qi, q := range queries {
				truth := groundTruth(w.sellers, q)
				refs, err := origin.Flood(fnet, fmt.Sprintf("fq-%d-%d", horizon, qi), q.Area, horizon)
				if err != nil {
					return nil, err
				}
				found := 0
				pred := areaPredicate(q)
				for _, ref := range refs {
					for _, s := range w.sellers {
						if s.Addr != ref.Addr {
							continue
						}
						for _, it := range s.Items {
							if pred.Eval(it) {
								found++
							}
						}
					}
				}
				if truth == 0 {
					frecall++
				} else {
					frecall += float64(found) / float64(truth)
				}
			}
			fm := fnet.Metrics()
			t.AddRow(fmt.Sprintf("flooding h=%d", horizon), n,
				fmt.Sprintf("%.1f", float64(fm.Messages)/float64(len(queries))),
				fmt.Sprintf("%.1f", float64(fm.Bytes)/1024/float64(len(queries))),
				frecall/float64(len(queries)), "-")
		}
	}
	t.Note("expected shape (paper §1): flooding cost explodes with horizon yet recall stays short of 1 until the horizon spans the graph; the central index answers everything cheaply but every query loads one server; hierarchic catalogs reach recall 1.0 with per-query cost independent of N")
	return t, nil
}

func fetchCollection(net *simnet.Network, from *peer.Peer, addr, pathExp string) ([]*xmltree.Node, error) {
	req := xmltree.Elem("fetch")
	req.SetAttr("path", pathExp)
	reply, _, err := net.Request(from.Addr(), addr, peer.KindFetch, req, 0)
	if err != nil {
		return nil, err
	}
	return reply.Elements(), nil
}

// E5MQPvsCoordinator compares mutant-query-plan execution (the plan travels
// to the data, partial results ship) against coordinator-based execution
// (one site pulls all base data), across selection cutoffs — the §2
// tradeoff and the [PM02a] comparison the paper cites.
func E5MQPvsCoordinator() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "MQP chained execution vs coordinator data-pull (3-way join)",
		Columns: []string{"mode", "price cutoff", "msgs", "KB moved", "latency", "results"},
	}
	for _, cutoff := range []int{5, 10, 25} {
		for _, mode := range []string{"mqp", "coordinator"} {
			net := simnet.New()
			ns := workload.GarageSaleNamespace()
			pdxCDs := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

			var metaPolicy mqp.Policy = mqp.ForwardOnlyPolicy{}
			if mode == "coordinator" {
				metaPolicy = mqp.DefaultPolicy{}
			}
			meta, err := peer.New(peer.Config{Addr: "M:9020", Net: net, NS: ns, PushSelect: true,
				Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Policy: metaPolicy, Key: []byte("kM")})
			if err != nil {
				return nil, err
			}
			client, err := peer.New(peer.Config{Addr: "client:9020", Net: net, NS: ns, Key: []byte("kC")})
			if err != nil {
				return nil, err
			}
			mkSeller := func(addr string, seed int64, n int, pathExp string) error {
				sp, err := peer.New(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: true, Area: pdxCDs, Key: []byte("k")})
				if err != nil {
					return err
				}
				sales, _ := workload.CDCatalog(seed, n)
				sp.AddCollection(peer.Collection{Name: "cds", PathExp: pathExp, Area: pdxCDs, Items: sales})
				return sp.RegisterWith("M:9020", catalog.RoleBase)
			}
			if err := mkSeller("s1:9020", 11, 40, "/data[id=1]"); err != nil {
				return nil, err
			}
			if err := mkSeller("s2:9020", 23, 40, "/data[id=2]"); err != nil {
				return nil, err
			}
			tracks, err := peer.New(peer.Config{Addr: "tracks:9020", Net: net, NS: ns, PushSelect: true, Key: []byte("kT")})
			if err != nil {
				return nil, err
			}
			_, listings := workload.CDCatalog(11, 40)
			_, listings2 := workload.CDCatalog(23, 40)
			tracks.AddCollection(peer.Collection{Name: "listings", PathExp: "/data[id=9]",
				Items: append(listings, listings2...)})
			meta.Catalog().AddAlias("urn:CD:TrackListings", "http://tracks:9020/data[id=9]")
			if err := client.Catalog().Register(catalog.Registration{
				Addr: "M:9020", Role: catalog.RoleMetaIndex,
				Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
			}); err != nil {
				return nil, err
			}

			forSale := algebra.Select(algebra.MustParsePredicate(fmt.Sprintf("price < %d", cutoff)),
				algebra.URN(namespace.EncodeURN(pdxCDs)))
			join := algebra.JoinNamed("cd", "cd", "sale", "listing",
				forSale, algebra.URN("urn:CD:TrackListings"))
			plan := algebra.NewPlan(fmt.Sprintf("e5-%s-%d", mode, cutoff), "client:9020",
				algebra.Display(join))
			plan.RetainOriginal()
			net.ResetMetrics()
			if err := client.Submit("M:9020", plan); err != nil {
				return nil, err
			}
			res, ok := client.TakeResult()
			if !ok {
				return nil, fmt.Errorf("E5: missing result")
			}
			results, err := res.Plan.Results()
			if err != nil {
				return nil, err
			}
			m := net.Metrics()
			t.AddRow(mode, cutoff, m.Messages,
				fmt.Sprintf("%.1f", float64(m.Bytes)/1024),
				res.At.Truncate(1e6).String(), len(results))
		}
	}
	t.Note("expected shape (paper §2): MQPs ship reduced partial results, so bytes fall with selectivity; the coordinator pulls full collections regardless, but needs fewer serial hops — the robustness/pipelining tradeoff the paper names")
	return t, nil
}

// E6Intensional reproduces §4.2 Examples 1 and 2: intensional statements
// turn plain unions into | alternatives, cutting contacted servers and
// eliminating redundant answers.
func E6Intensional() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Intensional statements: servers contacted and duplicate answers",
		Columns: []string{"scenario", "statement", "servers contacted", "answers", "duplicates"},
	}
	run := func(withStmt bool) (int, int, int, error) {
		net := simnet.New()
		ns := workload.GarageSaleNamespace()
		pdx := ns.MustParseArea("[USA/OR/Portland, *]")
		meta, err := peer.New(peer.Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Key: []byte("kM")})
		if err != nil {
			return 0, 0, 0, err
		}
		sales, _ := workload.CDCatalog(31, 12)
		for _, addr := range []string{"R:1", "S:1"} {
			sp, err := peer.New(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: true, Area: pdx, Key: []byte("k" + addr)})
			if err != nil {
				return 0, 0, 0, err
			}
			// R replicates S exactly: identical items.
			cp := make([]*xmltree.Node, len(sales))
			for i, s := range sales {
				cp[i] = s.Clone()
			}
			sp.AddCollection(peer.Collection{Name: "cds", PathExp: "/d", Area: pdx, Items: cp})
			if err := sp.RegisterWith("M:1", catalog.RoleBase); err != nil {
				return 0, 0, 0, err
			}
		}
		if withStmt {
			st, err := catalog.ParseStatement(ns, "base[USA/OR/Portland, *]@R:1 = base[USA/OR/Portland, *]@S:1")
			if err != nil {
				return 0, 0, 0, err
			}
			if err := meta.Catalog().AddStatement(st); err != nil {
				return 0, 0, 0, err
			}
		}
		client, err := peer.New(peer.Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kC")})
		if err != nil {
			return 0, 0, 0, err
		}
		plan := algebra.NewPlan("e6", "c:1",
			algebra.Display(algebra.URN(namespace.EncodeURN(pdx))))
		plan.RetainOriginal()
		if err := client.Submit("M:1", plan); err != nil {
			return 0, 0, 0, err
		}
		res, ok := client.TakeResult()
		if !ok {
			return 0, 0, 0, fmt.Errorf("E6: missing result")
		}
		trail, err := peer.QueryTrail(res)
		if err != nil {
			return 0, 0, 0, err
		}
		contacted := 0
		for _, s := range []string{"R:1", "S:1"} {
			if trail.Visited(s) {
				contacted++
			}
		}
		results, err := res.Plan.Results()
		if err != nil {
			return 0, 0, 0, err
		}
		seen := map[string]int{}
		dups := 0
		for _, r := range results {
			seen[r.String()]++
			if seen[r.String()] > 1 {
				dups++
			}
		}
		return contacted, len(results), dups, nil
	}
	for _, withStmt := range []bool{false, true} {
		contacted, answers, dups, err := run(withStmt)
		if err != nil {
			return nil, err
		}
		label, stmt := "no statements", "-"
		if withStmt {
			label, stmt = "Example 1 (equality)", "base[Portland,*]@R = base[Portland,*]@S"
		}
		t.AddRow(label, stmt, contacted, answers, dups)
		if withStmt && (contacted != 1 || dups != 0) {
			return nil, fmt.Errorf("E6: statement should cut to 1 server, 0 dups; got %d, %d", contacted, dups)
		}
		if !withStmt && (contacted != 2 || dups == 0) {
			return nil, fmt.Errorf("E6: baseline should contact both and duplicate; got %d, %d", contacted, dups)
		}
	}

	// Example 2: index coverage lets the plan route via the index server
	// instead of contacting every base server.
	contacted, err := e6IndexCoverage()
	if err != nil {
		return nil, err
	}
	t.AddRow("Example 2 (index coverage)", "index[OR,GolfClubs]@I = base@S U base@T U base@U",
		fmt.Sprintf("%d (via index)", contacted), "-", "-")
	t.Note("Example 1: the | binding lets the router pick one replica — half the servers, no duplicate answers. Example 2: the plan visits the index server and only then the bases it names")
	return t, nil
}

// e6IndexCoverage builds §4.2 Example 2 and returns how many base servers
// the plan visited when routed via the covering index server.
func e6IndexCoverage() (int, error) {
	net := simnet.New()
	ns := workload.GarageSaleNamespace()
	area := ns.MustParseArea("[USA/OR, Recreation/SportingGoods/GolfClubs]")

	meta, err := peer.New(peer.Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Key: []byte("kM")})
	if err != nil {
		return 0, err
	}
	// Index server I knows the three base servers.
	idx, err := peer.New(peer.Config{Addr: "I:1", Net: net, NS: ns, PushSelect: true,
		Area: area, Authoritative: true, Key: []byte("kI")})
	if err != nil {
		return 0, err
	}
	for i, addr := range []string{"S:1", "T:1", "U:1"} {
		sp, err := peer.New(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: true, Area: area, Key: []byte("k" + addr)})
		if err != nil {
			return 0, err
		}
		sales, _ := workload.CDCatalog(int64(40+i), 5)
		sp.AddCollection(peer.Collection{Name: "clubs", PathExp: "/d", Area: area, Items: sales})
		if err := sp.RegisterWith("I:1", catalog.RoleBase); err != nil {
			return 0, err
		}
	}
	// The meta server knows only the statement, not the base servers.
	st, err := catalog.ParseStatement(ns,
		"index[USA/OR, Recreation/SportingGoods/GolfClubs]@I:1 = "+
			"base[USA/OR, Recreation/SportingGoods/GolfClubs]@S:1 U "+
			"base[USA/OR, Recreation/SportingGoods/GolfClubs]@T:1 U "+
			"base[USA/OR, Recreation/SportingGoods/GolfClubs]@U:1")
	if err != nil {
		return 0, err
	}
	// To apply Example 2's binding the meta server also needs the base
	// registrations (the union side); it retains both.
	for _, addr := range []string{"S:1", "T:1", "U:1"} {
		if err := meta.Catalog().Register(catalog.Registration{
			Addr: addr, Role: catalog.RoleBase, Area: area,
			Collections: []catalog.Collection{{Name: "clubs", PathExp: "/d", Area: area}},
		}); err != nil {
			return 0, err
		}
	}
	if err := meta.Catalog().AddStatement(st); err != nil {
		return 0, err
	}
	_ = idx
	client, err := peer.New(peer.Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kC")})
	if err != nil {
		return 0, err
	}
	plan := algebra.NewPlan("e6b", "c:1",
		algebra.Display(algebra.Count(algebra.URN(namespace.EncodeURN(area)))))
	plan.RetainOriginal()
	if err := client.Submit("M:1", plan); err != nil {
		return 0, err
	}
	res, ok := client.TakeResult()
	if !ok {
		return 0, fmt.Errorf("E6b: missing result")
	}
	trail, err := peer.QueryTrail(res)
	if err != nil {
		return 0, err
	}
	if !trail.Visited("I:1") {
		return 0, fmt.Errorf("E6b: plan should route via the index server")
	}
	results, err := res.Plan.Results()
	if err != nil {
		return 0, err
	}
	if results[0].InnerText() != "15" {
		return 0, fmt.Errorf("E6b: count = %s, want 15", results[0].InnerText())
	}
	contacted := 0
	for _, s := range []string{"S:1", "T:1", "U:1"} {
		if trail.Visited(s) {
			contacted++
		}
	}
	return contacted, nil
}
