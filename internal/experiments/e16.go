package experiments

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/blobstore"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/xmltree"
)

// E16PayloadStore measures the content-addressed payload store
// (internal/blobstore) on the wire: the same repeated query is replayed
// against two identical worlds, one store-less and one where every peer
// carries a store. The first (cold) pass ships payloads inline either way —
// that pass is also the teaching pass; warm repeats ship the freight as
// <blob> references the receiver resolves from its own store, so warm
// KB/query must drop against the store-less world while the answers stay
// byte-identical.
func E16PayloadStore() (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Content-addressed payload store: repeated-query wire cost, store off vs on",
		Columns: []string{"store", "pass", "KB/query", "by-ref msgs", "dedup ratio"},
	}

	const sellers, itemsPer, distinct, passes = 4, 24, 6, 3

	type phase struct {
		kb      []float64 // per pass
		results []string  // final pass, canonical forms
		byRef   uint64
		ratio   float64
	}
	run := func(storeOn bool) (phase, error) {
		var ph phase
		net, client, err := e16World(sellers, itemsPer, distinct, storeOn)
		if err != nil {
			return ph, err
		}
		tag := "off"
		if storeOn {
			tag = "on"
		}
		for pass := 1; pass <= passes; pass++ {
			net.ResetMetrics()
			plan := algebra.NewPlan(fmt.Sprintf("e16-%s-%d", tag, pass), "client:9020",
				algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 10"),
					algebra.URN("urn:ForSale:Portland-CDs"))))
			if err := client.Submit("meta:9020", plan); err != nil {
				return ph, fmt.Errorf("E16: store-%s pass %d: %w", tag, pass, err)
			}
			res, ok := client.TakeResult()
			if !ok {
				return ph, fmt.Errorf("E16: store-%s pass %d: missing result", tag, pass)
			}
			got, err := res.Plan.Results()
			if err != nil {
				return ph, err
			}
			ph.results = ph.results[:0]
			for _, n := range got {
				ph.results = append(ph.results, n.String())
			}
			ph.kb = append(ph.kb, float64(net.Metrics().Bytes)/1024)
		}
		var resident, logical int64
		for _, addr := range net.Addrs() {
			p, ok := net.Peer(addr).(*peer.Peer)
			if !ok {
				continue
			}
			ph.byRef += p.BlobNetStats().ByRefSent
			if s := p.BlobStore(); s != nil {
				ss := s.Stats()
				resident += ss.Bytes
				logical += ss.LogicalBytes
			}
		}
		if resident > 0 {
			ph.ratio = float64(logical) / float64(resident)
		}
		return ph, nil
	}

	off, err := run(false)
	if err != nil {
		return nil, err
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}

	label := func(pass int) string {
		if pass == 0 {
			return "cold"
		}
		return fmt.Sprintf("warm %d", pass)
	}
	for i, kb := range off.kb {
		t.AddRow("off", label(i), kb, "-", "-")
	}
	for i, kb := range on.kb {
		t.AddRow("on", label(i), kb, fmt.Sprintf("%d", on.byRef), fmt.Sprintf("%.1f", on.ratio))
	}

	// The store must never change the answer…
	if strings.Join(off.results, "\n") != strings.Join(on.results, "\n") {
		return nil, fmt.Errorf("E16: store-on results diverged from store-off")
	}
	// …and the warm passes must pay for themselves.
	warmOff, warmOn := off.kb[passes-1], on.kb[passes-1]
	if on.byRef == 0 {
		return nil, fmt.Errorf("E16: no repeat freight went by reference")
	}
	if warmOn >= warmOff {
		return nil, fmt.Errorf("E16: warm store-on %.1f KB/query not below store-off %.1f", warmOn, warmOff)
	}
	if on.ratio <= 1 {
		return nil, fmt.Errorf("E16: no dedup at rest: ratio %.2f", on.ratio)
	}
	t.Note("warm repeats ship %.0f%% fewer KB/query with the store on (%.1f vs %.1f): taught payloads travel as 33-byte references, and collections repeating the same documents hold one resident copy (%.1fx dedup)",
		(1-warmOn/warmOff)*100, warmOn, warmOff, on.ratio)
	return t, nil
}

// e16World is the dedup-heavy topology: one authoritative meta index,
// sellers whose collections repeat a small set of large payload documents
// (round-robin over `distinct`), and a querying client. Identical whether
// or not stores are attached.
func e16World(sellers, itemsPer, distinct int, storeOn bool) (*simnet.Network, *peer.Peer, error) {
	loc := hierarchy.New("Location")
	loc.MustAdd("USA/OR/Portland")
	merch := hierarchy.New("Merchandise")
	merch.MustAdd("Music/CDs")
	ns, err := namespace.New(loc, merch)
	if err != nil {
		return nil, nil, err
	}
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	blobs := func() *blobstore.Store {
		if storeOn {
			return blobstore.New()
		}
		return nil
	}
	payload := func(i int) string {
		return fmt.Sprintf("<sale><cd>Pressing %02d</cd><price>%d</price><desc>%s</desc></sale>",
			i, 3+i*2, strings.Repeat("A fine recording, archived with full provenance detail. ", 8))
	}

	net := simnet.New()
	meta, err := peer.New(peer.Config{Addr: "meta:9020", Net: net, NS: ns,
		Area: area, Authoritative: true, PushSelect: true, Blobs: blobs()})
	if err != nil {
		return nil, nil, err
	}
	for s := 0; s < sellers; s++ {
		sp, err := peer.New(peer.Config{Addr: fmt.Sprintf("s%d:9020", s),
			Net: net, NS: ns, Area: area, PushSelect: true, Blobs: blobs()})
		if err != nil {
			return nil, nil, err
		}
		items := make([]*xmltree.Node, 0, itemsPer)
		for i := 0; i < itemsPer; i++ {
			items = append(items, xmltree.MustParse(payload(i%distinct)))
		}
		sp.AddCollection(peer.Collection{
			Name: "cds", PathExp: fmt.Sprintf("/data[id=%d]", s+1), Area: area, Items: items,
		})
		if err := sp.RegisterWith("meta:9020", catalog.RoleBase); err != nil {
			return nil, nil, err
		}
	}
	meta.Catalog().AddAlias("urn:ForSale:Portland-CDs", namespace.EncodeURN(area))

	client, err := peer.New(peer.Config{Addr: "client:9020", Net: net, NS: ns, Blobs: blobs()})
	if err != nil {
		return nil, nil, err
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "meta:9020", Role: catalog.RoleMetaIndex,
		Area: area, Authoritative: true,
	}); err != nil {
		return nil, nil, err
	}
	return net, client, nil
}
