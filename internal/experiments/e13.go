package experiments

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// E13Ablations toggles the design choices DESIGN.md §4 calls out and
// measures their individual effect:
//
//   - select push-through-union (Fig. 4a) — bytes shipped between hops;
//   - resolution caches (§3.4) — messages to resolve repeated queries;
//   - histogram pruning (§3.2 attribute indices) — base servers visited.
func E13Ablations() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Ablations: each optimization on/off, all else equal",
		Columns: []string{"optimization", "setting", "metric", "value"},
	}

	// --- Push-select: bytes moved on a two-seller selective query. ---
	for _, push := range []bool{false, true} {
		net := simnet.New()
		ns := workload.GarageSaleNamespace()
		pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
		meta, err := peer.New(peer.Config{Addr: "M:1", Net: net, NS: ns, PushSelect: push,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Key: []byte("kM")})
		if err != nil {
			return nil, err
		}
		_ = meta
		for i, addr := range []string{"s1:1", "s2:1"} {
			sp, err := peer.New(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: push,
				Area: pdx, Key: []byte(addr)})
			if err != nil {
				return nil, err
			}
			sales, _ := workload.CDCatalog(int64(90+i), 60)
			sp.AddCollection(peer.Collection{Name: "cds", PathExp: "/d", Area: pdx, Items: sales})
			if err := sp.RegisterWith("M:1", catalog.RoleBase); err != nil {
				return nil, err
			}
		}
		client, err := peer.New(peer.Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kC")})
		if err != nil {
			return nil, err
		}
		if err := client.Catalog().Register(catalog.Registration{
			Addr: "M:1", Role: catalog.RoleMetaIndex,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
		}); err != nil {
			return nil, err
		}
		plan := algebra.NewPlan(fmt.Sprintf("e13-push-%v", push), "c:1",
			algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 6"),
				algebra.URN(namespace.EncodeURN(pdx)))))
		net.ResetMetrics()
		if err := client.Submit("M:1", plan); err != nil {
			return nil, err
		}
		if _, ok := client.TakeResult(); !ok {
			return nil, fmt.Errorf("E13: missing result")
		}
		m := net.Metrics()
		t.AddRow("push-select (Fig. 4a)", onOff(push), "KB moved",
			fmt.Sprintf("%.1f", float64(m.Bytes)/1024))
	}

	// --- Resolution caches: messages for a repeated query at the meta. ---
	for _, cache := range []bool{false, true} {
		w, err := buildGarageWorld(48, 99)
		if err != nil {
			return nil, err
		}
		for _, p := range w.peers {
			p.Catalog().EnableCache(cache)
		}
		q := workload.Queries(w.ns, 321, 1, 1.3)[0]
		urn := namespace.EncodeURN(q.Area)
		w.net.ResetMetrics()
		for i := 0; i < 6; i++ {
			plan := algebra.NewPlan(fmt.Sprintf("e13-cache-%v-%d", cache, i), "client:9020",
				algebra.Display(algebra.Count(algebra.URN(urn))))
			if err := w.client.Submit("client:9020", plan); err != nil {
				return nil, err
			}
			if _, ok := w.client.TakeResult(); !ok {
				return nil, fmt.Errorf("E13: missing result")
			}
		}
		hits := int64(0)
		for _, p := range w.peers {
			h, _ := p.Catalog().CacheStats()
			hits += h
		}
		t.AddRow("resolution cache (§3.4)", onOff(cache), "catalog cache hits (6 queries)", hits)
	}

	// --- Histogram pruning: servers visited on a price-bounded query. ---
	for _, prune := range []bool{false, true} {
		net := simnet.New()
		ns := workload.GarageSaleNamespace()
		pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
		meta, err := peer.New(peer.Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Key: []byte("kM"),
			PruneStats: prune})
		if err != nil {
			return nil, err
		}
		_ = meta
		// Five sellers; only two have items under $20.
		for i := 0; i < 5; i++ {
			addr := fmt.Sprintf("s%d:1", i)
			sp, err := peer.New(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: true,
				Area: pdx, Key: []byte(addr), StatsHistPath: "price"})
			if err != nil {
				return nil, err
			}
			base := 100 * (i + 1)
			if i < 2 {
				base = 1
			}
			var docs []string
			for j := 0; j < 8; j++ {
				docs = append(docs, fmt.Sprintf(`<sale><cd>c%d-%d</cd><price>%d</price></sale>`, i, j, base+j))
			}
			sp.AddCollection(peer.Collection{Name: "cds", PathExp: "/d", Area: pdx, Items: items(docs...)})
			if err := sp.RegisterWith("M:1", catalog.RoleBase); err != nil {
				return nil, err
			}
		}
		client, err := peer.New(peer.Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kC")})
		if err != nil {
			return nil, err
		}
		if err := client.Catalog().Register(catalog.Registration{
			Addr: "M:1", Role: catalog.RoleMetaIndex,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
		}); err != nil {
			return nil, err
		}
		plan := algebra.NewPlan(fmt.Sprintf("e13-prune-%v", prune), "c:1",
			algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 20"),
				algebra.URN(namespace.EncodeURN(pdx)))))
		plan.RetainOriginal()
		if err := client.Submit("M:1", plan); err != nil {
			return nil, err
		}
		res, ok := client.TakeResult()
		if !ok {
			return nil, fmt.Errorf("E13: missing result")
		}
		got, err := res.Plan.Results()
		if err != nil {
			return nil, err
		}
		if len(got) != 16 {
			return nil, fmt.Errorf("E13: prune=%v results = %d, want 16", prune, len(got))
		}
		trail, err := peer.QueryTrail(res)
		if err != nil {
			return nil, err
		}
		visited := 0
		for i := 0; i < 5; i++ {
			if trail.Visited(fmt.Sprintf("s%d:1", i)) {
				visited++
			}
		}
		if prune && visited != 2 {
			return nil, fmt.Errorf("E13: pruning should cut visits to 2, got %d", visited)
		}
		if !prune && visited != 5 {
			return nil, fmt.Errorf("E13: without pruning all 5 visited, got %d", visited)
		}
		t.AddRow("histogram pruning (§3.2)", onOff(prune), "base servers visited", visited)
	}

	t.Note("each pair differs only in the named optimization; answers are identical in every pair")
	return t, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
