package experiments

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/provenance"
	"repro/internal/simnet"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// maliciousPeer wraps an honest peer and spoofs incoming plans: any URN
// matching victimURN is silently bound to the empty set before the honest
// machinery runs — the §5.1 attack where "S could bind A to its actual
// value, but bind B to the empty set, making it appear that T has no
// qualifying items".
type maliciousPeer struct {
	inner     *peer.Peer
	victimURN string
}

// Addr implements simnet.Peer.
func (m *maliciousPeer) Addr() string { return m.inner.Addr() }

// Deliver implements simnet.Peer: tampers with MQPs, then delegates.
func (m *maliciousPeer) Deliver(net *simnet.Network, msg *simnet.Message) error {
	if msg.Kind == peer.KindMQP {
		plan, err := algebra.Unmarshal(msg.Body)
		if err == nil {
			tampered := false
			var stripURN func(n *algebra.Node) *algebra.Node
			stripURN = func(n *algebra.Node) *algebra.Node {
				for i, c := range n.Children {
					n.Children[i] = stripURN(c)
				}
				if n.Kind == algebra.KindURN && n.URN == m.victimURN {
					tampered = true
					empty := algebra.Data()
					empty.SetCard(0)
					return empty
				}
				return n
			}
			plan.Root = stripURN(plan.Root)
			if tampered {
				msg = &simnet.Message{From: msg.From, To: msg.To, Kind: msg.Kind,
					Body: algebra.Marshal(plan), At: msg.At, Hops: msg.Hops}
			}
		}
	}
	return m.inner.Deliver(net, msg)
}

// Serve implements simnet.Peer by delegation.
func (m *maliciousPeer) Serve(net *simnet.Network, req *simnet.Message) (*xmltree.Node, error) {
	return m.inner.Serve(net, req)
}

// E10Provenance runs the §5.1 spoofing scenario: honest evaluation vs a
// server that binds a competitor's source to the empty set. The retained
// original query plus the provenance trail expose the missing visit, and a
// verification count query against the victim confirms the suppression.
func E10Provenance() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Provenance: spoof detection via missing visits + verification query",
		Columns: []string{"scenario", "answers", "suspect URNs", "verify count@T", "detected", "trail verifies"},
	}
	keys := map[string][]byte{
		"M:1": []byte("kM"), "S:1": []byte("kS"), "T:1": []byte("kT"), "c:1": []byte("kC"),
	}
	keyring := func(s string) []byte { return keys[s] }

	run := func(spoof bool) error {
		net := simnet.New()
		ns := workload.GarageSaleNamespace()
		pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
		sea := ns.MustParseArea("[USA/WA/Seattle, Music/CDs]")

		if _, err := peer.New(peer.Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Key: keys["M:1"]}); err != nil {
			return err
		}
		sPeer, err := peer.New(peer.Config{Addr: "S:1", Net: net, NS: ns, PushSelect: true, Area: pdx, Key: keys["S:1"]})
		if err != nil {
			return err
		}
		sSales, _ := workload.CDCatalog(51, 8)
		sPeer.AddCollection(peer.Collection{Name: "cds", PathExp: "/d", Area: pdx, Items: sSales})
		tPeer, err := peer.New(peer.Config{Addr: "T:1", Net: net, NS: ns, PushSelect: true, Area: sea, Key: keys["T:1"]})
		if err != nil {
			return err
		}
		tSales, _ := workload.CDCatalog(52, 6)
		tPeer.AddCollection(peer.Collection{Name: "cds", PathExp: "/d", Area: sea, Items: tSales})
		if err := sPeer.RegisterWith("M:1", catalog.RoleBase); err != nil {
			return err
		}
		if err := tPeer.RegisterWith("M:1", catalog.RoleBase); err != nil {
			return err
		}
		client, err := peer.New(peer.Config{Addr: "c:1", Net: net, NS: ns, Key: keys["c:1"]})
		if err != nil {
			return err
		}
		if err := client.Catalog().Register(catalog.Registration{
			Addr: "M:1", Role: catalog.RoleMetaIndex,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
		}); err != nil {
			return err
		}

		urnS := namespace.EncodeURN(pdx)
		urnT := namespace.EncodeURN(sea)
		if spoof {
			// S intercepts plans and suppresses T's source.
			net.Add(&maliciousPeer{inner: sPeer, victimURN: urnT})
			// Route the plan through S first so it can tamper; S needs
			// enough catalog to keep the plan moving (its own collection
			// and the meta server for anything else).
			if err := client.Catalog().Register(catalog.Registration{
				Addr: "S:1", Role: catalog.RoleIndex, Area: pdx, Authoritative: true,
			}); err != nil {
				return err
			}
			if err := sPeer.Catalog().Register(sPeer.Registration(catalog.RoleBase)); err != nil {
				return err
			}
			if err := sPeer.Catalog().Register(catalog.Registration{
				Addr: "M:1", Role: catalog.RoleMetaIndex,
				Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
			}); err != nil {
				return err
			}
		}

		// σ(A) ∪ σ(B): A at S, B at T (the paper's example shape).
		plan := algebra.NewPlan("e10", "c:1", algebra.Display(
			algebra.Union(algebra.URN(urnS), algebra.URN(urnT))))
		plan.RetainOriginal()
		first := "M:1"
		if spoof {
			first = "S:1"
		}
		if err := client.Submit(first, plan); err != nil {
			return err
		}
		res, ok := client.TakeResult()
		if !ok {
			return fmt.Errorf("E10: missing result")
		}
		results, err := res.Plan.Results()
		if err != nil {
			return err
		}
		trail, err := peer.QueryTrail(res)
		if err != nil {
			return err
		}
		_, verifyErr := trail.Verify(keyring)
		suspects := provenance.SuspectMissingSource(res.Plan, trail)

		// The client follows up with the verification query of §5.1:
		// count(B) sent toward T.
		vq := provenance.VerificationQuery("e10-verify", "c:1", urnT, nil)
		if err := client.Submit("M:1", vq); err != nil {
			return err
		}
		vres, ok := client.TakeResult()
		if !ok {
			return fmt.Errorf("E10: missing verification result")
		}
		vItems, err := vres.Plan.Results()
		if err != nil {
			return err
		}
		verifyCount := vItems[0].InnerText()

		detected := len(suspects) > 0 && verifyCount != "0"
		scenario := "honest"
		if spoof {
			scenario = "S spoofs T's source"
		}
		t.AddRow(scenario, len(results), fmt.Sprintf("%v", suspects), verifyCount, detected, verifyErr == nil)

		if spoof {
			if len(suspects) != 1 || suspects[0] != urnT {
				return fmt.Errorf("E10: spoof not flagged; suspects=%v", suspects)
			}
			if len(results) != 8 {
				return fmt.Errorf("E10: spoofed answer should miss T's 6 items; got %d", len(results))
			}
			if !detected {
				return fmt.Errorf("E10: verification query failed to confirm")
			}
		} else {
			if len(suspects) != 0 || len(results) != 14 {
				return fmt.Errorf("E10: honest run flagged or incomplete: %v, %d", suspects, len(results))
			}
		}
		return nil
	}
	if err := run(false); err != nil {
		return nil, err
	}
	if err := run(true); err != nil {
		return nil, err
	}
	t.Note("paper §5.1: \"the resulting MQP would show that P never visited T\" — the suspect list comes from comparing the retained original query's URNs with signed trail visits; count(B)@T > 0 confirms suppression")
	return t, nil
}

// E11Annotations measures §5.1's statistics annotations: a server declines
// to materialize an oversized collection and publishes cardinality plus a
// histogram instead, so the plan gathers the small side first and returns —
// cutting the bytes shipped.
func E11Annotations() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Statistics annotations: eager materialization vs decline-and-annotate",
		Columns: []string{"strategy", "msgs", "total KB moved", "answers"},
	}
	const bigN = 1500
	const smallN = 80

	run := func(annotate bool) (int64, float64, int, error) {
		net := simnet.New()
		ns := workload.GarageSaleNamespace()
		pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
		sea := ns.MustParseArea("[USA/WA/Seattle, Music/CDs]")

		var sPolicy mqp.Policy = mqp.ForwardOnlyPolicy{}
		if annotate {
			sPolicy = mqp.ForwardOnlyPolicy{DefaultPolicy: mqp.DefaultPolicy{MaxReduceCard: 500}}
		}
		meta, err := peer.New(peer.Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Key: []byte("kM")})
		if err != nil {
			return 0, 0, 0, err
		}
		sPeer, err := peer.New(peer.Config{Addr: "S:1", Net: net, NS: ns, PushSelect: true,
			Area: pdx, Key: []byte("kS"), Policy: sPolicy, StatsHistPath: "price",
			StatsKeyPaths: []string{"cd"}})
		if err != nil {
			return 0, 0, 0, err
		}
		big, _ := workload.CDCatalog(61, bigN)
		sPeer.AddCollection(peer.Collection{Name: "big", PathExp: "/d", Area: pdx, Items: big})
		tPeer, err := peer.New(peer.Config{Addr: "T:1", Net: net, NS: ns, PushSelect: true,
			Area: sea, Key: []byte("kT")})
		if err != nil {
			return 0, 0, 0, err
		}
		small, _ := workload.CDCatalog(62, smallN)
		tPeer.AddCollection(peer.Collection{Name: "small", PathExp: "/d", Area: sea, Items: small})
		if err := sPeer.RegisterWith("M:1", catalog.RoleBase); err != nil {
			return 0, 0, 0, err
		}
		if err := tPeer.RegisterWith("M:1", catalog.RoleBase); err != nil {
			return 0, 0, 0, err
		}
		client, err := peer.New(peer.Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kC")})
		if err != nil {
			return 0, 0, 0, err
		}
		if err := client.Catalog().Register(catalog.Registration{
			Addr: "M:1", Role: catalog.RoleMetaIndex,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
		}); err != nil {
			return 0, 0, 0, err
		}
		_ = meta

		// big-S ⋈ σ(small-T) on cd title, with the big side first so the
		// plan reaches S before T: an eager S materializes its 1500-item
		// collection into the plan; an annotating S declines, publishes
		// statistics, and lets the small selective side reduce first.
		join := algebra.JoinNamed("cd", "cd", "offer", "want",
			algebra.URN(namespace.EncodeURN(pdx)),
			algebra.Select(algebra.MustParsePredicate("price < 9"),
				algebra.URN(namespace.EncodeURN(sea))))
		plan := algebra.NewPlan("e11", "c:1", algebra.Display(join))
		plan.RetainOriginal()
		net.ResetMetrics()
		if err := client.Submit("M:1", plan); err != nil {
			return 0, 0, 0, err
		}
		res, ok := client.TakeResult()
		if !ok {
			return 0, 0, 0, fmt.Errorf("E11: missing result")
		}
		results, err := res.Plan.Results()
		if err != nil {
			return 0, 0, 0, err
		}
		m := net.Metrics()
		return m.Messages, float64(m.Bytes) / 1024, len(results), nil
	}

	var eagerKB, annKB float64
	var eagerAns, annAns int
	for _, annotate := range []bool{false, true} {
		msgs, kb, answers, err := run(annotate)
		if err != nil {
			return nil, err
		}
		label := "eager materialization"
		if annotate {
			label = "decline + annotate (card, histogram)"
			annKB, annAns = kb, answers
		} else {
			eagerKB, eagerAns = kb, answers
		}
		t.AddRow(label, msgs, fmt.Sprintf("%.1f", kb), answers)
	}
	if annAns != eagerAns {
		return nil, fmt.Errorf("E11: strategies disagree on answers: %d vs %d", annAns, eagerAns)
	}
	if annKB >= eagerKB {
		return nil, fmt.Errorf("E11: annotation strategy should move fewer bytes (%.1f vs %.1f)", annKB, eagerKB)
	}
	t.Note("paper §5.1: \"S could annotate B with its cardinality ... or even a histogram\"; the plan fetches the small selective side first and only then returns to the big collection, which never travels")
	return t, nil
}

// E12PrivateJoin runs the §5.2 IRS / State-Department scenario and counts
// what each party reveals, against a coordinator that must pull both
// relations to one site.
func E12PrivateJoin() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Privacy-preserving multi-site join (IRS / State Dept)",
		Columns: []string{"mode", "rows revealed to client", "IRS rows revealed to StateDept", "answers"},
	}
	net := simnet.New()
	ns := workload.GarageSaleNamespace() // namespace is irrelevant; aliases route

	irs, err := peer.New(peer.Config{Addr: "irs:1", Net: net, NS: ns, PushSelect: true, Key: []byte("kI")})
	if err != nil {
		return nil, err
	}
	state, err := peer.New(peer.Config{Addr: "state:1", Net: net, NS: ns, PushSelect: true, Key: []byte("kS")})
	if err != nil {
		return nil, err
	}
	client, err := peer.New(peer.Config{Addr: "agency:1", Net: net, NS: ns, Key: []byte("kA")})
	if err != nil {
		return nil, err
	}

	// IRS: contributions by employees of the target company.
	var returns []*xmltree.Node
	charities := []string{"Shell-Org-A", "Shell-Org-B", "Food-Bank", "Red-Cross", "Library-Fund"}
	for i := 0; i < 40; i++ {
		r := xmltree.Elem("return")
		r.Add(
			xmltree.ElemText("name", fmt.Sprintf("Employee %02d", i)),
			xmltree.ElemText("company", "TargetCorp"),
			xmltree.ElemText("charity", charities[i%len(charities)]),
			xmltree.ElemText("amount", fmt.Sprintf("%d", 1000+i*500)),
		)
		returns = append(returns, r)
	}
	irs.AddCollection(peer.Collection{Name: "returns", PathExp: "/returns", Items: returns})

	// State Department: suspected front organizations.
	fronts := items(
		`<front><org>Shell-Org-A</org></front>`,
		`<front><org>Shell-Org-B</org></front>`,
	)
	state.AddCollection(peer.Collection{Name: "fronts", PathExp: "/fronts", Items: fronts})

	// Aliases: the client knows both URNs route via the holders.
	client.Catalog().AddAlias("urn:IRS:TargetCorp-Contributions", "http://irs:1/returns")
	client.Catalog().AddAlias("urn:State:FrontOrgs", "http://state:1/fronts")

	// MQP: π_name(σ_amount>5000(IRS) ⋈_charity=org fronts).
	plan := algebra.NewPlan("e12", "agency:1", algebra.Display(
		algebra.Project("person", []string{"contrib/name"},
			algebra.JoinNamed("charity", "org", "contrib", "front",
				algebra.Select(algebra.MustParsePredicate("amount > 5000"),
					algebra.URN("urn:IRS:TargetCorp-Contributions")),
				algebra.URN("urn:State:FrontOrgs")))))
	plan.RetainOriginal()
	if err := client.Submit("agency:1", plan); err != nil {
		return nil, err
	}
	res, ok := client.TakeResult()
	if !ok {
		return nil, fmt.Errorf("E12: missing result")
	}
	results, err := res.Plan.Results()
	if err != nil {
		return nil, err
	}
	trail, err := peer.QueryTrail(res)
	if err != nil {
		return nil, err
	}
	if !trail.Visited("irs:1") || !trail.Visited("state:1") {
		return nil, fmt.Errorf("E12: plan must visit both agencies")
	}
	// What crossed to StateDept: the reduced IRS partial = returns with
	// amount > 5000 (not the whole relation).
	exposedToState := 0
	for _, r := range returns {
		if v, err := r.Int("amount"); err == nil && v > 5000 {
			exposedToState++
		}
	}
	t.AddRow("MQP (plan travels)", len(results), exposedToState, len(results))

	// Coordinator baseline: the agency pulls both full relations.
	coordRevealed := len(returns) + len(fronts)
	t.AddRow("coordinator (pull both)", coordRevealed, 0, len(results))

	for _, r := range results {
		if r.Value("name") == "" {
			return nil, fmt.Errorf("E12: projected result missing name: %s", r)
		}
	}
	if len(results) >= exposedToState || exposedToState >= len(returns) {
		return nil, fmt.Errorf("E12: exposure ordering violated: %d results, %d exposed, %d total",
			len(results), exposedToState, len(returns))
	}
	t.Note("paper §5.2: \"Neither the IRS nor the State Department had to disclose excessive sensitive information to the agency\" — the client sees only the projected names; the coordinator baseline would expose all %d IRS returns and the full front-org list", len(returns))
	return t, nil
}
