package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/provenance"
	"repro/internal/simnet"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// E7CurrencyLatency reproduces §4.3: server R replicates S with a 30-minute
// delay (R ⊇ S{30}); a query may take the fast-but-stale answer from R
// alone, or the complete-and-current answer from R ∪ S at higher latency.
// The query's time budget plus its complete-vs-current preference drives
// the choice.
func E7CurrencyLatency() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Currency vs latency: R >= S{30}, query prefs sweep",
		Columns: []string{"preference", "budget ms", "sites", "latency", "distinct answers", "fresh missed"},
	}
	const total = 55
	const replicated = 50 // R's snapshot misses the 5 most recent items

	run := func(preferCurrent bool, budgetMS int) (sites int, lat time.Duration, distinct, missed int, err error) {
		net := simnet.New()
		ns := workload.GarageSaleNamespace()
		pdx := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")

		meta, err := peer.New(peer.Config{Addr: "M:1", Net: net, NS: ns, PushSelect: true,
			Area: ns.MustParseArea("[USA, *]"), Authoritative: true, Key: []byte("kM")})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		mk := func(addr string) (*peer.Peer, error) {
			return peer.New(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: true, Area: pdx, Key: []byte("k" + addr)})
		}
		r, err := mk("R:1")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		s, err := mk("S:1")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		all, _ := workload.CDCatalog(77, total)
		s.AddCollection(peer.Collection{Name: "cds", PathExp: "/d", Area: pdx, Items: all})
		snapshot := make([]*xmltree.Node, replicated)
		for i := range snapshot {
			snapshot[i] = all[i].Clone()
		}
		r.AddCollection(peer.Collection{Name: "cds", PathExp: "/d", Area: pdx, Items: snapshot, StalenessMin: 30})
		if err := r.RegisterWith("M:1", catalog.RoleBase); err != nil {
			return 0, 0, 0, 0, err
		}
		if err := s.RegisterWith("M:1", catalog.RoleBase); err != nil {
			return 0, 0, 0, 0, err
		}
		st, err := catalog.ParseStatement(ns,
			"base[USA/OR/Portland, Music/CDs]@R:1 >= base[USA/OR/Portland, Music/CDs]@S:1{30}")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if err := meta.Catalog().AddStatement(st); err != nil {
			return 0, 0, 0, 0, err
		}
		client, err := peer.New(peer.Config{Addr: "c:1", Net: net, NS: ns, Key: []byte("kC")})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		plan := algebra.NewPlan("e7", "c:1",
			algebra.Display(algebra.URN(namespace.EncodeURN(pdx))))
		plan.RetainOriginal()
		mqp.SetPrefs(plan, mqp.Prefs{BudgetMS: budgetMS, PreferCurrent: preferCurrent})
		if err := client.Submit("M:1", plan); err != nil {
			return 0, 0, 0, 0, err
		}
		res, ok := client.TakeResult()
		if !ok {
			return 0, 0, 0, 0, fmt.Errorf("E7: missing result")
		}
		trail, err := peer.QueryTrail(res)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		for _, srv := range []string{"R:1", "S:1"} {
			if trail.Visited(srv) {
				sites++
			}
		}
		results, err := res.Plan.Results()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		seen := map[string]bool{}
		for _, it := range results {
			seen[it.String()] = true
		}
		return sites, res.At, len(seen), total - len(seen), nil
	}

	cases := []struct {
		label  string
		cur    bool
		budget int
	}{
		{"stale-ok (fast)", false, 0},
		{"prefer-current, generous budget", true, 2000},
		{"prefer-current, tight budget", true, 60},
	}
	var latFast, latCurrent time.Duration
	for _, c := range cases {
		sites, lat, distinct, missed, err := run(c.cur, c.budget)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.label, c.budget, sites, lat.Truncate(time.Millisecond).String(), distinct, missed)
		switch c.label {
		case "stale-ok (fast)":
			latFast = lat
			if sites != 1 || missed != 5 {
				return nil, fmt.Errorf("E7: stale-ok expected 1 site, 5 missed; got %d, %d", sites, missed)
			}
		case "prefer-current, generous budget":
			latCurrent = lat
			if sites != 2 || missed != 0 {
				return nil, fmt.Errorf("E7: current expected 2 sites, 0 missed; got %d, %d", sites, missed)
			}
		case "prefer-current, tight budget":
			if sites != 1 {
				return nil, fmt.Errorf("E7: tight budget should fall back to 1 site; got %d", sites)
			}
		}
	}
	if latCurrent <= latFast {
		return nil, fmt.Errorf("E7: current answer should cost more latency (%v vs %v)", latCurrent, latFast)
	}
	t.Note("paper §4.3: \"one can get an answer (more) quickly by just routing the MQP to R, but that answer could be up to 30 minutes out of date\" — the stale answer misses the 5 items S gained since the last sync")
	return t, nil
}

// E8AbsorptionRewrite measures the §2 rewrite (A ⋈ X) ⋈ B → (A ⋈ B) ⋈ X
// when A and B are local and X remote: the bytes a server must ship drop
// with |A ⋈ B| / |A|.
func E8AbsorptionRewrite() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Absorption rewrite: shipped partial-result bytes vs join selectivity",
		Columns: []string{"|A|", "|A join B|", "baseline KB shipped", "rewritten KB shipped", "ratio"},
	}
	const nA = 400
	mk := func(tag string, n int, key func(i int) int) []*xmltree.Node {
		out := make([]*xmltree.Node, n)
		for i := range out {
			e := xmltree.Elem(tag)
			e.Add(
				xmltree.ElemText("k1", fmt.Sprintf("x%d", i%37)),
				xmltree.ElemText("k2", fmt.Sprintf("b%d", key(i))),
				xmltree.ElemText("payload", strings.Repeat(tag, 10)+fmt.Sprint(i)),
			)
			out[i] = e
		}
		return out
	}
	for _, matchEvery := range []int{100, 10, 2, 1} {
		// A items whose k2 matches B only every matchEvery-th item.
		aDocs := mk("a", nA, func(i int) int {
			if i%matchEvery == 0 {
				return i % 8
			}
			return 100000 + i // never joins
		})
		bDocs := mk("b", 8, func(i int) int { return i % 8 })

		a := algebra.Data(aDocs...)
		b := algebra.Data(bDocs...)
		x := algebra.URN("urn:X:remote")

		// Baseline: (A ⋈ X) ⋈ B — nothing locally evaluable; A and B ship
		// verbatim inside the plan.
		inner := algebra.JoinNamed("k1", "k1", "a", "x", a.Clone(), x.Clone())
		outer := algebra.JoinNamed("a/k2", "k2", "ax", "b", inner, b.Clone())
		basePlan := algebra.NewPlan("e8-base", "t:1", algebra.Display(outer))
		baseBytes := algebra.WireSize(basePlan)

		// Rewritten: (A ⋈ B) ⋈ X — the local pair reduces before shipping.
		rw, err := algebra.AbsorbJoin(outer)
		if err != nil {
			return nil, err
		}
		reduced, err := engine.Reduce(rw.Children[0])
		if err != nil {
			return nil, err
		}
		rwOuter := algebra.JoinNamed(rw.LeftKey, rw.RightKey, rw.LeftName, rw.RightName,
			reduced, rw.Children[1])
		rwPlan := algebra.NewPlan("e8-rw", "t:1", algebra.Display(rwOuter))
		rwBytes := algebra.WireSize(rwPlan)

		joinCard := len(reduced.Docs)
		t.AddRow(nA, joinCard,
			fmt.Sprintf("%.1f", float64(baseBytes)/1024),
			fmt.Sprintf("%.1f", float64(rwBytes)/1024),
			float64(rwBytes)/float64(baseBytes))
		if matchEvery == 100 && rwBytes*3 > baseBytes {
			return nil, fmt.Errorf("E8: highly selective join should ship far less (%d vs %d)", rwBytes, baseBytes)
		}
	}
	t.Note("paper §2: \"If we know that |A join B| << |A| we can reduce network traffic\" — the ratio approaches and passes 1 as the join keeps most of A")
	return t, nil
}

// E9CatalogScaling measures resolution cost against network size and the
// effect of the §3.4 peer caches: after a first query reveals the index
// server responsible for an area, the client routes later plans straight to
// it, skipping the meta level.
func E9CatalogScaling() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Catalog routing: hops/messages vs network size, cold vs cached",
		Columns: []string{"peers", "phase", "avg hops", "avg msgs", "meta-cache hit rate"},
	}
	for _, n := range scaleSizes(16, 64, 128) {
		w, err := buildGarageWorld(n, int64(n)+5)
		if err != nil {
			return nil, err
		}
		queries := workload.Queries(w.ns, int64(n)*3+2, 8, 1.4)

		runPhase := func(phase string, learn bool) (float64, float64, error) {
			w.net.ResetMetrics()
			totalHops, answered := 0, 0
			for qi, q := range queries {
				plan := algebra.NewPlan(fmt.Sprintf("e9-%s-%d", phase, qi), "client:9020",
					algebra.Display(algebra.Count(algebra.URN(namespace.EncodeURN(q.Area)))))
				plan.RetainOriginal()
				if err := w.client.Submit("client:9020", plan); err != nil {
					continue // area with no coverage
				}
				res, ok := w.client.TakeResult()
				if !ok {
					return 0, 0, fmt.Errorf("E9: missing result")
				}
				totalHops += res.Hops
				answered++
				if learn {
					// §3.4: cache the index servers that did the binding.
					trail, err := peer.QueryTrail(res)
					if err != nil {
						return 0, 0, err
					}
					for _, v := range trail.Visits {
						if v.Action == provenance.ActionBind && strings.HasPrefix(v.Server, "idx-") {
							if err := w.client.Catalog().Register(catalog.Registration{
								Addr: v.Server, Role: catalog.RoleIndex,
								Area: q.Area, Authoritative: true,
							}); err != nil {
								return 0, 0, err
							}
						}
					}
				}
			}
			if answered == 0 {
				return 0, 0, fmt.Errorf("E9: no queries answered")
			}
			m := w.net.Metrics()
			return float64(totalHops) / float64(answered), float64(m.Messages) / float64(answered), nil
		}

		coldHops, coldMsgs, err := runPhase("cold", true)
		if err != nil {
			return nil, err
		}
		warmHops, warmMsgs, err := runPhase("warm", false)
		if err != nil {
			return nil, err
		}
		metaHits, metaMisses := w.peers["meta:9020"].Catalog().CacheStats()
		hitRate := 0.0
		if metaHits+metaMisses > 0 {
			hitRate = float64(metaHits) / float64(metaHits+metaMisses)
		}
		t.AddRow(n, "cold", coldHops, coldMsgs, "-")
		t.AddRow(n, "warm (peer caches)", warmHops, warmMsgs, fmt.Sprintf("%.2f", hitRate))
		if warmHops > coldHops {
			return nil, fmt.Errorf("E9: warm routing should not take more hops (%f vs %f)", warmHops, coldHops)
		}
	}
	t.Note("paper §3.4: \"peers maintain caches of index and meta-index servers for interest areas, so that they can route plans more efficiently in the future\" — warm queries skip the meta hop; resolution depth stays flat as N grows (DNS-like), while total hops track the number of matching base servers the plan must visit")
	return t, nil
}
