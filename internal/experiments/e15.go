package experiments

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/workload"
)

// E15LearnedRouting measures the learned-routing shortcut table
// (internal/route.Shortcuts) under a repeated zipf-skewed workload: a
// learning client mines (area → index server) edges from the provenance
// trails of its own results, routes later plans through the learned tier
// first, and absorbs confirmed edges into its catalog as real index
// registrations. Warm-phase routing must beat the E9 cold baselines — the
// point of learning is to skip the meta level without a manual cache.
func E15LearnedRouting() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Learned routing shortcuts: cold vs warm convergence, repeated zipf workload",
		Columns: []string{"peers", "phase", "avg hops", "avg msgs", "shortcut hit rate"},
	}
	for _, n := range scaleSizes(48, 128) {
		w, err := buildGarageWorld(n, int64(n)+7)
		if err != nil {
			return nil, err
		}
		// A learning twin of the plain client, in the same world.
		learner, err := peer.New(peer.Config{Addr: "learner:9020", Net: w.net, NS: w.ns,
			Key: []byte("kL"), LearnShortcuts: true, AbsorbThreshold: 2})
		if err != nil {
			return nil, err
		}
		if err := learner.Catalog().Register(catalog.Registration{
			Addr: "meta:9020", Role: catalog.RoleMetaIndex,
			Area: w.ns.MustParseArea("[*, *]"), Authoritative: true,
		}); err != nil {
			return nil, err
		}

		queries := workloadAnswerable(w, int64(n)*3+2, 48, 1.6)
		if len(queries) < 8 {
			return nil, fmt.Errorf("E15: only %d answerable queries", len(queries))
		}

		runPass := func(c *peer.Peer, tag string, pass int) (hops, msgs float64, err error) {
			w.net.ResetMetrics()
			totalHops := 0
			for qi, area := range queries {
				plan := algebra.NewPlan(fmt.Sprintf("e15-%s-%d-%d", tag, pass, qi),
					c.Addr(), algebra.Display(algebra.Count(algebra.URN(namespace.EncodeURN(area)))))
				plan.RetainOriginal()
				if err := c.Submit(c.Addr(), plan); err != nil {
					return 0, 0, fmt.Errorf("E15: %s pass %d: %w", tag, pass, err)
				}
				res, ok := c.TakeResult()
				if !ok {
					return 0, 0, fmt.Errorf("E15: missing result")
				}
				totalHops += res.Hops
			}
			m := w.net.Metrics()
			return float64(totalHops) / float64(len(queries)),
				float64(m.Messages) / float64(len(queries)), nil
		}

		// Baseline: the plain client, same seed, second pass (its peer
		// cache is whatever plain routing leaves — no learning).
		if _, _, err := runPass(w.client, "nolearn", 1); err != nil {
			return nil, err
		}
		noHops, noMsgs, err := runPass(w.client, "nolearn", 2)
		if err != nil {
			return nil, err
		}

		coldHops, coldMsgs, err := runPass(learner, "learn", 1)
		if err != nil {
			return nil, err
		}
		preStats := learner.Shortcuts().Stats()
		warmHops, warmMsgs, err := runPass(learner, "learn", 2)
		if err != nil {
			return nil, err
		}
		postStats := learner.Shortcuts().Stats()
		warmLookups := float64(postStats.Hits - preStats.Hits + postStats.Misses - preStats.Misses)
		hitRate := 0.0
		if warmLookups > 0 {
			hitRate = float64(postStats.Hits-preStats.Hits) / warmLookups
		}

		t.AddRow(n, "no-learning", noHops, noMsgs, "-")
		t.AddRow(n, "cold (mining)", coldHops, coldMsgs, "-")
		t.AddRow(n, "warm (learned)", warmHops, warmMsgs, fmt.Sprintf("%.2f", hitRate))

		// The E9 cold baselines the warm phase must beat.
		if hitRate <= 0.73 {
			return nil, fmt.Errorf("E15: warm shortcut hit rate %.2f, want > 0.73", hitRate)
		}
		if warmHops >= 4.12 {
			return nil, fmt.Errorf("E15: warm hops %.2f, want < 4.12", warmHops)
		}
		if warmMsgs >= noMsgs {
			return nil, fmt.Errorf("E15: warm msgs/query %.2f not below no-learning %.2f", warmMsgs, noMsgs)
		}
		if warmHops > coldHops {
			return nil, fmt.Errorf("E15: warm hops %.2f above cold %.2f", warmHops, coldHops)
		}
		if postStats.Learned == 0 || postStats.Entries == 0 {
			return nil, fmt.Errorf("E15: nothing learned: %+v", postStats)
		}
	}
	t.Note("learned shortcuts route repeat queries straight to the binding index server — the meta hop disappears from the warm path, and confirmed edges survive in the catalog as absorbed index registrations")
	return t, nil
}

// workloadAnswerable draws a zipf-skewed query workload and keeps the areas
// the world can answer from a handful of sellers: hops then measure routing
// depth (client → index vs client → meta → index), not base-server fan-out,
// which is what the learned tier can actually shorten.
func workloadAnswerable(w *garageWorld, seed int64, count int, zipf float64) []namespace.Area {
	var out []namespace.Area
	for _, q := range workload.Queries(w.ns, seed, count, zipf) {
		if groundTruth(w.sellers, q) == 0 {
			continue
		}
		fanout := 0
		for _, s := range w.sellers {
			if s.Area.Overlaps(q.Area) {
				fanout++
			}
		}
		if fanout == 1 {
			out = append(out, q.Area)
		}
	}
	return out
}
