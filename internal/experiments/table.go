// Package experiments regenerates every figure-level scenario and
// performance claim of the paper as a measured table (see DESIGN.md §3 for
// the experiment index E1–E12; E13+ add ablations and robustness sweeps
// beyond the paper's figures). Each experiment is deterministic: seeded
// workloads, virtual time, no wall-clock dependence. cmd/experiments prints
// the tables; bench_test.go wraps each experiment in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
	"sync"
)

// Table is one experiment's output: paper-style rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-text note shown under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// ShortMode trims the largest network sizes from the scaling experiments
// (E4, E9) so quick CI runs stay under a few seconds. Tests set it from
// testing.Short(); cmd/experiments exposes it as -short.
var ShortMode bool

// scaleSizes returns the experiment's network-size sweep, dropping the
// largest size in ShortMode. The qualitative claims (who wins, crossovers)
// hold at every size; only the scaling tail is sacrificed.
func scaleSizes(sizes ...int) []int {
	if ShortMode && len(sizes) > 1 {
		return sizes[:len(sizes)-1]
	}
	return sizes
}

// Result is one experiment's outcome from RunAll.
type Result struct {
	Runner Runner
	Table  *Table
	Err    error
}

// RunAll executes the runners, at most workers at a time, and returns
// results in runner order regardless of completion order, so output stays
// deterministic. workers <= 0 runs every experiment concurrently. Each
// experiment builds its own simnet.Network and seeds its own workload, so
// they share no mutable state and the tables are identical to a sequential
// run; wall time drops to roughly the critical path (the slowest single
// experiment). Experiments must keep that isolation: xmltree documents in
// particular must not be shared across runners (ByteSize memoizes on the
// node, so even size queries write to it).
func RunAll(runners []Runner, workers int) []Result {
	if workers <= 0 || workers > len(runners) {
		workers = len(runners)
	}
	results := make([]Result, len(runners))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tab, err := r.Run()
			results[i] = Result{Runner: r, Table: tab, Err: err}
		}(i, r)
	}
	wg.Wait()
	return results
}

// All returns every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"E1", "Fig. 3+4 CD query mutation trace", E1Fig34},
		{"E2", "Fig. 1 gene-expression routing", E2GeneRouting},
		{"E3", "Fig. 5 cover/overlap matrix", E3CoverOverlap},
		{"E4", "Routing: catalog vs flooding vs central", E4RoutingComparison},
		{"E5", "MQP vs coordinator execution", E5MQPvsCoordinator},
		{"E6", "Intensional statements (Examples 1-3)", E6Intensional},
		{"E7", "Currency vs latency tradeoff", E7CurrencyLatency},
		{"E8", "Absorption rewrite ablation", E8AbsorptionRewrite},
		{"E9", "Catalog scaling and caches", E9CatalogScaling},
		{"E10", "Provenance and spoof detection", E10Provenance},
		{"E11", "Statistics annotations", E11Annotations},
		{"E12", "Privacy-preserving join", E12PrivateJoin},
		{"E13", "Optimization ablations", E13Ablations},
		{"E14", "Fault-injection robustness vs oracle", E14Robustness},
		{"E15", "Learned routing shortcuts", E15LearnedRouting},
		{"E16", "Content-addressed payload store", E16PayloadStore},
	}
}
