package algebra

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func TestXMLRoundTripFig3(t *testing.T) {
	p := fig3Plan()
	p.RetainOriginal()
	s := EncodeString(p)
	back, err := DecodeString(s)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.ID != p.ID || back.Target != p.Target {
		t.Fatalf("header mismatch: %s %s", back.ID, back.Target)
	}
	if EncodeString(back) != s {
		t.Fatalf("round trip not stable:\n%s\n%s", s, EncodeString(back))
	}
	if back.Original == nil {
		t.Fatal("original section lost")
	}
}

func TestXMLAllOperators(t *testing.T) {
	d1 := Data(xmltree.MustParse(`<item><price>5</price></item>`))
	d2 := Data(xmltree.MustParse(`<item><price>9</price></item>`))
	tree := Display(
		TopN(3, "price", true,
			Project("out", []string{"price", "name"},
				Union(
					Select(MustParsePredicate("price < 10 and exists price"), d1),
					Or(
						URL("http://10.1.2.3:9020/", "/data[id=245]"),
						Difference(d2.Clone(), Count(URN("urn:X:Y"))),
					),
				),
			),
		),
	)
	p := NewPlan("all-ops", "t:1", tree)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := EncodeString(p)
	back, err := DecodeString(s)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, s)
	}
	if EncodeString(back) != s {
		t.Fatal("round trip not stable for all-operator plan")
	}
}

func TestXMLAnnotationsRoundTrip(t *testing.T) {
	n := URN("urn:Big")
	n.SetCard(1000000)
	n.Annotate(AnnotDistinct, "title:5000")
	p := NewPlan("ann", "t:1", Display(Select(MustParsePredicate("price < 10"), n)))
	back, err := DecodeString(EncodeString(p))
	if err != nil {
		t.Fatal(err)
	}
	var found *Node
	back.Root.Walk(func(m *Node) bool {
		if m.Kind == KindURN {
			found = m
		}
		return true
	})
	if found == nil || found.Card() != 1000000 {
		t.Fatalf("annotation lost: %v", found)
	}
	if v, _ := found.Annotation(AnnotDistinct); v != "title:5000" {
		t.Fatalf("distinct annotation = %q", v)
	}
}

func TestXMLExtraSectionsPreserved(t *testing.T) {
	p := NewPlan("x", "t:1", Display(Data()))
	p.Extra = map[string]*xmltree.Node{
		"provenance": xmltree.MustParse(`<provenance><visit server="s1" action="bind"/></provenance>`),
	}
	back, err := DecodeString(EncodeString(p))
	if err != nil {
		t.Fatal(err)
	}
	prov, ok := back.Extra["provenance"]
	if !ok || prov.Find("visit") == nil {
		t.Fatalf("extra section lost: %v", back.Extra)
	}
}

func TestXMLDecodeErrors(t *testing.T) {
	bad := []string{
		`<notmqp/>`,
		`<mqp id="x" target="t"/>`,                                           // no plan
		`<mqp id="x" target="t"><plan/></mqp>`,                               // empty plan
		`<mqp id="x" target="t"><plan><bogus/></plan></mqp>`,                 // unknown op
		`<mqp id="x" target="t"><plan><select><data/></select></plan></mqp>`, // no pred
		`<mqp id="x" target="t"><plan><url/></plan></mqp>`,                   // no href
		`<mqp id="x" target="t"><plan><urn/></plan></mqp>`,                   // no name
		`<mqp id="x" target="t"><plan><data/><data/></plan></mqp>`,           // two roots
		`<mqp id="x" target="t"><plan><topn n="bad"><data/></topn></plan></mqp>`,
		`<mqp id="x" target="t"><plan><join leftkey="a" rightkey="b"><data/></join></plan></mqp>`,
	}
	for _, s := range bad {
		if _, err := DecodeString(s); err == nil {
			t.Errorf("DecodeString(%q): want error", s)
		}
	}
}

func TestWireSize(t *testing.T) {
	p := fig3Plan()
	if WireSize(p) != len(EncodeString(p)) {
		t.Fatal("WireSize must equal serialized length")
	}
	var sb strings.Builder
	n, err := Encode(p, &sb)
	if err != nil || int(n) != len(EncodeString(p)) {
		t.Fatalf("Encode wrote %d, err %v", n, err)
	}
}

// randomPlanNode builds a random well-formed operator tree.
func randomPlanNode(r *rand.Rand, depth int) *Node {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			k := r.Intn(3)
			docs := make([]*xmltree.Node, k)
			for i := range docs {
				docs[i] = xmltree.ElemText("item", "v"+string(rune('0'+r.Intn(10))))
			}
			return Data(docs...)
		case 1:
			return URL("http://10.0.0."+string(rune('1'+r.Intn(9)))+":9020/", "")
		default:
			return URN("urn:X:" + string(rune('a'+r.Intn(26))))
		}
	}
	switch r.Intn(7) {
	case 0:
		return Select(Cmp{Path: "price", Op: CmpOp(r.Intn(6)), Value: "10"}, randomPlanNode(r, depth-1))
	case 1:
		return Project("item", []string{"price"}, randomPlanNode(r, depth-1))
	case 2:
		return JoinNamed("k", "k", "l", "r", randomPlanNode(r, depth-1), randomPlanNode(r, depth-1))
	case 3:
		n := 1 + r.Intn(3)
		kids := make([]*Node, n)
		for i := range kids {
			kids[i] = randomPlanNode(r, depth-1)
		}
		return Union(kids...)
	case 4:
		return Or(randomPlanNode(r, depth-1), randomPlanNode(r, depth-1))
	case 5:
		return Count(randomPlanNode(r, depth-1))
	default:
		return TopN(1+r.Intn(5), "price", r.Intn(2) == 0, randomPlanNode(r, depth-1))
	}
}

// Property: Encode/Decode is the identity on serialized form.
func TestPropertyPlanRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewPlan("prop", "t:1", Display(randomPlanNode(r, 3)))
		if err := p.Validate(); err != nil {
			return false
		}
		s := EncodeString(p)
		back, err := DecodeString(s)
		if err != nil {
			return false
		}
		return EncodeString(back) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPlanRoundTrip(b *testing.B) {
	p := fig3Plan()
	s := EncodeString(p)
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := DecodeString(s)
		if err != nil {
			b.Fatal(err)
		}
		_ = EncodeString(q)
	}
}
