package algebra

import (
	"testing"

	"repro/internal/xmltree"
)

// TestFig4aPushSelect reproduces the rewrite of paper Fig. 4(a): after the
// ForSale URN resolves to a union of two seller URLs, the select pushes
// through the union.
func TestFig4aPushSelect(t *testing.T) {
	u := Union(URL("http://10.1.2.3:9020/", ""), URL("http://10.2.3.4:9020/", ""))
	root := Display(Select(MustParsePredicate("price < 10"), u))
	n := PushSelectThroughUnion(root)
	if n != 1 {
		t.Fatalf("rewrites = %d, want 1", n)
	}
	un := root.Children[0]
	if un.Kind != KindUnion || len(un.Children) != 2 {
		t.Fatalf("expected union at root child, got %s", un)
	}
	for _, c := range un.Children {
		if c.Kind != KindSelect || c.Children[0].Kind != KindURL {
			t.Fatalf("expected select(url), got %s", c)
		}
	}
}

func TestPushSelectAtRoot(t *testing.T) {
	// A select directly at the subtree root is handled via the wrapper.
	root := Select(MustParsePredicate("price < 10"), Union(Data(), Data()))
	n := PushSelectThroughUnion(root)
	// The wrapper rewrites its child, but callers keep their own pointer;
	// rewriting at the true root needs the caller to re-read. Count must
	// still be 0 here because the wrapper's replacement is invisible.
	_ = n
	// Instead: wrap in display, the usual plan shape.
	root2 := Display(Select(MustParsePredicate("price < 10"), Or(Data(), Data())))
	if got := PushSelectThroughUnion(root2); got != 1 {
		t.Fatalf("rewrites = %d, want 1", got)
	}
	if root2.Children[0].Kind != KindOr {
		t.Fatal("select did not push through or")
	}
}

func TestFlattenUnions(t *testing.T) {
	u := Union(Union(Data(), Data()), Data(), Union(Union(Data()), Data()))
	root := Display(u)
	FlattenUnions(root)
	if len(u.Children) != 5 {
		t.Fatalf("flattened children = %d, want 5", len(u.Children))
	}
	for _, c := range u.Children {
		if c.Kind != KindData {
			t.Fatalf("unexpected child %s", c)
		}
	}
	// Or flattens with Or but not with Union.
	o := Or(Or(Data(), Data()), Union(Data(), Data()))
	root2 := Display(o)
	FlattenUnions(root2)
	if len(o.Children) != 3 {
		t.Fatalf("or children = %d, want 3", len(o.Children))
	}
}

func TestOrChoicePolicies(t *testing.T) {
	// Alternative 0: one site, stale 30. Alternative 1: two sites, current.
	a0 := URL("http://r/", "")
	a0.SetStaleness(30)
	a1 := Union(URL("http://r/", ""), URL("http://s/", ""))
	or := Or(a0, a1)
	root := Display(or)

	few := root.Clone()
	if n := OrChoice(few, PickFewestSites); n != 1 {
		t.Fatalf("or-choices = %d", n)
	}
	if few.Children[0].Kind != KindURL {
		t.Fatalf("fewest-sites picked %s", few.Children[0])
	}

	cur := root.Clone()
	OrChoice(cur, PickMostCurrent)
	if cur.Children[0].Kind != KindUnion {
		t.Fatalf("most-current picked %s", cur.Children[0])
	}

	// pick returning out of range leaves the Or in place.
	keep := root.Clone()
	OrChoice(keep, func([]*Node) int { return -1 })
	if keep.Children[0].Kind != KindOr {
		t.Fatal("out-of-range pick must not rewrite")
	}
}

func TestDistributeDifference(t *testing.T) {
	e := Data(xmltree.MustParse(`<e/>`))
	rRemote := URL("http://r/", "")
	sLocal := Data(xmltree.MustParse(`<s/>`))
	diff := Difference(e, Union(rRemote, sLocal))
	root := Display(diff)
	n := DistributeDifference(root, func(b *Node) bool { return b.Kind == KindData })
	if n != 1 {
		t.Fatalf("rewrites = %d", n)
	}
	outer := root.Children[0]
	if outer.Kind != KindDifference {
		t.Fatalf("outer = %s", outer)
	}
	if outer.Children[1] != rRemote {
		t.Fatalf("remote branch must be subtracted last: %s", outer)
	}
	inner := outer.Children[0]
	if inner.Kind != KindDifference || inner.Children[1] != sLocal {
		t.Fatalf("inner = %s", inner)
	}
	// All-local or all-remote unions are left alone.
	d2 := Display(Difference(e.Clone(), Union(Data(), Data())))
	if n := DistributeDifference(d2, func(b *Node) bool { return true }); n != 0 {
		t.Fatalf("all-local rewrite = %d, want 0", n)
	}
}

func TestAbsorbJoin(t *testing.T) {
	a := Data(xmltree.MustParse(`<a><k1>1</k1><k2>x</k2></a>`))
	x := URN("urn:X")
	b := Data(xmltree.MustParse(`<b><k2>x</k2></b>`))
	inner := JoinNamed("k1", "k1", "a", "x", a, x)
	outer := JoinNamed("a/k2", "k2", "ax", "b", inner, b)

	rw, err := AbsorbJoin(outer)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Kind != KindJoin || rw.Children[0].Kind != KindJoin {
		t.Fatalf("rewritten = %s", rw)
	}
	newInner := rw.Children[0]
	if newInner.LeftKey != "k2" || newInner.RightKey != "k2" {
		t.Fatalf("inner keys = %s=%s", newInner.LeftKey, newInner.RightKey)
	}
	if newInner.Children[0].Kind != KindData || newInner.Children[1].Kind != KindData {
		t.Fatalf("inner join must pair the local inputs: %s", newInner)
	}
	if rw.LeftKey != "a/k1" || rw.RightKey != "k1" {
		t.Fatalf("outer keys = %s=%s", rw.LeftKey, rw.RightKey)
	}
	if rw.Children[1].Kind != KindURN {
		t.Fatal("remote input must move to the outer join")
	}

	// Shape mismatches are reported.
	if _, err := AbsorbJoin(Select(True{}, Data())); err == nil {
		t.Fatal("non-join must error")
	}
	if _, err := AbsorbJoin(JoinNamed("x/k", "k", "l", "r", Data(), Data())); err == nil {
		t.Fatal("non-join left input must error")
	}
	bad := JoinNamed("b/k2", "k2", "ax", "b", inner.Clone(), b.Clone())
	if _, err := AbsorbJoin(bad); err == nil {
		t.Fatal("outer key not addressing A component must error")
	}
}

func TestEstimateCard(t *testing.T) {
	d3 := Data(xmltree.MustParse(`<i/>`), xmltree.MustParse(`<i/>`), xmltree.MustParse(`<i/>`))
	if got := EstimateCard(d3); got != 3 {
		t.Fatalf("data card = %d", got)
	}
	if got := EstimateCard(Select(True{}, d3.Clone())); got != 1 {
		t.Fatalf("select card = %d (selectivity 1/3)", got)
	}
	if got := EstimateCard(URN("urn:X")); got != -1 {
		t.Fatalf("urn card = %d", got)
	}
	ann := URN("urn:X")
	ann.SetCard(500)
	if got := EstimateCard(ann); got != 500 {
		t.Fatalf("annotated card = %d", got)
	}
	if got := EstimateCard(Union(d3.Clone(), d3.Clone())); got != 6 {
		t.Fatalf("union card = %d", got)
	}
	if got := EstimateCard(Or(d3.Clone(), d3.Clone())); got != 3 {
		t.Fatalf("or card = %d (alternatives hold same data)", got)
	}
	if got := EstimateCard(Count(d3.Clone())); got != 1 {
		t.Fatalf("count card = %d", got)
	}
	if got := EstimateCard(TopN(2, "x", false, d3.Clone())); got != 2 {
		t.Fatalf("topn card = %d", got)
	}
	j := JoinNamed("k", "k", "l", "r", d3.Clone(), Data(xmltree.MustParse(`<i/>`)))
	if got := EstimateCard(j); got != 3 {
		t.Fatalf("join card = %d", got)
	}
	if got := EstimateCard(Display(d3.Clone())); got != 3 {
		t.Fatalf("display card = %d", got)
	}
	if got := EstimateCard(Union(d3.Clone(), URN("urn:X"))); got != -1 {
		t.Fatalf("union with unknown = %d", got)
	}
}
