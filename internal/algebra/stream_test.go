package algebra

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

// streamPlans builds a spread of plan shapes: mutable, annotated, with data
// payloads, visited memory, retained originals, and extra sections.
func streamPlans(t *testing.T) map[string]*Plan {
	t.Helper()

	allOps := NewPlan("all-ops", "t:1", Display(
		TopN(3, "price", true,
			Project("out", []string{"price", "name"},
				Union(
					Select(MustParsePredicate("price < 10 and exists price"),
						Data(xmltree.MustParse(`<item><price>5</price><t>a &amp; b</t></item>`))),
					Or(
						URL("http://10.1.2.3:9020/", "/data[id=245]"),
						Difference(
							Data(xmltree.MustParse(`<item><price>9</price></item>`)),
							Count(URN("urn:X:Y")),
						),
					),
				),
			),
		),
	))

	ann := URN("urn:Big")
	ann.SetCard(1000000)
	ann.Annotate(AnnotDistinct, "title:5000")
	annotated := NewPlan("ann", "t:1", Display(Select(MustParsePredicate("price < 10"), ann)))

	traveled := fig3Plan()
	traveled.RetainOriginal()
	traveled.VisitedMemory().Budget = 4
	traveled.VisitedMemory().Mark("a:1", 0xfeed)
	traveled.VisitedMemory().Mark("b:1", 0xbeef)
	traveled.Extra = map[string]*xmltree.Node{
		"provenance": xmltree.MustParse(`<provenance algo="hmac-sha256"><visit at="10" server="a:1" sig="AAAA"/></provenance>`),
		"audit":      xmltree.MustParse(`<audit n="1"/>`),
	}

	escapes := NewPlan(`q"<&>`, "t:1", Display(Select(
		MustParsePredicate(`title contains '<tag>'`),
		Data(xmltree.MustParse(`<i>two &gt; one &amp; zero</i>`)),
	)))

	return map[string]*Plan{
		"all-ops":   allOps,
		"annotated": annotated,
		"traveled":  traveled,
		"escapes":   escapes,
		"bare-data": NewPlan("x", "t:1", Display(Data())),
	}
}

// TestStreamEncodeMatchesStaged is the frame-equivalence invariant at the
// algebra layer: EncodeFrame and EncodeStream must produce the staged Encode
// bytes exactly, for mutable plans and for decoded (frozen-payload) plans.
func TestStreamEncodeMatchesStaged(t *testing.T) {
	for name, p := range streamPlans(t) {
		want := EncodeString(p)

		enc := xmltree.GetFrameEncoder()
		EncodeFrame(p, enc)
		if got := enc.String(); got != want {
			t.Errorf("%s: streamed bytes diverge\n got %q\nwant %q", name, got, want)
		}
		var buf bytes.Buffer
		if _, err := enc.WriteTo(&buf); err != nil {
			t.Fatalf("%s: WriteTo: %v", name, err)
		}
		if buf.String() != want {
			t.Errorf("%s: WriteTo bytes diverge", name)
		}
		enc.Release()

		// A hop's-eye view: the decoded plan aliases frozen payloads; the
		// streamed re-encode must still match its staged re-encode.
		back, err := DecodeString(want)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		buf.Reset()
		n, err := EncodeStream(back, &buf)
		if err != nil {
			t.Fatalf("%s: EncodeStream: %v", name, err)
		}
		if staged := EncodeString(back); buf.String() != staged {
			t.Errorf("%s: decoded plan streams %q, stages %q", name, buf.String(), staged)
		} else if n != int64(len(staged)) {
			t.Errorf("%s: EncodeStream reported %d bytes, wrote %d", name, n, len(staged))
		}
	}
}

// FuzzStreamEncodeEquivalence: for any decodable <mqp> frame, the streamed
// frame bytes must be byte-identical to the staging-tree Encode output —
// both for the decoded plan (frozen payloads ride as zero-copy segments) and
// for a fully mutable reconstruction of the same plan.
func FuzzStreamEncodeEquivalence(f *testing.F) {
	f.Add(`<mqp id="q1" target="t:1"><plan><data><item><price>5</price></item></data></plan></mqp>`)
	f.Add(`<mqp id="q2" target="t:1"><plan><select pred="price &lt; 10"><url href="h:9020" path="/data"/></select></plan></mqp>`)
	f.Add(`<mqp id="q3" target="t:1"><plan><join leftkey="k" leftname="l" rightkey="k" rightname="r">` +
		`<urn name="urn:a"/><urn name="urn:b"/></join></plan></mqp>`)
	f.Add(`<mqp id="q4" target="t:1"><plan><topn by="price" n="3" order="desc"><data/></topn></plan>` +
		`<original><data/></original><visited b="4">a:1 2 AQ;b:1 1 Ag</visited></mqp>`)
	f.Add(`<mqp id="q5" target="t:1"><plan><data><i>cd &amp; entities &gt; here</i></data></plan>` +
		`<provenance><visit server="s&quot;1"/></provenance></mqp>`)
	f.Add(`<mqp id="q6" target="t:1"><plan><data><i><![CDATA[a<b&c]]></i></data></plan></mqp>`)
	f.Add(`<mqp id="q7" target="t:1"><plan><count><project as="p" fields="a,b">` +
		`<annotations><annot k="card" v="12"/></annotations><union><data/><data/></union></project></count></plan></mqp>`)
	f.Add(`<mqp id="&#113;8" target="t:1"><plan><display><data><x>&#65;&amp;</x></data></display></plan>` +
		`<visited>legacy:1 1 AA</visited></mqp>`)
	f.Add(`<mqp id="q9" target="t:1"><plan><union><urn name="urn:InterestArea:(USA.OR.Portland,Furniture.Chairs)"/><data/></union></plan>` +
		`<visited b="6">m:9020 2 FnYrjV5vcIE<a s="s1:9020" u="urn:InterestArea:(USA.OR.Portland,Music.CDs)"/>` +
		`<a s="s2:9020" u="urn:InterestArea:(*,*)"/></visited></mqp>`)

	f.Fuzz(func(t *testing.T, s string) {
		p, err := DecodeString(s)
		if err != nil {
			return
		}
		staged := EncodeString(p)
		enc := xmltree.GetFrameEncoder()
		defer enc.Release()
		EncodeFrame(p, enc)
		if got := enc.String(); got != staged {
			t.Fatalf("decoded plan: streamed %q != staged %q (input %q)", got, staged, s)
		}

		// Mutable variant: rebuild the same plan through the reference parser
		// so no node carries a serialization memo, then compare again.
		doc, err := xmltree.ParseString(staged)
		if err != nil {
			t.Fatalf("reparse canonical form: %v", err)
		}
		mp, err := Unmarshal(doc)
		if err != nil {
			t.Fatalf("unmarshal canonical form: %v", err)
		}
		mstaged := EncodeString(mp)
		enc.Reset()
		EncodeFrame(mp, enc)
		if got := enc.String(); got != mstaged {
			t.Fatalf("mutable plan: streamed %q != staged %q (input %q)", got, mstaged, s)
		}
	})
}
