package algebra

import (
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func item(s string) *xmltree.Node { return xmltree.MustParse(s) }

func TestCmpNumeric(t *testing.T) {
	it := item(`<item><price>9.50</price><qty>3</qty></item>`)
	cases := []struct {
		pred string
		want bool
	}{
		{"price < 10", true},
		{"price <= 9.50", true},
		{"price > 10", false},
		{"price >= 9.5", true},
		{"price = 9.5", true},
		{"price != 9.5", false},
		{"qty = 3", true},
		{"qty < 2", false},
	}
	for _, c := range cases {
		p := MustParsePredicate(c.pred)
		if got := p.Eval(it); got != c.want {
			t.Errorf("%q = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestCmpString(t *testing.T) {
	it := item(`<item><name>Armchair deluxe</name><city>Portland</city></item>`)
	cases := []struct {
		pred string
		want bool
	}{
		{"city = 'Portland'", true},
		{"city = 'Seattle'", false},
		{"city != 'Seattle'", true},
		{"name contains 'chair'", true},
		{"name contains 'CHAIR'", true}, // case-insensitive
		{"name contains 'sofa'", false},
		{"city < 'Q'", true}, // lexicographic
	}
	for _, c := range cases {
		p := MustParsePredicate(c.pred)
		if got := p.Eval(it); got != c.want {
			t.Errorf("%q = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	it := item(`<item><price>8</price><city>Portland</city><img/></item>`)
	cases := []struct {
		pred string
		want bool
	}{
		{"price < 10 and city = 'Portland'", true},
		{"price < 5 and city = 'Portland'", false},
		{"price < 5 or city = 'Portland'", true},
		{"not price < 5", true},
		{"exists img", true},
		{"exists video", false},
		{"true", true},
		{"(price < 5 or price > 7) and exists img", true},
		{"not (price < 5 or city = 'Portland')", false},
	}
	for _, c := range cases {
		p, err := ParsePredicate(c.pred)
		if err != nil {
			t.Fatalf("parse %q: %v", c.pred, err)
		}
		if got := p.Eval(it); got != c.want {
			t.Errorf("%q = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestPrecedence(t *testing.T) {
	// "a or b and c" must parse as a or (b and c).
	it := item(`<i><a>1</a><b>0</b><c>0</c></i>`)
	p := MustParsePredicate("a = 1 or b = 1 and c = 1")
	if !p.Eval(it) {
		t.Fatal("or/and precedence wrong")
	}
}

func TestNestedPaths(t *testing.T) {
	it := item(`<item><seller><loc><city>Portland</city></loc></seller></item>`)
	p := MustParsePredicate("seller/loc/city = 'Portland'")
	if !p.Eval(it) {
		t.Fatal("nested path predicate failed")
	}
}

func TestParseErrorsPred(t *testing.T) {
	for _, bad := range []string{
		"",
		"price <",
		"price ~ 3",
		"(price < 3",
		"price < 3 extra stuff",
		"and price < 3",
		"exists",
	} {
		if _, err := ParsePredicate(bad); err == nil {
			t.Errorf("ParsePredicate(%q): want error", bad)
		}
	}
}

func TestPredicateStringRoundTrip(t *testing.T) {
	preds := []string{
		"price < 10",
		"city = 'Portland'",
		"name contains 'golf club'",
		"(price <= 10 and city = 'Portland')",
		"not exists sold",
		"(a = 1 or (b = 2 and not c = 3))",
		"true",
	}
	it := item(`<i><price>5</price><city>Portland</city><a>1</a><b>2</b><c>9</c><name>golf club set</name></i>`)
	for _, s := range preds {
		p := MustParsePredicate(s)
		back, err := ParsePredicate(p.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", p.String(), s, err)
		}
		if p.Eval(it) != back.Eval(it) {
			t.Errorf("round trip of %q changed semantics", s)
		}
	}
}

func TestQuotedEscapes(t *testing.T) {
	it := item(`<i><n>O'Reilly</n></i>`)
	p := Cmp{Path: "n", Op: OpEq, Value: "O'Reilly"}
	if !p.Eval(it) {
		t.Fatal("direct eval failed")
	}
	back, err := ParsePredicate(p.String())
	if err != nil {
		t.Fatalf("reparse escaped literal: %v", err)
	}
	if !back.Eval(it) {
		t.Fatal("escaped literal round trip failed")
	}
}

func TestMissingPathComparisons(t *testing.T) {
	it := item(`<i><a>1</a></i>`)
	// Missing path yields "" which compares lexicographically.
	if MustParsePredicate("zz = ''").Eval(it) != true {
		t.Fatal("missing path should equal empty string")
	}
	// Missing path vs number falls back to lexicographic: "" < "5".
	if !MustParsePredicate("zz < 5").Eval(it) {
		t.Fatal("missing path vs number should compare lexicographically")
	}
}

// Property: Not(p) always evaluates to the complement of p.
func TestPropertyNotComplement(t *testing.T) {
	it := item(`<i><price>7</price><city>Portland</city></i>`)
	preds := []Predicate{
		MustParsePredicate("price < 10"),
		MustParsePredicate("city = 'Seattle'"),
		MustParsePredicate("exists price"),
		True{},
	}
	f := func(i uint8) bool {
		p := preds[int(i)%len(preds)]
		return Not{P: p}.Eval(it) == !p.Eval(it)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
