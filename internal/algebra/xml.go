package algebra

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/xmltree"
)

// XML serialization of mutant query plans (§2: "an algebraic query plan
// graph, encoded in XML"). The element vocabulary:
//
//	<mqp id="q1" target="129.95.50.105:9020">
//	  <plan> one operator element </plan>
//	  <original> optional retained original plan </original>
//	  ... extra sections (e.g. <provenance>) preserved verbatim ...
//	</mqp>
//
// Operator elements:
//
//	<data> verbatim item elements </data>
//	<url href="http://10.1.2.3:9020/" path="/data[id=245]"/>
//	<urn name="urn:ForSale:Portland-CDs"/>
//	<select pred="price &lt; 10"> child </select>
//	<project as="item" fields="name,price"> child </project>
//	<join leftkey="title" rightkey="CD" leftname="sale" rightname="listing">
//	  left right </join>
//	<union> children </union>
//	<or> children </or>
//	<difference> left right </difference>
//	<count> child </count>
//	<topn n="10" by="price" order="asc"> child </topn>
//	<display> child </display>
//
// Any operator element may carry an <annotations> first child with
// <annot k="..." v="..."/> entries (§5.1).

// annotationsElem is the reserved element name for annotation blocks.
const annotationsElem = "annotations"

// MarshalNode converts an operator subtree to its XML element form.
func MarshalNode(n *Node) *xmltree.Node {
	return marshalNode(n, true)
}

// marshalNode renders n as XML. Frozen data payloads are always aliased —
// immutable subtrees are safe to share with any number of documents. With
// copyDocs false, mutable payloads are shared too instead of deep-cloned —
// only safe when the produced tree is measured or serialized and then
// discarded, never retained or mutated.
//
// The staging tree is built at final size: attribute lists and child slices
// are allocated exactly once per element (serialization sorts attributes,
// so emit order is free), which matters because the hop path marshals every
// plan it forwards.
func marshalNode(n *Node, copyDocs bool) *xmltree.Node {
	var e *xmltree.Node
	switch n.Kind {
	case KindURL:
		if n.PathExp != "" {
			e = xmltree.ElemAttrs("url",
				xmltree.Attr{Name: "href", Value: n.URL},
				xmltree.Attr{Name: "path", Value: n.PathExp})
		} else {
			e = xmltree.ElemAttrs("url", xmltree.Attr{Name: "href", Value: n.URL})
		}
	case KindURN:
		e = xmltree.ElemAttrs("urn", xmltree.Attr{Name: "name", Value: n.URN})
	case KindSelect:
		e = xmltree.ElemAttrs("select", xmltree.Attr{Name: "pred", Value: n.Pred.String()})
	case KindProject:
		e = xmltree.ElemAttrs("project",
			xmltree.Attr{Name: "as", Value: n.As},
			xmltree.Attr{Name: "fields", Value: joinFields(n.Fields)})
	case KindJoin:
		e = xmltree.ElemAttrs("join",
			xmltree.Attr{Name: "leftkey", Value: n.LeftKey},
			xmltree.Attr{Name: "rightkey", Value: n.RightKey},
			xmltree.Attr{Name: "leftname", Value: n.LeftName},
			xmltree.Attr{Name: "rightname", Value: n.RightName})
	case KindTopN:
		order := "asc"
		if n.Desc {
			order = "desc"
		}
		e = xmltree.ElemAttrs("topn",
			xmltree.Attr{Name: "n", Value: strconv.Itoa(n.N)},
			xmltree.Attr{Name: "by", Value: n.OrderBy},
			xmltree.Attr{Name: "order", Value: order})
	default:
		e = xmltree.Elem(n.Kind.String())
	}
	total := len(n.Children) + len(n.Docs)
	if len(n.Annotations) > 0 {
		total++
	}
	if total == 0 {
		return e
	}
	kids := make([]*xmltree.Node, 0, total)
	if len(n.Annotations) > 0 {
		keys := make([]string, 0, len(n.Annotations))
		for k := range n.Annotations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		annKids := make([]*xmltree.Node, len(keys))
		for i, k := range keys {
			annKids[i] = xmltree.ElemAttrs("annot",
				xmltree.Attr{Name: "k", Value: k},
				xmltree.Attr{Name: "v", Value: n.Annotations[k]})
		}
		ann := xmltree.Elem(annotationsElem)
		ann.Children = annKids
		kids = append(kids, ann)
	}
	if n.Kind == KindData {
		for _, d := range n.Docs {
			if copyDocs {
				kids = append(kids, d.Share())
			} else {
				kids = append(kids, d)
			}
		}
	}
	for _, c := range n.Children {
		kids = append(kids, marshalNode(c, copyDocs))
	}
	e.Children = kids
	return e
}

func joinFields(fields []string) string {
	out := ""
	for i, f := range fields {
		if i > 0 {
			out += ","
		}
		out += f
	}
	return out
}

func splitFields(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// arenaChunk sizes the per-plan operator arena. Operator shells are small
// (a handful to a few dozen nodes per plan), so one chunk covers almost
// every plan on the wire and a deep plan costs one allocation per 32
// operators instead of one per operator.
const arenaChunk = 32

// nodeArena batch-allocates the mutable operator shell a hop rewrites. The
// arena is per-unmarshal: operator nodes from one decoded plan sit in a few
// contiguous blocks (better locality for the rewrite walks), and the blocks
// are reclaimed together when the plan goes out of scope. Only the shell is
// arena-backed — data payloads and extra sections stay frozen aliases of
// the decoder output.
type nodeArena struct {
	blk []Node
}

func (a *nodeArena) take() *Node {
	if len(a.blk) == 0 {
		a.blk = make([]Node, arenaChunk)
	}
	n := &a.blk[0]
	a.blk = a.blk[1:]
	return n
}

// arenaPool recycles arenas across decodes: a delivery chain that unmarshals
// plan after plan draws nodes from the unused tail of a previous plan's chunk
// instead of allocating a fresh one each time. Handing an arena back is safe
// at any point — take never revisits handed-out nodes (blk only advances), so
// a pooled arena can only give the next decode the still-zeroed remainder.
var arenaPool = sync.Pool{New: func() interface{} { return &nodeArena{} }}

// UnmarshalNode converts an XML element back into an operator subtree.
func UnmarshalNode(e *xmltree.Node) (*Node, error) {
	ar := arenaPool.Get().(*nodeArena)
	defer arenaPool.Put(ar)
	return unmarshalNode(e, ar)
}

func unmarshalNode(e *xmltree.Node, ar *nodeArena) (*Node, error) {
	n := ar.take()
	switch e.Name {
	case "data":
		n.Kind = KindData
	case "url":
		n.Kind = KindURL
		href, ok := e.Attr("href")
		if !ok {
			return nil, fmt.Errorf("algebra: <url> without href")
		}
		n.URL = href
		n.PathExp = e.AttrDefault("path", "")
	case "urn":
		n.Kind = KindURN
		name, ok := e.Attr("name")
		if !ok {
			return nil, fmt.Errorf("algebra: <urn> without name")
		}
		n.URN = name
	case "select":
		n.Kind = KindSelect
		ps, ok := e.Attr("pred")
		if !ok {
			return nil, fmt.Errorf("algebra: <select> without pred")
		}
		pred, err := ParsePredicate(ps)
		if err != nil {
			return nil, err
		}
		n.Pred = pred
	case "project":
		n.Kind = KindProject
		n.As = e.AttrDefault("as", "item")
		n.Fields = splitFields(e.AttrDefault("fields", ""))
	case "join":
		n.Kind = KindJoin
		n.LeftKey = e.AttrDefault("leftkey", "")
		n.RightKey = e.AttrDefault("rightkey", "")
		n.LeftName = e.AttrDefault("leftname", "l")
		n.RightName = e.AttrDefault("rightname", "r")
	case "union":
		n.Kind = KindUnion
	case "or":
		n.Kind = KindOr
	case "difference":
		n.Kind = KindDifference
	case "count":
		n.Kind = KindCount
	case "topn":
		n.Kind = KindTopN
		nv, err := strconv.Atoi(e.AttrDefault("n", "0"))
		if err != nil {
			return nil, fmt.Errorf("algebra: <topn> bad n: %w", err)
		}
		n.N = nv
		n.OrderBy = e.AttrDefault("by", "")
		n.Desc = e.AttrDefault("order", "asc") == "desc"
	case "display":
		n.Kind = KindDisplay
	default:
		return nil, fmt.Errorf("algebra: unknown operator element <%s>", e.Name)
	}
	for i, c := range e.Children {
		if c.IsText() {
			continue
		}
		if c.Name == annotationsElem {
			for _, a := range c.ChildrenNamed("annot") {
				k, _ := a.Attr("k")
				v, _ := a.Attr("v")
				if k != "" {
					n.Annotate(k, v)
				}
			}
			continue
		}
		if n.Kind == KindData {
			if n.Docs == nil {
				// Everything from here on is payload: size the slice once
				// instead of growing it through appends (payloads routinely
				// carry dozens of items).
				n.Docs = make([]*xmltree.Node, 0, len(e.Children)-i)
			}
			// The receiver owns the decoded document, so payload items are
			// frozen in place and aliased instead of deep-cloned; every
			// later hop shares the same immutable subtree. (Decoder-produced
			// payloads are born frozen, making this a no-op per item.)
			n.Docs = append(n.Docs, c.Freeze())
			continue
		}
		child, err := unmarshalNode(c, ar)
		if err != nil {
			return nil, err
		}
		if n.Children == nil {
			n.Children = make([]*Node, 0, len(e.Children)-i)
		}
		n.Children = append(n.Children, child)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// Marshal converts a plan to its XML document form.
func Marshal(p *Plan) *xmltree.Node {
	return marshal(p, true)
}

func marshal(p *Plan, copyDocs bool) *xmltree.Node {
	doc := xmltree.ElemAttrs("mqp",
		xmltree.Attr{Name: "id", Value: p.ID},
		xmltree.Attr{Name: "target", Value: p.Target})
	doc.Add(xmltree.Elem("plan", marshalNode(p.Root, copyDocs)))
	if p.Original != nil {
		doc.Add(xmltree.Elem("original", marshalNode(p.Original, copyDocs)))
	}
	if p.Visited != nil && (p.Visited.Len() > 0 || p.Visited.Budget > 0 || p.Visited.AnsweredLen() > 0) {
		// Emitted whenever there is state to carry — visit records, or just
		// a per-plan budget override set before the first hop. Marshal is
		// frozen and cached, so re-serializing the plan for every fallback
		// candidate aliases one immutable subtree.
		doc.Add(p.Visited.Marshal())
	}
	keys := make([]string, 0, len(p.Extra))
	for k := range p.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if copyDocs {
			doc.Add(p.Extra[k].Share())
		} else {
			doc.Add(p.Extra[k])
		}
	}
	return doc
}

// Unmarshal parses an <mqp> document back into a Plan. The mutable
// operator shell (plan and retained original) is allocated from one
// per-plan arena; everything else — data payloads, extra sections — is
// frozen and aliased from the document.
func Unmarshal(doc *xmltree.Node) (*Plan, error) {
	if doc.Name != "mqp" {
		return nil, fmt.Errorf("algebra: expected <mqp>, got <%s>", doc.Name)
	}
	p := &Plan{
		ID:     doc.AttrDefault("id", ""),
		Target: doc.AttrDefault("target", ""),
	}
	ar := arenaPool.Get().(*nodeArena)
	defer arenaPool.Put(ar)
	for _, c := range doc.Children {
		if c.IsText() {
			continue
		}
		switch c.Name {
		case "plan":
			elems := c.Elements()
			if len(elems) != 1 {
				return nil, fmt.Errorf("algebra: <plan> must have exactly one operator, has %d", len(elems))
			}
			root, err := unmarshalNode(elems[0], ar)
			if err != nil {
				return nil, err
			}
			p.Root = root
		case "original":
			elems := c.Elements()
			if len(elems) != 1 {
				return nil, fmt.Errorf("algebra: <original> must have exactly one operator")
			}
			orig, err := unmarshalNode(elems[0], ar)
			if err != nil {
				return nil, err
			}
			p.Original = orig
		case visitedElem:
			v, err := UnmarshalVisited(c)
			if err != nil {
				return nil, err
			}
			p.Visited = v
		default:
			if p.Extra == nil {
				p.Extra = map[string]*xmltree.Node{}
			}
			// Extra sections (provenance above all) are re-emitted verbatim
			// on the next hop; freeze-and-alias so forwarding never copies
			// them.
			p.Extra[c.Name] = c.Freeze()
		}
	}
	if p.Root == nil {
		return nil, fmt.Errorf("algebra: <mqp> without <plan>")
	}
	return p, nil
}

// Encode serializes the plan as canonical XML to w, returning bytes written.
// This is the on-the-wire form shipped between peers; its size is what the
// paper's optimization discussion (partial-result size) is about. The
// staging tree shares the plan's data payloads (it is discarded after the
// write), so encoding never deep-copies item bundles.
func Encode(p *Plan, w io.Writer) (int64, error) {
	return marshal(p, false).WriteTo(w)
}

// EncodeString returns the plan's canonical XML serialization.
func EncodeString(p *Plan) string {
	return marshal(p, false).String()
}

// WireSize returns the serialized byte size of the plan. Like Encode, the
// measurement tree shares payloads and is discarded, so sizing a plan costs
// one arithmetic tree walk and zero document copies.
func WireSize(p *Plan) int {
	return marshal(p, false).ByteSize()
}

// Decode parses a serialized plan through the zero-copy receive path: the
// stream is buffered once and the document is decoded straight from that
// buffer (xmltree.Decode), so plan payloads alias the read bytes instead of
// being re-stringified.
func Decode(r io.Reader) (*Plan, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(buf)
}

// DecodeBytes parses a plan from its XML wire bytes, zero-copy. The buffer
// is retained by the plan's payloads and must not be modified afterwards
// (the xmltree.Decode ownership rule).
func DecodeBytes(buf []byte) (*Plan, error) {
	doc, err := xmltree.Decode(buf)
	if err != nil {
		return nil, err
	}
	return Unmarshal(doc)
}

// DecodeString parses a plan from its XML string form, zero-copy: decoded
// payloads alias the string.
func DecodeString(s string) (*Plan, error) {
	doc, err := xmltree.DecodeString(s)
	if err != nil {
		return nil, err
	}
	return Unmarshal(doc)
}
