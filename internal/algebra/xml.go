package algebra

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/xmltree"
)

// XML serialization of mutant query plans (§2: "an algebraic query plan
// graph, encoded in XML"). The element vocabulary:
//
//	<mqp id="q1" target="129.95.50.105:9020">
//	  <plan> one operator element </plan>
//	  <original> optional retained original plan </original>
//	  ... extra sections (e.g. <provenance>) preserved verbatim ...
//	</mqp>
//
// Operator elements:
//
//	<data> verbatim item elements </data>
//	<url href="http://10.1.2.3:9020/" path="/data[id=245]"/>
//	<urn name="urn:ForSale:Portland-CDs"/>
//	<select pred="price &lt; 10"> child </select>
//	<project as="item" fields="name,price"> child </project>
//	<join leftkey="title" rightkey="CD" leftname="sale" rightname="listing">
//	  left right </join>
//	<union> children </union>
//	<or> children </or>
//	<difference> left right </difference>
//	<count> child </count>
//	<topn n="10" by="price" order="asc"> child </topn>
//	<display> child </display>
//
// Any operator element may carry an <annotations> first child with
// <annot k="..." v="..."/> entries (§5.1).

// annotationsElem is the reserved element name for annotation blocks.
const annotationsElem = "annotations"

// MarshalNode converts an operator subtree to its XML element form.
func MarshalNode(n *Node) *xmltree.Node {
	return marshalNode(n, true)
}

// marshalNode renders n as XML. Frozen data payloads are always aliased —
// immutable subtrees are safe to share with any number of documents. With
// copyDocs false, mutable payloads are shared too instead of deep-cloned —
// only safe when the produced tree is measured or serialized and then
// discarded, never retained or mutated.
func marshalNode(n *Node, copyDocs bool) *xmltree.Node {
	e := xmltree.Elem(n.Kind.String())
	if len(n.Annotations) > 0 {
		ann := xmltree.Elem(annotationsElem)
		keys := make([]string, 0, len(n.Annotations))
		for k := range n.Annotations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			a := xmltree.Elem("annot")
			a.SetAttr("k", k)
			a.SetAttr("v", n.Annotations[k])
			ann.Add(a)
		}
		e.Add(ann)
	}
	switch n.Kind {
	case KindData:
		for _, d := range n.Docs {
			if copyDocs {
				e.Add(d.Share())
			} else {
				e.Add(d)
			}
		}
	case KindURL:
		e.SetAttr("href", n.URL)
		if n.PathExp != "" {
			e.SetAttr("path", n.PathExp)
		}
	case KindURN:
		e.SetAttr("name", n.URN)
	case KindSelect:
		e.SetAttr("pred", n.Pred.String())
	case KindProject:
		e.SetAttr("as", n.As)
		e.SetAttr("fields", joinFields(n.Fields))
	case KindJoin:
		e.SetAttr("leftkey", n.LeftKey)
		e.SetAttr("rightkey", n.RightKey)
		e.SetAttr("leftname", n.LeftName)
		e.SetAttr("rightname", n.RightName)
	case KindTopN:
		e.SetAttr("n", strconv.Itoa(n.N))
		e.SetAttr("by", n.OrderBy)
		if n.Desc {
			e.SetAttr("order", "desc")
		} else {
			e.SetAttr("order", "asc")
		}
	}
	for _, c := range n.Children {
		e.Add(marshalNode(c, copyDocs))
	}
	return e
}

func joinFields(fields []string) string {
	out := ""
	for i, f := range fields {
		if i > 0 {
			out += ","
		}
		out += f
	}
	return out
}

func splitFields(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// UnmarshalNode converts an XML element back into an operator subtree.
func UnmarshalNode(e *xmltree.Node) (*Node, error) {
	n := &Node{}
	switch e.Name {
	case "data":
		n.Kind = KindData
	case "url":
		n.Kind = KindURL
		href, ok := e.Attr("href")
		if !ok {
			return nil, fmt.Errorf("algebra: <url> without href")
		}
		n.URL = href
		n.PathExp = e.AttrDefault("path", "")
	case "urn":
		n.Kind = KindURN
		name, ok := e.Attr("name")
		if !ok {
			return nil, fmt.Errorf("algebra: <urn> without name")
		}
		n.URN = name
	case "select":
		n.Kind = KindSelect
		ps, ok := e.Attr("pred")
		if !ok {
			return nil, fmt.Errorf("algebra: <select> without pred")
		}
		pred, err := ParsePredicate(ps)
		if err != nil {
			return nil, err
		}
		n.Pred = pred
	case "project":
		n.Kind = KindProject
		n.As = e.AttrDefault("as", "item")
		n.Fields = splitFields(e.AttrDefault("fields", ""))
	case "join":
		n.Kind = KindJoin
		n.LeftKey = e.AttrDefault("leftkey", "")
		n.RightKey = e.AttrDefault("rightkey", "")
		n.LeftName = e.AttrDefault("leftname", "l")
		n.RightName = e.AttrDefault("rightname", "r")
	case "union":
		n.Kind = KindUnion
	case "or":
		n.Kind = KindOr
	case "difference":
		n.Kind = KindDifference
	case "count":
		n.Kind = KindCount
	case "topn":
		n.Kind = KindTopN
		nv, err := strconv.Atoi(e.AttrDefault("n", "0"))
		if err != nil {
			return nil, fmt.Errorf("algebra: <topn> bad n: %w", err)
		}
		n.N = nv
		n.OrderBy = e.AttrDefault("by", "")
		n.Desc = e.AttrDefault("order", "asc") == "desc"
	case "display":
		n.Kind = KindDisplay
	default:
		return nil, fmt.Errorf("algebra: unknown operator element <%s>", e.Name)
	}
	for _, c := range e.Children {
		if c.IsText() {
			continue
		}
		if c.Name == annotationsElem {
			for _, a := range c.ChildrenNamed("annot") {
				k, _ := a.Attr("k")
				v, _ := a.Attr("v")
				if k != "" {
					n.Annotate(k, v)
				}
			}
			continue
		}
		if n.Kind == KindData {
			// The receiver owns the decoded document, so payload items are
			// frozen in place and aliased instead of deep-cloned; every
			// later hop shares the same immutable subtree.
			n.Docs = append(n.Docs, c.Freeze())
			continue
		}
		child, err := UnmarshalNode(c)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// Marshal converts a plan to its XML document form.
func Marshal(p *Plan) *xmltree.Node {
	return marshal(p, true)
}

func marshal(p *Plan, copyDocs bool) *xmltree.Node {
	doc := xmltree.ElemAttrs("mqp",
		xmltree.Attr{Name: "id", Value: p.ID},
		xmltree.Attr{Name: "target", Value: p.Target})
	doc.Add(xmltree.Elem("plan", marshalNode(p.Root, copyDocs)))
	if p.Original != nil {
		doc.Add(xmltree.Elem("original", marshalNode(p.Original, copyDocs)))
	}
	if p.Visited != nil && (p.Visited.Len() > 0 || p.Visited.Budget > 0) {
		// Emitted whenever there is state to carry — visit records, or just
		// a per-plan budget override set before the first hop. Marshal is
		// frozen and cached, so re-serializing the plan for every fallback
		// candidate aliases one immutable subtree.
		doc.Add(p.Visited.Marshal())
	}
	keys := make([]string, 0, len(p.Extra))
	for k := range p.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if copyDocs {
			doc.Add(p.Extra[k].Share())
		} else {
			doc.Add(p.Extra[k])
		}
	}
	return doc
}

// Unmarshal parses an <mqp> document back into a Plan.
func Unmarshal(doc *xmltree.Node) (*Plan, error) {
	if doc.Name != "mqp" {
		return nil, fmt.Errorf("algebra: expected <mqp>, got <%s>", doc.Name)
	}
	p := &Plan{
		ID:     doc.AttrDefault("id", ""),
		Target: doc.AttrDefault("target", ""),
	}
	for _, c := range doc.Children {
		if c.IsText() {
			continue
		}
		switch c.Name {
		case "plan":
			elems := c.Elements()
			if len(elems) != 1 {
				return nil, fmt.Errorf("algebra: <plan> must have exactly one operator, has %d", len(elems))
			}
			root, err := UnmarshalNode(elems[0])
			if err != nil {
				return nil, err
			}
			p.Root = root
		case "original":
			elems := c.Elements()
			if len(elems) != 1 {
				return nil, fmt.Errorf("algebra: <original> must have exactly one operator")
			}
			orig, err := UnmarshalNode(elems[0])
			if err != nil {
				return nil, err
			}
			p.Original = orig
		case visitedElem:
			v, err := UnmarshalVisited(c)
			if err != nil {
				return nil, err
			}
			p.Visited = v
		default:
			if p.Extra == nil {
				p.Extra = map[string]*xmltree.Node{}
			}
			// Extra sections (provenance above all) are re-emitted verbatim
			// on the next hop; freeze-and-alias so forwarding never copies
			// them.
			p.Extra[c.Name] = c.Freeze()
		}
	}
	if p.Root == nil {
		return nil, fmt.Errorf("algebra: <mqp> without <plan>")
	}
	return p, nil
}

// Encode serializes the plan as canonical XML to w, returning bytes written.
// This is the on-the-wire form shipped between peers; its size is what the
// paper's optimization discussion (partial-result size) is about. The
// staging tree shares the plan's data payloads (it is discarded after the
// write), so encoding never deep-copies item bundles.
func Encode(p *Plan, w io.Writer) (int64, error) {
	return marshal(p, false).WriteTo(w)
}

// EncodeString returns the plan's canonical XML serialization.
func EncodeString(p *Plan) string {
	return marshal(p, false).String()
}

// WireSize returns the serialized byte size of the plan. Like Encode, the
// measurement tree shares payloads and is discarded, so sizing a plan costs
// one arithmetic tree walk and zero document copies.
func WireSize(p *Plan) int {
	return marshal(p, false).ByteSize()
}

// Decode parses a serialized plan.
func Decode(r io.Reader) (*Plan, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return Unmarshal(doc)
}

// DecodeString parses a plan from its XML string form.
func DecodeString(s string) (*Plan, error) {
	doc, err := xmltree.ParseString(s)
	if err != nil {
		return nil, err
	}
	return Unmarshal(doc)
}
