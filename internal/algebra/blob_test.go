package algebra

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/blobstore"
	"repro/internal/xmltree"
)

func blobTestPlan(t *testing.T, id string, docs ...*xmltree.Node) *Plan {
	t.Helper()
	data := Data(docs...)
	sel := Select(MustParsePredicate("price < 100"), data)
	return NewPlan(id, "client:1", Display(sel))
}

func saleDoc(i int) *xmltree.Node {
	return xmltree.MustParse(fmt.Sprintf("<sale><cd>Album %02d</cd><price>%d</price></sale>", i, 3+i))
}

// TestSubstituteResolveRoundTrip pins the core property: substituting
// payloads for references and resolving them back yields a byte-identical
// plan.
func TestSubstituteResolveRoundTrip(t *testing.T) {
	store := blobstore.New()
	docs := []*xmltree.Node{saleDoc(1), saleDoc(2)}
	plan := blobTestPlan(t, "rt", docs...)
	want := EncodeString(plan)

	body := Marshal(plan)
	n := SubstituteBlobs(body, func(d *xmltree.Node) (string, bool) {
		_, fp := store.Intern(d)
		return fp.String(), true
	})
	if n != 2 {
		t.Fatalf("substituted %d payloads, want 2", n)
	}
	if !Marked(body) {
		t.Fatal("body not marked")
	}
	if s := body.String(); !strings.Contains(s, `<blob fp=`) || strings.Contains(s, "Album") {
		t.Fatalf("substitution did not take: %s", s)
	}

	// The reference body crosses the wire.
	wire, err := xmltree.DecodeString(body.String())
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := ResolveBlobs(wire, func(fp string) (*xmltree.Node, error) {
		p, ok := blobstore.ParseFP(fp)
		if !ok {
			return nil, fmt.Errorf("bad fp")
		}
		n, ok := store.Get(p)
		if !ok {
			return nil, fmt.Errorf("unknown fp")
		}
		return n, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(resolved)
	if err != nil {
		t.Fatal(err)
	}
	if got := EncodeString(back); got != want {
		t.Fatalf("round trip diverged:\n got %s\nwant %s", got, want)
	}
}

// TestSubstituteRefusesAmbiguousPayload: payload data shaped exactly like a
// reference must force the whole body inline and unmarked.
func TestSubstituteRefusesAmbiguousPayload(t *testing.T) {
	amb := xmltree.MustParse(`<blob fp="userdata"/>`)
	plan := blobTestPlan(t, "amb", saleDoc(1), amb)
	body := Marshal(plan)
	before := body.String()
	if n := SubstituteBlobs(body, func(d *xmltree.Node) (string, bool) { return "X", true }); n != -1 {
		t.Fatalf("substitution on ambiguous body returned %d, want -1", n)
	}
	if body.String() != before {
		t.Fatal("ambiguous body was modified")
	}
	// The unmarked body passes through resolution untouched, preserving the
	// payload verbatim.
	resolved, err := ResolveBlobs(body, nil, nil)
	if err != nil || resolved != body {
		t.Fatalf("unmarked body not passed through: %v", err)
	}
	back, err := Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if got := EncodeString(back); !strings.Contains(got, `<blob fp="userdata">`) && !strings.Contains(got, `<blob fp="userdata"/>`) {
		t.Fatalf("ambiguous payload lost: %s", got)
	}
}

func TestResolveErrors(t *testing.T) {
	resolve := func(fp string) (*xmltree.Node, error) {
		if fp == "known" {
			return saleDoc(9), nil
		}
		return nil, fmt.Errorf("not resident")
	}
	cases := []struct {
		name, body string
		wantErr    string
	}{
		{"unknown fp", `<mqp id="q" target="t" blobs="1"><plan><data><blob fp="nope"/></data></plan></mqp>`, "not resident"},
		{"missing fp", `<mqp id="q" target="t" blobs="1"><plan><data><blob/></data></plan></mqp>`, "without fp"},
		{"conflict", `<mqp id="q" target="t" blobs="1"><plan><data><blob fp="known"><sale/></blob></data></plan></mqp>`, "conflict"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc, err := xmltree.DecodeString(tc.body)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ResolveBlobs(doc, resolve, nil); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want containing %q", err, tc.wantErr)
			}
		})
	}
	// A valid reference resolves.
	doc, err := xmltree.DecodeString(`<mqp id="q" target="t" blobs="1"><plan><display><data><blob fp="known"/></data></display></plan></mqp>`)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := ResolveBlobs(doc, resolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := resolved.String(); !strings.Contains(s, "Album 09") {
		t.Fatalf("reference not resolved: %s", s)
	}
	// The input body was not mutated (frozen decode, COW rebuild).
	if s := doc.String(); strings.Contains(s, "Album") {
		t.Fatal("frozen input mutated")
	}
}

// TestResolveInterns: inline payloads are rewritten to their canonical
// aliases so a receiver retains one copy of repeated freight.
func TestResolveInterns(t *testing.T) {
	store := blobstore.New()
	canon, _ := store.Intern(saleDoc(1))
	plan := blobTestPlan(t, "intern", saleDoc(1))
	body := Marshal(plan)
	body.SetAttr(BlobsAttr, "1")
	wire, err := xmltree.DecodeString(body.String())
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := ResolveBlobs(wire, nil, func(d *xmltree.Node) *xmltree.Node {
		return store.Canonicalize(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	walkDataPayloads(resolved, func(data *xmltree.Node, i int) {
		if data.Children[i] == canon {
			found = true
		}
	})
	if !found {
		t.Fatal("inline payload not replaced by its canonical alias")
	}
}

// TestUnmarkedBlobElementsAreData: without the marker, <blob> elements are
// ordinary payloads end to end.
func TestUnmarkedBlobElementsAreData(t *testing.T) {
	doc, err := xmltree.DecodeString(`<mqp id="q" target="t"><plan><data><blob fp="whatever"/></data></plan></mqp>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ResolveBlobs(doc, func(string) (*xmltree.Node, error) {
		t.Fatal("resolver called on unmarked body")
		return nil, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != doc {
		t.Fatal("unmarked body rebuilt")
	}
}

// FuzzResolveBlobs drives arbitrary wire bodies through resolution: it must
// never panic, never mutate its frozen input, and fail loudly (not drop
// payloads) on malformed references.
func FuzzResolveBlobs(f *testing.F) {
	f.Add(`<mqp id="q" target="t" blobs="1"><plan><data><blob fp="AAAAAAAAAAAAAAAAAAAAAA"/></data></plan></mqp>`)
	f.Add(`<mqp id="q" target="t" blobs="1"><plan><data><blob fp="short"/></data></plan></mqp>`)
	f.Add(`<mqp id="q" target="t" blobs="1"><plan><data><blob fp="x"><inline/></blob></data></plan></mqp>`)
	f.Add(`<mqp id="q" target="t"><plan><data><blob fp="x"/></data></plan></mqp>`)
	f.Add(`<mqp id="q" target="t" blobs="1"><plan><select pred="price &lt; 3"><data><sale><price>1</price></sale><blob/></data></select></plan></mqp>`)
	f.Fuzz(func(t *testing.T, s string) {
		doc, err := xmltree.DecodeString(s)
		if err != nil {
			return
		}
		store := blobstore.New()
		known, _ := store.Intern(saleDoc(1))
		resolve := func(fp string) (*xmltree.Node, error) {
			p, ok := blobstore.ParseFP(fp)
			if !ok {
				return nil, fmt.Errorf("malformed fp %q", fp)
			}
			n, ok := store.Get(p)
			if !ok {
				return nil, fmt.Errorf("unknown fp")
			}
			return n, nil
		}
		before := doc.String()
		out, rerr := ResolveBlobs(doc, resolve, func(d *xmltree.Node) *xmltree.Node { return store.Canonicalize(d) })
		if doc.String() != before {
			t.Fatalf("input mutated by resolution")
		}
		if rerr != nil {
			return // malformed references must error, and did
		}
		if !Marked(doc) && out != doc {
			t.Fatal("unmarked body rebuilt")
		}
		// A successfully resolved marked body carries no reference elements
		// in payload position (all were replaced, or an error was returned).
		_ = known
		if Marked(doc) {
			walkDataPayloads(out, func(data *xmltree.Node, i int) {
				if _, isRef := IsBlobRef(data.Children[i]); isRef {
					t.Fatalf("unresolved reference survived: %s", data.Children[i].String())
				}
			})
		}
	})
}
