package algebra

import (
	"io"
	"sort"
	"strconv"

	"repro/internal/xmltree"
)

// Streaming plan encoder: the staging-tree-free twin of marshal + WriteTo.
//
// EncodeFrame walks the plan directly, emitting canonical markup for the
// mutable operator shell and handing frozen freight — data payloads, the
// visited section, extra sections like provenance — to the FrameEncoder as
// memoized-serialization segments. The bytes produced are identical to
// Encode's staged output (FuzzStreamEncodeEquivalence enforces this), but a
// forwarded plan no longer materializes a staging tree, and payloads that
// crossed the wire before are never re-walked or copied: they ride to the
// socket as zero-copy segments of one vectored write.
//
// Attribute emission must match the canonical serializer's sorted order, so
// each operator lists its attributes alphabetically here (join emits
// leftkey, leftname, rightkey, rightname; topn emits by, n, order).

// EncodeFrame stages the plan's canonical wire form into enc. It is the
// streaming equivalent of Encode: same bytes, no staging tree, payloads
// shared rather than copied — so like Encode, the staged frame must be
// written out before the plan is mutated again.
func EncodeFrame(p *Plan, enc *xmltree.FrameEncoder) {
	enc.Raw("<mqp")
	enc.Attr("id", p.ID)
	enc.Attr("target", p.Target)
	enc.RawByte('>')
	enc.Raw("<plan>")
	encodeFrameNode(p.Root, enc)
	enc.Raw("</plan>")
	if p.Original != nil {
		enc.Raw("<original>")
		encodeFrameNode(p.Original, enc)
		enc.Raw("</original>")
	}
	if p.Visited != nil && (p.Visited.Len() > 0 || p.Visited.Budget > 0 || p.Visited.AnsweredLen() > 0) {
		enc.Node(p.Visited.Marshal())
	}
	if len(p.Extra) > 0 {
		keys := make([]string, 0, len(p.Extra))
		for k := range p.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			enc.Node(p.Extra[k])
		}
	}
	enc.Raw("</mqp>")
}

// EncodeStream writes the plan's canonical wire form to w through a pooled
// FrameEncoder, returning bytes written. On a gather-capable writer (a TCP
// connection) the whole document leaves in one writev.
func EncodeStream(p *Plan, w io.Writer) (int64, error) {
	enc := xmltree.GetFrameEncoder()
	defer enc.Release()
	EncodeFrame(p, enc)
	return enc.WriteTo(w)
}

// encodeFrameNode emits one operator subtree in canonical form, mirroring
// marshalNode + the canonical serializer exactly.
func encodeFrameNode(n *Node, enc *xmltree.FrameEncoder) {
	var name string
	switch n.Kind {
	case KindURL:
		name = "url"
		enc.Raw("<url")
		enc.Attr("href", n.URL)
		if n.PathExp != "" {
			enc.Attr("path", n.PathExp)
		}
	case KindURN:
		name = "urn"
		enc.Raw("<urn")
		enc.Attr("name", n.URN)
	case KindSelect:
		name = "select"
		enc.Raw("<select")
		enc.Attr("pred", n.Pred.String())
	case KindProject:
		name = "project"
		enc.Raw("<project")
		enc.Attr("as", n.As)
		enc.Attr("fields", joinFields(n.Fields))
	case KindJoin:
		name = "join"
		enc.Raw("<join")
		enc.Attr("leftkey", n.LeftKey)
		enc.Attr("leftname", n.LeftName)
		enc.Attr("rightkey", n.RightKey)
		enc.Attr("rightname", n.RightName)
	case KindTopN:
		name = "topn"
		enc.Raw("<topn")
		enc.Attr("by", n.OrderBy)
		enc.Attr("n", strconv.Itoa(n.N))
		if n.Desc {
			enc.Attr("order", "desc")
		} else {
			enc.Attr("order", "asc")
		}
	default:
		name = n.Kind.String()
		enc.RawByte('<')
		enc.Raw(name)
	}
	docs := n.Docs
	if n.Kind != KindData {
		// Docs on a non-data operator are never marshaled; they must not
		// keep the element from self-closing.
		docs = nil
	}
	if len(n.Children) == 0 && len(docs) == 0 && len(n.Annotations) == 0 {
		enc.Raw("/>")
		return
	}
	enc.RawByte('>')
	if len(n.Annotations) > 0 {
		keys := make([]string, 0, len(n.Annotations))
		for k := range n.Annotations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		enc.Raw("<annotations>")
		for _, k := range keys {
			enc.Raw("<annot")
			enc.Attr("k", k)
			enc.Attr("v", n.Annotations[k])
			enc.Raw("/>")
		}
		enc.Raw("</annotations>")
	}
	for _, d := range docs {
		enc.Node(d)
	}
	for _, c := range n.Children {
		encodeFrameNode(c, enc)
	}
	enc.Raw("</")
	enc.Raw(name)
	enc.RawByte('>')
}
