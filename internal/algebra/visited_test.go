package algebra

import (
	"testing"

	"repro/internal/xmltree"
)

func visitedTestPlan() *Plan {
	data := Data(xmltree.MustParse(`<i><v>1</v></i>`).Freeze(),
		xmltree.MustParse(`<i><v>2</v></i>`).Freeze())
	data.SetCard(2)
	body := Select(MustParsePredicate("v < 10 and v > 0"), Union(
		data,
		URL("http://s:9020/", "/data[id=1]"),
		URN("urn:X:Y"),
	))
	body.Annotate("card", "5")
	p := NewPlan("vq", "t:1", Display(Project("hit", []string{"v", "w"}, body)))
	p.RetainOriginal()
	return p
}

// TestVisitedWireRoundTrip: the <visited> section survives Marshal/Unmarshal
// with counts, fingerprints and budget intact.
func TestVisitedWireRoundTrip(t *testing.T) {
	p := visitedTestPlan()
	v := p.VisitedMemory()
	v.Budget = 4
	v.Mark("a:1", Fingerprint(p.Root))
	v.Mark("a:1", 0xdeadbeef)
	v.Mark("b:1", 42)

	rt, err := Unmarshal(Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Visited == nil {
		t.Fatal("visited section lost on the wire")
	}
	if rt.Visited.Budget != 4 {
		t.Fatalf("budget = %d, want 4", rt.Visited.Budget)
	}
	if got := rt.Visited.Servers(); len(got) != 2 || got[0] != "a:1" || got[1] != "b:1" {
		t.Fatalf("servers = %v", got)
	}
	ra, _ := rt.Visited.Lookup("a:1")
	if ra.Count != 2 || ra.Fingerprint != 0xdeadbeef {
		t.Fatalf("a:1 record = %+v", ra)
	}
	rb, _ := rt.Visited.Lookup("b:1")
	if rb.Count != 1 || rb.Fingerprint != 42 {
		t.Fatalf("b:1 record = %+v", rb)
	}
	// An empty memory is not emitted at all.
	p2 := visitedTestPlan()
	_ = p2.VisitedMemory()
	rt2, err := Unmarshal(Marshal(p2))
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Visited != nil {
		t.Fatal("empty visited memory must not travel")
	}
	// ... but a budget override set before the first hop must: it is the
	// client's per-plan revisit knob.
	p3 := visitedTestPlan()
	p3.VisitedMemory().Budget = 1
	rt3, err := Unmarshal(Marshal(p3))
	if err != nil {
		t.Fatal(err)
	}
	if rt3.Visited == nil || rt3.Visited.Budget != 1 {
		t.Fatalf("budget-only visited memory lost on the wire: %+v", rt3.Visited)
	}
}

// TestFingerprintWireStable: the fingerprint a server records must equal the
// fingerprint a later server computes after the plan crossed the wire —
// otherwise every hop would look like progress and ping-pong filtering
// would never trigger.
func TestFingerprintWireStable(t *testing.T) {
	p := visitedTestPlan()
	fp := Fingerprint(p.Root)
	for hop := 0; hop < 3; hop++ {
		rt, err := Unmarshal(Marshal(p))
		if err != nil {
			t.Fatal(err)
		}
		if got := Fingerprint(rt.Root); got != fp {
			t.Fatalf("hop %d: fingerprint %x != %x — wire round trip perturbs it", hop, got, fp)
		}
		p = rt
	}
}

// TestFingerprintSensitivity: every mutation class a server applies changes
// the fingerprint, while state outside the root does not.
func TestFingerprintSensitivity(t *testing.T) {
	p := visitedTestPlan()
	base := Fingerprint(p.Root)

	ann := visitedTestPlan()
	ann.Root.Children[0].Annotate("card", "9")
	if Fingerprint(ann.Root) == base {
		t.Fatal("annotation must change the fingerprint")
	}

	bound := visitedTestPlan()
	bound.Root.Walk(func(n *Node) bool {
		if n.Kind == KindUnion {
			for i, c := range n.Children {
				if c.Kind == KindURN {
					n.Children[i] = Data()
				}
			}
		}
		return true
	})
	if Fingerprint(bound.Root) == base {
		t.Fatal("binding a URN must change the fingerprint")
	}

	// Extra sections (provenance) and visited memory do not participate:
	// a mere forward leaves the fingerprint untouched.
	fwd := visitedTestPlan()
	fwd.VisitedMemory().Mark("s:1", 7)
	fwd.Extra = map[string]*xmltree.Node{"provenance": xmltree.Elem("provenance").Freeze()}
	if Fingerprint(fwd.Root) != base {
		t.Fatal("state outside the root must not change the fingerprint")
	}
}

// TestVisitedMarshalFrozenAndCached: the marshaled element is frozen (every
// serialization of the plan aliases it) and invalidated by Mark.
func TestVisitedMarshalFrozenAndCached(t *testing.T) {
	v := NewVisited()
	v.Mark("a:1", 1)
	e1 := v.Marshal()
	if !e1.Frozen() {
		t.Fatal("marshaled visited element must be frozen")
	}
	if e2 := v.Marshal(); e2 != e1 {
		t.Fatal("marshal must be cached between marks")
	}
	v.Mark("b:1", 2)
	e3 := v.Marshal()
	if e3 == e1 {
		t.Fatal("Mark must invalidate the marshal cache")
	}
	if rt, err := UnmarshalVisited(e3); err != nil || rt.Len() != 2 {
		t.Fatalf("marshal = %s (err %v)", e3, err)
	}
	// Direct writes to the exported Budget field must not serve a stale
	// cached budget.
	v.Budget = 9
	if got := v.Marshal().AttrDefault("b", ""); got != "9" {
		t.Fatalf("budget attr = %q after direct Budget write, want 9", got)
	}
}

// TestVisitedCompactWireForm pins the compact encoding: one packed text
// run, count omitted when 1, budget in the short attr — and verifies it
// survives a full string serialization round trip through the zero-copy
// decoder.
func TestVisitedCompactWireForm(t *testing.T) {
	v := NewVisited()
	v.Budget = 3
	v.Mark("meta:9020", 0x1a2b3c4d5e6f7081)
	v.Mark("meta:9020", 0x1a2b3c4d5e6f7081)
	v.Mark("s1:9020", 1)
	e := v.Marshal()
	if got, want := e.AttrDefault("b", ""), "3"; got != want {
		t.Fatalf("budget attr = %q, want %q", got, want)
	}
	if len(e.Elements()) != 0 {
		t.Fatalf("compact form must carry no per-record elements: %s", e)
	}
	// The compact form must be meaningfully smaller than the legacy
	// element-per-record encoding it replaces.
	legacySize := len(`<visited budget="3">` +
		`<v fp="1a2b3c4d5e6f7081" n="2" s="meta:9020"/>` +
		`<v fp="1" n="1" s="s1:9020"/>` + `</visited>`)
	if e.ByteSize() >= legacySize*3/4 {
		t.Fatalf("compact visited is %d B; legacy was %d B — want at least 25%% smaller", e.ByteSize(), legacySize)
	}
	// Round trip through real wire bytes and the zero-copy decoder.
	doc, err := xmltree.DecodeString(e.String())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := UnmarshalVisited(doc)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Budget != 3 {
		t.Fatalf("budget = %d", rt.Budget)
	}
	if r, ok := rt.Lookup("meta:9020"); !ok || r.Count != 2 || r.Fingerprint != 0x1a2b3c4d5e6f7081 {
		t.Fatalf("meta record = %+v ok=%v", r, ok)
	}
	if r, ok := rt.Lookup("s1:9020"); !ok || r.Count != 1 || r.Fingerprint != 1 {
		t.Fatalf("s1 record = %+v ok=%v", r, ok)
	}
}

// TestVisitedLegacyWireForm: the PR 4 element-per-record encoding (committed
// fuzz corpora, mixed-version peers) must still parse.
func TestVisitedLegacyWireForm(t *testing.T) {
	rt, err := UnmarshalVisited(xmltree.MustParse(
		`<visited budget="3"><v fp="deadbeef42" n="2" s="meta:9020"/></visited>`))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Budget != 3 {
		t.Fatalf("budget = %d", rt.Budget)
	}
	if r, ok := rt.Lookup("meta:9020"); !ok || r.Count != 2 || r.Fingerprint != 0xdeadbeef42 {
		t.Fatalf("record = %+v ok=%v", r, ok)
	}
}

// TestVisitedExoticServerFallsBack: a server name that would collide with
// the packed separators ships in the legacy element form and still round
// trips exactly.
func TestVisitedExoticServerFallsBack(t *testing.T) {
	// Any name the packed form cannot round-trip — ';' records separators,
	// and all Unicode whitespace, since the parser splits fields with
	// strings.Fields — must take the legacy element form.
	for _, server := range []string{"weird host;name", "tab\thost:1", "nb sp:1", "nl\nhost:1"} {
		v := NewVisited()
		v.Mark(server, 7)
		e := v.Marshal()
		if len(e.ChildrenNamed("v")) != 1 {
			t.Fatalf("%q: expected legacy fallback, got %s", server, e)
		}
		doc, err := xmltree.DecodeString(e.String())
		if err != nil {
			t.Fatal(err)
		}
		rt, err := UnmarshalVisited(doc)
		if err != nil {
			t.Fatalf("%q: %v", server, err)
		}
		if r, ok := rt.Lookup(server); !ok || r.Count != 1 || r.Fingerprint != 7 {
			t.Fatalf("%q: record = %+v ok=%v", server, r, ok)
		}
	}
}

// TestVisitedCompactRejectsGarbage: malformed packed records fail loudly.
func TestVisitedCompactRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		`<visited>onlyserver</visited>`,              // missing fingerprint
		`<visited>a:1 0 AAAAAAAAAAE</visited>`,       // zero count
		`<visited>a:1 x AAAAAAAAAAE</visited>`,       // bad count
		`<visited>a:1 2 zz</visited>`,                // bad fingerprint
		`<visited>a:1 2 AAAAAAAAAAE extra</visited>`, // too many fields
		`<visited b="x">a:1 AAAAAAAAAAE</visited>`,   // bad budget
	} {
		if _, err := UnmarshalVisited(xmltree.MustParse(src)); err == nil {
			t.Errorf("no error for %s", src)
		}
	}
}

// TestVisitedCloneIsDeep: plans are cloned for oracles and retries; the
// clone's memory must not share records with the original.
func TestVisitedCloneIsDeep(t *testing.T) {
	p := visitedTestPlan()
	p.VisitedMemory().Mark("a:1", 1)
	cp := p.Clone()
	cp.Visited.Mark("a:1", 2)
	cp.Visited.Mark("b:1", 3)
	orig, _ := p.Visited.Lookup("a:1")
	if orig.Count != 1 || orig.Fingerprint != 1 {
		t.Fatalf("clone mutated the original: %+v", orig)
	}
	if p.Visited.Len() != 1 {
		t.Fatalf("clone leaked records into the original: %v", p.Visited.Servers())
	}
}

// TestUnmarshalVisitedRejectsGarbage: malformed sections fail loudly rather
// than decaying into empty memory (which would reopen livelocks).
func TestUnmarshalVisitedRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		`<visited><v n="1"/></visited>`,              // no server
		`<visited><v s="a:1" n="x"/></visited>`,      // bad count
		`<visited><v s="a:1" n="0"/></visited>`,      // zero count
		`<visited><v s="a:1" n="-1000"/></visited>`,  // negative count defeats the budget
		`<visited><v s="a:1" fp="zz"/></visited>`,    // bad fingerprint
		`<visited budget="x"><v s="a:1"/></visited>`, // bad budget
		`<visited><a u="urn:L:USA"/></visited>`,      // answered record, no server
		`<visited><a s="a:1"/></visited>`,            // answered record, no area
	} {
		if _, err := UnmarshalVisited(xmltree.MustParse(src)); err == nil {
			t.Errorf("no error for %s", src)
		}
	}
	if _, err := UnmarshalVisited(xmltree.Elem("other")); err == nil {
		t.Error("wrong element name accepted")
	}
}

// TestUnmarshalVisitedBudgetEdge: a budget attr that parses to zero or a
// negative number means "no override" — the record decodes with Budget 0 so
// the router falls back to its default, instead of treating the plan as
// "never revisit" (which stranded plans whose client zeroed the knob).
// Regression for the revisit-budget edge fixed alongside learned routing.
func TestUnmarshalVisitedBudgetEdge(t *testing.T) {
	for _, src := range []string{
		`<visited budget="0"><v s="a:1"/></visited>`,
		`<visited budget="-9"><v s="a:1"/></visited>`,
		`<visited b="0"><v s="a:1"/></visited>`,
		`<visited b="-3"><v s="a:1"/></visited>`,
	} {
		v, err := UnmarshalVisited(xmltree.MustParse(src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if v.Budget != 0 {
			t.Errorf("%s: Budget = %d, want 0 (router default applies)", src, v.Budget)
		}
		// Round trip: Budget 0 must not re-emit a budget attr at all.
		if got := v.Marshal().AttrDefault("b", ""); got != "" {
			t.Errorf("%s: re-marshal emitted b=%q, want no attr", src, got)
		}
	}
	// A positive attr still round-trips exactly.
	v, err := UnmarshalVisited(xmltree.MustParse(`<visited b="7"><v s="a:1"/></visited>`))
	if err != nil {
		t.Fatal(err)
	}
	if v.Budget != 7 {
		t.Fatalf("Budget = %d, want 7", v.Budget)
	}
	if got := v.Marshal().AttrDefault("b", ""); got != "7" {
		t.Fatalf("re-marshal b=%q, want 7", got)
	}
}

// TestVisitedAnsweredRoundTrip: answered-area records survive the wire, sort
// deterministically, and leave the plan fingerprint untouched (they live in
// the <visited> section, outside the fingerprinted root tree).
func TestVisitedAnsweredRoundTrip(t *testing.T) {
	p := visitedTestPlan()
	fpBefore := Fingerprint(p.Root)
	v := p.VisitedMemory()
	v.Mark("idx-OR:9020", 42)
	v.MarkAnswered("s2:9020", "urn:L:USA/OR")
	v.MarkAnswered("s1:9020", "urn:L:USA/WA")
	v.MarkAnswered("s1:9020", "urn:M:Furniture")
	v.MarkAnswered("s1:9020", "urn:M:Furniture") // duplicate is a no-op
	if got := Fingerprint(p.Root); got != fpBefore {
		t.Fatalf("answered records perturbed the root fingerprint: %x != %x", got, fpBefore)
	}
	if v.AnsweredLen() != 3 {
		t.Fatalf("AnsweredLen = %d, want 3", v.AnsweredLen())
	}

	rt, err := Unmarshal(Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Visited == nil {
		t.Fatal("visited section lost")
	}
	got := rt.Visited.Answered()
	want := []AnsweredArea{
		{Server: "s1:9020", URN: "urn:L:USA/WA"},
		{Server: "s1:9020", URN: "urn:M:Furniture"},
		{Server: "s2:9020", URN: "urn:L:USA/OR"},
	}
	if len(got) != len(want) {
		t.Fatalf("answered = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answered[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !rt.Visited.IsAnswered("s1:9020", "urn:M:Furniture") {
		t.Fatal("IsAnswered lost a pair on the wire")
	}
	// The packed visit record rides alongside untouched.
	if r, ok := rt.Visited.Lookup("idx-OR:9020"); !ok || r.Fingerprint != 42 {
		t.Fatalf("visit record lost alongside answered records: %+v ok=%v", r, ok)
	}

	// Answered-only memory (no visits, no budget) still travels: it is the
	// resubmission exclusion state.
	p2 := visitedTestPlan()
	p2.VisitedMemory().MarkAnswered("s1:9020", "urn:L:USA")
	rt2, err := Unmarshal(Marshal(p2))
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Visited == nil || !rt2.Visited.IsAnswered("s1:9020", "urn:L:USA") {
		t.Fatal("answered-only visited memory lost on the wire")
	}

	// Removal helpers invalidate the cached element.
	rt2.Visited.RemoveAnswered("s1:9020", "urn:L:USA")
	if rt2.Visited.AnsweredLen() != 0 {
		t.Fatal("RemoveAnswered left the pair")
	}
	if len(rt2.Visited.Marshal().ChildrenNamed("a")) != 0 {
		t.Fatal("stale cached element re-emitted removed answered records")
	}
}
