package algebra

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/xmltree"
)

// Visited-server memory: the plan-carried routing state that makes mutant
// query plans self-routing without livelocks. Each record remembers how many
// times a server has processed the plan and the plan fingerprint as of that
// server's most recent visit, so a router can tell a productive revisit (the
// plan mutated since the server last saw it) from pure ping-pong (nothing
// changed — forwarding back is guaranteed wasted work).
//
// The memory travels on the wire as a compact <visited> section of the
// <mqp> document, alongside <provenance>:
//
//	<visited budget="3">
//	  <v fp="1a2b3c4d5e6f7081" n="2" s="meta:9020"/>
//	</visited>
//
// Interpretation of the records (filtering, budgets, partial results) lives
// in internal/route; this file only carries the state.

// AnnotPartial marks a result plan as an explicit partial result: the plan
// could no longer travel productively, so a server returned what was already
// reduced instead of bouncing the plan into a depth guard. Partial results
// are sub-multisets of the complete answer.
const AnnotPartial = "partial"

// PartialResult reports whether the plan is flagged as a partial result.
func (p *Plan) PartialResult() bool {
	v, _ := p.Root.Annotation(AnnotPartial)
	return v == "true"
}

// MarkPartialResult flags the plan as a partial result.
func (p *Plan) MarkPartialResult() { p.Root.Annotate(AnnotPartial, "true") }

// AnnotPartialReason says why a partial result was emitted instead of a
// complete one: "exhausted" (routing ran out of productive hops), "admission"
// (a peer's frame queue rejected the plan under overload), "canceled" (the
// submission's context expired mid-processing) or "shutdown" (the serving
// peer drained its queue while closing). Absent on pre-runtime partials.
const AnnotPartialReason = "partial-reason"

// SetPartialReason records why the plan came back partial.
func (p *Plan) SetPartialReason(reason string) { p.Root.Annotate(AnnotPartialReason, reason) }

// PartialReason returns the recorded reason, or "" when none was set.
func (p *Plan) PartialReason() string {
	v, _ := p.Root.Annotation(AnnotPartialReason)
	return v
}

// AnsweredArea is one (server, area URN) pair in the answered-area records
// a partial result carries back to the client: the named server already
// contributed its data for that resource area, so a resubmission may skip
// it. Pairs ride in the <visited> section as <a s="server" u="urn"/>
// children — outside the fingerprinted root tree, so extending them never
// perturbs routing fingerprints.
type AnsweredArea struct {
	Server string
	URN    string
}

// VisitRecord is one server's entry in the visited memory.
type VisitRecord struct {
	Server string
	// Count is how many times the server has processed the plan.
	Count int
	// Fingerprint is the plan-root fingerprint as of the server's most
	// recent visit (see Fingerprint).
	Fingerprint uint64
}

// Visited is a plan's visited-server memory. The zero value is not usable;
// construct with NewVisited (or Plan.VisitedMemory).
type Visited struct {
	// Budget, when positive, overrides the router's default revisit budget
	// for this plan: the number of revisits a server may receive beyond its
	// first visit.
	Budget  int
	records map[string]*VisitRecord
	// answered maps server → set of area URNs the server has already
	// contributed to a partial result (resubmission exclusion records).
	answered map[string]map[string]bool
	// elem caches the marshaled <visited> element, frozen so every hop that
	// serializes the plan between mutations aliases it. Invalidated by Mark
	// and MarkAnswered; elemBudget guards against direct writes to the
	// exported Budget field.
	elem       *xmltree.Node
	elemBudget int
}

// NewVisited creates an empty visited memory.
func NewVisited() *Visited {
	return &Visited{records: map[string]*VisitRecord{}}
}

// VisitedMemory returns the plan's visited-server memory, creating it on
// first use.
func (p *Plan) VisitedMemory() *Visited {
	if p.Visited == nil {
		p.Visited = NewVisited()
	}
	return p.Visited
}

// Lookup returns the record for a server and whether it exists.
func (v *Visited) Lookup(server string) (VisitRecord, bool) {
	r, ok := v.records[server]
	if !ok {
		return VisitRecord{}, false
	}
	return *r, true
}

// Len returns the number of servers remembered.
func (v *Visited) Len() int { return len(v.records) }

// Servers returns the remembered servers, sorted.
func (v *Visited) Servers() []string {
	out := make([]string, 0, len(v.records))
	for s := range v.records {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Mark records one visit by the server, updating its fingerprint to the
// plan's current state.
func (v *Visited) Mark(server string, fp uint64) {
	r, ok := v.records[server]
	if !ok {
		r = &VisitRecord{Server: server}
		v.records[server] = r
	}
	r.Count++
	r.Fingerprint = fp
	v.elem = nil
}

// MarkAnswered records that server already contributed its data for the
// area named by urn, so a resubmission of this plan may exclude the pair.
func (v *Visited) MarkAnswered(server, urn string) {
	if server == "" || urn == "" {
		return
	}
	if v.answered == nil {
		v.answered = map[string]map[string]bool{}
	}
	set := v.answered[server]
	if set == nil {
		set = map[string]bool{}
		v.answered[server] = set
	}
	if !set[urn] {
		set[urn] = true
		v.elem = nil
	}
}

// IsAnswered reports whether the (server, urn) pair is recorded as answered.
func (v *Visited) IsAnswered(server, urn string) bool {
	return v.answered[server][urn]
}

// AnsweredLen returns the number of answered-area pairs recorded.
func (v *Visited) AnsweredLen() int {
	n := 0
	for _, set := range v.answered {
		n += len(set)
	}
	return n
}

// Answered returns the answered-area pairs, sorted by server then URN.
func (v *Visited) Answered() []AnsweredArea {
	if len(v.answered) == 0 {
		return nil
	}
	out := make([]AnsweredArea, 0, v.AnsweredLen())
	for s, set := range v.answered {
		for u := range set {
			out = append(out, AnsweredArea{Server: s, URN: u})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Server != out[j].Server {
			return out[i].Server < out[j].Server
		}
		return out[i].URN < out[j].URN
	})
	return out
}

// RemoveAnswered drops one answered-area pair, if recorded.
func (v *Visited) RemoveAnswered(server, urn string) {
	set := v.answered[server]
	if set == nil || !set[urn] {
		return
	}
	delete(set, urn)
	if len(set) == 0 {
		delete(v.answered, server)
	}
	v.elem = nil
}

// RemoveAnsweredServer drops every answered-area pair for a server.
func (v *Visited) RemoveAnsweredServer(server string) {
	if _, ok := v.answered[server]; !ok {
		return
	}
	delete(v.answered, server)
	v.elem = nil
}

// ClearAnswered drops all answered-area pairs.
func (v *Visited) ClearAnswered() {
	if len(v.answered) == 0 {
		return
	}
	v.answered = nil
	v.elem = nil
}

// Clone deep-copies the memory.
func (v *Visited) Clone() *Visited {
	if v == nil {
		return nil
	}
	cp := &Visited{Budget: v.Budget, records: make(map[string]*VisitRecord, len(v.records)),
		elem: v.elem, elemBudget: v.elemBudget}
	for s, r := range v.records {
		rc := *r
		cp.records[s] = &rc
	}
	if len(v.answered) > 0 {
		cp.answered = make(map[string]map[string]bool, len(v.answered))
		for s, set := range v.answered {
			sc := make(map[string]bool, len(set))
			for u := range set {
				sc[u] = true
			}
			cp.answered[s] = sc
		}
	}
	return cp
}

// Marshal renders the memory as its frozen <visited> element. The element is
// cached until the next Mark, so serializing a plan on every fallback
// candidate (or measuring it) reuses the same immutable subtree.
//
// Wire form (compact, since the zero-copy decode PR): one text run packing
// every record, fingerprints in unpadded base64url —
//
//	<visited b="3">meta:9020 2 FnYrjV5vcIE;s1:9020 Cg4iPbzW_yQ</visited>
//
// Records are ';'-separated; fields are server, optional decimal count
// (omitted when 1, the overwhelmingly common case), and fingerprint. A
// server name that would collide with the separators falls back to the
// legacy per-record element form (<v fp=... n=... s=.../>), which
// UnmarshalVisited accepts alongside the compact one.
func (v *Visited) Marshal() *xmltree.Node {
	if v.elem != nil && v.elemBudget == v.Budget {
		return v.elem
	}
	e := xmltree.Elem(visitedElem)
	if v.Budget > 0 {
		e.SetAttr("b", strconv.Itoa(v.Budget))
	}
	servers := v.Servers()
	compact := true
	for _, s := range servers {
		// The packed form splits records on ';' and fields on Unicode
		// whitespace (strings.Fields), so any name containing either must
		// take the legacy element form to round-trip.
		if s == "" || strings.ContainsRune(s, ';') ||
			strings.IndexFunc(s, unicode.IsSpace) >= 0 {
			compact = false
			break
		}
	}
	if compact {
		if len(servers) > 0 {
			var sb strings.Builder
			var fp [8]byte
			for i, s := range servers {
				r := v.records[s]
				if i > 0 {
					sb.WriteByte(';')
				}
				sb.WriteString(r.Server)
				if r.Count != 1 {
					sb.WriteByte(' ')
					sb.WriteString(strconv.Itoa(r.Count))
				}
				sb.WriteByte(' ')
				binary.BigEndian.PutUint64(fp[:], r.Fingerprint)
				sb.WriteString(base64.RawURLEncoding.EncodeToString(fp[:]))
			}
			e.Add(xmltree.TextNode(sb.String()))
		}
	} else {
		for _, s := range servers {
			r := v.records[s]
			e.Add(xmltree.ElemAttrs("v",
				xmltree.Attr{Name: "s", Value: r.Server},
				xmltree.Attr{Name: "n", Value: strconv.Itoa(r.Count)},
				xmltree.Attr{Name: "fp", Value: strconv.FormatUint(r.Fingerprint, 16)},
			))
		}
	}
	for _, aa := range v.Answered() {
		e.Add(xmltree.ElemAttrs("a",
			xmltree.Attr{Name: "s", Value: aa.Server},
			xmltree.Attr{Name: "u", Value: aa.URN},
		))
	}
	v.elem = e.Freeze()
	v.elemBudget = v.Budget
	return v.elem
}

// visitedElem is the element name of the visited section in <mqp> documents.
const visitedElem = "visited"

// UnmarshalVisited parses a <visited> section: the compact text form
// Marshal emits, or the legacy element-per-record form (older wire corpora,
// exotic server names).
func UnmarshalVisited(e *xmltree.Node) (*Visited, error) {
	if e.Name != visitedElem {
		return nil, fmt.Errorf("algebra: expected <%s>, got <%s>", visitedElem, e.Name)
	}
	v := NewVisited()
	b := e.AttrDefault("b", "")
	if b == "" {
		b = e.AttrDefault("budget", "")
	}
	if b != "" {
		n, err := strconv.Atoi(b)
		if err != nil {
			return nil, fmt.Errorf("algebra: bad visited budget %q", b)
		}
		// A budget attr that parses to <=0 means "no override", not "never
		// revisit": leave Budget at zero so the router's default applies
		// (route.DefaultRevisitBudget). Treating 0 or a negative as a hard
		// zero would make every revisit unproductive and strand the plan.
		if n > 0 {
			v.Budget = n
		}
	}
	for _, ae := range e.ChildrenNamed("a") {
		server := ae.AttrDefault("s", "")
		urn := ae.AttrDefault("u", "")
		if server == "" || urn == "" {
			return nil, fmt.Errorf("algebra: <a> answered record missing server or area")
		}
		v.MarkAnswered(server, urn)
	}
	for _, ve := range e.ChildrenNamed("v") {
		server := ve.AttrDefault("s", "")
		if server == "" {
			return nil, fmt.Errorf("algebra: <v> without server")
		}
		// A non-positive count would defeat the revisit bound the records
		// exist to enforce; reject it like any other malformed section.
		n, err := strconv.Atoi(ve.AttrDefault("n", "1"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("algebra: bad visit count %q for %s", ve.AttrDefault("n", "1"), server)
		}
		fp, err := strconv.ParseUint(ve.AttrDefault("fp", "0"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("algebra: bad fingerprint for %s: %w", server, err)
		}
		v.records[server] = &VisitRecord{Server: server, Count: n, Fingerprint: fp}
	}
	packed := strings.TrimSpace(e.InnerText())
	if packed == "" {
		return v, nil
	}
	for _, rec := range strings.Split(packed, ";") {
		fields := strings.Fields(rec)
		var server, countStr, fpStr string
		switch len(fields) {
		case 2:
			server, countStr, fpStr = fields[0], "1", fields[1]
		case 3:
			server, countStr, fpStr = fields[0], fields[1], fields[2]
		default:
			return nil, fmt.Errorf("algebra: bad visited record %q", rec)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("algebra: bad visit count %q for %s", countStr, server)
		}
		raw, err := base64.RawURLEncoding.DecodeString(fpStr)
		if err != nil || len(raw) != 8 {
			return nil, fmt.Errorf("algebra: bad fingerprint %q for %s", fpStr, server)
		}
		v.records[server] = &VisitRecord{
			Server: server, Count: n, Fingerprint: binary.BigEndian.Uint64(raw),
		}
	}
	return v, nil
}

// Fingerprint digests the operator tree's routing-relevant state: kinds,
// resource names, predicates, operator parameters, annotations, and data
// payload shapes. Two fingerprints are equal exactly when no server has
// mutated the plan in between — bind, fetch, reduce, rewrite and annotate
// all change it, while sections outside the root (provenance, the visited
// memory itself) do not, so a mere forward leaves it untouched.
//
// The digest is computed from the same representation the wire format
// carries, so it is stable across a Marshal/Unmarshal round trip — the
// property that lets a server compare its recorded fingerprint against a
// plan that has hopped through other servers since.
func Fingerprint(n *Node) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(i int) {
		v := uint64(i)
		for b := 0; b < 8; b++ {
			buf[b] = byte(v >> (8 * b))
		}
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(len(s))
		h.Write([]byte(s))
	}
	var walk func(m *Node)
	walk = func(m *Node) {
		writeInt(int(m.Kind))
		writeStr(m.URL)
		writeStr(m.PathExp)
		writeStr(m.URN)
		if m.Pred != nil {
			writeStr(m.Pred.String())
		}
		writeStr(joinFields(m.Fields))
		writeStr(m.As)
		writeStr(m.LeftKey)
		writeStr(m.RightKey)
		writeStr(m.LeftName)
		writeStr(m.RightName)
		writeInt(m.N)
		writeStr(m.OrderBy)
		if m.Desc {
			writeInt(1)
		} else {
			writeInt(0)
		}
		if len(m.Annotations) > 0 {
			keys := make([]string, 0, len(m.Annotations))
			for k := range m.Annotations {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				writeStr(k)
				writeStr(m.Annotations[k])
			}
		}
		writeInt(len(m.Docs))
		for _, d := range m.Docs {
			// ByteSize is memoized (permanently for the frozen payloads in
			// flight), so digesting data payloads costs no serialization.
			writeInt(d.ByteSize())
		}
		writeInt(len(m.Children))
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return h.Sum64()
}
