package algebra

import (
	"fmt"

	"repro/internal/xmltree"
)

// Payload-by-reference wire sections. A blob-capable sender may replace a
// payload document under a <data> operator with a reference element
//
//	<blob fp="…"/>
//
// naming the payload's content fingerprint (internal/blobstore wire form),
// and marks the <mqp> root with blobs="1" so the receiver knows to resolve
// references — and, symmetrically, that the sender speaks the extension.
// An unmarked body is never interpreted: its <blob> elements, if any, are
// ordinary payload data. Correctness never depends on the optimization —
// a receiver that misses a fingerprint fetches the payload from the sender
// (the on-demand inline fallback), and a sender in doubt ships inline.

// BlobsAttr marks an <mqp> root whose sender speaks payload-by-reference;
// its <blob> payload children are references to be resolved.
const BlobsAttr = "blobs"

const (
	blobElem   = "blob"
	blobFPAttr = "fp"
)

// BlobRef builds a payload-reference element for a fingerprint wire form.
func BlobRef(fp string) *xmltree.Node {
	return xmltree.ElemAttrs(blobElem, xmltree.Attr{Name: blobFPAttr, Value: fp})
}

// IsBlobRef reports whether a payload element has the shape of a reference:
// a childless <blob> carrying an fp attribute. Payload data of this exact
// shape is ambiguous with the extension, so senders refuse to mark bodies
// containing it (see SubstituteBlobs) and it travels inline, uninterpreted.
func IsBlobRef(n *xmltree.Node) (string, bool) {
	if n == nil || n.Name != blobElem {
		return "", false
	}
	fp, ok := n.Attr(blobFPAttr)
	if !ok {
		return "", false
	}
	for _, c := range n.Children {
		if !c.IsText() {
			return "", false
		}
	}
	return fp, true
}

// Marked reports whether an <mqp> body is marked as speaking
// payload-by-reference.
func Marked(body *xmltree.Node) bool {
	return body != nil && body.AttrDefault(BlobsAttr, "") != ""
}

// SubstituteBlobs marks a freshly marshaled <mqp> staging tree as
// blob-capable and replaces payload documents under its <data> operators
// with <blob> references wherever sub approves one (returning the
// fingerprint wire form to send). The body must be the caller's own mutable
// staging tree (straight out of Marshal, not yet serialized or shared): the
// substitution rewrites it in place.
//
// If any payload document is itself shaped like a reference (IsBlobRef),
// the body is left completely untouched — unmarked, fully inline — and the
// call reports -1: marking it would make the receiver misread that payload.
// Otherwise the number of substituted payloads (possibly 0) is returned and
// the body is marked even when nothing was substituted, which is how
// receivers learn the sender's capability.
func SubstituteBlobs(body *xmltree.Node, sub func(doc *xmltree.Node) (string, bool)) int {
	if body == nil || body.Name != "mqp" {
		return -1
	}
	ambiguous := false
	walkDataPayloads(body, func(data *xmltree.Node, i int) {
		if _, isRef := IsBlobRef(data.Children[i]); isRef {
			ambiguous = true
		}
	})
	if ambiguous {
		return -1
	}
	n := 0
	walkDataPayloads(body, func(data *xmltree.Node, i int) {
		if fp, ok := sub(data.Children[i]); ok {
			data.Children[i] = BlobRef(fp)
			n++
		}
	})
	body.SetAttr(BlobsAttr, "1")
	return n
}

// walkDataPayloads visits every payload slot under the <data> operators of
// the body's <plan> and <original> sections: fn(data, i) addresses
// data.Children[i], a non-text, non-annotations child of a <data> element.
// The walk follows the operator grammar — it recurses through operator
// elements and stops at <data>, so payload content (arbitrary user XML,
// which may itself contain <data> or <blob> elements) is never descended
// into.
func walkDataPayloads(body *xmltree.Node, fn func(data *xmltree.Node, i int)) {
	var op func(e *xmltree.Node)
	op = func(e *xmltree.Node) {
		if e.Name == "data" {
			for i, c := range e.Children {
				if c.IsText() || c.Name == annotationsElem {
					continue
				}
				fn(e, i)
			}
			return
		}
		for _, c := range e.Children {
			if c.IsText() || c.Name == annotationsElem {
				continue
			}
			op(c)
		}
	}
	for _, sec := range body.Children {
		if sec.Name == "plan" || sec.Name == "original" {
			for _, c := range sec.Children {
				if !c.IsText() {
					op(c)
				}
			}
		}
	}
}

// ResolveBlobs returns a body with every <blob> payload reference replaced
// by the document resolve returns for its fingerprint, and (when intern is
// non-nil) every inline payload document replaced by intern's canonical
// alias for it. Bodies not marked with BlobsAttr pass through untouched —
// their <blob> elements are data.
//
// The input body is never mutated (it is typically a frozen decode);
// rebuilt spines are copy-on-write and untouched subtrees are aliased. A
// reference that is malformed (no resolvable payload shape), unknown to
// resolve, or mixed with inline content is an error: the message cannot be
// evaluated correctly without the bytes, so it must fail loudly rather than
// drop payloads.
func ResolveBlobs(body *xmltree.Node, resolve func(fp string) (*xmltree.Node, error),
	intern func(doc *xmltree.Node) *xmltree.Node) (*xmltree.Node, error) {
	if !Marked(body) {
		return body, nil
	}
	var opErr error
	var op func(e *xmltree.Node) *xmltree.Node
	op = func(e *xmltree.Node) *xmltree.Node {
		if opErr != nil {
			return e
		}
		if e.Name == "data" {
			var out *xmltree.Node // lazily created shallow copy
			for i, c := range e.Children {
				if c.IsText() || c.Name == annotationsElem {
					continue
				}
				repl := c
				if c.Name == blobElem {
					fpStr, ok := IsBlobRef(c)
					if !ok {
						fp, hasFP := c.Attr(blobFPAttr)
						if !hasFP {
							opErr = fmt.Errorf("algebra: <blob> reference without fp")
						} else {
							opErr = fmt.Errorf("algebra: <blob fp=%q> carries inline content: reference/inline conflict", fp)
						}
						return e
					}
					doc, err := resolve(fpStr)
					if err != nil {
						opErr = fmt.Errorf("algebra: blob %s: %w", fpStr, err)
						return e
					}
					repl = doc.Freeze()
				} else if intern != nil {
					repl = intern(c)
				}
				if repl != c {
					if out == nil {
						out = e.CloneShallow()
					}
					out.Children[i] = repl
				}
			}
			if out != nil {
				return out
			}
			return e
		}
		var out *xmltree.Node
		for i, c := range e.Children {
			if c.IsText() || c.Name == annotationsElem {
				continue
			}
			if r := op(c); r != c {
				if out == nil {
					out = e.CloneShallow()
				}
				out.Children[i] = r
			}
		}
		if out != nil {
			return out
		}
		return e
	}

	var root *xmltree.Node
	for si, sec := range body.Children {
		if sec.IsText() || (sec.Name != "plan" && sec.Name != "original") {
			continue
		}
		var secOut *xmltree.Node
		for i, c := range sec.Children {
			if c.IsText() {
				continue
			}
			if r := op(c); r != c {
				if secOut == nil {
					secOut = sec.CloneShallow()
				}
				secOut.Children[i] = r
			}
			if opErr != nil {
				return nil, opErr
			}
		}
		if secOut != nil {
			if root == nil {
				root = body.CloneShallow()
			}
			root.Children[si] = secOut
		}
	}
	if root != nil {
		return root, nil
	}
	return body, nil
}
