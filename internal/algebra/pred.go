// Package algebra defines the logical query algebra of mutant query plans:
// operator trees over XML item collections, a small predicate language, XML
// (de)serialization of plans — the paper's "XML serializations of algebraic
// query plan graphs" — and the rewrite rules the paper's optimizer relies
// on (push-select-through-union, or-choice, absorption).
package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Predicate is a boolean condition over one XML item. Predicates appear in
// Select operators and in join filters.
type Predicate interface {
	// Eval reports whether the item satisfies the predicate.
	Eval(item *xmltree.Node) bool
	// String renders the predicate in the parseable surface syntax.
	String() string
}

// CmpOp enumerates comparison operators of the predicate language.
type CmpOp int

// Comparison operators. Contains performs IR-style substring matching, the
// only query capability typical file-sharing systems offer (§1); the rest
// are the richer database-style comparisons the paper argues for.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "contains"
	default:
		return "?"
	}
}

// Cmp compares the item value at Path against a literal. When both sides
// parse as numbers the comparison is numeric, otherwise lexicographic
// (Contains is always textual).
type Cmp struct {
	Path  string
	Op    CmpOp
	Value string
}

// Eval implements Predicate.
func (c Cmp) Eval(item *xmltree.Node) bool {
	v := strings.TrimSpace(item.Value(c.Path))
	if c.Op == OpContains {
		return strings.Contains(strings.ToLower(v), strings.ToLower(c.Value))
	}
	ln, lerr := strconv.ParseFloat(v, 64)
	rn, rerr := strconv.ParseFloat(strings.TrimSpace(c.Value), 64)
	var cmp int
	if lerr == nil && rerr == nil {
		switch {
		case ln < rn:
			cmp = -1
		case ln > rn:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(v, c.Value)
	}
	switch c.Op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// String implements Predicate.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Path, c.Op, quoteLiteral(c.Value))
}

func quoteLiteral(v string) string {
	if v == "" {
		return "''"
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return v
	}
	return "'" + strings.ReplaceAll(v, "'", "\\'") + "'"
}

// Exists is true when the path matches at least one node in the item.
type Exists struct {
	Path string
}

// Eval implements Predicate.
func (e Exists) Eval(item *xmltree.Node) bool { return item.Find(e.Path) != nil }

// String implements Predicate.
func (e Exists) String() string { return "exists " + e.Path }

// And is predicate conjunction.
type And struct {
	L, R Predicate
}

// Eval implements Predicate.
func (a And) Eval(item *xmltree.Node) bool { return a.L.Eval(item) && a.R.Eval(item) }

// String implements Predicate.
func (a And) String() string { return "(" + a.L.String() + " and " + a.R.String() + ")" }

// OrPred is predicate disjunction (named to avoid clashing with the plan
// Or operator).
type OrPred struct {
	L, R Predicate
}

// Eval implements Predicate.
func (o OrPred) Eval(item *xmltree.Node) bool { return o.L.Eval(item) || o.R.Eval(item) }

// String implements Predicate.
func (o OrPred) String() string { return "(" + o.L.String() + " or " + o.R.String() + ")" }

// Not is predicate negation.
type Not struct {
	P Predicate
}

// Eval implements Predicate.
func (n Not) Eval(item *xmltree.Node) bool { return !n.P.Eval(item) }

// String implements Predicate.
func (n Not) String() string { return "not " + n.P.String() }

// True is the always-true predicate.
type True struct{}

// Eval implements Predicate.
func (True) Eval(*xmltree.Node) bool { return true }

// String implements Predicate.
func (True) String() string { return "true" }

// ParsePredicate parses the surface syntax used in serialized plans:
//
//	price < 10
//	name contains 'chair'
//	exists images
//	(price <= 10 and seller/city = 'Portland') or not sold = 'yes'
//	true
//
// Operator precedence: not > and > or. Comparisons take a path on the left
// and a (quoted string or numeric) literal on the right.
func ParsePredicate(s string) (Predicate, error) {
	p := &predParser{toks: lexPredicate(s)}
	pred, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("algebra: predicate %q: %w", s, err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("algebra: predicate %q: trailing input at %q", s, p.peek())
	}
	return pred, nil
}

// MustParsePredicate is ParsePredicate for fixtures; panics on error.
func MustParsePredicate(s string) Predicate {
	p, err := ParsePredicate(s)
	if err != nil {
		panic(err)
	}
	return p
}

func lexPredicate(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '\'':
			j := i + 1
			var b strings.Builder
			for j < len(s) && s[j] != '\'' {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				b.WriteByte(s[j])
				j++
			}
			toks = append(toks, "'"+b.String())
			i = j + 1
		case strings.ContainsRune("=<>!", rune(c)):
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n()=<>!", rune(s[j])) && s[j] != '\'' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

type predParser struct {
	toks []string
	pos  int
}

func (p *predParser) eof() bool { return p.pos >= len(p.toks) }

func (p *predParser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *predParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *predParser) parseOr() (Predicate, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = OrPred{L: l, R: r}
	}
	return l, nil
}

func (p *predParser) parseAnd() (Predicate, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "and") {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *predParser) parseUnary() (Predicate, error) {
	switch {
	case strings.EqualFold(p.peek(), "not"):
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{P: inner}, nil
	case p.peek() == "(":
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, fmt.Errorf("missing closing parenthesis")
		}
		p.next()
		return inner, nil
	case strings.EqualFold(p.peek(), "true"):
		p.next()
		return True{}, nil
	case strings.EqualFold(p.peek(), "exists"):
		p.next()
		path := p.next()
		if path == "" {
			return nil, fmt.Errorf("exists: missing path")
		}
		return Exists{Path: path}, nil
	default:
		return p.parseCmp()
	}
}

func (p *predParser) parseCmp() (Predicate, error) {
	path := p.next()
	if path == "" {
		return nil, fmt.Errorf("missing comparison path")
	}
	opTok := p.next()
	var op CmpOp
	switch strings.ToLower(opTok) {
	case "=", "==":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	case "contains":
		op = OpContains
	default:
		return nil, fmt.Errorf("unknown operator %q", opTok)
	}
	lit := p.next()
	if lit == "" {
		return nil, fmt.Errorf("missing literal after %q", opTok)
	}
	lit = strings.TrimPrefix(lit, "'")
	return Cmp{Path: path, Op: op, Value: lit}, nil
}
