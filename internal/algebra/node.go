package algebra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// Kind identifies an operator in a plan graph.
type Kind int

// Operator kinds. Data/URL/URN are the three leaf forms the paper allows
// inside a mutant query plan: verbatim XML data, resource locations, and
// abstract resource names. Or is the "conjoint union" operator of §4.2.
const (
	KindData Kind = iota
	KindURL
	KindURN
	KindSelect
	KindProject
	KindJoin
	KindUnion
	KindOr
	KindDifference
	KindCount
	KindTopN
	KindDisplay
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindURL:
		return "url"
	case KindURN:
		return "urn"
	case KindSelect:
		return "select"
	case KindProject:
		return "project"
	case KindJoin:
		return "join"
	case KindUnion:
		return "union"
	case KindOr:
		return "or"
	case KindDifference:
		return "difference"
	case KindCount:
		return "count"
	case KindTopN:
		return "topn"
	case KindDisplay:
		return "display"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one operator in a mutant query plan. Fields are used according to
// Kind; unused fields are zero. Nodes form trees (the paper permits DAGs; we
// copy shared subtrees on construction, which preserves semantics).
type Node struct {
	Kind Kind

	// Data leaves: verbatim XML items.
	Docs []*xmltree.Node

	// URL leaves: a resource location plus the provider's collection
	// identifier (an XPath expression per §3.2, e.g. /data[id=245]).
	URL     string
	PathExp string

	// URN leaves: an abstract resource name (§2), either an opaque named
	// collection (urn:ForSale:Portland-CDs) or an interest-area URN.
	URN string

	// Select.
	Pred Predicate

	// Project: paths of the fields to keep, and the name of the emitted
	// element wrapping them.
	Fields []string
	As     string

	// Join: item paths for the equi-join keys, and the element names given
	// to the left and right components of each joined tuple.
	LeftKey, RightKey   string
	LeftName, RightName string

	// TopN.
	N       int
	OrderBy string
	Desc    bool

	// Annotations: free-form key/value facts attached by servers as the
	// plan travels (§5.1): cardinalities, histograms, staleness bounds.
	Annotations map[string]string

	Children []*Node
}

// --- Constructors -----------------------------------------------------

// Data creates a verbatim-XML leaf holding the given items.
func Data(docs ...*xmltree.Node) *Node {
	return &Node{Kind: KindData, Docs: docs}
}

// URL creates a resource-location leaf. pathExp may be empty when the URL
// denotes a whole collection.
func URL(url, pathExp string) *Node {
	return &Node{Kind: KindURL, URL: url, PathExp: pathExp}
}

// URN creates an abstract-resource-name leaf.
func URN(urn string) *Node {
	return &Node{Kind: KindURN, URN: urn}
}

// Select creates a selection over its single input.
func Select(pred Predicate, in *Node) *Node {
	return &Node{Kind: KindSelect, Pred: pred, Children: []*Node{in}}
}

// Project creates a projection keeping the given field paths; each output
// item is wrapped in an element named as (default "item").
func Project(as string, fields []string, in *Node) *Node {
	if as == "" {
		as = "item"
	}
	return &Node{Kind: KindProject, As: as, Fields: fields, Children: []*Node{in}}
}

// Join creates an equi-join of two inputs on leftKey = rightKey. Joined
// tuples are elements with two children named leftName and rightName
// (defaults "l" and "r") holding the source items.
func Join(leftKey, rightKey string, left, right *Node) *Node {
	return &Node{
		Kind: KindJoin, LeftKey: leftKey, RightKey: rightKey,
		LeftName: "l", RightName: "r",
		Children: []*Node{left, right},
	}
}

// JoinNamed is Join with explicit names for the tuple components.
func JoinNamed(leftKey, rightKey, leftName, rightName string, left, right *Node) *Node {
	n := Join(leftKey, rightKey, left, right)
	n.LeftName, n.RightName = leftName, rightName
	return n
}

// Union creates a bag union of its inputs.
func Union(in ...*Node) *Node {
	return &Node{Kind: KindUnion, Children: in}
}

// Or creates the conjoint-union operator of §4.2: each child alternative
// holds the necessary data, so a server may rewrite A | B to either A or B.
func Or(alternatives ...*Node) *Node {
	return &Node{Kind: KindOr, Children: alternatives}
}

// Difference creates the set difference left − right (by canonical XML
// equality).
func Difference(left, right *Node) *Node {
	return &Node{Kind: KindDifference, Children: []*Node{left, right}}
}

// Count creates an aggregate producing a single <count>n</count> item.
func Count(in *Node) *Node {
	return &Node{Kind: KindCount, Children: []*Node{in}}
}

// TopN keeps the first n items ordered by the value at orderBy.
func TopN(n int, orderBy string, desc bool, in *Node) *Node {
	return &Node{Kind: KindTopN, N: n, OrderBy: orderBy, Desc: desc, Children: []*Node{in}}
}

// Display creates the plan root pseudo-operator; the plan's result is sent
// to the owning Plan's target address (§2).
func Display(in *Node) *Node {
	return &Node{Kind: KindDisplay, Children: []*Node{in}}
}

// --- Utilities ---------------------------------------------------------

// Annotate attaches a key/value annotation and returns the node.
func (n *Node) Annotate(key, value string) *Node {
	if n.Annotations == nil {
		n.Annotations = map[string]string{}
	}
	n.Annotations[key] = value
	return n
}

// Annotation returns the value for key and whether it is present.
func (n *Node) Annotation(key string) (string, bool) {
	v, ok := n.Annotations[key]
	return v, ok
}

// Clone returns a deep copy of the operator subtree. Data payloads are
// copy-on-write: frozen documents (anything that arrived off the wire or
// out of a peer's catalog) are aliased rather than deep-copied — they are
// immutable, so the copy is indistinguishable — while mutable documents are
// still cloned.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := *n
	if n.Docs != nil {
		cp.Docs = make([]*xmltree.Node, len(n.Docs))
		for i, d := range n.Docs {
			cp.Docs[i] = d.Share()
		}
	}
	if n.Fields != nil {
		cp.Fields = append([]string(nil), n.Fields...)
	}
	if n.Annotations != nil {
		cp.Annotations = make(map[string]string, len(n.Annotations))
		for k, v := range n.Annotations {
			cp.Annotations[k] = v
		}
	}
	if n.Children != nil {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return &cp
}

// Walk visits the subtree pre-order; returning false from fn prunes the
// descent below that node.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Leaves returns all leaf nodes (data, url, urn) of the subtree in document
// order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		switch m.Kind {
		case KindData, KindURL, KindURN:
			out = append(out, m)
		}
		return true
	})
	return out
}

// URNs returns the distinct URN strings appearing in the subtree, sorted.
func (n *Node) URNs() []string {
	seen := map[string]bool{}
	n.Walk(func(m *Node) bool {
		if m.Kind == KindURN {
			seen[m.URN] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// URLs returns the distinct URL strings appearing in the subtree, sorted.
func (n *Node) URLs() []string {
	seen := map[string]bool{}
	n.Walk(func(m *Node) bool {
		if m.Kind == KindURL {
			seen[m.URL] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// IsConstant reports whether the subtree is fully evaluated, i.e. consists
// of a single Data leaf (possibly under Display). A fully-evaluated MQP "has
// been reduced to a constant piece of XML-encoded data" (§2).
func (n *Node) IsConstant() bool {
	if n.Kind == KindDisplay && len(n.Children) == 1 {
		return n.Children[0].IsConstant()
	}
	return n.Kind == KindData
}

// Validate checks structural well-formedness of the subtree.
func (n *Node) Validate() error {
	if n == nil {
		return fmt.Errorf("algebra: nil node")
	}
	want := -1 // -1 means any number
	switch n.Kind {
	case KindData:
		want = 0
	case KindURL:
		if n.URL == "" {
			return fmt.Errorf("algebra: url node without location")
		}
		want = 0
	case KindURN:
		if n.URN == "" {
			return fmt.Errorf("algebra: urn node without name")
		}
		want = 0
	case KindSelect:
		if n.Pred == nil {
			return fmt.Errorf("algebra: select without predicate")
		}
		want = 1
	case KindProject:
		if len(n.Fields) == 0 {
			return fmt.Errorf("algebra: project without fields")
		}
		want = 1
	case KindJoin:
		if n.LeftKey == "" || n.RightKey == "" {
			return fmt.Errorf("algebra: join without keys")
		}
		want = 2
	case KindDifference:
		want = 2
	case KindUnion, KindOr:
		if len(n.Children) == 0 {
			return fmt.Errorf("algebra: %s with no children", n.Kind)
		}
	case KindCount:
		want = 1
	case KindTopN:
		if n.N <= 0 {
			return fmt.Errorf("algebra: topn with n=%d", n.N)
		}
		want = 1
	case KindDisplay:
		want = 1
	default:
		return fmt.Errorf("algebra: unknown kind %d", int(n.Kind))
	}
	if want >= 0 && len(n.Children) != want {
		return fmt.Errorf("algebra: %s expects %d children, has %d", n.Kind, want, len(n.Children))
	}
	for _, c := range n.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// String renders a compact single-line sketch of the subtree for logs and
// test failure messages.
func (n *Node) String() string {
	var b strings.Builder
	n.sketch(&b)
	return b.String()
}

func (n *Node) sketch(b *strings.Builder) {
	switch n.Kind {
	case KindData:
		fmt.Fprintf(b, "data(%d)", len(n.Docs))
	case KindURL:
		b.WriteString("url(" + n.URL + n.PathExp + ")")
	case KindURN:
		b.WriteString("urn(" + n.URN + ")")
	case KindSelect:
		b.WriteString("select[" + n.Pred.String() + "](")
		n.Children[0].sketch(b)
		b.WriteString(")")
	case KindProject:
		b.WriteString("project[" + strings.Join(n.Fields, ",") + "](")
		n.Children[0].sketch(b)
		b.WriteString(")")
	case KindJoin:
		fmt.Fprintf(b, "join[%s=%s](", n.LeftKey, n.RightKey)
		n.Children[0].sketch(b)
		b.WriteString(", ")
		n.Children[1].sketch(b)
		b.WriteString(")")
	case KindCount:
		b.WriteString("count(")
		n.Children[0].sketch(b)
		b.WriteString(")")
	case KindTopN:
		fmt.Fprintf(b, "topn[%d by %s](", n.N, n.OrderBy)
		n.Children[0].sketch(b)
		b.WriteString(")")
	case KindDisplay:
		b.WriteString("display(")
		n.Children[0].sketch(b)
		b.WriteString(")")
	default:
		b.WriteString(n.Kind.String() + "(")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.sketch(b)
		}
		b.WriteString(")")
	}
}

// Plan is a complete mutant query plan: the operator tree plus the target
// address the fully-evaluated result must be sent to, an identifier, an
// optional retained copy of the original query (§5.1), and opaque extra
// sections (e.g. provenance) that travel with the plan.
type Plan struct {
	ID       string
	Target   string
	Root     *Node
	Original *Node
	// Visited is the plan's visited-server memory (routing state carried on
	// the plan itself — see visited.go); nil until a router marks a visit.
	Visited *Visited
	// Extra sections are preserved verbatim through serialization; the mqp
	// package stores provenance here. Keys are element names.
	Extra map[string]*xmltree.Node
}

// NewPlan creates a plan with the given id, target and root operator.
func NewPlan(id, target string, root *Node) *Plan {
	return &Plan{ID: id, Target: target, Root: root}
}

// Clone copies the plan. The operator trees are deep-copied (processors
// mutate them in place), but all frozen XML freight — data payloads and
// extra sections like provenance — is aliased copy-on-write, so cloning an
// in-flight plan costs operator headers, not its documents.
func (p *Plan) Clone() *Plan {
	cp := &Plan{ID: p.ID, Target: p.Target, Root: p.Root.Clone(), Original: p.Original.Clone(),
		Visited: p.Visited.Clone()}
	if p.Extra != nil {
		cp.Extra = make(map[string]*xmltree.Node, len(p.Extra))
		for k, v := range p.Extra {
			cp.Extra[k] = v.Share()
		}
	}
	return cp
}

// RetainOriginal stores a copy of the current root as the plan's original
// query, enabling binding improvement and provenance checks (§5.1). Like
// Clone, the copy is lazy about payloads: frozen documents are aliased, so
// retaining the original of a data-heavy plan is cheap.
func (p *Plan) RetainOriginal() {
	p.Original = p.Root.Clone()
}

// Validate checks the plan and its operator tree.
func (p *Plan) Validate() error {
	if p.Target == "" {
		return fmt.Errorf("algebra: plan %q has no target", p.ID)
	}
	if p.Root == nil {
		return fmt.Errorf("algebra: plan %q has no root", p.ID)
	}
	return p.Root.Validate()
}

// IsConstant reports whether the plan is fully evaluated.
func (p *Plan) IsConstant() bool { return p.Root.IsConstant() }

// Results returns the plan's items when it is fully evaluated.
func (p *Plan) Results() ([]*xmltree.Node, error) {
	root := p.Root
	if root.Kind == KindDisplay && len(root.Children) == 1 {
		root = root.Children[0]
	}
	if root.Kind != KindData {
		return nil, fmt.Errorf("algebra: plan %q is not fully evaluated", p.ID)
	}
	return root.Docs, nil
}
