package algebra

import (
	"fmt"
	"strconv"
	"strings"
)

// Well-known annotation keys (§5.1, §4.3). Annotations accumulate on plan
// nodes as the MQP travels: statistics a server chose to publish instead of
// evaluating, and staleness bounds on Or alternatives.
const (
	// AnnotCard is an estimated or exact cardinality for the subtree.
	AnnotCard = "card"
	// AnnotDistinct is the distinct-value count of a named key column,
	// encoded "path:count".
	AnnotDistinct = "distinct"
	// AnnotHistogram is an equi-width histogram, encoded by internal/stats.
	AnnotHistogram = "histogram"
	// AnnotStaleness is the maximum staleness, in minutes, of the data an
	// alternative yields (the {30} delay factor of §4.3).
	AnnotStaleness = "staleness"
	// AnnotSource records which server contributed a bound or reduced
	// subtree; provenance uses it for spoof checks.
	AnnotSource = "source"
	// AnnotArea records the registered interest area (URN form) of the
	// collection behind a bound URL leaf; materialization carries it onto
	// the data so a partial result can name exactly which (server, area)
	// pairs are already answered. Stripped from plans that did not opt into
	// resubmission (route.MarkResubmittable), so their wire bytes are
	// unchanged.
	AnnotArea = "area"
)

// Card returns the node's cardinality annotation, or -1 when absent or
// malformed.
func (n *Node) Card() int {
	v, ok := n.Annotation(AnnotCard)
	if !ok {
		return -1
	}
	c, err := strconv.Atoi(v)
	if err != nil {
		return -1
	}
	return c
}

// SetCard annotates the node with a cardinality.
func (n *Node) SetCard(c int) *Node {
	return n.Annotate(AnnotCard, strconv.Itoa(c))
}

// Staleness returns the node's staleness bound in minutes (0 = current),
// or -1 when no bound is recorded.
func (n *Node) Staleness() int {
	v, ok := n.Annotation(AnnotStaleness)
	if !ok {
		return -1
	}
	s, err := strconv.Atoi(v)
	if err != nil {
		return -1
	}
	return s
}

// SetStaleness annotates an alternative with its delay factor in minutes.
func (n *Node) SetStaleness(minutes int) *Node {
	return n.Annotate(AnnotStaleness, strconv.Itoa(minutes))
}

// PushSelectThroughUnion rewrites select(p, union(c1..cn)) into
// union(select(p,c1)..select(p,cn)) everywhere in the tree — the rewrite a
// server applies in paper Fig. 4(a) before routing per-seller sub-plans. It
// also pushes selections through Or the same way (each alternative must
// independently satisfy the query). Returns the number of rewrites applied.
func PushSelectThroughUnion(n *Node) int {
	count := 0
	var visit func(m *Node)
	visit = func(m *Node) {
		for i, c := range m.Children {
			if c.Kind == KindSelect && len(c.Children) == 1 &&
				(c.Children[0].Kind == KindUnion || c.Children[0].Kind == KindOr) {
				u := c.Children[0]
				newKids := make([]*Node, len(u.Children))
				for j, uc := range u.Children {
					sel := Select(c.Pred, uc)
					newKids[j] = sel
				}
				repl := &Node{Kind: u.Kind, Children: newKids, Annotations: u.Annotations}
				m.Children[i] = repl
				count++
			}
		}
		for _, c := range m.Children {
			visit(c)
		}
	}
	// Handle a select at the root of the subtree by wrapping.
	wrapper := &Node{Children: []*Node{n}}
	visit(wrapper)
	return count
}

// FlattenUnions collapses nested unions (union(union(a,b),c) → union(a,b,c))
// and nested ors similarly, in place. Returns the number of flattenings.
func FlattenUnions(n *Node) int {
	count := 0
	var visit func(m *Node)
	visit = func(m *Node) {
		if m.Kind == KindUnion || m.Kind == KindOr {
			var flat []*Node
			changed := false
			for _, c := range m.Children {
				if c.Kind == m.Kind {
					flat = append(flat, c.Children...)
					changed = true
				} else {
					flat = append(flat, c)
				}
			}
			if changed {
				m.Children = flat
				count++
				visit(m) // may enable further flattening
				return
			}
		}
		for _, c := range m.Children {
			visit(c)
		}
	}
	visit(n)
	return count
}

// OrChoice selects one alternative of every Or node using pick, applying the
// paper's rewrite rules A | B → A and A | B → B. pick receives the
// alternatives and returns the index to keep; an out-of-range return keeps
// the Or unchanged. Returns the number of Or nodes resolved.
func OrChoice(n *Node, pick func(alts []*Node) int) int {
	count := 0
	var visit func(m *Node)
	visit = func(m *Node) {
		for i, c := range m.Children {
			if c.Kind == KindOr {
				idx := pick(c.Children)
				if idx >= 0 && idx < len(c.Children) {
					m.Children[i] = c.Children[idx]
					count++
				}
			}
		}
		for _, c := range m.Children {
			visit(c)
		}
	}
	wrapper := &Node{Children: []*Node{n}}
	visit(wrapper)
	return count
}

// PickFewestSites is an OrChoice policy preferring the alternative touching
// the fewest distinct servers (URLs + URNs); ties break toward the first.
func PickFewestSites(alts []*Node) int {
	best, bestSites := -1, int(^uint(0)>>1)
	for i, a := range alts {
		sites := len(a.URLs()) + len(a.URNs())
		if sites < bestSites {
			best, bestSites = i, sites
		}
	}
	return best
}

// PickMostCurrent is an OrChoice policy preferring the alternative with the
// smallest staleness bound (missing bounds are treated as current, per the
// paper's default of exact replication). Ties break toward fewer sites.
func PickMostCurrent(alts []*Node) int {
	best, bestStale, bestSites := -1, int(^uint(0)>>1), int(^uint(0)>>1)
	for i, a := range alts {
		st := a.Staleness()
		if st < 0 {
			st = 0
		}
		sites := len(a.URLs()) + len(a.URNs())
		if st < bestStale || (st == bestStale && sites < bestSites) {
			best, bestStale, bestSites = i, st, sites
		}
	}
	return best
}

// DistributeDifference applies the §4.2 Example 3 transformation
//
//	E − (R ∪ S)  →  (E − S) − R
//
// so that the subtraction against a locally-available S can be evaluated
// first, shrinking the partial result before it travels on. isLocal decides
// which union branches to subtract first. The rewrite applies to every
// Difference node whose right child is a Union; it is always sound under
// set semantics. Returns the number of rewrites.
func DistributeDifference(n *Node, isLocal func(*Node) bool) int {
	count := 0
	var visit func(m *Node)
	visit = func(m *Node) {
		for i, c := range m.Children {
			if c.Kind == KindDifference && len(c.Children) == 2 && c.Children[1].Kind == KindUnion {
				u := c.Children[1]
				var local, remote []*Node
				for _, branch := range u.Children {
					if isLocal(branch) {
						local = append(local, branch)
					} else {
						remote = append(remote, branch)
					}
				}
				if len(local) == 0 || len(remote) == 0 {
					continue
				}
				cur := c.Children[0]
				for _, b := range local {
					cur = Difference(cur, b)
				}
				var rest *Node
				if len(remote) == 1 {
					rest = remote[0]
				} else {
					rest = Union(remote...)
				}
				m.Children[i] = Difference(cur, rest)
				count++
			}
		}
		for _, c := range m.Children {
			visit(c)
		}
	}
	wrapper := &Node{Children: []*Node{n}}
	visit(wrapper)
	return count
}

// AbsorbJoin applies the paper's absorption rewrite
//
//	(A ⋈ X) ⋈ B  →  (A ⋈ B) ⋈ X
//
// to the canonical plan shape where the inner join's left component (A) and
// the outer right input (B) are both locally available while X is not, and
// the outer join key addresses the A component of the inner tuples (a path
// of the form "<leftname>/k"). When |A ⋈ B| ≪ |A| this lets a server reduce
// the local pair first and ship a much smaller partial result (§2).
//
// The returned tree names the new inner tuple components after the original
// A component and "b"; the outer join rebinds X with the original inner
// key prefixed by the A component name. Output tuples therefore nest
// differently from the original plan ((a,b),x vs (a,x),b) but contain the
// same item combinations; follow with a Project to normalize shape if
// required. Returns nil when the shape does not match.
func AbsorbJoin(outer *Node) (*Node, error) {
	if outer.Kind != KindJoin || len(outer.Children) != 2 {
		return nil, fmt.Errorf("algebra: absorb: outer is not a binary join")
	}
	inner, b := outer.Children[0], outer.Children[1]
	if inner.Kind != KindJoin || len(inner.Children) != 2 {
		return nil, fmt.Errorf("algebra: absorb: left input is not a join")
	}
	prefix := inner.LeftName + "/"
	if !strings.HasPrefix(outer.LeftKey, prefix) {
		return nil, fmt.Errorf("algebra: absorb: outer key %q does not address the %q component", outer.LeftKey, inner.LeftName)
	}
	aKey := strings.TrimPrefix(outer.LeftKey, prefix)
	a, x := inner.Children[0], inner.Children[1]

	newInner := JoinNamed(aKey, outer.RightKey, inner.LeftName, outer.RightName, a.Clone(), b.Clone())
	newOuter := JoinNamed(prefix+inner.LeftKey, inner.RightKey, "ab", inner.RightName, newInner, x.Clone())
	return newOuter, nil
}

// EstimateCard returns a coarse cardinality estimate for a subtree using
// available annotations and data leaves; unknown inputs yield -1. The MQP
// optimizer uses it to order candidate sub-plans and the policy manager to
// decline oversized evaluations (§5.1).
func EstimateCard(n *Node) int {
	if c := n.Card(); c >= 0 {
		return c
	}
	switch n.Kind {
	case KindData:
		return len(n.Docs)
	case KindURL, KindURN:
		return -1
	case KindSelect:
		c := EstimateCard(n.Children[0])
		if c < 0 {
			return -1
		}
		// Default selectivity 1/3, per classic System R style guesses.
		return (c + 2) / 3
	case KindProject, KindTopN:
		c := EstimateCard(n.Children[0])
		if n.Kind == KindTopN && c >= 0 && c > n.N {
			return n.N
		}
		return c
	case KindCount:
		return 1
	case KindUnion, KindOr:
		total := 0
		for _, c := range n.Children {
			cc := EstimateCard(c)
			if cc < 0 {
				return -1
			}
			if n.Kind == KindOr {
				// Alternatives hold the same data; size is any branch's.
				return cc
			}
			total += cc
		}
		return total
	case KindJoin:
		l, r := EstimateCard(n.Children[0]), EstimateCard(n.Children[1])
		if l < 0 || r < 0 {
			return -1
		}
		// Assume keys: output bounded by the larger input.
		if l > r {
			return l
		}
		return r
	case KindDifference:
		return EstimateCard(n.Children[0])
	case KindDisplay:
		return EstimateCard(n.Children[0])
	}
	return -1
}
