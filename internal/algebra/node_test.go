package algebra

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// fig3Plan builds the paper's Fig. 3 mutant query plan: favorite songs join
// track listings join (select price < 10 over Portland CDs for sale).
func fig3Plan() *Plan {
	songs := Data(
		xmltree.MustParse(`<song><title>Song A</title></song>`),
		xmltree.MustParse(`<song><title>Song B</title></song>`),
	)
	forSale := Select(MustParsePredicate("price < 10"), URN("urn:ForSale:Portland-CDs"))
	listings := URN("urn:CD:TrackListings")
	cdJoin := JoinNamed("cd", "cd", "sale", "listing", forSale, listings)
	songJoin := JoinNamed("title", "listing/song", "fav", "match", songs, cdJoin)
	return NewPlan("fig3", "129.95.50.105:9020", Display(songJoin))
}

func TestValidate(t *testing.T) {
	p := fig3Plan()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Node{
		{Kind: KindSelect, Children: []*Node{Data()}}, // no pred
		{Kind: KindJoin, Children: []*Node{Data()}},   // arity
		{Kind: KindURL},   // no href
		{Kind: KindURN},   // no name
		{Kind: KindUnion}, // empty
		{Kind: KindTopN, N: 0, Children: []*Node{Data()}},             // n<=0
		{Kind: KindProject, Children: []*Node{Data()}},                // no fields
		{Kind: KindDisplay, Children: []*Node{Data(), Data()}},        // arity
		{Kind: KindJoin, LeftKey: "a", Children: []*Node{Data(), {}}}, // keys
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("bad[%d] (%s): expected validation error", i, n.Kind)
		}
	}
	if err := (&Plan{ID: "x", Root: Data()}).Validate(); err == nil {
		t.Error("plan without target must fail validation")
	}
	if err := (&Plan{ID: "x", Target: "t"}).Validate(); err == nil {
		t.Error("plan without root must fail validation")
	}
}

func TestLeavesURNsURLs(t *testing.T) {
	p := fig3Plan()
	leaves := p.Root.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d, want 3", len(leaves))
	}
	urns := p.Root.URNs()
	if len(urns) != 2 || urns[0] != "urn:CD:TrackListings" || urns[1] != "urn:ForSale:Portland-CDs" {
		t.Fatalf("urns = %v", urns)
	}
	u := Union(URL("http://a/", ""), URL("http://b/", ""), URL("http://a/", ""))
	if got := u.URLs(); len(got) != 2 {
		t.Fatalf("urls = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := fig3Plan()
	p.RetainOriginal()
	c := p.Clone()
	c.Root.Walk(func(n *Node) bool {
		if n.Kind == KindURN {
			n.URN = "urn:Changed"
		}
		return true
	})
	if len(p.Root.URNs()) != 2 || p.Root.URNs()[0] == "urn:Changed" {
		t.Fatal("clone shares URN nodes with original")
	}
	if c.Original == nil {
		t.Fatal("clone dropped original")
	}
}

func TestIsConstantAndResults(t *testing.T) {
	d := Data(xmltree.MustParse(`<r>1</r>`))
	p := NewPlan("x", "t", Display(d))
	if !p.IsConstant() {
		t.Fatal("display(data) must be constant")
	}
	rs, err := p.Results()
	if err != nil || len(rs) != 1 {
		t.Fatalf("results = %v, %v", rs, err)
	}
	q := fig3Plan()
	if q.IsConstant() {
		t.Fatal("fig3 plan is not constant")
	}
	if _, err := q.Results(); err == nil {
		t.Fatal("results of non-constant plan must error")
	}
}

func TestAnnotations(t *testing.T) {
	n := URN("urn:X")
	n.SetCard(1000000)
	if n.Card() != 1000000 {
		t.Fatalf("card = %d", n.Card())
	}
	n.SetStaleness(30)
	if n.Staleness() != 30 {
		t.Fatalf("staleness = %d", n.Staleness())
	}
	m := URN("urn:Y")
	if m.Card() != -1 || m.Staleness() != -1 {
		t.Fatal("missing annotations must read as -1")
	}
	m.Annotate(AnnotCard, "not-a-number")
	if m.Card() != -1 {
		t.Fatal("malformed card must read as -1")
	}
}

func TestWalkPrune(t *testing.T) {
	p := fig3Plan()
	count := 0
	p.Root.Walk(func(n *Node) bool {
		count++
		return n.Kind != KindJoin // prune below first join
	})
	// display + join(stopped) = 2
	if count != 2 {
		t.Fatalf("walk visited %d nodes, want 2", count)
	}
}

func TestStringSketch(t *testing.T) {
	p := fig3Plan()
	s := p.Root.String()
	for _, frag := range []string{"display(", "join[", "select[price < 10]", "urn(urn:CD:TrackListings)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("sketch %q missing %q", s, frag)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindData, KindURL, KindURN, KindSelect, KindProject, KindJoin,
		KindUnion, KindOr, KindDifference, KindCount, KindTopN, KindDisplay}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad/duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}
