package algebra

import (
	"sync"
	"testing"

	"repro/internal/xmltree"
)

// cowPlan returns a plan the way a hop owns one — decoded from the wire —
// so its payload documents and extra sections arrive frozen.
func cowPlan(t *testing.T) *Plan {
	t.Helper()
	p := NewPlan("cow", "c:1", Display(Union(
		Data(
			xmltree.MustParse(`<item><cd>Abbey Road</cd><price>12</price></item>`),
			xmltree.MustParse(`<item><cd>Kind of Blue</cd><price>9</price></item>`),
		),
		URL("far:9020", "/d"))))
	p.RetainOriginal()
	p.Extra = map[string]*xmltree.Node{
		"provenance": xmltree.MustParse(`<provenance><visit server="s1" action="forward" at="0" sig="x"/></provenance>`),
	}
	back, err := DecodeString(EncodeString(p))
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func dataNode(t *testing.T, root *Node) *Node {
	t.Helper()
	var d *Node
	root.Walk(func(m *Node) bool {
		if m.Kind == KindData && d == nil {
			d = m
		}
		return true
	})
	if d == nil {
		t.Fatal("no data node in plan")
	}
	return d
}

// TestDecodedPayloadsArriveFrozen pins the receive-side ownership rule:
// Unmarshal freezes payload documents and extra sections in place.
func TestDecodedPayloadsArriveFrozen(t *testing.T) {
	p := cowPlan(t)
	for _, d := range dataNode(t, p.Root).Docs {
		if !d.Frozen() {
			t.Fatal("decoded payload doc not frozen")
		}
	}
	if !p.Extra["provenance"].Frozen() {
		t.Fatal("decoded extra section not frozen")
	}
}

// TestPlanCloneSharesFrozenPayloads verifies Clone and RetainOriginal are
// copy-on-write over frozen freight: operator nodes are copied, payload
// documents and extra sections are aliased.
func TestPlanCloneSharesFrozenPayloads(t *testing.T) {
	p := cowPlan(t)
	cp := p.Clone()
	pd, cd := dataNode(t, p.Root), dataNode(t, cp.Root)
	if pd == cd {
		t.Fatal("operator nodes must be copied")
	}
	for i := range pd.Docs {
		if pd.Docs[i] != cd.Docs[i] {
			t.Fatal("frozen payload doc must be aliased, not copied")
		}
	}
	if p.Extra["provenance"] != cp.Extra["provenance"] {
		t.Fatal("frozen extra section must be aliased")
	}
	if EncodeString(cp) != EncodeString(p) {
		t.Fatal("clone serializes differently")
	}
	p.RetainOriginal()
	for i, d := range dataNode(t, p.Original).Docs {
		if d != pd.Docs[i] {
			t.Fatal("RetainOriginal must alias frozen payload docs")
		}
	}
}

// TestMarshalAliasesFrozenDocs verifies the hop-path marshal shares frozen
// payloads with the produced wire document instead of deep-cloning them.
func TestMarshalAliasesFrozenDocs(t *testing.T) {
	var contains func(n, target *xmltree.Node) bool
	contains = func(n, target *xmltree.Node) bool {
		if n == target {
			return true
		}
		for _, c := range n.Children {
			if contains(c, target) {
				return true
			}
		}
		return false
	}
	p := cowPlan(t)
	frozen := dataNode(t, p.Root).Docs[0]
	if !contains(Marshal(p), frozen) {
		t.Fatal("Marshal must alias frozen payload docs into the wire document")
	}
	// A mutable doc, by contrast, is still deep-copied.
	mp := NewPlan("m", "c:1", Display(Data(xmltree.MustParse(`<item/>`))))
	mutable := mp.Root.Children[0].Docs[0]
	if contains(Marshal(mp), mutable) {
		t.Fatal("Marshal must not alias mutable payload docs")
	}
}

// TestSharedFrozenPlanConcurrentUse exercises the aliasing-safety contract
// under the race detector (make ci): one decoded plan is concurrently
// cloned, marshaled, sized and re-encoded; all of that is read-only on the
// shared frozen payloads.
func TestSharedFrozenPlanConcurrentUse(t *testing.T) {
	p := cowPlan(t)
	want := EncodeString(p)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				cp := p.Clone()
				if EncodeString(cp) != want {
					panic("clone serialization mismatch")
				}
				if Marshal(p).ByteSize() != len(want) {
					panic("marshal size mismatch")
				}
				if WireSize(cp) != len(want) {
					panic("wire size mismatch")
				}
			}
		}()
	}
	wg.Wait()
}
