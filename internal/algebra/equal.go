package algebra

// Equal reports whether two operator subtrees are structurally identical:
// same kinds, resources, predicates, parameters, annotations, payloads and
// children. It is the collision guard behind fingerprint-keyed caches —
// Fingerprint is a 64-bit digest, so a cache that maps fingerprints to plans
// must confirm the stored plan really is the incoming one before reusing its
// work.
//
// Payload documents compare by identity first (the common case: frozen items
// aliased from a shared collection or wire buffer) and fall back to canonical
// XML equality, so two plans carrying independently parsed copies of the same
// data still compare equal.
func Equal(a, b *Node) bool {
	switch {
	case a == nil && b == nil:
		return true
	case a == nil || b == nil:
		return false
	}
	if a.Kind != b.Kind ||
		a.URL != b.URL || a.PathExp != b.PathExp || a.URN != b.URN ||
		a.As != b.As ||
		a.LeftKey != b.LeftKey || a.RightKey != b.RightKey ||
		a.LeftName != b.LeftName || a.RightName != b.RightName ||
		a.N != b.N || a.OrderBy != b.OrderBy || a.Desc != b.Desc {
		return false
	}
	if (a.Pred == nil) != (b.Pred == nil) {
		return false
	}
	if a.Pred != nil && a.Pred.String() != b.Pred.String() {
		return false
	}
	if len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	if len(a.Annotations) != len(b.Annotations) {
		return false
	}
	for k, v := range a.Annotations {
		if bv, ok := b.Annotations[k]; !ok || bv != v {
			return false
		}
	}
	if len(a.Docs) != len(b.Docs) {
		return false
	}
	for i := range a.Docs {
		if a.Docs[i] == b.Docs[i] {
			continue
		}
		if a.Docs[i].ByteSize() != b.Docs[i].ByteSize() ||
			a.Docs[i].String() != b.Docs[i].String() {
			return false
		}
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
