// Package mqp implements the mutant query plan processor — the paper's
// primary contribution (§2, Fig. 2). A Processor is one server's processing
// station: it parses an incoming plan, binds URNs through the local catalog,
// rewrites the plan (push-select-through-union, or-choice, flattening),
// resolves URLs to data, reduces locally-evaluable sub-plans with the query
// engine, and decides where the mutated plan travels next.
//
// Processors are deliberately independent of the transport: the peer package
// wires them to simnet, and cmd/mqpd wires the same code to real TCP
// sockets.
//
// A Processor is stateless per step: everything one processing cycle needs
// lives in a StepContext plus stack-local state, so a single instance serves
// any number of concurrent workers. The only shared mutable state is the
// optional prepared-plan cache (plancache.go), which is internally
// synchronized and hands out immutable entries.
package mqp

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/namespace"
	"repro/internal/provenance"
	"repro/internal/route"
	"repro/internal/xmltree"
)

// StepContext carries the per-invocation state of one processing cycle: the
// cancellation context of the submission, the virtual time of the message
// being processed (stamped on provenance records), and the request RTTs the
// step accumulated pulling remote data (added to the forwarded plan's
// virtual time by the transport). The zero value is usable: no cancellation,
// time zero.
type StepContext struct {
	// Ctx, when non-nil, cancels the step: processing checks it between
	// stages and returns an explicit partial (Outcome.Canceled) once it is
	// done, so a timed-out plan surfaces instead of silently burning work.
	Ctx context.Context
	// Now is the virtual time of the message being processed.
	Now time.Duration
	// PullDelay accumulates the RTTs of data pulls made during the step.
	PullDelay time.Duration
}

func (sc *StepContext) canceled() bool {
	return sc != nil && sc.Ctx != nil && sc.Ctx.Err() != nil
}

// Fetcher resolves a URL leaf to data. pathExp identifies the collection at
// the server (§3.2). It returns the items and their staleness bound in
// minutes. The StepContext is the invoking step's; a remote fetcher charges
// the pull RTT to sc.PullDelay.
type Fetcher func(sc *StepContext, addr, pathExp string) (items []*xmltree.Node, stalenessMin int, err error)

// Policy is the policy manager of Fig. 2: it decides which locally
// evaluable sub-plans to evaluate, which Or alternative to keep, and
// whether to pull a remote URL's data or leave the leaf for forwarding.
type Policy interface {
	// ShouldReduce reports whether a locally evaluable sub-plan with the
	// given estimated output cardinality should be evaluated here.
	ShouldReduce(sub *algebra.Node, estCard int) bool
	// ChooseOr picks the Or alternative to keep (index), or -1 to defer
	// the choice to a later server.
	ChooseOr(alts []*algebra.Node, prefs Prefs) int
	// ShouldFetch reports whether the processor should pull the remote
	// URL's data instead of leaving the leaf as a forwarding candidate.
	ShouldFetch(addr, pathExp string, estCard int) bool
}

// Prefs is the query-level tradeoff control of §4.3: a target evaluation
// time plus a binary preference for complete versus current answers. Prefs
// travel as annotations on the plan root.
type Prefs struct {
	BudgetMS      int
	PreferCurrent bool
}

// Annotation keys for Prefs on the plan root.
const (
	annotBudgetMS      = "budget-ms"
	annotPreferCurrent = "prefer-current"
)

// SetPrefs stores prefs on the plan root.
func SetPrefs(p *algebra.Plan, prefs Prefs) {
	p.Root.Annotate(annotBudgetMS, strconv.Itoa(prefs.BudgetMS))
	p.Root.Annotate(annotPreferCurrent, strconv.FormatBool(prefs.PreferCurrent))
}

// GetPrefs reads prefs from the plan root; missing annotations yield zero
// values.
func GetPrefs(p *algebra.Plan) Prefs {
	prefs := Prefs{}
	if v, ok := p.Root.Annotation(annotBudgetMS); ok {
		if n, err := strconv.Atoi(v); err == nil {
			prefs.BudgetMS = n
		}
	}
	if v, ok := p.Root.Annotation(annotPreferCurrent); ok {
		prefs.PreferCurrent = v == "true"
	}
	return prefs
}

// DefaultPolicy implements Policy with the simple scheme the paper sketches:
// evaluate everything up to a cardinality ceiling, choose alternatives by
// the complete-vs-current preference under the time budget, and always pull
// data (set FetchCeiling to bound pulls).
type DefaultPolicy struct {
	// MaxReduceCard declines evaluation of sub-plans whose estimated output
	// exceeds it (§5.1: "S may decline to evaluate B at this point, because
	// of the size of res(B)"). Zero means no ceiling.
	MaxReduceCard int
	// FetchCeiling declines pulling URLs whose annotated cardinality
	// exceeds it; the plan travels to the data instead. Zero means always
	// fetch.
	FetchCeiling int
	// HopCostMS estimates per-site latency when checking alternatives
	// against the budget. Zero defaults to 50.
	HopCostMS int
}

// ShouldReduce implements Policy.
func (d DefaultPolicy) ShouldReduce(_ *algebra.Node, estCard int) bool {
	return d.MaxReduceCard <= 0 || estCard < 0 || estCard <= d.MaxReduceCard
}

// ChooseOr implements Policy: pick the most-current alternative the budget
// allows when the query prefers currency, otherwise the fewest-sites
// alternative.
func (d DefaultPolicy) ChooseOr(alts []*algebra.Node, prefs Prefs) int {
	hop := d.HopCostMS
	if hop <= 0 {
		hop = 50
	}
	if prefs.PreferCurrent {
		idx := algebra.PickMostCurrent(alts)
		if idx >= 0 && prefs.BudgetMS > 0 {
			sites := len(alts[idx].URLs()) + len(alts[idx].URNs())
			if sites*hop > prefs.BudgetMS {
				// The current alternative does not fit the budget; fall
				// back to the cheapest one.
				return algebra.PickFewestSites(alts)
			}
		}
		return idx
	}
	return algebra.PickFewestSites(alts)
}

// ShouldFetch implements Policy.
func (d DefaultPolicy) ShouldFetch(_, _ string, estCard int) bool {
	return d.FetchCeiling <= 0 || estCard < 0 || estCard <= d.FetchCeiling
}

// ForwardOnlyPolicy never pulls remote data: plans always travel to the
// data, the purest form of mutant query evaluation.
type ForwardOnlyPolicy struct {
	DefaultPolicy
}

// ShouldFetch implements Policy.
func (ForwardOnlyPolicy) ShouldFetch(_, _ string, _ int) bool { return false }

// Config assembles a Processor.
type Config struct {
	// Self is this server's address; URL leaves addressed here resolve via
	// FetchLocal.
	Self string
	// Catalog is the local catalog used to bind URNs.
	Catalog *catalog.Catalog
	// FetchLocal serves this server's own collections.
	FetchLocal Fetcher
	// FetchRemote pulls data from another server, or nil when the
	// deployment forwards plans instead of pulling data.
	FetchRemote Fetcher
	// Policy defaults to DefaultPolicy{}.
	Policy Policy
	// PushSelect enables the select-through-union rewrite (Fig. 4a);
	// the E1/E5 ablation toggles it.
	PushSelect bool
	// PruneStats enables histogram-based pruning of provably-empty union
	// branches (§3.2 attribute indices; see sqo.go).
	PruneStats bool
	// Key signs provenance visits; nil disables provenance recording.
	Key []byte
	// Now supplies virtual time for the one-argument Step convenience
	// wrapper; StepCtx callers pass time explicitly instead.
	Now func() time.Duration
	// Authority is the interest area this server is authoritative for
	// (§3.3): it "strives to know about all base servers within its area
	// of interest". An area URN fully covered by Authority that matches no
	// registration binds to the empty collection instead of leaving the
	// plan stuck; a partially covered URN binds the covered cells and
	// re-emits the remainder as a new URN. Empty disables both behaviors.
	Authority namespace.Area
	// SizeOf reports the item count of a local collection, letting the
	// policy decline materializing an oversized one (§5.1). Nil means
	// sizes are unknown and local URLs always materialize.
	SizeOf func(pathExp string) int
	// StatsFor returns the annotations (cardinality, histograms, distinct
	// counts) a server publishes on a collection it declined to
	// materialize (§5.1). Nil disables.
	StatsFor func(pathExp string) map[string]string
	// PlanCacheSize, when positive, enables the prepared-plan cache with
	// the given entry cap: a plan structurally identical to one already
	// processed (same fingerprint, confirmed by structural equality) skips
	// the bind/rewrite/resolve/reduce stages and reuses the prepared
	// result. Entries invalidate automatically when the catalog — or any
	// state covered by CacheGeneration — changes.
	PlanCacheSize int
	// CacheGeneration, when non-nil, folds an additional mutation counter
	// into plan-cache invalidation (e.g. the serving peer's collection
	// store). It must be monotone non-decreasing and safe for concurrent
	// use.
	CacheGeneration func() uint64
	// Shortcuts, when non-nil, is the learned routing table mined from
	// provenance trails (internal/route). The routing stage consults it
	// ahead of catalog routes: a live (area → server) edge sends the plan
	// straight to a server known to have bound that area before, skipping
	// the hierarchy walk. Nil disables — routing is then byte-identical to
	// a build without learning.
	Shortcuts *route.Shortcuts
	// InternDoc, when non-nil, maps a frozen payload document to its
	// canonical alias (typically blobstore.Canonicalize on the serving
	// peer's store). Prepared-plan cache entries pass their freight through
	// it so a cached materialization pins one resident copy of payloads the
	// store already holds, not a private duplicate. It must not take
	// ownership: cache eviction does no release bookkeeping.
	InternDoc func(n *xmltree.Node) *xmltree.Node
}

// Processor is one server's MQP processing station. It holds no per-step
// state — a single Processor serves all of a peer's workers concurrently.
type Processor struct {
	cfg   Config
	cache *planCache
}

// New creates a Processor, applying defaults.
func New(cfg Config) (*Processor, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("mqp: config needs Self address")
	}
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("mqp: config needs a Catalog")
	}
	if cfg.Policy == nil {
		cfg.Policy = DefaultPolicy{}
	}
	if cfg.Now == nil {
		cfg.Now = func() time.Duration { return 0 }
	}
	p := &Processor{cfg: cfg}
	if cfg.PlanCacheSize > 0 {
		p.cache = newPlanCache(cfg.PlanCacheSize)
	}
	return p, nil
}

// Outcome reports what one processing step did and where the plan goes.
type Outcome struct {
	// Done means the plan reduced to a constant; ship it to plan.Target.
	Done bool
	// Partial means the plan is not constant but no productive hop remains:
	// every forwarding candidate has already seen the plan in its current
	// state, or has exhausted its revisit budget (internal/route). The
	// transport should deliver an explicit partial result (route.Partial) to
	// plan.Target instead of forwarding.
	Partial bool
	// Canceled means the step's context expired before processing finished;
	// Partial is set alongside it. The transport should deliver what the
	// plan already holds as an explicit partial, annotated "canceled".
	Canceled bool
	// NextHop is the preferred server to forward the plan to when not done.
	NextHop string
	// NextHops lists every forwarding candidate in preference order
	// (NextHop first). Transports fall back along the tail when a
	// destination is unreachable — the paper's fault-tolerance claim (§1).
	NextHops []string
	// Bound, Fetched, Reduced, Rewrites count the mutations applied.
	Bound    int
	Fetched  int
	Reduced  int
	Rewrites int
}

// AddrOf extracts the peer address from a URL leaf value: it accepts both
// bare "host:port" strings and "http://host:port/..." forms.
func AddrOf(url string) string { return route.AddrOf(url) }

// step is the stack-local state of one processing cycle. It exists so the
// Processor itself stays stateless: everything a stage records or consults
// mid-step — the provenance trail, the decline permission, whether remote
// IO happened — lives here and dies with the call.
type step struct {
	p  *Processor
	sc *StepContext
	// trail is the parsed provenance trail, nil when the server is unkeyed.
	trail *provenance.Trail
	// declineAllowed is recomputed as stages progress: a server may only
	// decline to materialize a local collection while the plan still has
	// other unresolved work elsewhere; once this server's collections are
	// the last leaves standing, it must materialize so the plan can finish.
	declineAllowed bool
	// remoteIO notes that the step pulled (or tried to pull) remote data;
	// such a step is not cacheable — its outcome depends on network state.
	remoteIO bool
	// collect accumulates provenance actions for a prospective cache entry.
	collect bool
	actions []provAction
	// resub marks a resubmission-eligible plan (route.MarkResubmittable):
	// materialization records answered (server, area) pairs into visited, and
	// already-answered leaves are subtracted before resolving. Such plans
	// bypass the plan cache entirely — marking happens during the stages the
	// cache skips, so a hit would silently under-record.
	resub bool
	// visited is the plan's visited memory, resolved once per step; only set
	// when resub is true.
	visited *algebra.Visited
}

// record appends one provenance visit (and collects it for the plan cache
// when this step is a cache-fill candidate).
func (st *step) record(action provenance.Action, detail string, stale int) {
	if st.collect {
		st.actions = append(st.actions, provAction{action: action, detail: detail, stale: stale})
	}
	if st.trail == nil {
		return
	}
	st.trail.Append(provenance.Visit{
		Server:       st.p.cfg.Self,
		Action:       action,
		Detail:       detail,
		At:           st.sc.Now,
		StalenessMin: stale,
	}, st.p.cfg.Key)
}

// replay re-records the provenance actions of a cached step, so a cache hit
// signs exactly the trail the original processing would have.
func (st *step) replay(actions []provAction) {
	if st.trail == nil {
		return
	}
	for _, a := range actions {
		st.trail.Append(provenance.Visit{
			Server:       st.p.cfg.Self,
			Action:       a.action,
			Detail:       a.detail,
			At:           st.sc.Now,
			StalenessMin: a.stale,
		}, st.p.cfg.Key)
	}
}

// Step performs one server's processing cycle on the plan, mutating it in
// place, and returns the outcome. The plan's provenance section is extended
// when the processor has a signing key. Virtual time comes from Config.Now;
// use StepCtx to pass time (and cancellation) explicitly.
//
// Step consumes the plan: reduction freezes payload documents in place
// (see engine.Reduce), so a caller constructing a plan from documents it
// intends to keep mutating should hand Step a Clone. Plans decoded from
// the wire — the normal case — arrive with frozen payloads already.
func (p *Processor) Step(plan *algebra.Plan) (Outcome, error) {
	return p.StepCtx(&StepContext{Now: p.cfg.Now()}, plan)
}

// StepCtx is Step with an explicit per-invocation context: cancellation,
// virtual time in, accumulated pull delay out. Safe to call from any number
// of goroutines on one Processor; sc must not be shared between concurrent
// steps.
func (p *Processor) StepCtx(sc *StepContext, plan *algebra.Plan) (Outcome, error) {
	if sc == nil {
		sc = &StepContext{Now: p.cfg.Now()}
	}
	if err := plan.Validate(); err != nil {
		return Outcome{}, err
	}
	if err := p.checkTransferPolicy(plan); err != nil {
		return Outcome{}, err
	}
	// The trail is parsed only when this server signs visits; an unkeyed
	// server forwards the <provenance> section untouched (it travels
	// verbatim — and, after one wire hop, frozen — in plan.Extra).
	st := &step{p: p, sc: sc}
	if route.Resubmittable(plan) {
		st.resub = true
		st.visited = plan.VisitedMemory()
	}
	if p.cfg.Key != nil {
		t, err := provenance.FromPlan(plan)
		if err != nil {
			return Outcome{}, err
		}
		st.trail = t
	}

	out := Outcome{}
	if sc.canceled() {
		return st.cancelOutcome(plan, out)
	}

	var routeCandidates []string
	// shared marks plan.Root as an alias of a cache entry's prepared root:
	// read-shared across goroutines, it must be cloned before any further
	// mutation (the last-stop materialization below is the only one).
	shared := false
	hit := false
	cacheable := false
	var fp, gen uint64
	if p.cache != nil && !st.resub {
		gen = p.generation()
		fp = algebra.Fingerprint(plan.Root)
		if e := p.cache.lookup(fp, plan.Root, gen); e != nil {
			// Prepared-plan fast path: stages 1–5 already ran for a
			// structurally identical plan against this catalog/store
			// generation. Adopt the prepared root (shared, frozen payloads,
			// read-only), replay the provenance the original run recorded,
			// and fall through to the per-plan routing stage — routing
			// depends on the plan's own visited memory and target, so it is
			// never cached.
			plan.Root = e.outRoot
			shared, hit = true, true
			out.Bound, out.Fetched = e.bound, e.fetched
			out.Reduced, out.Rewrites = e.reduced, e.rewrites
			routeCandidates = append(routeCandidates, e.routes...)
			st.replay(e.actions)
			if st.trail != nil {
				provenance.ToPlan(plan, st.trail)
			}
		} else {
			// Only data-free plans are cache candidates: payload-bearing
			// ones would need deep document comparison on every lookup to
			// rule out fingerprint collisions, which costs more than the
			// stages the cache skips.
			cacheable = !hasDocs(plan.Root)
			if cacheable {
				st.collect = st.trail != nil
			}
		}
	}

	if !hit {
		var inRoot *algebra.Node
		if cacheable {
			inRoot = plan.Root.Clone()
		}

		prefs := GetPrefs(plan)

		// 1. Bind URNs through the catalog, honoring §5.2 ordering policies.
		root, err := st.bindURNs(plan, plan.Root, &out, &routeCandidates)
		if err != nil {
			return Outcome{}, err
		}
		plan.Root = root

		// 2. Rewrites. Semantic pruning first (it needs the select still
		// above the union): drop union branches whose published attribute
		// indices prove the selection empty there (§3.2). Then flatten and
		// push the (remaining) selections through unions/ors. Flattening
		// records a visit like every other mutation: a server whose only work
		// is a flatten must still sign the trail, or the visited ⊆ trail
		// consistency the chaos harness checks would flag it.
		if n := algebra.FlattenUnions(plan.Root); n > 0 {
			out.Rewrites += n
			st.record(provenance.ActionOptimize, "flatten", 0)
		}
		if p.cfg.PruneStats {
			if n := PruneByStats(plan.Root); n > 0 {
				out.Rewrites += n
				st.record(provenance.ActionOptimize, "prune-stats", 0)
			}
		}
		if p.cfg.PushSelect {
			if n := algebra.PushSelectThroughUnion(plan.Root); n > 0 {
				out.Rewrites += n
				st.record(provenance.ActionOptimize, "push-select", 0)
			}
		}

		// 3. Resolve Or alternatives per policy and preferences.
		if n := algebra.OrChoice(plan.Root, func(alts []*algebra.Node) int {
			return p.cfg.Policy.ChooseOr(alts, prefs)
		}); n > 0 {
			out.Rewrites += n
			st.record(provenance.ActionOptimize, "or-choice", 0)
		}

		if sc.canceled() {
			return st.cancelOutcome(plan, out)
		}

		// 4+5. Materialize, rebind and reduce (declining allowed while the
		// plan still has work elsewhere).
		if err := st.materializeAndReduce(plan, false, &out, &routeCandidates); err != nil {
			return Outcome{}, err
		}

		if out.Bound+out.Fetched+out.Reduced+out.Rewrites == 0 {
			st.record(provenance.ActionForward, "", 0)
		}
		if cacheable && !st.remoteIO {
			outRoot := plan.Root.Clone()
			if p.cfg.InternDoc != nil {
				internDocs(outRoot, p.cfg.InternDoc)
			}
			p.cache.insert(fp, &cacheEntry{
				inRoot:   inRoot,
				outRoot:  outRoot,
				routes:   append([]string(nil), routeCandidates...),
				actions:  append([]provAction(nil), st.actions...),
				bound:    out.Bound,
				fetched:  out.Fetched,
				reduced:  out.Reduced,
				rewrites: out.Rewrites,
				gen:      gen,
			})
		}
		if st.trail != nil {
			provenance.ToPlan(plan, st.trail)
		}
	}

	// 6. Routing decision (internal/route): the plan carries its own routing
	// state — select productive hops against its visited-server memory, then
	// record this visit with the fingerprint of the state being forwarded.
	// Always live, never cached: it depends on per-plan state (visited
	// memory, target), not just the plan's structure.
	if plan.IsConstant() {
		out.Done = true
		return out, nil
	}
	if sc.canceled() {
		return st.cancelOutcome(plan, out)
	}
	dec := route.Select(plan, p.cfg.Self, routeCandidates, p.learned(plan, sc)...)
	if dec.Reason != route.Forward && p.hasLocalWork(plan.Root) {
		// Last stop (§5.1): declining local work is only legitimate while
		// the plan can still travel. With no productive hop left, this
		// server must materialize and evaluate whatever it declined, so the
		// plan finishes — or at worst leaves as a richer partial.
		if shared {
			// The prepared root is shared with the cache (and possibly other
			// in-flight plans); take a private copy before mutating it.
			plan.Root = plan.Root.Clone()
			shared = false
		}
		if err := st.materializeAndReduce(plan, true, &out, &routeCandidates); err != nil {
			return Outcome{}, err
		}
		if st.trail != nil {
			provenance.ToPlan(plan, st.trail)
		}
		if plan.IsConstant() {
			out.Done = true
			return out, nil
		}
		// Recompute learned candidates: materialization may have bound the
		// URNs a shortcut pointed at, and the catalog generation may differ.
		dec = route.Select(plan, p.cfg.Self, routeCandidates, p.learned(plan, sc)...)
	}
	dec.MarkVisited(plan, p.cfg.Self)
	switch dec.Reason {
	case route.NoRoute:
		return out, fmt.Errorf("mqp: plan %q stuck at %s: no binding, no route", plan.ID, p.cfg.Self)
	case route.Exhausted:
		out.Partial = true
		return out, nil
	}
	out.NextHops = dec.Hops
	out.NextHop = out.NextHops[0]
	return out, nil
}

// cancelOutcome finishes a step whose context expired: flush whatever trail
// records were already made (so visited ⊆ trail stays consistent on the
// partial that results) and report an explicit canceled partial.
func (st *step) cancelOutcome(plan *algebra.Plan, out Outcome) (Outcome, error) {
	if st.trail != nil {
		provenance.ToPlan(plan, st.trail)
	}
	out.Partial = true
	out.Canceled = true
	return out, nil
}

// learned returns the shortcut-table routing candidates for the plan's
// outstanding URN leaves — the learned tier route.Select ranks ahead of
// catalog routes. Nil Shortcuts (learning disabled) yields nil, leaving the
// routing decision byte-identical to a build without learning.
func (p *Processor) learned(plan *algebra.Plan, sc *StepContext) []string {
	if p.cfg.Shortcuts == nil {
		return nil
	}
	return p.cfg.Shortcuts.Candidates(plan.Root, p.cfg.Self, p.cfg.Catalog.Generation(), sc.Now)
}

// generation is the plan cache's invalidation epoch: the catalog's mutation
// counter plus the transport's (e.g. the peer collection store's). Both are
// monotone, so the sum changes whenever either does.
func (p *Processor) generation() uint64 {
	g := p.cfg.Catalog.Generation()
	if p.cfg.CacheGeneration != nil {
		g += p.cfg.CacheGeneration()
	}
	return g
}

// hasDocs reports whether any data leaf in the subtree carries payload
// documents.
func hasDocs(root *algebra.Node) bool {
	found := false
	root.Walk(func(m *algebra.Node) bool {
		if m.Kind == algebra.KindData && len(m.Docs) > 0 {
			found = true
			return false
		}
		return true
	})
	return found
}

// internDocs rewrites every payload document in a freshly cloned prepared
// root to its canonical alias via Config.InternDoc. The clone is private to
// the cache entry being built, so the in-place rewrite is safe; the docs
// themselves are frozen aliases either way.
func internDocs(root *algebra.Node, intern func(*xmltree.Node) *xmltree.Node) {
	root.Walk(func(m *algebra.Node) bool {
		if m.Kind == algebra.KindData {
			for i, d := range m.Docs {
				m.Docs[i] = intern(d)
			}
		}
		return true
	})
}

// materializeAndReduce is the resolve→rebind→reduce tail of a processing
// step (Step's stages 4, 4b and 5): resolve URLs per policy, run a second
// binding pass (materialized data may satisfy §5.2 ordering prerequisites,
// unblocking URNs the first pass deferred), and reduce maximal
// locally-evaluable sub-plans. With declineForbidden the policy may not
// decline anything — the last-stop rule (§5.1: once this server is the
// plan's final stop, it must evaluate).
func (st *step) materializeAndReduce(plan *algebra.Plan, declineForbidden bool, out *Outcome,
	routes *[]string) error {
	st.declineAllowed = !declineForbidden && st.p.hasForeignWork(plan.Root)
	st.subtractAnswered(plan, out)
	root, err := st.resolveURLs(plan.Root, true, out, routes)
	if err != nil {
		return err
	}
	plan.Root = root
	root, err = st.bindURNs(plan, plan.Root, out, routes)
	if err != nil {
		return err
	}
	plan.Root = root
	// The second binding pass may have introduced fresh URL leaves for
	// collections a resubmission already holds; subtract them before they
	// route the plan anywhere.
	st.subtractAnswered(plan, out)
	st.declineAllowed = !declineForbidden && st.p.hasForeignWork(plan.Root)
	plan.Root = st.reduce(plan.Root, true, out)
	return nil
}

// distributiveKind reports whether an operator distributes over its inputs'
// partitioning: excluding one input's contribution from a subtree made only
// of these operators excludes exactly that contribution from the result.
// Joins, counts, differences and unresolved Or alternatives do not qualify —
// under them, skipping an input would corrupt the remainder, so answered
// accounting never applies there.
func distributiveKind(k algebra.Kind) bool {
	switch k {
	case algebra.KindDisplay, algebra.KindSelect, algebra.KindProject, algebra.KindUnion:
		return true
	}
	return false
}

// subtractAnswered replaces URL leaves whose (server, area) pair is recorded
// as already answered with the empty collection — the resubmission
// optimization: data a previous partial already delivered is neither
// re-fetched nor re-routed. Only leaves under an all-distributive ancestor
// chain qualify, mirroring the marking rule, so exclusion is exact.
func (st *step) subtractAnswered(plan *algebra.Plan, out *Outcome) {
	if !st.resub || st.visited == nil || st.visited.AnsweredLen() == 0 {
		return
	}
	skipped := 0
	var visit func(n *algebra.Node, anc bool)
	visit = func(n *algebra.Node, anc bool) {
		for i, c := range n.Children {
			if c.Kind == algebra.KindURL && anc && distributiveKind(n.Kind) {
				if area, ok := c.Annotation(algebra.AnnotArea); ok &&
					st.visited.IsAnswered(AddrOf(c.URL), area) {
					empty := algebra.Data()
					empty.SetCard(0)
					n.Children[i] = empty
					skipped++
					continue
				}
			}
			visit(c, anc && distributiveKind(n.Kind))
		}
	}
	visit(plan.Root, true)
	if skipped > 0 {
		out.Rewrites += skipped
		st.record(provenance.ActionOptimize, "answered-skip:"+strconv.Itoa(skipped), 0)
	}
}

// hasLocalWork reports whether the plan still holds URL leaves served here —
// work this server declined or failed to materialize earlier in the step.
func (p *Processor) hasLocalWork(root *algebra.Node) bool {
	local := false
	root.Walk(func(m *algebra.Node) bool {
		if m.Kind == algebra.KindURL && AddrOf(m.URL) == p.cfg.Self {
			local = true
			return false
		}
		return true
	})
	return local
}

// bindURNs replaces resolvable URN leaves with catalog bindings (post-order
// so nested structures bind in one pass).
func (st *step) bindURNs(plan *algebra.Plan, n *algebra.Node, out *Outcome, routes *[]string) (*algebra.Node, error) {
	p := st.p
	for i, c := range n.Children {
		nc, err := st.bindURNs(plan, c, out, routes)
		if err != nil {
			return nil, err
		}
		n.Children[i] = nc
	}
	if n.Kind != algebra.KindURN {
		return n, nil
	}
	// §5.2 ordering policy: this URN may not bind until its prerequisite
	// has been bound elsewhere.
	if bindDeferred(plan, n.URN) {
		return n, nil
	}
	// A leaf already routed to another server is left for forwarding.
	if route, ok := n.Annotation(catalog.AnnotRoute); ok && route != p.cfg.Self {
		*routes = append(*routes, route)
		return n, nil
	}
	b, err := p.cfg.Catalog.Resolve(n.URN)
	if err != nil {
		return nil, err
	}
	if expr, ok := p.authoritativeBind(n.URN, b); ok {
		out.Bound++
		st.record(provenance.ActionBind, n.URN, 0)
		markOrigin(expr, n.URN)
		st.stripAreas(expr)
		return expr, nil
	}
	if b.Expr != nil {
		out.Bound++
		st.record(provenance.ActionBind, n.URN, 0)
		markOrigin(b.Expr, n.URN)
		st.stripAreas(b.Expr)
		return b.Expr, nil
	}
	*routes = append(*routes, b.Routes...)
	return n, nil
}

// stripAreas removes the catalog's interest-area annotations from the URL
// leaves of a freshly bound expression when the plan did not opt into
// resubmission: only resubmittable plans carry (and pay the wire bytes for)
// the area tags that answered-area accounting needs. Stripping at bind time
// keeps every non-resubmittable plan's fingerprints and wire form identical
// to a build without learning.
func (st *step) stripAreas(expr *algebra.Node) {
	if st.resub {
		return
	}
	expr.Walk(func(m *algebra.Node) bool {
		if m.Kind == algebra.KindURL {
			delete(m.Annotations, algebra.AnnotArea)
		}
		return true
	})
}

// authoritativeBind applies the §3.3 authoritative-server semantics to an
// area URN: full coverage with no matching registrations binds to the empty
// collection; partial coverage binds the covered cells and re-emits the
// uncovered remainder as a new URN for other servers. It reports whether it
// produced a binding.
func (p *Processor) authoritativeBind(urn string, b catalog.Binding) (*algebra.Node, bool) {
	if p.cfg.Authority.Empty() || !namespace.IsAreaURN(urn) {
		return nil, false
	}
	area, err := namespace.DecodeURN(urn)
	if err != nil {
		return nil, false
	}
	var covered, uncovered []namespace.Cell
	for _, cell := range area.Cells {
		if p.cfg.Authority.CoversCell(cell) {
			covered = append(covered, cell)
		} else {
			uncovered = append(uncovered, cell)
		}
	}
	switch {
	case len(uncovered) == 0 && b.Expr == nil && len(b.Routes) == 0:
		// Authoritative and empty: the answer is the empty collection.
		empty := algebra.Data()
		empty.SetCard(0)
		return empty, true
	case len(covered) > 0 && len(uncovered) > 0 && b.Expr != nil:
		// Bind the covered part here; the remainder travels on as its own
		// URN. Progress is guaranteed: each such hop removes at least one
		// cell from the outstanding area.
		rem := algebra.URN(namespace.EncodeURN(namespace.NewArea(uncovered...)))
		return algebra.Union(b.Expr, rem), true
	default:
		return nil, false
	}
}

// resolveURLs substitutes data for URL leaves served here (and for remote
// ones when the policy pulls). anc tracks whether every ancestor of n is a
// distributive operator (distributiveKind): only then is a materialization
// recorded as an answered (server, area) pair on a resubmittable plan —
// under a join, count or unresolved Or, a later resubmission could not
// soundly exclude the pair.
func (st *step) resolveURLs(n *algebra.Node, anc bool, out *Outcome, routes *[]string) (*algebra.Node, error) {
	p := st.p
	for i, c := range n.Children {
		nc, err := st.resolveURLs(c, anc && distributiveKind(n.Kind), out, routes)
		if err != nil {
			return nil, err
		}
		n.Children[i] = nc
	}
	if n.Kind != algebra.KindURL {
		return n, nil
	}
	addr := AddrOf(n.URL)
	var fetch Fetcher
	switch {
	case addr == p.cfg.Self && p.cfg.FetchLocal != nil:
		// §5.1: a server may decline to materialize an oversized local
		// collection, annotating the leaf with statistics instead so later
		// servers can plan around it. Materializing local data is the first
		// step of reduction, so the reduction ceiling governs.
		if p.cfg.SizeOf != nil && st.declineAllowed {
			if est := p.cfg.SizeOf(n.PathExp); est >= 0 && !p.cfg.Policy.ShouldReduce(n, est) {
				n.SetCard(est)
				if p.cfg.StatsFor != nil {
					for k, v := range p.cfg.StatsFor(n.PathExp) {
						n.Annotate(k, v)
					}
				}
				st.record(provenance.ActionAnnotate, n.URL+n.PathExp, 0)
				return n, nil
			}
		}
		fetch = p.cfg.FetchLocal
	case addr != p.cfg.Self && p.cfg.FetchRemote != nil &&
		p.cfg.Policy.ShouldFetch(addr, n.PathExp, n.Card()):
		fetch = p.cfg.FetchRemote
		st.remoteIO = true
	default:
		if addr != p.cfg.Self {
			*routes = append(*routes, addr)
		}
		return n, nil
	}
	items, stale, err := fetch(st.sc, addr, n.PathExp)
	if err != nil {
		// Paper §4.2: a bound server may be unavailable; leave the leaf so
		// a later hop (or alternative) can take over. A failed local fetch
		// must not route the plan back to ourselves.
		if addr != p.cfg.Self {
			*routes = append(*routes, addr)
		}
		return n, nil
	}
	// Both fetchers hand out frozen items (peers freeze collections on
	// install and fetch replies on receipt), so the materialized leaf
	// aliases them and later marshals of this plan never copy the data.
	d := algebra.Data(items...)
	d.SetCard(len(items))
	if stale > 0 {
		d.SetStaleness(stale)
	}
	d.Annotate(algebra.AnnotSource, addr)
	out.Fetched++
	st.record(provenance.ActionData, n.URL+n.PathExp, stale)
	if st.resub && anc {
		if area, ok := n.Annotation(algebra.AnnotArea); ok {
			// The (server, area) contribution is now in the plan under an
			// all-distributive chain: if this plan comes back partial, a
			// resubmission may exclude the pair (route.Resubmit). A veto pass
			// at partial time (route.reconcileAnswered) drops the record
			// again if the data never made it into the delivered body.
			st.visited.MarkAnswered(addr, area)
		}
	}
	return d, nil
}

// reduce replaces maximal locally-evaluable sub-plans with their results.
// isRoot tracks whether n is the plan root (Display stays in place).
func (st *step) reduce(n *algebra.Node, isRoot bool, out *Outcome) *algebra.Node {
	p := st.p
	if n.Kind == algebra.KindDisplay {
		n.Children[0] = st.reduce(n.Children[0], false, out)
		return n
	}
	if n.Kind == algebra.KindData {
		return n
	}
	if engine.LocallyEvaluable(n) {
		est := algebra.EstimateCard(n)
		if !st.declineAllowed || p.cfg.Policy.ShouldReduce(n, est) {
			d, err := engine.Reduce(n)
			if err == nil {
				// Preserve the worst staleness of the inputs on the result.
				if stl := maxStaleness(n); stl > 0 {
					d.SetStaleness(stl)
				}
				out.Reduced++
				st.record(provenance.ActionReduce, n.Kind.String(), maxStaleness(n))
				return d
			}
		} else {
			// Decline, but leave statistics behind for later servers
			// (§5.1: annotate with cardinality instead of evaluating).
			if est >= 0 {
				n.SetCard(est)
			}
			st.record(provenance.ActionAnnotate, n.Kind.String(), 0)
			return n
		}
	}
	for i, c := range n.Children {
		n.Children[i] = st.reduce(c, false, out)
	}
	return n
}

// hasForeignWork reports whether the plan still references resources not
// served here (URNs, or URLs at other servers).
func (p *Processor) hasForeignWork(root *algebra.Node) bool {
	foreign := false
	root.Walk(func(m *algebra.Node) bool {
		switch m.Kind {
		case algebra.KindURN:
			foreign = true
			return false
		case algebra.KindURL:
			if AddrOf(m.URL) != p.cfg.Self {
				foreign = true
				return false
			}
		}
		return true
	})
	return foreign
}

func maxStaleness(n *algebra.Node) int {
	max := 0
	n.Walk(func(m *algebra.Node) bool {
		if st := m.Staleness(); st > max {
			max = st
		}
		return true
	})
	return max
}
