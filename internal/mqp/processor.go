// Package mqp implements the mutant query plan processor — the paper's
// primary contribution (§2, Fig. 2). A Processor is one server's processing
// station: it parses an incoming plan, binds URNs through the local catalog,
// rewrites the plan (push-select-through-union, or-choice, flattening),
// resolves URLs to data, reduces locally-evaluable sub-plans with the query
// engine, and decides where the mutated plan travels next.
//
// Processors are deliberately independent of the transport: the peer package
// wires them to simnet, and cmd/mqpd wires the same code to real TCP
// sockets.
package mqp

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/namespace"
	"repro/internal/provenance"
	"repro/internal/route"
	"repro/internal/xmltree"
)

// Fetcher resolves a URL leaf to data. pathExp identifies the collection at
// the server (§3.2). It returns the items and their staleness bound in
// minutes.
type Fetcher func(addr, pathExp string) (items []*xmltree.Node, stalenessMin int, err error)

// Policy is the policy manager of Fig. 2: it decides which locally
// evaluable sub-plans to evaluate, which Or alternative to keep, and
// whether to pull a remote URL's data or leave the leaf for forwarding.
type Policy interface {
	// ShouldReduce reports whether a locally evaluable sub-plan with the
	// given estimated output cardinality should be evaluated here.
	ShouldReduce(sub *algebra.Node, estCard int) bool
	// ChooseOr picks the Or alternative to keep (index), or -1 to defer
	// the choice to a later server.
	ChooseOr(alts []*algebra.Node, prefs Prefs) int
	// ShouldFetch reports whether the processor should pull the remote
	// URL's data instead of leaving the leaf as a forwarding candidate.
	ShouldFetch(addr, pathExp string, estCard int) bool
}

// Prefs is the query-level tradeoff control of §4.3: a target evaluation
// time plus a binary preference for complete versus current answers. Prefs
// travel as annotations on the plan root.
type Prefs struct {
	BudgetMS      int
	PreferCurrent bool
}

// Annotation keys for Prefs on the plan root.
const (
	annotBudgetMS      = "budget-ms"
	annotPreferCurrent = "prefer-current"
)

// SetPrefs stores prefs on the plan root.
func SetPrefs(p *algebra.Plan, prefs Prefs) {
	p.Root.Annotate(annotBudgetMS, strconv.Itoa(prefs.BudgetMS))
	p.Root.Annotate(annotPreferCurrent, strconv.FormatBool(prefs.PreferCurrent))
}

// GetPrefs reads prefs from the plan root; missing annotations yield zero
// values.
func GetPrefs(p *algebra.Plan) Prefs {
	prefs := Prefs{}
	if v, ok := p.Root.Annotation(annotBudgetMS); ok {
		if n, err := strconv.Atoi(v); err == nil {
			prefs.BudgetMS = n
		}
	}
	if v, ok := p.Root.Annotation(annotPreferCurrent); ok {
		prefs.PreferCurrent = v == "true"
	}
	return prefs
}

// DefaultPolicy implements Policy with the simple scheme the paper sketches:
// evaluate everything up to a cardinality ceiling, choose alternatives by
// the complete-vs-current preference under the time budget, and always pull
// data (set FetchCeiling to bound pulls).
type DefaultPolicy struct {
	// MaxReduceCard declines evaluation of sub-plans whose estimated output
	// exceeds it (§5.1: "S may decline to evaluate B at this point, because
	// of the size of res(B)"). Zero means no ceiling.
	MaxReduceCard int
	// FetchCeiling declines pulling URLs whose annotated cardinality
	// exceeds it; the plan travels to the data instead. Zero means always
	// fetch.
	FetchCeiling int
	// HopCostMS estimates per-site latency when checking alternatives
	// against the budget. Zero defaults to 50.
	HopCostMS int
}

// ShouldReduce implements Policy.
func (d DefaultPolicy) ShouldReduce(_ *algebra.Node, estCard int) bool {
	return d.MaxReduceCard <= 0 || estCard < 0 || estCard <= d.MaxReduceCard
}

// ChooseOr implements Policy: pick the most-current alternative the budget
// allows when the query prefers currency, otherwise the fewest-sites
// alternative.
func (d DefaultPolicy) ChooseOr(alts []*algebra.Node, prefs Prefs) int {
	hop := d.HopCostMS
	if hop <= 0 {
		hop = 50
	}
	if prefs.PreferCurrent {
		idx := algebra.PickMostCurrent(alts)
		if idx >= 0 && prefs.BudgetMS > 0 {
			sites := len(alts[idx].URLs()) + len(alts[idx].URNs())
			if sites*hop > prefs.BudgetMS {
				// The current alternative does not fit the budget; fall
				// back to the cheapest one.
				return algebra.PickFewestSites(alts)
			}
		}
		return idx
	}
	return algebra.PickFewestSites(alts)
}

// ShouldFetch implements Policy.
func (d DefaultPolicy) ShouldFetch(_, _ string, estCard int) bool {
	return d.FetchCeiling <= 0 || estCard < 0 || estCard <= d.FetchCeiling
}

// ForwardOnlyPolicy never pulls remote data: plans always travel to the
// data, the purest form of mutant query evaluation.
type ForwardOnlyPolicy struct {
	DefaultPolicy
}

// ShouldFetch implements Policy.
func (ForwardOnlyPolicy) ShouldFetch(_, _ string, _ int) bool { return false }

// Config assembles a Processor.
type Config struct {
	// Self is this server's address; URL leaves addressed here resolve via
	// FetchLocal.
	Self string
	// Catalog is the local catalog used to bind URNs.
	Catalog *catalog.Catalog
	// FetchLocal serves this server's own collections.
	FetchLocal Fetcher
	// FetchRemote pulls data from another server, or nil when the
	// deployment forwards plans instead of pulling data.
	FetchRemote Fetcher
	// Policy defaults to DefaultPolicy{}.
	Policy Policy
	// PushSelect enables the select-through-union rewrite (Fig. 4a);
	// the E1/E5 ablation toggles it.
	PushSelect bool
	// PruneStats enables histogram-based pruning of provably-empty union
	// branches (§3.2 attribute indices; see sqo.go).
	PruneStats bool
	// Key signs provenance visits; nil disables provenance recording.
	Key []byte
	// Now supplies virtual time for provenance records.
	Now func() time.Duration
	// Authority is the interest area this server is authoritative for
	// (§3.3): it "strives to know about all base servers within its area
	// of interest". An area URN fully covered by Authority that matches no
	// registration binds to the empty collection instead of leaving the
	// plan stuck; a partially covered URN binds the covered cells and
	// re-emits the remainder as a new URN. Empty disables both behaviors.
	Authority namespace.Area
	// SizeOf reports the item count of a local collection, letting the
	// policy decline materializing an oversized one (§5.1). Nil means
	// sizes are unknown and local URLs always materialize.
	SizeOf func(pathExp string) int
	// StatsFor returns the annotations (cardinality, histograms, distinct
	// counts) a server publishes on a collection it declined to
	// materialize (§5.1). Nil disables.
	StatsFor func(pathExp string) map[string]string
}

// Processor is one server's MQP processing station.
type Processor struct {
	cfg Config
	// declineAllowed is recomputed per Step: a server may only decline to
	// materialize a local collection while the plan still has other
	// unresolved work elsewhere; once this server's collections are the
	// last leaves standing, it must materialize so the plan can finish.
	declineAllowed bool
}

// New creates a Processor, applying defaults.
func New(cfg Config) (*Processor, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("mqp: config needs Self address")
	}
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("mqp: config needs a Catalog")
	}
	if cfg.Policy == nil {
		cfg.Policy = DefaultPolicy{}
	}
	if cfg.Now == nil {
		cfg.Now = func() time.Duration { return 0 }
	}
	return &Processor{cfg: cfg}, nil
}

// Outcome reports what one processing step did and where the plan goes.
type Outcome struct {
	// Done means the plan reduced to a constant; ship it to plan.Target.
	Done bool
	// Partial means the plan is not constant but no productive hop remains:
	// every forwarding candidate has already seen the plan in its current
	// state, or has exhausted its revisit budget (internal/route). The
	// transport should deliver an explicit partial result (route.Partial) to
	// plan.Target instead of forwarding.
	Partial bool
	// NextHop is the preferred server to forward the plan to when not done.
	NextHop string
	// NextHops lists every forwarding candidate in preference order
	// (NextHop first). Transports fall back along the tail when a
	// destination is unreachable — the paper's fault-tolerance claim (§1).
	NextHops []string
	// Bound, Fetched, Reduced, Rewrites count the mutations applied.
	Bound    int
	Fetched  int
	Reduced  int
	Rewrites int
}

// AddrOf extracts the peer address from a URL leaf value: it accepts both
// bare "host:port" strings and "http://host:port/..." forms.
func AddrOf(url string) string { return route.AddrOf(url) }

// Step performs one server's processing cycle on the plan, mutating it in
// place, and returns the outcome. The plan's provenance section is extended
// when the processor has a signing key.
//
// Step consumes the plan: reduction freezes payload documents in place
// (see engine.Reduce), so a caller constructing a plan from documents it
// intends to keep mutating should hand Step a Clone. Plans decoded from
// the wire — the normal case — arrive with frozen payloads already.
func (p *Processor) Step(plan *algebra.Plan) (Outcome, error) {
	if err := plan.Validate(); err != nil {
		return Outcome{}, err
	}
	if err := p.checkTransferPolicy(plan); err != nil {
		return Outcome{}, err
	}
	// The trail is parsed only when this server signs visits; an unkeyed
	// server forwards the <provenance> section untouched (it travels
	// verbatim — and, after one wire hop, frozen — in plan.Extra).
	var trail *provenance.Trail
	if p.cfg.Key != nil {
		t, err := provenance.FromPlan(plan)
		if err != nil {
			return Outcome{}, err
		}
		trail = t
	}
	record := func(action provenance.Action, detail string, stale int) {
		if p.cfg.Key == nil {
			return
		}
		trail.Append(provenance.Visit{
			Server:       p.cfg.Self,
			Action:       action,
			Detail:       detail,
			At:           p.cfg.Now(),
			StalenessMin: stale,
		}, p.cfg.Key)
	}

	out := Outcome{}
	prefs := GetPrefs(plan)
	var routeCandidates []string

	// 1. Bind URNs through the catalog, honoring §5.2 ordering policies.
	root, err := p.bindURNs(plan, plan.Root, &out, record, &routeCandidates)
	if err != nil {
		return Outcome{}, err
	}
	plan.Root = root

	// 2. Rewrites. Semantic pruning first (it needs the select still above
	// the union): drop union branches whose published attribute indices
	// prove the selection empty there (§3.2). Then flatten and push the
	// (remaining) selections through unions/ors. Flattening records a visit
	// like every other mutation: a server whose only work is a flatten must
	// still sign the trail, or the visited ⊆ trail consistency the chaos
	// harness checks would flag it.
	if n := algebra.FlattenUnions(plan.Root); n > 0 {
		out.Rewrites += n
		record(provenance.ActionOptimize, "flatten", 0)
	}
	if p.cfg.PruneStats {
		if n := PruneByStats(plan.Root); n > 0 {
			out.Rewrites += n
			record(provenance.ActionOptimize, "prune-stats", 0)
		}
	}
	if p.cfg.PushSelect {
		if n := algebra.PushSelectThroughUnion(plan.Root); n > 0 {
			out.Rewrites += n
			record(provenance.ActionOptimize, "push-select", 0)
		}
	}

	// 3. Resolve Or alternatives per policy and preferences.
	if n := algebra.OrChoice(plan.Root, func(alts []*algebra.Node) int {
		return p.cfg.Policy.ChooseOr(alts, prefs)
	}); n > 0 {
		out.Rewrites += n
		record(provenance.ActionOptimize, "or-choice", 0)
	}

	// 4+5. Materialize, rebind and reduce (declining allowed while the plan
	// still has work elsewhere).
	if err := p.materializeAndReduce(plan, false, &out, record, &routeCandidates); err != nil {
		return Outcome{}, err
	}

	if out.Bound+out.Fetched+out.Reduced+out.Rewrites == 0 {
		record(provenance.ActionForward, "", 0)
	}
	if p.cfg.Key != nil {
		provenance.ToPlan(plan, trail)
	}

	// 6. Routing decision (internal/route): the plan carries its own routing
	// state — select productive hops against its visited-server memory, then
	// record this visit with the fingerprint of the state being forwarded.
	if plan.IsConstant() {
		out.Done = true
		return out, nil
	}
	dec := route.Select(plan, p.cfg.Self, routeCandidates)
	if dec.Reason != route.Forward && p.hasLocalWork(plan.Root) {
		// Last stop (§5.1): declining local work is only legitimate while
		// the plan can still travel. With no productive hop left, this
		// server must materialize and evaluate whatever it declined, so the
		// plan finishes — or at worst leaves as a richer partial.
		if err := p.materializeAndReduce(plan, true, &out, record, &routeCandidates); err != nil {
			return Outcome{}, err
		}
		if p.cfg.Key != nil {
			provenance.ToPlan(plan, trail)
		}
		if plan.IsConstant() {
			out.Done = true
			return out, nil
		}
		dec = route.Select(plan, p.cfg.Self, routeCandidates)
	}
	dec.MarkVisited(plan, p.cfg.Self)
	switch dec.Reason {
	case route.NoRoute:
		return out, fmt.Errorf("mqp: plan %q stuck at %s: no binding, no route", plan.ID, p.cfg.Self)
	case route.Exhausted:
		out.Partial = true
		return out, nil
	}
	out.NextHops = dec.Hops
	out.NextHop = out.NextHops[0]
	return out, nil
}

// materializeAndReduce is the resolve→rebind→reduce tail of a processing
// step (Step's stages 4, 4b and 5): resolve URLs per policy, run a second
// binding pass (materialized data may satisfy §5.2 ordering prerequisites,
// unblocking URNs the first pass deferred), and reduce maximal
// locally-evaluable sub-plans. With declineForbidden the policy may not
// decline anything — the last-stop rule (§5.1: once this server is the
// plan's final stop, it must evaluate).
func (p *Processor) materializeAndReduce(plan *algebra.Plan, declineForbidden bool, out *Outcome,
	record func(provenance.Action, string, int), routes *[]string) error {
	p.declineAllowed = !declineForbidden && p.hasForeignWork(plan.Root)
	root, err := p.resolveURLs(plan.Root, out, record, routes)
	if err != nil {
		return err
	}
	plan.Root = root
	root, err = p.bindURNs(plan, plan.Root, out, record, routes)
	if err != nil {
		return err
	}
	plan.Root = root
	p.declineAllowed = !declineForbidden && p.hasForeignWork(plan.Root)
	plan.Root = p.reduce(plan.Root, true, out, record)
	return nil
}

// hasLocalWork reports whether the plan still holds URL leaves served here —
// work this server declined or failed to materialize earlier in the step.
func (p *Processor) hasLocalWork(root *algebra.Node) bool {
	local := false
	root.Walk(func(m *algebra.Node) bool {
		if m.Kind == algebra.KindURL && AddrOf(m.URL) == p.cfg.Self {
			local = true
			return false
		}
		return true
	})
	return local
}

// bindURNs replaces resolvable URN leaves with catalog bindings (post-order
// so nested structures bind in one pass).
func (p *Processor) bindURNs(plan *algebra.Plan, n *algebra.Node, out *Outcome, record func(provenance.Action, string, int), routes *[]string) (*algebra.Node, error) {
	for i, c := range n.Children {
		nc, err := p.bindURNs(plan, c, out, record, routes)
		if err != nil {
			return nil, err
		}
		n.Children[i] = nc
	}
	if n.Kind != algebra.KindURN {
		return n, nil
	}
	// §5.2 ordering policy: this URN may not bind until its prerequisite
	// has been bound elsewhere.
	if bindDeferred(plan, n.URN) {
		return n, nil
	}
	// A leaf already routed to another server is left for forwarding.
	if route, ok := n.Annotation(catalog.AnnotRoute); ok && route != p.cfg.Self {
		*routes = append(*routes, route)
		return n, nil
	}
	b, err := p.cfg.Catalog.Resolve(n.URN)
	if err != nil {
		return nil, err
	}
	if expr, ok := p.authoritativeBind(n.URN, b); ok {
		out.Bound++
		record(provenance.ActionBind, n.URN, 0)
		markOrigin(expr, n.URN)
		return expr, nil
	}
	if b.Expr != nil {
		out.Bound++
		record(provenance.ActionBind, n.URN, 0)
		markOrigin(b.Expr, n.URN)
		return b.Expr, nil
	}
	*routes = append(*routes, b.Routes...)
	return n, nil
}

// authoritativeBind applies the §3.3 authoritative-server semantics to an
// area URN: full coverage with no matching registrations binds to the empty
// collection; partial coverage binds the covered cells and re-emits the
// uncovered remainder as a new URN for other servers. It reports whether it
// produced a binding.
func (p *Processor) authoritativeBind(urn string, b catalog.Binding) (*algebra.Node, bool) {
	if p.cfg.Authority.Empty() || !namespace.IsAreaURN(urn) {
		return nil, false
	}
	area, err := namespace.DecodeURN(urn)
	if err != nil {
		return nil, false
	}
	var covered, uncovered []namespace.Cell
	for _, cell := range area.Cells {
		if p.cfg.Authority.CoversCell(cell) {
			covered = append(covered, cell)
		} else {
			uncovered = append(uncovered, cell)
		}
	}
	switch {
	case len(uncovered) == 0 && b.Expr == nil && len(b.Routes) == 0:
		// Authoritative and empty: the answer is the empty collection.
		empty := algebra.Data()
		empty.SetCard(0)
		return empty, true
	case len(covered) > 0 && len(uncovered) > 0 && b.Expr != nil:
		// Bind the covered part here; the remainder travels on as its own
		// URN. Progress is guaranteed: each such hop removes at least one
		// cell from the outstanding area.
		rem := algebra.URN(namespace.EncodeURN(namespace.NewArea(uncovered...)))
		return algebra.Union(b.Expr, rem), true
	default:
		return nil, false
	}
}

// resolveURLs substitutes data for URL leaves served here (and for remote
// ones when the policy pulls).
func (p *Processor) resolveURLs(n *algebra.Node, out *Outcome, record func(provenance.Action, string, int), routes *[]string) (*algebra.Node, error) {
	for i, c := range n.Children {
		nc, err := p.resolveURLs(c, out, record, routes)
		if err != nil {
			return nil, err
		}
		n.Children[i] = nc
	}
	if n.Kind != algebra.KindURL {
		return n, nil
	}
	addr := AddrOf(n.URL)
	var fetch Fetcher
	switch {
	case addr == p.cfg.Self && p.cfg.FetchLocal != nil:
		// §5.1: a server may decline to materialize an oversized local
		// collection, annotating the leaf with statistics instead so later
		// servers can plan around it. Materializing local data is the first
		// step of reduction, so the reduction ceiling governs.
		if p.cfg.SizeOf != nil && p.declineAllowed {
			if est := p.cfg.SizeOf(n.PathExp); est >= 0 && !p.cfg.Policy.ShouldReduce(n, est) {
				n.SetCard(est)
				if p.cfg.StatsFor != nil {
					for k, v := range p.cfg.StatsFor(n.PathExp) {
						n.Annotate(k, v)
					}
				}
				record(provenance.ActionAnnotate, n.URL+n.PathExp, 0)
				return n, nil
			}
		}
		fetch = p.cfg.FetchLocal
	case addr != p.cfg.Self && p.cfg.FetchRemote != nil &&
		p.cfg.Policy.ShouldFetch(addr, n.PathExp, n.Card()):
		fetch = p.cfg.FetchRemote
	default:
		if addr != p.cfg.Self {
			*routes = append(*routes, addr)
		}
		return n, nil
	}
	items, stale, err := fetch(addr, n.PathExp)
	if err != nil {
		// Paper §4.2: a bound server may be unavailable; leave the leaf so
		// a later hop (or alternative) can take over. A failed local fetch
		// must not route the plan back to ourselves.
		if addr != p.cfg.Self {
			*routes = append(*routes, addr)
		}
		return n, nil
	}
	// Both fetchers hand out frozen items (peers freeze collections on
	// install and fetch replies on receipt), so the materialized leaf
	// aliases them and later marshals of this plan never copy the data.
	d := algebra.Data(items...)
	d.SetCard(len(items))
	if stale > 0 {
		d.SetStaleness(stale)
	}
	d.Annotate(algebra.AnnotSource, addr)
	out.Fetched++
	record(provenance.ActionData, n.URL+n.PathExp, stale)
	return d, nil
}

// reduce replaces maximal locally-evaluable sub-plans with their results.
// isRoot tracks whether n is the plan root (Display stays in place).
func (p *Processor) reduce(n *algebra.Node, isRoot bool, out *Outcome, record func(provenance.Action, string, int)) *algebra.Node {
	if n.Kind == algebra.KindDisplay {
		n.Children[0] = p.reduce(n.Children[0], false, out, record)
		return n
	}
	if n.Kind == algebra.KindData {
		return n
	}
	if engine.LocallyEvaluable(n) {
		est := algebra.EstimateCard(n)
		if !p.declineAllowed || p.cfg.Policy.ShouldReduce(n, est) {
			d, err := engine.Reduce(n)
			if err == nil {
				// Preserve the worst staleness of the inputs on the result.
				if st := maxStaleness(n); st > 0 {
					d.SetStaleness(st)
				}
				out.Reduced++
				record(provenance.ActionReduce, n.Kind.String(), maxStaleness(n))
				return d
			}
		} else {
			// Decline, but leave statistics behind for later servers
			// (§5.1: annotate with cardinality instead of evaluating).
			if est >= 0 {
				n.SetCard(est)
			}
			record(provenance.ActionAnnotate, n.Kind.String(), 0)
			return n
		}
	}
	for i, c := range n.Children {
		n.Children[i] = p.reduce(c, false, out, record)
	}
	return n
}

// hasForeignWork reports whether the plan still references resources not
// served here (URNs, or URLs at other servers).
func (p *Processor) hasForeignWork(root *algebra.Node) bool {
	foreign := false
	root.Walk(func(m *algebra.Node) bool {
		switch m.Kind {
		case algebra.KindURN:
			foreign = true
			return false
		case algebra.KindURL:
			if AddrOf(m.URL) != p.cfg.Self {
				foreign = true
				return false
			}
		}
		return true
	})
	return foreign
}

func maxStaleness(n *algebra.Node) int {
	max := 0
	n.Walk(func(m *algebra.Node) bool {
		if st := m.Staleness(); st > max {
			max = st
		}
		return true
	})
	return max
}
