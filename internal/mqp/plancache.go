// Prepared-plan cache: the N1QL-style prepared-statement optimization
// adapted to mutant query plans. A plan's routing-relevant structure is
// digested by algebra.Fingerprint; when a structurally identical plan
// arrives again (the common case under load: many clients issuing the same
// query shape), the bind/rewrite/resolve/reduce stages are skipped and the
// prepared result — an immutable, fully-reduced operator tree with frozen
// payloads — is shared directly into the incoming plan.
//
// Correctness guards, in lookup order:
//
//   - Generation: entries remember the catalog/store mutation epoch they
//     were prepared under; a stale entry is dropped, never served.
//   - Structural equality: Fingerprint is a 64-bit digest, so a matching
//     entry must also compare algebra.Equal to the incoming root before its
//     work is reused — a collision degrades to a miss, never a wrong answer.
//   - Immutability: the prepared root is handed out shared. Processing never
//     mutates it on the hit path (the one exception, last-stop
//     materialization, clones first), so any number of concurrent steps can
//     hold the same entry — the same discipline frozen xmltree payloads
//     already follow.
//
// Only data-free plans are cached (payload-bearing plans would make the
// equality guard as expensive as the work saved), and only steps that did no
// remote IO fill entries (a pull's outcome depends on network state, not
// just on catalog and store).
package mqp

import (
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/provenance"
)

// provAction is one provenance visit a cached step recorded, replayed on
// every hit so the signed trail is identical to live processing.
type provAction struct {
	action provenance.Action
	detail string
	stale  int
}

// cacheEntry is one prepared plan. All fields are written once, before the
// entry is published; last is the only mutable field (atomic LRU clock).
type cacheEntry struct {
	// inRoot is a private clone of the incoming root the entry was prepared
	// from, compared against lookups to rule out fingerprint collisions.
	inRoot *algebra.Node
	// outRoot is the prepared result of stages 1–5: bound, rewritten,
	// materialized and reduced. Shared read-only into every hitting plan.
	outRoot *algebra.Node
	// routes are the forwarding candidates the stages accumulated.
	routes []string
	// actions replays the provenance trail on hits.
	actions []provAction
	// Mutation counters for the Outcome.
	bound, fetched, reduced, rewrites int
	// gen is the invalidation epoch (Processor.generation) at preparation.
	gen uint64
	// last is the LRU clock reading of the most recent use.
	last atomic.Int64
}

// planCache maps plan fingerprints to prepared entries. Reads take an
// RWMutex read lock plus one structural comparison; the write lock is held
// only for map insert/delete.
type planCache struct {
	capacity int
	tick     atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	evicted  atomic.Int64

	mu      sync.RWMutex
	entries map[uint64]*cacheEntry
}

func newPlanCache(capacity int) *planCache {
	return &planCache{capacity: capacity, entries: make(map[uint64]*cacheEntry, capacity)}
}

// lookup returns the prepared entry for fp, or nil on a miss. gen is the
// current invalidation epoch; root is the incoming plan root the entry must
// structurally equal.
func (c *planCache) lookup(fp uint64, root *algebra.Node, gen uint64) *cacheEntry {
	c.mu.RLock()
	e := c.entries[fp]
	c.mu.RUnlock()
	if e == nil {
		c.misses.Add(1)
		return nil
	}
	if e.gen != gen {
		// Prepared against an older catalog/store; drop it lazily.
		c.mu.Lock()
		if c.entries[fp] == e {
			delete(c.entries, fp)
		}
		c.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	if !algebra.Equal(e.inRoot, root) {
		// Fingerprint collision: same 64-bit digest, different plan. The
		// entry stays (it is still valid for its own plan); this lookup
		// processes live.
		c.misses.Add(1)
		return nil
	}
	e.last.Store(c.tick.Add(1))
	c.hits.Add(1)
	return e
}

// insert publishes a prepared entry, evicting the least-recently-used one
// when the cache is at capacity. The linear LRU scan is fine at the cache
// sizes in use (hundreds of entries) and runs only on insert-at-capacity,
// which a warmed cache hits rarely.
func (c *planCache) insert(fp uint64, e *cacheEntry) {
	e.last.Store(c.tick.Add(1))
	c.mu.Lock()
	if _, exists := c.entries[fp]; !exists && len(c.entries) >= c.capacity {
		var lruFP uint64
		lruAt := int64(1)<<62 + (1<<62 - 1)
		for k, v := range c.entries {
			if at := v.last.Load(); at < lruAt {
				lruAt, lruFP = at, k
			}
		}
		delete(c.entries, lruFP)
		c.evicted.Add(1)
	}
	c.entries[fp] = e
	c.mu.Unlock()
}

// CacheStats is a snapshot of the prepared-plan cache counters.
type CacheStats struct {
	// Hits and Misses count lookups (misses include generation drops and
	// fingerprint collisions); Evictions counts capacity evictions.
	Hits, Misses, Evictions int64
	// Entries is the current resident entry count.
	Entries int
}

// HitRate returns hits/(hits+misses), or 0 with no lookups yet.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats returns the prepared-plan cache counters; zero when the cache
// is disabled.
func (p *Processor) CacheStats() CacheStats {
	if p.cache == nil {
		return CacheStats{}
	}
	c := p.cache
	c.mu.RLock()
	entries := len(c.entries)
	c.mu.RUnlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted.Load(),
		Entries:   entries,
	}
}
