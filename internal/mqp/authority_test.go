package mqp

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
)

// TestAuthoritativeEmptyBind: an authoritative server with no matching
// registrations answers an area URN with the empty collection instead of
// declaring the plan stuck (§3.3: it "strives to know about all base
// servers within its area of interest").
func TestAuthoritativeEmptyBind(t *testing.T) {
	ns := testNS()
	cat := catalog.New(ns, "idx:1")
	p := mustProc(t, Config{
		Self: "idx:1", Catalog: cat,
		Authority: ns.MustParseArea("[USA/OR, *]"),
	})
	urn := namespace.EncodeURN(ns.MustParseArea("[USA/OR/Portland, Furniture/Chairs]"))
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.Count(algebra.URN(urn))))
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Done || out.Bound != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	results, err := plan.Results()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].InnerText() != "0" {
		t.Fatalf("count = %s, want 0", results[0].InnerText())
	}
}

// TestAuthorityDoesNotCoverQuery: an authoritative server must not claim
// emptiness for areas outside its authority.
func TestAuthorityDoesNotCoverQuery(t *testing.T) {
	ns := testNS()
	cat := catalog.New(ns, "idx:1")
	p := mustProc(t, Config{
		Self: "idx:1", Catalog: cat,
		Authority: ns.MustParseArea("[USA/OR, *]"),
	})
	urn := namespace.EncodeURN(ns.MustParseArea("[USA/WA/Seattle, Music/CDs]"))
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.URN(urn)))
	if _, err := p.Step(plan); err == nil {
		t.Fatal("out-of-authority area with no routes must be stuck, not empty")
	}
}

// TestAuthorityRemainderBinding: a multi-cell area partially covered by the
// authority binds the covered cells and re-emits the remainder as a URN.
func TestAuthorityRemainderBinding(t *testing.T) {
	ns := testNS()
	cat := catalog.New(ns, "idx:1")
	orArea := ns.MustParseArea("[USA/OR, *]")
	// One base server in Oregon.
	if err := cat.Register(catalog.Registration{
		Addr: "s1:1", Role: catalog.RoleBase,
		Area: ns.MustParseArea("[USA/OR/Portland, Music/CDs]"),
		Collections: []catalog.Collection{
			{Name: "cds", PathExp: "/d", Area: ns.MustParseArea("[USA/OR/Portland, Music/CDs]")},
		},
	}); err != nil {
		t.Fatal(err)
	}
	p := mustProc(t, Config{Self: "idx:1", Catalog: cat, Authority: orArea})
	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs] + [USA/WA/Seattle, Music/CDs]")
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.URN(namespace.EncodeURN(area))))
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Done {
		t.Fatal("partially bound plan cannot be done")
	}
	if out.NextHop != "s1:1" {
		t.Fatalf("next hop = %s (the bound base server should be visited first)", out.NextHop)
	}
	// The plan should now contain the Oregon URL and a Seattle-only URN.
	urls := plan.Root.URLs()
	urns := plan.Root.URNs()
	if len(urls) != 1 || urls[0] != "s1:1" {
		t.Fatalf("urls = %v", urls)
	}
	if len(urns) != 1 {
		t.Fatalf("urns = %v", urns)
	}
	rem, err := namespace.DecodeURN(urns[0])
	if err != nil {
		t.Fatal(err)
	}
	want := ns.MustParseArea("[USA/WA/Seattle, Music/CDs]")
	if !rem.Equal(want) {
		t.Fatalf("remainder = %v, want %v", rem, want)
	}
}

// TestNextHopsOrderingAndDedup verifies the fallback candidate list.
func TestNextHopsOrderingAndDedup(t *testing.T) {
	ns := testNS()
	cat := catalog.New(ns, "s:1")
	if err := cat.Register(catalog.Registration{
		Addr: "meta:1", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}
	p := mustProc(t, Config{Self: "s:1", Catalog: cat})
	routed := algebra.URN("urn:InterestArea:(USA.OR.Portland,Music.CDs)")
	routed.Annotate(catalog.AnnotRoute, "idx:1")
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.Union(
		routed,
		algebra.URN(namespace.EncodeURN(ns.MustParseArea("[USA/WA/Seattle, *]"))),
		algebra.URL("other:1", ""),
		algebra.URL("other:1", ""), // duplicate
		algebra.URL("s:1", "/d"),   // self — excluded
	)))
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"idx:1", "meta:1", "other:1"}
	if len(out.NextHops) != len(want) {
		t.Fatalf("next hops = %v, want %v", out.NextHops, want)
	}
	for i := range want {
		if out.NextHops[i] != want[i] {
			t.Fatalf("next hops = %v, want %v", out.NextHops, want)
		}
	}
	if out.NextHop != "idx:1" {
		t.Fatalf("preferred hop = %s", out.NextHop)
	}
}
