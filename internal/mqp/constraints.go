package mqp

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/route"
)

// Ordering and transfer policies (§5.2): "MQPs will need to incorporate
// ordering and transfer policies, such as 'do not bind preferences until
// playlist is bound' or 'only let this MQP pass through servers on this
// list.'" Both travel as annotations on the plan root so every server on
// the itinerary can honor them. The transfer policy is owned by the routing
// layer (internal/route, which filters forwarding candidates with it); the
// ordering policy is interpreted here, at binding time.
const (
	// annotBindAfter holds ordering constraints "later<earlier" (the URN
	// named left may bind only once the URN named right no longer appears
	// in the plan), semicolon-separated.
	annotBindAfter = "bind-after"
	// annotOriginURN marks a URL leaf with the URN it was bound from, so
	// ordering constraints treat a resource as "bound" only once its data
	// has actually been materialized, not merely name-resolved.
	annotOriginURN = "origin-urn"
)

// RestrictServers constrains the plan to travel only through the listed
// servers (plus its target). Forwarding to, or processing at, any other
// server fails.
func RestrictServers(p *algebra.Plan, servers ...string) {
	route.RestrictServers(p, servers...)
}

// AllowedServers returns the transfer policy, or nil when unrestricted.
func AllowedServers(p *algebra.Plan) []string {
	return route.AllowedServers(p)
}

// BindAfter adds the ordering constraint: later may bind only after earlier
// has been fully bound (no longer appears as a URN leaf in the plan).
func BindAfter(p *algebra.Plan, later, earlier string) {
	entry := later + "<" + earlier
	if v, ok := p.Root.Annotation(annotBindAfter); ok && v != "" {
		entry = v + ";" + entry
	}
	p.Root.Annotate(annotBindAfter, entry)
}

// bindDeferred reports whether the URN must not bind yet under the plan's
// ordering constraints: some "later<earlier" entry names it as later while
// earlier is still outstanding — either an unresolved URN leaf, or a URL
// leaf whose data has not been materialized yet (tracked by origin-urn
// annotations placed at bind time).
func bindDeferred(p *algebra.Plan, urn string) bool {
	v, ok := p.Root.Annotation(annotBindAfter)
	if !ok || v == "" {
		return false
	}
	var present map[string]bool
	for _, entry := range strings.Split(v, ";") {
		parts := strings.SplitN(entry, "<", 2)
		if len(parts) != 2 || parts[0] != urn {
			continue
		}
		if present == nil {
			present = map[string]bool{}
			p.Root.Walk(func(m *algebra.Node) bool {
				switch m.Kind {
				case algebra.KindURN:
					present[m.URN] = true
				case algebra.KindURL:
					if origin, ok := m.Annotation(annotOriginURN); ok {
						present[origin] = true
					}
				}
				return true
			})
		}
		if present[parts[1]] {
			return true
		}
	}
	return false
}

// markOrigin stamps every URL leaf of a freshly bound expression with the
// URN it came from.
func markOrigin(expr *algebra.Node, urn string) {
	expr.Walk(func(m *algebra.Node) bool {
		if m.Kind == algebra.KindURL {
			m.Annotate(annotOriginURN, urn)
		}
		return true
	})
}

// checkTransferPolicy verifies this server may process the plan.
func (p *Processor) checkTransferPolicy(plan *algebra.Plan) error {
	allowed := AllowedServers(plan)
	if allowed == nil {
		return nil
	}
	for _, a := range allowed {
		if a == p.cfg.Self {
			return nil
		}
	}
	return fmt.Errorf("mqp: plan %q forbids processing at %s (transfer policy)", plan.ID, p.cfg.Self)
}
