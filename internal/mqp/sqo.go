package mqp

import (
	"strconv"

	"repro/internal/algebra"
	"repro/internal/stats"
)

// Semantic query optimization using the attribute indices of §3.2: when a
// selection sits over a union of URL leaves that carry histogram
// annotations (published by base servers at registration time and copied
// onto bindings by the catalog), branches whose histogram proves the
// predicate selects nothing are pruned before the plan travels. Pruning is
// sound with respect to the published metadata: a branch is removed only
// when its histogram's value range provably excludes every match.
//
// This realizes the paper's SQO connection (§6: "intelligent routing of
// query plans based on intensional statements about server coverage" —
// here extended from area coverage to attribute ranges).

// PruneByStats removes provably-empty branches beneath every
// select-over-union in the tree. Returns the number of branches removed.
func PruneByStats(root *algebra.Node) int {
	pruned := 0
	var visit func(n *algebra.Node)
	visit = func(n *algebra.Node) {
		for _, c := range n.Children {
			visit(c)
		}
		if n.Kind != algebra.KindSelect || len(n.Children) != 1 {
			return
		}
		u := n.Children[0]
		if u.Kind != algebra.KindUnion {
			return
		}
		var kept []*algebra.Node
		for _, branch := range u.Children {
			if provablyEmpty(n.Pred, branch) {
				pruned++
				continue
			}
			kept = append(kept, branch)
		}
		if len(kept) == len(u.Children) {
			return
		}
		if len(kept) == 0 {
			// Nothing can match: the whole selection is the empty
			// collection.
			empty := algebra.Data()
			empty.SetCard(0)
			n.Children[0] = empty
			return
		}
		if len(kept) == 1 {
			n.Children[0] = kept[0]
			return
		}
		u.Children = kept
	}
	visit(root)
	return pruned
}

// provablyEmpty reports whether the branch (a URL leaf with histogram
// annotations) provably yields no item satisfying pred. Only conjunctive
// comparison structure is analyzed; anything else is conservatively kept.
func provablyEmpty(pred algebra.Predicate, branch *algebra.Node) bool {
	if branch.Kind != algebra.KindURL {
		return false
	}
	enc, ok := branch.Annotation(algebra.AnnotHistogram)
	if !ok {
		return false
	}
	h, err := stats.DecodeHistogram(enc)
	if err != nil {
		return false
	}
	return predExcludesRange(pred, h)
}

// predExcludesRange reports whether pred provably rejects every value the
// histogram's field can take. For And it suffices that either side
// excludes; Or requires both; other predicate forms are unknown (false).
func predExcludesRange(pred algebra.Predicate, h *stats.Histogram) bool {
	switch p := pred.(type) {
	case algebra.Cmp:
		if p.Path != h.Path {
			return false
		}
		v, err := strconv.ParseFloat(p.Value, 64)
		if err != nil {
			return false
		}
		switch p.Op {
		case algebra.OpLt:
			return v <= h.Lo
		case algebra.OpLe:
			return v < h.Lo
		case algebra.OpGt:
			return v >= h.Hi
		case algebra.OpGe:
			return v > h.Hi
		case algebra.OpEq:
			return v < h.Lo || v > h.Hi
		default:
			return false
		}
	case algebra.And:
		return predExcludesRange(p.L, h) || predExcludesRange(p.R, h)
	case algebra.OrPred:
		return predExcludesRange(p.L, h) && predExcludesRange(p.R, h)
	default:
		return false
	}
}
