package mqp

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/stats"
)

func histURL(addr string, lo, hi float64) *algebra.Node {
	u := algebra.URL(addr, "/d")
	h := &stats.Histogram{Path: "price", Lo: lo, Hi: hi, Counts: []int{1, 1}}
	u.Annotate(algebra.AnnotHistogram, h.Encode())
	return u
}

func TestPruneByStatsRangeChecks(t *testing.T) {
	cases := []struct {
		pred   string
		lo, hi float64
		prune  bool
	}{
		{"price < 10", 50, 100, true},
		{"price < 10", 5, 100, false},
		{"price <= 50", 50, 100, false}, // boundary can match
		{"price <= 49", 50, 100, true},
		{"price > 100", 50, 100, true},
		{"price > 99", 50, 100, false},
		{"price >= 101", 50, 100, true},
		{"price = 30", 50, 100, true},
		{"price = 75", 50, 100, false},
		{"price != 30", 50, 100, false},              // != never excludes
		{"price < 10 and qty > 2", 50, 100, true},    // one conjunct suffices
		{"price < 10 or price > 200", 50, 100, true}, // both disjuncts excluded
		{"price < 10 or price > 60", 50, 100, false}, // one disjunct may match
		{"name contains 'x'", 50, 100, false},        // unknown form
		{"qty < 1", 50, 100, false},                  // different field
	}
	for _, c := range cases {
		root := algebra.Display(algebra.Select(algebra.MustParsePredicate(c.pred),
			algebra.Union(histURL("a:1", c.lo, c.hi), algebra.URL("b:1", ""))))
		n := PruneByStats(root)
		want := 0
		if c.prune {
			want = 1
		}
		if n != want {
			t.Errorf("pred %q over [%g,%g]: pruned %d, want %d", c.pred, c.lo, c.hi, n, want)
		}
	}
}

func TestPruneByStatsCollapse(t *testing.T) {
	// All branches provably empty: the selection collapses to empty data.
	sel := algebra.Select(algebra.MustParsePredicate("price < 10"),
		algebra.Union(histURL("a:1", 50, 100), histURL("b:1", 20, 40)))
	root := algebra.Display(sel)
	if n := PruneByStats(root); n != 2 {
		t.Fatalf("pruned = %d", n)
	}
	if sel.Children[0].Kind != algebra.KindData || len(sel.Children[0].Docs) != 0 {
		t.Fatalf("collapsed shape = %s", sel.Children[0])
	}

	// One survivor: union unwrapped.
	sel2 := algebra.Select(algebra.MustParsePredicate("price < 30"),
		algebra.Union(histURL("a:1", 50, 100), histURL("b:1", 20, 40)))
	root2 := algebra.Display(sel2)
	if n := PruneByStats(root2); n != 1 {
		t.Fatalf("pruned = %d", n)
	}
	if sel2.Children[0].Kind != algebra.KindURL || sel2.Children[0].URL != "b:1" {
		t.Fatalf("survivor = %s", sel2.Children[0])
	}
}

func TestPruneByStatsKeepsUnannotated(t *testing.T) {
	sel := algebra.Select(algebra.MustParsePredicate("price < 10"),
		algebra.Union(algebra.URL("a:1", ""), algebra.URL("b:1", "")))
	root := algebra.Display(sel)
	if n := PruneByStats(root); n != 0 {
		t.Fatalf("unannotated branches must be kept, pruned %d", n)
	}
}

func TestPruneByStatsMalformedHistogramKept(t *testing.T) {
	u := algebra.URL("a:1", "")
	u.Annotate(algebra.AnnotHistogram, "garbage")
	root := algebra.Display(algebra.Select(algebra.MustParsePredicate("price < 10"), algebra.Union(u, algebra.URL("b:1", ""))))
	if n := PruneByStats(root); n != 0 {
		t.Fatalf("malformed histogram must not prune, pruned %d", n)
	}
}
