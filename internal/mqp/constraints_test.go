package mqp

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

// TestTransferPolicyBlocksProcessing: a plan restricted to a server list
// refuses to be processed elsewhere (§5.2 "only let this MQP pass through
// servers on this list").
func TestTransferPolicyBlocksProcessing(t *testing.T) {
	ns := testNS()
	p := mustProc(t, Config{Self: "outsider:1", Catalog: catalog.New(ns, "outsider:1")})
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.URN("urn:X")))
	RestrictServers(plan, "irs:1", "state:1")
	if _, err := p.Step(plan); err == nil || !strings.Contains(err.Error(), "transfer policy") {
		t.Fatalf("want transfer-policy error, got %v", err)
	}
	// An allowed server processes normally.
	allowed := mustProc(t, Config{Self: "irs:1", Catalog: catalog.New(ns, "irs:1")})
	if _, err := allowed.Step(plan); err != nil && strings.Contains(err.Error(), "transfer policy") {
		t.Fatalf("allowed server rejected: %v", err)
	}
}

// TestTransferPolicyFiltersHops: forwarding candidates outside the allowed
// list are dropped.
func TestTransferPolicyFiltersHops(t *testing.T) {
	ns := testNS()
	st := store{"": items(`<i><v>1</v></i>`)}
	p := mustProc(t, Config{Self: "irs:1", Catalog: catalog.New(ns, "irs:1"), FetchLocal: st.fetch})
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.Union(
		algebra.URL("irs:1", ""),
		algebra.URL("state:1", ""),
		algebra.URL("leaky:1", ""),
	)))
	RestrictServers(plan, "irs:1", "state:1")
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.NextHops) != 1 || out.NextHops[0] != "state:1" {
		t.Fatalf("next hops = %v (leaky:1 must be filtered)", out.NextHops)
	}
}

// TestTransferPolicyRoundTrips: the policy survives plan serialization.
func TestTransferPolicyRoundTrips(t *testing.T) {
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.Data()))
	RestrictServers(plan, "a:1", "b:1")
	back, err := algebra.DecodeString(algebra.EncodeString(plan))
	if err != nil {
		t.Fatal(err)
	}
	got := AllowedServers(back)
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:1" {
		t.Fatalf("allowed = %v", got)
	}
	if AllowedServers(algebra.NewPlan("q", "c", algebra.Display(algebra.Data()))) != nil {
		t.Fatal("unrestricted plan must return nil")
	}
}

// TestBindAfterOrdering: "do not bind preferences until playlist is bound"
// — the later URN stays a leaf while the earlier one is still in the plan.
func TestBindAfterOrdering(t *testing.T) {
	ns := testNS()
	cat := catalog.New(ns, "s:1")
	cat.AddAlias("urn:Preferences", "http://prefs:1/d")
	// The playlist URN cannot be bound here (unknown), so the preferences
	// URN must stay unbound too.
	if err := cat.Register(catalog.Registration{
		Addr: "meta:1", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"), Authoritative: true,
	}); err != nil {
		t.Fatal(err)
	}
	p := mustProc(t, Config{Self: "s:1", Catalog: cat})
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.JoinNamed(
		"song", "song", "pref", "track",
		algebra.URN("urn:Preferences"),
		algebra.URN("urn:Playlist"),
	)))
	BindAfter(plan, "urn:Preferences", "urn:Playlist")
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bound != 0 {
		t.Fatalf("bound = %d; preferences must defer to playlist", out.Bound)
	}
	urns := plan.Root.URNs()
	if len(urns) != 2 {
		t.Fatalf("urns = %v", urns)
	}

	// Once the playlist is bound (simulate another server's work), the
	// preferences URN binds.
	plan2 := algebra.NewPlan("q2", "c:1", algebra.Display(algebra.JoinNamed(
		"song", "song", "pref", "track",
		algebra.URN("urn:Preferences"),
		algebra.Data(items(`<track><song>A</song></track>`)...),
	)))
	BindAfter(plan2, "urn:Preferences", "urn:Playlist")
	out, err = p.Step(plan2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bound != 1 {
		t.Fatalf("bound = %d; prerequisite satisfied, preferences should bind", out.Bound)
	}
}

// TestBindAfterAccumulates: multiple ordering constraints coexist.
func TestBindAfterAccumulates(t *testing.T) {
	plan := algebra.NewPlan("q", "c:1", algebra.Display(algebra.Union(
		algebra.URN("urn:A"), algebra.URN("urn:B"), algebra.URN("urn:C"))))
	BindAfter(plan, "urn:A", "urn:B")
	BindAfter(plan, "urn:B", "urn:C")
	if !bindDeferred(plan, "urn:A") || !bindDeferred(plan, "urn:B") {
		t.Fatal("both constraints must defer")
	}
	if bindDeferred(plan, "urn:C") {
		t.Fatal("urn:C has no prerequisite")
	}
}
