package mqp

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/route"
)

// TestEmptyShortcutsByteIdentical pins the Config.Shortcuts contract at the
// processor level: a nil table and an empty table must produce the same
// routing decisions and the same plan bytes at every hop. Only a table that
// has actually learned an edge may change where a plan travels, so turning
// the feature on (peer.Config.LearnShortcuts) before any trail has been
// mined is indistinguishable from leaving it off.
func TestEmptyShortcutsByteIdentical(t *testing.T) {
	run := func(withEmptyTable bool) (trace []string, outs []Outcome) {
		m, s1, s2, tr := fig34World(t)
		procs := map[string]*Processor{
			"M:9020": m, "10.1.2.3:9020": s1, "10.2.3.4:9020": s2, "tracks:9020": tr,
		}
		if withEmptyTable {
			for _, p := range procs {
				p.cfg.Shortcuts = route.NewShortcuts(route.ShortcutsConfig{})
			}
		}
		plan := fig3Plan()
		at := m
		for hop := 0; hop < 16; hop++ {
			out, err := at.Step(plan)
			if err != nil {
				t.Fatalf("empty=%v hop %d: %v", withEmptyTable, hop, err)
			}
			trace = append(trace, algebra.EncodeString(plan))
			outs = append(outs, out)
			if out.Done || out.Partial {
				return trace, outs
			}
			next, ok := procs[out.NextHop]
			if !ok {
				t.Fatalf("empty=%v hop %d: unknown next hop %q", withEmptyTable, hop, out.NextHop)
			}
			at = next
		}
		t.Fatalf("empty=%v: plan did not terminate in 16 hops", withEmptyTable)
		return nil, nil
	}

	nilTrace, nilOuts := run(false)
	emptyTrace, emptyOuts := run(true)

	if len(nilTrace) != len(emptyTrace) {
		t.Fatalf("hop counts differ: nil=%d empty=%d", len(nilTrace), len(emptyTrace))
	}
	for i := range nilTrace {
		if nilTrace[i] != emptyTrace[i] {
			t.Errorf("hop %d plan bytes differ:\nnil:   %s\nempty: %s", i, nilTrace[i], emptyTrace[i])
		}
		no, eo := nilOuts[i], emptyOuts[i]
		if no.Done != eo.Done || no.Partial != eo.Partial || no.NextHop != eo.NextHop {
			t.Errorf("hop %d outcomes differ: nil=%+v empty=%+v", i, no, eo)
		}
	}
	last := nilOuts[len(nilOuts)-1]
	if !last.Done {
		t.Fatalf("fig3 plan should complete, final outcome %+v", last)
	}
}
