package mqp

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/provenance"
	"repro/internal/xmltree"
)

func testNS() *namespace.Namespace {
	loc := hierarchy.New("Location")
	loc.MustAdd("USA/OR/Portland")
	loc.MustAdd("USA/WA/Seattle")
	merch := hierarchy.New("Merchandise")
	merch.MustAdd("Music/CDs")
	merch.MustAdd("Furniture/Chairs")
	return namespace.MustNew(loc, merch)
}

// store is a trivial per-server data store for FetchLocal.
type store map[string][]*xmltree.Node

func (s store) fetch(_ *StepContext, _ string, pathExp string) ([]*xmltree.Node, int, error) {
	items, ok := s[pathExp]
	if !ok {
		return nil, 0, fmt.Errorf("no collection %q", pathExp)
	}
	return items, 0, nil
}

func items(ss ...string) []*xmltree.Node {
	out := make([]*xmltree.Node, len(ss))
	for i, s := range ss {
		out[i] = xmltree.MustParse(s)
	}
	return out
}

func mustProc(t *testing.T, cfg Config) *Processor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fig34World assembles the paper's running example: a meta-index server M,
// two CD sellers, and a track-listing service.
func fig34World(t *testing.T) (m, s1, s2, tr *Processor) {
	t.Helper()
	ns := testNS()

	mCat := catalog.New(ns, "M:9020")
	mCat.AddAlias("urn:ForSale:Portland-CDs", "http://10.1.2.3:9020/", "http://10.2.3.4:9020/")
	mCat.AddAlias("urn:CD:TrackListings", "http://tracks:9020/")

	s1Store := store{"": items(
		`<sale><cd>Blue Train</cd><price>8</price></sale>`,
		`<sale><cd>Kind of Blue</cd><price>15</price></sale>`,
	)}
	s2Store := store{"": items(
		`<sale><cd>Giant Steps</cd><price>9</price></sale>`,
	)}
	trStore := store{"": items(
		`<listing><cd>Blue Train</cd><song>Locomotion</song></listing>`,
		`<listing><cd>Giant Steps</cd><song>Naima</song></listing>`,
		`<listing><cd>Kind of Blue</cd><song>So What</song></listing>`,
	)}

	m = mustProc(t, Config{Self: "M:9020", Catalog: mCat, PushSelect: true, Key: []byte("kM"),
		Now: func() time.Duration { return time.Millisecond }})
	s1 = mustProc(t, Config{Self: "10.1.2.3:9020", Catalog: catalog.New(ns, "10.1.2.3:9020"),
		FetchLocal: s1Store.fetch, PushSelect: true, Key: []byte("k1")})
	s2 = mustProc(t, Config{Self: "10.2.3.4:9020", Catalog: catalog.New(ns, "10.2.3.4:9020"),
		FetchLocal: s2Store.fetch, PushSelect: true, Key: []byte("k2")})
	tr = mustProc(t, Config{Self: "tracks:9020", Catalog: catalog.New(ns, "tracks:9020"),
		FetchLocal: trStore.fetch, PushSelect: true, Key: []byte("kT")})
	return m, s1, s2, tr
}

func fig3Plan() *algebra.Plan {
	songs := algebra.Data(items(
		`<song><title>Naima</title></song>`,
		`<song><title>So What</title></song>`,
	)...)
	forSale := algebra.Select(algebra.MustParsePredicate("price < 10"),
		algebra.URN("urn:ForSale:Portland-CDs"))
	cdJoin := algebra.JoinNamed("cd", "cd", "sale", "listing",
		forSale, algebra.URN("urn:CD:TrackListings"))
	songJoin := algebra.JoinNamed("title", "listing/song", "fav", "match", songs, cdJoin)
	p := algebra.NewPlan("fig3", "129.95.50.105:9020", algebra.Display(songJoin))
	p.RetainOriginal()
	return p
}

// TestFig34EndToEnd walks the paper's Figures 3 and 4: URN resolution with
// select push-through at the meta server, per-seller reduction, and final
// evaluation, ending with the one CD that is under $10 and carries a
// favorite song.
func TestFig34EndToEnd(t *testing.T) {
	m, s1, s2, tr := fig34World(t)
	plan := fig3Plan()

	// Step 1 (Fig. 4a): M binds both URNs and pushes the select through the
	// resulting union.
	out, err := m.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Done || out.Bound != 2 {
		t.Fatalf("M outcome = %+v", out)
	}
	if out.NextHop != "10.1.2.3:9020" {
		t.Fatalf("next hop = %s", out.NextHop)
	}
	// The select must now sit below the union (pushed to each seller).
	var unionNode *algebra.Node
	plan.Root.Walk(func(n *algebra.Node) bool {
		if n.Kind == algebra.KindUnion {
			unionNode = n
		}
		return true
	})
	if unionNode == nil || len(unionNode.Children) != 2 {
		t.Fatalf("expected binary union after binding, plan = %s", plan.Root)
	}
	for _, c := range unionNode.Children {
		if c.Kind != algebra.KindSelect || c.Children[0].Kind != algebra.KindURL {
			t.Fatalf("select not pushed: %s", c)
		}
	}

	// Serialize/deserialize between hops, as the real system would.
	hop := func(p *algebra.Plan) *algebra.Plan {
		q, err := algebra.DecodeString(algebra.EncodeString(p))
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	// Step 2 (Fig. 4b): seller 1 substitutes its data and reduces its
	// branch to a constant.
	plan = hop(plan)
	out, err = s1.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fetched != 1 || out.Reduced < 1 {
		t.Fatalf("s1 outcome = %+v", out)
	}
	if out.NextHop != "10.2.3.4:9020" {
		t.Fatalf("s1 next hop = %s", out.NextHop)
	}

	plan = hop(plan)
	out, err = s2.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.NextHop != "tracks:9020" {
		t.Fatalf("s2 next hop = %s", out.NextHop)
	}

	plan = hop(plan)
	out, err = tr.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Done {
		t.Fatalf("tracks outcome = %+v, plan = %s", out, plan.Root)
	}
	results, err := plan.Results()
	if err != nil {
		t.Fatal(err)
	}
	// Favorites: Naima (Giant Steps, $9 — qualifies), So What (Kind of
	// Blue, $15 — too expensive). Blue Train ($8) has no favorite song.
	if len(results) != 1 {
		t.Fatalf("results = %d: %v", len(results), results)
	}
	if got := results[0].Value("match/sale/cd"); got != "Giant Steps" {
		t.Fatalf("result CD = %q", got)
	}

	// Provenance: every server signed its visits, in order.
	trail, err := provenance.FromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string][]byte{"M:9020": []byte("kM"), "10.1.2.3:9020": []byte("k1"),
		"10.2.3.4:9020": []byte("k2"), "tracks:9020": []byte("kT")}
	if idx, err := trail.Verify(func(s string) []byte { return keys[s] }); err != nil {
		t.Fatalf("provenance verify: visit %d: %v", idx, err)
	}
	for _, srv := range []string{"M:9020", "10.1.2.3:9020", "10.2.3.4:9020", "tracks:9020"} {
		if !trail.Visited(srv) {
			t.Fatalf("provenance missing %s", srv)
		}
	}
	if len(provenance.SuspectMissingSource(plan, trail)) != 0 {
		t.Fatal("no suspects expected for honest evaluation")
	}
}

func TestStuckPlan(t *testing.T) {
	ns := testNS()
	p := mustProc(t, Config{Self: "lonely:1", Catalog: catalog.New(ns, "lonely:1")})
	plan := algebra.NewPlan("q", "t:1", algebra.Display(algebra.URN("urn:Nobody:Knows")))
	if _, err := p.Step(plan); err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("want stuck error, got %v", err)
	}
}

func TestInvalidPlanRejected(t *testing.T) {
	ns := testNS()
	p := mustProc(t, Config{Self: "s:1", Catalog: catalog.New(ns, "s:1")})
	plan := algebra.NewPlan("q", "", algebra.Display(algebra.Data()))
	if _, err := p.Step(plan); err == nil {
		t.Fatal("plan without target must be rejected")
	}
}

func TestRouteAnnotationForwarding(t *testing.T) {
	ns := testNS()
	p := mustProc(t, Config{Self: "s:1", Catalog: catalog.New(ns, "s:1")})
	urn := algebra.URN("urn:InterestArea:(USA.OR.Portland,Music.CDs)")
	urn.Annotate(catalog.AnnotRoute, "idx:9020")
	plan := algebra.NewPlan("q", "t:1", algebra.Display(urn))
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.NextHop != "idx:9020" {
		t.Fatalf("next hop = %q, want route annotation target", out.NextHop)
	}
}

func TestCatalogRouteForwarding(t *testing.T) {
	ns := testNS()
	cat := catalog.New(ns, "s:1")
	if err := cat.Register(catalog.Registration{
		Addr: "meta:1", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[USA, *]"),
	}); err != nil {
		t.Fatal(err)
	}
	p := mustProc(t, Config{Self: "s:1", Catalog: cat})
	urn := namespace.EncodeURN(ns.MustParseArea("[USA/OR/Portland, Music/CDs]"))
	plan := algebra.NewPlan("q", "t:1", algebra.Display(algebra.URN(urn)))
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.NextHop != "meta:1" {
		t.Fatalf("next hop = %q", out.NextHop)
	}
}

func TestPolicyDeclineAnnotates(t *testing.T) {
	ns := testNS()
	var docs []string
	for i := 0; i < 30; i++ {
		docs = append(docs, fmt.Sprintf(`<i><v>%d</v></i>`, i))
	}
	st := store{"": items(docs...)}
	p := mustProc(t, Config{
		Self: "s:1", Catalog: catalog.New(ns, "s:1"), FetchLocal: st.fetch,
		Policy: DefaultPolicy{MaxReduceCard: 5}, Key: []byte("k"), PushSelect: true,
	})
	// A count over local data estimated above the ceiling: the select's
	// input has 30 items; estimate of select = 10 > 5, so the server
	// declines, annotates, and the plan must go elsewhere — but there is
	// nowhere to go, hence "stuck".
	plan := algebra.NewPlan("q", "t:1", algebra.Display(
		algebra.Select(algebra.MustParsePredicate("v < 100"),
			algebra.Union(algebra.URL("s:1", ""), algebra.URL("other:1", "")))))
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.NextHop != "other:1" {
		t.Fatalf("next hop = %q", out.NextHop)
	}
	// The local data was fetched but the big select was not fully reduced
	// into one constant — the select over the fetched data (card 30 → est
	// 10 > 5) must have been declined and annotated.
	annotated := false
	plan.Root.Walk(func(n *algebra.Node) bool {
		if n.Kind == algebra.KindSelect && n.Card() >= 0 {
			annotated = true
		}
		return true
	})
	if !annotated {
		t.Fatalf("expected declined sub-plan to carry a card annotation: %s", plan.Root)
	}
}

func TestPrefsRoundTrip(t *testing.T) {
	plan := algebra.NewPlan("q", "t:1", algebra.Display(algebra.Data()))
	SetPrefs(plan, Prefs{BudgetMS: 750, PreferCurrent: true})
	back, err := algebra.DecodeString(algebra.EncodeString(plan))
	if err != nil {
		t.Fatal(err)
	}
	prefs := GetPrefs(back)
	if prefs.BudgetMS != 750 || !prefs.PreferCurrent {
		t.Fatalf("prefs = %+v", prefs)
	}
	if got := GetPrefs(algebra.NewPlan("q", "t", algebra.Display(algebra.Data()))); got != (Prefs{}) {
		t.Fatalf("default prefs = %+v", got)
	}
}

func TestChooseOrBudget(t *testing.T) {
	pol := DefaultPolicy{HopCostMS: 100}
	stale := algebra.URL("r:1", "")
	stale.SetStaleness(30)
	current := algebra.Union(algebra.URL("r:1", ""), algebra.URL("s:1", ""))
	current.SetStaleness(0)
	alts := []*algebra.Node{stale, current}

	// Prefer current with a generous budget: the two-site alternative.
	if got := pol.ChooseOr(alts, Prefs{PreferCurrent: true, BudgetMS: 1000}); got != 1 {
		t.Fatalf("generous budget pick = %d", got)
	}
	// Prefer current with a tight budget: falls back to one site.
	if got := pol.ChooseOr(alts, Prefs{PreferCurrent: true, BudgetMS: 150}); got != 0 {
		t.Fatalf("tight budget pick = %d", got)
	}
	// No currency preference: fewest sites.
	if got := pol.ChooseOr(alts, Prefs{}); got != 0 {
		t.Fatalf("no-pref pick = %d", got)
	}
}

func TestUnavailableURLLeftForLater(t *testing.T) {
	ns := testNS()
	st := store{} // empty: fetch fails
	p := mustProc(t, Config{Self: "s:1", Catalog: catalog.New(ns, "s:1"), FetchLocal: st.fetch})
	plan := algebra.NewPlan("q", "t:1", algebra.Display(
		algebra.Union(algebra.URL("s:1", "missing"), algebra.URL("other:1", ""))))
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Local fetch failed; the plan should still make progress by routing to
	// the other server.
	if out.Done || out.NextHop == "" {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestAddrOf(t *testing.T) {
	cases := map[string]string{
		"http://10.1.2.3:9020/":     "10.1.2.3:9020",
		"http://tracks:9020/data/x": "tracks:9020",
		"https://a:1/":              "a:1",
		"10.1.2.3:9020":             "10.1.2.3:9020",
		"tracks:9020/data":          "tracks:9020",
	}
	for in, want := range cases {
		if got := AddrOf(in); got != want {
			t.Errorf("AddrOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing self must error")
	}
	if _, err := New(Config{Self: "s:1"}); err == nil {
		t.Fatal("missing catalog must error")
	}
}

func TestForwardOnlyPolicy(t *testing.T) {
	var pol Policy = ForwardOnlyPolicy{}
	if pol.ShouldFetch("a:1", "", 1) {
		t.Fatal("forward-only policy must never fetch")
	}
	if !pol.ShouldReduce(nil, 100000) {
		t.Fatal("forward-only policy still reduces locally")
	}
}

func TestStalenessPropagatesThroughReduce(t *testing.T) {
	ns := testNS()
	stale := store{"": items(`<i><v>1</v></i>`)}
	fetch := func(sc *StepContext, addr, pathExp string) ([]*xmltree.Node, int, error) {
		it, _, err := stale.fetch(sc, addr, pathExp)
		return it, 30, err
	}
	p := mustProc(t, Config{Self: "s:1", Catalog: catalog.New(ns, "s:1"), FetchLocal: fetch})
	plan := algebra.NewPlan("q", "t:1", algebra.Display(
		algebra.Select(algebra.MustParsePredicate("v < 5"), algebra.URL("s:1", ""))))
	out, err := p.Step(plan)
	if err != nil || !out.Done {
		t.Fatalf("outcome = %+v, %v", out, err)
	}
	inner := plan.Root.Children[0]
	if inner.Staleness() != 30 {
		t.Fatalf("staleness = %d, want 30", inner.Staleness())
	}
}
