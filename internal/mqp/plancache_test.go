package mqp

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

// cacheWorld builds a single self-sufficient processor: the catalog aliases
// one URN to the processor's own store, so a selection plan binds, fetches
// and reduces to a constant in one (cacheable) step.
func cacheWorld(t *testing.T, cacheSize int) *Processor {
	t.Helper()
	cat := catalog.New(testNS(), "S:9020")
	cat.AddAlias("urn:Cache:CDs", "http://S:9020/data")
	st := store{"/data": items(
		`<sale><cd>Blue Train</cd><price>8</price></sale>`,
		`<sale><cd>Kind of Blue</cd><price>15</price></sale>`,
		`<sale><cd>Giant Steps</cd><price>9</price></sale>`,
	)}
	return mustProc(t, Config{Self: "S:9020", Catalog: cat, FetchLocal: st.fetch,
		PushSelect: true, Key: []byte("kS"), PlanCacheSize: cacheSize})
}

func cachePlan(id, pred string) *algebra.Plan {
	sel := algebra.Select(algebra.MustParsePredicate(pred),
		algebra.URN("urn:Cache:CDs"))
	return algebra.NewPlan(id, "client:9020", algebra.Display(sel))
}

// stepDone runs one step and asserts the plan finished locally, returning
// the result titles so callers can compare hit and miss outcomes.
func stepDone(t *testing.T, p *Processor, plan *algebra.Plan) []string {
	t.Helper()
	out, err := p.Step(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Done {
		t.Fatalf("outcome = %+v, want Done", out)
	}
	docs, err := plan.Results()
	if err != nil {
		t.Fatal(err)
	}
	titles := make([]string, len(docs))
	for i, d := range docs {
		titles[i] = d.Value("cd")
	}
	return titles
}

func TestPlanCacheHitMissAccounting(t *testing.T) {
	p := cacheWorld(t, 8)

	first := stepDone(t, p, cachePlan("q1", "price < 10"))
	s := p.CacheStats()
	if s.Hits != 0 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after miss: stats = %+v", s)
	}

	second := stepDone(t, p, cachePlan("q2", "price < 10"))
	s = p.CacheStats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after hit: stats = %+v", s)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("hit results %v differ from live results %v", second, first)
	}
	if len(first) != 2 {
		t.Fatalf("results = %v, want 2 CDs under $10", first)
	}
	if rate := s.HitRate(); rate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", rate)
	}
}

func TestPlanCacheEvictionAtCapacity(t *testing.T) {
	p := cacheWorld(t, 2)

	stepDone(t, p, cachePlan("e1", "price < 9"))
	stepDone(t, p, cachePlan("e2", "price < 10"))
	s := p.CacheStats()
	if s.Entries != 2 || s.Evictions != 0 {
		t.Fatalf("at capacity: stats = %+v", s)
	}

	// Touch e2's shape so e1's entry is the LRU victim.
	stepDone(t, p, cachePlan("e2b", "price < 10"))
	stepDone(t, p, cachePlan("e3", "price < 16"))
	s = p.CacheStats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("after third shape: stats = %+v", s)
	}

	// The retained shape still hits; the evicted one re-misses (and its
	// reinsert evicts again — the cache holds the two hottest shapes).
	hits := s.Hits
	stepDone(t, p, cachePlan("e2c", "price < 10"))
	if got := p.CacheStats().Hits; got != hits+1 {
		t.Fatalf("retained shape: hits = %d, want %d", got, hits+1)
	}
	misses := p.CacheStats().Misses
	stepDone(t, p, cachePlan("e1b", "price < 9"))
	if got := p.CacheStats().Misses; got != misses+1 {
		t.Fatalf("evicted shape: misses = %d, want %d", got, misses+1)
	}
}

// TestPlanCacheCollisionSafety plants an entry under the wrong fingerprint
// (as a real 64-bit digest collision would) and checks the structural
// equality guard turns the poisoned lookup into a miss, never a wrong
// answer.
func TestPlanCacheCollisionSafety(t *testing.T) {
	p := cacheWorld(t, 8)
	stepDone(t, p, cachePlan("c1", "price < 10"))

	// Re-file the prepared entry for "price < 10" under the fingerprint of a
	// structurally different plan.
	victim := cachePlan("c2", "price > 10")
	victimFP := algebra.Fingerprint(victim.Root)
	p.cache.mu.Lock()
	if len(p.cache.entries) != 1 {
		p.cache.mu.Unlock()
		t.Fatalf("entries = %d, want 1", len(p.cache.entries))
	}
	for fp, e := range p.cache.entries {
		delete(p.cache.entries, fp)
		p.cache.entries[victimFP] = e
	}
	p.cache.mu.Unlock()

	misses := p.CacheStats().Misses
	got := stepDone(t, p, victim)
	if len(got) != 1 || got[0] != "Kind of Blue" {
		t.Fatalf("collision victim results = %v, want [Kind of Blue]", got)
	}
	if s := p.CacheStats(); s.Misses != misses+1 {
		t.Fatalf("collision did not miss: stats = %+v", s)
	}
}

func TestPlanCacheGenerationInvalidation(t *testing.T) {
	p := cacheWorld(t, 8)
	stepDone(t, p, cachePlan("g1", "price < 10"))
	stepDone(t, p, cachePlan("g2", "price < 10"))
	if s := p.CacheStats(); s.Hits != 1 {
		t.Fatalf("warmup: stats = %+v", s)
	}

	// Any catalog mutation bumps the generation; the prepared entry must be
	// dropped, not served stale.
	p.cfg.Catalog.AddAlias("urn:Cache:Other", "http://elsewhere:9020/x")
	misses := p.CacheStats().Misses
	stepDone(t, p, cachePlan("g3", "price < 10"))
	s := p.CacheStats()
	if s.Misses != misses+1 {
		t.Fatalf("stale entry served: stats = %+v", s)
	}
	// The re-prepared entry serves the new generation.
	hits := s.Hits
	stepDone(t, p, cachePlan("g4", "price < 10"))
	if got := p.CacheStats().Hits; got != hits+1 {
		t.Fatalf("re-prepared entry did not hit: stats = %+v", p.CacheStats())
	}
}

// TestPlanCacheConcurrentHits hammers one prepared entry from many
// goroutines. The entry's outRoot is shared read-only into every hitting
// plan, so under -race this doubles as the frozen-entry immutability check.
func TestPlanCacheConcurrentHits(t *testing.T) {
	p := cacheWorld(t, 8)
	want := fmt.Sprint(stepDone(t, p, cachePlan("w0", "price < 10")))

	const goroutines, rounds = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				plan := cachePlan(fmt.Sprintf("w%d-%d", g, i), "price < 10")
				out, err := p.Step(plan)
				if err != nil {
					errs <- err
					return
				}
				if !out.Done {
					errs <- fmt.Errorf("goroutine %d: outcome %+v", g, out)
					return
				}
				docs, err := plan.Results()
				if err != nil {
					errs <- err
					return
				}
				titles := make([]string, len(docs))
				for j, d := range docs {
					titles[j] = d.Value("cd")
				}
				if fmt.Sprint(titles) != want {
					errs <- fmt.Errorf("goroutine %d: results %v, want %s", g, titles, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := p.CacheStats()
	if s.Hits < goroutines*rounds {
		t.Fatalf("stats = %+v, want >= %d hits", s, goroutines*rounds)
	}
}
